package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/perf"
)

// TestHelperProcess re-executes this test binary as the mrperf CLI; it is
// driven only by runCompareCLI below.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("MRPERF_CLI_HELPER") != "1" {
		return
	}
	os.Args = append([]string{"mrperf"}, strings.Split(os.Getenv("MRPERF_CLI_ARGS"), "\x1f")...)
	main()
	os.Exit(0)
}

func runCompareCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess")
	cmd.Env = append(os.Environ(),
		"MRPERF_CLI_HELPER=1",
		"MRPERF_CLI_ARGS="+strings.Join(args, "\x1f"))
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return string(out), code
}

func benchFixture(scale float64) *perf.File {
	f := &perf.File{
		SchemaVersion: perf.SchemaVersion,
		CreatedAt:     "2026-08-06T00:00:00Z",
		CalibrationMS: 10,
		Entries: []perf.Entry{
			{Name: "blast-master", Repeats: 3, TimesMS: []float64{100, 110, 120}, MedianMS: 110, MinMS: 100, MaxMS: 120},
			{Name: "som-batch", Repeats: 3, TimesMS: []float64{50, 52, 54}, MedianMS: 52, MinMS: 50, MaxMS: 54},
		},
	}
	for i := range f.Entries {
		if f.Entries[i].Name == "som-batch" {
			e := &f.Entries[i]
			for j := range e.TimesMS {
				e.TimesMS[j] *= scale
			}
			e.MedianMS *= scale
			e.MinMS *= scale
			e.MaxMS *= scale
		}
	}
	return f
}

// TestCompareCLIGolden is the end-to-end acceptance case: `mrperf compare`
// must exit non-zero and name the entry when one workload is 2× slower, and
// exit zero on identical inputs.
func TestCompareCLIGolden(t *testing.T) {
	dir := t.TempDir()
	oldPath := dir + "/BENCH_old.json"
	samePath := dir + "/BENCH_same.json"
	slowPath := dir + "/BENCH_slow.json"
	if err := perf.WriteFile(oldPath, benchFixture(1)); err != nil {
		t.Fatal(err)
	}
	if err := perf.WriteFile(samePath, benchFixture(1)); err != nil {
		t.Fatal(err)
	}
	if err := perf.WriteFile(slowPath, benchFixture(2)); err != nil {
		t.Fatal(err)
	}

	out, code := runCompareCLI(t, "compare", oldPath, samePath)
	if code != 0 {
		t.Errorf("identical inputs: exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("identical inputs: output missing OK line:\n%s", out)
	}

	out, code = runCompareCLI(t, "compare", oldPath, slowPath)
	if code == 0 {
		t.Errorf("2x slowdown: exit 0, want non-zero; output:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "som-batch") {
		t.Errorf("2x slowdown: output does not name som-batch:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION: blast-master") {
		t.Errorf("unchanged entry flagged:\n%s", out)
	}
}
