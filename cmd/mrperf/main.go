// Command mrperf is the perf-regression harness. With no subcommand it runs
// the pinned suite of small deterministic mrblast/mrsom/mrmpi jobs and writes
// a schema-versioned BENCH_<n>.json (timings, registry metrics, analyzer
// stats); `mrperf compare old.json new.json` flags statistically meaningful
// regressions and exits non-zero naming each regressed entry. Entries whose
// calibration-normalized median improved by >=10% are printed as
// informational `improved:` lines so speedups stay on the record too.
//
// Usage:
//
//	mrperf                    run the suite (5 repeats), write BENCH_<n>.json
//	mrperf -quick             3 repeats, for CI smoke runs
//	mrperf -repeats 9 -out my.json
//	mrperf compare [-threshold 0.25] old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/perf"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		runCompare(os.Args[2:])
		return
	}

	quick := flag.Bool("quick", false, "3 repeats instead of 5 (CI smoke mode)")
	repeats := flag.Int("repeats", 5, "timed repeats per workload")
	out := flag.String("out", "", "output path (default: next free BENCH_<n>.json)")
	flag.Parse()
	if flag.NArg() != 0 {
		usage()
	}
	n := *repeats
	if *quick {
		n = 3
	}

	dir, err := os.MkdirTemp("", "mrperf")
	fail(err)
	defer os.RemoveAll(dir)

	file, err := perf.Run(dir, n, func(line string) {
		fmt.Println("mrperf:", line)
	})
	fail(err)

	path := *out
	if path == "" {
		path = nextBenchPath(".")
	}
	fail(perf.WriteFile(path, file))
	fmt.Printf("mrperf: wrote %s (%d entries, calibration %.2fms, %s)\n",
		path, len(file.Entries), file.CalibrationMS, file.GoVersion)
}

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.25, "regression threshold (0.25 = 25% slower)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: mrperf compare [-threshold F] old.json new.json")
		os.Exit(2)
	}
	old, err := perf.ReadFile(fs.Arg(0))
	fail(err)
	cur, err := perf.ReadFile(fs.Arg(1))
	fail(err)
	d, err := perf.Compare(old, cur, *threshold)
	fail(err)

	if d.Scale != 1 {
		fmt.Printf("mrperf: calibration scale %.3f (baseline %.2fms, new %.2fms)\n",
			d.Scale, old.CalibrationMS, cur.CalibrationMS)
	}
	for _, warn := range d.MetaWarnings {
		fmt.Printf("mrperf: warning: %s\n", warn)
	}
	for _, name := range d.OnlyOld {
		fmt.Printf("mrperf: note: %s present only in baseline\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Printf("mrperf: note: %s present only in new file\n", name)
	}
	for _, im := range d.Improvements {
		fmt.Printf("mrperf: improved: %s: median %.1fms -> %.1fms (%.2fx faster)\n",
			im.Name, im.OldMedianMS, im.NewMedianMS, im.Speedup)
	}
	if len(d.Regressions) == 0 {
		fmt.Printf("mrperf: OK — no regressions past %.0f%% across %d entries\n",
			*threshold*100, len(cur.Entries))
		return
	}
	for _, r := range d.Regressions {
		fmt.Fprintf(os.Stderr, "mrperf: REGRESSION: %s: median %.1fms -> %.1fms (%.2fx)\n",
			r.Name, r.OldMedianMS, r.NewMedianMS, r.Ratio)
	}
	os.Exit(1)
}

// nextBenchPath returns the first unused BENCH_<n>.json in dir.
func nextBenchPath(dir string) string {
	for n := 0; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mrperf [-quick] [-repeats N] [-out FILE]\n       mrperf compare [-threshold F] old.json new.json")
	os.Exit(2)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrperf:", err)
		os.Exit(1)
	}
}
