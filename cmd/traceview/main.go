// Command traceview inspects Chrome trace_event JSON files written by the
// -trace flag of cmd/mrblast and cmd/mrsom (or any obs.WriteChromeTrace
// output). By default it prints a per-rank per-phase summary and the slowest
// spans; with -check it validates the trace's structure (JSON parses, spans
// nest, begins have ends, per-rank clocks are monotonic, instant events
// carry in-range ranks and timestamps) and exits non-zero on a malformed
// trace; with -analyze it runs the performance analyzer (per-rank
// busy/comm/idle time, per-phase load imbalance, master dispatch latency,
// straggler ranking, exact cross-rank critical path, wait-blame); with
// -causal it summarizes the happens-before DAG itself (provenance matching,
// unmatched traffic, per-task/per-epoch lineage); with -blame it prints just
// the blocked-on tables; with -comm it renders a communication matrix
// recorded by mrblast/mrsom -comm (per-phase totals, src×dst byte grid,
// heaviest links, α–β cost-model fit) — standalone, or folded into the
// -analyze report as its comm section.
//
// Inputs may be gzip-compressed (detected by content, regardless of name);
// -o writes the report to a file instead of stdout, compressing when the
// name ends in .gz.
//
// Usage:
//
//	traceview trace.json
//	traceview -top 20 trace.json.gz
//	traceview -check trace.json
//	traceview -analyze -o report.txt.gz trace.json
//	traceview -causal trace.json
//	traceview -blame trace.json
//	traceview -comm comm.json
//	traceview -analyze -comm comm.json trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/causal"
	"repro/internal/obs/comm"
)

// main delegates to run and converts exit() sentinels into process exit
// codes after run's deferred cleanup (the -o writer's gzip trailer) has
// flushed.
func main() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(exitSentinel); ok {
				os.Exit(exitCode)
			}
			panic(r)
		}
	}()
	run()
}

func run() {
	check := flag.Bool("check", false, "validate the trace structure and exit (non-zero on failure)")
	analyzeFlag := flag.Bool("analyze", false, "run trace analytics: busy/comm/idle, load imbalance, dispatch latency, stragglers, critical path, wait-blame")
	causalFlag := flag.Bool("causal", false, "summarize the causal cross-rank DAG: provenance matching, unmatched traffic, task/epoch lineage")
	blameFlag := flag.Bool("blame", false, "print the per-rank blocked-on (wait-blame) tables")
	commPath := flag.String("comm", "", "render a comm matrix JSON (mrblast/mrsom -comm output); alone or as an -analyze section")
	top := flag.Int("top", 10, "number of slowest spans / lineages to show")
	outPath := flag.String("o", "", "write the report here instead of stdout (.gz compresses)")
	flag.Parse()

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		w, err := obs.CreateOutput(*outPath)
		fail(err)
		out = w
		defer func() { fail(w.Close()) }()
	}

	var matrix *comm.Matrix
	if *commPath != "" {
		f, err := obs.OpenInput(*commPath)
		fail(err)
		matrix, err = comm.ReadMatrix(f)
		f.Close()
		fail(err)
	}
	if matrix != nil && !*analyzeFlag && flag.NArg() == 0 {
		// Comm-only mode: no trace needed.
		fail(matrix.WriteReport(out, *top))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-check] [-analyze] [-causal] [-blame] [-comm comm.json] [-top N] [-o report] trace.json")
		exit(2)
	}
	path := flag.Arg(0)

	f, err := obs.OpenInput(path)
	fail(err)
	events, meta, err := obs.ReadTraceMeta(f)
	f.Close()
	fail(err)

	if *check {
		if err := obs.Validate(events); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %s: INVALID: %v\n", path, err)
			exit(1)
		}
		if err := obs.ValidateInstants(events, meta.NumRanks); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %s: INVALID: %v\n", path, err)
			exit(1)
		}
		ranks := map[int]bool{}
		for _, ev := range events {
			ranks[ev.Rank] = true
		}
		fmt.Fprintf(out, "traceview: %s: OK (%d events, %d ranks)\n", path, len(events), len(ranks))
		return
	}

	if *analyzeFlag || *causalFlag || *blameFlag {
		g := causal.Build(events)
		if completeSpans(g) == 0 {
			fmt.Fprintf(os.Stderr, "traceview: %s: no complete spans — every Begin is missing its End, so there is nothing to analyze (was the trace written mid-run, or truncated?)\n", path)
			exit(1)
		}
		if *causalFlag {
			writeCausal(out, g, *top)
		}
		if *blameFlag && !*analyzeFlag {
			blame := g.Blame()
			fail(analyze.WriteBlame(out, blame, causal.Coverage(blame)))
		}
		if *analyzeFlag {
			rep := analyze.Analyze(events)
			rep.Comm = analyze.AnalyzeComm(matrix)
			fail(analyze.WriteReport(out, rep))
		}
		return
	}
	if matrix != nil {
		fail(matrix.WriteReport(out, *top))
		fmt.Fprintln(out)
	}

	stats := obs.Summarize(events)
	if len(stats) == 0 {
		fmt.Fprintf(out, "traceview: %s: no spans\n", path)
		return
	}
	fmt.Fprintf(out, "per-phase summary (%d events):\n", len(events))
	fail(obs.WriteSummaryTable(out, stats))
	if *top > 0 {
		fmt.Fprintf(out, "\ntop %d slowest spans:\n", *top)
		fail(obs.WriteTopSpans(out, obs.TopSlowest(events, *top)))
	}
}

// completeSpans counts spans whose End was observed across all ranks.
func completeSpans(g *causal.Graph) int {
	n := 0
	for _, spans := range g.Spans {
		for _, sp := range spans {
			if sp.Complete {
				n++
			}
		}
	}
	return n
}

// writeCausal renders the DAG summary: how the cross-rank stitching went
// (exact seq matches vs FIFO guesses vs orphans) and the longest per-task /
// per-epoch lineages.
func writeCausal(w io.Writer, g *causal.Graph, top int) {
	blocking := 0
	for _, e := range g.Edges {
		if e.Blocking {
			blocking++
		}
	}
	fmt.Fprintf(w, "causal DAG: %d rank(s), wall clock %v\n",
		g.NumRanks, time.Duration(g.MaxTS-g.MinTS).Round(time.Microsecond))
	fmt.Fprintf(w, "  edges: %d (%d blocking), %d seq-matched, %d fifo-fallback\n",
		len(g.Edges), blocking, g.SeqMatched, g.FIFOMatched)
	fmt.Fprintf(w, "  unmatched: %d recv(s) without a send, %d send(s) never received\n",
		g.UnmatchedRecvs, g.UnmatchedSends)
	fmt.Fprintf(w, "  barriers: %d occurrence(s); page flows: %d\n", len(g.Barriers), len(g.Pages))

	lins := g.Lineages()
	if len(lins) == 0 {
		return
	}
	shown := lins
	if top > 0 && len(shown) > top {
		// Longest end-to-end lineages first.
		shown = append([]causal.Lineage(nil), lins...)
		sort.Slice(shown, func(i, j int) bool {
			return shown[i].End-shown[i].Start > shown[j].End-shown[j].Start
		})
		shown = shown[:top]
	}
	fmt.Fprintf(w, "\nlineage (%d of %d, longest first):\n", len(shown), len(lins))
	for _, l := range shown {
		fmt.Fprintf(w, "  %s %d rank %d %v:", l.Unit, l.ID, l.Rank,
			time.Duration(l.End-l.Start).Round(time.Microsecond))
		for i, st := range l.Stages {
			if i > 0 {
				fmt.Fprint(w, " →")
			}
			fmt.Fprintf(w, " %s %v", st.Name, time.Duration(st.End-st.Start).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}

// exiting through exit() (not os.Exit directly) lets main's deferred -o
// close run first, so a compressed report is never left without its gzip
// trailer.
var exitCode int

func exit(code int) {
	exitCode = code
	panic(exitSentinel{})
}

type exitSentinel struct{}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		exit(1)
	}
}
