// Command traceview inspects Chrome trace_event JSON files written by the
// -trace flag of cmd/mrblast and cmd/mrsom (or any obs.WriteChromeTrace
// output). By default it prints a per-rank per-phase summary and the slowest
// spans; with -check it validates the trace's structure (JSON parses, spans
// nest, begins have ends, per-rank clocks are monotonic, instant events
// carry in-range ranks and timestamps) and exits non-zero on a malformed
// trace; with -analyze it runs the performance analyzer (per-rank
// busy/comm/idle time, per-phase load imbalance, master dispatch latency,
// straggler ranking, critical path); with -comm it renders a communication
// matrix recorded by mrblast/mrsom -comm (per-phase totals, src×dst byte
// grid, heaviest links, α–β cost-model fit) — standalone, or folded into the
// -analyze report as its comm section.
//
// Usage:
//
//	traceview trace.json
//	traceview -top 20 trace.json
//	traceview -check trace.json
//	traceview -analyze trace.json
//	traceview -comm comm.json
//	traceview -analyze -comm comm.json trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/obs/comm"
)

func main() {
	check := flag.Bool("check", false, "validate the trace structure and exit (non-zero on failure)")
	analyzeFlag := flag.Bool("analyze", false, "run trace analytics: busy/comm/idle, load imbalance, dispatch latency, stragglers, critical path")
	commPath := flag.String("comm", "", "render a comm matrix JSON (mrblast/mrsom -comm output); alone or as an -analyze section")
	top := flag.Int("top", 10, "number of slowest spans to show")
	flag.Parse()

	var matrix *comm.Matrix
	if *commPath != "" {
		f, err := os.Open(*commPath)
		fail(err)
		matrix, err = comm.ReadMatrix(f)
		f.Close()
		fail(err)
	}
	if matrix != nil && !*analyzeFlag && flag.NArg() == 0 {
		// Comm-only mode: no trace needed.
		fail(matrix.WriteReport(os.Stdout, *top))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-check] [-analyze] [-comm comm.json] [-top N] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	fail(err)
	events, meta, err := obs.ReadTraceMeta(f)
	f.Close()
	fail(err)

	if *check {
		if err := obs.Validate(events); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %s: INVALID: %v\n", path, err)
			os.Exit(1)
		}
		if err := obs.ValidateInstants(events, meta.NumRanks); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %s: INVALID: %v\n", path, err)
			os.Exit(1)
		}
		ranks := map[int]bool{}
		for _, ev := range events {
			ranks[ev.Rank] = true
		}
		fmt.Printf("traceview: %s: OK (%d events, %d ranks)\n", path, len(events), len(ranks))
		return
	}

	if *analyzeFlag {
		rep := analyze.Analyze(events)
		rep.Comm = analyze.AnalyzeComm(matrix)
		fail(analyze.WriteReport(os.Stdout, rep))
		return
	}
	if matrix != nil {
		fail(matrix.WriteReport(os.Stdout, *top))
		fmt.Println()
	}

	stats := obs.Summarize(events)
	if len(stats) == 0 {
		fmt.Printf("traceview: %s: no spans\n", path)
		return
	}
	fmt.Printf("per-phase summary (%d events):\n", len(events))
	fail(obs.WriteSummaryTable(os.Stdout, stats))
	if *top > 0 {
		fmt.Printf("\ntop %d slowest spans:\n", *top)
		fail(obs.WriteTopSpans(os.Stdout, obs.TopSlowest(events, *top)))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}
