// Command traceview inspects Chrome trace_event JSON files written by the
// -trace flag of cmd/mrblast and cmd/mrsom (or any obs.WriteChromeTrace
// output). By default it prints a per-rank per-phase summary and the slowest
// spans; with -check it validates the trace's structure (JSON parses, spans
// nest, begins have ends, per-rank clocks are monotonic) and exits non-zero
// on a malformed trace.
//
// Usage:
//
//	traceview trace.json
//	traceview -top 20 trace.json
//	traceview -check trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "validate the trace structure and exit (non-zero on failure)")
	top := flag.Int("top", 10, "number of slowest spans to show")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-check] [-top N] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	fail(err)
	events, err := obs.ReadTrace(f)
	f.Close()
	fail(err)

	if *check {
		if err := obs.Validate(events); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %s: INVALID: %v\n", path, err)
			os.Exit(1)
		}
		ranks := map[int]bool{}
		for _, ev := range events {
			ranks[ev.Rank] = true
		}
		fmt.Printf("traceview: %s: OK (%d events, %d ranks)\n", path, len(events), len(ranks))
		return
	}

	stats := obs.Summarize(events)
	if len(stats) == 0 {
		fmt.Printf("traceview: %s: no spans\n", path)
		return
	}
	fmt.Printf("per-phase summary (%d events):\n", len(events))
	fail(obs.WriteSummaryTable(os.Stdout, stats))
	if *top > 0 {
		fmt.Printf("\ntop %d slowest spans:\n", *top)
		fail(obs.WriteTopSpans(os.Stdout, obs.TopSlowest(events, *top)))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}
