// Command seqstat prints summary statistics of a FASTA file: sequence
// count, residues, length distribution, N50, and GC content.
//
// Usage:
//
//	seqstat refs.fa [more.fa ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bio"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: seqstat <fasta> [...]")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		seqs, err := bio.ReadFastaFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seqstat:", err)
			os.Exit(1)
		}
		st := bio.ComputeSeqStats(seqs)
		fmt.Printf("%s:\n", path)
		fmt.Printf("  sequences:  %d\n", st.Count)
		fmt.Printf("  residues:   %d\n", st.TotalResidues)
		fmt.Printf("  length:     min %d, mean %.1f, max %d\n", st.MinLen, st.MeanLen, st.MaxLen)
		fmt.Printf("  N50:        %d\n", st.N50)
		fmt.Printf("  GC:         %.1f%%\n", 100*st.GC)
	}
}
