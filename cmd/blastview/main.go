// Command blastview renders hits from mrblast output files as BLAST-style
// pairwise text alignments, resolving the query and subject sequences from
// the original FASTA and the database volumes.
//
// Usage:
//
//	blastview -hits hits/ -query reads.fa -db db/refdb.json -n 5
//	blastview -hits merged.tsv -query reads.fa -db db/refdb.json -protein
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/blastdb"
	"repro/internal/mrblast"
)

func main() {
	hitsPath := flag.String("hits", "", "hits TSV file or a directory of hits.rank*.tsv (required)")
	queryPath := flag.String("query", "", "query FASTA (required)")
	dbPath := flag.String("db", "", "database manifest JSON (required)")
	n := flag.Int("n", 10, "render at most N alignments (0 = all)")
	protein := flag.Bool("protein", false, "protein alignment (BLOSUM62); default nucleotide")
	width := flag.Int("width", 60, "residues per alignment line")
	flag.Parse()
	if *hitsPath == "" || *queryPath == "" || *dbPath == "" {
		fail(fmt.Errorf("-hits, -query and -db are required"))
	}

	hits, err := loadHits(*hitsPath)
	fail(err)
	if len(hits) == 0 {
		fail(fmt.Errorf("no hits in %s", *hitsPath))
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].EValue < hits[j].EValue })
	if *n > 0 && len(hits) > *n {
		hits = hits[:*n]
	}

	queries, err := bio.ReadFastaFile(*queryPath)
	fail(err)
	queryByID := map[string]*bio.Sequence{}
	for _, q := range queries {
		queryByID[q.ID] = q
	}

	manifest, err := blastdb.OpenManifest(*dbPath)
	fail(err)
	// Resolve only the subjects the rendered hits need.
	needed := map[string]*bio.Sequence{}
	for _, h := range hits {
		needed[h.SubjectID] = nil
	}
	alpha, err := manifest.Alpha()
	fail(err)
	for pi := 0; pi < manifest.NumPartitions(); pi++ {
		vol, err := blastdb.LoadVolume(manifest.VolumePath(pi))
		fail(err)
		for si := 0; si < vol.NumSeqs(); si++ {
			id := vol.ID(si)
			if _, want := needed[id]; !want || needed[id] != nil {
				continue
			}
			subj := vol.Subject(si)
			var letters []byte
			if alpha == bio.DNA {
				letters = bio.DecodeDNA(subj.Codes)
			} else {
				letters = bio.DecodeProtein(subj.Codes)
			}
			needed[id] = &bio.Sequence{ID: id, Letters: letters}
		}
	}

	var m blast.Matrix
	var gaps blast.GapCosts
	if *protein {
		m, gaps = blast.Blosum62(), blast.DefaultProteinGaps()
	} else {
		m, gaps = blast.DefaultDNAMatrix(), blast.DefaultDNAGaps()
	}
	rendered := 0
	for _, h := range hits {
		q := queryByID[h.QueryID]
		s := needed[h.SubjectID]
		if q == nil || s == nil {
			fmt.Fprintf(os.Stderr, "blastview: skipping %s vs %s (sequence not found)\n",
				h.QueryID, h.SubjectID)
			continue
		}
		out, err := blast.RenderAlignment(h, q, s, m, gaps, *width)
		if err != nil {
			fmt.Fprintf(os.Stderr, "blastview: %s vs %s: %v\n", h.QueryID, h.SubjectID, err)
			continue
		}
		fmt.Print(out)
		rendered++
	}
	fmt.Fprintf(os.Stderr, "blastview: rendered %d alignment(s)\n", rendered)
}

func loadHits(path string) ([]*blast.HSP, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return mrblast.ReadHitsFile(path)
	}
	files, err := filepath.Glob(filepath.Join(path, "hits.rank*.tsv"))
	if err != nil {
		return nil, err
	}
	var all []*blast.HSP
	for _, f := range files {
		hits, err := mrblast.ReadHitsFile(f)
		if err != nil {
			return nil, err
		}
		all = append(all, hits...)
	}
	return all, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "blastview:", err)
		os.Exit(1)
	}
}
