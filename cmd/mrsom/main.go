// Command mrsom trains the paper's parallel batch SOM: MapReduce-MPI map
// over blocks of input vectors plus direct MPI broadcast/reduce of the
// codebook each epoch.
//
// Usage:
//
//	mrsom -data vectors.bin -ranks 8 -w 50 -h 50 -epochs 20 \
//	      -umatrix umatrix.pgm -codebook codebook.ppm
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	obscomm "repro/internal/obs/comm"
	"repro/internal/obs/live"
	"repro/internal/som"
)

func main() {
	data := flag.String("data", "", "input vector file (genseq -mode vectors) (required)")
	ranks := flag.Int("ranks", runtime.NumCPU(), "MPI ranks (rank 0 is the master)")
	w := flag.Int("w", 50, "map width")
	h := flag.Int("h", 50, "map height")
	epochs := flag.Int("epochs", 20, "training epochs")
	blockSize := flag.Int("block", 40, "vectors per work unit (the paper uses 40)")
	mapWorkers := flag.Int("map-workers", 1, "goroutines per rank for the accumulation kernel (0 = auto: cores/ranks; bit-identical for a fixed task assignment)")
	seed := flag.Int64("seed", 1, "codebook init seed")
	umatrix := flag.String("umatrix", "", "write the U-matrix as a PGM image")
	codebook := flag.String("codebook", "", "write the codebook's first 3 dims as a PPM image")
	hex := flag.Bool("hex", false, "hexagonal lattice (default rectangular)")
	bubble := flag.Bool("bubble", false, "bubble neighborhood kernel (default Gaussian)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: written every -checkpoint-every epochs; resumed from when it exists")
	checkpointEvery := flag.Int("checkpoint-every", 5, "epochs between checkpoints")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run (.gz compresses; view in Perfetto or cmd/traceview)")
	metrics := flag.Bool("metrics", false, "print the run's metrics registry on completion")
	status := flag.String("status", "", "serve live per-rank status over HTTP on this address (e.g. :8080); watch with curl addr/status.txt")
	statusLinger := flag.Duration("status-linger", 0, "keep the -status server up this long after the run so scrapers can collect final /metrics")
	commPath := flag.String("comm", "", "account per-rank communication; write the merged comm matrix JSON here (.gz compresses; render with traceview -comm)")
	flightPath := flag.String("flight", "", "arm the flight recorder; a post-mortem dump is written here (.gz compresses) if the run deadlocks, panics, or gets SIGQUIT")
	profileDir := flag.String("profile", "", "capture per-phase CPU profiles and an end-of-run heap snapshot into this directory")
	flag.Parse()
	if *data == "" {
		fail(fmt.Errorf("-data is required"))
	}
	if *ranks < 1 {
		fail(fmt.Errorf("need at least 1 rank, got %d", *ranks))
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if *metrics || *status != "" {
		reg = obs.NewRegistry()
	}
	var commT *obscomm.Tracker
	if *commPath != "" {
		commT = obscomm.NewTracker()
	}
	var flight *obs.FlightRecorder
	if *flightPath != "" {
		flight = obs.NewFlightRecorder(obs.DefaultFlightEvents)
	}
	var prof *obs.PhaseProfiler
	if *profileDir != "" {
		p, err := obs.StartPhaseProfiler(*profileDir)
		fail(err)
		prof = p
	}
	var board *obs.Board
	if *status != "" {
		board = obs.NewBoard()
		srv := live.New(board, tracer, reg, commT)
		fail(srv.Start(*status))
		defer srv.Close()
		fmt.Printf("mrsom: live status at http://%s/status (text: /status.txt, metrics: /metrics)\n", srv.Addr())
		if *statusLinger > 0 {
			defer time.Sleep(*statusLinger)
		}
	}

	start := time.Now()
	sum, err := core.RunSOM(*ranks, core.SOMJob{
		DataPath:   *data,
		Width:      *w,
		Height:     *h,
		Epochs:     *epochs,
		BlockSize:  *blockSize,
		Seed:       *seed,
		Hex:        *hex,
		Bubble:     *bubble,
		MapWorkers: core.AutoMapWorkers(*mapWorkers, *ranks),
		Checkpoint: core.SOMCheckpoint{
			Path:  *checkpoint,
			Every: *checkpointEvery,
		},
		Trace:      tracer,
		Metrics:    reg,
		Board:      board,
		Comm:       commT,
		Flight:     flight,
		FlightPath: *flightPath,
		Profile:    prof,
	})
	if prof != nil {
		files, perr := prof.Stop()
		fmt.Printf("mrsom: wrote %d profile file(s) under %s (go tool pprof <file>)\n", len(files), *profileDir)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "mrsom: profiling:", perr)
		}
	}
	fail(err)
	if tracer != nil {
		fail(writeTrace(*tracePath, tracer))
		fmt.Printf("mrsom: wrote trace to %s\n", *tracePath)
	}
	if reg != nil {
		fail(reg.Snapshot().WriteTable(os.Stdout))
	}
	if commT != nil {
		fail(writeComm(*commPath, commT))
		fmt.Printf("mrsom: wrote comm matrix to %s (render with traceview -comm %s)\n", *commPath, *commPath)
	}
	fmt.Printf("mrsom: trained %dx%d map on %d x %d-d vectors, %d epochs, %d ranks in %v\n",
		*w, *h, sum.Vectors, sum.Dim, *epochs, *ranks, time.Since(start).Round(time.Millisecond))
	fmt.Printf("mrsom: quantization error %.5f, topographic error %.5f\n",
		sum.QuantErr, sum.TopoErr)
	if *umatrix != "" {
		fail(som.WritePGM(*umatrix, som.UMatrix(sum.Codebook)))
		fmt.Printf("mrsom: wrote U-matrix to %s\n", *umatrix)
	}
	if *codebook != "" {
		fail(som.WriteCodebookPPM(*codebook, sum.Codebook))
		fmt.Printf("mrsom: wrote codebook image to %s\n", *codebook)
	}
}

func writeComm(path string, tracker *obscomm.Tracker) error {
	f, err := obs.CreateOutput(path)
	if err != nil {
		return err
	}
	if err := tracker.Finalize().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := obs.CreateOutput(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrsom:", err)
		os.Exit(1)
	}
}
