// Command mrblast runs the paper's parallel BLAST: a matrix-split search
// of a query FASTA against a partitioned database over MapReduce-MPI in
// master–worker mode, writing one hits file per rank.
//
// Usage:
//
//	mrblast -query reads.fa -db dbdir/refdb.json -ranks 8 -out results/
//	mrblast -query prots.fa -db dbdir/protdb.json -protein -topk 50 -ranks 8 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	obscomm "repro/internal/obs/comm"
	"repro/internal/obs/live"
)

func main() {
	query := flag.String("query", "", "query FASTA file (required)")
	db := flag.String("db", "", "database manifest JSON (required)")
	ranks := flag.Int("ranks", runtime.NumCPU(), "MPI ranks (rank 0 is the master)")
	blockSize := flag.Int("block-size", 1000, "queries per work-unit block")
	topK := flag.Int("topk", 0, "max hits per query (0 = all passing the cutoff)")
	evalue := flag.Float64("evalue", 10, "E-value cutoff")
	protein := flag.Bool("protein", false, "protein search (blastp); default nucleotide (blastn)")
	filter := flag.Bool("filter", true, "low-complexity query masking (DUST/SEG)")
	out := flag.String("out", "mrblast-out", "output directory (one hits file per rank)")
	excludeSelf := flag.Bool("exclude-self", false, "drop hits of query fragments against their parent sequence")
	iterBlocks := flag.Int("iter-blocks", 0, "query blocks per MapReduce iteration (0 = all at once)")
	cache := flag.Int("cache", 1, "DB partitions cached per rank")
	mapWorkers := flag.Int("map-workers", 1, "goroutines per rank for map tasks (0 = auto: cores/ranks; output identical to serial)")
	strand := flag.Int("strand", 0, "nucleotide strand: 0 both, 1 plus, -1 minus")
	ungapped := flag.Bool("ungapped", false, "skip gapped extension (ungapped statistics)")
	locality := flag.Bool("locality", false, "locality-aware master: prefer giving workers partitions they already hold")
	dynamic := flag.Bool("dynamic-blocks", false, "taper query blocks toward the end of the set")
	format := flag.String("format", "tsv", "output format: tsv | jsonl")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the run (.gz compresses; view in Perfetto or cmd/traceview)")
	metrics := flag.Bool("metrics", false, "print the run's metrics registry on completion")
	status := flag.String("status", "", "serve live per-rank status over HTTP on this address (e.g. :8080); watch with curl addr/status.txt")
	statusLinger := flag.Duration("status-linger", 0, "keep the -status server up this long after the run so scrapers can collect final /metrics")
	commPath := flag.String("comm", "", "account per-rank communication; write the merged comm matrix JSON here (.gz compresses; render with traceview -comm)")
	flightPath := flag.String("flight", "", "arm the flight recorder; a post-mortem dump is written here (.gz compresses) if the run deadlocks, panics, or gets SIGQUIT")
	profileDir := flag.String("profile", "", "capture per-phase CPU profiles and an end-of-run heap snapshot into this directory")
	flag.Parse()
	if *query == "" || *db == "" {
		fail(fmt.Errorf("-query and -db are required"))
	}
	if *ranks < 1 {
		fail(fmt.Errorf("need at least 1 rank, got %d", *ranks))
	}

	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
	}
	var reg *obs.Registry
	if *metrics || *status != "" {
		reg = obs.NewRegistry()
	}
	var commT *obscomm.Tracker
	if *commPath != "" {
		commT = obscomm.NewTracker()
	}
	var flight *obs.FlightRecorder
	if *flightPath != "" {
		flight = obs.NewFlightRecorder(obs.DefaultFlightEvents)
	}
	var prof *obs.PhaseProfiler
	if *profileDir != "" {
		p, err := obs.StartPhaseProfiler(*profileDir)
		fail(err)
		prof = p
	}
	var board *obs.Board
	if *status != "" {
		board = obs.NewBoard()
		srv := live.New(board, tracer, reg, commT)
		fail(srv.Start(*status))
		defer srv.Close()
		fmt.Printf("mrblast: live status at http://%s/status (text: /status.txt, metrics: /metrics)\n", srv.Addr())
		if *statusLinger > 0 {
			defer time.Sleep(*statusLinger)
		}
	}

	start := time.Now()
	sum, err := core.RunBlast(*ranks, core.BlastJob{
		QueryPath:          *query,
		ManifestPath:       *db,
		BlockSize:          *blockSize,
		Protein:            *protein,
		TopK:               *topK,
		EValueCutoff:       *evalue,
		Filter:             *filter,
		OutDir:             *out,
		ExcludeSelfHits:    *excludeSelf,
		BlocksPerIteration: *iterBlocks,
		CacheCapacity:      *cache,
		MapWorkers:         core.AutoMapWorkers(*mapWorkers, *ranks),
		Strand:             int8(*strand),
		UngappedOnly:       *ungapped,
		LocalityAware:      *locality,
		DynamicBlocks:      *dynamic,
		OutFormat:          *format,
		Trace:              tracer,
		Metrics:            reg,
		Board:              board,
		Comm:               commT,
		Flight:             flight,
		FlightPath:         *flightPath,
		Profile:            prof,
	})
	if prof != nil {
		files, perr := prof.Stop()
		fmt.Printf("mrblast: wrote %d profile file(s) under %s (go tool pprof <file>)\n", len(files), *profileDir)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "mrblast: profiling:", perr)
		}
	}
	fail(err)
	fmt.Printf("mrblast: %d queries in %d blocks x %d partitions = %d work units on %d ranks\n",
		sum.Queries, sum.Blocks, sum.Partitions, sum.WorkItems, *ranks)
	fmt.Printf("mrblast: %d hits in %v; useful CPU utilization %.2f; outputs under %s\n",
		sum.TotalHits, time.Since(start).Round(time.Millisecond), sum.Utilization, *out)
	if tracer != nil {
		fail(writeTrace(*tracePath, tracer))
		fmt.Printf("mrblast: wrote trace to %s\n", *tracePath)
	}
	if reg != nil {
		fail(reg.Snapshot().WriteTable(os.Stdout))
	}
	if commT != nil {
		fail(writeComm(*commPath, commT))
		fmt.Printf("mrblast: wrote comm matrix to %s (render with traceview -comm %s)\n", *commPath, *commPath)
	}
}

func writeComm(path string, tracker *obscomm.Tracker) error {
	f, err := obs.CreateOutput(path)
	if err != nil {
		return err
	}
	if err := tracker.Finalize().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := obs.CreateOutput(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrblast:", err)
		os.Exit(1)
	}
}
