// Command mergehits merges the per-rank output files of mrblast into a
// single TSV — the paper's "combiner job" step, which it notes is rarely
// needed for large-scale downstream analysis but convenient for small
// result sets. Hits are ordered by query ID, then ascending E-value.
//
// Usage:
//
//	mergehits -in hits/ -out merged.tsv
//	mergehits -in hits/ -topk 5 -out merged.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/blast"
	"repro/internal/mrblast"
)

func main() {
	in := flag.String("in", "", "directory of mrblast per-rank hits files (required)")
	out := flag.String("out", "", "merged output file (default stdout)")
	topK := flag.Int("topk", 0, "keep at most K hits per query (0 = all)")
	flag.Parse()
	if *in == "" {
		fail(fmt.Errorf("-in is required"))
	}
	files, err := filepath.Glob(filepath.Join(*in, "hits.rank*.tsv"))
	fail(err)
	if len(files) == 0 {
		fail(fmt.Errorf("no hits.rank*.tsv files in %s", *in))
	}
	sort.Strings(files)
	var all []*blast.HSP
	for _, f := range files {
		hits, err := mrblast.ReadHitsFile(f)
		fail(err)
		all = append(all, hits...)
	}
	// Group per query, keep each group's E-value order (already sorted in
	// the rank files), optionally cut to top-K, and order groups by query
	// ID.
	byQuery := map[string][]*blast.HSP{}
	var order []string
	for _, h := range all {
		if _, ok := byQuery[h.QueryID]; !ok {
			order = append(order, h.QueryID)
		}
		byQuery[h.QueryID] = append(byQuery[h.QueryID], h)
	}
	sort.Strings(order)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		fail(err)
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	total := 0
	for _, q := range order {
		hits := byQuery[q]
		sort.SliceStable(hits, func(i, j int) bool { return hits[i].EValue < hits[j].EValue })
		if *topK > 0 && len(hits) > *topK {
			hits = hits[:*topK]
		}
		for _, h := range hits {
			fmt.Fprintln(w, h.String())
			total++
		}
	}
	fail(w.Flush())
	fmt.Fprintf(os.Stderr, "mergehits: %d hits for %d queries from %d rank files\n",
		total, len(order), len(files))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mergehits:", err)
		os.Exit(1)
	}
}
