// Command shred is the read simulator: it fragments sequences into
// overlapping windows, reproducing the paper's query preparation (RefSeq
// sequences shredded into 400 bp fragments overlapping by 200 bp).
//
// Usage:
//
//	shred -in refs.fa -out reads.fa -frag 400 -overlap 200
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bio"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", "", "output FASTA file (required)")
	frag := flag.Int("frag", 400, "fragment length")
	overlap := flag.Int("overlap", 200, "overlap between consecutive fragments")
	minLen := flag.Int("minlen", 100, "drop terminal fragments shorter than this")
	flag.Parse()
	if *in == "" || *out == "" {
		fail(fmt.Errorf("-in and -out are required"))
	}
	seqs, err := bio.ReadFastaFile(*in)
	fail(err)
	frags, err := bio.ShredAll(seqs, bio.ShredParams{
		FragLen: *frag, Overlap: *overlap, MinLen: *minLen,
	})
	fail(err)
	fail(bio.WriteFastaFile(*out, frags))
	fmt.Printf("shredded %d sequences into %d fragments (%d bp, %d bp overlap) -> %s\n",
		len(seqs), len(frags), *frag, *overlap, *out)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "shred:", err)
		os.Exit(1)
	}
}
