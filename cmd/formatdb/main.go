// Command formatdb is the equivalent of NCBI's formatdb/makeblastdb: it
// converts a FASTA collection into a partitioned BLAST database — 2-bit
// packed volumes plus a JSON manifest. The partitions are the second axis
// of the parallel search's (query block × DB partition) work-item grid.
//
// Usage:
//
//	formatdb -in refs.fa -out dbdir -name refdb -target-residues 1000000
//	formatdb -in prots.fa -out dbdir -name protdb -protein
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bio"
	"repro/internal/blastdb"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	out := flag.String("out", ".", "output directory")
	name := flag.String("name", "db", "database name")
	title := flag.String("title", "", "database title (defaults to name)")
	target := flag.Int64("target-residues", 0, "approximate residues per partition (0 = single volume)")
	protein := flag.Bool("protein", false, "protein database (default nucleotide)")
	flag.Parse()
	if *in == "" {
		fail(fmt.Errorf("-in is required"))
	}
	seqs, err := bio.ReadFastaFile(*in)
	fail(err)
	alpha := bio.DNA
	if *protein {
		alpha = bio.Protein
	}
	m, err := blastdb.Format(seqs, alpha, *out, *name, blastdb.FormatOptions{
		Title:          *title,
		TargetResidues: *target,
	})
	fail(err)
	fmt.Printf("formatted %d sequences (%d residues) into %d partition(s) under %s\n",
		m.NumSeqs, m.TotalResidues, m.NumPartitions(), *out)
	for i, v := range m.Volumes {
		fmt.Printf("  partition %3d: %s  %d seqs, %d residues, %d bytes\n",
			i, v.Path, v.NumSeqs, v.Residues, v.Bytes)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "formatdb:", err)
		os.Exit(1)
	}
}
