// Command benchfig regenerates every figure and table of the paper's
// evaluation section.
//
// Figures 3–6 and the protein scaling numbers run the discrete-event
// cluster simulator over the calibrated cost model; Figures 7 and 8 train
// real SOMs and write image files. See EXPERIMENTS.md for the recorded
// outputs and the paper-vs-measured comparison.
//
// Usage:
//
//	benchfig -fig all -out results/
//	benchfig -fig 4            # one figure to stdout
//	benchfig -fig 6 -epochs 10
//	benchfig -calibrate        # print engine calibration and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3|4|5|6|7|8|p|htc|ablations|all")
	out := flag.String("out", "", "directory for image outputs (figs 7/8); empty = temp-free stdout summary only")
	epochs := flag.Int("epochs", 20, "SOM training epochs (figs 6/7/8)")
	calibrate := flag.Bool("calibrate", false, "measure the real engines and print the calibration, then exit")
	useCalibration := flag.Bool("use-calibration", false, "calibrate first and feed measured dispersion/ratios into the simulated figures")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	flag.Parse()

	if *calibrate {
		c, err := bench.CalibrateBlast(1)
		fail(err)
		fmt.Printf("blastn: %.3g s/Mcell\nblastp: %.3g s/Mcell (%.0fx nucleotide)\n"+
			"blast per-block dispersion sigma: %.2f\nSOM accumulate: %.3g s/vector\n",
			c.BlastnSecPerMCell, c.BlastpSecPerMCell,
			c.BlastpSecPerMCell/c.BlastnSecPerMCell, c.BlastSigma, c.SOMSecPerVector)
		return
	}

	nucModel := bench.DefaultNucleotideModel()
	protModel := bench.DefaultProteinModel()
	somSecPerVector := 0.004
	if *useCalibration {
		c, err := bench.CalibrateBlast(1)
		fail(err)
		nucModel = c.NucleotideModel()
		protModel = c.ProteinModel()
		somSecPerVector = c.SOMSecPerVector
		fmt.Printf("(using measured calibration: sigma=%.2f, SOM %.2g s/vector)\n\n",
			nucModel.Sigma, somSecPerVector)
	}
	if *out != "" {
		fail(os.MkdirAll(*out, 0o755))
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }
	emit := func(f *bench.Figure) {
		fail(bench.WriteFigure(os.Stdout, f))
		if *csvDir != "" {
			fail(os.MkdirAll(*csvDir, 0o755))
			cf, err := os.Create(filepath.Join(*csvDir, f.ID+".csv"))
			fail(err)
			fail(bench.WriteFigureCSV(cf, f))
			fail(cf.Close())
		}
	}

	if want("3") {
		f, err := bench.Fig3(nucModel)
		fail(err)
		emit(f)
	}
	if want("4") {
		f, err := bench.Fig4(nucModel)
		fail(err)
		emit(f)
		// Core·min/query is already cores-normalized: relative efficiency
		// vs the 32-core point is y(32)/y(p). The paper reports 167% at
		// 128 cores and 95% at 1024 for the 80-block series.
		rel := &bench.Figure{
			ID:     "fig4-relative",
			Title:  "efficiency relative to 32 cores (y32/y)",
			XLabel: "cores",
		}
		for _, s := range f.Series {
			rs := bench.Series{Label: s.Label}
			base := s.Points[0].Y
			for _, p := range s.Points {
				rs.Points = append(rs.Points, bench.Point{X: p.X, Y: base / p.Y})
			}
			rel.Series = append(rel.Series, rs)
		}
		emit(rel)
	}
	if want("5") {
		f, err := bench.Fig5(protModel)
		fail(err)
		emit(f)
	}
	if want("p") {
		r, err := bench.ProteinScaling(protModel)
		fail(err)
		fmt.Printf("== protein scaling (§IV.A text) ==\n"+
			"core·min/query @512:  %.3g\ncore·min/query @1024: %.3g\n"+
			"overhead 1024 vs 512: %.1f%%   (paper: ~6%%)\n"+
			"wall clock @1024:     %.0f min (paper: 294 min)\n\n",
			r.CoreMinPerQuery512, r.CoreMinPerQuery1024,
			r.Overhead1024vs512*100, r.Wall1024Min)
	}
	if want("htc") {
		htc, mpiR, err := bench.HTCvsMPI(protModel, 960)
		fail(err)
		fmt.Print(bench.WriteHTCComparison(htc, mpiR))
		fmt.Println()
	}
	if want("6") {
		f, err := bench.Fig6(somSecPerVector, *epochs)
		fail(err)
		emit(f)
		fail(bench.WriteEfficiencyTable(os.Stdout, f))
		// Paper-era hardware constant for comparison with the reported 96%.
		fSlow, err := bench.Fig6(0.012, *epochs)
		fail(err)
		fmt.Println("-- with paper-era per-vector cost (12 ms) --")
		fail(bench.WriteEfficiencyTable(os.Stdout, fSlow))
	}
	if want("7") {
		res, err := bench.Fig7(*out, 50, 50, 100, *epochs)
		fail(err)
		fmt.Printf("== fig7: 50x50 SOM on 100 RGB vectors ==\n"+
			"quantization error: %.4f\ntopographic error:  %.4f\nfiles: %v\n\n",
			res.QuantErr, res.TopoErr, res.Files)
	}
	if want("8") {
		res, err := bench.Fig8(*out, 50, 50, 10000, 500, *epochs)
		fail(err)
		fmt.Printf("== fig8: 50x50 SOM on 10,000 random 500-d vectors ==\n"+
			"quantization error: %.4f\ntopographic error:  %.4f\nfiles: %v\n\n",
			res.QuantErr, res.TopoErr, res.Files)
	}
	if want("ablations") {
		for _, cores := range []int{128, 1024} {
			f, err := bench.SchedulerAblation(nucModel, cores)
			fail(err)
			f.ID = fmt.Sprintf("%s-%d", f.ID, cores)
			emit(f)
		}
		f, err := bench.BlockSizeAblation(nucModel, 1024, nil)
		fail(err)
		emit(f)
		f, err = bench.LocalityLoadsAblation(nucModel)
		fail(err)
		emit(f)
		f, err = bench.TaperedBlocksAblation(nucModel, 1024)
		fail(err)
		emit(f)
		f, err = bench.FailureAblation(nucModel, bench.DefaultFailureModel())
		fail(err)
		emit(f)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}
