// Command genseq generates the synthetic datasets the reproduction uses in
// place of the paper's NCBI databases and random benchmark vectors.
//
// Modes:
//
//	genseq -mode genomes  -n 20 -minlen 50000 -maxlen 500000 -strains 3 -identity 0.92 -out refs.fa
//	genseq -mode proteins -n 1000 -minlen 100 -maxlen 600 -out prots.fa
//	genseq -mode vectors  -n 81920 -dim 256 -out vectors.bin
//	genseq -mode rgb      -n 100 -out rgb.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bio"
	"repro/internal/som"
)

func main() {
	mode := flag.String("mode", "genomes", "genomes | proteins | vectors | rgb")
	n := flag.Int("n", 10, "number of sequences or vectors")
	minLen := flag.Int("minlen", 10000, "minimum sequence length (genomes/proteins)")
	maxLen := flag.Int("maxlen", 100000, "maximum sequence length (genomes/proteins)")
	strains := flag.Int("strains", 0, "derived strains per genome (genomes mode)")
	identity := flag.Float64("identity", 0.92, "strain identity to parent (genomes mode)")
	dim := flag.Int("dim", 256, "vector dimension (vectors mode)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "output file (required)")
	flag.Parse()
	if *out == "" {
		fail(fmt.Errorf("-out is required"))
	}

	g := bio.NewGenerator(bio.SynthParams{Seed: *seed})
	switch *mode {
	case "genomes":
		set := g.GenerateGenomeSet(bio.GenomeSetParams{
			NTaxa: *n, MinLen: *minLen, MaxLen: *maxLen,
			StrainsPerGenome: *strains, StrainIdentity: *identity,
		})
		all := set.All()
		fail(bio.WriteFastaFile(*out, all))
		fmt.Printf("wrote %d sequences (%d genomes, %d strains each) to %s\n",
			len(all), *n, *strains, *out)
	case "proteins":
		seqs := make([]*bio.Sequence, *n)
		for i := range seqs {
			length := *minLen
			if *maxLen > *minLen {
				length += i * (*maxLen - *minLen) / max(*n-1, 1)
			}
			seqs[i] = g.RandomProtein(fmt.Sprintf("prot%05d", i), length)
		}
		fail(bio.WriteFastaFile(*out, seqs))
		fmt.Printf("wrote %d proteins to %s\n", *n, *out)
	case "vectors":
		data := bio.RandomVectors(*seed, *n, *dim)
		fail(som.WriteVectorFile(*out, data, *n, *dim))
		fmt.Printf("wrote %d x %d-d vectors to %s\n", *n, *dim, *out)
	case "rgb":
		data := bio.RandomRGB(*seed, *n)
		fail(som.WriteVectorFile(*out, data, *n, 3))
		fmt.Printf("wrote %d RGB vectors to %s\n", *n, *out)
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "genseq:", err)
		os.Exit(1)
	}
}
