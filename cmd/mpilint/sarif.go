// SARIF 2.1.0 output for GitHub code scanning. One run, one driver
// (mpilint), one rule per analyzer, one result per finding. Only the
// subset of the format that code scanning reads is emitted; the log
// validates against the 2.1.0 schema (see TestSARIFOutput).
package main

import (
	"encoding/json"
	"io"

	"repro/internal/lint"
)

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	// URI is the finding path relative to the module root with forward
	// slashes — the form code scanning resolves against the checkout.
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders findings as an indented SARIF log. The rules table
// always lists the full suite, so uploads stay stable as findings come and
// go; Results is always non-nil so an empty run serializes as [] rather
// than null.
func writeSARIF(w io.Writer, findings []lint.Finding) error {
	var rules []sarifRule
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		line := f.Pos.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; guard synthetic positions
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: normalizePath(f.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mpilint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
