// Command mpilint runs the repository's MPI static-analysis suite
// (internal/lint) over a set of package directories and reports misuse of
// the in-process MPI layer with file:line:col findings.
//
// Usage:
//
//	mpilint [flags] [packages]
//
// Packages follow go-tool conventions: a directory path, or a path ending
// in /... to walk recursively. With no arguments, ./... is assumed.
//
// Exit status is 0 when no findings are reported, 1 when findings exist,
// and 2 on usage or load errors — so `make lint` and CI can gate on it the
// same way they gate on go vet.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpilint [flags] [packages]\n\n"+
			"Analyzes Go packages for misuse of the internal/mpi layer.\n"+
			"Packages are directories; a trailing /... walks recursively.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	enabled, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "mpilint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "mpilint:", err)
		return 2
	}

	fset := token.NewFileSet()
	var findings []lint.Finding
	for _, dir := range dirs {
		pkgs, err := lint.LoadDir(fset, dir, lint.LoadOptions{Tests: *tests})
		if err != nil {
			fmt.Fprintln(stderr, "mpilint:", err)
			return 2
		}
		for _, pkg := range pkgs {
			findings = append(findings, lint.CheckWith(pkg, enabled)...)
		}
	}
	lint.Sort(findings)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mpilint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag to a subset of the suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list to see the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
