// Command mpilint runs the repository's static-analysis suite
// (internal/lint) over a set of package directories and reports misuse of
// the in-process MPI layer and the MapReduce layer built on it with
// file:line:col findings. Use -list to see the analyzers and -only to run a
// subset (e.g. -only phase,capture for just the MapReduce checks).
//
// Usage:
//
//	mpilint [flags] [packages]
//
// Packages follow go-tool conventions: a directory path, or a path ending
// in /... to walk recursively. With no arguments, ./... is assumed.
//
// With -json, each finding is emitted as one JSON object per line
// ({"file","line","col","check","message"}) for machine consumption; the
// default text format matches the GitHub Actions problem matcher in
// .github/mpilint-matcher.json so findings annotate PR diffs in CI.
//
// v2 additions:
//
//   - -summary prints the per-function communication summaries (the ordered
//     MPI op traces the interprocedural analyzers reason over) instead of
//     running the analyzers — a debugging window into what the engine sees.
//   - -stats appends per-analyzer finding counts and the full
//     mpilint:ignore suppression inventory (with use counts) after the
//     findings.
//   - -baseline FILE subtracts known findings: a finding whose
//     check+file+message triple appears in FILE is accepted as pre-existing
//     and not reported, so CI fails only on NEW findings. Regenerate the
//     file with -write-baseline FILE (see `make lint-baseline`). Keys carry
//     no line numbers, so edits elsewhere in a file don't invalidate them,
//     and file paths are stored module-root-relative with forward slashes,
//     so a baseline written on one machine (or OS) matches on another.
//
// v3 additions (the cross-rank protocol verifier):
//
//   - -world N runs the unmatched/mismatch/globaldeadlock checks in an
//     N-rank world only, instead of the default {2, 4, 8} sweep.
//   - -protocol prints each SPMD entrypoint's per-rank instantiated traces
//     (what the verifier simulated) instead of running the analyzers — the
//     protocol-level counterpart of -summary.
//   - -sarif emits the findings as a SARIF 2.1.0 log on stdout, the format
//     GitHub code scanning ingests (see the upload-sarif step in CI).
//
// Exit status is 0 when no (new) findings are reported, 1 when findings
// exist, and 2 on usage or load errors — so `make lint` and CI can gate on
// it the same way they gate on go vet.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON Lines (file, line, col, check, message)")
	summary := fs.Bool("summary", false, "print per-function communication summaries instead of findings")
	stats := fs.Bool("stats", false, "append finding counts and the suppression inventory")
	baselinePath := fs.String("baseline", "", "subtract findings listed in this baseline file; report only new ones")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit")
	world := fs.Int("world", 0, "run the cross-rank protocol checks in an N-rank world only (default: sweep 2, 4, 8)")
	protocol := fs.Bool("protocol", false, "print per-entrypoint per-rank instantiated traces instead of findings")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log for code-scanning upload")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpilint [flags] [packages]\n\n"+
			"Analyzes Go packages for misuse of the internal/mpi layer.\n"+
			"Packages are directories; a trailing /... walks recursively.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *world != 0 {
		if *world < 2 || *world > 64 {
			fmt.Fprintf(stderr, "mpilint: -world must be between 2 and 64, got %d\n", *world)
			return 2
		}
		defer func(old []int) { lint.ProtocolWorlds = old }(lint.ProtocolWorlds)
		lint.ProtocolWorlds = []int{*world}
	}

	enabled, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "mpilint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "mpilint:", err)
		return 2
	}

	fset := token.NewFileSet()
	var pkgs []*lint.Package
	for _, dir := range dirs {
		loaded, err := lint.LoadDir(fset, dir, lint.LoadOptions{Tests: *tests})
		if err != nil {
			fmt.Fprintln(stderr, "mpilint:", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	if *summary {
		printSummaries(stdout, fset, pkgs)
		return 0
	}

	if *protocol {
		for _, pkg := range pkgs {
			fmt.Fprint(stdout, lint.ProtocolDump(pkg))
		}
		return 0
	}

	var findings []lint.Finding
	for _, pkg := range pkgs {
		findings = append(findings, lint.CheckWith(pkg, enabled)...)
	}
	lint.Sort(findings)

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintln(stderr, "mpilint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "mpilint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	baselined := 0
	if *baselinePath != "" {
		known, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "mpilint:", err)
			return 2
		}
		kept := findings[:0]
		for _, f := range findings {
			if known[baselineKey(f)] {
				baselined++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
	}

	if *sarifOut {
		if err := writeSARIF(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "mpilint:", err)
			return 2
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "mpilint: %d finding(s)\n", len(findings))
			return 1
		}
		return 0
	}

	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		if *jsonOut {
			// One object per line: the CI format consumed by tooling that
			// does not want to parse the human text.
			if err := enc.Encode(jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Check:   f.Analyzer,
				Message: f.Message,
			}); err != nil {
				fmt.Fprintln(stderr, "mpilint:", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, f)
	}
	if *stats {
		printStats(stdout, pkgs, findings, baselined)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mpilint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// printSummaries dumps every function's communication summary, skipping the
// (many) functions that perform no communication at all.
func printSummaries(w io.Writer, fset *token.FileSet, pkgs []*lint.Package) {
	for _, pkg := range pkgs {
		for _, sum := range pkg.Summaries().All() {
			if len(sum.Trace) == 0 {
				continue
			}
			fmt.Fprint(w, sum.Format(fset))
		}
	}
}

// printStats renders the -stats block: findings per analyzer, then the
// suppression inventory with per-directive use counts.
func printStats(w io.Writer, pkgs []*lint.Package, findings []lint.Finding, baselined int) {
	fmt.Fprintf(w, "-- stats --\n")
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	var names []string
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "findings %-14s %d\n", n, counts[n])
	}
	if baselined > 0 {
		fmt.Fprintf(w, "baselined findings    %d\n", baselined)
	}
	total := 0
	for _, pkg := range pkgs {
		for _, s := range pkg.Suppressions() {
			total++
			checks := strings.Join(s.Checks, ",")
			if checks == "" {
				checks = "(bare)"
			}
			reason := s.Reason
			if reason == "" {
				reason = "(no reason)"
			}
			fmt.Fprintf(w, "suppression %s:%d %s used=%d -- %s\n",
				s.Pos.Filename, s.Pos.Line, checks, s.Used, reason)
		}
	}
	fmt.Fprintf(w, "suppressions total    %d\n", total)
}

// baselineKey identifies a finding without its line/column, so baseline
// entries survive unrelated edits to the same file. The file component is
// module-root-relative with forward slashes, so keys match across machines
// and operating systems.
func baselineKey(f lint.Finding) string {
	return f.Analyzer + "\t" + normalizePath(f.Pos.Filename) + "\t" + f.Message
}

// normalizePath rewrites a finding path to module-root-relative,
// forward-slash form. Paths outside any module (or unresolvable ones) are
// only slash-normalized, so bare trees still baseline consistently on one
// machine.
func normalizePath(file string) string {
	// Treat backslashes as separators regardless of host OS, so a baseline
	// written on Windows loads correctly elsewhere.
	file = strings.ReplaceAll(file, `\`, "/")
	abs, err := filepath.Abs(filepath.FromSlash(file))
	if err != nil {
		return file
	}
	if root := moduleRootOf(filepath.Dir(abs)); root != "" {
		if rel, err := filepath.Rel(root, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// moduleRootCache memoizes lint.ModuleRoot per directory: a lint run emits
// many findings from few directories, and each lookup walks to the
// filesystem root.
var (
	moduleRootMu    sync.Mutex
	moduleRootCache = map[string]string{}
)

func moduleRootOf(dir string) string {
	moduleRootMu.Lock()
	defer moduleRootMu.Unlock()
	if root, ok := moduleRootCache[dir]; ok {
		return root
	}
	root := lint.ModuleRoot(dir)
	moduleRootCache[dir] = root
	return root
}

// loadBaseline reads a baseline file into a key set. Blank lines and
// #-comments are ignored. The file component of each key is re-normalized
// on load, so baselines written before path normalization (or with the
// other OS's separators) keep matching.
func loadBaseline(path string) (map[string]bool, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	known := map[string]bool{}
	sc := bufio.NewScanner(fh)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Already-canonical keys (relative, forward slashes) pass through
		// untouched: re-anchoring them against the current directory would
		// mangle them. Legacy backslashed paths get their separators
		// converted; legacy absolute paths get the full module-root
		// normalization.
		if parts := strings.Split(line, "\t"); len(parts) == 3 {
			p := strings.ReplaceAll(parts[1], `\`, "/")
			if filepath.IsAbs(p) {
				p = normalizePath(p)
			}
			line = parts[0] + "\t" + p + "\t" + parts[2]
		}
		known[line] = true
	}
	return known, sc.Err()
}

// saveBaseline writes the findings as sorted unique baseline keys.
func saveBaseline(path string, findings []lint.Finding) error {
	keys := map[string]bool{}
	for _, f := range findings {
		keys[baselineKey(f)] = true
	}
	var lines []string
	for k := range keys {
		lines = append(lines, k)
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# mpilint baseline: findings accepted as pre-existing.\n")
	b.WriteString("# One finding per line, check<TAB>file<TAB>message — no line numbers,\n")
	b.WriteString("# so edits elsewhere in a file don't invalidate entries.\n")
	b.WriteString("# Regenerate with `make lint-baseline`.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// jsonFinding is the -json wire format, one object per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// selectAnalyzers resolves the -only flag to a subset of the suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list to see the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
