// Command mpilint runs the repository's static-analysis suite
// (internal/lint) over a set of package directories and reports misuse of
// the in-process MPI layer and the MapReduce layer built on it with
// file:line:col findings. Use -list to see the analyzers and -only to run a
// subset (e.g. -only phase,capture for just the MapReduce checks).
//
// Usage:
//
//	mpilint [flags] [packages]
//
// Packages follow go-tool conventions: a directory path, or a path ending
// in /... to walk recursively. With no arguments, ./... is assumed.
//
// With -json, each finding is emitted as one JSON object per line
// ({"file","line","col","check","message"}) for machine consumption; the
// default text format matches the GitHub Actions problem matcher in
// .github/mpilint-matcher.json so findings annotate PR diffs in CI.
//
// Exit status is 0 when no findings are reported, 1 when findings exist,
// and 2 on usage or load errors — so `make lint` and CI can gate on it the
// same way they gate on go vet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON Lines (file, line, col, check, message)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpilint [flags] [packages]\n\n"+
			"Analyzes Go packages for misuse of the internal/mpi layer.\n"+
			"Packages are directories; a trailing /... walks recursively.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	enabled, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "mpilint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "mpilint:", err)
		return 2
	}

	fset := token.NewFileSet()
	var findings []lint.Finding
	for _, dir := range dirs {
		pkgs, err := lint.LoadDir(fset, dir, lint.LoadOptions{Tests: *tests})
		if err != nil {
			fmt.Fprintln(stderr, "mpilint:", err)
			return 2
		}
		for _, pkg := range pkgs {
			findings = append(findings, lint.CheckWith(pkg, enabled)...)
		}
	}
	lint.Sort(findings)
	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		if *jsonOut {
			// One object per line: the CI format consumed by tooling that
			// does not want to parse the human text.
			if err := enc.Encode(jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Col:     f.Pos.Column,
				Check:   f.Analyzer,
				Message: f.Message,
			}); err != nil {
				fmt.Fprintln(stderr, "mpilint:", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mpilint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the -json wire format, one object per line.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// selectAnalyzers resolves the -only flag to a subset of the suite.
func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list to see the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
