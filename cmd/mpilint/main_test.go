package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module with one buggy and one clean file.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestMpilintEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
	c.Send(1, -9, nil)
}
`,
		"good/good.go": `package good

import "repro/internal/mpi"

func f(c *mpi.Comm) int {
	c.Barrier()
	return mpi.Bcast(c, 0, 1)
}
`,
	})

	var stdout, stderr strings.Builder
	code := run([]string{dir + "/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"bad.go:7:3: [divergence]",
		"bad.go:9:12: [tags]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "good.go") {
		t.Errorf("clean file was flagged:\n%s", out)
	}

	// The clean package alone exits 0 with no output.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{filepath.Join(dir, "good")}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output: %s", stdout.String())
	}
}

func TestMpilintMRFamilyEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mrmpi"

func f(mr *mrmpi.MapReduce, fn any) {
	n := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		n++
		return nil
	})
	mr.Reduce(fn)
	_ = n
}
`,
	})

	var stdout, stderr strings.Builder
	code := run([]string{"-only", "phase,capture", dir + "/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	// The callback counter write is a capture finding; the Map→Reduce with
	// no Collate in between is a phase finding (the Map call pins the
	// protocol state even on a parameter-received MapReduce).
	for _, want := range []string{"bad.go:8:3: [capture]", "bad.go:11:2: [phase]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// -json: same findings, one JSON object per line.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-only", "capture", dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-json exit code = %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	var finding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("-json produced %d lines, want 1: %q", len(lines), stdout.String())
	}
	if err := json.Unmarshal([]byte(lines[0]), &finding); err != nil {
		t.Fatalf("-json line does not parse: %v\n%s", err, lines[0])
	}
	if finding.Check != "capture" || finding.Line != 8 || finding.Col != 3 ||
		!strings.HasSuffix(finding.File, "bad.go") || finding.Message == "" {
		t.Errorf("unexpected -json finding: %+v", finding)
	}
}

func TestMpilintFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{
		"divergence", "aliasedbcast", "tags", "root",
		"phase", "capture", "retain", "kvescape",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %q", name)
		}
	}
	if code := run([]string{"-only", "nonsense", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-only nonsense: exit %d, want 2", code)
	}
	if code := run([]string{"/definitely/not/a/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad dir: exit %d, want 2", code)
	}
}
