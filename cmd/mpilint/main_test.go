package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module with one buggy and one clean file.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestMpilintEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
	c.Send(1, -9, nil)
}
`,
		"good/good.go": `package good

import "repro/internal/mpi"

func f(c *mpi.Comm) int {
	c.Barrier()
	return mpi.Bcast(c, 0, 1)
}
`,
	})

	var stdout, stderr strings.Builder
	code := run([]string{dir + "/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"bad.go:7:3: [divergence]",
		"bad.go:9:12: [tags]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "good.go") {
		t.Errorf("clean file was flagged:\n%s", out)
	}

	// The clean package alone exits 0 with no output.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{filepath.Join(dir, "good")}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output: %s", stdout.String())
	}
}

func TestMpilintMRFamilyEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mrmpi"

func f(mr *mrmpi.MapReduce, fn any) {
	n := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		n++
		return nil
	})
	mr.Reduce(fn)
	_ = n
}
`,
	})

	var stdout, stderr strings.Builder
	code := run([]string{"-only", "phase,capture", dir + "/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	// The callback counter write is a capture finding; the Map→Reduce with
	// no Collate in between is a phase finding (the Map call pins the
	// protocol state even on a parameter-received MapReduce).
	for _, want := range []string{"bad.go:8:3: [capture]", "bad.go:11:2: [phase]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// -json: same findings, one JSON object per line.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-only", "capture", dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-json exit code = %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	var finding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("-json produced %d lines, want 1: %q", len(lines), stdout.String())
	}
	if err := json.Unmarshal([]byte(lines[0]), &finding); err != nil {
		t.Fatalf("-json line does not parse: %v\n%s", err, lines[0])
	}
	if finding.Check != "capture" || finding.Line != 8 || finding.Col != 3 ||
		!strings.HasSuffix(finding.File, "bad.go") || finding.Message == "" {
		t.Errorf("unexpected -json finding: %+v", finding)
	}
}

func TestMpilintBaseline(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
}
`,
	})
	baseline := filepath.Join(dir, "baseline.txt")

	// Write the baseline: all current findings become accepted.
	var stdout, stderr strings.Builder
	if code := run([]string{"-write-baseline", baseline, dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "divergence\t") {
		t.Fatalf("baseline missing divergence entry:\n%s", data)
	}

	// Against the baseline the same tree is clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit %d\n%s%s", code, stdout.String(), stderr.String())
	}

	// A new finding still fails, and only the new one is reported.
	if err := os.WriteFile(filepath.Join(dir, "bad", "worse.go"), []byte(`package bad

import "repro/internal/mpi"

func g(c *mpi.Comm) {
	c.Send(1, -9, nil)
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new-finding run exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[tags]") || strings.Contains(out, "[divergence]") {
		t.Errorf("baselined run should report only the new tags finding:\n%s", out)
	}
}

func TestMpilintSummaryAndStats(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"p/p.go": `package p

import "repro/internal/mpi"

func exchange(c *mpi.Comm) {
	c.Send(1, 7, "x")
	c.Recv(1, 8)
	helper(c)
}

func helper(c *mpi.Comm) {
	c.Barrier()
}

func quiet() int { return 1 }
`,
		"p/sup.go": `package p

import "repro/internal/mpi"

func orphan(c *mpi.Comm) {
	c.Send(1, 99, "x") // mpilint:ignore tags -- exercising the stats inventory
	c.Recv(1, 7)
	c.Recv(1, 8)
}
`,
	})

	var stdout, stderr strings.Builder
	if code := run([]string{"-summary", dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-summary exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"exchange (", "send", "Send(peer=1,tag=7)", "recv", "collective", "Barrier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "quiet") {
		t.Errorf("-summary should skip functions with no communication:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	// -only: the fixture is deliberately not SPMD-clean (its sends and recvs
	// never pair up), so the cross-rank protocol checks would rightly fire.
	if code := run([]string{"-stats", "-only", "tags,suppress", dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-stats exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	out = stdout.String()
	for _, want := range []string{
		"-- stats --",
		"suppression ",
		"tags used=1 -- exercising the stats inventory",
		"suppressions total    1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats missing %q:\n%s", want, out)
		}
	}
}

func TestMpilintFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{
		"divergence", "aliasedbcast", "tags", "root",
		"phase", "capture", "retain", "kvescape",
		"requests", "goroutines", "deadlock", "sync", "suppress", "obslint",
		"unmatched", "mismatch", "globaldeadlock",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %q", name)
		}
	}
	if code := run([]string{"-only", "nonsense", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-only nonsense: exit %d, want 2", code)
	}
	if code := run([]string{"/definitely/not/a/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad dir: exit %d, want 2", code)
	}
	if code := run([]string{"-world", "1", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-world 1: exit %d, want 2", code)
	}
}

// ringTree is a module whose only bug is cross-rank: each rank receives
// from the rank it sent to, which pairs up in a 2-rank world but strands
// everyone at 4 ranks. Only the protocol checks can see it.
func ringTree(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module ringmod\n\ngo 1.22\n",
		"ring/ring.go": `package ring

import "repro/internal/mpi"

func step(c *mpi.Comm) {
	c.Send((c.Rank()+1)%c.Size(), 9, "tok")
	c.Recv((c.Rank()+1)%c.Size(), 9)
}
`,
	})
}

func TestMpilintWorldFlag(t *testing.T) {
	dir := ringTree(t)

	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "unmatched", "-world", "2", dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-world 2 exit %d, want 0 (the ring is consistent at 2 ranks)\n%s%s", code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "unmatched", "-world", "4", dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-world 4 exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "4-rank world") {
		t.Errorf("finding should name the world size:\n%s", stdout.String())
	}
}

func TestMpilintProtocolFlag(t *testing.T) {
	dir := ringTree(t)
	var stdout, stderr strings.Builder
	if code := run([]string{"-protocol", dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-protocol exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"step (", "world 2:", "world 4:", "world 8:",
		"rank 0: Send(peer=1,tag=9) Recv(peer=1,tag=9)",
		"rank 3: Send(peer=0,tag=9) Recv(peer=0,tag=9)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-protocol missing %q:\n%s", want, out)
		}
	}
}

// sarifLogIn mirrors the emitted structure for validation; every field the
// code-scanning ingester requires is checked, so a schema regression fails
// here rather than at upload time.
type sarifLogIn struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestMpilintSARIF(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module sarifmod\n\ngo 1.22\n",
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
	c.Send(1, -9, nil)
}
`,
	})

	var stdout, stderr strings.Builder
	if code := run([]string{"-sarif", dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-sarif exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	var log sarifLogIn
	if err := json.Unmarshal([]byte(stdout.String()), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema URI", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	runObj := log.Runs[0]
	if runObj.Tool.Driver.Name != "mpilint" {
		t.Errorf("driver name = %q", runObj.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range runObj.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
		ruleIDs[r.ID] = true
	}
	if len(runObj.Results) == 0 {
		t.Fatal("no results for a buggy tree")
	}
	for _, res := range runObj.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result ruleId %q not in the rules table", res.RuleID)
		}
		if res.Level != "warning" {
			t.Errorf("level = %q, want warning", res.Level)
		}
		if res.Message.Text == "" {
			t.Error("result with empty message")
		}
		if len(res.Locations) != 1 {
			t.Fatalf("locations = %d, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if strings.Contains(loc.ArtifactLocation.URI, `\`) || strings.HasPrefix(loc.ArtifactLocation.URI, "/") {
			t.Errorf("uri %q should be relative with forward slashes", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("startLine = %d, want >= 1", loc.Region.StartLine)
		}
	}

	// A clean tree still emits a structurally complete log with an empty
	// (non-null) results array.
	clean := writeTree(t, map[string]string{
		"go.mod":   "module cleanmod\n\ngo 1.22\n",
		"ok/ok.go": "package ok\n\nfunc F() int { return 1 }\n",
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-sarif", clean + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -sarif exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), `"results": []`) {
		t.Errorf("empty run should serialize results as [], got:\n%s", stdout.String())
	}
}

// TestMpilintBaselinePortable checks baseline keys are module-root-relative
// with forward slashes, and that absolute or backslash-separated entries
// from older baselines still match on load.
func TestMpilintBaselinePortable(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": "module basemod\n\ngo 1.22\n",
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	c.Send(1, -9, nil)
}
`,
	})

	base := filepath.Join(dir, "base.txt")
	var stdout, stderr strings.Builder
	if code := run([]string{"-only", "tags", "-write-baseline", base, dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\tbad/bad.go\t") {
		t.Errorf("baseline keys should be module-root-relative with forward slashes:\n%s", data)
	}

	// The written baseline must round-trip to a clean run.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "tags", "-baseline", base, dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-baseline exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}

	// Legacy variants of the same key — absolute path, backslash
	// separators — must normalize to a match on load.
	abs := filepath.Join(dir, "bad", "bad.go")
	for _, variant := range []string{
		strings.ReplaceAll(string(data), "\tbad/bad.go\t", "\t"+abs+"\t"),
		strings.ReplaceAll(string(data), "\tbad/bad.go\t", "\tbad\\bad.go\t"),
	} {
		if err := os.WriteFile(base, []byte(variant), 0o644); err != nil {
			t.Fatal(err)
		}
		stdout.Reset()
		stderr.Reset()
		if code := run([]string{"-only", "tags", "-baseline", base, dir + "/..."}, &stdout, &stderr); code != 0 {
			t.Errorf("legacy baseline variant did not match (exit %d):\nbaseline:\n%s\nout:\n%s%s",
				code, variant, stdout.String(), stderr.String())
		}
	}
}
