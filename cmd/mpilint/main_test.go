package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module with one buggy and one clean file.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestMpilintEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
	c.Send(1, -9, nil)
}
`,
		"good/good.go": `package good

import "repro/internal/mpi"

func f(c *mpi.Comm) int {
	c.Barrier()
	return mpi.Bcast(c, 0, 1)
}
`,
	})

	var stdout, stderr strings.Builder
	code := run([]string{dir + "/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"bad.go:7:3: [divergence]",
		"bad.go:9:12: [tags]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "good.go") {
		t.Errorf("clean file was flagged:\n%s", out)
	}

	// The clean package alone exits 0 with no output.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{filepath.Join(dir, "good")}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean package: exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced output: %s", stdout.String())
	}
}

func TestMpilintMRFamilyEndToEnd(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mrmpi"

func f(mr *mrmpi.MapReduce, fn any) {
	n := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		n++
		return nil
	})
	mr.Reduce(fn)
	_ = n
}
`,
	})

	var stdout, stderr strings.Builder
	code := run([]string{"-only", "phase,capture", dir + "/..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	// The callback counter write is a capture finding; the Map→Reduce with
	// no Collate in between is a phase finding (the Map call pins the
	// protocol state even on a parameter-received MapReduce).
	for _, want := range []string{"bad.go:8:3: [capture]", "bad.go:11:2: [phase]"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// -json: same findings, one JSON object per line.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-only", "capture", dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-json exit code = %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	var finding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("-json produced %d lines, want 1: %q", len(lines), stdout.String())
	}
	if err := json.Unmarshal([]byte(lines[0]), &finding); err != nil {
		t.Fatalf("-json line does not parse: %v\n%s", err, lines[0])
	}
	if finding.Check != "capture" || finding.Line != 8 || finding.Col != 3 ||
		!strings.HasSuffix(finding.File, "bad.go") || finding.Message == "" {
		t.Errorf("unexpected -json finding: %+v", finding)
	}
}

func TestMpilintBaseline(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"bad/bad.go": `package bad

import "repro/internal/mpi"

func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier()
	}
}
`,
	})
	baseline := filepath.Join(dir, "baseline.txt")

	// Write the baseline: all current findings become accepted.
	var stdout, stderr strings.Builder
	if code := run([]string{"-write-baseline", baseline, dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "divergence\t") {
		t.Fatalf("baseline missing divergence entry:\n%s", data)
	}

	// Against the baseline the same tree is clean.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit %d\n%s%s", code, stdout.String(), stderr.String())
	}

	// A new finding still fails, and only the new one is reported.
	if err := os.WriteFile(filepath.Join(dir, "bad", "worse.go"), []byte(`package bad

import "repro/internal/mpi"

func g(c *mpi.Comm) {
	c.Send(1, -9, nil)
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", baseline, dir + "/..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new-finding run exit %d, want 1\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[tags]") || strings.Contains(out, "[divergence]") {
		t.Errorf("baselined run should report only the new tags finding:\n%s", out)
	}
}

func TestMpilintSummaryAndStats(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"p/p.go": `package p

import "repro/internal/mpi"

func exchange(c *mpi.Comm) {
	c.Send(1, 7, "x")
	c.Recv(1, 8)
	helper(c)
}

func helper(c *mpi.Comm) {
	c.Barrier()
}

func quiet() int { return 1 }
`,
		"p/sup.go": `package p

import "repro/internal/mpi"

func orphan(c *mpi.Comm) {
	c.Send(1, 99, "x") // mpilint:ignore tags -- exercising the stats inventory
	c.Recv(1, 7)
	c.Recv(1, 8)
}
`,
	})

	var stdout, stderr strings.Builder
	if code := run([]string{"-summary", dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-summary exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"exchange (", "send", "Send(peer=1,tag=7)", "recv", "collective", "Barrier",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "quiet") {
		t.Errorf("-summary should skip functions with no communication:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-stats", dir + "/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-stats exit %d\n%s%s", code, stdout.String(), stderr.String())
	}
	out = stdout.String()
	for _, want := range []string{
		"-- stats --",
		"suppression ",
		"tags used=1 -- exercising the stats inventory",
		"suppressions total    1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats missing %q:\n%s", want, out)
		}
	}
}

func TestMpilintFlags(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{
		"divergence", "aliasedbcast", "tags", "root",
		"phase", "capture", "retain", "kvescape",
		"requests", "goroutines", "deadlock", "sync", "suppress", "obslint",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %q", name)
		}
	}
	if code := run([]string{"-only", "nonsense", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-only nonsense: exit %d, want 2", code)
	}
	if code := run([]string{"/definitely/not/a/dir"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad dir: exit %d, want 2", code)
	}
}
