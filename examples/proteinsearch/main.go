// Protein search — the paper's second BLAST benchmark setting: a blastp
// search (BLOSUM62 scoring, SEG masking, neighborhood-word seeding) of
// environmental protein fragments against a partitioned protein database,
// run in parallel with the MR-MPI driver.
//
// The example plants remote homologs (30% diverged) so the search
// exercises exactly what makes protein BLAST CPU-bound: many candidate
// word matches per subject and deep extension work.
//
//	go run ./examples/proteinsearch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bio"
	"repro/internal/blastdb"
	"repro/internal/core"
	"repro/internal/mrblast"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("proteinsearch: ")
	dir, err := os.MkdirTemp("", "proteinsearch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Reference proteome: 40 random proteins (Robinson–Robinson residue
	// composition), split into several partitions like the paper's
	// Uniref100 volumes.
	g := bio.NewGenerator(bio.SynthParams{Seed: 11})
	var proteome []*bio.Sequence
	for i := 0; i < 40; i++ {
		proteome = append(proteome, g.RandomProtein(fmt.Sprintf("uniref%04d", i), 180+i*7))
	}
	if _, err := blastdb.Format(proteome, bio.Protein, dir, "protdb",
		blastdb.FormatOptions{TargetResidues: 2500}); err != nil {
		log.Fatal(err)
	}

	// Queries: remote homologs of half the proteins (30% substitutions)
	// plus unrelated decoys that must not hit.
	var queries []*bio.Sequence
	for i := 0; i < 20; i++ {
		src := proteome[i*2]
		queries = append(queries, g.Mutate(src, fmt.Sprintf("env%04d", i), 0.30, 0.01, bio.Protein))
	}
	for i := 0; i < 10; i++ {
		queries = append(queries, g.RandomProtein(fmt.Sprintf("decoy%02d", i), 250))
	}
	queryPath := filepath.Join(dir, "env.fa")
	if err := bio.WriteFastaFile(queryPath, queries); err != nil {
		log.Fatal(err)
	}

	outDir := filepath.Join(dir, "hits")
	sum, err := core.RunBlast(4, core.BlastJob{
		QueryPath:    queryPath,
		ManifestPath: filepath.Join(dir, "protdb.json"),
		Protein:      true,
		BlockSize:    8,
		EValueCutoff: 1e-4,
		TopK:         5,
		Filter:       true,
		OutDir:       outDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d protein queries against %d partitions: %d hits\n",
		sum.Queries, sum.Partitions, sum.TotalHits)

	homologHits, decoyHits := 0, 0
	for _, f := range sum.OutFiles {
		hits, err := mrblast.ReadHitsFile(f)
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hits {
			if len(h.QueryID) >= 3 && h.QueryID[:3] == "env" {
				homologHits++
				if homologHits <= 5 {
					fmt.Printf("  %-10s -> %-12s %5.1f%% id  bit %.1f  E=%.2g\n",
						h.QueryID, h.SubjectID,
						100*float64(h.Identities)/float64(h.AlignLen), h.BitScore, h.EValue)
				}
			} else {
				decoyHits++
			}
		}
	}
	fmt.Printf("remote homolog hits: %d;  decoy hits: %d (should be ~0)\n",
		homologHits, decoyHits)
}
