// Quickstart: the smallest end-to-end use of the library.
//
// It generates a tiny synthetic reference collection, formats it into a
// partitioned BLAST database, shreds a diverged strain into reads, runs the
// parallel MapReduce-MPI BLAST on 4 in-process ranks, and prints the top
// hits.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bio"
	"repro/internal/blastdb"
	"repro/internal/core"
	"repro/internal/mrblast"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")
	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Synthesize a reference collection: 4 genomes, each with one
	//    diverged strain (the homologies our reads will hit).
	g := bio.NewGenerator(bio.SynthParams{Seed: 42})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 4, MinLen: 4000, MaxLen: 8000,
		StrainsPerGenome: 1, StrainIdentity: 0.92,
	})

	// 2. Format the genomes into a partitioned database (one genome per
	//    partition here; the paper used 109 x 1 GB partitions).
	if _, err := blastdb.Format(set.Genomes, bio.DNA, dir, "refdb",
		blastdb.FormatOptions{TargetResidues: 8000}); err != nil {
		log.Fatal(err)
	}

	// 3. Shred the strains into 400 bp reads overlapping by 200 bp — the
	//    paper's sequencing-read simulation.
	var strains []*bio.Sequence
	for _, ss := range set.Strains {
		strains = append(strains, ss...)
	}
	reads, err := bio.ShredAll(strains, bio.DefaultShredParams())
	if err != nil {
		log.Fatal(err)
	}
	queryPath := filepath.Join(dir, "reads.fa")
	if err := bio.WriteFastaFile(queryPath, reads); err != nil {
		log.Fatal(err)
	}

	// 4. Run the parallel search: 4 ranks, rank 0 is the load-balancing
	//    master, E-values computed against the whole database.
	outDir := filepath.Join(dir, "hits")
	sum, err := core.RunBlast(4, core.BlastJob{
		QueryPath:    queryPath,
		ManifestPath: filepath.Join(dir, "refdb.json"),
		BlockSize:    16,
		EValueCutoff: 1e-6,
		TopK:         3,
		OutDir:       outDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d reads against %d partitions: %d hits\n",
		sum.Queries, sum.Partitions, sum.TotalHits)

	// 5. Read back the per-rank outputs and show a few alignments.
	shown := 0
	for _, f := range sum.OutFiles {
		hits, err := mrblast.ReadHitsFile(f)
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hits {
			if shown < 5 {
				fmt.Printf("  %-28s -> %-12s %5.1f%% id  E=%.2g\n",
					h.QueryID, h.SubjectID, 100*float64(h.Identities)/float64(h.AlignLen), h.EValue)
				shown++
			}
		}
	}
}
