// Tetranucleotide SOM binning — the paper's stated motivation for the
// parallel SOM: "visually explore the relationship between the metagenomic
// sequences and the universe of taxonomically characterized database
// sequences in the tetranucleotide composition space".
//
// The example builds a synthetic community, computes the 256-dimensional
// tetranucleotide frequency vector of every sequence fragment, trains a
// batch SOM on those composition vectors with the parallel MR-MPI driver,
// and evaluates how well the map separates the taxa: each fragment lands on
// its BMU, and we measure the purity of the neuron-to-taxon assignment plus
// the within- vs between-taxon BMU distances.
//
//	go run ./examples/tetrasom
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/som"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tetrasom: ")
	dir, err := os.MkdirTemp("", "tetrasom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Community with distinct composition signatures: GC content varies by
	// taxon, which is exactly the signal tetranucleotide binning exploits.
	const nTaxa = 4
	var frags []*bio.Sequence
	var labels []int
	for taxon := 0; taxon < nTaxa; taxon++ {
		gc := 0.30 + 0.13*float64(taxon)
		g := bio.NewGenerator(bio.SynthParams{Seed: int64(taxon + 1), GC: gc})
		genome := g.RandomDNA(fmt.Sprintf("taxon%d", taxon), 60000)
		pieces, err := bio.Shred(genome, bio.ShredParams{FragLen: 2000, Overlap: 0})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range pieces {
			frags = append(frags, p)
			labels = append(labels, taxon)
		}
	}
	fmt.Printf("community: %d fragments from %d taxa (GC 30%%..69%%)\n", len(frags), nTaxa)

	// Composition vectors: 4-mer frequencies, dimension 256 (the paper's
	// 256-d benchmark dimension is exactly this space).
	matrix, dim, err := bio.ProfileMatrix(frags, 4)
	if err != nil {
		log.Fatal(err)
	}
	dataPath := filepath.Join(dir, "tetra.bin")
	if err := som.WriteVectorFile(dataPath, matrix, len(frags), dim); err != nil {
		log.Fatal(err)
	}

	// Parallel batch SOM on the composition space.
	const side = 16
	sum, err := core.RunSOM(4, core.SOMJob{
		DataPath:  dataPath,
		Width:     side,
		Height:    side,
		Epochs:    20,
		BlockSize: 8,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %dx%d SOM on %d-d tetranucleotide vectors: QE=%.5f TE=%.4f\n",
		side, side, dim, sum.QuantErr, sum.TopoErr)

	// Map every fragment to its BMU; score the binning.
	cb := sum.Codebook
	bmus := make([]int, len(frags))
	neuronCounts := map[int]map[int]int{} // neuron -> taxon -> count
	for i := range frags {
		bmu, _ := cb.BMU(matrix[i*dim : (i+1)*dim])
		bmus[i] = bmu
		if neuronCounts[bmu] == nil {
			neuronCounts[bmu] = map[int]int{}
		}
		neuronCounts[bmu][labels[i]]++
	}
	// Purity: fraction of fragments whose BMU's majority taxon matches.
	correct := 0
	for _, counts := range neuronCounts {
		best := 0
		total := 0
		for _, n := range counts {
			total += n
			if n > best {
				best = n
			}
		}
		correct += best
		_ = total
	}
	purity := float64(correct) / float64(len(frags))

	// Within- vs between-taxon BMU map distance.
	var within, between float64
	var nw, nb int
	for i := 0; i < len(frags); i++ {
		for j := i + 1; j < len(frags); j++ {
			d := math.Sqrt(cb.Grid.Dist2(bmus[i], bmus[j]))
			if labels[i] == labels[j] {
				within += d
				nw++
			} else {
				between += d
				nb++
			}
		}
	}
	within /= float64(nw)
	between /= float64(nb)

	fmt.Printf("binning purity: %.1f%%  (majority taxon per neuron)\n", 100*purity)
	fmt.Printf("mean BMU distance: within-taxon %.2f, between-taxon %.2f (separation %.1fx)\n",
		within, between, between/within)

	// Semi-supervised classification (the paper's other stated SOM use):
	// label the map with every third fragment (fragments are grouped by
	// taxon, so the labeled subset must be stratified), classify the rest.
	var labeledData, heldData []float64
	var labeledY, heldY []int
	for i := range frags {
		row := matrix[i*dim : (i+1)*dim]
		if i%3 == 0 {
			labeledData = append(labeledData, row...)
			labeledY = append(labeledY, labels[i])
		} else {
			heldData = append(heldData, row...)
			heldY = append(heldY, labels[i])
		}
	}
	cl, err := som.NewClassifier(cb, labeledData, labeledY, len(labeledY))
	if err != nil {
		log.Fatal(err)
	}
	pred := cl.PredictAll(heldData, len(heldY))
	acc := som.Accuracy(pred, heldY)
	fmt.Printf("semi-supervised: labeled %d fragments, classified %d held-out at %.1f%% accuracy\n",
		len(labeledY), len(pred), 100*acc)

	// Per-taxon occupancy summary.
	taxonNeurons := map[int]map[int]bool{}
	for i, b := range bmus {
		if taxonNeurons[labels[i]] == nil {
			taxonNeurons[labels[i]] = map[int]bool{}
		}
		taxonNeurons[labels[i]][b] = true
	}
	var taxa []int
	for t := range taxonNeurons {
		taxa = append(taxa, t)
	}
	sort.Ints(taxa)
	for _, t := range taxa {
		fmt.Printf("  taxon%d occupies %d neurons\n", t, len(taxonNeurons[t]))
	}
	if purity < 0.9 {
		fmt.Println("warning: purity below 90% — composition signal weaker than expected")
	}
}
