// Metagenomic taxonomic classification — the paper's primary BLAST use
// case: classify sequencing reads of unknown origin by searching them
// against a reference database and assigning each read the taxon of its
// best hit.
//
// The example builds a synthetic community (reference genomes + diverged
// strains standing in for environmental relatives), simulates a
// metagenomic read set, classifies it with the parallel MR-MPI BLAST using
// the paper's configuration (master-worker, whole-DB E-values, top-K
// cutoff, self-hit exclusion), and reports per-taxon precision/recall
// against the known truth.
//
//	go run ./examples/metagenomics
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bio"
	"repro/internal/blastdb"
	"repro/internal/core"
	"repro/internal/mrblast"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("metagenomics: ")
	dir, err := os.MkdirTemp("", "metagenomics")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Community: 6 reference taxa; each taxon has 2 strains at 90%
	// identity whose reads simulate the environmental sample.
	g := bio.NewGenerator(bio.SynthParams{Seed: 7, GC: 0.45})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 6, MinLen: 5000, MaxLen: 12000,
		StrainsPerGenome: 2, StrainIdentity: 0.90,
	})
	if _, err := blastdb.Format(set.Genomes, bio.DNA, dir, "refdb",
		blastdb.FormatOptions{TargetResidues: 10000}); err != nil {
		log.Fatal(err)
	}

	// Simulate the read set: shred every strain (400/200, as in the
	// paper). The truth label of a read is its strain's parent taxon.
	var sample []*bio.Sequence
	truth := map[string]string{} // read ID -> true taxon
	for ti, strains := range set.Strains {
		for _, strain := range strains {
			reads, err := bio.Shred(strain, bio.DefaultShredParams())
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range reads {
				truth[r.ID] = set.Genomes[ti].ID
			}
			sample = append(sample, reads...)
		}
	}
	queryPath := filepath.Join(dir, "sample.fa")
	if err := bio.WriteFastaFile(queryPath, sample); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample: %d reads from %d strains of %d taxa\n",
		len(sample), 2*len(set.Genomes), len(set.Genomes))

	// Classify with the parallel BLAST (6 ranks; top hit decides).
	outDir := filepath.Join(dir, "hits")
	sum, err := core.RunBlast(6, core.BlastJob{
		QueryPath:    queryPath,
		ManifestPath: filepath.Join(dir, "refdb.json"),
		BlockSize:    32,
		EValueCutoff: 1e-8,
		TopK:         1,
		Filter:       true,
		OutDir:       outDir,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Collect best-hit assignments from the per-rank files.
	assigned := map[string]string{}
	for _, f := range sum.OutFiles {
		hits, err := mrblast.ReadHitsFile(f)
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range hits {
			if _, ok := assigned[h.QueryID]; !ok { // first = best (sorted)
				assigned[h.QueryID] = h.SubjectID
			}
		}
	}

	// Score against the truth.
	type score struct{ correct, wrong, reads int }
	perTaxon := map[string]*score{}
	for read, taxon := range truth {
		s := perTaxon[taxon]
		if s == nil {
			s = &score{}
			perTaxon[taxon] = s
		}
		s.reads++
		got, ok := assigned[read]
		if !ok {
			continue
		}
		if got == taxon {
			s.correct++
		} else {
			s.wrong++
		}
	}
	var taxa []string
	for t := range perTaxon {
		taxa = append(taxa, t)
	}
	sort.Strings(taxa)
	fmt.Printf("\n%-12s %8s %10s %10s %10s\n", "taxon", "reads", "classified", "correct", "recall")
	totCorrect, totReads := 0, 0
	for _, t := range taxa {
		s := perTaxon[t]
		classified := s.correct + s.wrong
		fmt.Printf("%-12s %8d %10d %10d %9.1f%%\n",
			t, s.reads, classified, s.correct, 100*float64(s.correct)/float64(s.reads))
		totCorrect += s.correct
		totReads += s.reads
	}
	fmt.Printf("%s\noverall recall: %.1f%% (%d/%d reads correctly binned)\n",
		strings.Repeat("-", 54), 100*float64(totCorrect)/float64(totReads), totCorrect, totReads)
}
