// SOM color clustering — the paper's Fig. 7 correctness demonstration:
// train a 50×50 batch SOM on random RGB vectors with the parallel MR-MPI
// driver and render the organized codebook and its U-matrix as images. A
// correct SOM arranges the colors into smooth patches.
//
//	go run ./examples/somcolors [-out dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bio"
	"repro/internal/core"
	"repro/internal/som"
)

func main() {
	out := flag.String("out", ".", "directory for the output images")
	n := flag.Int("n", 100, "number of RGB training vectors (paper: 100)")
	size := flag.Int("size", 50, "map side length (paper: 50)")
	epochs := flag.Int("epochs", 25, "training epochs")
	ranks := flag.Int("ranks", 4, "MPI ranks")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("somcolors: ")

	dir, err := os.MkdirTemp("", "somcolors")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Random colors, saved as the dense vector file the parallel SOM
	// streams by offset.
	data := bio.RandomRGB(7, *n)
	dataPath := filepath.Join(dir, "rgb.bin")
	if err := som.WriteVectorFile(dataPath, data, *n, 3); err != nil {
		log.Fatal(err)
	}

	sum, err := core.RunSOM(*ranks, core.SOMJob{
		DataPath:  dataPath,
		Width:     *size,
		Height:    *size,
		Epochs:    *epochs,
		BlockSize: 10,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %dx%d SOM on %d RGB vectors: quantization error %.4f, topographic error %.4f\n",
		*size, *size, *n, sum.QuantErr, sum.TopoErr)

	colorsPath := filepath.Join(*out, "som_colors.ppm")
	if err := som.WriteCodebookPPM(colorsPath, sum.Codebook); err != nil {
		log.Fatal(err)
	}
	umPath := filepath.Join(*out, "som_umatrix.pgm")
	if err := som.WritePGM(umPath, som.UMatrix(sum.Codebook)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (organized colors) and %s (U-matrix)\n", colorsPath, umPath)
}
