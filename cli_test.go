package repro

// End-to-end CLI integration: builds the command binaries once and drives
// the full pipeline the README documents — generate → formatdb → shred →
// mrblast → mergehits → blastview, plus genseq/mrsom — through their real
// main packages.

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/comm"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildCLIs compiles all cmd binaries into a shared temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "mrbio-cli")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

func runCLI(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), name), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()

	// Synthetic community: 4 genomes with one strain each.
	out := runCLI(t, dir, "genseq", "-mode", "genomes", "-n", "4",
		"-minlen", "3000", "-maxlen", "6000", "-strains", "1",
		"-identity", "0.93", "-out", "all.fa")
	if !strings.Contains(out, "wrote 8 sequences") {
		t.Fatalf("genseq output: %s", out)
	}

	// Split genomes (DB) from strains (query source) by ID.
	all, err := os.ReadFile(filepath.Join(dir, "all.fa"))
	if err != nil {
		t.Fatal(err)
	}
	var db, strains strings.Builder
	target := &db
	for _, line := range strings.SplitAfter(string(all), "\n") {
		if strings.HasPrefix(line, ">") {
			if strings.Contains(line, ".s") {
				target = &strains
			} else {
				target = &db
			}
		}
		target.WriteString(line)
	}
	os.WriteFile(filepath.Join(dir, "refs.fa"), []byte(db.String()), 0o644)
	os.WriteFile(filepath.Join(dir, "strains.fa"), []byte(strains.String()), 0o644)

	out = runCLI(t, dir, "formatdb", "-in", "refs.fa", "-out", "db",
		"-name", "refdb", "-target-residues", "6000")
	if !strings.Contains(out, "partition") {
		t.Fatalf("formatdb output: %s", out)
	}

	out = runCLI(t, dir, "shred", "-in", "strains.fa", "-out", "reads.fa")
	if !strings.Contains(out, "fragments") {
		t.Fatalf("shred output: %s", out)
	}

	out = runCLI(t, dir, "mrblast", "-query", "reads.fa", "-db", "db/refdb.json",
		"-ranks", "4", "-block-size", "16", "-evalue", "1e-6", "-out", "hits")
	if !strings.Contains(out, "hits in") {
		t.Fatalf("mrblast output: %s", out)
	}

	out = runCLI(t, dir, "mergehits", "-in", "hits", "-out", "merged.tsv")
	if !strings.Contains(out, "hits for") {
		t.Fatalf("mergehits output: %s", out)
	}
	merged, err := os.ReadFile(filepath.Join(dir, "merged.tsv"))
	if err != nil || len(merged) == 0 {
		t.Fatalf("merged.tsv empty or unreadable: %v", err)
	}

	out = runCLI(t, dir, "blastview", "-hits", "merged.tsv",
		"-query", "reads.fa", "-db", "db/refdb.json", "-n", "1")
	if !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("blastview output: %s", out)
	}
}

func TestCLISOMPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()
	runCLI(t, dir, "genseq", "-mode", "vectors", "-n", "400", "-dim", "8", "-out", "v.bin")
	out := runCLI(t, dir, "mrsom", "-data", "v.bin", "-ranks", "3",
		"-w", "8", "-h", "8", "-epochs", "8",
		"-umatrix", "um.pgm", "-codebook", "cb.ppm",
		"-checkpoint", "ck.somc")
	if !strings.Contains(out, "quantization error") {
		t.Fatalf("mrsom output: %s", out)
	}
	for _, f := range []string{"um.pgm", "cb.ppm", "ck.somc"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
	// Resume from the checkpoint: must succeed and not retrain from zero.
	out = runCLI(t, dir, "mrsom", "-data", "v.bin", "-ranks", "3",
		"-w", "8", "-h", "8", "-epochs", "8", "-checkpoint", "ck.somc")
	if !strings.Contains(out, "quantization error") {
		t.Fatalf("mrsom resume output: %s", out)
	}
}

// TestMetricsEndpointSmoke is the CI conformance gate for the live /metrics
// route: it starts mrblast with a status server, comm accounting, and a
// post-run linger, scrapes /metrics after the run completes, and validates
// the exposition with the repo's own Prometheus parser. The -comm matrix
// file is checked as a side effect.
func TestMetricsEndpointSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()
	runCLI(t, dir, "genseq", "-mode", "genomes", "-n", "2",
		"-minlen", "2000", "-maxlen", "3000", "-strains", "1",
		"-identity", "0.93", "-out", "all.fa")
	runCLI(t, dir, "formatdb", "-in", "all.fa", "-out", "db",
		"-name", "refdb", "-target-residues", "4000")
	runCLI(t, dir, "shred", "-in", "all.fa", "-out", "reads.fa")

	cmd := exec.Command(filepath.Join(buildCLIs(t), "mrblast"),
		"-query", "reads.fa", "-db", "db/refdb.json", "-ranks", "2",
		"-block-size", "8", "-evalue", "1e-6", "-out", "hits",
		"-status", "127.0.0.1:0", "-status-linger", "60s", "-comm", "comm.json")
	cmd.Dir = dir
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The status line prints before the run, the comm-matrix line after it;
	// waiting for the latter guarantees the scrape sees the finished run.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "live status at http://"); ok {
			addr, _, _ = strings.Cut(rest, "/status")
		}
		if strings.Contains(line, "wrote comm matrix") {
			break
		}
	}
	if addr == "" {
		t.Fatal("mrblast never printed the live status address")
	}

	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d\n%s", resp.StatusCode, body)
	}
	text := string(body)
	if err := obs.ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("/metrics exposition not conformant: %v\n%s", err, text)
	}
	for _, want := range []string{"mpi_sends_total", "mpi_comm_bytes_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s:\n%s", want, text)
		}
	}

	f, err := os.Open(filepath.Join(dir, "comm.json"))
	if err != nil {
		t.Fatalf("comm matrix not written: %v", err)
	}
	defer f.Close()
	m, err := comm.ReadMatrix(f)
	if err != nil {
		t.Fatalf("comm matrix not parseable: %v", err)
	}
	if m.NumRanks != 2 || len(m.Links) == 0 {
		t.Errorf("comm matrix implausible: %d ranks, %d links", m.NumRanks, len(m.Links))
	}
}

func TestCLIBenchfigQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()
	out := runCLI(t, dir, "benchfig", "-fig", "4", "-csv", "csv")
	if !strings.Contains(out, "fig4") {
		t.Fatalf("benchfig output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "csv", "fig4.csv")); err != nil {
		t.Errorf("missing CSV: %v", err)
	}
}
