package repro

// End-to-end CLI integration: builds the command binaries once and drives
// the full pipeline the README documents — generate → formatdb → shred →
// mrblast → mergehits → blastview, plus genseq/mrsom — through their real
// main packages.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildCLIs compiles all cmd binaries into a shared temp dir.
func buildCLIs(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "mrbio-cli")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building CLIs: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

func runCLI(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildCLIs(t), name), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()

	// Synthetic community: 4 genomes with one strain each.
	out := runCLI(t, dir, "genseq", "-mode", "genomes", "-n", "4",
		"-minlen", "3000", "-maxlen", "6000", "-strains", "1",
		"-identity", "0.93", "-out", "all.fa")
	if !strings.Contains(out, "wrote 8 sequences") {
		t.Fatalf("genseq output: %s", out)
	}

	// Split genomes (DB) from strains (query source) by ID.
	all, err := os.ReadFile(filepath.Join(dir, "all.fa"))
	if err != nil {
		t.Fatal(err)
	}
	var db, strains strings.Builder
	target := &db
	for _, line := range strings.SplitAfter(string(all), "\n") {
		if strings.HasPrefix(line, ">") {
			if strings.Contains(line, ".s") {
				target = &strains
			} else {
				target = &db
			}
		}
		target.WriteString(line)
	}
	os.WriteFile(filepath.Join(dir, "refs.fa"), []byte(db.String()), 0o644)
	os.WriteFile(filepath.Join(dir, "strains.fa"), []byte(strains.String()), 0o644)

	out = runCLI(t, dir, "formatdb", "-in", "refs.fa", "-out", "db",
		"-name", "refdb", "-target-residues", "6000")
	if !strings.Contains(out, "partition") {
		t.Fatalf("formatdb output: %s", out)
	}

	out = runCLI(t, dir, "shred", "-in", "strains.fa", "-out", "reads.fa")
	if !strings.Contains(out, "fragments") {
		t.Fatalf("shred output: %s", out)
	}

	out = runCLI(t, dir, "mrblast", "-query", "reads.fa", "-db", "db/refdb.json",
		"-ranks", "4", "-block-size", "16", "-evalue", "1e-6", "-out", "hits")
	if !strings.Contains(out, "hits in") {
		t.Fatalf("mrblast output: %s", out)
	}

	out = runCLI(t, dir, "mergehits", "-in", "hits", "-out", "merged.tsv")
	if !strings.Contains(out, "hits for") {
		t.Fatalf("mergehits output: %s", out)
	}
	merged, err := os.ReadFile(filepath.Join(dir, "merged.tsv"))
	if err != nil || len(merged) == 0 {
		t.Fatalf("merged.tsv empty or unreadable: %v", err)
	}

	out = runCLI(t, dir, "blastview", "-hits", "merged.tsv",
		"-query", "reads.fa", "-db", "db/refdb.json", "-n", "1")
	if !strings.Contains(out, "Query") || !strings.Contains(out, "Sbjct") {
		t.Fatalf("blastview output: %s", out)
	}
}

func TestCLISOMPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()
	runCLI(t, dir, "genseq", "-mode", "vectors", "-n", "400", "-dim", "8", "-out", "v.bin")
	out := runCLI(t, dir, "mrsom", "-data", "v.bin", "-ranks", "3",
		"-w", "8", "-h", "8", "-epochs", "8",
		"-umatrix", "um.pgm", "-codebook", "cb.ppm",
		"-checkpoint", "ck.somc")
	if !strings.Contains(out, "quantization error") {
		t.Fatalf("mrsom output: %s", out)
	}
	for _, f := range []string{"um.pgm", "cb.ppm", "ck.somc"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
	// Resume from the checkpoint: must succeed and not retrain from zero.
	out = runCLI(t, dir, "mrsom", "-data", "v.bin", "-ranks", "3",
		"-w", "8", "-h", "8", "-epochs", "8", "-checkpoint", "ck.somc")
	if !strings.Contains(out, "quantization error") {
		t.Fatalf("mrsom resume output: %s", out)
	}
}

func TestCLIBenchfigQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is not short")
	}
	dir := t.TempDir()
	out := runCLI(t, dir, "benchfig", "-fig", "4", "-csv", "csv")
	if !strings.Contains(out, "fig4") {
		t.Fatalf("benchfig output: %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "csv", "fig4.csv")); err != nil {
		t.Errorf("missing CSV: %v", err)
	}
}
