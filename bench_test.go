package repro

// One benchmark per evaluation artifact of the paper, plus kernel
// benchmarks for the engines underneath. The Fig3–Fig6 benchmarks time the
// regeneration of each figure (cluster simulation over the calibrated cost
// model); the Fig7/Fig8 and end-to-end benchmarks exercise the real
// engines. Run with:
//
//	go test -bench=. -benchmem
import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/blastdb"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mrmpi"
	"repro/internal/som"
)

// BenchmarkFig3 regenerates the BLAST scaling figure (4 series × 6 core
// counts of simulated Ranger runs).
func BenchmarkFig3(b *testing.B) {
	m := bench.DefaultNucleotideModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the core-minutes-per-query figure.
func BenchmarkFig4(b *testing.B) {
	m := bench.DefaultNucleotideModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the 1024-core protein utilization trace.
func BenchmarkFig5(b *testing.B) {
	m := bench.DefaultProteinModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProteinScaling regenerates the §IV.A 512-vs-1024-core numbers.
func BenchmarkProteinScaling(b *testing.B) {
	m := bench.DefaultProteinModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.ProteinScaling(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates the SOM scaling figure.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(0.004, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 trains the RGB correctness SOM (scaled for bench time; the
// full 50×50 run is cmd/benchfig -fig 7).
func BenchmarkFig7(b *testing.B) {
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(dir, 20, 20, 100, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8 trains the high-dimensional U-matrix SOM (scaled; full
// size is cmd/benchfig -fig 8).
func BenchmarkFig8(b *testing.B) {
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig8(dir, 15, 15, 500, 100, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlastnSearch times the real nucleotide engine on one planted
// workload: a 20-read block against a 100 kb subject.
func BenchmarkBlastnSearch(b *testing.B) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 1})
	genome := g.RandomDNA("genome", 100000)
	strain := g.Mutate(genome, "strain", 0.08, 0.002, bio.DNA)
	reads, err := bio.Shred(strain, bio.DefaultShredParams())
	if err != nil {
		b.Fatal(err)
	}
	reads = reads[:20]
	eng, err := blast.NewEngine(reads, blast.DefaultNucleotideParams())
	if err != nil {
		b.Fatal(err)
	}
	eng.SetDatabaseDims(int64(genome.Len()), 1)
	subj := blast.EncodeSubject(genome, bio.DNA)
	b.SetBytes(int64(genome.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchSubject(subj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlastpSearch times the real protein engine.
func BenchmarkBlastpSearch(b *testing.B) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 2})
	target := g.RandomProtein("target", 5000)
	queries := []*bio.Sequence{
		g.Mutate(target, "q1", 0.3, 0, bio.Protein),
		g.RandomProtein("q2", 300),
		g.RandomProtein("q3", 300),
	}
	queries[0].Letters = queries[0].Letters[:300]
	eng, err := blast.NewEngine(queries, blast.DefaultProteinParams())
	if err != nil {
		b.Fatal(err)
	}
	eng.SetDatabaseDims(int64(target.Len()), 1)
	subj := blast.EncodeSubject(target, bio.Protein)
	b.SetBytes(int64(target.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SearchSubject(subj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSOMBatchAccumulate times the parallel SOM's map kernel at the
// paper's configuration (50×50 map, 256-d, blocks of 40).
func BenchmarkSOMBatchAccumulate(b *testing.B) {
	grid, _ := som.NewGrid(50, 50)
	cb, _ := som.NewCodebook(grid, 256)
	cb.InitRandom(1)
	data := bio.RandomVectors(1, 40, 256)
	num := make([]float64, grid.Cells()*256)
	den := make([]float64, grid.Cells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		som.BatchAccumulate(cb, data, 40, 12, num, den)
	}
}

// BenchmarkMRMPIWordCount times a full map/collate/reduce cycle of the
// MapReduce-MPI port on 4 ranks.
func BenchmarkMRMPIWordCount(b *testing.B) {
	words := make([][]byte, 64)
	for i := range words {
		words[i] = []byte(fmt.Sprintf("word%02d", i%16))
	}
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			mr := mrmpi.New(c)
			defer mr.Close()
			if _, err := mr.Map(32, func(itask int, kv *mrmpi.KeyValue) error {
				for _, w := range words {
					kv.Add(w, []byte{1})
				}
				return nil
			}); err != nil {
				return err
			}
			if _, err := mr.Collate(nil); err != nil {
				return err
			}
			_, err := mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
				return nil
			})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSim times one 1024-core simulated map phase of the
// paper's largest BLAST run (8720 work units).
func BenchmarkClusterSim(b *testing.B) {
	m := bench.DefaultNucleotideModel()
	w := bench.BlastWorkload{
		NQueries: 80000, QueryLen: 400, BlockSize: 1000,
		Partitions: 109, PartitionBytes: 1 << 30,
		PartitionResidues: 364_000_000_000 / 109, Model: m,
	}
	tasks := w.Tasks()
	cfg, err := cluster.RangerConfig(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(cfg, tasks, cluster.ScheduleMasterWorker); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBlastEndToEnd times a small real parallel search on 4
// in-process ranks (generation and formatting excluded).
func BenchmarkParallelBlastEndToEnd(b *testing.B) {
	dir := b.TempDir()
	g := bio.NewGenerator(bio.SynthParams{Seed: 3})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 3, MinLen: 2000, MaxLen: 4000,
		StrainsPerGenome: 1, StrainIdentity: 0.92,
	})
	var strains []*bio.Sequence
	for _, ss := range set.Strains {
		strains = append(strains, ss...)
	}
	reads, err := bio.ShredAll(strains, bio.DefaultShredParams())
	if err != nil {
		b.Fatal(err)
	}
	qpath := filepath.Join(dir, "q.fa")
	if err := bio.WriteFastaFile(qpath, reads); err != nil {
		b.Fatal(err)
	}
	if _, err := blastdb.Format(set.Genomes, bio.DNA, dir, "db",
		blastdb.FormatOptions{TargetResidues: 4000}); err != nil {
		b.Fatal(err)
	}
	job := core.BlastJob{
		QueryPath:    qpath,
		ManifestPath: filepath.Join(dir, "db.json"),
		BlockSize:    16,
		EValueCutoff: 1e-5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunBlast(4, job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSOMEndToEnd times a small real parallel SOM training on
// 4 in-process ranks.
func BenchmarkParallelSOMEndToEnd(b *testing.B) {
	dir := b.TempDir()
	data := bio.RandomVectors(4, 1000, 16)
	path := filepath.Join(dir, "v.bin")
	if err := som.WriteVectorFile(path, data, 1000, 16); err != nil {
		b.Fatal(err)
	}
	job := core.SOMJob{DataPath: path, Width: 10, Height: 10, Epochs: 5, BlockSize: 40}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunSOM(4, job); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerAblation times the scheduler comparison at 256 cores.
func BenchmarkSchedulerAblation(b *testing.B) {
	m := bench.DefaultNucleotideModel()
	for i := 0; i < b.N; i++ {
		if _, err := bench.SchedulerAblation(m, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDNALookupBuild times building the blastn word lookup for a
// 100-read query block.
func BenchmarkDNALookupBuild(b *testing.B) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 5})
	var reads []*bio.Sequence
	for i := 0; i < 100; i++ {
		reads = append(reads, g.RandomDNA(fmt.Sprintf("r%03d", i), 400))
	}
	p := blast.DefaultNucleotideParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blast.NewEngine(reads, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProteinLookupBuild times the neighborhood-word lookup for a
// protein query block (the expensive DFS enumeration).
func BenchmarkProteinLookupBuild(b *testing.B) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 6})
	var prots []*bio.Sequence
	for i := 0; i < 10; i++ {
		prots = append(prots, g.RandomProtein(fmt.Sprintf("p%02d", i), 300))
	}
	p := blast.DefaultProteinParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blast.NewEngine(prots, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRMPICollateVolume times the aggregate+convert exchange of 100k
// small pairs across 4 ranks.
func BenchmarkMRMPICollateVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := mpi.Run(4, func(c *mpi.Comm) error {
			mr := mrmpi.New(c)
			defer mr.Close()
			if _, err := mr.Map(100, func(itask int, kv *mrmpi.KeyValue) error {
				var key [8]byte
				for j := 0; j < 250; j++ {
					binary.LittleEndian.PutUint64(key[:], uint64(itask*1000+j%97))
					kv.Add(key[:], key[:4])
				}
				return nil
			}); err != nil {
				return err
			}
			_, err := mr.Collate(nil)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVolumeLoad times loading a ~1 Mbp partition from disk with
// checksum verification.
func BenchmarkVolumeLoad(b *testing.B) {
	dir := b.TempDir()
	g := bio.NewGenerator(bio.SynthParams{Seed: 7})
	var seqs []*bio.Sequence
	for i := 0; i < 20; i++ {
		seqs = append(seqs, g.RandomDNA(fmt.Sprintf("s%02d", i), 50000))
	}
	m, err := blastdb.Format(seqs, bio.DNA, dir, "db", blastdb.FormatOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1000000 / 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blastdb.LoadVolume(m.VolumePath(0)); err != nil {
			b.Fatal(err)
		}
	}
}
