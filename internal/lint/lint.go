// Package lint implements mpilint, a domain-specific static-analysis suite
// for this repository's in-process MPI layer (internal/mpi) and the
// MapReduce-MPI port built on it (internal/mrmpi).
//
// The analyzers enforce SPMD discipline — invariants that generic `go vet`
// cannot see and that `-race` only catches when a schedule happens to expose
// them:
//
//   - divergence: a collective call appearing on one arm of a
//     rank-dependent branch without a matching call on every other arm.
//     Every rank must execute the same collective sequence; a divergent
//     branch is a deadlock (or a silent data mix-up) waiting for the right
//     input.
//   - aliasedbcast: writing through a reference value (slice, map, pointer)
//     received from the generic Bcast/Allgather, which share memory between
//     ranks. Receivers must copy before mutating (or use a copying variant
//     such as BcastFloat64s).
//   - tags: negative user tags (reserved for internal collective traffic)
//     and Send tags with no syntactically reachable matching Recv.
//   - root: collective root arguments that are non-constant and never
//     validated against Size(), or constant and negative.
//   - requests: nonblocking Isend/Irecv calls whose *Request is discarded
//     (bare statement, assigned to _) or assigned to a variable that is
//     never completed with Wait or Test.
//
// A second family (mrlint) checks the MapReduce layer's object protocol and
// callback contracts — map() fills a KV, Collate/Convert builds a KMV,
// Reduce consumes it, and callbacks receive pointers into page-backed
// buffers the library recycles:
//
//   - phase: protocol-order violations on *mrmpi.MapReduce values — Reduce
//     without a preceding Collate/Convert, Collate/Convert on an empty KV,
//     double Collate, and locally created values not Closed on every
//     return path.
//   - capture: writes to captured outer variables inside Map/Reduce
//     callback literals with no mutex/atomic/channel in the closure body;
//     map tasks run concurrently under MapStyleMaster.
//   - retain: the key/values slice parameters of MapKV/Reduce/Each
//     callbacks (or sub-slices of them) escaping the callback without a
//     copy; the paged KV/KMV stores recycle those buffers.
//   - kvescape: the *KeyValue emitter handle escaping its callback
//     (stored, returned, or sent on a channel).
//
// A third family targets intra-rank concurrency — the goroutine pools and
// pipelined shuffles the runtime is growing toward, where -race and the
// mpidebug ledger get weaker rather than stronger:
//
//   - goroutines: MPI calls or KV emits reachable (through any chain of
//     helpers) from a goroutine spawned inside a rank function. The Comm
//     and the KeyValue emitter are per-rank handles; goroutines must do
//     pure compute and hand results back over a channel.
//   - deadlock: rank-dependent branches whose arms all block in Recv as
//     their first communication op (nobody ever sends — a certain
//     deadlock), and constant-routed sends whose peer's arm cannot receive
//     the tag.
//   - sync: WaitGroup misuse in worker-pool shapes — Add called inside the
//     spawned goroutine (racing the Wait), a local WaitGroup that is Added
//     but never Waited.
//   - suppress: the suppression discipline itself — every mpilint:ignore
//     must name its check(s) and a reason (`mpilint:ignore check -- why`).
//
// Everything is built from the standard library only. Since v2 the loader
// attaches a go/types view when the analyzed tree sits inside a module
// (see typecheck.go): receivers resolve to the real *mpi.Comm /
// *mrmpi.MapReduce types instead of being matched by name, and a
// per-function communication-summary engine (summary.go) lets the
// analyzers see collectives, sends, and buffer escapes through arbitrarily
// nested helper calls. Without type information every check degrades to
// the v1 syntactic heuristics, so in-memory fixtures and bare trees still
// analyze. The analyzers remain tuned to have no false positives on this
// repository — may-analysis breadth is spent only where it cannot
// misfire, not to be sound or complete program analyses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	// Pos locates the offending syntax.
	Pos token.Position
	// Analyzer names the check that fired (e.g. "divergence").
	Analyzer string
	// Message is the human-readable diagnostic.
	Message string
}

// String formats a finding as file:line:col: [analyzer] message, the format
// cmd/mpilint prints and CI greps.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Package is one parsed package: the unit every analyzer runs over.
type Package struct {
	// Name is the package name from the package clauses.
	Name string
	// Fset resolves token positions for all Files.
	Fset *token.FileSet
	// Files are the parsed source files.
	Files []*ast.File
	// Consts maps package-level integer constant names to their values, for
	// the subset of constant expressions evalConst understands (enough for
	// tag blocks built with iota).
	Consts map[string]int64
	// TypesPkg and TypesInfo are the optional go/types view attached by the
	// v2 loader (TypeCheck). When nil, every analyzer falls back to the v1
	// syntactic heuristics; when present, receiver types and call targets
	// resolve through the checker.
	TypesPkg  *types.Package
	TypesInfo *types.Info
	// Siblings are the other packages loaded from the same directory (the
	// external _test package of a library, and vice versa). Package-scope
	// checks like tag matching consult them: a Recv living in foo_test
	// still satisfies a Send in foo.
	Siblings []*Package

	// suppressions are the parsed mpilint:ignore directives.
	suppressions []Suppression
	// ignores maps filename -> suppressed lines -> the directive, built
	// from suppressions (the comment's own line and the line below it).
	ignores map[string]map[int]*Suppression

	// lazy caches.
	summaries *Summaries
	declIndex map[types.Object]*ast.FuncDecl
	funcIndex map[string]*ast.FuncDecl
	// protocol caches the cross-rank verifier's findings per check name
	// (unmatched/mismatch/globaldeadlock share one world run).
	protocol map[string][]Finding
}

// An Analyzer inspects one package and reports findings.
type Analyzer struct {
	// Name tags findings and selects analyzers on the command line.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run produces the findings for one package.
	Run func(pkg *Package) []Finding
}

// Analyzers is the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{Name: "divergence", Doc: "collective calls that differ between rank-dependent branches", Run: checkDivergence},
		{Name: "aliasedbcast", Doc: "writes through reference values shared by Bcast/Allgather", Run: checkAliasedBcast},
		{Name: "tags", Doc: "negative user tags and Send tags with no matching Recv", Run: checkTags},
		{Name: "root", Doc: "collective root arguments that are unvalidated or out of range", Run: checkRoot},
		{Name: "phase", Doc: "MapReduce phase-protocol violations (Reduce before Collate, double Collate, missing Close)", Run: checkPhase},
		{Name: "capture", Doc: "unsynchronized writes to captured variables in Map/Reduce callbacks", Run: checkCapture},
		{Name: "retain", Doc: "key/values page-buffer slices escaping a callback without a copy", Run: checkRetain},
		{Name: "kvescape", Doc: "the *KeyValue emitter handle escaping its callback", Run: checkKVEscape},
		{Name: "obslint", Doc: "trace spans opened with Begin but never ended in the same function", Run: checkObsSpans},
		{Name: "commphase", Doc: "comm-accounting RecordSend/RecordRecv calls with no preceding SetPhase or open span", Run: checkCommPhase},
		{Name: "requests", Doc: "Isend/Irecv requests that are discarded or never completed with Wait/Test", Run: checkRequests},
		{Name: "goroutines", Doc: "MPI calls or KV emits reachable from a goroutine spawned inside a rank function", Run: checkGoroutines},
		{Name: "deadlock", Doc: "rank-dependent branches whose arms all block in Recv first, and per-arm sends no peer arm can receive", Run: checkDeadlock},
		{Name: "sync", Doc: "WaitGroup misuse in worker pools (Add inside the spawned goroutine, Add with no Wait)", Run: checkSync},
		{Name: "suppress", Doc: "mpilint:ignore directives without named checks and a reason, or naming unknown checks", Run: checkSuppress},
		{Name: "unmatched", Doc: "cross-rank: constant-routed sends no rank can receive, and receives no rank's sends satisfy", Run: checkUnmatched},
		{Name: "mismatch", Doc: "cross-rank: ranks whose collective sequences diverge (kind, order, or root)", Run: checkMismatch},
		{Name: "globaldeadlock", Doc: "cross-rank: a reachable schedule where every rank blocks with nothing in flight", Run: checkGlobalDeadlock},
	}
}

// Check runs every analyzer over pkg and returns the findings sorted by
// position, with mpilint:ignore suppressions applied.
func Check(pkg *Package) []Finding {
	return CheckWith(pkg, Analyzers())
}

// CheckWith runs a chosen subset of analyzers over pkg.
func CheckWith(pkg *Package, analyzers []*Analyzer) []Finding {
	if pkg.ignores == nil {
		pkg.buildIgnores()
	}
	var out []Finding
	for _, a := range analyzers {
		out = append(out, pkg.suppressed(a.Run(pkg))...)
	}
	Sort(out)
	return out
}

// Sort orders findings by file, line, column, then check name and message,
// so multi-package runs (and co-located findings from different analyzers)
// print and baseline in one deterministic order across runs and machines.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}

// position resolves a node's position against the package file set.
func (pkg *Package) position(n ast.Node) token.Position {
	return pkg.Fset.Position(n.Pos())
}

// funcDecls yields every function declaration with a body in the package.
func (pkg *Package) funcDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
