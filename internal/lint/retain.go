package lint

import (
	"go/ast"
	"go/token"
)

// Taint kinds for retain: a []byte aliasing a page buffer, or a [][]byte
// whose elements alias page buffers.
const (
	taintNone = iota
	taintBytes
	taintHeaders
)

// checkRetain flags the `key []byte` / `values [][]byte` parameters of
// MapKV/Reduce/Each callbacks (and sub-slices of them) escaping the
// callback: stored into outer-scope structures, sent on a channel, or
// returned. Those slices point into library-owned, page-backed KV/KMV
// stores that are recycled out-of-core — after the callback returns the
// bytes are rewritten by the next page, so a retained alias silently goes
// stale. The fix is an explicit copy: append([]byte(nil), key...) or
// string(key).
//
// Note one deliberate deviation from the C++ library's advice: emitting a
// parameter via out.Add/AddString inside the callback is NOT flagged,
// because this port's KeyValue.Add is documented to copy its inputs. Any
// other call result is likewise treated as a fresh (clean) value.
func checkRetain(pkg *Package) []Finding {
	var out []Finding
	inMR := pkg.Name == "mrmpi"
	seen := map[token.Pos]bool{}
	for _, f := range pkg.Files {
		if mrmpiAlias(f) == "" && !inMR {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, fl := mrCallback(call)
			switch kind {
			case cbMapKV, cbReduce, cbEachKV, cbEachKMV:
			default:
				return true
			}
			for _, fd := range retainedEscapes(pkg, fl) {
				if pos := fd.node.Pos(); !seen[pos] {
					seen[pos] = true
					out = append(out, fd.finding)
				}
			}
			return true
		})
	}
	return out
}

type retainFinding struct {
	node    ast.Node
	finding Finding
}

// retainedEscapes runs the taint pass over one callback body. Parameters
// typed []byte seed taintBytes and [][]byte seed taintHeaders; taint flows
// through :=/= rebindings, sub-slicing, indexing (headers -> bytes), range,
// append-with-aliasing, and composite literals, and is cleared by copying
// idioms (string(x), append([]byte(nil), x...), any other call result).
func retainedEscapes(pkg *Package, fl *ast.FuncLit) []retainFinding {
	taint := map[string]int{}
	locals := localIdents(fl)
	if fl.Type.Params != nil {
		for _, field := range fl.Type.Params.List {
			k := taintNone
			if isByteSliceType(field.Type) {
				k = taintBytes
			} else if isByteSliceSliceType(field.Type) {
				k = taintHeaders
			}
			if k == taintNone {
				continue
			}
			for _, name := range field.Names {
				taint[name.Name] = k
			}
		}
	}
	if len(taint) == 0 {
		return nil
	}

	var out []retainFinding
	report := func(n ast.Node, what, how string) {
		out = append(out, retainFinding{node: n, finding: Finding{
			Pos:      pkg.position(n),
			Analyzer: "retain",
			Message: what + " aliases a recycled KV/KMV page buffer and " + how +
				": copy it first (append([]byte(nil), x...) or string(x)) — the bytes are rewritten after the callback returns",
		}})
	}

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			// Passing a tainted slice to a local helper whose summary says
			// the parameter escapes is an escape at this call site — the
			// interprocedural leg of the check.
			callee := pkg.calleeDecl(s)
			if callee == nil || callee.Body == nil {
				return true
			}
			sum := pkg.Summaries().Of(callee)
			if sum == nil {
				return true
			}
			for a, arg := range s.Args {
				if !sum.EscapeParams[a] || exprTaint(arg, taint) == taintNone {
					continue
				}
				report(s, exprString(arg), "is passed to "+sum.Name+", which retains it beyond the call")
			}
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					k := taintNone
					if len(s.Rhs) == len(s.Lhs) {
						k = exprTaint(s.Rhs[i], taint)
						if k == taintNone {
							k = summaryTaint(pkg, s.Rhs[i], taint)
						}
					}
					if k == taintNone {
						delete(taint, id.Name)
					} else {
						taint[id.Name] = k
					}
				}
				return true
			}
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				k := taintNone
				if rhs != nil {
					k = exprTaint(rhs, taint)
					if k == taintNone {
						k = summaryTaint(pkg, rhs, taint)
					}
				}
				if k == taintNone {
					// Rebinding with a clean value clears taint.
					if id, ok := lhs.(*ast.Ident); ok {
						delete(taint, id.Name)
					}
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if locals[id.Name] {
						taint[id.Name] = k
						continue
					}
					report(s, exprString(rhs), "is stored in captured variable "+id.Name)
					continue
				}
				if id := baseIdent(lhs); id != nil {
					if locals[id.Name] {
						// A local container now holds the alias; if the
						// container later escapes, it carries the taint.
						taint[id.Name] = taintHeaders
						continue
					}
					report(s, exprString(rhs), "is stored into captured "+id.Name)
				}
			}
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				k := exprTaint(s.X, taint)
				if id, ok := s.Value.(*ast.Ident); ok && id.Name != "_" {
					if k == taintHeaders {
						taint[id.Name] = taintBytes
					} else {
						delete(taint, id.Name)
					}
				}
				if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
					delete(taint, id.Name)
				}
			}
		case *ast.SendStmt:
			if exprTaint(s.Value, taint) != taintNone {
				report(s, exprString(s.Value), "is sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if exprTaint(r, taint) != taintNone {
					report(s, exprString(r), "is returned from the callback")
				}
			}
		}
		return true
	})
	return out
}

// exprTaint classifies an expression against the current taint state.
func exprTaint(e ast.Expr, taint map[string]int) int {
	switch x := e.(type) {
	case *ast.Ident:
		return taint[x.Name]
	case *ast.ParenExpr:
		return exprTaint(x.X, taint)
	case *ast.SliceExpr:
		// key[1:] aliases the same backing buffer.
		return exprTaint(x.X, taint)
	case *ast.IndexExpr:
		// values[i] is a []byte into the page; key[i] is a plain byte.
		if exprTaint(x.X, taint) == taintHeaders {
			return taintBytes
		}
		return taintNone
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprTaint(x.X, taint)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if exprTaint(v, taint) != taintNone {
				return taintHeaders
			}
		}
	case *ast.CallExpr:
		return appendTaint(x, taint)
	}
	return taintNone
}

// summaryTaint extends exprTaint across calls: a local helper whose
// summary says it returns one of its parameters hands back the argument's
// taint (identity-ish helpers like trim(key) keep the alias alive).
func summaryTaint(pkg *Package, e ast.Expr, taint map[string]int) int {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return taintNone
	}
	callee := pkg.calleeDecl(call)
	if callee == nil || callee.Body == nil {
		return taintNone
	}
	sum := pkg.Summaries().Of(callee)
	if sum == nil {
		return taintNone
	}
	for a, arg := range call.Args {
		if !sum.ReturnsParam[a] {
			continue
		}
		if k := exprTaint(arg, taint); k != taintNone {
			return k
		}
	}
	return taintNone
}

// appendTaint judges append() calls; every other call result is clean
// (string(x), bytes.Clone-style helpers, out.Add which copies, ...).
func appendTaint(call *ast.CallExpr, taint map[string]int) int {
	if _, name := callTarget(call); name != "append" || len(call.Args) == 0 {
		return taintNone
	}
	k := exprTaint(call.Args[0], taint)
	for i, arg := range call.Args[1:] {
		at := exprTaint(arg, taint)
		if at == taintNone {
			continue
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
			// append(dst, key...) copies the CONTENT of a []byte — clean —
			// but append(dst, values...) copies the HEADERS, which still
			// point into the page.
			if at == taintHeaders {
				k = taintHeaders
			}
			continue
		}
		// A tainted element appended by value: the destination now holds
		// an alias (append(list, key) stores the slice header).
		k = taintHeaders
	}
	return k
}

// exprString renders a short source-ish form of an expression for
// diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.SliceExpr:
		return exprString(x.X) + "[...]"
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.UnaryExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		if _, name := callTarget(x); name != "" {
			return name + "(...)"
		}
	case *ast.CompositeLit:
		return "composite literal"
	}
	return "value"
}
