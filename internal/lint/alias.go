package lint

import (
	"go/ast"
)

// checkAliasedBcast flags writes through values received from the sharing
// collectives (generic Bcast and Allgather). Those collectives hand every
// rank the same backing value: a slice, map, or pointer result is aliased
// across all ranks, so an element write on one rank races with reads on
// every other. The fix is to copy before mutating, or to use a copying
// broadcast such as BcastFloat64s.
//
// The analysis is per function and flow-insensitive in the small: an
// identifier bound from a sharing collective is tainted; index/field/pointer
// assignments through it, copy(x, …) into it, and append(x, …) growing it in
// place are findings. Rebinding the identifier wholesale clears the taint.
func checkAliasedBcast(pkg *Package) []Finding {
	var out []Finding
	inMPI := pkg.Name == "mpi"
	for _, f := range pkg.Files {
		alias := mpiAlias(f)
		if alias == "" && !inMPI {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, aliasedWritesIn(pkg, fn, alias, inMPI)...)
		}
	}
	return out
}

func aliasedWritesIn(pkg *Package, fn *ast.FuncDecl, alias string, inMPI bool) []Finding {
	var out []Finding
	tainted := map[string]string{} // identifier -> collective that produced it
	report := func(n ast.Node, id *ast.Ident, how string) {
		src := tainted[id.Name]
		out = append(out, Finding{
			Pos:      pkg.position(n),
			Analyzer: "aliasedbcast",
			Message: id.Name + " aliases the value shared across ranks by " + src + "; " + how +
				" mutates every rank's copy — copy it first (or use a copying variant like BcastFloat64s)",
		})
	}
	// checkGrowWrite flags copy()-into and append()-of a tainted slice; both
	// mutate (or may mutate, for append with spare capacity) the shared
	// backing array. Returns true when a finding was reported so callers can
	// avoid double-reporting the same call node.
	checkGrowWrite := func(call *ast.CallExpr) bool {
		_, name := callTarget(call)
		switch name {
		case "copy":
			if len(call.Args) == 2 {
				if id := baseIdent(call.Args[0]); id != nil && tainted[id.Name] != "" {
					report(call, id, "copy() into it")
					return true
				}
			}
		case "append":
			if len(call.Args) >= 1 {
				if id := baseIdent(call.Args[0]); id != nil && tainted[id.Name] != "" {
					report(call, id, "append (which reuses the shared backing array when capacity allows)")
					return true
				}
			}
		}
		return false
	}
	handled := map[ast.Node]bool{}
	// ast.Inspect visits statements in source order, which is the evaluation
	// order that matters for taint here (single-pass, loops ignored: a write
	// before a later taint in the same loop body is the rare case this
	// syntactic pass accepts missing).
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			// Writes through tainted identifiers on the left.
			for _, lhs := range stmt.Lhs {
				switch l := lhs.(type) {
				case *ast.IndexExpr:
					if id := baseIdent(l.X); id != nil && tainted[id.Name] != "" {
						report(stmt, id, "the element assignment")
					}
				case *ast.StarExpr:
					if id := baseIdent(l.X); id != nil && tainted[id.Name] != "" {
						report(stmt, id, "the pointer write")
					}
				case *ast.SelectorExpr:
					if id := baseIdent(l.X); id != nil && tainted[id.Name] != "" {
						report(stmt, id, "the field write")
					}
				}
			}
			// Growing writes on the right must be judged against the taint
			// state BEFORE any rebinding below (v = append(v, …) both writes
			// through v and rebinds it).
			for _, rhs := range stmt.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if checkGrowWrite(call) {
						handled[call] = true
					}
					handled[call] = true // judged now either way; skip revisit
				}
			}
			// Taint / untaint plain identifier bindings.
			if len(stmt.Rhs) == 1 && len(stmt.Lhs) >= 1 {
				if src := sharingCall(stmt.Rhs[0], alias, inMPI); src != "" {
					if id, ok := stmt.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						tainted[id.Name] = src
					}
				} else {
					for _, lhs := range stmt.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && tainted[id.Name] != "" {
							delete(tainted, id.Name)
						}
					}
				}
			}
		case *ast.CallExpr:
			if !handled[stmt] {
				checkGrowWrite(stmt)
			}
		}
		return true
	})
	return out
}

// sharingCall reports the collective name when expr is a call to a sharing
// collective (Bcast/Allgather), else "".
func sharingCall(expr ast.Expr, alias string, inMPI bool) string {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return ""
	}
	qual, name := callTarget(call)
	if !sharingFuncs[name] {
		return ""
	}
	if qual == alias && alias != "" {
		return name
	}
	if qual == "" && inMPI {
		return name
	}
	return ""
}

// baseIdent peels index/selector/paren/star layers to the root identifier of
// an lvalue-ish expression, or nil when there is none.
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
