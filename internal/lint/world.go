package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file is the world engine of the protocol verifier (see protocol.go
// for the checks built on it). Where summary.go flattens branches into
// may-traces — sound for per-function checks but too lossy to match ranks
// against each other — this engine keeps the branch structure: it builds a
// per-function *conditional trace tree* (ops, call edges, branches with
// their conditions, loops), then instantiates that tree once per rank of a
// concrete N-rank world, evaluating rank-conditional branches under
// `rank == k` and re-evaluating peer/tag/root expressions under the same
// environment (so `(rank+1)%size` resolves). The result is one RankOp list
// per rank, which the checks match pairwise and the scheduler explores.
//
// Every approximation bails toward silence: an undecidable branch
// instantiates all of its arms with Cond set (the op may not execute), a
// loop body instantiates once with InLoop set (the op may execute zero or
// many times), and Cond/InLoop ops get skip transitions in the scheduler
// and count as potential matchers — so nothing the engine is unsure about
// can ever manufacture a finding.

// ---- conditional trace tree ----------------------------------------------

// traceStep is one node of a function's conditional trace tree.
type traceStep interface{ isStep() }

// stepOp is a leaf communication op.
type stepOp struct{ op CommOp }

// stepCall is an in-package call edge expanded at instantiation time (with
// constant arguments propagated into the callee's environment).
type stepCall struct {
	callee *ast.FuncDecl
	call   *ast.CallExpr
	pos    token.Pos
}

// stepBranch is an if/else-if chain, switch, type switch, or select. Arms
// are tried in source order; the evaluator stops at the first arm whose
// condition is definitely true.
type stepBranch struct{ arms []traceArm }

// traceArm is one arm of a branch. The condition is either cond (if-arm),
// tag+cases (switch case), or nothing (else / default / implicit empty
// arm, which matches whenever no earlier arm did). opaque marks arms whose
// condition can never be decided (type switches, selects).
type traceArm struct {
	cond   ast.Expr
	tag    ast.Expr
	cases  []ast.Expr
	opaque bool
	body   []traceStep
}

// stepLoop is a for/range body, instantiated once with InLoop set. rankDep
// marks loops whose trip count depends on the rank, so their ops are also
// conditional (different ranks may run them a different number of times).
type stepLoop struct {
	rankDep bool
	body    []traceStep
}

// stepReturn terminates the instantiation of the current path (return,
// panic, os.Exit-shaped calls are not modeled — only return and panic).
type stepReturn struct{}

func (stepOp) isStep()     {}
func (stepCall) isStep()   {}
func (stepBranch) isStep() {}
func (stepLoop) isStep()   {}
func (stepReturn) isStep() {}

// stepsOf builds (and caches) the conditional trace tree of a declaration.
func (s *Summaries) stepsOf(fd *ast.FuncDecl) []traceStep {
	if s.steps == nil {
		s.steps = map[*ast.FuncDecl][]traceStep{}
	}
	if st, ok := s.steps[fd]; ok {
		return st
	}
	b := &stepBuilder{x: s.extractor(fd), rankVars: rankVarsOf(fd)}
	st := b.block(fd.Body.List)
	s.steps[fd] = st
	return st
}

// stepsOfNode builds the tree of an arbitrary body (a FuncLit passed to
// mpi.Run) in the context of its enclosing declaration.
func (s *Summaries) stepsOfNode(body *ast.BlockStmt, encl *ast.FuncDecl, lit *ast.FuncLit) []traceStep {
	b := &stepBuilder{x: s.extractor(encl), rankVars: boundFromCall(lit, "Rank")}
	return b.block(body.List)
}

// stepBuilder walks statement lists into trace steps.
type stepBuilder struct {
	x        *opExtractor
	rankVars map[string]bool
}

// block converts a statement list.
func (b *stepBuilder) block(stmts []ast.Stmt) []traceStep {
	var out []traceStep
	for _, st := range stmts {
		out = append(out, b.stmt(st)...)
	}
	return out
}

// stmt converts one statement. Compound statements keep their structure;
// everything else is a leaf whose ops come from the summary extractor
// (which already skips function literals and go statements).
func (b *stepBuilder) stmt(st ast.Stmt) []traceStep {
	switch v := st.(type) {
	case *ast.BlockStmt:
		return b.block(v.List)
	case *ast.LabeledStmt:
		return b.stmt(v.Stmt)
	case *ast.IfStmt:
		var out []traceStep
		if v.Init != nil {
			out = append(out, b.leaf(v.Init)...)
		}
		out = append(out, b.leafExpr(v.Cond)...)
		br := stepBranch{}
		for {
			br.arms = append(br.arms, traceArm{cond: v.Cond, body: b.block(v.Body.List)})
			switch e := v.Else.(type) {
			case *ast.IfStmt:
				v = e
				continue
			case *ast.BlockStmt:
				br.arms = append(br.arms, traceArm{body: b.block(e.List)})
			default:
				br.arms = append(br.arms, traceArm{})
			}
			break
		}
		return append(out, br)
	case *ast.SwitchStmt:
		var out []traceStep
		if v.Init != nil {
			out = append(out, b.leaf(v.Init)...)
		}
		if v.Tag != nil {
			out = append(out, b.leafExpr(v.Tag)...)
		}
		br := stepBranch{}
		var def *traceArm
		for _, c := range v.Body.List {
			cc := c.(*ast.CaseClause)
			arm := traceArm{body: b.block(cc.Body)}
			switch {
			case cc.List == nil:
				// default: matches when nothing else did — order it last.
				d := arm
				def = &d
				continue
			case v.Tag != nil:
				arm.tag, arm.cases = v.Tag, cc.List
			case len(cc.List) == 1:
				arm.cond = cc.List[0] // tagless switch: case exprs are conditions
			default:
				arm.opaque = true
			}
			br.arms = append(br.arms, arm)
		}
		if def != nil {
			br.arms = append(br.arms, *def)
		} else {
			br.arms = append(br.arms, traceArm{}) // implicit empty arm
		}
		return append(out, br)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Undecidable dispatch: every arm is opaque.
		br := stepBranch{}
		switch w := st.(type) {
		case *ast.TypeSwitchStmt:
			for _, c := range w.Body.List {
				cc := c.(*ast.CaseClause)
				br.arms = append(br.arms, traceArm{opaque: true, body: b.block(cc.Body)})
			}
		case *ast.SelectStmt:
			for _, c := range w.Body.List {
				cc := c.(*ast.CommClause)
				br.arms = append(br.arms, traceArm{opaque: true, body: b.block(cc.Body)})
			}
		}
		br.arms = append(br.arms, traceArm{}) // the no-arm path
		return []traceStep{br}
	case *ast.ForStmt:
		var out []traceStep
		if v.Init != nil {
			out = append(out, b.leaf(v.Init)...)
		}
		rankDep := v.Cond != nil && isRankExpr(v.Cond, b.rankVars)
		if v.Cond != nil {
			out = append(out, b.leafExpr(v.Cond)...)
		}
		body := b.block(v.Body.List)
		if v.Post != nil {
			body = append(body, b.leaf(v.Post)...)
		}
		return append(out, stepLoop{rankDep: rankDep, body: body})
	case *ast.RangeStmt:
		out := b.leafExpr(v.X)
		rankDep := isRankExpr(v.X, b.rankVars)
		return append(out, stepLoop{rankDep: rankDep, body: b.block(v.Body.List)})
	case *ast.ReturnStmt:
		return append(b.leaf(st), stepReturn{})
	case *ast.BranchStmt:
		return nil // break/continue/goto: loop bodies are single-shot anyway
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return append(b.leaf(st), stepReturn{})
			}
		}
		return b.leaf(st)
	default:
		return b.leaf(st)
	}
}

// leaf extracts the ops and call edges of a non-compound statement.
func (b *stepBuilder) leaf(n ast.Node) []traceStep {
	var out []traceStep
	for _, ev := range b.x.events(n) {
		if ev.callee != nil {
			out = append(out, stepCall{callee: ev.callee, call: callIn(n, ev.pos), pos: ev.pos})
			continue
		}
		out = append(out, stepOp{op: ev.op})
	}
	return out
}

// leafExpr is leaf for expressions (branch conditions, loop bounds).
func (b *stepBuilder) leafExpr(e ast.Expr) []traceStep {
	if e == nil {
		return nil
	}
	return b.leaf(e)
}

// callIn finds the CallExpr at pos inside n, so stepCall can propagate its
// arguments into the callee environment.
func callIn(n ast.Node, pos token.Pos) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(n, func(nn ast.Node) bool {
		if call, ok := nn.(*ast.CallExpr); ok && call.Pos() == pos {
			found = call
			return false
		}
		return found == nil
	})
	return found
}

// ---- rank-world evaluation -----------------------------------------------

// worldEnv is the evaluation environment of one rank in one world: the
// concrete rank and size, the visible integer constants (package + local +
// constants propagated through call arguments), and the identifiers known
// to hold Rank()/Size().
type worldEnv struct {
	rank, size int64
	consts     map[string]int64
	rankVars   map[string]bool
	sizeVars   map[string]bool
}

// evalWorldExpr evaluates an integer expression under a world environment:
// evalConst's subset plus Rank()/Size() calls, .rank/.size selectors, and
// rank/size-bound identifiers.
func evalWorldExpr(e ast.Expr, env *worldEnv) (int64, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		if env.rankVars[v.Name] {
			return env.rank, true
		}
		if env.sizeVars[v.Name] {
			return env.size, true
		}
		c, ok := env.consts[v.Name]
		return c, ok
	case *ast.CallExpr:
		switch _, name := callTarget(v); name {
		case "Rank":
			return env.rank, true
		case "Size":
			return env.size, true
		}
		return 0, false
	case *ast.SelectorExpr:
		switch v.Sel.Name {
		case "rank":
			return env.rank, true
		case "size":
			return env.size, true
		}
		return 0, false
	case *ast.ParenExpr:
		return evalWorldExpr(v.X, env)
	case *ast.UnaryExpr:
		x, ok := evalWorldExpr(v.X, env)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case token.SUB:
			return -x, true
		case token.ADD:
			return x, true
		case token.XOR:
			return ^x, true
		}
		return 0, false
	case *ast.BasicLit:
		return evalConst(e, constEnv{})
	case *ast.BinaryExpr:
		a, okA := evalWorldExpr(v.X, env)
		b, okB := evalWorldExpr(v.Y, env)
		if !okA || !okB {
			return 0, false
		}
		switch v.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		case token.SHL:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a << uint(b), true
		case token.SHR:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a >> uint(b), true
		}
		return 0, false
	}
	return 0, false
}

// evalWorldCond evaluates a boolean condition three-valuedly: ansYes/ansNo
// when the comparison is decided by the environment, ansUnknown otherwise.
func evalWorldCond(e ast.Expr, env *worldEnv) answer {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return evalWorldCond(v.X, env)
	case *ast.Ident:
		switch v.Name {
		case "true":
			return ansYes
		case "false":
			return ansNo
		}
		return ansUnknown
	case *ast.UnaryExpr:
		if v.Op != token.NOT {
			return ansUnknown
		}
		switch evalWorldCond(v.X, env) {
		case ansYes:
			return ansNo
		case ansNo:
			return ansYes
		}
		return ansUnknown
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			a, b := evalWorldCond(v.X, env), evalWorldCond(v.Y, env)
			if a == ansNo || b == ansNo {
				return ansNo
			}
			if a == ansYes && b == ansYes {
				return ansYes
			}
			return ansUnknown
		case token.LOR:
			a, b := evalWorldCond(v.X, env), evalWorldCond(v.Y, env)
			if a == ansYes || b == ansYes {
				return ansYes
			}
			if a == ansNo && b == ansNo {
				return ansNo
			}
			return ansUnknown
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			a, okA := evalWorldExpr(v.X, env)
			b, okB := evalWorldExpr(v.Y, env)
			if !okA || !okB {
				return ansUnknown
			}
			var truth bool
			switch v.Op {
			case token.EQL:
				truth = a == b
			case token.NEQ:
				truth = a != b
			case token.LSS:
				truth = a < b
			case token.LEQ:
				truth = a <= b
			case token.GTR:
				truth = a > b
			case token.GEQ:
				truth = a >= b
			}
			if truth {
				return ansYes
			}
			return ansNo
		}
	}
	return ansUnknown
}

// ---- instantiation -------------------------------------------------------

// RankOp is one op of one rank's instantiated trace. Cond marks ops the
// rank may or may not execute (undecidable branch, rank-dependent loop, a
// path after a possible early return); InLoop marks ops that may execute
// zero or many times. Both weaken the op for matching and give it a skip
// transition in the scheduler.
type RankOp struct {
	CommOp
	Cond   bool
	InLoop bool
}

// maxRankOps caps one rank's instantiated trace; exceeding it abandons the
// entrypoint (toward silence).
const maxRankOps = 256

// maxCallDepth bounds call-edge expansion during instantiation.
const maxCallDepth = 16

// flow is the control-flow status of an instantiated step sequence.
type flow int

const (
	flowLive  flow = iota // definitely continues
	flowMaybe             // may have returned on some path
	flowDead              // definitely returned
)

// instantiator accumulates one rank's ops while walking trace trees.
type instantiator struct {
	s     *Summaries
	ops   []RankOp
	stack map[*ast.FuncDecl]bool
	depth int
	bad   bool // trace too long, recursion, or other give-up
}

// instantiateRank produces rank's op list for a world of the given size,
// ok=false when the engine gave up.
func (s *Summaries) instantiateRank(steps []traceStep, env *worldEnv) ([]RankOp, bool) {
	in := &instantiator{s: s, stack: map[*ast.FuncDecl]bool{}}
	in.run(steps, env, false, false)
	if in.bad {
		return nil, false
	}
	return in.ops, true
}

// run instantiates a step list under env; cond/inLoop carry the enclosing
// conditionality. Returns the flow status of the list.
func (in *instantiator) run(steps []traceStep, env *worldEnv, cond, inLoop bool) flow {
	status := flowLive
	for _, st := range steps {
		if in.bad {
			return status
		}
		// After a possible early return, everything is conditional.
		c := cond || status == flowMaybe
		switch v := st.(type) {
		case stepOp:
			op := v.op
			in.resolve(&op, env)
			if len(in.ops) >= maxRankOps {
				in.bad = true
				return status
			}
			in.ops = append(in.ops, RankOp{CommOp: op, Cond: c, InLoop: inLoop})
		case stepReturn:
			if !c {
				return flowDead
			}
			status = flowMaybe
		case stepCall:
			in.expandCall(v, env, c, inLoop)
		case stepLoop:
			if in.run(v.body, env, true, true) != flowLive && status == flowLive {
				status = flowMaybe
			}
			_ = v.rankDep // rank-dependent trip counts are already Cond via cond=true
		case stepBranch:
			bs := in.branch(v, env, c, inLoop)
			switch bs {
			case flowDead:
				if !c {
					return flowDead
				}
				status = flowMaybe
			case flowMaybe:
				status = flowMaybe
			}
		}
	}
	return status
}

// branch instantiates a stepBranch: arms are tried in order, a definitely
// true arm is taken exclusively, undecidable arms are all instantiated with
// Cond set.
func (in *instantiator) branch(br stepBranch, env *worldEnv, cond, inLoop bool) flow {
	anyUnknown := false
	var maybeReturn bool
	for _, arm := range br.arms {
		switch in.armMatch(arm, env) {
		case ansNo:
			continue
		case ansYes:
			if !anyUnknown {
				// Exclusively taken.
				return in.run(arm.body, env, cond, inLoop)
			}
			// Reached only if every earlier unknown arm was false.
			if in.run(arm.body, env, true, inLoop) != flowLive {
				maybeReturn = true
			}
			// Arms after a true condition are unreachable either way.
			if maybeReturn {
				return flowMaybe
			}
			return flowLive
		default:
			anyUnknown = true
			if in.run(arm.body, env, true, inLoop) != flowLive {
				maybeReturn = true
			}
		}
	}
	if maybeReturn {
		return flowMaybe
	}
	return flowLive
}

// armMatch decides an arm's condition under the environment.
func (in *instantiator) armMatch(arm traceArm, env *worldEnv) answer {
	if arm.opaque {
		return ansUnknown
	}
	if arm.cond != nil {
		return evalWorldCond(arm.cond, env)
	}
	if arm.tag != nil {
		tv, ok := evalWorldExpr(arm.tag, env)
		if !ok {
			return ansUnknown
		}
		allKnown := true
		for _, ce := range arm.cases {
			cv, ok := evalWorldExpr(ce, env)
			if !ok {
				allKnown = false
				continue
			}
			if cv == tv {
				return ansYes
			}
		}
		if allKnown {
			return ansNo
		}
		return ansUnknown
	}
	return ansYes // else / default / implicit arm
}

// expandCall instantiates a callee's tree under a fresh environment with
// constant (and rank/size) argument values bound to parameter names.
func (in *instantiator) expandCall(sc stepCall, env *worldEnv, cond, inLoop bool) {
	fd := sc.callee
	if fd == nil || fd.Body == nil {
		return
	}
	if in.stack[fd] || in.depth >= maxCallDepth {
		// Recursive or too-deep protocols are beyond the model: give up on
		// the entrypoint rather than reason about half of it.
		if sumHasMPI(in.s.of(fd)) {
			in.bad = true
		}
		return
	}
	callee := &worldEnv{
		rank:     env.rank,
		size:     env.size,
		consts:   localConsts(fd, in.s.pkg.Consts),
		rankVars: rankVarsOf(fd),
		sizeVars: sizeVarsOf(fd),
	}
	// Bind call arguments to parameter names: constants become constants,
	// rank/size expressions mark the parameter as a rank/size variable.
	if sc.call != nil && fd.Type.Params != nil {
		flat := flatParamNames(fd)
		if len(flat) == len(sc.call.Args) {
			bound := false
			for i, arg := range sc.call.Args {
				name := flat[i]
				if name == "" || name == "_" {
					continue
				}
				if v, ok := evalWorldExpr(arg, env); ok {
					if !bound {
						callee.consts = copyConsts(callee.consts)
						bound = true
					}
					// Rank and size stay symbolic via the var sets; plain
					// values become constants.
					switch {
					case exprIsExactly(arg, env.rankVars, "Rank", "rank"):
						callee.rankVars[name] = true
					case exprIsExactly(arg, env.sizeVars, "Size", "size"):
						callee.sizeVars[name] = true
					default:
						callee.consts[name] = v
					}
				}
			}
		}
	}
	prevDepth := in.depth
	in.stack[fd] = true
	in.depth++
	st := in.run(in.s.stepsOf(fd), callee, cond, inLoop)
	in.depth = prevDepth
	delete(in.stack, fd)
	_ = st // a callee's early return ends the callee only
}

// exprIsExactly reports whether arg is precisely the rank (or size) value:
// a bound identifier, a Method() call, or a .field selector — not an
// arithmetic derivation.
func exprIsExactly(arg ast.Expr, vars map[string]bool, method, field string) bool {
	switch v := arg.(type) {
	case *ast.Ident:
		return vars[v.Name]
	case *ast.CallExpr:
		_, name := callTarget(v)
		return name == method
	case *ast.SelectorExpr:
		return v.Sel.Name == field
	case *ast.ParenExpr:
		return exprIsExactly(v.X, vars, method, field)
	}
	return false
}

// flatParamNames flattens a declaration's parameter names (one entry per
// value, "" for unnamed).
func flatParamNames(fd *ast.FuncDecl) []string {
	var out []string
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func copyConsts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m)+4)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sumHasMPI reports whether a summary contains any MPI op.
func sumHasMPI(sum *Summary) bool {
	if len(sum.Collectives) > 0 {
		return true
	}
	for _, op := range sum.Trace {
		if op.MPI() {
			return true
		}
	}
	return false
}

// resolve re-evaluates an op's peer/tag/root argument expressions under the
// rank environment, upgrading unknown values to known ones where the
// expression is rank/size arithmetic.
func (in *instantiator) resolve(op *CommOp, env *worldEnv) {
	if !op.PeerKnown && !op.PeerAny && op.peerX != nil {
		if v, ok := evalWorldExpr(op.peerX, env); ok {
			op.Peer, op.PeerKnown = v, true
		}
	}
	if !op.TagKnown && !op.TagAny && op.tagX != nil {
		if v, ok := evalWorldExpr(op.tagX, env); ok {
			op.Tag, op.TagKnown = v, true
		}
	}
	if !op.RootKnown && op.rootX != nil {
		if v, ok := evalWorldExpr(op.rootX, env); ok {
			op.Root, op.RootKnown = v, true
		}
	}
}

// ---- the scheduler -------------------------------------------------------

// worldMsg is one buffered message in flight. dstKnown/tagKnown=false makes
// the field a wildcard that matches anything (toward silence).
type worldMsg struct {
	src, dst, tag      int64
	dstKnown, tagKnown bool
}

// schedState is one explored state: per-rank program counters plus the
// multiset of messages in flight.
type schedState struct {
	pcs      []int
	inflight []worldMsg
}

// key renders a canonical state key for the visited set.
func (st *schedState) key() string {
	var b strings.Builder
	for _, pc := range st.pcs {
		fmt.Fprintf(&b, "%d,", pc)
	}
	b.WriteByte('|')
	msgs := append([]worldMsg(nil), st.inflight...)
	// Insertion sort: inflight stays tiny.
	for i := 1; i < len(msgs); i++ {
		for j := i; j > 0 && msgLess(msgs[j], msgs[j-1]); j-- {
			msgs[j], msgs[j-1] = msgs[j-1], msgs[j]
		}
	}
	for _, m := range msgs {
		fmt.Fprintf(&b, "%d:%d:%v:%d:%v;", m.src, m.dst, m.dstKnown, m.tag, m.tagKnown)
	}
	return b.String()
}

func msgLess(a, b worldMsg) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	if a.dst != b.dst {
		return a.dst < b.dst
	}
	return a.tag < b.tag
}

// maxSchedStates caps the state search; past it the scheduler gives up
// silently (an unexplored schedule can only hide a bug, not invent one).
const maxSchedStates = 20000

// maxInflight caps buffered messages per state.
const maxInflight = 96

// deadlock is the scheduler's verdict: the blocked state it found, or nil.
type deadlock struct {
	state schedState
}

// findDeadlock explores the interleavings of the per-rank op lists and
// returns a reachable global blocked state (every unfinished rank stuck at
// an unconditional blocking op with nothing to satisfy it), or nil. ok is
// false when the search hit a cap and proved nothing.
func findDeadlock(ranks [][]RankOp) (*deadlock, bool) {
	n := len(ranks)
	start := schedState{pcs: make([]int, n)}
	visited := map[string]bool{start.key(): true}
	stack := []schedState{start}
	states := 0
	for len(stack) > 0 {
		states++
		if states > maxSchedStates {
			return nil, false
		}
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next, blocked := successors(ranks, st)
		if blocked {
			return &deadlock{state: st}, true
		}
		for _, ns := range next {
			if len(ns.inflight) > maxInflight {
				return nil, false
			}
			k := ns.key()
			if !visited[k] {
				visited[k] = true
				stack = append(stack, ns)
			}
		}
	}
	return nil, true
}

// successors computes the next states of st; blocked=true when st has no
// successor and some rank is unfinished (a global deadlock candidate).
func successors(ranks [][]RankOp, st schedState) (next []schedState, blocked bool) {
	n := len(ranks)
	unfinished := false
	for r := 0; r < n; r++ {
		pc := st.pcs[r]
		if pc >= len(ranks[r]) {
			continue
		}
		unfinished = true
		op := ranks[r][pc]
		if op.Cond || op.InLoop {
			next = append(next, advance(st, r, nil, -1)) // skip transition
		}
		switch op.Kind {
		case OpSend, OpIsend, OpSendrecv:
			m := worldMsg{src: int64(r)}
			if op.PeerKnown {
				m.dst, m.dstKnown = op.Peer, true
			}
			if op.TagKnown {
				m.tag, m.tagKnown = op.Tag, true
			}
			if op.PeerAny {
				m.dstKnown = false
			}
			if op.TagAny {
				m.tagKnown = false
			}
			next = append(next, advance(st, r, &m, -1))
		case OpIrecv, OpWait, OpEmit:
			next = append(next, advance(st, r, nil, -1))
		case OpRecv:
			for i, m := range st.inflight {
				if msgMatches(m, op, int64(r)) {
					next = append(next, advance(st, r, nil, i))
				}
			}
		case OpProbe:
			for _, m := range st.inflight {
				if msgMatches(m, op, int64(r)) {
					next = append(next, advance(st, r, nil, -1))
					break
				}
			}
		case OpCollective:
			if ns, ok := collectiveAdvance(ranks, st, op.Name); ok {
				next = append(next, ns)
			}
		}
	}
	return next, unfinished && len(next) == 0
}

// msgMatches applies the runtime's receive matching (tag-selective with
// wildcards) with unknowns counting as matches.
func msgMatches(m worldMsg, op RankOp, rank int64) bool {
	if m.dstKnown && m.dst != rank {
		return false
	}
	if !op.PeerAny && op.PeerKnown && m.src != op.Peer {
		return false
	}
	if !op.TagAny && op.TagKnown && m.tagKnown && m.tag != op.Tag {
		return false
	}
	return true
}

// advance returns st with rank r's pc incremented, optionally adding a
// message (add) or consuming inflight[consume].
func advance(st schedState, r int, add *worldMsg, consume int) schedState {
	ns := schedState{pcs: append([]int(nil), st.pcs...)}
	ns.pcs[r]++
	for i, m := range st.inflight {
		if i == consume {
			continue
		}
		ns.inflight = append(ns.inflight, m)
	}
	if add != nil {
		ns.inflight = append(ns.inflight, *add)
	}
	return ns
}

// collectiveAdvance fires a collective atomically: enabled only when every
// unfinished rank's current op is the same-named collective and no rank has
// already finished (a finished rank can never join).
func collectiveAdvance(ranks [][]RankOp, st schedState, name string) (schedState, bool) {
	for r := range ranks {
		pc := st.pcs[r]
		if pc >= len(ranks[r]) {
			return schedState{}, false
		}
		op := ranks[r][pc]
		if op.Kind != OpCollective || op.Name != name {
			return schedState{}, false
		}
	}
	ns := schedState{pcs: append([]int(nil), st.pcs...), inflight: st.inflight}
	for r := range ns.pcs {
		ns.pcs[r]++
	}
	return ns, true
}

// phantomCapacity reports whether a blocked state could be satisfied by an
// op the model weakened (a Cond/InLoop send that might match a blocked
// receive, a Cond/InLoop collective of the name some rank is stuck at, or
// any wildcard-peer/unknown send anywhere). Such deadlocks are not
// reported: the loop-unrolled-once and maybe-branch under-approximations
// must never manufacture one.
func phantomCapacity(ranks [][]RankOp, st schedState) bool {
	for r := range ranks {
		pc := st.pcs[r]
		if pc >= len(ranks[r]) {
			continue
		}
		op := ranks[r][pc]
		switch op.Kind {
		case OpRecv, OpProbe:
			for s := range ranks {
				for _, cand := range ranks[s] {
					if !cand.Cond && !cand.InLoop {
						continue
					}
					switch cand.Kind {
					case OpSend, OpIsend, OpSendrecv:
						m := worldMsg{src: int64(s)}
						if cand.PeerKnown && !cand.PeerAny {
							m.dst, m.dstKnown = cand.Peer, true
						}
						if cand.TagKnown && !cand.TagAny {
							m.tag, m.tagKnown = cand.Tag, true
						}
						if msgMatches(m, op, int64(r)) {
							return true
						}
					}
				}
			}
		case OpCollective:
			for s := range ranks {
				if s == r {
					continue
				}
				for _, cand := range ranks[s] {
					if (cand.Cond || cand.InLoop) && cand.Kind == OpCollective && cand.Name == op.Name {
						return true
					}
				}
			}
		}
	}
	return false
}

// ---- rendering -----------------------------------------------------------

// renderOp prints one op without positions (stable across edits, so
// baseline keys survive).
func renderOp(op CommOp) string {
	var parts []string
	switch {
	case op.PeerAny:
		parts = append(parts, "peer=any")
	case op.PeerKnown:
		parts = append(parts, fmt.Sprintf("peer=%d", op.Peer))
	}
	switch {
	case op.TagAny:
		parts = append(parts, "tag=any")
	case op.TagKnown:
		parts = append(parts, fmt.Sprintf("tag=%d", op.Tag))
	}
	if op.RootKnown {
		parts = append(parts, fmt.Sprintf("root=%d", op.Root))
	}
	if len(parts) == 0 {
		return op.Name
	}
	return op.Name + "(" + strings.Join(parts, ",") + ")"
}

// renderOps prints an op list, eliding past limit.
func renderOps(ops []CommOp, limit int) string {
	var names []string
	for i, op := range ops {
		if i == limit {
			names = append(names, fmt.Sprintf("… +%d more", len(ops)-limit))
			break
		}
		names = append(names, renderOp(op))
	}
	return "[" + strings.Join(names, " ") + "]"
}
