package lint

import (
	"go/token"
	"sort"
	"strings"
)

// Suppression is one parsed mpilint:ignore directive. The v2 grammar is
//
//	// mpilint:ignore <check>[,<check>...] -- <reason>
//
// naming the check(s) being silenced and why. The marker must start the
// comment (at most one space after the //), so prose and doc examples that
// merely mention the marker are not directives. The directive suppresses
// findings of the named checks on its own line and the line below it. A
// directive with no named check or no reason still suppresses (so a stale
// tree does not double-report), but is itself reported by the `suppress`
// analyzer: an unexplained suppression is a finding, not a free pass, and
// `-stats` prints the full inventory so CI can watch it.
type Suppression struct {
	// Pos locates the directive comment.
	Pos token.Position
	// Checks are the analyzer names the directive silences. Empty means
	// every check (the bare legacy form, which `suppress` flags).
	Checks []string
	// Reason is the text after the `--` separator (the em-dash form `—` is
	// accepted as equivalent).
	Reason string
	// Unknown lists claimed check names that match no analyzer: typos that
	// would otherwise silently suppress nothing.
	Unknown []string
	// Used counts findings this directive actually suppressed in the last
	// Check run, for the -stats inventory.
	Used int
}

// bare reports whether the directive is missing its check list or reason.
func (s *Suppression) bare() bool { return len(s.Checks) == 0 || s.Reason == "" }

const ignoreMarker = "mpilint:ignore"

// parseSuppression splits one comment's directive into checks and reason.
// Only comments that begin with the marker parse; a mid-sentence mention
// (or a tab-indented doc example) is not a directive.
func parseSuppression(text string, pos token.Position) *Suppression {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		var isBlock bool
		body, isBlock = strings.CutPrefix(text, "/*")
		if !isBlock {
			return nil
		}
		body = strings.TrimSuffix(body, "*/")
	}
	body, _ = strings.CutPrefix(body, " ") // at most one leading space
	if !strings.HasPrefix(body, ignoreMarker) {
		return nil
	}
	rest := strings.TrimSpace(body[len(ignoreMarker):])
	s := &Suppression{Pos: pos}
	// Accept "--" and the typographic "—" as the reason separator.
	var spec string
	if i := strings.Index(rest, "--"); i >= 0 {
		spec, s.Reason = rest[:i], strings.TrimSpace(rest[i+2:])
	} else if i := strings.Index(rest, "—"); i >= 0 {
		spec, s.Reason = rest[:i], strings.TrimSpace(rest[i+len("—"):])
	} else {
		spec = rest
	}
	known := analyzerNames()
	for _, field := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if field == "" {
			continue
		}
		if known[field] {
			s.Checks = append(s.Checks, field)
		} else {
			s.Unknown = append(s.Unknown, field)
		}
	}
	if len(s.Unknown) > 0 && len(s.Checks) == 0 && s.Reason == "" {
		// Free-text after the marker with no separator: treat as a bare
		// directive rather than a pile of unknown-check findings.
		s.Unknown = nil
	}
	return s
}

// analyzerNames returns the set of registered analyzer names.
func analyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// buildIgnores parses every mpilint:ignore directive in the package and
// records the lines it covers (the comment's own line and the next line, so
// a directive can sit on the offending line or on its own line above).
func (pkg *Package) buildIgnores() {
	pkg.ignores = map[string]map[int]*Suppression{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				s := parseSuppression(c.Text, pos)
				if s == nil {
					continue
				}
				pkg.suppressions = append(pkg.suppressions, *s)
				sp := &pkg.suppressions[len(pkg.suppressions)-1]
				lines := pkg.ignores[pos.Filename]
				if lines == nil {
					lines = map[int]*Suppression{}
					pkg.ignores[pos.Filename] = lines
				}
				lines[pos.Line] = sp
				lines[pos.Line+1] = sp
			}
		}
	}
	sort.SliceStable(pkg.suppressions, func(i, j int) bool {
		a, b := pkg.suppressions[i].Pos, pkg.suppressions[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
}

// Suppressions exposes the parsed directive inventory (for -stats).
func (pkg *Package) Suppressions() []Suppression {
	if pkg.ignores == nil {
		pkg.buildIgnores()
	}
	return pkg.suppressions
}

// suppressed filters out findings covered by a directive. A directive with
// named checks silences only those; a bare directive silences everything on
// its lines. Findings of the `suppress` analyzer itself are never filtered:
// the way to silence the meta-check is to fix the directive.
func (pkg *Package) suppressed(fs []Finding) []Finding {
	if len(pkg.ignores) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		s := pkg.ignores[f.Pos.Filename][f.Pos.Line]
		if s != nil && f.Analyzer != "suppress" && s.covers(f.Analyzer) {
			s.Used++
			continue
		}
		out = append(out, f)
	}
	return out
}

// covers reports whether the directive silences the named check.
func (s *Suppression) covers(check string) bool {
	if len(s.Checks) == 0 {
		return true
	}
	for _, c := range s.Checks {
		if c == check {
			return true
		}
	}
	return false
}

// checkSuppress is the meta-analyzer: every mpilint:ignore directive must
// name the check(s) it silences and give a reason after `--`. Bare
// directives rot — nobody can tell whether they are still needed or what
// they were for — and typo'd check names silently silence nothing.
func checkSuppress(pkg *Package) []Finding {
	if pkg.ignores == nil {
		pkg.buildIgnores()
	}
	var out []Finding
	for i := range pkg.suppressions {
		s := &pkg.suppressions[i]
		for _, u := range s.Unknown {
			out = append(out, Finding{Pos: s.Pos, Analyzer: "suppress",
				Message: "mpilint:ignore names unknown check \"" + u + "\" (use -list to see the suite)"})
		}
		if s.bare() {
			out = append(out, Finding{Pos: s.Pos, Analyzer: "suppress",
				Message: "mpilint:ignore without named check(s) and a reason: write `mpilint:ignore <check>[,<check>] -- <why>`"})
		}
	}
	return out
}
