package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkRoot inspects the root argument of rooted collectives (Bcast, Reduce,
// Gather, Scatter, …). Two classes of finding:
//
//   - a constant root that is negative (always panics at runtime, so it is
//     certainly a bug worth reporting before any rank runs);
//   - a non-constant root expression that is never validated against
//     Size() anywhere in the enclosing function. An out-of-range root
//     panics on every rank that checks it and — worse, when only some ranks
//     compute the same wrong value — desynchronizes the collective
//     sequence. Validation is recognized syntactically: a comparison of the
//     same expression against Size()/a size variable, or deriving the root
//     with a modulo whose divisor mentions Size().
func checkRoot(pkg *Package) []Finding {
	var out []Finding
	inMPI := pkg.Name == "mpi"
	for _, f := range pkg.Files {
		alias := mpiAlias(f)
		if alias == "" && !inMPI {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			env := constEnv{consts: localConsts(fn, pkg.Consts)}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				qual, name := callTarget(call)
				argIdx, rooted := rootedFuncs[name]
				if !rooted {
					return true
				}
				if !(qual != "" && qual == alias) && !(qual == "" && inMPI) {
					return true
				}
				// v2 typed veto: a qualifier that provably is not the mpi
				// package (a struct named like the alias, say) is rejected.
				if pkg.collectiveCallName(call, alias, inMPI) == "" {
					return true
				}
				if len(call.Args) <= argIdx {
					return true
				}
				root := call.Args[argIdx]
				if v, ok := evalConst(root, env); ok {
					if v < 0 {
						out = append(out, Finding{
							Pos:      pkg.position(root),
							Analyzer: "root",
							Message:  fmt.Sprintf("%s root %d is negative; roots must be in [0, Size())", name, v),
						})
					}
					// A constant >= 0 can still exceed Size() at runtime,
					// but world size is a runtime quantity; checkRoot stays
					// silent rather than guessing.
					return true
				}
				if !rootValidated(fn, root) {
					out = append(out, Finding{
						Pos:      pkg.position(root),
						Analyzer: "root",
						Message: fmt.Sprintf("%s root %q is not constant and is never validated against Size(); an out-of-range root panics mid-collective",
							name, types.ExprString(root)),
					})
				}
				return true
			})
		}
	}
	return out
}

// rootValidated reports whether fn contains syntax that bounds root: a
// comparison of the same expression against something mentioning
// Size()/size, or a modulo derivation ("x % c.Size()") producing it.
func rootValidated(fn *ast.FuncDecl, root ast.Expr) bool {
	rootStr := types.ExprString(root)
	// A root derived inline via modulo over the world size is in range by
	// construction.
	if modBySize(root) {
		return true
	}
	validated := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if validated {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// mpi's own validation helper: c.checkRoot(root).
			if _, name := callTarget(x); name == "checkRoot" {
				for _, arg := range x.Args {
					if types.ExprString(arg) == rootStr {
						validated = true
					}
				}
			}
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				xs, ys := types.ExprString(x.X), types.ExprString(x.Y)
				if (xs == rootStr && mentionsSize(ys)) || (ys == rootStr && mentionsSize(xs)) {
					validated = true
				}
			}
		case *ast.AssignStmt:
			// root ← expr % size-ish, in any assignment to the root
			// expression.
			for i, lhs := range x.Lhs {
				if types.ExprString(lhs) != rootStr || i >= len(x.Rhs) {
					continue
				}
				if modBySize(x.Rhs[i]) {
					validated = true
				}
			}
		}
		return !validated
	})
	return validated
}

// modBySize reports whether expr is (or is parenthesized around) a modulo
// whose divisor mentions Size().
func modBySize(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return modBySize(e.X)
	case *ast.BinaryExpr:
		return e.Op == token.REM && mentionsSize(types.ExprString(e.Y))
	}
	return false
}

// mentionsSize reports whether the printed expression references the world
// size: a Size() call or an identifier conventionally named size/nprocs/
// nranks.
func mentionsSize(s string) bool {
	if strings.Contains(s, "Size()") {
		return true
	}
	for _, name := range []string{"size", "nprocs", "nranks", "Size"} {
		if s == name {
			return true
		}
	}
	return false
}
