package lint

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestRegistrySync asserts that the analyzer registry, the README
// "Correctness tooling" table, and the DESIGN §6 table name exactly the
// same set of checks, so a new analyzer cannot land undocumented (and a
// renamed one cannot leave stale docs behind).
func TestRegistrySync(t *testing.T) {
	var registered []string
	for _, a := range Analyzers() {
		registered = append(registered, a.Name)
	}
	sort.Strings(registered)

	readme := tableChecks(t, "../../README.md", "## Correctness tooling")
	design := tableChecks(t, "../../DESIGN.md", "## 6. Correctness tooling")

	if got, want := strings.Join(readme, " "), strings.Join(registered, " "); got != want {
		t.Errorf("README table checks = %s\nregistry = %s", got, want)
	}
	if got, want := strings.Join(design, " "), strings.Join(registered, " "); got != want {
		t.Errorf("DESIGN table checks = %s\nregistry = %s", got, want)
	}
}

// tableChecks extracts the backticked check names from markdown table rows
// (`| `name` | ...`) inside one ## section of a file.
func tableChecks(t *testing.T, path, heading string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	start := strings.Index(text, heading)
	if start < 0 {
		t.Fatalf("%s: heading %q not found", path, heading)
	}
	section := text[start+len(heading):]
	if end := strings.Index(section, "\n## "); end >= 0 {
		section = section[:end]
	}
	row := regexp.MustCompile("(?m)^\\s*\\| `([a-z]+)` \\|")
	seen := map[string]bool{}
	var names []string
	for _, m := range row.FindAllStringSubmatch(section, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			names = append(names, m[1])
		}
	}
	if len(names) == 0 {
		t.Fatalf("%s: no table rows with backticked check names under %q", path, heading)
	}
	sort.Strings(names)
	return names
}
