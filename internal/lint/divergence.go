package lint

import (
	"go/ast"
)

// checkDivergence flags collective calls that appear on one arm of a
// rank-dependent branch without a matching call on every other arm. SPMD
// discipline requires all ranks to execute the same collective sequence; a
// collective reachable only when Rank() == k deadlocks the other ranks (or,
// worse, pairs their next collective with the wrong traffic).
//
// A branch is rank-dependent when its condition mentions Rank(), a .rank
// field, or a local bound from Rank(). If/else-if chains and switches over
// rank are treated as one multi-arm branch; a chain with no final else has
// an implicit empty arm, so any collective inside it is divergent.
//
// Since v2 the per-arm collective sets come from the communication
// summaries, so a collective buried any number of helper calls deep inside
// one arm still counts — and is reported at the helper call site with the
// route named.
func checkDivergence(pkg *Package) []Finding {
	sums := pkg.Summaries()
	var out []Finding
	for _, fn := range pkg.funcDecls() {
		fn := fn
		rankVars := rankVarsOf(fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.IfStmt:
				// Only handle the head of a chain; else-if links are
				// visited through collectArms.
				if isElseIf(fn.Body, stmt) {
					return true
				}
				if !ifChainOnRank(stmt, rankVars) {
					return true
				}
				out = append(out, divergentCalls(pkg, sums, fn, collectArms(stmt))...)
			case *ast.SwitchStmt:
				if !switchOnRank(stmt, rankVars) {
					return true
				}
				var arms []ast.Node
				hasDefault := false
				for _, c := range stmt.Body.List {
					cc := c.(*ast.CaseClause)
					if cc.List == nil {
						hasDefault = true
					}
					arms = append(arms, &ast.BlockStmt{List: cc.Body})
				}
				if !hasDefault {
					arms = append(arms, nil) // implicit empty arm
				}
				out = append(out, divergentCalls(pkg, sums, fn, arms)...)
			}
			return true
		})
	}
	return out
}

// ifChainOnRank reports whether any condition along an if/else-if chain is
// rank-dependent.
func ifChainOnRank(s *ast.IfStmt, rankVars map[string]bool) bool {
	for s != nil {
		if isRankExpr(s.Cond, rankVars) {
			return true
		}
		next, ok := s.Else.(*ast.IfStmt)
		if !ok {
			return false
		}
		s = next
	}
	return false
}

// switchOnRank reports whether a switch dispatches on rank, either through
// its tag or (for a tagless switch) through any case expression.
func switchOnRank(s *ast.SwitchStmt, rankVars map[string]bool) bool {
	if s.Tag != nil {
		return isRankExpr(s.Tag, rankVars)
	}
	for _, c := range s.Body.List {
		for _, e := range c.(*ast.CaseClause).List {
			if isRankExpr(e, rankVars) {
				return true
			}
		}
	}
	return false
}

// collectArms flattens an if/else-if chain into its arms. A chain without a
// final else contributes a nil arm: the fall-through path executes no
// collectives.
func collectArms(s *ast.IfStmt) []ast.Node {
	var arms []ast.Node
	for {
		arms = append(arms, s.Body)
		switch e := s.Else.(type) {
		case *ast.IfStmt:
			s = e
		case *ast.BlockStmt:
			return append(arms, e)
		default:
			return append(arms, nil)
		}
	}
}

// isElseIf reports whether target appears as the Else of another IfStmt
// inside body, so chains are processed once from their head.
func isElseIf(body *ast.BlockStmt, target *ast.IfStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.IfStmt); ok && s.Else == target {
			found = true
		}
		return !found
	})
	return found
}

// divergentCalls compares the summary-derived collective sets of the arms
// and reports every call (direct or via a helper) whose collective is
// missing from at least one other arm.
func divergentCalls(pkg *Package, sums *Summaries, fn *ast.FuncDecl, arms []ast.Node) []Finding {
	calls := make([][]collectiveUse, len(arms))
	sets := make([]map[string]bool, len(arms))
	for i, arm := range arms {
		sets[i] = map[string]bool{}
		if arm == nil {
			continue
		}
		for _, u := range sums.CollectivesUnder(arm, fn) {
			calls[i] = append(calls[i], u)
			sets[i][u.name] = true
		}
	}
	var out []Finding
	for i, armCalls := range calls {
		reported := map[string]bool{}
		for _, c := range armCalls {
			if reported[c.name] {
				continue
			}
			for j := range arms {
				if j == i || sets[j][c.name] {
					continue
				}
				reported[c.name] = true
				route := ""
				if c.via != "" {
					route = " (reached via " + c.via + ")"
				}
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(c.pos),
					Analyzer: "divergence",
					Message: "collective " + c.name + route + " inside a rank-dependent branch has no matching " +
						c.name + " on every other arm; all ranks must execute the same collective sequence",
				})
				break
			}
		}
	}
	return out
}
