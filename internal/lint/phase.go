package lint

import (
	"go/ast"
)

// checkPhase enforces the MapReduce object protocol as a per-function state
// machine over *mrmpi.MapReduce values: map() fills a KV, Collate/Convert
// turns it into a KMV, Reduce consumes the KMV back into a KV. Out-of-order
// calls do not error at runtime — they silently operate on an empty store —
// so the misuse classes here are silent wrong-answer bugs:
//
//   - Reduce (or Scrunch) with no preceding Collate/Convert: the KMV is
//     empty, the callback never runs.
//   - Collate/Convert/Aggregate before any Map or KV().Add: the KV is
//     empty, the whole phase is a no-op.
//   - double Collate/Convert with no intervening Map/Add: the second call
//     converts an empty KV and wipes the KMV the first call built.
//   - a locally created MapReduce (New/NewWith) not Closed on every return
//     path: spill files and page memory leak.
//
// The state machine is per lexical scope (function declaration or literal)
// and deliberately shallow: values received as parameters start in an
// unknown state, from which ordering checks never fire, so helper functions
// that operate on a caller's MapReduce are not second-guessed.
func checkPhase(pkg *Package) []Finding {
	var out []Finding
	inMR := pkg.Name == "mrmpi"
	for _, f := range pkg.Files {
		alias := mrmpiAlias(f)
		if alias == "" && !inMR {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inMR && fn.Recv != nil {
				// Methods inside the library mutate the phase stores
				// directly; the protocol applies to callers, not to the
				// implementation.
				continue
			}
			out = append(out, phaseScopes(pkg, alias, inMR, fn.Type.Params, fn.Body)...)
		}
	}
	return out
}

// phaseScopes analyzes a function body and every function literal nested in
// it, each as an independent scope.
func phaseScopes(pkg *Package, alias string, inMR bool, params *ast.FieldList, body *ast.BlockStmt) []Finding {
	out := phaseScope(pkg, alias, inMR, params, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, phaseScope(pkg, alias, inMR, fl.Type.Params, fl.Body)...)
		}
		return true
	})
	return out
}

// Phase states. stUnknown is the parameter state: ordering checks never
// fire from it, only from states the scope itself established.
const (
	stUnknown = iota
	stEmpty   // freshly created, no pairs added
	stKV      // KV holds pairs (post-Map / post-Add / post-Reduce)
	stKMV     // KV converted into a KMV (post-Collate/Convert)
)

// mrVar tracks one *MapReduce value visible in a scope.
type mrVar struct {
	state   int
	created ast.Node // the New/NewWith assignment, nil for parameters
}

func phaseScope(pkg *Package, alias string, inMR bool, params *ast.FieldList, body *ast.BlockStmt) []Finding {
	vars := map[string]*mrVar{}
	kvOwner := map[string]string{} // kv := mr.KV() aliases -> mr name
	if params != nil {
		for _, field := range params.List {
			if !isMRParamType(field.Type, alias, inMR) {
				continue
			}
			for _, name := range field.Names {
				vars[name.Name] = &mrVar{state: stUnknown}
			}
		}
	}

	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pkg.position(n), Analyzer: "phase", Message: msg})
	}

	// Pass 1: the phase state machine, in source order, skipping nested
	// function literals (they are scopes of their own).
	scopeInspect(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 || len(x.Lhs) == 0 {
				return
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			if creationCall(x.Rhs[0], alias, inMR) {
				vars[id.Name] = &mrVar{state: stEmpty, created: x}
				return
			}
			if owner := kvHandleCall(x.Rhs[0], vars); owner != "" {
				kvOwner[id.Name] = owner
			}
		case *ast.CallExpr:
			name, method := mrMethodCall(x, vars, kvOwner)
			if name != "" {
				applyPhase(vars[name], name, method, "", x, report)
				return
			}
			// Passing a tracked value to a summarized local helper replays
			// the helper's unconditional phase effects on the value, so a
			// protocol violation split across functions is still caught and
			// a helper that advances the state keeps the caller honest.
			callee := pkg.calleeDecl(x)
			if callee == nil || callee.Body == nil {
				return
			}
			sum := pkg.Summaries().Of(callee)
			if sum == nil || len(sum.PhaseEffects) == 0 {
				return
			}
			for a, arg := range x.Args {
				id, ok := arg.(*ast.Ident)
				if !ok || vars[id.Name] == nil {
					continue
				}
				for _, m := range sum.PhaseEffects[a] {
					applyPhase(vars[id.Name], id.Name, m, sum.Name, x, report)
				}
			}
		}
	})

	// Pass 2: Close on every return path, for values this scope created.
	// A helper whose summary unconditionally Closes its parameter counts
	// as a close (closeMR(mr) is as good as mr.Close()).
	for name, v := range vars {
		if v.created == nil {
			continue
		}
		rest := stmtsAfter(body, v.created)
		if rest == nil {
			continue
		}
		closes := closePredicate(pkg, name)
		closed, terminated := walkClose(rest, closes, false, func(n ast.Node) {
			report(n, name+" is not Closed on this return path: its spill files and page memory leak")
		})
		if !closed && !terminated {
			report(v.created, name+" is created here but never Closed before the function falls off the end")
		}
	}
	return out
}

// applyPhase advances one tracked value's state machine by a single phase
// method, reporting protocol violations. via names the helper the effect
// was replayed from ("" for direct calls).
func applyPhase(v *mrVar, name, method, via string, at ast.Node, report func(ast.Node, string)) {
	suffix := ""
	if via != "" {
		suffix = " (via " + via + ")"
	}
	switch method {
	case "Map", "MapWorker", "MapFiles", "AddKV":
		v.state = stKV
	case "Aggregate":
		if v.state == stEmpty {
			report(at, "Aggregate on "+name+" before any Map or KV().Add: the KV is empty, so there is nothing to redistribute"+suffix)
		}
	case "Convert", "Collate":
		switch v.state {
		case stEmpty:
			report(at, method+" on "+name+" before any Map or KV().Add: converting an empty KV builds an empty KMV"+suffix)
		case stKMV:
			report(at, "double "+method+" on "+name+": the KV was already converted with no intervening Map or Add, so this wipes the KMV"+suffix)
		}
		v.state = stKMV
	case "Reduce", "Scrunch":
		if v.state == stKV || v.state == stEmpty {
			report(at, method+" on "+name+" without a preceding Collate/Convert: the KMV is empty, so the callback never runs"+suffix)
		}
		v.state = stKV
	}
}

// closePredicate matches name.Close() plus helper(name) calls whose callee
// summary unconditionally Closes the corresponding parameter.
func closePredicate(pkg *Package, name string) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		if isCloseCall(call, name) {
			return true
		}
		callee := pkg.calleeDecl(call)
		if callee == nil || callee.Body == nil {
			return false
		}
		sum := pkg.Summaries().Of(callee)
		if sum == nil {
			return false
		}
		for a, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == name {
				for _, m := range sum.PhaseEffects[a] {
					if m == "Close" {
						return true
					}
				}
			}
		}
		return false
	}
}

// scopeInspect walks the statements of one scope in source order without
// descending into nested function literals.
func scopeInspect(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isMRParamType matches the parameter type *mrmpi.MapReduce (under the
// file's import alias), or bare *MapReduce inside package mrmpi.
func isMRParamType(e ast.Expr, alias string, inMR bool) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return inMR && t.Name == "MapReduce"
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name == alias && t.Sel.Name == "MapReduce"
		}
	}
	return false
}

// creationCall recognizes mrmpi.New(...) / mrmpi.NewWith(...) (or the bare
// forms inside package mrmpi).
func creationCall(e ast.Expr, alias string, inMR bool) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	qual, name := callTarget(call)
	if name != "New" && name != "NewWith" {
		return false
	}
	if qual != "" && qual == alias {
		return true
	}
	return qual == "" && inMR
}

// kvHandleCall recognizes mr.KV() for a tracked mr and returns the owner's
// name, so kv := mr.KV(); kv.Add(...) counts as an AddKV on mr.
func kvHandleCall(e ast.Expr, vars map[string]*mrVar) string {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "KV" {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok && vars[id.Name] != nil {
		return id.Name
	}
	return ""
}

// mrMethodCall resolves a call to a phase-relevant method on a tracked
// MapReduce value. It recognizes direct calls (mr.Reduce(...)), adds
// through a KV alias (kv.Add(...) after kv := mr.KV()), and chained adds
// (mr.KV().AddString(...)) — the latter two normalize to "AddKV".
func mrMethodCall(call *ast.CallExpr, vars map[string]*mrVar, kvOwner map[string]string) (name, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	m := sel.Sel.Name
	switch x := sel.X.(type) {
	case *ast.Ident:
		if vars[x.Name] != nil {
			return x.Name, m
		}
		if owner := kvOwner[x.Name]; owner != "" && isAddMethod(m) {
			return owner, "AddKV"
		}
	case *ast.CallExpr:
		if owner := kvHandleCall(x, vars); owner != "" && isAddMethod(m) {
			return owner, "AddKV"
		}
	}
	return "", ""
}

func isAddMethod(name string) bool {
	return name == "Add" || name == "AddString"
}

// stmtsAfter finds the statement list containing target and returns the
// statements strictly after it, or nil when target is not directly inside a
// block in this scope.
func stmtsAfter(body *ast.BlockStmt, target ast.Node) []ast.Stmt {
	var rest []ast.Stmt
	var scan func(list []ast.Stmt) bool
	scan = func(list []ast.Stmt) bool {
		for i, s := range list {
			if s == target {
				rest = list[i+1:]
				return true
			}
		}
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch b := n.(type) {
		case *ast.BlockStmt:
			found = scan(b.List)
		case *ast.CaseClause:
			found = scan(b.Body)
		case *ast.CommClause:
			found = scan(b.Body)
		}
		return !found
	})
	return rest
}

// walkClose walks a statement list tracking whether the value has been
// Closed (per the closes predicate), reporting any return reached while it
// is not. It returns (closed, terminated): terminated means control cannot
// fall past the list (every path returns or branches away). Loops and
// switch bodies are walked for their inner returns but conservatively do
// not change the fall-through close state.
func walkClose(stmts []ast.Stmt, closes func(*ast.CallExpr) bool, closed bool, report func(ast.Node)) (bool, bool) {
	for _, s := range stmts {
		var term bool
		closed, term = walkCloseStmt(s, closes, closed, report)
		if term {
			return closed, true
		}
	}
	return closed, false
}

func walkCloseStmt(s ast.Stmt, closes func(*ast.CallExpr) bool, closed bool, report func(ast.Node)) (bool, bool) {
	switch x := s.(type) {
	case *ast.DeferStmt:
		if deferCloses(x.Call, closes) {
			return true, false
		}
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok && closes(call) {
			return true, false
		}
	case *ast.ReturnStmt:
		if !closed {
			report(x)
		}
		return closed, true
	case *ast.BranchStmt:
		// break/continue/goto leave the block; treat as terminating this
		// list without judging the target.
		return closed, true
	case *ast.BlockStmt:
		return walkClose(x.List, closes, closed, report)
	case *ast.LabeledStmt:
		return walkCloseStmt(x.Stmt, closes, closed, report)
	case *ast.IfStmt:
		bodyClosed, bodyTerm := walkClose(x.Body.List, closes, closed, report)
		if x.Else == nil {
			if bodyTerm {
				// Falling past the if means the body was not taken.
				return closed, false
			}
			// The body may or may not run: only a pre-existing close is
			// guaranteed afterwards.
			return closed, false
		}
		elseClosed, elseTerm := walkCloseStmt(x.Else, closes, closed, report)
		switch {
		case bodyTerm && elseTerm:
			return closed, true
		case bodyTerm:
			return elseClosed, false
		case elseTerm:
			return bodyClosed, false
		default:
			return bodyClosed && elseClosed, false
		}
	case *ast.ForStmt:
		walkClose(x.Body.List, closes, closed, report)
	case *ast.RangeStmt:
		walkClose(x.Body.List, closes, closed, report)
	case *ast.SwitchStmt:
		walkClauses(x.Body, closes, closed, report)
	case *ast.TypeSwitchStmt:
		walkClauses(x.Body, closes, closed, report)
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkClose(cc.Body, closes, closed, report)
			}
		}
	}
	return closed, false
}

func walkClauses(body *ast.BlockStmt, closes func(*ast.CallExpr) bool, closed bool, report func(ast.Node)) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			walkClose(cc.Body, closes, closed, report)
		}
	}
}

// isCloseCall matches name.Close().
func isCloseCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}

// deferCloses matches `defer name.Close()` (or a closing helper) and
// `defer func() { ... name.Close() ... }()`.
func deferCloses(call *ast.CallExpr, closes func(*ast.CallExpr) bool) bool {
	if closes(call) {
		return true
	}
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && closes(c) {
			found = true
		}
		return !found
	})
	return found
}
