package lint

import (
	"go/ast"
	"go/token"
)

// checkKVEscape flags the *mrmpi.KeyValue emitter handle escaping its
// callback: stored into a captured variable or structure, sent on a
// channel, or returned directly. The handle is only valid while the library
// is inside the Map/Reduce phase that passed it — after the phase returns,
// the KV is swapped or reset, so a retained handle writes into a store the
// MapReduce object no longer owns. (Passing the handle DOWN into helper
// calls is fine and not flagged; only outward escapes are.)
func checkKVEscape(pkg *Package) []Finding {
	var out []Finding
	inMR := pkg.Name == "mrmpi"
	seen := map[token.Pos]bool{}
	for _, f := range pkg.Files {
		if mrmpiAlias(f) == "" && !inMR {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, fl := mrCallback(call)
			switch kind {
			case cbMap, cbMapFiles, cbMapKV, cbReduce:
			default:
				return true
			}
			for _, fd := range kvEscapes(pkg, fl) {
				if pos := fd.node.Pos(); !seen[pos] {
					seen[pos] = true
					out = append(out, fd.finding)
				}
			}
			return true
		})
	}
	return out
}

type kvEscapeFinding struct {
	node    ast.Node
	finding Finding
}

func kvEscapes(pkg *Package, fl *ast.FuncLit) []kvEscapeFinding {
	handles := map[string]bool{}
	locals := localIdents(fl)
	if fl.Type.Params != nil {
		for _, field := range fl.Type.Params.List {
			if !isKeyValuePtrType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				handles[name.Name] = true
			}
		}
	}
	if len(handles) == 0 {
		return nil
	}

	var out []kvEscapeFinding
	report := func(n ast.Node, how string) {
		out = append(out, kvEscapeFinding{node: n, finding: Finding{
			Pos:      pkg.position(n),
			Analyzer: "kvescape",
			Message: "the *KeyValue handle " + how +
				": it is only valid during this callback — emit through it here, never retain it",
		}})
	}

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if len(s.Rhs) == len(s.Lhs) && holdsKVHandle(s.Rhs[i], handles) {
						handles[id.Name] = true
					} else {
						delete(handles, id.Name)
					}
				}
				return true
			}
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil || !holdsKVHandle(rhs, handles) {
					if id, ok := lhs.(*ast.Ident); ok {
						delete(handles, id.Name)
					}
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok && locals[id.Name] {
					handles[id.Name] = true
					continue
				}
				report(s, "is stored outside the callback")
			}
		case *ast.SendStmt:
			if holdsKVHandle(s.Value, handles) {
				report(s, "is sent on a channel")
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if holdsKVHandle(r, handles) {
					report(s, "is returned from the callback")
				}
			}
		}
		return true
	})
	return out
}

// holdsKVHandle reports whether the expression IS (or directly wraps) a
// tracked handle. Call expressions are deliberately opaque: returning or
// storing the RESULT of a call that merely received the handle as an
// argument is not an escape of the handle itself.
func holdsKVHandle(e ast.Expr, handles map[string]bool) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return handles[x.Name]
	case *ast.ParenExpr:
		return holdsKVHandle(x.X, handles)
	case *ast.UnaryExpr:
		return x.Op == token.AND && holdsKVHandle(x.X, handles)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if holdsKVHandle(v, handles) {
				return true
			}
		}
	}
	return false
}
