package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkDeadlock detects two rank-dependent communication shapes that are
// wrong by construction, using the summary traces so ops buried in helpers
// count:
//
//  1. recv-first everywhere: a rank branch that covers every rank (a final
//     else or default) where every arm's first communication op blocks in
//     Recv/Probe. Sends in this runtime are buffered and never block, so
//     the only way such a branch makes progress is a send issued before it
//     — if none exists earlier in the function, no rank can ever satisfy
//     another's receive. This is the textbook head-to-head exchange written
//     recv-first instead of send-first.
//
//  2. mismatched constant routing: an arm guarded by `rank == A` sends with
//     a constant tag to a constant peer B whose own `rank == B` arm
//     receives — but only ever with other constant tags. The buffered send
//     is silently lost and B's receive blocks forever. Reported only when
//     B's arm does receive (the protocol is local to the branch) and no
//     wildcard/unknown-tag receive anywhere in the function could pick the
//     message up.
//
// Both rules bail toward silence on any unknown: dynamic peers, computed
// tags, or receives the analysis cannot place keep the branch unreported.
func checkDeadlock(pkg *Package) []Finding {
	sums := pkg.Summaries()
	var out []Finding
	for _, fd := range pkg.funcDecls() {
		fd := fd
		rankVars := rankVarsOf(fd)
		env := constEnv{consts: localConsts(fd, pkg.Consts)}
		var fullTrace []CommOp
		haveFull := false
		full := func() []CommOp {
			if !haveFull {
				fullTrace = sums.TraceOf(fd.Body, fd)
				haveFull = true
			}
			return fullTrace
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var arms []ast.Node
			var conds []ast.Expr
			var span [2]token.Pos
			switch stmt := n.(type) {
			case *ast.IfStmt:
				if isElseIf(fd.Body, stmt) || !ifChainOnRank(stmt, rankVars) {
					return true
				}
				arms, conds = armsAndConds(stmt)
				span = [2]token.Pos{stmt.Pos(), stmt.End()}
			case *ast.SwitchStmt:
				if !switchOnRank(stmt, rankVars) || stmt.Tag == nil {
					return true
				}
				for _, c := range stmt.Body.List {
					cc := c.(*ast.CaseClause)
					arms = append(arms, &ast.BlockStmt{List: cc.Body})
					if len(cc.List) == 1 {
						conds = append(conds, &ast.BinaryExpr{X: stmt.Tag, Op: token.EQL, Y: cc.List[0]})
					} else {
						conds = append(conds, nil) // default or multi-value case
					}
				}
				span = [2]token.Pos{stmt.Pos(), stmt.End()}
			default:
				return true
			}
			traces := make([][]CommOp, len(arms))
			for i, arm := range arms {
				if arm != nil {
					traces[i] = sums.TraceOf(arm, fd)
				}
			}
			if f := recvFirstDeadlock(pkg, arms, traces, span, full()); f != nil {
				out = append(out, *f)
			}
			out = append(out, lostSends(pkg, fd, conds, traces, span, full(), env, rankVars)...)
			return true
		})
	}
	return out
}

// armsAndConds flattens an if/else-if chain to parallel arm and condition
// slices; the final else (or the implicit empty arm) gets a nil condition.
func armsAndConds(s *ast.IfStmt) (arms []ast.Node, conds []ast.Expr) {
	for {
		arms = append(arms, s.Body)
		conds = append(conds, s.Cond)
		switch e := s.Else.(type) {
		case *ast.IfStmt:
			s = e
		case *ast.BlockStmt:
			return append(arms, e), append(conds, nil)
		default:
			return append(arms, nil), append(conds, nil)
		}
	}
}

// sitePos is the op's position inside the analyzed function: the outermost
// call site when the op was reached through helpers, the op itself when
// direct.
func sitePos(op CommOp) token.Pos {
	if len(op.Via) > 0 {
		return op.Via[0]
	}
	return op.Pos
}

// recvFirstDeadlock applies rule 1 to one branch.
func recvFirstDeadlock(pkg *Package, arms []ast.Node, traces [][]CommOp, span [2]token.Pos, full []CommOp) *Finding {
	if len(arms) < 2 {
		return nil
	}
	for i, arm := range arms {
		if arm == nil {
			return nil // incomplete coverage: some rank skips the branch
		}
		first := firstMPIOp(traces[i])
		if first == nil || (first.Kind != OpRecv && first.Kind != OpProbe) {
			return nil
		}
	}
	// A send (or posted Isend) earlier in the function can satisfy the
	// first receive; only a branch with nothing in flight is certain.
	for _, op := range full {
		if sitePos(op) >= span[0] {
			continue
		}
		switch op.Kind {
		case OpSend, OpIsend, OpSendrecv:
			return nil
		}
	}
	return &Finding{
		Pos:      pkg.Fset.Position(span[0]),
		Analyzer: "deadlock",
		Message: "every arm of this rank-dependent branch blocks in " +
			"Recv/Probe as its first communication op with no send in flight; no rank can make progress",
	}
}

// firstMPIOp returns the first non-emit op of a trace.
func firstMPIOp(trace []CommOp) *CommOp {
	for i := range trace {
		if trace[i].MPI() {
			return &trace[i]
		}
	}
	return nil
}

// lostSends applies rule 2: constant-routed sends whose peer's arm cannot
// receive the tag.
func lostSends(pkg *Package, fd *ast.FuncDecl, conds []ast.Expr, traces [][]CommOp,
	span [2]token.Pos, full []CommOp, env constEnv, rankVars map[string]bool) []Finding {
	// Arms guarded by rank == constant.
	armOfRank := map[int64]int{}
	rankOfArm := map[int]int64{}
	for i, cond := range conds {
		if v, ok := rankEquality(cond, env, rankVars); ok {
			if _, dup := armOfRank[v]; dup {
				return nil // two arms claim one rank: give up on the branch
			}
			armOfRank[v] = i
			rankOfArm[i] = v
		}
	}
	if len(armOfRank) < 2 {
		return nil
	}
	// Receives elsewhere in the function (outside this branch) with any
	// wildcard or unknown tag/peer make every send potentially received.
	var outside []CommOp
	for _, op := range full {
		if p := sitePos(op); p >= span[0] && p < span[1] {
			continue
		}
		if op.Kind == OpRecv || op.Kind == OpIrecv || op.Kind == OpProbe {
			outside = append(outside, op)
		}
	}
	var out []Finding
	for i, trace := range traces {
		from, isConst := rankOfArm[i]
		if !isConst {
			continue
		}
		for _, op := range trace {
			if op.Kind != OpSend && op.Kind != OpIsend && op.Kind != OpSendrecv {
				continue
			}
			if !op.PeerKnown || !op.TagKnown {
				continue
			}
			peerArm, known := armOfRank[op.Peer]
			if !known || op.Peer == from {
				continue
			}
			recvs := receivesOf(traces[peerArm])
			if len(recvs) == 0 {
				continue // peer arm has no local receive protocol: not our call
			}
			if anyRecvMatches(recvs, from, op.Tag) || anyRecvMatches(outside, from, op.Tag) {
				continue
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(sitePos(op)),
				Analyzer: "deadlock",
				Message: fmt.Sprintf("rank %d sends tag %d to rank %d, whose branch arm receives only other constant tags; "+
					"the buffered send is lost and the peer's receive blocks", from, op.Tag, op.Peer),
			})
		}
	}
	return out
}

// receivesOf filters a trace to its receive-like ops.
func receivesOf(trace []CommOp) []CommOp {
	var out []CommOp
	for _, op := range trace {
		if op.Kind == OpRecv || op.Kind == OpIrecv || op.Kind == OpProbe {
			out = append(out, op)
		}
	}
	return out
}

// anyRecvMatches reports whether any receive could accept a message with
// the given source rank and tag. Unknown tags or peers count as matching —
// the bail-toward-silence direction.
func anyRecvMatches(recvs []CommOp, src, tag int64) bool {
	for _, r := range recvs {
		tagOK := r.TagAny || !r.TagKnown || r.Tag == tag
		srcOK := r.PeerAny || !r.PeerKnown || r.Peer == src
		if tagOK && srcOK {
			return true
		}
	}
	return false
}

// rankEquality recognizes `rank == <const>` (either operand order) and
// returns the constant.
func rankEquality(cond ast.Expr, env constEnv, rankVars map[string]bool) (int64, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return 0, false
	}
	if isRankExpr(be.X, rankVars) && !isRankExpr(be.Y, rankVars) {
		return evalConst(be.Y, env)
	}
	if isRankExpr(be.Y, rankVars) && !isRankExpr(be.X, rankVars) {
		return evalConst(be.X, env)
	}
	return 0, false
}
