package lint

import (
	"go/token"
	"testing"
)

// Golden tests for the mrlint family (phase, capture, retain, kvescape),
// using the same `// want <analyzer>` harness as the mpi-family tests.

const mrHeader = `package fix

import "repro/internal/mrmpi"
`

func TestPhase(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "reduce without collate",
			src: mrHeader + `
func f(work, fn any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.Map(4, work)
	mr.Reduce(fn) // want phase
}`,
		},
		{
			name: "full protocol is clean",
			src: mrHeader + `
func f(work, fn any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.Map(4, work)
	mr.Collate(nil)
	mr.Reduce(fn)
}`,
		},
		{
			name: "collate before any map",
			src: mrHeader + `
func f() {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.Collate(nil) // want phase
}`,
		},
		{
			name: "double collate wipes the KMV",
			src: mrHeader + `
func f(work any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.Map(4, work)
	mr.Collate(nil)
	mr.Collate(nil) // want phase
}`,
		},
		{
			name: "map between collates is clean",
			src: mrHeader + `
func f(work any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.Map(4, work)
	mr.Collate(nil)
	mr.Map(4, work)
	mr.Convert()
}`,
		},
		{
			name: "MapWorker counts as map input",
			src: mrHeader + `
func f(work, fn any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.MapWorker(4, work)
	mr.Collate(nil)
	mr.Reduce(fn)
}`,
		},
		{
			name: "reduce after MapWorker without collate",
			src: mrHeader + `
func f(work, fn any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.MapWorker(4, work)
	mr.Reduce(fn) // want phase
}`,
		},
		{
			name: "adds through a KV alias count as map input",
			src: mrHeader + `
func f() {
	mr := mrmpi.New(nil)
	defer mr.Close()
	kv := mr.KV()
	kv.AddString("a", nil)
	mr.Collate(nil)
}`,
		},
		{
			name: "chained KV().Add counts as map input",
			src: mrHeader + `
func f() {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.KV().Add(nil, nil)
	mr.Convert()
}`,
		},
		{
			name: "parameter state is unknown: helpers are not second-guessed",
			src: mrHeader + `
func g(mr *mrmpi.MapReduce, fn any) {
	mr.Reduce(fn)
}`,
		},
		{
			name: "missing close on fall-through",
			src: mrHeader + `
func f(work any) {
	mr := mrmpi.New(nil) // want phase
	mr.Map(4, work)
}`,
		},
		{
			name: "missing close on an early return path",
			src: mrHeader + `
func f(work any) error {
	mr := mrmpi.New(nil)
	if _, err := mr.Map(4, work); err != nil {
		return err // want phase
	}
	mr.Close()
	return nil
}`,
		},
		{
			name: "close before each return is clean",
			src: mrHeader + `
func f(work any) error {
	mr := mrmpi.NewWith(nil, mrmpi.Options{})
	if _, err := mr.Map(4, work); err != nil {
		mr.Close()
		return err
	}
	mr.Close()
	return nil
}`,
		},
		{
			name: "ignore comment suppresses",
			src: mrHeader + `
func f(fn any) {
	mr := mrmpi.New(nil)
	defer mr.Close()
	mr.Reduce(fn) // mpilint:ignore phase -- provoking the empty-KMV path on purpose
}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkFixture(t, "phase", c.src) })
	}
}

func TestCapture(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "unguarded captured counter in a map callback",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	n := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		n++ // want capture
		return nil
	})
}`,
		},
		{
			name: "unguarded captured counter in a MapWorker callback",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	n := 0
	mr.MapWorker(4, func(itask, worker int, kv *mrmpi.KeyValue) error {
		n++ // want capture
		return nil
	})
}`,
		},
		{
			name: "captured struct field write in a reduce callback",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var res struct{ Hits int }
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		res.Hits = len(values) // want capture
		return nil
	})
}`,
		},
		{
			name: "mutex in the closure exempts it",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce, mu interface{ Lock(); Unlock() }) {
	n := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	})
}`,
		},
		{
			name: "atomic call exempts the closure",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce, n *int64) {
	total := int64(0)
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		total = atomic.AddInt64(n, 1)
		return nil
	})
	_ = total
}`,
		},
		{
			name: "channel send exempts the closure",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce, ch chan int) {
	last := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		last = itask
		ch <- itask
		return nil
	})
	_ = last
}`,
		},
		{
			name: "locals are fair game",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		sum := 0
		for i := 0; i < itask; i++ {
			sum += i
		}
		kv.Add(nil, nil)
		return nil
	})
}`,
		},
		{
			name: "Each callbacks are out of scope (sequential iteration)",
			src: mrHeader + `
func f(kmv *mrmpi.KeyMultiValue) {
	n := 0
	kmv.Each(func(key []byte, values [][]byte) error {
		n++
		return nil
	})
	_ = n
}`,
		},
		{
			name: "ignore comment suppresses",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	n := 0
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		n++ // mpilint:ignore — single-rank test fixture
		return nil
	})
}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkFixture(t, "capture", c.src) })
	}
}

func TestRetain(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "key appended into a captured slice",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var keys [][]byte
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		keys = append(keys, key) // want retain
		return nil
	})
}`,
		},
		{
			name: "copying before retaining is clean",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var keys [][]byte
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		keys = append(keys, append([]byte(nil), key...))
		return nil
	})
}`,
		},
		{
			name: "value slice stored into a captured map",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	best := map[string][]byte{}
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		best[string(key)] = values[0] // want retain
		return nil
	})
}`,
		},
		{
			name: "string conversion is a copy",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	best := map[string]string{}
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		best[string(key)] = string(values[0])
		return nil
	})
}`,
		},
		{
			name: "sub-slices stay tainted",
			src: mrHeader + `
func f(kv *mrmpi.KeyValue) {
	var prefix []byte
	kv.Each(func(key, value []byte) error {
		prefix = key[:4] // want retain
		return nil
	})
}`,
		},
		{
			name: "taint flows through a local rebinding",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var saved []byte
	mr.MapKV(func(key, value []byte, kv *mrmpi.KeyValue) error {
		v := value
		saved = v // want retain
		return nil
	})
}`,
		},
		{
			name: "sent on a channel",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce, ch chan []byte) {
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		ch <- key // want retain
		return nil
	})
}`,
		},
		{
			name: "emitting through out.Add is clean (Add copies in this port)",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		out.Add(key, values[0])
		return nil
	})
}`,
		},
		{
			name: "range element of values is tainted",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var all [][]byte
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		for _, v := range values {
			all = append(all, v) // want retain
		}
		return nil
	})
}`,
		},
		{
			name: "ignore comment suppresses",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var keys [][]byte
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		keys = append(keys, key) // mpilint:ignore — consumed before the callback returns
		return nil
	})
}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkFixture(t, "retain", c.src) })
	}
}

func TestKVEscape(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "handle stored in a captured variable",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var leaked *mrmpi.KeyValue
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		leaked = kv // want kvescape
		return nil
	})
	_ = leaked
}`,
		},
		{
			name: "handle escaping through a local alias",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var leaked *mrmpi.KeyValue
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		h := kv
		leaked = h // want kvescape
		return nil
	})
	_ = leaked
}`,
		},
		{
			name: "handle sent on a channel",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce, ch chan *mrmpi.KeyValue) {
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		ch <- kv // want kvescape
		return nil
	})
}`,
		},
		{
			name: "handle smuggled out inside a composite literal",
			src: mrHeader + `
type box struct{ kv *mrmpi.KeyValue }

func f(mr *mrmpi.MapReduce) {
	var sink box
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		sink = box{kv: kv} // want kvescape
		return nil
	})
	_ = sink
}`,
		},
		{
			name: "passing the handle down into helpers is fine",
			src: mrHeader + `
func emit(kv *mrmpi.KeyValue) error { return nil }

func f(mr *mrmpi.MapReduce) {
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		return emit(kv)
	})
}`,
		},
		{
			name: "ignore comment suppresses",
			src: mrHeader + `
func f(mr *mrmpi.MapReduce) {
	var leaked *mrmpi.KeyValue
	mr.Map(4, func(itask int, kv *mrmpi.KeyValue) error {
		leaked = kv // mpilint:ignore — test hook, never used after the phase
		return nil
	})
	_ = leaked
}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkFixture(t, "kvescape", c.src) })
	}
}

// TestRepoLintsCleanMRFamily is the mrlint acceptance gate, the counterpart
// of TestRepoLintsClean for the MapReduce-layer analyzers. It walks the
// whole module from the repository root (which also covers the root-level
// benchmark file the mpi-family gate does not reach).
func TestRepoLintsCleanMRFamily(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	var family []*Analyzer
	for _, a := range Analyzers() {
		switch a.Name {
		case "phase", "capture", "retain", "kvescape":
			family = append(family, a)
		}
	}
	if len(family) != 4 {
		t.Fatalf("expected 4 mrlint analyzers, found %d", len(family))
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := LoadDir(fset, dir, LoadOptions{Tests: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range CheckWith(pkg, family) {
				t.Errorf("unexpected finding: %s", f)
			}
		}
	}
}
