package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadOptions configures directory loading.
type LoadOptions struct {
	// Tests includes _test.go files in the analysis.
	Tests bool
	// NoTypes skips the go/types pass, forcing the v1 syntactic fallback.
	// The default is to type-check whenever the directory sits inside a
	// module (a go.mod is found above it).
	NoTypes bool
}

// LoadDir parses every buildable Go file in one directory (non-recursive)
// into Packages, grouped by package name so a directory holding a package
// and its external test package yields two entries. Build tags in files are
// ignored: a file gated on a tag (e.g. mpidebug) is still analyzed, which is
// what a lint pass wants.
func LoadDir(fset *token.FileSet, dir string, opts LoadOptions) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string]*Package{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !opts.Tests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		name := f.Name.Name
		pkg := byName[name]
		if pkg == nil {
			pkg = &Package{Name: name, Fset: fset}
			byName[name] = pkg
			names = append(names, name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	sort.Strings(names)
	out := make([]*Package, 0, len(byName))
	for _, name := range names {
		pkg := byName[name]
		pkg.Consts = packageConsts(pkg.Files)
		if !opts.NoTypes {
			pkg.TypeCheck(dir)
		}
		out = append(out, pkg)
	}
	// Link the directory's packages as siblings: the external test package
	// of a library participates in package-scope matching (tags).
	for _, pkg := range out {
		for _, other := range out {
			if other != pkg {
				pkg.Siblings = append(pkg.Siblings, other)
			}
		}
	}
	return out, nil
}

// ExpandPatterns resolves command-line package patterns to directories. A
// pattern ending in "/..." walks the tree below it; anything else names a
// single directory. Hidden directories, testdata, vendor, and bin are
// skipped during walks, matching the go tool's matching rules closely enough
// for this repository.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if pat == "..." {
			root, recursive = ".", true
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") ||
				base == "testdata" || base == "vendor" || base == "bin") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
