package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the communication-summary engine: for every function in a
// package it computes the ordered sequence of MPI operations the function
// may perform — collectives (with root), point-to-point sends and receives
// (with peer and tag where they are constant), nonblocking request ops,
// request completions, and KeyValue emits — then flattens callee summaries
// into caller traces bottom-up over the package-local call graph. The
// interprocedural analyzers (divergence, deadlock, goroutines, phase,
// retain) consume these summaries to see through helper calls; `mpilint
// -summary` dumps them.
//
// The traces are may-traces: an op inside a loop appears once, an op on one
// branch arm appears unconditionally, function literals and go statements
// are excluded (goroutine-spawned ops are the `goroutines` analyzer's
// domain and are collected separately at the spawn site). Recursion is cut
// with an in-progress guard (the cycle contributes nothing — a deliberate
// under-approximation), and traces are capped at maxTrace ops per function
// with the transitive Collectives set kept exact past the cap.

// OpKind classifies one communication op in a summary trace.
type OpKind int

const (
	// OpCollective is a collective call every rank must make: the mpi
	// package functions (Bcast, Reduce, …), Comm.Barrier, and the mrmpi
	// phase methods documented collective (Aggregate, Collate, …).
	OpCollective OpKind = iota
	// OpSend is Comm.Send. In this runtime sends are buffered (mailbox
	// semantics), so a send never blocks; only receives do.
	OpSend
	// OpRecv is Comm.Recv (or the receive half of Sendrecv).
	OpRecv
	// OpProbe is Comm.Probe: blocking like a receive, consumes nothing.
	OpProbe
	// OpSendrecv is the send half of Comm.Sendrecv; the receive half is
	// recorded as a following OpRecv so first-op analysis sees send-first.
	OpSendrecv
	// OpIsend and OpIrecv are the request-returning nonblocking ops.
	OpIsend
	OpIrecv
	// OpWait is a blocking completion: Request.Wait or mpi.Waitall.
	OpWait
	// OpEmit is a KeyValue.Add/AddString emit through the per-rank handle.
	OpEmit
)

// String names the kind for -summary output.
func (k OpKind) String() string {
	switch k {
	case OpCollective:
		return "collective"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpProbe:
		return "probe"
	case OpSendrecv:
		return "sendrecv"
	case OpIsend:
		return "isend"
	case OpIrecv:
		return "irecv"
	case OpWait:
		return "wait"
	case OpEmit:
		return "emit"
	}
	return "?"
}

// CommOp is one operation in a communication trace.
type CommOp struct {
	// Kind classifies the op; Name is the function or method as written
	// ("Bcast", "Send", "Collate", …).
	Kind OpKind
	Name string
	// Peer, Tag, Root hold the constant argument values where evalConst
	// resolves them; the Known flags gate validity. PeerAny/TagAny mark the
	// AnySource/AnyTag wildcards.
	Peer, Tag, Root                int64
	PeerKnown, TagKnown, RootKnown bool
	PeerAny, TagAny                bool
	// Pos is the op's own position; Via lists the call sites traversed to
	// reach it, outermost first (empty for a direct op).
	Pos token.Pos
	Via []token.Pos
	// peerX, tagX, rootX keep the argument expressions themselves, so the
	// protocol verifier (world.go) can re-evaluate them under a concrete
	// rank/size environment where evalConst alone saw nothing constant
	// (e.g. `(rank+1)%size`). Nil when the op has no such argument.
	peerX, tagX, rootX ast.Expr
}

// Blocking reports whether the op can block its rank. Sends are buffered in
// this runtime, so only receives, probes, completions, and collectives
// block; the send half of Sendrecv is issued before its receive half.
func (op CommOp) Blocking() bool {
	switch op.Kind {
	case OpRecv, OpProbe, OpWait, OpCollective:
		return true
	}
	return false
}

// MPI reports whether the op touches the MPI layer (everything but a pure
// KeyValue emit).
func (op CommOp) MPI() bool { return op.Kind != OpEmit }

// Summary is the communication effect of one function.
type Summary struct {
	// Decl is the summarized declaration; Name is "Func" or "Type.Method".
	Decl *ast.FuncDecl
	Name string
	// Trace is the ordered may-trace, capped at maxTrace (Truncated set
	// when ops were dropped).
	Trace     []CommOp
	Truncated bool
	// Collectives is the transitive set of collective names the function
	// may execute. Exact even when Trace is truncated.
	Collectives map[string]bool
	// EmitsKV reports a transitive KeyValue.Add/AddString emit.
	EmitsKV bool
	// PhaseEffects maps a *MapReduce parameter's flat index to the phase
	// methods the function unconditionally applies to it at the top level
	// of its body (directly or through further helpers), in order. The
	// phase analyzer replays these when the caller hands its value to a
	// helper.
	PhaseEffects map[int][]string
	// EscapeParams and ReturnsParam mark slice-typed parameters (by flat
	// index) that the function stores beyond the call (package state,
	// fields, channels) or returns un-copied. The retain analyzer uses
	// them to track page buffers through helpers.
	EscapeParams map[int]bool
	ReturnsParam map[int]bool
	// Recursive marks summaries whose call graph hit a cycle; their traces
	// under-approximate the cycle body.
	Recursive bool
}

// maxTrace caps per-function trace length; Collectives stays exact past it.
const maxTrace = 64

// add appends an op, folding it into the aggregate facts even past the cap.
func (sum *Summary) add(op CommOp) {
	switch op.Kind {
	case OpCollective:
		sum.Collectives[op.Name] = true
	case OpEmit:
		sum.EmitsKV = true
	}
	if len(sum.Trace) >= maxTrace {
		sum.Truncated = true
		return
	}
	sum.Trace = append(sum.Trace, op)
}

// event is one entry of a function's direct (unflattened) effect list:
// either an op or a call-graph edge to expand.
type event struct {
	op     CommOp
	callee *ast.FuncDecl // non-nil: expand this callee's summary here
	pos    token.Pos
}

// Summaries holds the per-function summaries of one package, built lazily.
type Summaries struct {
	pkg    *Package
	byDecl map[*ast.FuncDecl]*Summary
	state  map[*ast.FuncDecl]int // 0 new, 1 in progress, 2 done
	fileOf map[*ast.FuncDecl]*ast.File
	direct map[*ast.FuncDecl][]event
	// steps caches the conditional trace trees of the protocol verifier
	// (world.go).
	steps map[*ast.FuncDecl][]traceStep
}

// Summaries returns the package's summary table, computing it on first use.
func (pkg *Package) Summaries() *Summaries {
	if pkg.summaries == nil {
		s := &Summaries{
			pkg:    pkg,
			byDecl: map[*ast.FuncDecl]*Summary{},
			state:  map[*ast.FuncDecl]int{},
			fileOf: map[*ast.FuncDecl]*ast.File{},
			direct: map[*ast.FuncDecl][]event{},
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					s.fileOf[fd] = f
				}
			}
		}
		pkg.summaries = s
		for _, fd := range pkg.funcDecls() {
			s.of(fd)
		}
		s.escapeFixpoint()
	}
	return pkg.summaries
}

// Of returns the summary for one declaration (nil for bodyless functions).
func (s *Summaries) Of(fd *ast.FuncDecl) *Summary {
	if s.fileOf[fd] == nil {
		return nil
	}
	return s.of(fd)
}

// All returns every summary ordered by source position.
func (s *Summaries) All() []*Summary {
	out := make([]*Summary, 0, len(s.byDecl))
	for _, sum := range s.byDecl {
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// of computes (and memoizes) one function's flattened summary.
func (s *Summaries) of(fd *ast.FuncDecl) *Summary {
	if sum, ok := s.byDecl[fd]; ok {
		return sum
	}
	if s.state[fd] == 1 {
		// Recursion: the cycle edge contributes nothing.
		return &Summary{Decl: fd, Name: declName(fd), Recursive: true,
			Collectives: map[string]bool{}, PhaseEffects: map[int][]string{}}
	}
	s.state[fd] = 1
	sum := &Summary{Decl: fd, Name: declName(fd),
		Collectives:  map[string]bool{},
		PhaseEffects: map[int][]string{},
		EscapeParams: map[int]bool{},
		ReturnsParam: map[int]bool{},
	}
	for _, ev := range s.directEvents(fd) {
		if ev.callee == nil {
			sum.add(ev.op)
			continue
		}
		child := s.of(ev.callee)
		if child.Recursive {
			sum.Recursive = true
		}
		for name := range child.Collectives {
			sum.Collectives[name] = true
		}
		if child.EmitsKV {
			sum.EmitsKV = true
		}
		if child.Truncated {
			sum.Truncated = true
		}
		for _, op := range child.Trace {
			via := make([]token.Pos, 0, len(op.Via)+1)
			via = append(via, ev.pos)
			op.Via = append(via, op.Via...)
			sum.add(op)
		}
	}
	s.phaseEffects(fd, sum)
	s.state[fd] = 2
	s.byDecl[fd] = sum
	return sum
}

// directEvents extracts (and caches) a function's own ops and call edges.
func (s *Summaries) directEvents(fd *ast.FuncDecl) []event {
	if evs, ok := s.direct[fd]; ok {
		return evs
	}
	x := s.extractor(fd)
	evs := x.events(fd.Body)
	s.direct[fd] = evs
	return evs
}

// extractor builds the op extractor for a declaration's file context.
func (s *Summaries) extractor(fd *ast.FuncDecl) *opExtractor {
	f := s.fileOf[fd]
	x := &opExtractor{
		pkg:   s.pkg,
		inMPI: s.pkg.Name == "mpi",
		inMR:  s.pkg.Name == "mrmpi",
		env:   constEnv{consts: localConsts(fd, s.pkg.Consts)},
	}
	if f != nil {
		x.alias = mpiAlias(f)
		x.mrAlias = mrmpiAlias(f)
	}
	x.kvIdents = kvHandleIdents(fd, x.mrAlias, x.inMR)
	x.reqIdents = requestIdents(fd)
	return x
}

// TraceOf flattens the may-trace of an arbitrary node inside fd's body —
// the arm of a branch, a goroutine body — expanding local callee summaries.
func (s *Summaries) TraceOf(n ast.Node, fd *ast.FuncDecl) []CommOp {
	var out []CommOp
	for _, ev := range s.extractor(fd).events(n) {
		if ev.callee == nil {
			out = append(out, ev.op)
			continue
		}
		child := s.of(ev.callee)
		for _, op := range child.Trace {
			via := make([]token.Pos, 0, len(op.Via)+1)
			via = append(via, ev.pos)
			op.Via = append(via, op.Via...)
			out = append(out, op)
			if len(out) > maxTrace {
				return out
			}
		}
	}
	return out
}

// CollectivesUnder returns the collective names a node may execute with the
// position and route of one witness call per name — the interprocedural
// divergence primitive.
type collectiveUse struct {
	name string
	pos  token.Pos
	via  string // helper name when reached through a call, "" when direct
}

func (s *Summaries) CollectivesUnder(n ast.Node, fd *ast.FuncDecl) []collectiveUse {
	var out []collectiveUse
	for _, ev := range s.extractor(fd).events(n) {
		if ev.callee == nil {
			if ev.op.Kind == OpCollective {
				out = append(out, collectiveUse{name: ev.op.Name, pos: ev.op.Pos})
			}
			continue
		}
		child := s.of(ev.callee)
		names := make([]string, 0, len(child.Collectives))
		for name := range child.Collectives {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, collectiveUse{name: name, pos: ev.pos, via: child.Name})
		}
	}
	return out
}

// ---- op extraction -------------------------------------------------------

// opExtractor classifies the calls of one function body into CommOps,
// using type information where attached and the v1 syntactic heuristics
// otherwise.
type opExtractor struct {
	pkg            *Package
	alias, mrAlias string // file's mpi / mrmpi import names
	inMPI, inMR    bool
	env            constEnv
	kvIdents       map[string]bool // idents that are KeyValue emitter handles
	reqIdents      map[string]bool // idents bound from Isend/Irecv
}

// events walks n in source order collecting ops and call edges. Function
// literals and go statements are skipped: literal bodies execute under
// their caller's control (the callback analyzers own them) and goroutine
// bodies are the goroutines analyzer's domain.
func (x *opExtractor) events(n ast.Node) []event {
	var evs []event
	ast.Inspect(n, func(nn ast.Node) bool {
		switch v := nn.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if ops, ok := x.opsFor(v); ok {
				for _, op := range ops {
					evs = append(evs, event{op: op})
				}
				return true
			}
			if fd := x.pkg.calleeDecl(v); fd != nil && fd.Body != nil {
				evs = append(evs, event{callee: fd, pos: v.Pos()})
			}
		}
		return true
	})
	return evs
}

// opsFor classifies one call. Most calls yield one op; Sendrecv yields its
// send half then its receive half. ok=false means "not a communication op"
// — the call may still be a local call-graph edge.
func (x *opExtractor) opsFor(call *ast.CallExpr) ([]CommOp, bool) {
	if name := x.pkg.collectiveCallName(call, x.alias, x.inMPI); name != "" {
		op := CommOp{Kind: OpCollective, Name: name, Pos: call.Pos()}
		if idx, ok := rootedFuncs[name]; ok && idx < len(call.Args) {
			op.rootX = call.Args[idx]
			if v, ok := evalConst(call.Args[idx], x.env); ok {
				op.Root, op.RootKnown = v, true
			}
		}
		return []CommOp{op}, true
	}
	qual, name := callTarget(call)
	// mpi.Waitall(reqs) — the only package-level completion.
	if name == "Waitall" && len(call.Args) == 1 &&
		((qual != "" && qual == x.alias) || (qual == "" && x.inMPI)) {
		return []CommOp{{Kind: OpWait, Name: name, Pos: call.Pos()}}, true
	}
	sel := selOf(call)
	if sel == nil {
		return nil, false
	}
	// Method ops need a receiver that is (or may be) the mpi type; a typed
	// "provably not" answer vetoes the syntactic match.
	isComm := func() bool { return x.pkg.receiverIs(sel, mpiImportPath, "Comm") != ansNo }
	op := CommOp{Name: name, Pos: call.Pos()}
	switch {
	case name == "Send" && len(call.Args) == 3 && isComm():
		op.Kind = OpSend
		x.peerTag(&op, call.Args[0], call.Args[1])
	case name == "Recv" && len(call.Args) == 2 && isComm():
		op.Kind = OpRecv
		x.peerTag(&op, call.Args[0], call.Args[1])
	case name == "Probe" && len(call.Args) == 2 && isComm():
		op.Kind = OpProbe
		x.peerTag(&op, call.Args[0], call.Args[1])
	case name == "Isend" && len(call.Args) == 3 && isComm():
		op.Kind = OpIsend
		x.peerTag(&op, call.Args[0], call.Args[1])
	case name == "Irecv" && len(call.Args) == 2 && isComm():
		op.Kind = OpIrecv
		x.peerTag(&op, call.Args[0], call.Args[1])
	case name == "Sendrecv" && len(call.Args) == 5 && isComm():
		op.Kind = OpSendrecv
		x.peerTag(&op, call.Args[0], call.Args[1])
		recv := CommOp{Kind: OpRecv, Name: name, Pos: call.Pos()}
		x.peerTag(&recv, call.Args[3], call.Args[4])
		return []CommOp{op, recv}, true
	case name == "Wait" && len(call.Args) == 0 && x.isRequest(sel):
		op.Kind = OpWait
	case (name == "Add" || name == "AddString") && len(call.Args) == 2 && x.isKV(sel):
		op.Kind = OpEmit
	default:
		return nil, false
	}
	return []CommOp{op}, true
}

// peerTag fills the constant peer and tag facts of a p2p op.
func (x *opExtractor) peerTag(op *CommOp, peer, tag ast.Expr) {
	op.peerX, op.tagX = peer, tag
	if isWildcard(peer, "AnySource", x.alias, x.inMPI) {
		op.PeerAny = true
	} else if v, ok := evalConst(peer, x.env); ok {
		op.Peer, op.PeerKnown = v, true
	}
	if isWildcard(tag, "AnyTag", x.alias, x.inMPI) {
		op.TagAny = true
	} else if v, ok := evalConst(tag, x.env); ok {
		op.Tag, op.TagKnown = v, true
	}
}

// isWildcard matches mpi.AnySource / mpi.AnyTag (qualified outside package
// mpi, bare inside it).
func isWildcard(e ast.Expr, name, alias string, inMPI bool) bool {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		id, ok := v.X.(*ast.Ident)
		return ok && id.Name == alias && v.Sel.Name == name
	case *ast.Ident:
		return inMPI && v.Name == name
	}
	return false
}

// isRequest guards Wait classification: "Wait" is too generic a name
// (sync.WaitGroup), so the receiver must be a provable *mpi.Request or an
// identifier bound from Isend/Irecv. Unknown-but-unbound stays unmatched —
// a missed Wait only makes traces shorter, never wrong.
func (x *opExtractor) isRequest(sel *ast.SelectorExpr) bool {
	switch x.pkg.receiverIs(sel, mpiImportPath, "Request") {
	case ansYes:
		return true
	case ansNo:
		return false
	}
	id := baseIdent(sel.X)
	return id != nil && x.reqIdents[id.Name]
}

// isKV guards emit classification the same way: Add(k, v) is a generic
// shape, so the receiver must be a provable *mrmpi.KeyValue or a known
// handle identifier (a *KeyValue parameter or an mr.KV() binding).
func (x *opExtractor) isKV(sel *ast.SelectorExpr) bool {
	switch x.pkg.receiverIs(sel, mrmpiImportPath, "KeyValue") {
	case ansYes:
		return true
	case ansNo:
		return false
	}
	id := baseIdent(sel.X)
	return id != nil && x.kvIdents[id.Name]
}

// kvHandleIdents collects a declaration's KeyValue emitter identifiers: its
// *mrmpi.KeyValue parameters and idents bound from a .KV() call.
func kvHandleIdents(fd *ast.FuncDecl, mrAlias string, inMR bool) map[string]bool {
	ids := map[string]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if !isKVParamType(field.Type, mrAlias, inMR) {
				continue
			}
			for _, name := range field.Names {
				ids[name.Name] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, name := callTarget(call); name != "KV" || len(call.Args) != 0 {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				ids[id.Name] = true
			}
		}
		return true
	})
	return ids
}

// isKVParamType matches *mrmpi.KeyValue (aliased) or bare *KeyValue inside
// package mrmpi.
func isKVParamType(e ast.Expr, alias string, inMR bool) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return inMR && t.Name == "KeyValue"
	case *ast.SelectorExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name == alias && t.Sel.Name == "KeyValue"
		}
	}
	return false
}

// requestIdents collects idents bound (directly or through append) from
// Isend/Irecv calls, so req.Wait() classifies without type information.
func requestIdents(fd *ast.FuncDecl) map[string]bool {
	ids := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !mentionsRequestCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				ids[id.Name] = true
			}
		}
		return true
	})
	return ids
}

// mentionsRequestCall reports whether expr contains an Isend/Irecv call.
func mentionsRequestCall(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name := callTarget(call); name == "Isend" || name == "Irecv" {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---- phase effects -------------------------------------------------------

// phaseEffects records the MapReduce phase methods fd unconditionally
// applies, at the top level of its body, to each *MapReduce parameter —
// either directly (param.Collate()) or by handing the parameter to another
// summarized helper. Conditional or nested calls are deliberately ignored:
// the phase analyzer must never replay an effect that might not happen.
func (s *Summaries) phaseEffects(fd *ast.FuncDecl, sum *Summary) {
	f := s.fileOf[fd]
	alias := ""
	if f != nil {
		alias = mrmpiAlias(f)
	}
	inMR := s.pkg.Name == "mrmpi"
	// Map parameter names to flat indices, filtered to *MapReduce params.
	mrParams := map[string]int{}
	flat := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			isMR := isMRParamType(field.Type, alias, inMR)
			for _, name := range field.Names {
				if isMR && name.Name != "_" {
					mrParams[name.Name] = flat
				}
				flat++
			}
		}
	}
	if len(mrParams) == 0 {
		return
	}
	for _, stmt := range fd.Body.List {
		call := topLevelCall(stmt)
		if call == nil {
			continue
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if idx, isParam := mrParams[id.Name]; isParam {
					sum.PhaseEffects[idx] = append(sum.PhaseEffects[idx], sel.Sel.Name)
					continue
				}
			}
		}
		callee := s.pkg.calleeDecl(call)
		if callee == nil || callee.Body == nil || callee == fd {
			continue
		}
		child := s.of(callee)
		for a, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if !ok {
				continue
			}
			idx, isParam := mrParams[id.Name]
			if !isParam {
				continue
			}
			sum.PhaseEffects[idx] = append(sum.PhaseEffects[idx], child.PhaseEffects[a]...)
		}
	}
}

// topLevelCall unwraps a statement to its call when the statement is a bare
// call or a `x := call(…)` / `x = call(…)` assignment.
func topLevelCall(stmt ast.Stmt) *ast.CallExpr {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		call, _ := v.X.(*ast.CallExpr)
		return call
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			call, _ := v.Rhs[0].(*ast.CallExpr)
			return call
		}
	}
	return nil
}

// ---- buffer-escape facts -------------------------------------------------

// escapeFixpoint computes EscapeParams/ReturnsParam for slice-typed
// parameters, iterating because escapes propagate through calls (helper A
// passes its parameter to helper B which stores it). The direction of every
// approximation is "miss an escape" (a false negative for retain), never
// "invent one": closure captures and copying conversions do not count.
func (s *Summaries) escapeFixpoint() {
	decls := s.pkg.funcDecls()
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, fd := range decls {
			sum := s.byDecl[fd]
			if sum == nil {
				continue
			}
			flat := 0
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					_, isSlice := field.Type.(*ast.ArrayType)
					for _, name := range field.Names {
						if isSlice && name.Name != "_" {
							esc, ret := s.paramFate(fd, name.Name)
							if esc && !sum.EscapeParams[flat] {
								sum.EscapeParams[flat] = true
								changed = true
							}
							if ret && !sum.ReturnsParam[flat] {
								sum.ReturnsParam[flat] = true
								changed = true
							}
						}
						flat++
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// paramFate decides whether fd's named slice parameter escapes the call or
// flows to a return value. Carriers start at the parameter and grow through
// local aliasing assignments; storing a carrier outside the function's
// locals (package var, field, map/slice cell of a non-local, channel) is an
// escape, returning one is a return-flow.
func (s *Summaries) paramFate(fd *ast.FuncDecl, pname string) (escapes, returned bool) {
	carriers := map[string]bool{pname: true}
	locals := localIdentsOf(fd)
	// Two passes so a carrier introduced late still taints earlier reads in
	// loops; the carrier set only grows.
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, res := range v.Results {
					if carriesValue(res, carriers, s) {
						returned = true
					}
				}
			case *ast.SendStmt:
				if carriesValue(v.Value, carriers, s) {
					escapes = true
				}
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					if i >= len(v.Lhs) {
						break
					}
					if len(v.Lhs) != len(v.Rhs) {
						break // multi-value call unpacking: handled below via calls
					}
					if !carriesValue(rhs, carriers, s) {
						continue
					}
					switch lhs := v.Lhs[i].(type) {
					case *ast.Ident:
						if lhs.Name == "_" {
							continue
						}
						if locals[lhs.Name] {
							if !carriers[lhs.Name] {
								carriers[lhs.Name] = true
							}
						} else {
							escapes = true // package-level variable
						}
					default:
						// Field, index, or deref target: escapes unless the
						// container is itself a known local non-carrier…
						// which alias analysis this size cannot prove. A
						// store through a selector or index leaves the frame.
						base := baseIdent(v.Lhs[i])
						if base == nil || !locals[base.Name] {
							escapes = true
						} else if carriers[base.Name] {
							escapes = false || escapes
						} else {
							// Store into a local container: the container
							// becomes a carrier.
							carriers[base.Name] = true
						}
					}
				}
			case *ast.CallExpr:
				// Passing a carrier to a helper whose summary says the
				// parameter escapes (or returns) propagates the fact.
				callee := s.pkg.calleeDecl(v)
				if callee == nil || callee == fd {
					return true
				}
				child := s.byDecl[callee]
				if child == nil {
					return true
				}
				for a, arg := range v.Args {
					if !carriesValue(arg, carriers, s) {
						continue
					}
					if child.EscapeParams[a] {
						escapes = true
					}
				}
			}
			return true
		})
	}
	return escapes, returned
}

// carriesValue reports whether expr may alias one of the carrier slices:
// the ident itself, a sub-slice or element of it, an append that keeps the
// header, or a local call returning its argument. Copying conversions
// (string(p), []byte(string)), len/cap, and unrelated calls are barriers.
func carriesValue(expr ast.Expr, carriers map[string]bool, s *Summaries) bool {
	switch v := expr.(type) {
	case *ast.Ident:
		return carriers[v.Name]
	case *ast.ParenExpr:
		return carriesValue(v.X, carriers, s)
	case *ast.SliceExpr:
		return carriesValue(v.X, carriers, s)
	case *ast.IndexExpr:
		// values[i] of a [][]byte carrier is itself a page-backed slice.
		return carriesValue(v.X, carriers, s)
	case *ast.UnaryExpr:
		return carriesValue(v.X, carriers, s)
	case *ast.StarExpr:
		return carriesValue(v.X, carriers, s)
	case *ast.CompositeLit:
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if carriesValue(elt, carriers, s) {
				return true
			}
		}
	case *ast.CallExpr:
		_, name := callTarget(v)
		if name == "append" {
			// append(dst, p) of slice headers keeps the alias; append with
			// a spread of bytes (p...) copies the contents.
			for i, arg := range v.Args {
				spread := i == len(v.Args)-1 && v.Ellipsis != token.NoPos
				if !spread && carriesValue(arg, carriers, s) {
					return true
				}
			}
			return false
		}
		if s != nil {
			if callee := s.pkg.calleeDecl(v); callee != nil {
				if child := s.byDecl[callee]; child != nil {
					for a, arg := range v.Args {
						if child.ReturnsParam[a] && carriesValue(arg, carriers, s) {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// localIdentsOf collects every identifier declared inside fd: parameters,
// results, and all := / var bindings. Assigning to anything else writes
// outside the frame.
func localIdentsOf(fd *ast.FuncDecl) map[string]bool {
	locals := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				locals[name.Name] = true
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	addFields(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			if v.Tok == token.VAR {
				for _, spec := range v.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							locals[name.Name] = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{v.Key, v.Value} {
				if id, ok := e.(*ast.Ident); ok {
					locals[id.Name] = true
				}
			}
		}
		return true
	})
	return locals
}

// ---- formatting ----------------------------------------------------------

// declName renders "Func" or "Type.Method".
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	if id := baseIdent(fd.Recv.List[0].Type); id != nil {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// Format renders the summary as indented lines for `mpilint -summary`.
func (sum *Summary) Format(fset *token.FileSet) string {
	var b strings.Builder
	pos := fset.Position(sum.Decl.Pos())
	fmt.Fprintf(&b, "%s (%s:%d)", sum.Name, pos.Filename, pos.Line)
	if sum.Recursive {
		b.WriteString(" [recursive]")
	}
	if sum.Truncated {
		b.WriteString(" [truncated]")
	}
	b.WriteByte('\n')
	if len(sum.Trace) == 0 {
		b.WriteString("  (no communication)\n")
		return b.String()
	}
	for _, op := range sum.Trace {
		p := fset.Position(op.Pos)
		fmt.Fprintf(&b, "  %-10s %-22s", op.Kind, op.Name+opArgs(op))
		if len(op.Via) > 0 {
			vp := fset.Position(op.Via[0])
			fmt.Fprintf(&b, " via line %d,", vp.Line)
		}
		fmt.Fprintf(&b, " at %s:%d\n", p.Filename, p.Line)
	}
	return b.String()
}

// opArgs renders the known constant facts of an op.
func opArgs(op CommOp) string {
	var parts []string
	switch {
	case op.PeerAny:
		parts = append(parts, "peer=any")
	case op.PeerKnown:
		parts = append(parts, fmt.Sprintf("peer=%d", op.Peer))
	}
	switch {
	case op.TagAny:
		parts = append(parts, "tag=any")
	case op.TagKnown:
		parts = append(parts, fmt.Sprintf("tag=%d", op.Tag))
	}
	if op.RootKnown {
		parts = append(parts, fmt.Sprintf("root=%d", op.Root))
	}
	if len(parts) == 0 {
		return ""
	}
	return "(" + strings.Join(parts, ",") + ")"
}
