package lint

import (
	"go/ast"
	"go/token"
	"strconv"
)

// constEnv carries the integer constants visible to an expression: the
// package-level table plus, inside a const block, the current iota.
type constEnv struct {
	consts  map[string]int64
	iota    int64
	hasIota bool
}

// evalConst evaluates the subset of constant integer expressions the tag and
// root analyzers care about: integer literals, identifiers bound in env,
// iota, unary +/-/^, parentheses, and the usual binary arithmetic. It
// reports ok=false for anything outside that subset (calls, floats, shadowed
// names, …), in which case callers must treat the value as unknown.
func evalConst(expr ast.Expr, env constEnv) (int64, bool) {
	switch e := expr.(type) {
	case *ast.BasicLit:
		if e.Kind != token.INT {
			return 0, false
		}
		v, err := strconv.ParseInt(e.Value, 0, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	case *ast.Ident:
		if e.Name == "iota" {
			if !env.hasIota {
				return 0, false
			}
			return env.iota, true
		}
		v, ok := env.consts[e.Name]
		return v, ok
	case *ast.ParenExpr:
		return evalConst(e.X, env)
	case *ast.UnaryExpr:
		v, ok := evalConst(e.X, env)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.SUB:
			return -v, true
		case token.ADD:
			return v, true
		case token.XOR:
			return ^v, true
		}
		return 0, false
	case *ast.BinaryExpr:
		a, ok := evalConst(e.X, env)
		if !ok {
			return 0, false
		}
		b, ok := evalConst(e.Y, env)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.ADD:
			return a + b, true
		case token.SUB:
			return a - b, true
		case token.MUL:
			return a * b, true
		case token.QUO:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case token.REM:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case token.SHL:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a << uint(b), true
		case token.SHR:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a >> uint(b), true
		case token.AND:
			return a & b, true
		case token.OR:
			return a | b, true
		case token.XOR:
			return a ^ b, true
		}
	}
	return 0, false
}

// packageConsts builds the package-level integer constant table, evaluating
// const blocks in declaration order so iota sequences (like the reserved tag
// blocks in mpi and mrmpi) resolve to concrete values.
func packageConsts(files []*ast.File) map[string]int64 {
	consts := map[string]int64{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			// Within one const block, a spec without values repeats the last
			// expression list with the next iota.
			var carried []ast.Expr
			for i, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				exprs := vs.Values
				if len(exprs) == 0 {
					exprs = carried
				} else {
					carried = exprs
				}
				env := constEnv{consts: consts, iota: int64(i), hasIota: true}
				for j, name := range vs.Names {
					if name.Name == "_" || j >= len(exprs) {
						continue
					}
					if v, ok := evalConst(exprs[j], env); ok {
						consts[name.Name] = v
					}
				}
			}
		}
	}
	return consts
}

// localConsts extends the package constant table with function-local const
// declarations, returning a merged copy.
func localConsts(fn *ast.FuncDecl, pkgConsts map[string]int64) map[string]int64 {
	merged := pkgConsts
	copied := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			return true
		}
		if !copied {
			merged = make(map[string]int64, len(pkgConsts)+4)
			for k, v := range pkgConsts {
				merged[k] = v
			}
			copied = true
		}
		var carried []ast.Expr
		for i, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			exprs := vs.Values
			if len(exprs) == 0 {
				exprs = carried
			} else {
				carried = exprs
			}
			env := constEnv{consts: merged, iota: int64(i), hasIota: true}
			for j, name := range vs.Names {
				if name.Name == "_" || j >= len(exprs) {
					continue
				}
				if v, ok := evalConst(exprs[j], env); ok {
					merged[name.Name] = v
				}
			}
		}
		return true
	})
	return merged
}
