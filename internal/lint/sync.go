package lint

import (
	"go/ast"
	"go/token"
)

// checkSync flags WaitGroup (and errgroup.Group) misuse in the worker-pool
// shapes the map-task scheduler and the pipelined shuffle use:
//
//   - Add called inside the spawned goroutine itself. The spawner can reach
//     Wait before the goroutine is scheduled, so Wait returns while workers
//     are still starting — the canonical WaitGroup race. Add must happen on
//     the spawning goroutine, before `go`.
//   - a function-local WaitGroup that is Added (or an errgroup that is
//     Go'd) but never Waited in the function, with its address never taken:
//     nothing can ever wait on it, so the pool's completion is unobserved.
//
// Taking the group's address (&wg) hands it to someone who may Wait, so an
// escaping group suppresses the second rule entirely.
func checkSync(pkg *Package) []Finding {
	var out []Finding
	for _, fd := range pkg.funcDecls() {
		groups := groupIdents(fd)
		if len(groups) == 0 {
			continue
		}
		waited := map[string]bool{}
		escaped := map[string]bool{}
		firstAdd := map[string]token.Pos{}
		// goDepth tracks whether the walk is inside a go-spawned literal.
		var goLits []*ast.FuncLit
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					goLits = append(goLits, lit)
				}
			}
			return true
		})
		inGoLit := func(pos token.Pos) bool {
			for _, lit := range goLits {
				if pos >= lit.Pos() && pos < lit.End() {
					return true
				}
			}
			return false
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.UnaryExpr:
				if v.Op == token.AND {
					if id, ok := v.X.(*ast.Ident); ok && groups[id.Name] != "" {
						escaped[id.Name] = true
					}
				}
			case *ast.CallExpr:
				sel, ok := v.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || groups[id.Name] == "" {
					return true
				}
				kind := groups[id.Name]
				switch sel.Sel.Name {
				case "Wait":
					waited[id.Name] = true
				case "Add":
					if kind != "WaitGroup" {
						return true
					}
					if inGoLit(v.Pos()) {
						out = append(out, Finding{
							Pos:      pkg.position(v),
							Analyzer: "sync",
							Message: id.Name + ".Add inside the spawned goroutine races " + id.Name +
								".Wait; Add on the spawning goroutine before `go`",
						})
					} else if _, seen := firstAdd[id.Name]; !seen {
						firstAdd[id.Name] = v.Pos()
					}
				case "Go":
					if kind != "Group" {
						return true
					}
					if _, seen := firstAdd[id.Name]; !seen {
						firstAdd[id.Name] = v.Pos()
					}
				}
			}
			return true
		})
		for name, pos := range firstAdd {
			if waited[name] || escaped[name] {
				continue
			}
			verb := "Added"
			if groups[name] == "Group" {
				verb = "Go'd"
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(pos),
				Analyzer: "sync",
				Message:  name + " is " + verb + " but never Waited in this function; the pool's completion is never observed",
			})
		}
	}
	return out
}

// groupIdents collects function-local sync.WaitGroup / errgroup.Group
// variables, mapping name to the type's base name. Only clear declarations
// count: `var wg sync.WaitGroup` and `wg := sync.WaitGroup{}` forms.
func groupIdents(fd *ast.FuncDecl) map[string]string {
	groups := map[string]string{}
	record := func(name string, typ ast.Expr) {
		sel, ok := typ.(*ast.SelectorExpr)
		if !ok || name == "_" {
			return
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		switch {
		case pkgID.Name == "sync" && sel.Sel.Name == "WaitGroup":
			groups[name] = "WaitGroup"
		case pkgID.Name == "errgroup" && sel.Sel.Name == "Group":
			groups[name] = "Group"
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // a literal's own locals are its own scope
		case *ast.GenDecl:
			if v.Tok != token.VAR {
				return true
			}
			for _, spec := range v.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil {
					continue
				}
				for _, name := range vs.Names {
					record(name.Name, vs.Type)
				}
			}
		case *ast.AssignStmt:
			if v.Tok != token.DEFINE || len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, rhs := range v.Rhs {
				cl, ok := rhs.(*ast.CompositeLit)
				if !ok {
					continue
				}
				if id, ok := v.Lhs[i].(*ast.Ident); ok {
					record(id.Name, cl.Type)
				}
			}
		}
		return true
	})
	return groups
}
