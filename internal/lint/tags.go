package lint

import (
	"fmt"
	"go/ast"
	"strconv"
)

// checkTags enforces tag hygiene on the point-to-point layer:
//
//  1. A constant-evaluable tag passed to Send (or the send side of
//     Sendrecv) must be non-negative: negative tags are reserved for
//     internal collective traffic (tagBcast, tagReduce, …), and the runtime
//     panics on them. Receive-side tags below AnyTag (-1) are equally
//     reserved and flagged.
//  2. Every constant Send tag should have a syntactically reachable
//     matching Recv: a Recv (or Probe/Sendrecv receive side) somewhere in
//     the same package with the same constant tag. A send with no possible
//     receiver is a message that sits in a mailbox forever — mpidebug
//     builds report it at world exit; this check catches it before running.
//
// The matching check is package-scoped and conservative: a package with any
// AnyTag or non-constant receive tag is treated as able to receive
// everything. "Package" here means the whole directory: receive evidence
// from sibling packages (the external _test package, or the non-test files
// when linting that package) also satisfies a send, since a test commonly
// receives what the package under test sends and vice versa. Cross-package
// protocols beyond that are out of scope.
func checkTags(pkg *Package) []Finding {
	out, sends, recvTags, dynamicRecv := tagScan(pkg)
	for _, sib := range pkg.Siblings {
		// Only the sibling's receive evidence is merged; its own findings
		// are produced when the sibling itself is linted.
		_, _, sibRecv, sibDyn := tagScan(sib)
		dynamicRecv = dynamicRecv || sibDyn
		for t := range sibRecv {
			recvTags[t] = true
		}
	}
	if !dynamicRecv {
		for _, s := range sends {
			if !recvTags[s.tag] {
				out = append(out, Finding{
					Pos:      pkg.position(s.pos),
					Analyzer: "tags",
					Message: "Send with tag " + strconv.FormatInt(s.tag, 10) +
						" has no matching Recv in this package; the message can never be received",
				})
			}
		}
	}
	Sort(out)
	return out
}

type sendSite struct {
	tag int64
	pos ast.Node
}

// tagScan walks one package collecting negative-tag findings, constant send
// sites, and the package's receive evidence (constant tags received plus
// whether any receive is dynamic/AnyTag).
func tagScan(pkg *Package) (out []Finding, sends []sendSite, recvTags map[int64]bool, dynamicRecv bool) {
	recvTags = map[int64]bool{}

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			env := constEnv{consts: localConsts(fn, pkg.Consts)}

			sendTag := func(tagExpr ast.Expr, role string) {
				v, ok := evalConst(tagExpr, env)
				if !ok {
					return // dynamic send tag: nothing provable
				}
				if v < 0 {
					out = append(out, Finding{
						Pos:      pkg.position(tagExpr),
						Analyzer: "tags",
						Message: fmt.Sprintf("%s uses negative tag %d; negative tags are reserved for internal collective traffic — use a tag >= 0",
							role, v),
					})
					return
				}
				sends = append(sends, sendSite{tag: v, pos: tagExpr})
			}
			recvTag := func(tagExpr ast.Expr, role string) {
				if isAnyTag(tagExpr) {
					dynamicRecv = true
					return
				}
				v, ok := evalConst(tagExpr, env)
				if !ok {
					dynamicRecv = true
					return
				}
				switch {
				case v == -1: // AnyTag by value
					dynamicRecv = true
				case v < 0:
					out = append(out, Finding{
						Pos:      pkg.position(tagExpr),
						Analyzer: "tags",
						Message: fmt.Sprintf("%s uses reserved tag %d; tags below AnyTag (-1) belong to internal collective traffic",
							role, v),
					})
				default:
					recvTags[v] = true
				}
			}

			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				qual, name := callTarget(call)
				if qual == "" {
					// Plain (unqualified) calls are out of scope; package
					// mpi's own lowercase send/recv use internal tags by
					// design and spell them differently anyway.
					return true
				}
				switch name {
				case "Send":
					if len(call.Args) == 3 {
						sendTag(call.Args[1], "Send")
					}
				case "Recv":
					if len(call.Args) == 2 {
						recvTag(call.Args[1], "Recv")
					}
				case "Probe":
					if len(call.Args) == 2 {
						recvTag(call.Args[1], "Probe")
					}
				case "Sendrecv":
					if len(call.Args) == 5 {
						sendTag(call.Args[1], "Sendrecv (send side)")
						recvTag(call.Args[4], "Sendrecv (receive side)")
					}
				}
				return true
			})
		}
	}

	return out, sends, recvTags, dynamicRecv
}

// isAnyTag reports whether expr is syntactically the AnyTag constant
// (mpi.AnyTag or a local alias named AnyTag).
func isAnyTag(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name == "AnyTag"
	case *ast.SelectorExpr:
		return e.Sel.Name == "AnyTag"
	case *ast.ParenExpr:
		return isAnyTag(e.X)
	}
	return false
}
