package lint

import (
	"strings"
	"testing"
)

// The protocol-verifier fixtures: each function below is an uncalled
// SPMD-shaped declaration, so protocolEntrypoints picks it up and the
// world engine simulates it at 2/4/8 ranks.

func TestUnmatched(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "send and recv that can never pair",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 7, "x") // want unmatched
	} else {
		c.Recv(0, 8) // want unmatched
	}
}`,
		},
		{
			name: "matched master/worker exchange is silent",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 7, "x")
	} else if c.Rank() == 1 {
		c.Recv(0, 7)
	}
}`,
		},
		{
			name: "AnySource fan-in satisfies every worker send",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		for i := 1; i < c.Size(); i++ {
			c.Recv(mpi.AnySource, 5)
		}
	} else {
		c.Send(0, 5, "w")
	}
}`,
		},
		{
			name: "ring with rank arithmetic resolves and pairs up",
			src: header + `
func f(c *mpi.Comm) {
	c.Send((c.Rank()+1)%c.Size(), 9, "tok")
	c.Recv((c.Rank()+c.Size()-1)%c.Size(), 9)
}`,
		},
		{
			name: "recv from the next rank instead of the previous",
			src: header + `
func f(c *mpi.Comm) {
	c.Send((c.Rank()+1)%c.Size(), 9, "tok") // want unmatched
	c.Recv((c.Rank()+1)%c.Size(), 9)        // want unmatched
}`,
		},
		{
			name: "unknown peer bails toward silence",
			src: header + `
func f(c *mpi.Comm, peer int) {
	c.Send(peer, 3, "x")
	c.Recv(peer, 3)
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "unmatched", tc.src) })
	}
}

func TestMismatch(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "Bcast against Barrier",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Bcast(c, 0, 1) // want mismatch
	} else {
		c.Barrier()
	}
}`,
		},
		{
			name: "same collective, different constant roots",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Bcast(c, 0, 1) // want mismatch
	} else {
		mpi.Bcast(c, 1, 1)
	}
}`,
		},
		{
			name: "divergence buried three helpers deep",
			src: header + `
func top(c *mpi.Comm) {
	middle(c)
}

func middle(c *mpi.Comm) {
	inner(c)
}

func inner(c *mpi.Comm) {
	leaf(c)
}

func leaf(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Bcast(c, 0, 1) // want mismatch
	} else {
		c.Barrier()
	}
}`,
		},
		{
			name: "uniform sequence through helpers is silent",
			src: header + `
func top(c *mpi.Comm) {
	c.Barrier()
	step(c)
	c.Barrier()
}

func step(c *mpi.Comm) {
	mpi.Bcast(c, 0, 1)
}`,
		},
		{
			name: "rank-dependent extra collective",
			src: header + `
func f(c *mpi.Comm) {
	c.Barrier()
	if c.Rank() == 0 {
		c.Barrier() // want mismatch
	}
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "mismatch", tc.src) })
	}
}

func TestGlobalDeadlock(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "both ranks recv first",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Recv(1, 1) // want globaldeadlock
	} else {
		c.Recv(0, 2)
	}
	c.Barrier()
}`,
		},
		{
			name: "crossed tags deadlock even though peers pair up",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 1, "x")
		c.Recv(1, 3) // want globaldeadlock
	} else {
		c.Send(0, 2, "y")
		c.Recv(0, 4)
	}
}`,
		},
		{
			name: "send before recv drains cleanly",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 1, "x")
		c.Recv(1, 2)
	} else if c.Rank() == 1 {
		c.Recv(0, 1)
		c.Send(0, 2, "y")
	}
}`,
		},
		{
			name: "aggregate-style page window with wildcard fan-in",
			src: header + `
func aggregate(c *mpi.Comm) {
	var reqs []*mpi.Request
	for r := 0; r < c.Size(); r++ {
		if r == c.Rank() {
			continue
		}
		reqs = append(reqs, c.Isend(r, 3, "page"))
	}
	for seen := 0; seen < c.Size()-1; seen++ {
		c.Recv(mpi.AnySource, 3)
	}
	for _, q := range reqs {
		q.Wait()
	}
	c.Barrier()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "globaldeadlock", tc.src) })
	}
}

// TestProtocolLiteralEntrypoint checks that a function literal handed to
// RunWith with a constant rank count is simulated at exactly that world.
func TestProtocolLiteralEntrypoint(t *testing.T) {
	src := header + `
func driver() {
	mpi.RunWith(2, mpi.RunOptions{}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 1) // want globaldeadlock
		} else {
			c.Recv(0, 2)
		}
		return nil
	})
}`
	checkFixture(t, "globaldeadlock", src)
}

// TestProtocolMessagesNameBothRanks pins the diagnostic contract: the
// message must name the world size and render both sides' traces, so a
// reader can see the disagreement without re-running the tool.
func TestProtocolMessagesNameBothRanks(t *testing.T) {
	src := header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Bcast(c, 0, 1)
	} else {
		c.Barrier()
	}
}`
	pkg := parseFixture(t, src)
	fs := CheckWith(pkg, selectByName(t, "mismatch"))
	if len(fs) != 1 {
		t.Fatalf("findings = %d, want 1: %v", len(fs), fs)
	}
	msg := fs[0].Message
	for _, want := range []string{"2-rank world", "rank 0 runs [Bcast(root=0)]", "rank 1 runs [Barrier]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("mismatch message missing %q:\n%s", want, msg)
		}
	}
}

// TestProtocolDump smoke-tests the -protocol rendering: every rank of every
// world appears, with conditional ops marked.
func TestProtocolDump(t *testing.T) {
	src := header + `
func f(c *mpi.Comm) {
	c.Barrier()
	if c.Rank() == 0 {
		c.Send(1, 7, "x")
	} else if c.Rank() == 1 {
		c.Recv(0, 7)
	}
}`
	pkg := parseFixture(t, src)
	dump := ProtocolDump(pkg)
	for _, want := range []string{"world 2:", "world 4:", "world 8:", "rank 0: Barrier Send(peer=1,tag=7)", "rank 1: Barrier Recv(peer=0,tag=7)", "rank 2: Barrier"} {
		if !strings.Contains(dump, want) {
			t.Errorf("ProtocolDump missing %q:\n%s", want, dump)
		}
	}
}

// selectByName narrows the registry to one analyzer for direct CheckWith
// calls.
func selectByName(t *testing.T, name string) []*Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return []*Analyzer{a}
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}
