package lint

import (
	"go/ast"
	"go/token"
)

// checkCapture flags writes to captured outer variables inside Map/Reduce
// callback literals that show no synchronization in the closure body. Map
// tasks are scheduled dynamically under MapStyleMaster and the mapper is
// free to invoke callbacks concurrently (the MR-MPI paper's task-stealing
// master does exactly that), so an unguarded `count++` on a captured
// counter is a data race that -race only catches when a schedule exposes
// it. The whole closure is exempt when its body uses a mutex
// (Lock/Unlock/RLock/RUnlock), an atomic.* call, or a channel operation —
// the analyzer does not try to prove the guard actually covers the write.
func checkCapture(pkg *Package) []Finding {
	var out []Finding
	inMR := pkg.Name == "mrmpi"
	seen := map[token.Pos]bool{}
	for _, f := range pkg.Files {
		if mrmpiAlias(f) == "" && !inMR {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, fl := mrCallback(call)
			switch kind {
			case cbMap, cbMapFiles, cbMapKV, cbReduce:
			default:
				return true
			}
			for _, fd := range capturedWrites(pkg, kind, fl) {
				// A callback nested inside another callback is visited
				// from both scopes; report each write once.
				if pos := fd.node.Pos(); !seen[pos] {
					seen[pos] = true
					out = append(out, fd.finding)
				}
			}
			return true
		})
	}
	return out
}

type captureFinding struct {
	node    ast.Node
	finding Finding
}

func capturedWrites(pkg *Package, kind cbKind, fl *ast.FuncLit) []captureFinding {
	if usesSync(fl.Body) {
		return nil
	}
	locals := localIdents(fl)
	var out []captureFinding
	report := func(n ast.Node, name string) {
		out = append(out, captureFinding{node: n, finding: Finding{
			Pos:      pkg.position(n),
			Analyzer: "capture",
			Message: "write to captured variable " + name + " in a " + kind.String() +
				" callback with no mutex/atomic/channel in the closure: callbacks may run concurrently under MapStyleMaster",
		}})
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				if id := baseIdent(lhs); id != nil && id.Name != "_" && !locals[id.Name] {
					report(s, id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id := baseIdent(s.X); id != nil && !locals[id.Name] {
				report(s, id.Name)
			}
		}
		return true
	})
	return out
}

// usesSync reports whether the body contains any evidence of
// synchronization: a mutex Lock/Unlock pair member, an atomic.* call, a
// channel send/receive, or a select.
func usesSync(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			qual, name := callTarget(x)
			switch name {
			case "Lock", "Unlock", "RLock", "RUnlock":
				found = true
			}
			if qual == "atomic" {
				found = true
			}
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}
