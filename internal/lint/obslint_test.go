package lint

import "testing"

const obsHeader = `package fix

import "repro/internal/obs"
`

func TestObsLint(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "begin with deferred end is fine",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mpi", "Recv")
	defer sp.End()
}`,
		},
		{
			name: "begin with explicit end is fine",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mrmpi", "convert.spill.run")
	work()
	sp.End()
}`,
		},
		{
			name: "chained defer begin end is fine",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	defer tr.Begin("mpi", "Barrier").End()
}`,
		},
		{
			name: "guarded assignment with deferred end is fine",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	var sp obs.Span
	if tr != nil {
		sp = tr.Begin("mpi", "Recv")
	}
	defer sp.End()
}`,
		},
		{
			name: "returned span is the caller's to end",
			src: obsHeader + `
func phase(tr *obs.RankTracer, name string) obs.Span {
	if tr != nil {
		return tr.Begin("mrmpi", name)
	}
	return obs.Span{}
}`,
		},
		{
			name: "begin without end is flagged",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mpi", "Recv") // want obslint
	work()
}`,
		},
		{
			name: "discarded begin result is flagged",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	tr.Begin("mpi", "Recv") // want obslint
}`,
		},
		{
			name: "span assigned to blank is flagged",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	_ = tr.Begin("mpi", "Recv") // want obslint
}`,
		},
		{
			name: "end inside a nested closure counts",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mpi", "Recv")
	defer func() { sp.End() }()
}`,
		},
		{
			name: "span handed to a deferred helper is fine",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mpi", "Recv")
	defer finish(sp)
}

func finish(sp obs.Span) {
	sp.End()
}`,
		},
		{
			name: "span passed to a deferred closure parameter is fine",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mrmpi", "map.task")
	defer func(s obs.Span) {
		s.End(obs.Arg{Key: "ok", Val: 1})
	}(sp)
}`,
		},
		{
			name: "non-deferred helper call does not count as an end",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mpi", "Recv") // want obslint
	finish(sp)
}

func finish(sp obs.Span) {
	sp.End()
}`,
		},
		{
			name: "end in a different function does not count",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	sp := tr.Begin("mpi", "Recv") // want obslint
	use(func() {})
	_ = sp
}

func g(sp obs.Span) {
	sp.End()
}`,
		},
		{
			name: "begin inside a callback literal must end in that callback",
			src: obsHeader + `
func f(tr *obs.RankTracer) {
	run(func() {
		sp := tr.Begin("mrblast", "unit") // want obslint
		work()
	})
}`,
		},
		{
			name: "two-argument Begin on an unrelated type is ignored",
			src: obsHeader + `
func f(tx Txn) {
	tx.Begin() // zero-arg Begin: not the tracing API
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkFixture(t, "obslint", tc.src)
		})
	}
}
