package lint

import (
	"go/ast"
)

// mrmpiImportPath is the MapReduce layer whose API the mrlint family of
// analyzers (phase, capture, retain, kvescape) checks. As with the mpi
// family, files importing it under an alias are handled via the import spec,
// and unqualified calls are recognized when the analyzed package is mrmpi
// itself.
const mrmpiImportPath = "repro/internal/mrmpi"

// mrmpiAlias returns the local name the file imports internal/mrmpi under,
// or "" if the file does not import it.
func mrmpiAlias(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path == nil {
			continue
		}
		if imp.Path.Value != `"`+mrmpiImportPath+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "mrmpi"
	}
	return ""
}

// cbKind classifies a function literal passed to one of the mrmpi methods
// that invoke user callbacks. Classification is purely by method name plus
// the literal's parameter shape, mirroring the signatures in
// internal/mrmpi/mapreduce.go — no type checking involved.
type cbKind int

const (
	cbNone     cbKind = iota
	cbMap             // Map(nmap, func(itask int, kv *KeyValue) error)
	cbMapFiles        // MapFiles(paths, func(path string, kv *KeyValue) error)
	cbMapKV           // MapKV(func(key, value []byte, kv *KeyValue) error)
	cbReduce          // Reduce(func(key []byte, values [][]byte, out *KeyValue) error)
	cbEachKV          // kv.Each(func(key, value []byte) error)
	cbEachKMV         // kmv.Each(func(key []byte, values [][]byte) error)
)

// String names the callback for diagnostics.
func (k cbKind) String() string {
	switch k {
	case cbMap:
		return "Map"
	case cbMapFiles:
		return "MapFiles"
	case cbMapKV:
		return "MapKV"
	case cbReduce:
		return "Reduce"
	case cbEachKV, cbEachKMV:
		return "Each"
	}
	return "?"
}

// mrCallback recognizes a method call whose last argument is a function
// literal with the parameter shape of one of the mrmpi callbacks. The
// receiver is not resolved (that would need types); the method-name +
// signature-shape pair is specific enough that collisions with unrelated
// APIs do not occur in practice, and the per-file mrmpi-import gate keeps
// the check out of unrelated packages entirely.
func mrCallback(call *ast.CallExpr) (cbKind, *ast.FuncLit) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return cbNone, nil
	}
	fl, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return cbNone, nil
	}
	types := flatParamTypes(fl.Type)
	switch sel.Sel.Name {
	case "Map":
		if len(types) == 2 && isIdentType(types[0], "int") && isKeyValuePtrType(types[1]) {
			return cbMap, fl
		}
	case "MapWorker":
		// MapWorker(nmap, func(itask, worker int, kv *KeyValue) error): the
		// same map-callback rules apply — and matter more, since the pool
		// runs the callback concurrently.
		if len(types) == 3 && isIdentType(types[0], "int") && isIdentType(types[1], "int") && isKeyValuePtrType(types[2]) {
			return cbMap, fl
		}
	case "MapFiles":
		if len(types) == 2 && isIdentType(types[0], "string") && isKeyValuePtrType(types[1]) {
			return cbMapFiles, fl
		}
	case "MapKV":
		if len(types) == 3 && isByteSliceType(types[0]) && isByteSliceType(types[1]) && isKeyValuePtrType(types[2]) {
			return cbMapKV, fl
		}
	case "Reduce":
		if len(types) == 3 && isByteSliceType(types[0]) && isByteSliceSliceType(types[1]) && isKeyValuePtrType(types[2]) {
			return cbReduce, fl
		}
	case "Each":
		if len(types) == 2 && isByteSliceType(types[0]) {
			if isByteSliceType(types[1]) {
				return cbEachKV, fl
			}
			if isByteSliceSliceType(types[1]) {
				return cbEachKMV, fl
			}
		}
	}
	return cbNone, nil
}

// flatParamTypes expands a parameter list to one type expression per
// declared parameter (`key, value []byte` yields the []byte twice).
func flatParamTypes(ft *ast.FuncType) []ast.Expr {
	var out []ast.Expr
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, field.Type)
		}
	}
	return out
}

// isIdentType reports whether the type expression is the bare identifier
// name (e.g. "int", "string").
func isIdentType(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// isByteSliceType matches []byte.
func isByteSliceType(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	return ok && arr.Len == nil && isIdentType(arr.Elt, "byte")
}

// isByteSliceSliceType matches [][]byte.
func isByteSliceSliceType(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	return ok && arr.Len == nil && isByteSliceType(arr.Elt)
}

// isKeyValuePtrType matches *KeyValue and *<qual>.KeyValue for any
// qualifier: the emitter handle type of every mrmpi callback.
func isKeyValuePtrType(e ast.Expr) bool {
	return isNamedPtrType(e, "KeyValue")
}

// isMapReducePtrType matches *MapReduce / *<qual>.MapReduce.
func isMapReducePtrType(e ast.Expr) bool {
	return isNamedPtrType(e, "MapReduce")
}

func isNamedPtrType(e ast.Expr, name string) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return t.Name == name
	case *ast.SelectorExpr:
		return t.Sel.Name == name
	}
	return false
}

// localIdents collects every identifier declared inside the function
// literal: parameters, := bindings, var/const declarations, range and
// type-switch bindings, and the parameters of nested literals. Anything a
// callback writes that is NOT in this set is a captured outer variable.
func localIdents(fl *ast.FuncLit) map[string]bool {
	locals := map[string]bool{}
	addFieldNames := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				locals[name.Name] = true
			}
		}
	}
	addFieldNames(fl.Type.Params)
	addFieldNames(fl.Type.Results)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok.String() == ":=" {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range x.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						locals[name.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if x.Tok.String() == ":=" {
				if id, ok := x.Key.(*ast.Ident); ok {
					locals[id.Name] = true
				}
				if id, ok := x.Value.(*ast.Ident); ok {
					locals[id.Name] = true
				}
			}
		case *ast.FuncLit:
			addFieldNames(x.Type.Params)
			addFieldNames(x.Type.Results)
		}
		return true
	})
	return locals
}
