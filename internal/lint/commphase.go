package lint

import (
	"go/ast"
	"go/token"
)

// checkCommPhase flags comm-accounting hooks — `RecordSend(...)` /
// `RecordRecv(...)` on a comm.Rank — called with no phase context
// established first. A record made before any `SetPhase` lands in the
// matrix under the empty phase, which renders as "(none)" in every report
// and silently dodges per-phase attribution; the discipline is that
// instrumented code either sets its phase or runs inside an open trace
// span (whose caller did).
//
// A hook is accepted when, earlier in the source text of the same top-level
// function (closures included — the phase sticks for the goroutine, so
// setting it before spawning the literal is correct), there is a
// `SetPhase(...)` call or an opened `Begin(cat, name, ...)` span.
//
// The runtime layers are exempt: package mpi records under the
// sender-stamped phase inside its own send/recv paths, and package comm is
// the accounting implementation itself.
func checkCommPhase(pkg *Package) []Finding {
	if pkg.Name == "mpi" || pkg.Name == "comm" {
		return nil
	}
	var out []Finding
	for _, f := range pkg.Files {
		for _, fd := range fileFuncDecls(f) {
			out = append(out, commPhaseScan(pkg, fd.Body)...)
		}
	}
	Sort(out)
	return out
}

// fileFuncDecls yields the top-level function declarations with bodies.
func fileFuncDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}

// commPhaseScan checks one top-level function body: every RecordSend /
// RecordRecv must be preceded (in source position) by a SetPhase call or an
// opened span.
func commPhaseScan(pkg *Package, body *ast.BlockStmt) []Finding {
	// First pass: the earliest position where a phase context is created.
	phaseAt := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		opens := sel.Sel.Name == "SetPhase" && len(call.Args) == 1
		if !opens {
			_, opens = isBeginCall(call)
		}
		if opens && (phaseAt == token.Pos(-1) || call.Pos() < phaseAt) {
			phaseAt = call.Pos()
		}
		return true
	})

	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "RecordSend" && name != "RecordRecv" {
			return true
		}
		if phaseAt == token.Pos(-1) || call.Pos() < phaseAt {
			out = append(out, Finding{
				Pos:      pkg.position(call),
				Analyzer: "commphase",
				Message: name + " with no phase context: call SetPhase (or open a span) first, " +
					"or the traffic lands under the empty phase",
			})
		}
		return true
	})
	return out
}
