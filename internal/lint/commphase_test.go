package lint

import "testing"

const commHeader = `package fix

import (
	"repro/internal/obs"
	"repro/internal/obs/comm"
)
`

func TestCommPhase(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "record after SetPhase is fine",
			src: commHeader + `
func f(cr *comm.Rank) {
	cr.SetPhase("map")
	cr.RecordSend(1, 7, 128)
}`,
		},
		{
			name: "record inside an open span is fine",
			src: commHeader + `
func f(tr *obs.RankTracer, cr *comm.Rank) {
	sp := tr.Begin("mpi", "Send")
	defer sp.End()
	cr.RecordSend(1, 7, 128)
}`,
		},
		{
			name: "record before any phase is flagged",
			src: commHeader + `
func f(cr *comm.Rank) {
	cr.RecordSend(1, 7, 128) // want commphase
	cr.SetPhase("map")
}`,
		},
		{
			name: "bare record is flagged",
			src: commHeader + `
func f(cr *comm.Rank) {
	cr.RecordRecv(0, 7, 128, 10, 5, "map") // want commphase
}`,
		},
		{
			name: "phase set before spawning the recording closure is fine",
			src: commHeader + `
func f(cr *comm.Rank) {
	cr.SetPhase("map")
	go func() {
		cr.RecordSend(1, 7, 128)
	}()
}`,
		},
		{
			name: "record in a closure with no phase anywhere is flagged",
			src: commHeader + `
func f(cr *comm.Rank) {
	go func() {
		cr.RecordSend(1, 7, 128) // want commphase
	}()
}`,
		},
		{
			name: "phase through a field handle is fine",
			src: commHeader + `
func f(mr *driver) {
	mr.cr.SetPhase("reduce")
	mr.cr.RecordRecv(0, 7, 128, 10, 5, "reduce")
}`,
		},
		{
			name: "unrelated RecordSend-free code is ignored",
			src: commHeader + `
func f(cr *comm.Rank) {
	cr.SetPhase("map")
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkFixture(t, "commphase", tc.src)
		})
	}
}
