package lint

import (
	"go/ast"
)

// checkObsSpans flags trace spans that are opened but never closed: a
// tracer `Begin(cat, name, ...)` call whose Span has no matching `End` in
// the same function. An unclosed span corrupts the trace (Validate rejects
// it) and poisons the watchdog's in-flight report, so the discipline is:
// every Begin is either
//
//   - assigned to a variable that is End-ed in the same function (a plain
//     `sp.End()` statement or a `defer sp.End()`), or
//   - chained immediately: `defer tr.Begin(...).End()`, or
//   - handed to a deferred call that owns the close — `defer finish(sp)` or
//     `defer func(s obs.Span) { s.End() }(sp)` — since a deferred callee
//     runs unconditionally at function exit, or
//   - returned to the caller (span-constructor helpers like traceCollective
//     or MapReduce.phase, whose callers own the End).
//
// Discarding the Span (`tr.Begin(...)` as a statement, or assigning it to
// `_`) is always flagged: that span can never be ended.
func checkObsSpans(pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, scope := range funcScopes(f) {
			out = append(out, obsScanScope(pkg, scope)...)
		}
	}
	return out
}

// funcScopes yields every function body in the file: declarations and
// literals, each analyzed independently (a span must be closed in the
// function that opened it — closing it from a different function is how
// traces end up torn).
func funcScopes(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// isBeginCall matches a span-opening call: any `x.Begin(cat, name, ...)`
// with at least the two string arguments of the tracing API (which keeps
// unrelated Begin methods out).
func isBeginCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" || len(call.Args) < 2 {
		return nil, false
	}
	return call, true
}

// obsScanScope checks one function body. Nested function literals are
// skipped here (each is its own scope), except when collecting End calls:
// a deferred closure that ends the span still counts.
func obsScanScope(pkg *Package, body *ast.BlockStmt) []Finding {
	// Every `name.End(...)` reachable from this scope, including inside
	// nested literals. A span passed as an argument to a deferred call also
	// counts as ended: the deferred callee (helper or closure parameter)
	// owns the close and runs unconditionally at function exit.
	ended := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			for _, arg := range s.Call.Args {
				if id, ok := arg.(*ast.Ident); ok {
					ended[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok {
					ended[id.Name] = true
				}
			}
		}
		return true
	})

	type open struct {
		name string
		node ast.Node
	}
	var opens []open
	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pkg.position(n), Analyzer: "obslint", Message: msg})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // nested literal: its own scope
		case *ast.ReturnStmt:
			// Span-constructor helpers hand the Begin result to the caller.
			return false
		case *ast.DeferStmt:
			// defer x.Begin(...).End() closes the span at function exit.
			if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if _, ok := isBeginCall(sel.X); ok {
					return false
				}
			}
			return true
		case *ast.ExprStmt:
			if call, ok := isBeginCall(s.X); ok {
				report(call, "trace span result discarded: assign the Span and End it (or defer tr.Begin(...).End())")
				return false
			}
			return true
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				call, ok := isBeginCall(rhs)
				if !ok {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok {
					continue // field/index destination: out of syntactic reach
				}
				if id.Name == "_" {
					report(call, "trace span assigned to _: that span can never be ended")
					continue
				}
				opens = append(opens, open{name: id.Name, node: call})
			}
			return true
		case *ast.ValueSpec:
			for i, v := range s.Values {
				call, ok := isBeginCall(v)
				if !ok || i >= len(s.Names) {
					continue
				}
				if s.Names[i].Name == "_" {
					report(call, "trace span assigned to _: that span can never be ended")
					continue
				}
				opens = append(opens, open{name: s.Names[i].Name, node: call})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, o := range opens {
		if !ended[o.name] {
			report(o.node, "span "+o.name+
				" is opened with Begin but never ended in this function: add `defer "+o.name+".End()`")
		}
	}
	Sort(out)
	return out
}
