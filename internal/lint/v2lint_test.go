package lint

import (
	"testing"
)

// Golden tests for the v2 analyzer family (goroutines, deadlock, sync,
// suppress) and for the interprocedural reach the communication summaries
// give the v1 analyzers, using the same `// want <analyzer>` harness.

func TestGoroutines(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "goroutine receiving on the comm",
			src: header + `
func f(c *mpi.Comm) {
	go func() { // want goroutines
		c.Recv(0, 1)
	}()
}`,
		},
		{
			name: "goroutine sending through a helper",
			src: header + `
func f(c *mpi.Comm) {
	go worker(c) // want goroutines
}

func worker(c *mpi.Comm) {
	c.Send(1, 7, "x")
}`,
		},
		{
			name: "pure compute goroutine is fine",
			src: header + `
func f(c *mpi.Comm, out chan int) {
	go func() {
		out <- 2 * 21
	}()
	c.Barrier()
}`,
		},
		{
			name: "MPI in the spawn arguments runs on the spawner",
			src: header + `
func f(c *mpi.Comm, out chan string) {
	go consume(out, c.Recv(0, 1))
}

func consume(out chan string, v any) {
	out <- "ok"
}`,
		},
		{
			name: "goroutine emitting through the KV handle",
			src: mrHeader + `
func f(out *mrmpi.KeyValue, k, v []byte) {
	go func() { // want goroutines
		out.Add(k, v)
	}()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "goroutines", tc.src) })
	}
}

// TestGoroutinesPoolPattern pins the intra-rank worker-pool idiom of
// internal/mrmpi/pool.go as legal: workers run an OPAQUE callback against a
// goroutine-local staging KV and hand it back over a channel, while the
// rank goroutine keeps the comm, the rank KV, and the merge. The contrast
// cases show what breaks the pattern — touching the per-rank KV handle or
// the Comm from inside a worker.
func TestGoroutinesPoolPattern(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "staging-KV pool with channel hand-back is fine",
			src: mrHeader + `
func pool(run func(int, int, *mrmpi.KeyValue) error, newKV func() *mrmpi.KeyValue) {
	tasks := make(chan int)
	results := make(chan *mrmpi.KeyValue, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for t := range tasks {
				kv := newKV()
				run(t, w, kv)
				results <- kv
			}
		}(w)
	}
}`,
		},
		{
			name: "pool worker emitting into the rank KV is flagged",
			src: mrHeader + `
func pool(out *mrmpi.KeyValue, tasks chan int, k, v []byte) {
	for w := 0; w < 4; w++ {
		go func() { // want goroutines
			for range tasks {
				out.Add(k, v)
			}
		}()
	}
}`,
		},
		{
			name: "pool worker fetching tasks over the comm is flagged",
			src: header + `
func pool(c *mpi.Comm, tasks chan int) {
	go func() { // want goroutines
		for {
			c.Send(0, 1, "ready")
			c.Recv(0, 2)
			tasks <- 1
		}
	}()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "goroutines", tc.src) })
	}
}

func TestDeadlock(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "recv-first on every arm with nothing in flight",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 { // want deadlock
		c.Recv(1, 1)
		c.Send(1, 2, "x")
	} else {
		c.Recv(0, 2)
		c.Send(0, 1, "y")
	}
}`,
		},
		{
			name: "send-first on one arm is fine",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 1, "x")
		c.Recv(1, 2)
	} else {
		c.Recv(0, 1)
		c.Send(0, 2, "y")
	}
}`,
		},
		{
			name: "posted isend before the branch keeps it alive",
			src: header + `
func f(c *mpi.Comm) {
	r := c.Isend(1, 1, "x")
	if c.Rank() == 0 {
		c.Recv(1, 1)
	} else {
		c.Recv(0, 1)
	}
	r.Wait()
}`,
		},
		{
			name: "recv-first buried in helpers still counts",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 { // want deadlock
		pull(c, 1)
	} else {
		pull(c, 0)
	}
}

func pull(c *mpi.Comm, peer int) {
	c.Recv(peer, 3)
}`,
		},
		{
			name: "constant-routed send with no matching receive tag",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 7, "x") // want deadlock
	} else if c.Rank() == 1 {
		c.Recv(0, 9)
	}
}`,
		},
		{
			name: "wildcard receive on the peer arm absorbs any tag",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 7, "x")
	} else if c.Rank() == 1 {
		c.Recv(0, mpi.AnyTag)
	}
}`,
		},
		{
			name: "lost send through a helper is reported at the call",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		sendSeven(c) // want deadlock
	} else if c.Rank() == 1 {
		c.Recv(0, 9)
	}
}

func sendSeven(c *mpi.Comm) {
	c.Send(1, 7, "x")
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "deadlock", tc.src) })
	}
}

const syncHeader = `package fix

import "sync"
`

func TestSync(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "Add inside the spawned goroutine",
			src: syncHeader + `
func f() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func() {
			wg.Add(1) // want sync
			wg.Done()
		}()
	}
	wg.Wait()
}`,
		},
		{
			name: "Added but never Waited",
			src: syncHeader + `
func f() {
	var wg sync.WaitGroup
	wg.Add(1) // want sync
	go func() { wg.Done() }()
}`,
		},
		{
			name: "errgroup Go'd but never Waited",
			src: syncHeader + `
import "golang.org/x/sync/errgroup"

func f(run func() error) {
	var g errgroup.Group
	g.Go(run) // want sync
}`,
		},
		{
			name: "escaping group may be Waited elsewhere",
			src: syncHeader + `
func f(park func(*sync.WaitGroup)) {
	var wg sync.WaitGroup
	wg.Add(1)
	park(&wg)
}`,
		},
		{
			name: "the correct shape is clean",
			src: syncHeader + `
func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { wg.Done() }()
	wg.Wait()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "sync", tc.src) })
	}
}

func TestSuppress(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "typo'd check name",
			src: header + `
func f(c *mpi.Comm) {
	c.Send(1, 7, "x") // mpilint:ignore tags,tagz -- tagz is a typo // want suppress
}`,
		},
		{
			name: "bare directive without checks or reason",
			src: header + `
func f(c *mpi.Comm) {
	c.Barrier() // mpilint:ignore — legacy bare form // want suppress
}`,
		},
		{
			name: "named check with reason is clean",
			src: header + `
func f(c *mpi.Comm) {
	c.Send(1, 9, "x") // mpilint:ignore tags -- partner lives in another package
}`,
		},
		{
			name: "prose mention of the marker is not a directive",
			src: header + `
// Use a comment of the form mpilint:ignore <check> -- <why> to silence one.
func f(c *mpi.Comm) {
	c.Barrier()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "suppress", tc.src) })
	}
}

// TestDivergenceInterprocedural pins the ISSUE's acceptance fixture: a
// collective reached two helper calls deep on one arm of a rank branch is
// reported at the helper call site.
func TestDivergenceInterprocedural(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "collective two helpers deep on one arm",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		level1(c) // want divergence
	}
}

func level1(c *mpi.Comm) {
	level2(c)
}

func level2(c *mpi.Comm) {
	c.Barrier()
}`,
		},
		{
			name: "matching helper collectives on both arms are fine",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		level1(c)
	} else {
		c.Barrier()
	}
}

func level1(c *mpi.Comm) {
	level2(c)
}

func level2(c *mpi.Comm) {
	c.Barrier()
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "divergence", tc.src) })
	}
}

// TestRequestsContainers covers the slice-append protocol: requests
// accumulated with append must reach a drain (Waitall, a range loop, any
// later mention); the opening appends themselves prove nothing.
func TestRequestsContainers(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "append then Waitall is clean",
			src: header + `
func f(c *mpi.Comm) {
	var reqs []*mpi.Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, c.Isend(i, 1, "x"))
	}
	mpi.Waitall(reqs)
}`,
		},
		{
			name: "append then range-Wait is clean",
			src: header + `
func f(c *mpi.Comm) {
	var reqs []*mpi.Request
	reqs = append(reqs, c.Irecv(0, 1), c.Irecv(1, 1))
	for _, r := range reqs {
		r.Wait()
	}
}`,
		},
		{
			name: "appended request never drained",
			src: header + `
func f(c *mpi.Comm) {
	var reqs []*mpi.Request
	reqs = append(reqs, c.Isend(1, 1, "x")) // want requests
}`,
		},
		{
			name: "two appends drained by one Waitall",
			src: header + `
func f(c *mpi.Comm) {
	var reqs []*mpi.Request
	reqs = append(reqs, c.Isend(1, 1, "x"))
	reqs = append(reqs, c.Irecv(1, 2))
	mpi.Waitall(reqs)
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "requests", tc.src) })
	}
}

// runOne runs a single named analyzer over an already-built package.
func runOne(t *testing.T, pkg *Package, name string) []Finding {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return CheckWith(pkg, []*Analyzer{a})
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestTagsCrossFile: the send/recv pairing is package-scoped, so a send in
// one file satisfied by a receive in another file of the same package is
// clean.
func TestTagsCrossFile(t *testing.T) {
	sender := header + `
func s(c *mpi.Comm) { c.Send(1, 5, "x") }`
	recver := header + `
func r(c *mpi.Comm) { c.Recv(0, 5) }`
	if fs := runOne(t, parseFixture(t, sender, recver), "tags"); len(fs) != 0 {
		t.Errorf("cross-file send/recv pair flagged: %v", fs)
	}
	// Without the receiving file the same send is an orphan.
	if fs := runOne(t, parseFixture(t, sender), "tags"); len(fs) != 1 {
		t.Errorf("orphan send findings = %v, want exactly one", fs)
	}
}

// TestTagsSiblingPackage: receive evidence from the directory's sibling
// package (the external _test package) satisfies a send in the package under
// lint, and vice versa.
func TestTagsSiblingPackage(t *testing.T) {
	pkg := parseFixture(t, header+`
func s(c *mpi.Comm) { c.Send(1, 5, "x") }`)
	sib := parseFixture(t, `package fix_test

import "repro/internal/mpi"

func r(c *mpi.Comm) { c.Recv(0, 5) }`)
	pkg.Siblings = []*Package{sib}
	if fs := runOne(t, pkg, "tags"); len(fs) != 0 {
		t.Errorf("send with sibling-package receive flagged: %v", fs)
	}
	// A sibling receiving a different tag does not pair the send.
	other := parseFixture(t, `package fix_test

import "repro/internal/mpi"

func r(c *mpi.Comm) { c.Recv(0, 6) }`)
	pkg2 := parseFixture(t, header+`
func s(c *mpi.Comm) { c.Send(1, 5, "x") }`)
	pkg2.Siblings = []*Package{other}
	if fs := runOne(t, pkg2, "tags"); len(fs) != 1 {
		t.Errorf("unpaired send findings = %v, want exactly one", fs)
	}
}

// TestRetainInterprocedural: a callback parameter handed to a local helper
// that stores it escapes through the helper; a helper that merely reads (or
// copies) it is clean.
func TestRetainInterprocedural(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "helper that stores the key escapes it",
			src: mrHeader + `
var stash [][]byte

func keep(b []byte) {
	stash = append(stash, b)
}

func f(mr *mrmpi.MapReduce, n int) {
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		keep(key) // want retain
		return nil
	})
}`,
		},
		{
			name: "helper that only reads is clean",
			src: mrHeader + `
func total(b []byte) int {
	n := 0
	for _, v := range b {
		n += int(v)
	}
	return n
}

func f(mr *mrmpi.MapReduce, sink func(int)) {
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		sink(total(key))
		return nil
	})
}`,
		},
		{
			name: "identity helper keeps the alias alive",
			src: mrHeader + `
var stash [][]byte

func trim(b []byte) []byte {
	return b[1:]
}

func f(mr *mrmpi.MapReduce, n int) {
	mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
		k := trim(key)
		stash = append(stash, k) // want retain
		return nil
	})
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "retain", tc.src) })
	}
}
