package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// This file is the v2 loader: a go/types-backed type-checking layer on top
// of the purely syntactic parse in load.go. Analyzers consult type
// information when it is available — resolving method receivers to the real
// *mpi.Comm / *mrmpi.MapReduce / *mrmpi.KeyValue types instead of matching
// on names — and silently fall back to the v1 syntactic heuristics when it
// is not (in-memory fixtures, trees outside a module, unparseable deps).
//
// The loader is deliberately self-contained and error-tolerant:
//
//   - imports inside the analyzed module (path prefix == the go.mod module
//     path) are type-checked from source, recursively, with a cycle guard;
//   - every other import (stdlib included) resolves to an empty placeholder
//     package, so references through it get types.Invalid and the analyzers
//     treat them as unknown — no compiled export data, no GOROOT parsing,
//     no network, no external deps;
//   - all type errors are swallowed: a package that half-checks still
//     yields usable types for the half that resolved. go/types is built to
//     keep going after errors; mpilint leans on that.
//
// The price of placeholder imports is that identifiers whose types come
// from outside the module (time.Duration fields, sync.Mutex embeds) are
// Invalid. Every typed query below treats Invalid as "unknown" and defers
// to the syntactic answer, preserving the zero-false-positive contract.

// TypeLoader loads and caches type-checked packages for one module tree.
type TypeLoader struct {
	fset    *token.FileSet
	modRoot string // filesystem path holding go.mod
	modPath string // module path from go.mod (e.g. "repro")

	mu      sync.Mutex
	pkgs    map[string]*types.Package // import path -> checked package
	loading map[string]bool           // cycle guard
}

// loaderCache shares TypeLoaders between LoadDir calls that use the same
// file set and module root (cmd/mpilint walks many directories of one
// module; re-checking internal/mpi per directory would be quadratic).
var (
	loaderCacheMu sync.Mutex
	loaderCache   = map[loaderKey]*TypeLoader{}
)

type loaderKey struct {
	fset *token.FileSet
	root string
}

// NewTypeLoader returns the cached loader for the module containing dir, or
// nil when dir is not inside a module (no go.mod above it) — in which case
// analysis proceeds untyped.
func NewTypeLoader(fset *token.FileSet, dir string) *TypeLoader {
	root, path := findModule(dir)
	if root == "" {
		return nil
	}
	loaderCacheMu.Lock()
	defer loaderCacheMu.Unlock()
	key := loaderKey{fset: fset, root: root}
	if l, ok := loaderCache[key]; ok {
		return l
	}
	l := &TypeLoader{
		fset:    fset,
		modRoot: root,
		modPath: path,
		pkgs:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	loaderCache[key] = l
	return l
}

// findModule walks up from dir looking for go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest)
				}
			}
			return "", ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", ""
		}
		dir = parent
	}
}

// ModuleRoot returns the directory of the enclosing Go module of dir, or ""
// when dir is not inside a module. cmd/mpilint uses it to normalize baseline
// and SARIF paths to module-root-relative form.
func ModuleRoot(dir string) string {
	root, _ := findModule(dir)
	return root
}

// Import implements types.Importer. Module-internal paths check from
// source; everything else yields a complete-but-empty placeholder, so
// references through it become types.Invalid rather than load failures.
func (l *TypeLoader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.importLocked(path)
}

func (l *TypeLoader) importLocked(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if rel, ok := strings.CutPrefix(path, l.modPath+"/"); ok && !l.loading[path] {
		l.loading[path] = true
		pkg := l.checkDir(path, filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		l.loading[path] = false
		if pkg != nil {
			l.pkgs[path] = pkg
			return pkg, nil
		}
	}
	// Placeholder: stdlib, external, in-progress cycle, or unloadable.
	pkg := types.NewPackage(path, pathBase(path))
	pkg.MarkComplete()
	l.pkgs[path] = pkg
	return pkg, nil
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkDir parses the non-test files of one module-internal directory and
// type-checks them. Returns nil when the directory has no buildable files.
func (l *TypeLoader) checkDir(path, dir string) *types.Package {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil || f.Name == nil {
			continue
		}
		files = append(files, f)
	}
	// Multiple build-tag variants of one symbol (debug_on.go/debug_off.go)
	// would collide; prefer the _off (default-build) variant by dropping
	// files whose names end in _on.go when a sibling _off.go exists.
	files = dropTagVariants(files, l.fset)
	if len(files) == 0 {
		return nil
	}
	pkg, _ := l.check(path, files)
	return pkg
}

// dropTagVariants removes <base>_on.go files when a matching <base>_off.go
// is present, mirroring the default (untagged) build of the mpidebug pair.
// Everything else is kept: lint loads ignore build tags by design.
func dropTagVariants(files []*ast.File, fset *token.FileSet) []*ast.File {
	off := map[string]bool{}
	for _, f := range files {
		name := filepath.Base(fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_off.go") {
			off[strings.TrimSuffix(name, "_off.go")] = true
		}
	}
	if len(off) == 0 {
		return files
	}
	out := files[:0]
	for _, f := range files {
		name := filepath.Base(fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_on.go") && off[strings.TrimSuffix(name, "_on.go")] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// check type-checks one file set as package `path`, tolerating every error.
// It never fails: the returned package may be partially typed.
func (l *TypeLoader) check(path string, files []*ast.File) (pkg *types.Package, info *types.Info) {
	info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:                 importerFunc(l.importLocked),
		Error:                    func(error) {}, // tolerate everything
		DisableUnusedImportCheck: true,
	}
	defer func() {
		// A malformed tree must degrade to untyped analysis, never crash
		// the linter.
		if recover() != nil {
			pkg, info = nil, nil
		}
	}()
	pkg, _ = conf.Check(path, l.fset, files, info)
	return pkg, info
}

// importerFunc adapts a function to types.Importer. The loader passes its
// locked variant so recursive imports reuse the held lock.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

var _ types.Importer = (*TypeLoader)(nil)

// TypeCheck type-checks an already-parsed Package against the module rooted
// at or above dir, attaching TypesInfo. It is a no-op (and harmless) when
// no module is found. Used by LoadDir and by the typed test fixtures.
func (pkg *Package) TypeCheck(dir string) {
	l := NewTypeLoader(pkg.Fset, dir)
	if l == nil {
		return
	}
	// Check under the directory's real import path when it is inside the
	// module, so the package's own types carry the same path its importers
	// see.
	path := pkg.Name
	if abs, err := filepath.Abs(dir); err == nil {
		if rel, err := filepath.Rel(l.modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") && rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	tp, info := l.check(path, pkg.Files)
	if tp == nil || info == nil {
		return
	}
	pkg.TypesPkg, pkg.TypesInfo = tp, info
}

// ---- typed queries -------------------------------------------------------
//
// Each query answers from type information when present and meaningful,
// and returns "unknown" (not "no") otherwise, so callers can fall back to
// the syntactic heuristic. The three-valued answer is the contract that
// keeps typed mode strictly more precise than untyped mode.

// answer is a three-valued truth: typed queries distinguish "provably not"
// from "cannot tell".
type answer int

const (
	ansUnknown answer = iota
	ansYes
	ansNo
)

// typed reports whether type information is attached.
func (pkg *Package) typed() bool { return pkg.TypesInfo != nil }

// exprNamedType resolves the named type of e (through pointers), returning
// its package path and name, or ok=false when no usable type is recorded.
func (pkg *Package) exprNamedType(e ast.Expr) (path, name string, ok bool) {
	if pkg.TypesInfo == nil {
		return "", "", false
	}
	tv, found := pkg.TypesInfo.Types[e]
	if !found || tv.Type == nil {
		return "", "", false
	}
	t := tv.Type
	for {
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// receiverIs classifies a method call's receiver against a (package path,
// type name) pair. ansUnknown covers untyped packages, Invalid types,
// interface receivers, and type parameters — all of which keep the
// syntactic answer.
func (pkg *Package) receiverIs(sel *ast.SelectorExpr, path, name string) answer {
	if pkg.TypesInfo == nil {
		return ansUnknown
	}
	tv, found := pkg.TypesInfo.Types[sel.X]
	if !found || tv.Type == nil || tv.Type == types.Typ[types.Invalid] {
		return ansUnknown
	}
	t := tv.Type
	for {
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return ansUnknown // an interface may be satisfied by the real type
	}
	if _, isParam := t.(*types.TypeParam); isParam {
		return ansUnknown
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil {
		if t.Underlying() == types.Typ[types.Invalid] {
			return ansUnknown
		}
		return ansNo
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ansNo
	}
	// A module-internal type checked under its real import path matches
	// exactly; the package under analysis sees its own types with the
	// package name as path (conf.Check path), so match the tail too.
	if obj.Name() != name {
		return ansNo
	}
	opath := obj.Pkg().Path()
	if opath == path || opath == pathBase(path) {
		return ansYes
	}
	return ansNo
}

// qualifierIsPackage reports whether the identifier qual in this file
// resolves to an import of the given path. ansUnknown when untyped.
func (pkg *Package) qualifierIsPackage(qual *ast.Ident, path string) answer {
	if pkg.TypesInfo == nil {
		return ansUnknown
	}
	obj, found := pkg.TypesInfo.Uses[qual]
	if !found {
		return ansUnknown
	}
	pn, isPkg := obj.(*types.PkgName)
	if !isPkg {
		return ansNo // a variable or type shadowing the package name
	}
	if pn.Imported().Path() == path {
		return ansYes
	}
	return ansNo
}

// calleeDecl resolves a call to a function declared in this package, the
// edge the summary engine propagates over. Typed packages resolve through
// go/types (including methods and aliased names); untyped packages fall
// back to matching unqualified calls against unique top-level functions.
func (pkg *Package) calleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	if pkg.TypesInfo != nil {
		if id := calleeIdent(call); id != nil {
			if obj := pkg.TypesInfo.Uses[id]; obj != nil {
				if fd := pkg.declOfObj(obj); fd != nil {
					return fd
				}
			}
		}
	}
	qual, name := callTarget(call)
	if qual != "" || name == "" {
		return nil
	}
	return pkg.uniqueFunc(name)
}

// calleeIdent finds the identifier naming the called function: the bare
// ident or the selector's Sel (methods and package-qualified calls).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	fun := call.Fun
	for {
		switch fn := fun.(type) {
		case *ast.ParenExpr:
			fun = fn.X
		case *ast.IndexExpr:
			fun = fn.X
		case *ast.IndexListExpr:
			fun = fn.X
		case *ast.SelectorExpr:
			return fn.Sel
		case *ast.Ident:
			return fn
		default:
			return nil
		}
	}
}

// declOfObj maps a types.Object back to this package's FuncDecl, building
// the index lazily.
func (pkg *Package) declOfObj(obj types.Object) *ast.FuncDecl {
	if pkg.declIndex == nil {
		pkg.declIndex = map[types.Object]*ast.FuncDecl{}
		if pkg.TypesInfo != nil {
			for _, fd := range pkg.funcDecls() {
				if def := pkg.TypesInfo.Defs[fd.Name]; def != nil {
					pkg.declIndex[def] = fd
				}
			}
		}
	}
	return pkg.declIndex[obj]
}

// uniqueFunc returns the package's sole top-level (non-method) function of
// that name, or nil — the untyped call-graph edge.
func (pkg *Package) uniqueFunc(name string) *ast.FuncDecl {
	if pkg.funcIndex == nil {
		pkg.funcIndex = map[string]*ast.FuncDecl{}
		for _, fd := range pkg.funcDecls() {
			if fd.Recv != nil {
				continue
			}
			if _, dup := pkg.funcIndex[fd.Name.Name]; dup {
				pkg.funcIndex[fd.Name.Name] = nil // ambiguous: refuse to guess
				continue
			}
			pkg.funcIndex[fd.Name.Name] = fd
		}
	}
	return pkg.funcIndex[name]
}
