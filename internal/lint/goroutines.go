package lint

import (
	"go/ast"
)

// checkGoroutines flags MPI operations and KeyValue emits reachable from a
// goroutine spawned inside a rank function. The Comm handle and the
// KeyValue emitter are per-rank, single-threaded objects: the runtime's
// mailbox matching and the paged KV stores assume one goroutine per rank
// drives them. A worker goroutine that sends, receives, or emits behind the
// rank's back corrupts match ordering (or the KV pages) in ways -race only
// catches on the right schedule — goroutines must do pure compute and hand
// results back over a channel.
//
// The check looks through the communication summaries, so an op buried in a
// helper called from the goroutine is still found:
//
//	go worker(c)         // worker's summary sends → flagged
//	go func() { h() }()  // h's summary receives → flagged
//
// mpi.Run's own per-rank spawner stays clean: the rank closure it launches
// calls an opaque function parameter, which summarizes to no ops.
func checkGoroutines(pkg *Package) []Finding {
	sums := pkg.Summaries()
	var out []Finding
	for _, fd := range pkg.funcDecls() {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			trace, via := spawnedTrace(pkg, sums, fd, g)
			for _, op := range trace {
				out = append(out, Finding{
					Pos:      pkg.position(g),
					Analyzer: "goroutines",
					Message:  goroutineMessage(op, via),
				})
				break // one finding per spawn site
			}
			return true
		})
	}
	return out
}

// spawnedTrace computes the may-trace of the goroutine g launches. Call
// arguments are excluded: `go f(c.Recv(0, 1))` evaluates the Recv on the
// spawning rank's goroutine, which is fine.
func spawnedTrace(pkg *Package, sums *Summaries, fd *ast.FuncDecl, g *ast.GoStmt) (trace []CommOp, via string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return sums.TraceOf(lit.Body, fd), ""
	}
	if ops, ok := sums.extractor(fd).opsFor(g.Call); ok {
		return ops, ""
	}
	if callee := pkg.calleeDecl(g.Call); callee != nil {
		if sum := sums.Of(callee); sum != nil {
			return sum.Trace, sum.Name
		}
	}
	return nil, ""
}

// goroutineMessage renders the finding for the first offending op.
func goroutineMessage(op CommOp, via string) string {
	route := ""
	if via != "" {
		route = " (via " + via + ")"
	}
	if op.Kind == OpEmit {
		return "goroutine emits through the per-rank KeyValue handle" + route +
			"; emit on the rank's own goroutine and pass results over a channel"
	}
	return "goroutine performs MPI " + op.Name + route +
		"; the Comm handle is per-rank — goroutines must do pure compute and hand results back over a channel"
}
