package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFixture builds a Package from in-memory source, the golden-test
// harness for every analyzer. Each src is one file; the mpi import path is
// the real one so alias resolution runs exactly as it does on the repo.
func parseFixture(t *testing.T, srcs ...string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg := &Package{Fset: fset}
	for i, src := range srcs {
		f, err := parser.ParseFile(fset, fmt.Sprintf("fixture%d.go", i), src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Consts = packageConsts(pkg.Files)
	return pkg
}

// checkFixture runs one analyzer over a single-file fixture and compares
// the findings against `// want <analyzer>` markers on the offending lines
// (one marker word per expected finding on that line).
func checkFixture(t *testing.T, analyzer, src string) {
	t.Helper()
	pkg := parseFixture(t, src)
	var selected []*Analyzer
	for _, a := range Analyzers() {
		if a.Name == analyzer {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		t.Fatalf("no analyzer named %q", analyzer)
	}
	var got []string
	for _, f := range CheckWith(pkg, selected) {
		got = append(got, fmt.Sprintf("%d:%s", f.Pos.Line, f.Analyzer))
	}
	var want []string
	for i, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		for _, name := range strings.Fields(line[idx+len("// want "):]) {
			if name == analyzer {
				want = append(want, fmt.Sprintf("%d:%s", i+1, name))
			}
		}
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("findings = %v, want %v\nfixture:\n%s", got, want, src)
	}
}

const header = `package fix

import "repro/internal/mpi"
`

func TestDivergence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "collective only on master arm",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Bcast(c, 0, 1) // want divergence
	}
}`,
		},
		{
			name: "matching collectives on both arms are fine",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Bcast(c, 0, 1)
	} else {
		mpi.Bcast(c, 0, 0)
	}
}`,
		},
		{
			name: "collective outside the branch is fine",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		println("master")
	}
	c.Barrier()
}`,
		},
		{
			name: "rank held in a variable",
			src: header + `
func f(c *mpi.Comm) {
	rank := c.Rank()
	if rank != 0 {
		c.Barrier() // want divergence
	}
}`,
		},
		{
			name: "else-if chain missing a collective on one arm",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		mpi.Gather(c, 0, 1)
		c.Barrier() // want divergence
	} else if c.Rank() == 1 {
		mpi.Gather(c, 0, 2)
	} else {
		mpi.Gather(c, 0, 3)
		c.Barrier() // want divergence
	}
}`,
		},
		{
			name: "switch on rank with implicit empty arm",
			src: header + `
func f(c *mpi.Comm) {
	switch c.Rank() {
	case 0:
		c.Barrier() // want divergence
	}
}`,
		},
		{
			name: "switch on rank with matching arms",
			src: header + `
func f(c *mpi.Comm) {
	switch c.Rank() {
	case 0:
		c.Barrier()
	default:
		c.Barrier()
	}
}`,
		},
		{
			name: "p2p inside rank branch is fine",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Send(1, 3, "x")
	} else {
		c.Recv(0, 3)
	}
}`,
		},
		{
			name: "non-rank branch is fine",
			src: header + `
func f(c *mpi.Comm, verbose bool) {
	if verbose {
		c.Barrier()
	}
}`,
		},
		{
			name: "mrmpi phase method on a rank-dependent arm",
			src: header + `
func f(c *mpi.Comm, m interface{ Collate(x any) error }) {
	if c.Rank() == 0 {
		m.Collate(nil) // want divergence
	}
}`,
		},
		{
			name: "plain parameter named rank is not rank-dependent",
			src: header + `
func f(c *mpi.Comm, rung int) {
	if rung == 0 {
		c.Barrier()
	}
}`,
		},
		{
			name: "ignore directive suppresses",
			src: header + `
func f(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // mpilint:ignore — deliberate
	}
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "divergence", tc.src) })
	}
}

func TestAliasedBcast(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "element write into Bcast result",
			src: header + `
func f(c *mpi.Comm, w []float64) {
	v := mpi.Bcast(c, 0, w)
	v[0] = 1 // want aliasedbcast
}`,
		},
		{
			name: "copy into Bcast result",
			src: header + `
func f(c *mpi.Comm, w []float64) {
	v := mpi.Bcast(c, 0, w)
	copy(v, w) // want aliasedbcast
}`,
		},
		{
			name: "append to Bcast result",
			src: header + `
func f(c *mpi.Comm, w []float64) {
	v := mpi.Bcast(c, 0, w)
	v = append(v, 1) // want aliasedbcast
}`,
		},
		{
			name: "field write through Bcast pointer",
			src: header + `
type cfg struct{ n int }

func f(c *mpi.Comm, p *cfg) {
	q := mpi.Bcast(c, 0, p)
	q.n = 2 // want aliasedbcast
}`,
		},
		{
			name: "map write through Bcast result",
			src: header + `
func f(c *mpi.Comm, m map[string]int) {
	shared := mpi.Bcast(c, 0, m)
	shared["k"] = 1 // want aliasedbcast
}`,
		},
		{
			name: "Allgather result written",
			src: header + `
func f(c *mpi.Comm) {
	all := mpi.Allgather(c, 1)
	all[0] = 9 // want aliasedbcast
}`,
		},
		{
			name: "read-only use is fine",
			src: header + `
func f(c *mpi.Comm, w []float64) float64 {
	v := mpi.Bcast(c, 0, w)
	return v[0]
}`,
		},
		{
			name: "copying broadcast is fine",
			src: header + `
func f(c *mpi.Comm, w []float64) {
	v := mpi.BcastFloat64s(c, 0, w)
	v[0] = 1
}`,
		},
		{
			name: "explicit copy clears the taint",
			src: header + `
func f(c *mpi.Comm, w []float64) {
	v := mpi.Bcast(c, 0, w)
	v = append([]float64(nil), v...)
	v[0] = 1
}`,
		},
		{
			name: "copy with tainted source is fine",
			src: header + `
func f(c *mpi.Comm, w []float64) {
	v := mpi.Bcast(c, 0, w)
	local := make([]float64, len(v))
	copy(local, v)
	local[0] = 1
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "aliasedbcast", tc.src) })
	}
}

func TestTags(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "negative literal tags",
			src: header + `
func f(c *mpi.Comm) {
	c.Send(1, -3, "x") // want tags
	c.Recv(0, -3)      // want tags
}`,
		},
		{
			name: "negative tag through a const",
			src: header + `
const evil = -2 - 1

func f(c *mpi.Comm) {
	c.Send(1, evil, "x") // want tags
}`,
		},
		{
			name: "matched send and recv",
			src: header + `
const tagWork = 7

func f(c *mpi.Comm) {
	c.Send(1, tagWork, "x")
	c.Recv(0, tagWork)
}`,
		},
		{
			name: "iota tag block matched across functions",
			src: header + `
const (
	tagBase = 1 << 10

	tagReady = tagBase + iota
	tagAssign
)

func master(c *mpi.Comm) {
	c.Recv(mpi.AnySource, tagReady)
	c.Send(1, tagAssign, 5)
}

func worker(c *mpi.Comm) {
	c.Send(0, tagReady, nil)
	c.Recv(0, tagAssign)
}`,
		},
		{
			name: "send with no matching recv",
			src: header + `
func f(c *mpi.Comm) {
	c.Send(1, 42, "x") // want tags
	c.Recv(0, 41)
}`,
		},
		{
			name: "AnyTag recv matches everything",
			src: header + `
func f(c *mpi.Comm) {
	c.Send(1, 42, "x")
	c.Recv(0, mpi.AnyTag)
}`,
		},
		{
			name: "dynamic recv tag silences matching",
			src: header + `
func f(c *mpi.Comm, tag int) {
	c.Send(1, 42, "x")
	c.Recv(0, tag)
}`,
		},
		{
			name: "sendrecv negative send side",
			src: header + `
func f(c *mpi.Comm) {
	c.Sendrecv(1, -5, "x", 0, 3) // want tags
	c.Send(1, 3, "y")
}`,
		},
		{
			name: "probe counts as a receive",
			src: header + `
func f(c *mpi.Comm) {
	c.Send(1, 9, "x")
	c.Probe(0, 9)
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "tags", tc.src) })
	}
}

func TestRoot(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "constant root is fine",
			src: header + `
func f(c *mpi.Comm) {
	mpi.Bcast(c, 0, 1)
}`,
		},
		{
			name: "negative constant root",
			src: header + `
func f(c *mpi.Comm) {
	mpi.Bcast(c, -1, 1) // want root
}`,
		},
		{
			name: "unvalidated variable root",
			src: header + `
func f(c *mpi.Comm, root int) {
	mpi.Bcast(c, root, 1) // want root
}`,
		},
		{
			name: "root compared against Size",
			src: header + `
import "fmt"

func f(c *mpi.Comm, root int) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("bad root")
	}
	mpi.Bcast(c, root, 1)
	return nil
}`,
		},
		{
			name: "root derived by modulo of Size",
			src: header + `
func f(c *mpi.Comm, epoch int) {
	root := epoch % c.Size()
	mpi.Bcast(c, root, 1)
}`,
		},
		{
			name: "inline modulo root",
			src: header + `
func f(c *mpi.Comm, epoch int) {
	mpi.Bcast(c, epoch%c.Size(), 1)
}`,
		},
		{
			name: "rooted reduce variants",
			src: header + `
func f(c *mpi.Comm, root int, v []float64) {
	mpi.ReduceSumFloat64s(c, root, v) // want root
	mpi.Scatter(c, root, []int{1})    // want root
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "root", tc.src) })
	}
}

func TestRequests(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{
			name: "discarded Isend statement",
			src: header + `
func f(c *mpi.Comm) {
	c.Isend(1, 7, "x") // want requests
}`,
		},
		{
			name: "discarded Irecv statement",
			src: header + `
func f(c *mpi.Comm) {
	c.Irecv(0, 7) // want requests
}`,
		},
		{
			name: "chained Wait is fine",
			src: header + `
func f(c *mpi.Comm) {
	c.Isend(1, 7, "x").Wait()
	c.Irecv(0, 7).Wait()
}`,
		},
		{
			name: "assigned to blank",
			src: header + `
func f(c *mpi.Comm) {
	_ = c.Isend(1, 7, "x") // want requests
}`,
		},
		{
			name: "assigned and waited is fine",
			src: header + `
func f(c *mpi.Comm) {
	req := c.Irecv(0, 7)
	req.Wait()
}`,
		},
		{
			name: "assigned and tested is fine",
			src: header + `
func f(c *mpi.Comm) bool {
	req := c.Irecv(0, 7)
	_, _, ok := req.Test()
	return ok
}`,
		},
		{
			name: "assigned but never completed",
			src: header + `
func f(c *mpi.Comm) {
	req := c.Irecv(0, 7) // want requests
	c.Barrier()
}`,
		},
		{
			name: "appending to a Waitall slice is fine",
			src: header + `
func f(c *mpi.Comm) {
	var reqs []*mpi.Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, c.Isend(1, 7, i))
	}
	mpi.Waitall(reqs)
}`,
		},
		{
			name: "returned request is the caller's problem",
			src: header + `
func f(c *mpi.Comm) *mpi.Request {
	return c.Irecv(0, 7)
}`,
		},
		{
			name: "request stored in a field is out of reach",
			src: header + `
type stream struct{ req *mpi.Request }

func f(c *mpi.Comm, s *stream) {
	s.req = c.Irecv(0, 7)
}`,
		},
		{
			name: "reposting loop variable counts as completed",
			src: header + `
func f(c *mpi.Comm) {
	req := c.Irecv(0, 7)
	for i := 0; i < 3; i++ {
		req.Wait()
		req = c.Irecv(0, 7)
	}
	req.Wait()
}`,
		},
		{
			name: "unrelated two-arg methods are ignored",
			src: header + `
func f(c *mpi.Comm) {
	c.Recv(0, 7)
}`,
		},
		{
			name: "ignore comment suppresses",
			src: header + `
func f(c *mpi.Comm) {
	c.Isend(1, 7, "x") // mpilint:ignore — deliberate leak under test
}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkFixture(t, "requests", tc.src) })
	}
}

// TestRepoLintsClean is the acceptance gate: the full analyzer suite over
// the repository's own source (the same pass `make lint` runs, plus test
// files) must report nothing.
func TestRepoLintsClean(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"../...", "../../cmd/...", "../../examples/..."})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, dir := range dirs {
		pkgs, err := LoadDir(fset, dir, LoadOptions{Tests: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, f := range Check(pkg) {
				t.Errorf("unexpected finding: %s", f)
			}
		}
	}
}

func TestExpandPatterns(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"."})
	if err != nil || len(dirs) != 1 {
		t.Fatalf("ExpandPatterns(.) = %v, %v", dirs, err)
	}
	rec, err := ExpandPatterns([]string{"../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) < 2 {
		t.Errorf("recursive walk found %d dirs, want several: %v", len(rec), rec)
	}
}

func TestConstEval(t *testing.T) {
	src := `package fix

const (
	base = 1 << 20

	a = base + iota
	b
	c
)

const neg = -2 - 1
`
	pkg := parseFixture(t, src)
	for name, want := range map[string]int64{
		"base": 1 << 20,
		"a":    1<<20 + 1,
		"b":    1<<20 + 2,
		"c":    1<<20 + 3,
		"neg":  -3,
	} {
		if got, ok := pkg.Consts[name]; !ok || got != want {
			t.Errorf("const %s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
}
