package lint

import (
	"go/ast"
)

// mpiPkgName is the package whose call sites the analyzers recognize. Files
// that import "repro/internal/mpi" under an alias are handled by reading the
// import spec; bare (dot-import or same-package) calls are recognized when
// the analyzed package is mpi itself.
const mpiImportPath = "repro/internal/mpi"

// collectiveFuncs are the package-level mpi functions that are collective:
// every rank of the communicator must call them in the same order.
var collectiveFuncs = map[string]bool{
	"Bcast":                true,
	"BcastFloat64s":        true,
	"Reduce":               true,
	"ReduceSumFloat64s":    true,
	"ReduceSumInt64":       true,
	"Allreduce":            true,
	"AllreduceSumFloat64s": true,
	"AllreduceSumInt64":    true,
	"AllreduceMaxFloat64":  true,
	"Gather":               true,
	"Allgather":            true,
	"Scatter":              true,
	"Alltoall":             true,
}

// collectiveMethods are method names that are collective calls. Barrier is
// mpi's only collective Comm method; the mrmpi names are the MapReduce phase
// methods that are documented collective and uncommon enough that a
// same-named method on an unrelated type is unlikely (Map/Reduce/Gather are
// deliberately excluded: those names are too generic for a purely syntactic
// match).
var collectiveMethods = map[string]bool{
	"Barrier":   true,
	"Aggregate": true,
	"Collate":   true,
	"Convert":   true,
	"SortKeys":  true,
	"Scrunch":   true,
}

// sharingFuncs are the mpi collectives whose reference results are shared
// between ranks rather than copied: generic Bcast hands every rank the same
// backing value, and Allgather is Gather+Bcast of the gathered slice.
var sharingFuncs = map[string]bool{
	"Bcast":     true,
	"Allgather": true,
}

// rootedFuncs maps mpi collectives that take a root rank to the argument
// index of that root (after the leading *Comm argument).
var rootedFuncs = map[string]int{
	"Bcast":             1,
	"BcastFloat64s":     1,
	"Reduce":            1,
	"ReduceSumFloat64s": 1,
	"ReduceSumInt64":    1,
	"Gather":            1,
	"Scatter":           1,
}

// mpiAlias returns the local name the file imports internal/mpi under, or ""
// if the file does not import it.
func mpiAlias(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path == nil {
			continue
		}
		path := imp.Path.Value // quoted
		if path != `"`+mpiImportPath+`"` {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "mpi"
	}
	return ""
}

// callTarget reduces a call expression to the function name it invokes,
// stripping generic instantiation (mpi.Bcast[int](…) parses as an IndexExpr
// around the selector). It reports the bare name and whether the call is
// package-qualified with qual (e.g. "mpi").
func callTarget(call *ast.CallExpr) (qual, name string) {
	fun := call.Fun
	for {
		switch fn := fun.(type) {
		case *ast.IndexExpr:
			fun = fn.X
			continue
		case *ast.IndexListExpr:
			fun = fn.X
			continue
		case *ast.ParenExpr:
			fun = fn.X
			continue
		case *ast.SelectorExpr:
			if id, ok := fn.X.(*ast.Ident); ok {
				return id.Name, fn.Sel.Name
			}
			return "", fn.Sel.Name
		case *ast.Ident:
			return "", fn.Name
		default:
			return "", ""
		}
	}
}

// collectiveName classifies a call expression within a file: it returns the
// collective's name ("Bcast", "Barrier", …) or "" when the call is not a
// recognized collective. alias is the file's mpi import name ("" when the
// file does not import mpi); inMPI marks files of package mpi itself, where
// collectives are called unqualified.
func collectiveName(call *ast.CallExpr, alias string, inMPI bool) string {
	qual, name := callTarget(call)
	switch {
	case qual != "" && qual == alias && collectiveFuncs[name]:
		return name
	case qual == "" && inMPI && collectiveFuncs[name]:
		return name
	case qual != "" && collectiveMethods[name] && qual != alias:
		// Method call like c.Barrier() or mr.Aggregate(…). Requiring a bare
		// identifier receiver (qual) keeps this from matching arbitrary
		// chained expressions.
		return name
	}
	return ""
}

// collectiveCallName is collectiveName with the v2 typed veto layered on:
// when type information can prove a method receiver is neither *mpi.Comm
// nor *mrmpi.MapReduce, or a qualifier is not the mpi package, the
// syntactic match is rejected. Unknown keeps the syntactic answer.
func (pkg *Package) collectiveCallName(call *ast.CallExpr, alias string, inMPI bool) string {
	name := collectiveName(call, alias, inMPI)
	if name == "" || !pkg.typed() {
		return name
	}
	sel := selOf(call)
	if sel == nil {
		return name
	}
	if collectiveMethods[name] {
		if pkg.receiverIs(sel, mpiImportPath, "Comm") == ansNo &&
			pkg.receiverIs(sel, mrmpiImportPath, "MapReduce") == ansNo {
			return ""
		}
		return name
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg.qualifierIsPackage(id, mpiImportPath) == ansNo {
			return ""
		}
	}
	return name
}

// selOf unwraps a call's function expression to its selector, through
// parens and generic instantiation; nil for unqualified calls.
func selOf(call *ast.CallExpr) *ast.SelectorExpr {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.SelectorExpr:
			return f
		default:
			return nil
		}
	}
}

// isRankExpr reports whether expr mentions the caller's rank: a call to a
// method named Rank, a selector of a field named rank, or one of the
// identifiers in rankVars.
func isRankExpr(expr ast.Expr, rankVars map[string]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if _, name := callTarget(x); name == "Rank" {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "rank" {
				found = true
				return false
			}
		case *ast.Ident:
			if rankVars[x.Name] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// rankVarsOf scans a function for identifiers bound from a Rank() call
// (e.g. `rank := c.Rank()` or `size, rank := c.Size(), c.Rank()`).
func rankVarsOf(fn *ast.FuncDecl) map[string]bool {
	return boundFromCall(fn, "Rank")
}

// sizeVarsOf scans a function for identifiers bound from a Size() call, the
// world-size twin of rankVarsOf (used by the protocol verifier to resolve
// `(rank+1)%size` peers under a concrete world).
func sizeVarsOf(fn *ast.FuncDecl) map[string]bool {
	return boundFromCall(fn, "Size")
}

// boundFromCall collects idents assigned from a call to the named method.
func boundFromCall(fn ast.Node, method string) map[string]bool {
	vars := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if _, name := callTarget(call); name != method {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				vars[id.Name] = true
			}
		}
		return true
	})
	return vars
}
