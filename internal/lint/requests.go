package lint

import (
	"go/ast"
)

// checkRequests flags nonblocking point-to-point calls whose *mpi.Request is
// dropped. Every Isend/Irecv must be completed with Wait or Test (directly,
// via Waitall, or by handing the request to other code): an uncompleted
// Irecv is a receive that never happens, an uncompleted Isend leaves the
// delivery unconfirmed, and mpidebug builds report both at world exit. The
// flagged forms are the ones that make completion impossible:
//
//   - the call as a bare statement (`c.Isend(dst, tag, v)`) — the Request is
//     gone before anything can Wait on it; chain `.Wait()` if blocking
//     semantics were intended,
//   - the result assigned to `_`,
//   - the result assigned to a variable that is never mentioned again in the
//     enclosing function,
//   - the result appended into a slice (`reqs = append(reqs, c.Isend(...))`)
//     that is itself never drained: the container must reach mpi.Waitall, a
//     range loop, or some other later mention. Mentions inside the opening
//     append statements themselves don't count — `reqs = append(reqs, ...)`
//     read alone never completes anything.
//
// The check is conservative in the usual mpilint way: any later use of the
// variable (a Wait/Test call, a Waitall call, passing it on, returning it)
// counts as completion, and results stored into fields, maps, or composite
// literals are out of syntactic reach and trusted.
func checkRequests(pkg *Package) []Finding {
	var out []Finding
	for _, f := range pkg.Files {
		for _, scope := range funcScopes(f) {
			out = append(out, requestsScanScope(pkg, scope)...)
		}
	}
	return out
}

// isRequestCall matches `x.Isend(dst, tag, data)` or `x.Irecv(src, tag)`.
// The receiver is unconstrained (comms travel under many names) but the
// method name plus arity keeps unrelated APIs out.
func isRequestCall(e ast.Expr) (*ast.CallExpr, string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Isend":
		if len(call.Args) == 3 {
			return call, "Isend", true
		}
	case "Irecv":
		if len(call.Args) == 2 {
			return call, "Irecv", true
		}
	}
	return nil, "", false
}

// requestsScanScope checks one function body. Like obslint, nested function
// literals are separate scopes for opening requests, but uses inside them
// still count as completion (a deferred closure draining a request slice is
// idiomatic).
func requestsScanScope(pkg *Package, body *ast.BlockStmt) []Finding {
	type open struct {
		ident     *ast.Ident // LHS of the opening assignment
		call      ast.Node
		op        string
		container bool // opened by appending into a slice
	}
	var opens []open
	// openingIdents holds every ident occurrence that belongs to an opening
	// statement; the completion scan ignores them so a container's
	// self-mentions (`reqs = append(reqs, ...)`) don't count as draining it.
	openingIdents := map[*ast.Ident]bool{}
	var out []Finding
	report := func(n ast.Node, msg string) {
		out = append(out, Finding{Pos: pkg.position(n), Analyzer: "requests", Message: msg})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // its own scope
		case *ast.ReturnStmt:
			return false // the caller owns returned requests
		case *ast.ExprStmt:
			if call, op, ok := isRequestCall(s.X); ok {
				report(call, op+" result discarded: the *Request must be completed — assign it and Wait/Test, or chain .Wait()")
				return false
			}
			return true
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				if call, op, ok := isRequestCall(rhs); ok {
					id, ok := s.Lhs[i].(*ast.Ident)
					if !ok {
						continue // field/index destination: out of syntactic reach
					}
					if id.Name == "_" {
						report(call, op+" result assigned to _: that request can never be completed with Wait or Test")
						continue
					}
					opens = append(opens, open{ident: id, call: call, op: op})
					continue
				}
				// Container open: reqs = append(reqs, c.Isend(...), ...).
				reqArgs := appendedRequests(rhs)
				if reqArgs == nil {
					continue
				}
				id, ok := s.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue // destination out of reach (or discarded with the slice)
				}
				for _, ra := range reqArgs {
					opens = append(opens, open{ident: id, call: ra.call, op: ra.op, container: true})
				}
				ast.Inspect(s, func(m ast.Node) bool {
					// Only the container's own occurrences are "opening":
					// another variable appended alongside is still a use of
					// that variable.
					if mid, ok := m.(*ast.Ident); ok && mid.Name == id.Name {
						openingIdents[mid] = true
					}
					return true
				})
			}
			return true
		case *ast.ValueSpec:
			if s.Values == nil {
				// A bare declaration (`var reqs []*mpi.Request`) completes
				// nothing; its name must not count as a later use.
				for _, name := range s.Names {
					openingIdents[name] = true
				}
				return true
			}
			for i, v := range s.Values {
				call, op, ok := isRequestCall(v)
				if !ok || i >= len(s.Names) {
					continue
				}
				if s.Names[i].Name == "_" {
					report(call, op+" result assigned to _: that request can never be completed with Wait or Test")
					continue
				}
				opens = append(opens, open{ident: s.Names[i], call: call, op: op})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)

	if len(opens) > 0 {
		// Any mention of the variable besides its opening statement counts as
		// completion (Wait/Test, Waitall, range loops, passing it on,
		// reassignment chains) — matched by node identity so shadowed names
		// stay honest per occurrence.
		for _, o := range opens {
			openingIdents[o.ident] = true
		}
		used := map[string]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && !openingIdents[id] {
				used[id.Name] = true
			}
			return true
		})
		for _, o := range opens {
			if used[o.ident.Name] {
				continue
			}
			if o.container {
				report(o.call, o.op+" request is appended to "+o.ident.Name+" but "+o.ident.Name+
					" is never drained: pass it to mpi.Waitall or range over it calling Wait")
			} else {
				report(o.call, o.op+" request "+o.ident.Name+
					" is never completed: call "+o.ident.Name+".Wait() or poll "+o.ident.Name+".Test()")
			}
		}
	}
	Sort(out)
	return out
}

// appendedRequests matches `append(dst, ..., c.Isend(...)/c.Irecv(...), ...)`
// and returns the request-returning arguments, nil when the expression is not
// such an append.
func appendedRequests(e ast.Expr) []struct {
	call ast.Node
	op   string
} {
	ap, ok := e.(*ast.CallExpr)
	if !ok || ap.Ellipsis.IsValid() {
		return nil
	}
	if qual, name := callTarget(ap); qual != "" || name != "append" || len(ap.Args) < 2 {
		return nil
	}
	var reqs []struct {
		call ast.Node
		op   string
	}
	for _, arg := range ap.Args[1:] {
		if call, op, ok := isRequestCall(arg); ok {
			reqs = append(reqs, struct {
				call ast.Node
				op   string
			}{call, op})
		}
	}
	return reqs
}
