package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file hosts the cross-rank protocol verifier: three analyzers that
// check that a package's communication protocols *compose* across ranks,
// where everything before PR 7 reasoned one function (one rank) at a time.
//
// For every entrypoint — an SPMD-shaped function nothing in the package
// calls, or a function literal handed to mpi.Run/RunWith with a constant
// rank count — the verifier instantiates the conditional trace tree
// (world.go) once per rank of each world in ProtocolWorlds, then matches
// the per-rank op lists:
//
//   - `unmatched`: an unconditional constant-routed send whose destination
//     rank can post no receive that matches it (the buffered send is lost),
//     and an unconditional receive no rank's sends can ever satisfy (it
//     blocks forever).
//   - `mismatch`: two ranks whose unconditional collective sequences
//     diverge — different names, different order, or different constant
//     roots. Both ranks' sequences are printed.
//   - `globaldeadlock`: the scheduler found a reachable global state where
//     every unfinished rank is blocked at an unconditional Recv/Probe/
//     collective with nothing to satisfy it; the per-rank stack of pending
//     ops is printed.
//
// All three inherit the engine's bail-toward-silence discipline: unknown
// peers/tags, undecidable branches, loops, truncated or recursive traces,
// and search-cap overruns all suppress rather than report.

// ProtocolWorlds are the world sizes every entrypoint is instantiated for.
// 2 exercises the master/worker split, 4 the general case, and 8 stands in
// for "large" — together they cover every guard shape this codebase uses
// (rank == 0, rank == size-1, rank < k, parity). cmd/mpilint's -world flag
// narrows it to a single size. Function-literal entrypoints with a constant
// rank count override this with their own exact world.
var ProtocolWorlds = []int{2, 4, 8}

// maxLiteralWorld caps the rank count of literal entrypoints; a 64-rank
// test world would blow up the scheduler for no extra guard coverage.
const maxLiteralWorld = 8

// entrypoint is one protocol to verify.
type entrypoint struct {
	name   string
	pos    token.Pos
	fd     *ast.FuncDecl // named entrypoint (nil for literals)
	lit    *ast.FuncLit  // mpi.Run/RunWith callback
	encl   *ast.FuncDecl // the declaration enclosing lit
	worlds []int         // non-nil: exact worlds (literal rank counts)
}

// checkUnmatched, checkMismatch and checkGlobalDeadlock surface the shared
// protocol run through the analyzer registry.
func checkUnmatched(pkg *Package) []Finding      { return pkg.protocolFindings("unmatched") }
func checkMismatch(pkg *Package) []Finding       { return pkg.protocolFindings("mismatch") }
func checkGlobalDeadlock(pkg *Package) []Finding { return pkg.protocolFindings("globaldeadlock") }

// protocolFindings runs the verifier once per package and caches the
// findings per check name.
func (pkg *Package) protocolFindings(check string) []Finding {
	if pkg.protocol == nil {
		pkg.protocol = runProtocol(pkg)
	}
	return pkg.protocol[check]
}

// runProtocol verifies every entrypoint of the package in every world.
func runProtocol(pkg *Package) map[string][]Finding {
	out := map[string][]Finding{}
	for _, ep := range protocolEntrypoints(pkg) {
		worlds := ep.worlds
		if worlds == nil {
			worlds = ProtocolWorlds
		}
		seen := map[string]bool{}
		for _, n := range worlds {
			ranks, ok := instantiateWorld(pkg, ep, n)
			if !ok {
				continue
			}
			var fs []Finding
			fs = append(fs, unmatchedIn(pkg, n, ranks)...)
			fs = append(fs, mismatchIn(pkg, ep, n, ranks)...)
			fs = append(fs, deadlockIn(pkg, ep, n, ranks)...)
			for _, f := range fs {
				// The smallest world that exhibits a finding reports it;
				// larger worlds usually re-derive the same one.
				key := fmt.Sprintf("%s:%s:%d:%d", f.Analyzer, f.Pos.Filename, f.Pos.Line, f.Pos.Column)
				if seen[key] {
					continue
				}
				seen[key] = true
				out[f.Analyzer] = append(out[f.Analyzer], f)
			}
		}
	}
	return out
}

// protocolEntrypoints discovers what to verify.
func protocolEntrypoints(pkg *Package) []*entrypoint {
	sums := pkg.Summaries()
	// A function with any in-package caller is a helper, not an entrypoint
	// (callers include calls from function literals and go statements).
	called := map[*ast.FuncDecl]bool{}
	for _, fd := range pkg.funcDecls() {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := pkg.calleeDecl(call); callee != nil && callee != fd {
					called[callee] = true
				}
			}
			return true
		})
	}
	var eps []*entrypoint
	for _, fd := range pkg.funcDecls() {
		if called[fd] {
			continue
		}
		sum := sums.Of(fd)
		if sum == nil || sum.Recursive || sum.Truncated || !spmdShaped(sum) {
			continue
		}
		eps = append(eps, &entrypoint{name: sum.Name, pos: fd.Pos(), fd: fd})
	}
	// Function literals handed to mpi.Run/RunWith with a constant rank
	// count: the world size is that count (the literal's peers may be
	// computed from enclosing constants correlated with it), so these are
	// verified at exactly n ranks, and skipped when n is unknown or large.
	for _, fd := range pkg.funcDecls() {
		fd := fd
		env := constEnv{consts: localConsts(fd, pkg.Consts)}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, name := callTarget(call)
			if (name != "Run" && name != "RunWith") || len(call.Args) < 2 {
				return true
			}
			lit := commFuncLit(call)
			if lit == nil {
				return true
			}
			ranks, ok := evalConst(call.Args[0], env)
			if !ok || ranks < 2 || ranks > maxLiteralWorld {
				return true
			}
			eps = append(eps, &entrypoint{
				name:   declName(fd) + " rank fn",
				pos:    lit.Pos(),
				lit:    lit,
				encl:   fd,
				worlds: []int{int(ranks)},
			})
			return true
		})
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].pos < eps[j].pos })
	return eps
}

// commFuncLit returns the call's function-literal argument taking a single
// *…Comm parameter (the mpi.Run/RunWith rank-function shape), or nil.
func commFuncLit(call *ast.CallExpr) *ast.FuncLit {
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok || lit.Type.Params == nil || len(lit.Type.Params.List) != 1 {
			continue
		}
		star, ok := lit.Type.Params.List[0].Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		if id := baseIdent(star.X); id != nil && strings.HasSuffix(id.Name, "Comm") {
			return lit
		}
		if sel, ok := star.X.(*ast.SelectorExpr); ok && strings.HasSuffix(sel.Sel.Name, "Comm") {
			return lit
		}
	}
	return nil
}

// spmdShaped filters entrypoints to protocols every rank runs: a collective
// somewhere, or both send-kind and recv-kind ops. One-sided helpers (a
// master loop, a pure sender) are half a protocol and would read as
// unmatched against themselves.
func spmdShaped(sum *Summary) bool {
	if len(sum.Collectives) > 0 {
		return true
	}
	var send, recv bool
	for _, op := range sum.Trace {
		switch op.Kind {
		case OpSend, OpIsend, OpSendrecv:
			send = true
		case OpRecv, OpProbe, OpIrecv:
			recv = true
		}
	}
	return send && recv
}

// instantiateWorld produces every rank's op list for one world, ok=false
// when any rank's instantiation bailed.
func instantiateWorld(pkg *Package, ep *entrypoint, n int) ([][]RankOp, bool) {
	sums := pkg.Summaries()
	ranks := make([][]RankOp, n)
	for k := 0; k < n; k++ {
		var steps []traceStep
		env := &worldEnv{rank: int64(k), size: int64(n)}
		if ep.fd != nil {
			steps = sums.stepsOf(ep.fd)
			env.consts = localConsts(ep.fd, pkg.Consts)
			env.rankVars = rankVarsOf(ep.fd)
			env.sizeVars = sizeVarsOf(ep.fd)
		} else {
			steps = sums.stepsOfNode(ep.lit.Body, ep.encl, ep.lit)
			env.consts = localConsts(ep.encl, pkg.Consts)
			env.rankVars = boundFromCall(ep.lit, "Rank")
			env.sizeVars = boundFromCall(ep.lit, "Size")
		}
		ops, ok := sums.instantiateRank(steps, env)
		if !ok {
			return nil, false
		}
		ranks[k] = ops
	}
	return ranks, true
}

// ---- check: unmatched ----------------------------------------------------

// unmatchedIn reports unconditional constant-routed sends no receive can
// match and unconditional receives no send can satisfy.
func unmatchedIn(pkg *Package, n int, ranks [][]RankOp) []Finding {
	var out []Finding
	for r, ops := range ranks {
		for _, op := range ops {
			if op.Cond || op.InLoop {
				continue
			}
			switch op.Kind {
			case OpSend, OpIsend, OpSendrecv:
				if !op.PeerKnown || op.PeerAny {
					continue
				}
				if op.Peer < 0 || op.Peer >= int64(n) {
					continue // size-dependent routing at another world's size
				}
				if anyRecvMatchesSend(ranks[op.Peer], int64(r), op.CommOp) {
					continue
				}
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(sitePos(op.CommOp)),
					Analyzer: "unmatched",
					Message: fmt.Sprintf("in a %d-rank world, rank %d's %s has no matching receive on rank %d, whose receives are %s; the buffered send is lost",
						n, r, renderOp(op.CommOp), op.Peer, renderOps(receiveOps(ranks[op.Peer]), 8)),
				})
			case OpRecv, OpProbe:
				if op.PeerAny {
					matched := false
					for s := range ranks {
						if anySendMatchesRecv(ranks[s], int64(s), int64(r), op.CommOp) {
							matched = true
							break
						}
					}
					if !matched {
						out = append(out, Finding{
							Pos:      pkg.Fset.Position(sitePos(op.CommOp)),
							Analyzer: "unmatched",
							Message: fmt.Sprintf("in a %d-rank world, rank %d's %s can never be satisfied: no rank sends anything it matches",
								n, r, renderOp(op.CommOp)),
						})
					}
					continue
				}
				if !op.PeerKnown || op.Peer < 0 || op.Peer >= int64(n) {
					continue
				}
				if anySendMatchesRecv(ranks[op.Peer], op.Peer, int64(r), op.CommOp) {
					continue
				}
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(sitePos(op.CommOp)),
					Analyzer: "unmatched",
					Message: fmt.Sprintf("in a %d-rank world, rank %d's %s can never be satisfied: rank %d's sends are %s",
						n, r, renderOp(op.CommOp), op.Peer, renderOps(sendOps(ranks[op.Peer]), 8)),
				})
			}
		}
	}
	return out
}

// anyRecvMatchesSend reports whether any receive-kind op of the peer could
// accept a message from src with the send's tag (Cond/InLoop receives and
// unknowns count as matching).
func anyRecvMatchesSend(peerOps []RankOp, src int64, send CommOp) bool {
	for _, r := range peerOps {
		switch r.Kind {
		case OpRecv, OpProbe, OpIrecv:
		default:
			continue
		}
		srcOK := r.PeerAny || !r.PeerKnown || r.Peer == src
		tagOK := r.TagAny || !r.TagKnown || !send.TagKnown || r.Tag == send.Tag
		if srcOK && tagOK {
			return true
		}
	}
	return false
}

// anySendMatchesRecv reports whether any send-kind op of rank `from` could
// satisfy the receive posted by rank `to`.
func anySendMatchesRecv(fromOps []RankOp, from, to int64, recv CommOp) bool {
	for _, s := range fromOps {
		switch s.Kind {
		case OpSend, OpIsend, OpSendrecv:
		default:
			continue
		}
		dstOK := !s.PeerKnown || s.PeerAny || s.Peer == to
		tagOK := !s.TagKnown || s.TagAny || !recv.TagKnown || recv.TagAny || s.Tag == recv.Tag
		if dstOK && tagOK {
			return true
		}
	}
	return false
}

// receiveOps / sendOps filter a rank's ops for rendering in messages.
func receiveOps(ops []RankOp) []CommOp {
	var out []CommOp
	for _, op := range ops {
		switch op.Kind {
		case OpRecv, OpProbe, OpIrecv:
			out = append(out, op.CommOp)
		}
	}
	return out
}

func sendOps(ops []RankOp) []CommOp {
	var out []CommOp
	for _, op := range ops {
		switch op.Kind {
		case OpSend, OpIsend, OpSendrecv:
			out = append(out, op.CommOp)
		}
	}
	return out
}

// ---- check: mismatch -----------------------------------------------------

// mismatchIn compares the ranks' unconditional collective sequences; any
// divergence in kind, order, or constant root deadlocks (or mis-pairs) the
// collectives at runtime.
func mismatchIn(pkg *Package, ep *entrypoint, n int, ranks [][]RankOp) []Finding {
	seqs := make([][]CommOp, n)
	for r, ops := range ranks {
		for _, op := range ops {
			if op.Kind == OpCollective && !op.Cond && !op.InLoop {
				seqs[r] = append(seqs[r], op.CommOp)
			}
		}
	}
	for r := 1; r < n; r++ {
		i, why := firstDivergence(seqs[0], seqs[r])
		if i < 0 {
			continue
		}
		pos := ep.pos
		if i < len(seqs[0]) {
			pos = sitePos(seqs[0][i])
		} else if i < len(seqs[r]) {
			pos = sitePos(seqs[r][i])
		}
		return []Finding{{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "mismatch",
			Message: fmt.Sprintf("in a %d-rank world, rank 0 and rank %d execute different collective sequences (%s at step %d): rank 0 runs %s, rank %d runs %s",
				n, r, why, i, renderOps(seqs[0], 8), r, renderOps(seqs[r], 8)),
		}}
	}
	return nil
}

// firstDivergence returns the index and kind of the first difference
// between two collective sequences, or -1 when they agree.
func firstDivergence(a, b []CommOp) (int, string) {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Name != b[i].Name {
			return i, a[i].Name + " vs " + b[i].Name
		}
		if a[i].RootKnown && b[i].RootKnown && a[i].Root != b[i].Root {
			return i, fmt.Sprintf("%s root %d vs %d", a[i].Name, a[i].Root, b[i].Root)
		}
	}
	if len(a) != len(b) {
		i := len(a)
		if len(b) < len(a) {
			i = len(b)
		}
		return i, "sequence length"
	}
	return -1, ""
}

// ---- check: globaldeadlock -----------------------------------------------

// deadlockIn runs the scheduler and reports a reachable blocked state,
// unless phantom capacity (a weakened op that might satisfy it) exists.
func deadlockIn(pkg *Package, ep *entrypoint, n int, ranks [][]RankOp) []Finding {
	total := 0
	for _, ops := range ranks {
		total += len(ops)
	}
	if total == 0 {
		return nil
	}
	dl, ok := findDeadlock(ranks)
	if !ok || dl == nil {
		return nil
	}
	if phantomCapacity(ranks, dl.state) {
		return nil
	}
	// Report at the first blocked rank's pending op.
	pos := ep.pos
	var stacks []string
	for r, ops := range ranks {
		pc := dl.state.pcs[r]
		if pc >= len(ops) {
			stacks = append(stacks, fmt.Sprintf("rank %d finished", r))
			continue
		}
		if pos == ep.pos {
			pos = sitePos(ops[pc].CommOp)
		}
		stacks = append(stacks, fmt.Sprintf("rank %d blocked at %s (op %d of %d)",
			r, renderOp(ops[pc].CommOp), pc+1, len(ops)))
	}
	inflight := ""
	if len(dl.state.inflight) > 0 {
		inflight = fmt.Sprintf(" with %d unmatchable message(s) in flight", len(dl.state.inflight))
	}
	return []Finding{{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: "globaldeadlock",
		Message: fmt.Sprintf("in a %d-rank world a reachable schedule blocks every rank%s: %s",
			n, inflight, strings.Join(stacks, "; ")),
	}}
}

// ---- -protocol rendering -------------------------------------------------

// ProtocolDump renders the verifier's view of a package for `mpilint
// -protocol`: every entrypoint with its per-rank instantiated traces per
// world. Ops the engine treats as weakened are marked `?` (conditional)
// and `*` (in a loop).
func ProtocolDump(pkg *Package) string {
	var b strings.Builder
	for _, ep := range protocolEntrypoints(pkg) {
		worlds := ep.worlds
		if worlds == nil {
			worlds = ProtocolWorlds
		}
		pos := pkg.Fset.Position(ep.pos)
		fmt.Fprintf(&b, "%s (%s:%d)\n", ep.name, pos.Filename, pos.Line)
		for _, n := range worlds {
			ranks, ok := instantiateWorld(pkg, ep, n)
			if !ok {
				fmt.Fprintf(&b, "  world %d: (not modeled: trace too long, too deep, or recursive)\n", n)
				continue
			}
			fmt.Fprintf(&b, "  world %d:\n", n)
			for r, ops := range ranks {
				var parts []string
				for _, op := range ops {
					s := renderOp(op.CommOp)
					if op.Cond {
						s += "?"
					}
					if op.InLoop {
						s += "*"
					}
					parts = append(parts, s)
				}
				if len(parts) == 0 {
					parts = append(parts, "(no ops)")
				}
				fmt.Fprintf(&b, "    rank %d: %s\n", r, strings.Join(parts, " "))
			}
		}
	}
	return b.String()
}
