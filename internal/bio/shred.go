package bio

import "fmt"

// ShredParams controls the read simulator that fragments long sequences into
// overlapping windows. The paper shreds RefSeq sequences into 400 bp
// fragments overlapping by 200 bp to simulate sequencing reads.
type ShredParams struct {
	// FragLen is the fragment length in residues (paper: 400).
	FragLen int
	// Overlap is the overlap between consecutive fragments (paper: 200).
	Overlap int
	// MinLen drops terminal fragments shorter than this; 0 keeps all.
	MinLen int
}

// DefaultShredParams returns the paper's 400/200 shredding configuration.
func DefaultShredParams() ShredParams {
	return ShredParams{FragLen: 400, Overlap: 200, MinLen: 100}
}

// Validate reports whether the parameters are internally consistent.
func (p ShredParams) Validate() error {
	if p.FragLen <= 0 {
		return fmt.Errorf("bio: shred FragLen must be positive, got %d", p.FragLen)
	}
	if p.Overlap < 0 || p.Overlap >= p.FragLen {
		return fmt.Errorf("bio: shred Overlap must be in [0, FragLen), got %d", p.Overlap)
	}
	if p.MinLen < 0 {
		return fmt.Errorf("bio: shred MinLen must be non-negative, got %d", p.MinLen)
	}
	return nil
}

// Shred fragments one sequence into overlapping windows. Fragment IDs are
// "<parentID>/<start>-<end>" with half-open zero-based coordinates, so the
// parent and the source interval are recoverable downstream (used by the
// paper's self-hit exclusion and by the metagenomics example's truth labels).
func Shred(seq *Sequence, p ShredParams) ([]*Sequence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	step := p.FragLen - p.Overlap
	var frags []*Sequence
	for start := 0; start < seq.Len(); start += step {
		end := min(start+p.FragLen, seq.Len())
		if end-start < p.MinLen && start > 0 {
			break
		}
		frags = append(frags, &Sequence{
			ID:      fmt.Sprintf("%s/%d-%d", seq.ID, start, end),
			Desc:    seq.Desc,
			Letters: append([]byte(nil), seq.Letters[start:end]...),
		})
		if end == seq.Len() {
			break
		}
	}
	return frags, nil
}

// ShredAll fragments every sequence, concatenating the results in input
// order.
func ShredAll(seqs []*Sequence, p ShredParams) ([]*Sequence, error) {
	var all []*Sequence
	for _, s := range seqs {
		frags, err := Shred(s, p)
		if err != nil {
			return nil, err
		}
		all = append(all, frags...)
	}
	return all, nil
}

// FragmentParent extracts the parent sequence ID from a fragment ID produced
// by Shred. It returns the input unchanged when the ID does not carry a
// fragment suffix.
func FragmentParent(fragID string) string {
	for i := len(fragID) - 1; i >= 0; i-- {
		if fragID[i] == '/' {
			return fragID[:i]
		}
	}
	return fragID
}
