package bio

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDNACodes(t *testing.T) {
	cases := map[byte]int8{
		'A': 0, 'C': 1, 'G': 2, 'T': 3,
		'a': 0, 'c': 1, 'g': 2, 't': 3,
		'N': -1, 'X': -1, '-': -1, '>': -1,
	}
	for c, want := range cases {
		if got := DNACode(c); got != want {
			t.Errorf("DNACode(%q) = %d, want %d", c, got, want)
		}
	}
}

func TestProteinCodes(t *testing.T) {
	for i := 0; i < len(ProteinLetters); i++ {
		c := ProteinLetters[i]
		if got := ProteinCode(c); got != int8(i) {
			t.Errorf("ProteinCode(%q) = %d, want %d", c, got, i)
		}
	}
	if ProteinCode('U') != ProteinCode('X') {
		t.Errorf("U should map to X")
	}
	if ProteinCode('1') != -1 {
		t.Errorf("digit should be invalid")
	}
}

func TestEncodeDecodeDNARoundTrip(t *testing.T) {
	in := []byte("ACGTACGTTTGGCCAA")
	codes := EncodeDNA(in)
	out := DecodeDNA(codes)
	if !bytes.Equal(in, out) {
		t.Errorf("round trip: got %q want %q", out, in)
	}
}

func TestEncodeDNAAmbiguityDeterministic(t *testing.T) {
	in := []byte("ACGTNNNN")
	a := EncodeDNA(in)
	b := EncodeDNA(in)
	if !bytes.Equal(a, b) {
		t.Errorf("ambiguity replacement must be deterministic")
	}
	for i, c := range a {
		if c > 3 {
			t.Errorf("code[%d] = %d out of range", i, c)
		}
	}
}

func TestEncodeDecodeProteinRoundTrip(t *testing.T) {
	in := []byte("MKVLAARNDCQEGHILKMFPSTWYV")
	out := DecodeProtein(EncodeProtein(in))
	if !bytes.Equal(in, out) {
		t.Errorf("round trip: got %q want %q", out, in)
	}
}

func TestEncodeProteinUnknown(t *testing.T) {
	out := DecodeProtein(EncodeProtein([]byte("M1K")))
	if string(out) != "MXK" {
		t.Errorf("got %q want MXK", out)
	}
}

func TestCleanDNA(t *testing.T) {
	got := CleanDNA([]byte("acGTnRYx"))
	if string(got) != "ACGTNNNN" {
		t.Errorf("CleanDNA = %q", got)
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("AACGT"))
	if string(got) != "ACGTT" {
		t.Errorf("ReverseComplement = %q, want ACGTT", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := CleanDNA(raw)
		// Restrict to pure ACGT so revcomp is exactly invertible.
		for i, c := range seq {
			if c == 'N' {
				seq[i] = 'A'
			}
		}
		return bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementCodes(t *testing.T) {
	codes := EncodeDNA([]byte("AACGT"))
	rc := ReverseComplementCodes(codes)
	if string(DecodeDNA(rc)) != "ACGTT" {
		t.Errorf("ReverseComplementCodes wrong: %q", DecodeDNA(rc))
	}
}

func TestAlphabetMeta(t *testing.T) {
	if DNA.NumLetters() != 4 || Protein.NumLetters() != 24 {
		t.Errorf("NumLetters wrong")
	}
	if DNA.String() != "dna" || Protein.String() != "protein" {
		t.Errorf("String wrong")
	}
}
