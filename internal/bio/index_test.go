package bio

import (
	"os"
	"path/filepath"
	"testing"
)

func writeIndexedFasta(t *testing.T, n int) (string, []*Sequence) {
	t.Helper()
	g := NewGenerator(SynthParams{Seed: 77})
	seqs := make([]*Sequence, n)
	for i := range seqs {
		seqs[i] = g.RandomDNA(
			"seq"+string(rune('a'+i%26))+string(rune('0'+i/26)), 50+i*17)
		if i%3 == 0 {
			seqs[i].Desc = "with a description"
		}
	}
	path := filepath.Join(t.TempDir(), "indexed.fa")
	if err := WriteFastaFile(path, seqs); err != nil {
		t.Fatal(err)
	}
	return path, seqs
}

func TestIndexFastaDimensions(t *testing.T) {
	path, seqs := writeIndexedFasta(t, 9)
	ix, err := IndexFasta(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumSeqs() != 9 {
		t.Fatalf("NumSeqs = %d", ix.NumSeqs())
	}
	var want int64
	for i, s := range seqs {
		if ix.Lengths[i] != s.Len() {
			t.Errorf("length[%d] = %d, want %d", i, ix.Lengths[i], s.Len())
		}
		want += int64(s.Len())
	}
	if ix.TotalResidues() != want {
		t.Errorf("TotalResidues = %d, want %d", ix.TotalResidues(), want)
	}
	st, _ := os.Stat(path)
	if ix.Offsets[len(ix.Offsets)-1] != st.Size() {
		t.Errorf("final offset %d != file size %d", ix.Offsets[len(ix.Offsets)-1], st.Size())
	}
}

func TestIndexReadRange(t *testing.T) {
	path, seqs := writeIndexedFasta(t, 12)
	ix, err := IndexFasta(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]int{{0, 12}, {0, 1}, {11, 12}, {3, 7}, {5, 5}} {
		got, err := ix.ReadRange(tc[0], tc[1])
		if err != nil {
			t.Fatalf("ReadRange(%v): %v", tc, err)
		}
		if len(got) != tc[1]-tc[0] {
			t.Fatalf("ReadRange(%v) returned %d records", tc, len(got))
		}
		for i, s := range got {
			want := seqs[tc[0]+i]
			if s.ID != want.ID || string(s.Letters) != string(want.Letters) || s.Desc != want.Desc {
				t.Errorf("range %v record %d mismatch", tc, i)
			}
		}
	}
	if _, err := ix.ReadRange(-1, 2); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := ix.ReadRange(0, 13); err == nil {
		t.Error("overrun accepted")
	}
}

func TestIndexFastaEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.fa")
	os.WriteFile(path, nil, 0o644)
	if _, err := IndexFasta(path); err == nil {
		t.Error("empty file accepted")
	}
}

func TestIndexFastaNoTrailingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.fa")
	os.WriteFile(path, []byte(">a\nACGT\n>b\nTT"), 0o644)
	ix, err := IndexFasta(path)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumSeqs() != 2 || ix.Lengths[0] != 4 || ix.Lengths[1] != 2 {
		t.Fatalf("index = %+v", ix)
	}
	recs, err := ix.ReadRange(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Letters) != "TT" {
		t.Errorf("got %q", recs[0].Letters)
	}
}

func TestDynamicBlocks(t *testing.T) {
	path, _ := writeIndexedFasta(t, 100)
	ix, err := IndexFasta(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks := ix.DynamicBlocks(20, 5)
	// Coverage: contiguous, complete, in order.
	pos := 0
	for _, b := range blocks {
		if b[0] != pos || b[1] <= b[0] {
			t.Fatalf("blocks not contiguous at %v", b)
		}
		pos = b[1]
	}
	if pos != 100 {
		t.Fatalf("blocks cover %d of 100", pos)
	}
	// Tapering: the last block is smaller than the first.
	first := blocks[0][1] - blocks[0][0]
	last := blocks[len(blocks)-1][1] - blocks[len(blocks)-1][0]
	if last >= first {
		t.Errorf("no tapering: first %d last %d", first, last)
	}
}

func TestDynamicBlocksDefaults(t *testing.T) {
	path, _ := writeIndexedFasta(t, 10)
	ix, _ := IndexFasta(path)
	blocks := ix.DynamicBlocks(0, 0)
	pos := 0
	for _, b := range blocks {
		if b[0] != pos {
			t.Fatalf("gap at %v", b)
		}
		pos = b[1]
	}
	if pos != 10 {
		t.Fatalf("coverage %d", pos)
	}
}
