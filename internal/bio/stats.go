package bio

import "sort"

// SeqStats summarizes a sequence collection, the numbers a database README
// quotes (and cmd/seqstat prints).
type SeqStats struct {
	// Count is the number of sequences.
	Count int
	// TotalResidues sums all lengths.
	TotalResidues int64
	// MinLen/MaxLen/MeanLen describe the length distribution.
	MinLen, MaxLen int
	MeanLen        float64
	// N50 is the standard assembly statistic: the length L such that
	// sequences of length >= L cover at least half the total residues.
	N50 int
	// GC is the fraction of G/C letters among ACGT letters (DNA only;
	// 0 when no ACGT letters are present).
	GC float64
}

// ComputeSeqStats scans a collection.
func ComputeSeqStats(seqs []*Sequence) SeqStats {
	var st SeqStats
	if len(seqs) == 0 {
		return st
	}
	st.Count = len(seqs)
	lengths := make([]int, len(seqs))
	var gc, acgt int64
	st.MinLen = seqs[0].Len()
	for i, s := range seqs {
		l := s.Len()
		lengths[i] = l
		st.TotalResidues += int64(l)
		if l < st.MinLen {
			st.MinLen = l
		}
		if l > st.MaxLen {
			st.MaxLen = l
		}
		for _, c := range s.Letters {
			switch c {
			case 'G', 'g', 'C', 'c':
				gc++
				acgt++
			case 'A', 'a', 'T', 't':
				acgt++
			}
		}
	}
	st.MeanLen = float64(st.TotalResidues) / float64(st.Count)
	if acgt > 0 {
		st.GC = float64(gc) / float64(acgt)
	}
	// N50: walk lengths descending until half the residues are covered.
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	var acc int64
	half := (st.TotalResidues + 1) / 2
	for _, l := range lengths {
		acc += int64(l)
		if acc >= half {
			st.N50 = l
			break
		}
	}
	return st
}
