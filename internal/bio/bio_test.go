package bio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTwoBitRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 5, 17, 1000} {
		g := NewGenerator(SynthParams{Seed: int64(n)})
		seq := g.RandomDNA("s", n)
		codes := EncodeDNA(seq.Letters)
		tb := PackDNA(codes)
		if tb.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tb.Len())
		}
		if !bytes.Equal(tb.UnpackAll(), codes) {
			t.Fatalf("n=%d: unpack mismatch", n)
		}
		for i := 0; i < n; i++ {
			if tb.Base(i) != codes[i] {
				t.Fatalf("n=%d: Base(%d) = %d want %d", n, i, tb.Base(i), codes[i])
			}
		}
	}
}

func TestTwoBitPartialUnpack(t *testing.T) {
	codes := EncodeDNA([]byte("ACGTACGTAC"))
	tb := PackDNA(codes)
	got := tb.Unpack(3, 7)
	if !bytes.Equal(got, codes[3:7]) {
		t.Errorf("Unpack(3,7) = %v want %v", got, codes[3:7])
	}
}

func TestTwoBitFromPacked(t *testing.T) {
	codes := EncodeDNA([]byte("ACGTT"))
	tb := PackDNA(codes)
	tb2 := FromPacked(tb.Packed(), tb.Len())
	if !bytes.Equal(tb2.UnpackAll(), codes) {
		t.Errorf("FromPacked mismatch")
	}
}

func TestTwoBitPanics(t *testing.T) {
	tb := PackDNA(EncodeDNA([]byte("ACGT")))
	for _, f := range []func(){
		func() { tb.Unpack(-1, 2) },
		func() { tb.Unpack(0, 5) },
		func() { tb.Unpack(3, 2) },
		func() { FromPacked([]byte{0}, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPackedSize(t *testing.T) {
	for n, want := range map[int]int{0: 0, 1: 1, 4: 1, 5: 2, 8: 2, 9: 3} {
		if got := PackedSize(n); got != want {
			t.Errorf("PackedSize(%d) = %d want %d", n, got, want)
		}
	}
}

func TestShredBasic(t *testing.T) {
	seq := &Sequence{ID: "g1", Letters: bytes.Repeat([]byte("ACGT"), 250)} // 1000 bp
	frags, err := Shred(seq, DefaultShredParams())
	if err != nil {
		t.Fatal(err)
	}
	// Starts: 0,200,400,600; the 600-1000 fragment reaches the end, so no
	// redundant suffix fragments follow.
	if len(frags) != 4 {
		t.Fatalf("got %d fragments, want 4", len(frags))
	}
	if frags[0].ID != "g1/0-400" || frags[3].ID != "g1/600-1000" {
		t.Errorf("fragment IDs wrong: %s, %s", frags[0].ID, frags[3].ID)
	}
	if frags[3].Len() != 400 {
		t.Errorf("terminal fragment len = %d", frags[3].Len())
	}
}

func TestShredDropsShortTerminal(t *testing.T) {
	seq := &Sequence{ID: "g", Letters: make([]byte, 450)}
	frags, err := Shred(seq, ShredParams{FragLen: 400, Overlap: 200, MinLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Starts 0 (400), 200 (250), 400 (50 -> dropped).
	if len(frags) != 2 {
		t.Fatalf("got %d fragments, want 2", len(frags))
	}
}

func TestShredShortSequence(t *testing.T) {
	seq := &Sequence{ID: "g", Letters: make([]byte, 50)}
	frags, err := Shred(seq, DefaultShredParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0].Len() != 50 {
		t.Fatalf("short sequence should yield itself: %+v", frags)
	}
}

func TestShredValidation(t *testing.T) {
	bad := []ShredParams{
		{FragLen: 0, Overlap: 0},
		{FragLen: 100, Overlap: 100},
		{FragLen: 100, Overlap: -1},
		{FragLen: 100, Overlap: 10, MinLen: -5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestShredCoverage(t *testing.T) {
	// Every base of the parent must be covered by at least one fragment.
	g := NewGenerator(SynthParams{Seed: 7})
	seq := g.RandomDNA("g", 3271)
	frags, err := Shred(seq, ShredParams{FragLen: 400, Overlap: 200})
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, seq.Len())
	for _, f := range frags {
		var start, end int
		if _, err := sscanFragment(f.ID, &start, &end); err != nil {
			t.Fatalf("bad fragment id %q", f.ID)
		}
		if !bytes.Equal(f.Letters, seq.Letters[start:end]) {
			t.Fatalf("fragment %s letters mismatch", f.ID)
		}
		for i := start; i < end; i++ {
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("base %d not covered", i)
		}
	}
}

func sscanFragment(id string, start, end *int) (int, error) {
	slash := strings.LastIndexByte(id, '/')
	var s, e int
	n, err := fmtSscanf(id[slash+1:], &s, &e)
	*start, *end = s, e
	return n, err
}

func fmtSscanf(s string, a, b *int) (int, error) {
	dash := strings.IndexByte(s, '-')
	var err error
	*a, err = atoi(s[:dash])
	if err != nil {
		return 0, err
	}
	*b, err = atoi(s[dash+1:])
	if err != nil {
		return 1, err
	}
	return 2, nil
}

func atoi(s string) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, &parseError{s}
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, nil
}

type parseError struct{ s string }

func (e *parseError) Error() string { return "bad int: " + e.s }

func TestFragmentParent(t *testing.T) {
	if got := FragmentParent("taxon12/400-800"); got != "taxon12" {
		t.Errorf("got %q", got)
	}
	if got := FragmentParent("plain"); got != "plain" {
		t.Errorf("got %q", got)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(SynthParams{Seed: 42}).RandomDNA("x", 500)
	b := NewGenerator(SynthParams{Seed: 42}).RandomDNA("x", 500)
	if !bytes.Equal(a.Letters, b.Letters) {
		t.Errorf("same seed must give same sequence")
	}
	c := NewGenerator(SynthParams{Seed: 43}).RandomDNA("x", 500)
	if bytes.Equal(a.Letters, c.Letters) {
		t.Errorf("different seeds should differ")
	}
}

func TestGeneratorGCContent(t *testing.T) {
	g := NewGenerator(SynthParams{Seed: 1, GC: 0.7})
	seq := g.RandomDNA("x", 100000)
	gc := 0
	for _, c := range seq.Letters {
		if c == 'G' || c == 'C' {
			gc++
		}
	}
	frac := float64(gc) / float64(seq.Len())
	if math.Abs(frac-0.7) > 0.02 {
		t.Errorf("GC fraction = %.3f, want ~0.7", frac)
	}
}

func TestRandomProteinComposition(t *testing.T) {
	g := NewGenerator(SynthParams{Seed: 1})
	seq := g.RandomProtein("p", 200000)
	counts := make(map[byte]int)
	for _, c := range seq.Letters {
		counts[c]++
	}
	// Leucine should be the most common residue (9%), tryptophan rare (1.3%).
	if counts['L'] < counts['W'] {
		t.Errorf("L (%d) should outnumber W (%d)", counts['L'], counts['W'])
	}
	fracL := float64(counts['L']) / float64(seq.Len())
	if math.Abs(fracL-0.0902) > 0.01 {
		t.Errorf("L frequency = %.4f, want ~0.09", fracL)
	}
}

func TestMutateIdentity(t *testing.T) {
	g := NewGenerator(SynthParams{Seed: 5})
	parent := g.RandomDNA("p", 20000)
	child := g.Mutate(parent, "c", 0.1, 0, DNA)
	if child.Len() != parent.Len() {
		t.Fatalf("no indels requested but length changed")
	}
	diff := 0
	for i := range parent.Letters {
		if parent.Letters[i] != child.Letters[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(parent.Len())
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("substitution rate = %.3f, want ~0.1", frac)
	}
}

func TestMutateIndels(t *testing.T) {
	g := NewGenerator(SynthParams{Seed: 6})
	parent := g.RandomDNA("p", 10000)
	child := g.Mutate(parent, "c", 0, 0.02, DNA)
	// Insertions and deletions are balanced in expectation; the length should
	// stay within a few percent of the parent.
	if d := child.Len() - parent.Len(); d < -300 || d > 300 {
		t.Errorf("length drift too large: %d", d)
	}
}

func TestGenerateGenomeSet(t *testing.T) {
	g := NewGenerator(SynthParams{Seed: 2})
	set := g.GenerateGenomeSet(GenomeSetParams{
		NTaxa: 5, MinLen: 1000, MaxLen: 5000,
		StrainsPerGenome: 2, StrainIdentity: 0.95,
	})
	if len(set.Genomes) != 5 {
		t.Fatalf("got %d genomes", len(set.Genomes))
	}
	all := set.All()
	if len(all) != 5*3 {
		t.Fatalf("All() returned %d sequences, want 15", len(all))
	}
	for i, genome := range set.Genomes {
		if genome.Len() < 1000 || genome.Len() > 5000 {
			t.Errorf("genome %d length %d out of range", i, genome.Len())
		}
		if len(set.Strains[i]) != 2 {
			t.Errorf("genome %d has %d strains", i, len(set.Strains[i]))
		}
	}
}

func TestKmerProfileBasics(t *testing.T) {
	// "AAAA" has a single 4-mer AAAA.
	v, err := KmerProfile([]byte("AAAA"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 {
		t.Errorf("AAAA profile[0] = %f, want 1", v[0])
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("profile sum = %f", sum)
	}
}

func TestKmerProfileSkipsAmbiguity(t *testing.T) {
	v, err := KmerProfile([]byte("AANAA"), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Valid 2-mers: AA (positions 0-1) and AA (positions 3-4).
	if v[0] != 1 {
		t.Errorf("expected all weight on AA, got %f", v[0])
	}
}

func TestKmerProfileTooShort(t *testing.T) {
	v, err := KmerProfile([]byte("AC"), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range v {
		if x != 0 {
			t.Fatalf("short sequence should give zero vector")
		}
	}
}

func TestKmerProfileBadK(t *testing.T) {
	if _, err := KmerProfile([]byte("ACGT"), 0); err == nil {
		t.Errorf("k=0 should error")
	}
	if _, err := KmerProfile([]byte("ACGT"), 13); err == nil {
		t.Errorf("k=13 should error")
	}
}

func TestKmerString(t *testing.T) {
	if got := KmerString(0, 4); got != "AAAA" {
		t.Errorf("got %q", got)
	}
	if got := KmerString(0b11100100, 4); got != "TGCA" {
		t.Errorf("got %q", got)
	}
}

func TestKmerProfileNormalized(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		seq := CleanDNA(raw)
		v, err := KmerProfile(seq, 3)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range v {
			if x < 0 {
				return false
			}
			sum += x
		}
		return sum == 0 || math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileMatrix(t *testing.T) {
	seqs := []*Sequence{
		{ID: "a", Letters: []byte("ACGTACGTACGT")},
		{ID: "b", Letters: []byte("GGGGGGGGCCCC")},
	}
	m, dim, err := ProfileMatrix(seqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 256 || len(m) != 512 {
		t.Fatalf("dim=%d len=%d", dim, len(m))
	}
}

func TestRandomVectors(t *testing.T) {
	v := RandomVectors(1, 10, 4)
	if len(v) != 40 {
		t.Fatalf("len = %d", len(v))
	}
	for _, x := range v {
		if x < 0 || x >= 1 {
			t.Fatalf("component %f out of [0,1)", x)
		}
	}
	v2 := RandomVectors(1, 10, 4)
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("not deterministic")
		}
	}
}

func TestClusteredVectors(t *testing.T) {
	data, labels := ClusteredVectors(3, 100, 5, 4, 0.01)
	if len(data) != 500 || len(labels) != 100 {
		t.Fatalf("shapes wrong")
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Errorf("expected multiple clusters used")
	}
	// Same-cluster vectors must be much closer than cross-cluster on average.
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			d := 0.0
			for k := 0; k < 5; k++ {
				diff := data[i*5+k] - data[j*5+k]
				d += diff * diff
			}
			if labels[i] == labels[j] {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate draw")
	}
	if same/float64(nSame) >= cross/float64(nCross) {
		t.Errorf("cluster structure not recoverable")
	}
}

func TestComputeSeqStats(t *testing.T) {
	seqs := []*Sequence{
		{ID: "a", Letters: []byte("GGCC")},                    // 4, all GC
		{ID: "b", Letters: []byte("AAAATTTT")},                // 8, no GC
		{ID: "c", Letters: []byte(strings.Repeat("ACGT", 5))}, // 20, half GC
	}
	st := ComputeSeqStats(seqs)
	if st.Count != 3 || st.TotalResidues != 32 {
		t.Fatalf("count/residues = %d/%d", st.Count, st.TotalResidues)
	}
	if st.MinLen != 4 || st.MaxLen != 20 {
		t.Errorf("min/max = %d/%d", st.MinLen, st.MaxLen)
	}
	if math.Abs(st.MeanLen-32.0/3) > 1e-9 {
		t.Errorf("mean = %f", st.MeanLen)
	}
	// N50: lengths desc 20,8,4; half of 32 is 16; 20 >= 16 -> N50 = 20.
	if st.N50 != 20 {
		t.Errorf("N50 = %d", st.N50)
	}
	// GC = (4 + 0 + 10) / 32.
	if math.Abs(st.GC-14.0/32) > 1e-9 {
		t.Errorf("GC = %f", st.GC)
	}
	if empty := ComputeSeqStats(nil); empty.Count != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestSplitFastaBySizeProperty(t *testing.T) {
	// Every block respects the target unless it holds a single oversize
	// sequence, and blocks partition the input exactly.
	f := func(lens []uint16, targetRaw uint16) bool {
		if len(lens) == 0 {
			return true
		}
		target := int(targetRaw%5000) + 1
		seqs := make([]*Sequence, len(lens))
		for i, l := range lens {
			seqs[i] = &Sequence{ID: KmerString(i%256, 4), Letters: make([]byte, int(l%3000))}
		}
		blocks := SplitFastaBySize(seqs, target)
		idx := 0
		for _, b := range blocks {
			if len(b) == 0 {
				return false
			}
			total := 0
			for _, s := range b {
				if s != seqs[idx] {
					return false
				}
				idx++
				total += s.Len()
			}
			if total > target && len(b) > 1 {
				return false
			}
		}
		return idx == len(seqs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
