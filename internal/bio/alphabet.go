// Package bio provides the sequence substrate shared by the BLAST and SOM
// pipelines: alphabets, FASTA I/O, 2-bit nucleotide packing, a read
// shredder, synthetic data generators with planted homologies, and k-mer
// composition vectors.
//
// The package is deliberately self-contained (stdlib only) and deterministic:
// every randomized component takes an explicit seed so that experiments are
// reproducible run to run.
package bio

import "fmt"

// Alphabet identifies the residue alphabet of a sequence.
type Alphabet int

const (
	// DNA is the 4-letter nucleotide alphabet ACGT. Ambiguity codes are
	// accepted on input and canonicalized (see CleanDNA).
	DNA Alphabet = iota
	// Protein is the 20-letter amino-acid alphabet plus X for unknown.
	Protein
)

func (a Alphabet) String() string {
	switch a {
	case DNA:
		return "dna"
	case Protein:
		return "protein"
	default:
		return fmt.Sprintf("Alphabet(%d)", int(a))
	}
}

// NumLetters reports the size of the encoded alphabet: 4 for DNA and 25 for
// protein (20 residues, plus B, Z, X, U and '*' mapped to distinct codes so
// scoring tables can treat them individually).
func (a Alphabet) NumLetters() int {
	switch a {
	case DNA:
		return 4
	case Protein:
		return ProteinAlphabetSize
	default:
		return 0
	}
}

// ProteinAlphabetSize is the number of distinct encoded protein letters.
const ProteinAlphabetSize = 24

// ProteinLetters lists the encoded protein alphabet in code order: code i is
// ProteinLetters[i]. The first 20 are the standard amino acids in the
// conventional BLOSUM62 row ordering; B and Z are the ambiguity codes, X is
// unknown, and '*' is a stop.
const ProteinLetters = "ARNDCQEGHILKMFPSTWYVBZX*"

// DNALetters lists the encoded DNA alphabet in code order.
const DNALetters = "ACGT"

var (
	dnaCode     [256]int8
	proteinCode [256]int8
)

func init() {
	for i := range dnaCode {
		dnaCode[i] = -1
		proteinCode[i] = -1
	}
	for i := 0; i < len(DNALetters); i++ {
		c := DNALetters[i]
		dnaCode[c] = int8(i)
		dnaCode[c+'a'-'A'] = int8(i)
	}
	for i := 0; i < len(ProteinLetters); i++ {
		c := ProteinLetters[i]
		proteinCode[c] = int8(i)
		if c >= 'A' && c <= 'Z' {
			proteinCode[c+'a'-'A'] = int8(i)
		}
	}
	// U (selenocysteine), O (pyrrolysine) and J (I/L ambiguity) fold into X;
	// '-' is invalid.
	for _, c := range []byte("UuOoJj") {
		proteinCode[c] = proteinCode['X']
	}
}

// DNACode returns the 2-bit code (0..3) for a nucleotide letter, or -1 if the
// byte is not one of acgtACGT.
func DNACode(c byte) int8 { return dnaCode[c] }

// ProteinCode returns the code (0..24) for an amino-acid letter, or -1 if the
// byte is not a recognized residue.
func ProteinCode(c byte) int8 { return proteinCode[c] }

// EncodeDNA converts an ASCII nucleotide sequence to 2-bit codes. Ambiguous
// or invalid letters are replaced by deterministic pseudo-random ACGT letters
// derived from their position, mirroring how BLAST database formatting
// replaces ambiguity codes in its 2-bit representation.
func EncodeDNA(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, c := range seq {
		code := dnaCode[c]
		if code < 0 {
			code = int8(splitmix64(uint64(i)+0x9e3779b9) & 3)
		}
		out[i] = byte(code)
	}
	return out
}

// AppendEncodeDNA is EncodeDNA in append style: it appends the 2-bit codes
// of seq to dst and returns the extended slice, reusing dst's capacity.
// Scan loops that encode one database sequence per iteration use it with a
// per-worker buffer to avoid a fresh allocation per sequence.
func AppendEncodeDNA(dst, seq []byte) []byte {
	off := len(dst)
	dst = append(dst, seq...)
	out := dst[off:]
	for i, c := range seq {
		code := dnaCode[c]
		if code < 0 {
			code = int8(splitmix64(uint64(i)+0x9e3779b9) & 3)
		}
		out[i] = byte(code)
	}
	return dst
}

// DecodeDNA converts 2-bit codes back to ASCII letters.
func DecodeDNA(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[i] = DNALetters[c&3]
	}
	return out
}

// EncodeProtein converts an ASCII amino-acid sequence to codes 0..24.
// Unrecognized bytes become X.
func EncodeProtein(seq []byte) []byte {
	out := make([]byte, len(seq))
	xCode := byte(proteinCode['X'])
	for i, c := range seq {
		code := proteinCode[c]
		if code < 0 {
			out[i] = xCode
		} else {
			out[i] = byte(code)
		}
	}
	return out
}

// AppendEncodeProtein is EncodeProtein in append style: it appends the
// codes of seq to dst and returns the extended slice, reusing dst's
// capacity.
func AppendEncodeProtein(dst, seq []byte) []byte {
	off := len(dst)
	dst = append(dst, seq...)
	out := dst[off:]
	xCode := byte(proteinCode['X'])
	for i, c := range seq {
		code := proteinCode[c]
		if code < 0 {
			out[i] = xCode
		} else {
			out[i] = byte(code)
		}
	}
	return dst
}

// DecodeProtein converts protein codes back to ASCII letters.
func DecodeProtein(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		if int(c) < len(ProteinLetters) {
			out[i] = ProteinLetters[c]
		} else {
			out[i] = 'X'
		}
	}
	return out
}

// CleanDNA returns seq with every byte that is not acgtACGT replaced by 'N'
// and lower case folded to upper case. The input is not modified.
func CleanDNA(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, c := range seq {
		if dnaCode[c] >= 0 {
			if c >= 'a' {
				c -= 'a' - 'A'
			}
			out[i] = c
		} else {
			out[i] = 'N'
		}
	}
	return out
}

// ReverseComplement returns the reverse complement of an ASCII DNA sequence.
// Non-ACGT bytes map to 'N'.
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, c := range seq {
		out[len(seq)-1-i] = complementBase(c)
	}
	return out
}

// ReverseComplementCodes reverse-complements a 2-bit coded DNA sequence in a
// newly allocated slice. Complement of code c is 3-c (A<->T, C<->G).
func ReverseComplementCodes(codes []byte) []byte {
	out := make([]byte, len(codes))
	for i, c := range codes {
		out[len(codes)-1-i] = 3 - (c & 3)
	}
	return out
}

func complementBase(c byte) byte {
	switch c {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	default:
		return 'N'
	}
}

// splitmix64 is the SplitMix64 mixing function, used for cheap deterministic
// position-derived pseudo-randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
