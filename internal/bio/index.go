package bio

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// FastaIndex records the byte offset and basic dimensions of every record
// in a FASTA file, so arbitrary ranges of sequences can be read without
// parsing the whole file. This implements the paper's future-work proposal
// of "eliminating the need to pre-partition the query dataset by building
// an index of sequence offsets in the input FASTA file", which lets query
// block sizes be chosen dynamically at run time.
type FastaIndex struct {
	// Path is the indexed file.
	Path string
	// Offsets[i] is the byte offset of record i's '>' defline; the slice
	// has one extra entry holding the file size.
	Offsets []int64
	// Lengths[i] is record i's residue count.
	Lengths []int
}

// NumSeqs reports the number of indexed records.
func (ix *FastaIndex) NumSeqs() int { return len(ix.Lengths) }

// TotalResidues sums all record lengths.
func (ix *FastaIndex) TotalResidues() int64 {
	var t int64
	for _, l := range ix.Lengths {
		t += int64(l)
	}
	return t
}

// IndexFasta scans a FASTA file once and builds its offset index.
func IndexFasta(path string) (*FastaIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix := &FastaIndex{Path: path}
	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	curLen := -1 // -1: before first record
	for {
		line, err := br.ReadBytes('\n')
		isEOF := err == io.EOF
		if err != nil && !isEOF {
			return nil, err
		}
		if len(line) > 0 {
			trimmed := line
			for len(trimmed) > 0 && (trimmed[len(trimmed)-1] == '\n' || trimmed[len(trimmed)-1] == '\r') {
				trimmed = trimmed[:len(trimmed)-1]
			}
			if len(trimmed) > 0 && trimmed[0] == '>' {
				if curLen >= 0 {
					ix.Lengths = append(ix.Lengths, curLen)
				}
				ix.Offsets = append(ix.Offsets, offset)
				curLen = 0
			} else if curLen >= 0 {
				for _, c := range trimmed {
					if c != ' ' && c != '\t' {
						curLen++
					}
				}
			}
		}
		offset += int64(len(line))
		if isEOF {
			break
		}
	}
	if curLen >= 0 {
		ix.Lengths = append(ix.Lengths, curLen)
	}
	if len(ix.Offsets) == 0 {
		return nil, fmt.Errorf("bio: %s contains no FASTA records", path)
	}
	ix.Offsets = append(ix.Offsets, offset)
	return ix, nil
}

// ReadRange parses records [lo, hi) directly from the indexed file.
func (ix *FastaIndex) ReadRange(lo, hi int) ([]*Sequence, error) {
	if lo < 0 || hi > ix.NumSeqs() || lo > hi {
		return nil, fmt.Errorf("bio: index range [%d,%d) out of bounds (n=%d)", lo, hi, ix.NumSeqs())
	}
	if lo == hi {
		return nil, nil
	}
	f, err := os.Open(ix.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size := ix.Offsets[hi] - ix.Offsets[lo]
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, ix.Offsets[lo]); err != nil {
		return nil, fmt.Errorf("bio: reading records [%d,%d): %w", lo, hi, err)
	}
	return ReadAllFasta(bytesReader(buf))
}

// bytesReader avoids importing bytes just for one call site.
type byteSliceReader struct {
	data []byte
	pos  int
}

func bytesReader(b []byte) io.Reader { return &byteSliceReader{data: b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// DynamicBlocks plans query block boundaries with progressively smaller
// blocks toward the end of the set — the paper's proposal for "a more
// uniform filling of the cores" at the end of each iteration. The first
// ~3/4 of queries use baseSize blocks; the tail halves the block size
// repeatedly down to minSize. It returns [lo, hi) index ranges covering
// all records.
func (ix *FastaIndex) DynamicBlocks(baseSize, minSize int) [][2]int {
	if baseSize <= 0 {
		baseSize = 1000
	}
	if minSize <= 0 || minSize > baseSize {
		minSize = max(baseSize/8, 1)
	}
	n := ix.NumSeqs()
	var blocks [][2]int
	pos := 0
	// Bulk region: full-size blocks for the first 3/4.
	bulkEnd := n * 3 / 4
	for pos < bulkEnd && n-pos > baseSize {
		blocks = append(blocks, [2]int{pos, pos + baseSize})
		pos += baseSize
	}
	// Tapered tail: halve until minSize.
	size := baseSize
	for pos < n {
		if size > minSize {
			size = max(size/2, minSize)
		}
		hi := min(pos+size, n)
		blocks = append(blocks, [2]int{pos, hi})
		pos = hi
	}
	return blocks
}
