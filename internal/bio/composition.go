package bio

import "fmt"

// KmerProfile computes the k-mer frequency vector of a DNA sequence: the
// normalized counts of all 4^k words, in lexicographic ACGT order. This is
// the tetranucleotide composition space (k=4) in which the paper's
// metagenomic SOM use case clusters sequences.
//
// Windows containing non-ACGT letters are skipped. The returned vector sums
// to 1 when at least one valid window exists, otherwise it is all zeros.
func KmerProfile(seq []byte, k int) ([]float64, error) {
	if k <= 0 || k > 12 {
		return nil, fmt.Errorf("bio: KmerProfile k must be in 1..12, got %d", k)
	}
	dim := 1 << (2 * k)
	counts := make([]float64, dim)
	mask := uint32(dim - 1)
	var word uint32
	valid := 0 // number of consecutive valid bases ending at current position
	total := 0
	for _, c := range seq {
		code := DNACode(c)
		if code < 0 {
			valid = 0
			word = 0
			continue
		}
		word = (word<<2 | uint32(code)) & mask
		valid++
		if valid >= k {
			counts[word]++
			total++
		}
	}
	if total > 0 {
		inv := 1 / float64(total)
		for i := range counts {
			counts[i] *= inv
		}
	}
	return counts, nil
}

// TetraProfile is KmerProfile with k=4 (dimension 256), the standard
// composition signature for metagenomic binning.
func TetraProfile(seq []byte) []float64 {
	v, err := KmerProfile(seq, 4)
	if err != nil {
		panic(err) // k=4 is always valid
	}
	return v
}

// KmerString returns the k-mer spelled by the given lexicographic index, e.g.
// KmerString(0, 4) == "AAAA".
func KmerString(index, k int) string {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = DNALetters[index&3]
		index >>= 2
	}
	return string(out)
}

// ProfileMatrix computes k-mer profiles for a set of sequences, flattened
// row-major into a single []float64 of n*4^k values, the dense-matrix layout
// consumed by the parallel SOM.
func ProfileMatrix(seqs []*Sequence, k int) ([]float64, int, error) {
	dim := 1 << (2 * k)
	out := make([]float64, 0, len(seqs)*dim)
	for _, s := range seqs {
		v, err := KmerProfile(s.Letters, k)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, v...)
	}
	return out, dim, nil
}
