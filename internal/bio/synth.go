package bio

import (
	"fmt"
	"math"
	"math/rand"
)

// Robinson–Robinson amino-acid background frequencies, indexed by the first
// 20 codes of ProteinLetters (ARNDCQEGHILKMFPSTWYV). These are the standard
// frequencies used by BLAST's Karlin–Altschul statistics.
var RobinsonFreqs = [20]float64{
	0.07805, // A
	0.05129, // R
	0.04487, // N
	0.05364, // D
	0.01925, // C
	0.04264, // Q
	0.06295, // E
	0.07377, // G
	0.02199, // H
	0.05142, // I
	0.09019, // L
	0.05744, // K
	0.02243, // M
	0.03856, // F
	0.05203, // P
	0.07120, // S
	0.05841, // T
	0.01330, // W
	0.03216, // Y
	0.06441, // V
}

// SynthParams configures the synthetic sequence generator.
type SynthParams struct {
	// Seed makes generation deterministic.
	Seed int64
	// GC is the genome GC content in [0,1] (DNA only); 0 means 0.5.
	GC float64
}

// Generator produces deterministic synthetic sequence data with planted
// homologies. It substitutes for the NCBI reference databases used by the
// paper: what matters for the parallel experiments is the workload shape
// (many sequences, skewed and irregular similarity structure), not the exact
// biology.
type Generator struct {
	rng *rand.Rand
	p   SynthParams
}

// NewGenerator returns a generator with the given parameters.
func NewGenerator(p SynthParams) *Generator {
	if p.GC == 0 {
		p.GC = 0.5
	}
	return &Generator{rng: rand.New(rand.NewSource(p.Seed)), p: p}
}

// RandomDNA returns a random DNA sequence of length n with the configured GC
// content.
func (g *Generator) RandomDNA(id string, n int) *Sequence {
	letters := make([]byte, n)
	for i := range letters {
		r := g.rng.Float64()
		switch {
		case r < g.p.GC/2:
			letters[i] = 'G'
		case r < g.p.GC:
			letters[i] = 'C'
		case r < g.p.GC+(1-g.p.GC)/2:
			letters[i] = 'A'
		default:
			letters[i] = 'T'
		}
	}
	return &Sequence{ID: id, Letters: letters}
}

// RandomProtein returns a random protein sequence of length n drawn from the
// Robinson–Robinson background distribution.
func (g *Generator) RandomProtein(id string, n int) *Sequence {
	letters := make([]byte, n)
	for i := range letters {
		letters[i] = ProteinLetters[g.sampleResidue()]
	}
	return &Sequence{ID: id, Letters: letters}
}

func (g *Generator) sampleResidue() int {
	r := g.rng.Float64()
	acc := 0.0
	for i, f := range RobinsonFreqs {
		acc += f
		if r < acc {
			return i
		}
	}
	return 19 // V; reachable only through rounding
}

// Mutate returns a copy of seq with approximately rate*len substitutions and
// indelRate*len single-residue indels, simulating evolutionary divergence.
// The alphabet is inferred from the sequence content via alpha.
func (g *Generator) Mutate(seq *Sequence, id string, rate, indelRate float64, alpha Alphabet) *Sequence {
	out := make([]byte, 0, seq.Len()+8)
	for _, c := range seq.Letters {
		r := g.rng.Float64()
		switch {
		case r < indelRate/2:
			// Deletion: skip this residue.
		case r < indelRate:
			// Insertion: keep the residue and add a random one.
			out = append(out, c, g.randomLetter(alpha))
		case r < indelRate+rate:
			out = append(out, g.substitute(c, alpha))
		default:
			out = append(out, c)
		}
	}
	return &Sequence{ID: id, Desc: "mutated from " + seq.ID, Letters: out}
}

func (g *Generator) randomLetter(alpha Alphabet) byte {
	if alpha == DNA {
		return DNALetters[g.rng.Intn(4)]
	}
	return ProteinLetters[g.sampleResidue()]
}

func (g *Generator) substitute(c byte, alpha Alphabet) byte {
	for {
		n := g.randomLetter(alpha)
		if n != c {
			return n
		}
	}
}

// GenomeSet describes a synthetic reference collection: nTaxa "genomes" whose
// lengths are drawn log-uniformly in [minLen, maxLen]. For each genome,
// related "strains" at the given identity are planted so that database
// searches find real, unevenly distributed homologies — the source of the
// irregular per-query cost the paper's load-balancing analysis depends on.
type GenomeSet struct {
	// Genomes are the primary reference sequences.
	Genomes []*Sequence
	// Strains maps genome index to its derived strain sequences.
	Strains [][]*Sequence
}

// GenomeSetParams configures GenerateGenomeSet.
type GenomeSetParams struct {
	NTaxa            int
	MinLen, MaxLen   int
	StrainsPerGenome int
	// StrainIdentity is the expected residue identity of each strain with its
	// parent (e.g. 0.9 leaves ~10% substitutions).
	StrainIdentity float64
}

// GenerateGenomeSet builds a synthetic reference collection.
func (g *Generator) GenerateGenomeSet(p GenomeSetParams) *GenomeSet {
	if p.NTaxa <= 0 || p.MinLen <= 0 || p.MaxLen < p.MinLen {
		panic("bio: invalid GenomeSetParams")
	}
	set := &GenomeSet{
		Genomes: make([]*Sequence, p.NTaxa),
		Strains: make([][]*Sequence, p.NTaxa),
	}
	for i := 0; i < p.NTaxa; i++ {
		n := g.logUniformLen(p.MinLen, p.MaxLen)
		genome := g.RandomDNA(fmt.Sprintf("taxon%04d", i), n)
		set.Genomes[i] = genome
		rate := 1 - p.StrainIdentity
		for s := 0; s < p.StrainsPerGenome; s++ {
			id := fmt.Sprintf("taxon%04d.s%d", i, s+1)
			set.Strains[i] = append(set.Strains[i], g.Mutate(genome, id, rate, rate/10, DNA))
		}
	}
	return set
}

// All returns genomes and strains flattened in deterministic order.
func (s *GenomeSet) All() []*Sequence {
	var all []*Sequence
	for i, genome := range s.Genomes {
		all = append(all, genome)
		all = append(all, s.Strains[i]...)
	}
	return all
}

func (g *Generator) logUniformLen(lo, hi int) int {
	if lo == hi {
		return lo
	}
	// Log-uniform between lo and hi gives a skewed length distribution like
	// real sequence databases.
	u := g.rng.Float64()
	ratio := float64(hi) / float64(lo)
	n := int(float64(lo) * math.Pow(ratio, u))
	return max(lo, min(hi, n))
}

// RandomVectors returns n vectors of dimension dim with components uniform in
// [0,1), flattened row-major. Used by the SOM benchmarks (paper: 81,920
// random 256-d vectors; Fig. 8: 10,000 random 500-d vectors).
func RandomVectors(seed int64, n, dim int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n*dim)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// RandomRGB returns n random RGB color vectors (dim 3, components in [0,1)),
// as used by the paper's Fig. 7 correctness check.
func RandomRGB(seed int64, n int) []float64 {
	return RandomVectors(seed, n, 3)
}

// ClusteredVectors returns n vectors of dimension dim drawn from k Gaussian
// clusters with the given within-cluster standard deviation; centers are
// uniform in [0,1). It returns the flattened data and the true cluster label
// of each vector. Useful for SOM quality tests where structure must be
// recoverable.
func ClusteredVectors(seed int64, n, dim, k int, sigma float64) (data []float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float64, k*dim)
	for i := range centers {
		centers[i] = rng.Float64()
	}
	data = make([]float64, n*dim)
	labels = make([]int, n)
	for v := 0; v < n; v++ {
		c := rng.Intn(k)
		labels[v] = c
		for d := 0; d < dim; d++ {
			data[v*dim+d] = centers[c*dim+d] + rng.NormFloat64()*sigma
		}
	}
	return data, labels
}
