package bio

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Sequence is a named biological sequence in ASCII letters.
type Sequence struct {
	// ID is the first whitespace-delimited token of the FASTA defline.
	ID string
	// Desc is the remainder of the defline after the ID, possibly empty.
	Desc string
	// Letters holds the residues in ASCII.
	Letters []byte
}

// Len reports the sequence length in residues.
func (s *Sequence) Len() int { return len(s.Letters) }

// FastaReader reads FASTA records from an underlying reader.
type FastaReader struct {
	br   *bufio.Reader
	next []byte // buffered defline of the next record (without '>')
	eof  bool
}

// NewFastaReader returns a reader that parses FASTA records from r.
func NewFastaReader(r io.Reader) *FastaReader {
	return &FastaReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF after the last one. Blank lines
// and leading junk before the first '>' are skipped. Sequence lines are
// concatenated with interior whitespace removed.
func (fr *FastaReader) Read() (*Sequence, error) {
	defline := fr.next
	fr.next = nil
	for defline == nil {
		if fr.eof {
			return nil, io.EOF
		}
		line, err := fr.readLine()
		if err == io.EOF {
			fr.eof = true
			if len(line) == 0 {
				return nil, io.EOF
			}
		} else if err != nil {
			return nil, err
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			defline = append([]byte(nil), line[1:]...)
		}
		// Non-defline junk before the first record is skipped.
	}

	seq := &Sequence{}
	id, desc, _ := strings.Cut(string(defline), " ")
	seq.ID = id
	seq.Desc = strings.TrimSpace(desc)

	var letters []byte
	for {
		if fr.eof {
			break
		}
		line, err := fr.readLine()
		if err == io.EOF {
			fr.eof = true
		} else if err != nil {
			return nil, err
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		if trimmed[0] == '>' {
			fr.next = append([]byte(nil), trimmed[1:]...)
			break
		}
		for _, c := range trimmed {
			if c != ' ' && c != '\t' {
				letters = append(letters, c)
			}
		}
	}
	seq.Letters = letters
	return seq, nil
}

// readLine reads one line, tolerating lines longer than the buffer.
func (fr *FastaReader) readLine() ([]byte, error) {
	var full []byte
	for {
		line, err := fr.br.ReadSlice('\n')
		full = append(full, line...)
		if err == bufio.ErrBufferFull {
			continue
		}
		return full, err
	}
}

// ReadAllFasta parses every record from r.
func ReadAllFasta(r io.Reader) ([]*Sequence, error) {
	fr := NewFastaReader(r)
	var seqs []*Sequence
	for {
		s, err := fr.Read()
		if err == io.EOF {
			return seqs, nil
		}
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, s)
	}
}

// ReadFastaFile parses every record from the named file.
func ReadFastaFile(path string) ([]*Sequence, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	seqs, err := ReadAllFasta(f)
	if err != nil {
		return nil, fmt.Errorf("fasta %s: %w", path, err)
	}
	return seqs, nil
}

// FastaLineWidth is the residue wrap width used when writing FASTA.
const FastaLineWidth = 70

// WriteFasta writes records to w with FastaLineWidth-column wrapping.
func WriteFasta(w io.Writer, seqs []*Sequence) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, s := range seqs {
		if err := writeFastaRecord(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFastaRecord(bw *bufio.Writer, s *Sequence) error {
	if s.Desc != "" {
		if _, err := fmt.Fprintf(bw, ">%s %s\n", s.ID, s.Desc); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.ID); err != nil {
			return err
		}
	}
	for i := 0; i < len(s.Letters); i += FastaLineWidth {
		end := min(i+FastaLineWidth, len(s.Letters))
		if _, err := bw.Write(s.Letters[i:end]); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// WriteFastaFile writes records to the named file, creating or truncating it.
func WriteFastaFile(path string, seqs []*Sequence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFasta(f, seqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SplitFasta partitions seqs into blocks with at most blockSize sequences
// each, preserving order. blockSize must be positive.
func SplitFasta(seqs []*Sequence, blockSize int) [][]*Sequence {
	if blockSize <= 0 {
		panic("bio: SplitFasta blockSize must be positive")
	}
	var blocks [][]*Sequence
	for i := 0; i < len(seqs); i += blockSize {
		blocks = append(blocks, seqs[i:min(i+blockSize, len(seqs))])
	}
	return blocks
}

// SplitFastaBySize partitions seqs into blocks whose combined residue counts
// are at most targetResidues (a block always holds at least one sequence).
// This mirrors the paper's pre-splitting of the query set into FASTA files of
// a specified target size.
func SplitFastaBySize(seqs []*Sequence, targetResidues int) [][]*Sequence {
	if targetResidues <= 0 {
		panic("bio: SplitFastaBySize targetResidues must be positive")
	}
	var blocks [][]*Sequence
	start, residues := 0, 0
	for i, s := range seqs {
		// Flush when the current block is non-empty and would exceed the
		// target; checking block emptiness (not residue count) keeps the
		// invariant "a block exceeds the target only as a single sequence"
		// even when zero-length sequences are present.
		if i > start && residues+s.Len() > targetResidues {
			blocks = append(blocks, seqs[start:i])
			start, residues = i, 0
		}
		residues += s.Len()
	}
	if start < len(seqs) {
		blocks = append(blocks, seqs[start:])
	}
	return blocks
}
