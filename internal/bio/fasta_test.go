package bio

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func TestFastaReaderBasic(t *testing.T) {
	in := ">seq1 first sequence\nACGT\nACGT\n>seq2\nTTTT\n"
	seqs, err := ReadAllFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records, want 2", len(seqs))
	}
	if seqs[0].ID != "seq1" || seqs[0].Desc != "first sequence" {
		t.Errorf("record 0 defline parsed wrong: %+v", seqs[0])
	}
	if string(seqs[0].Letters) != "ACGTACGT" {
		t.Errorf("record 0 letters = %q", seqs[0].Letters)
	}
	if seqs[1].ID != "seq2" || seqs[1].Desc != "" || string(seqs[1].Letters) != "TTTT" {
		t.Errorf("record 1 wrong: %+v", seqs[1])
	}
}

func TestFastaReaderNoTrailingNewline(t *testing.T) {
	seqs, err := ReadAllFasta(strings.NewReader(">a\nACG"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || string(seqs[0].Letters) != "ACG" {
		t.Fatalf("got %+v", seqs)
	}
}

func TestFastaReaderBlankLinesAndCRLF(t *testing.T) {
	in := "\n>a x\r\nAC GT\r\n\r\n>b\r\nTT\r\n"
	seqs, err := ReadAllFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d records", len(seqs))
	}
	if string(seqs[0].Letters) != "ACGT" {
		t.Errorf("interior whitespace not removed: %q", seqs[0].Letters)
	}
}

func TestFastaReaderEmpty(t *testing.T) {
	seqs, err := ReadAllFasta(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("expected no records, got %d", len(seqs))
	}
	fr := NewFastaReader(strings.NewReader(""))
	if _, err := fr.Read(); err != io.EOF {
		t.Errorf("expected io.EOF, got %v", err)
	}
}

func TestFastaReaderEmptySequence(t *testing.T) {
	seqs, err := ReadAllFasta(strings.NewReader(">a\n>b\nAC\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0].Len() != 0 || string(seqs[1].Letters) != "AC" {
		t.Fatalf("got %+v", seqs)
	}
}

func TestFastaWriteReadRoundTrip(t *testing.T) {
	g := NewGenerator(SynthParams{Seed: 1})
	var seqs []*Sequence
	seqs = append(seqs, g.RandomDNA("long", 345))
	seqs = append(seqs, &Sequence{ID: "x", Desc: "with desc", Letters: []byte("ACGT")})
	var buf bytes.Buffer
	if err := WriteFasta(&buf, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAllFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seqs) {
		t.Fatalf("got %d records, want %d", len(back), len(seqs))
	}
	for i := range seqs {
		if back[i].ID != seqs[i].ID || back[i].Desc != seqs[i].Desc ||
			!bytes.Equal(back[i].Letters, seqs[i].Letters) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestFastaFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.fa")
	seqs := []*Sequence{{ID: "a", Letters: []byte("ACGTACGT")}}
	if err := WriteFastaFile(path, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFastaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || string(back[0].Letters) != "ACGTACGT" {
		t.Fatalf("got %+v", back)
	}
}

func TestSplitFasta(t *testing.T) {
	seqs := make([]*Sequence, 7)
	for i := range seqs {
		seqs[i] = &Sequence{ID: string(rune('a' + i))}
	}
	blocks := SplitFasta(seqs, 3)
	if len(blocks) != 3 || len(blocks[0]) != 3 || len(blocks[2]) != 1 {
		t.Fatalf("blocks shape wrong: %v", len(blocks))
	}
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	if total != 7 {
		t.Errorf("sequences lost: %d", total)
	}
}

func TestSplitFastaBySize(t *testing.T) {
	seqs := []*Sequence{
		{ID: "a", Letters: make([]byte, 100)},
		{ID: "b", Letters: make([]byte, 100)},
		{ID: "c", Letters: make([]byte, 300)}, // oversize alone
		{ID: "d", Letters: make([]byte, 50)},
	}
	blocks := SplitFastaBySize(seqs, 200)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	if len(blocks[0]) != 2 || blocks[1][0].ID != "c" || blocks[2][0].ID != "d" {
		t.Errorf("block assignment wrong")
	}
}

func TestSplitFastaPanicsOnBadBlockSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	SplitFasta(nil, 0)
}
