package bio

import "slices"

// TwoBit is a densely packed 2-bit-per-base DNA sequence, the on-disk and
// in-memory representation used by BLAST database volumes (mirroring NCBI
// formatdb's packed format). Base i occupies bits (i%4)*2 of byte i/4,
// little-endian within the byte.
type TwoBit struct {
	data []byte
	n    int
}

// PackDNA packs 2-bit codes (values 0..3, as produced by EncodeDNA) into a
// TwoBit sequence.
func PackDNA(codes []byte) *TwoBit {
	tb := &TwoBit{
		data: make([]byte, (len(codes)+3)/4),
		n:    len(codes),
	}
	for i, c := range codes {
		tb.data[i>>2] |= (c & 3) << uint((i&3)<<1)
	}
	return tb
}

// FromPacked wraps an already-packed byte slice holding n bases. The slice is
// used directly without copying.
func FromPacked(data []byte, n int) *TwoBit {
	if need := (n + 3) / 4; len(data) < need {
		panic("bio: FromPacked data too short for n bases")
	}
	return &TwoBit{data: data, n: n}
}

// Len reports the number of bases.
func (tb *TwoBit) Len() int { return tb.n }

// Packed returns the underlying packed bytes (shared, not copied).
func (tb *TwoBit) Packed() []byte { return tb.data }

// Base returns the 2-bit code of base i.
func (tb *TwoBit) Base(i int) byte {
	return (tb.data[i>>2] >> uint((i&3)<<1)) & 3
}

// Unpack expands bases [start, end) into 2-bit codes, one per byte.
func (tb *TwoBit) Unpack(start, end int) []byte {
	if start < 0 || end > tb.n || start > end {
		panic("bio: TwoBit.Unpack range out of bounds")
	}
	out := make([]byte, end-start)
	for i := range out {
		out[i] = tb.Base(start + i)
	}
	return out
}

// UnpackAll expands the whole sequence into 2-bit codes, one per byte.
func (tb *TwoBit) UnpackAll() []byte { return tb.Unpack(0, tb.n) }

// AppendUnpacked appends every base's 2-bit code to dst and returns the
// extended slice, reusing dst's capacity: the zero-allocation variant of
// UnpackAll for scan loops that decode one subject per iteration. Whole
// bytes are expanded four bases at a time.
func (tb *TwoBit) AppendUnpacked(dst []byte) []byte {
	off := len(dst)
	dst = slices.Grow(dst, tb.n)[:off+tb.n]
	out := dst[off:]
	whole := tb.n >> 2
	for b := 0; b < whole; b++ {
		v := tb.data[b]
		out[b*4] = v & 3
		out[b*4+1] = (v >> 2) & 3
		out[b*4+2] = (v >> 4) & 3
		out[b*4+3] = (v >> 6) & 3
	}
	for i := whole * 4; i < tb.n; i++ {
		out[i] = tb.Base(i)
	}
	return dst
}

// PackedSize reports the number of bytes needed to pack n bases.
func PackedSize(n int) int { return (n + 3) / 4 }
