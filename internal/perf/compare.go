package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// WriteFile writes f as indented JSON to path.
func WriteFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile reads a BENCH file and checks its schema version.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema version %d, this tool speaks %d",
			path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

// Regression is one entry whose new timings are meaningfully worse than the
// baseline's.
type Regression struct {
	Name string `json:"name"`
	// OldMedianMS and NewMedianMS are calibration-normalized (expressed in
	// the baseline machine's time scale).
	OldMedianMS float64 `json:"old_median_ms"`
	NewMedianMS float64 `json:"new_median_ms"`
	Ratio       float64 `json:"ratio"`
}

// improvementThreshold is the minimum normalized median speedup (10%)
// before an entry is reported as an Improvement.
const improvementThreshold = 0.10

// Improvement is one entry whose new timings are meaningfully better than
// the baseline's, reported informationally (it never fails a compare) so
// perf wins are visible in CI logs and EXPERIMENTS.md with the same
// statistical footing as regressions.
type Improvement struct {
	Name string `json:"name"`
	// OldMedianMS and NewMedianMS are calibration-normalized (expressed in
	// the baseline machine's time scale).
	OldMedianMS float64 `json:"old_median_ms"`
	NewMedianMS float64 `json:"new_median_ms"`
	// Speedup is old median / new median (1.2 = 20% faster).
	Speedup float64 `json:"speedup"`
}

// Delta is a Compare result: regressions and improvements plus
// informational entries that appear on only one side.
type Delta struct {
	Regressions  []Regression
	Improvements []Improvement
	OnlyOld      []string
	OnlyNew      []string
	// Scale is the calibration ratio applied to the new file's timings
	// (old calibration / new calibration); 1 when either is unset.
	Scale float64
	// MetaWarnings notes environment differences between the two files (go
	// version, CPU model, GOMAXPROCS, ...). Informational: calibration
	// scaling corrects raw speed but not scheduler or architecture effects,
	// so a cross-environment compare deserves a caveat, not a failure.
	MetaWarnings []string
}

// metaWarnings diffs the two files' environment fingerprints.
func metaWarnings(old, new *File) []string {
	if old.Meta == nil || new.Meta == nil {
		if old.Meta != new.Meta {
			return []string{"one file lacks environment metadata (recorded by an older mrperf)"}
		}
		return nil
	}
	var out []string
	diff := func(field, o, n string) {
		if o != n {
			out = append(out, fmt.Sprintf("%s differs: baseline %q vs new %q", field, o, n))
		}
	}
	diff("go version", old.Meta.GoVersion, new.Meta.GoVersion)
	diff("GOOS/GOARCH", old.Meta.GOOS+"/"+old.Meta.GOARCH, new.Meta.GOOS+"/"+new.Meta.GOARCH)
	if old.Meta.GOMAXPROCS != new.Meta.GOMAXPROCS {
		out = append(out, fmt.Sprintf("GOMAXPROCS differs: baseline %d vs new %d",
			old.Meta.GOMAXPROCS, new.Meta.GOMAXPROCS))
	}
	if old.Meta.NumCPU != new.Meta.NumCPU {
		out = append(out, fmt.Sprintf("CPU count differs: baseline %d vs new %d",
			old.Meta.NumCPU, new.Meta.NumCPU))
	}
	diff("CPU model", old.Meta.CPUModel, new.Meta.CPUModel)
	return out
}

// Compare flags entries of new whose timings regressed past threshold
// (e.g. 0.25 = 25% slower) relative to old. To count, a regression must be
// statistically meaningful, not just a noisy repeat: the normalized new
// median must exceed old median × (1+threshold) AND the normalized new
// minimum must exceed the old maximum, i.e. the fastest new run is still
// slower than the slowest baseline run.
func Compare(old, new *File, threshold float64) (*Delta, error) {
	if old.SchemaVersion != new.SchemaVersion {
		return nil, fmt.Errorf("perf: schema mismatch: baseline v%d vs new v%d",
			old.SchemaVersion, new.SchemaVersion)
	}
	scale := 1.0
	if old.CalibrationMS > 0 && new.CalibrationMS > 0 {
		scale = old.CalibrationMS / new.CalibrationMS
	}
	d := &Delta{Scale: scale, MetaWarnings: metaWarnings(old, new)}
	oldByName := map[string]Entry{}
	for _, e := range old.Entries {
		oldByName[e.Name] = e
	}
	seen := map[string]bool{}
	for _, ne := range new.Entries {
		seen[ne.Name] = true
		oe, ok := oldByName[ne.Name]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, ne.Name)
			continue
		}
		normMedian := ne.MedianMS * scale
		normMin := ne.MinMS * scale
		if normMedian > oe.MedianMS*(1+threshold) && normMin > oe.MaxMS {
			d.Regressions = append(d.Regressions, Regression{
				Name:        ne.Name,
				OldMedianMS: oe.MedianMS,
				NewMedianMS: normMedian,
				Ratio:       normMedian / oe.MedianMS,
			})
		}
		// Improvements: normalized median better by at least
		// improvementThreshold and the fastest new run faster than the
		// fastest baseline run. Deliberately looser than the regression
		// test's min-above-max rule — improvements are informational, so a
		// single slow outlier repeat (GC pause, noisy neighbor) should not
		// suppress reporting a genuine win, while a regression gate must be
		// outlier-proof because it fails CI.
		if normMedian > 0 && normMedian < oe.MedianMS*(1-improvementThreshold) && normMin < oe.MinMS {
			d.Improvements = append(d.Improvements, Improvement{
				Name:        ne.Name,
				OldMedianMS: oe.MedianMS,
				NewMedianMS: normMedian,
				Speedup:     oe.MedianMS / normMedian,
			})
		}
	}
	for _, oe := range old.Entries {
		if !seen[oe.Name] {
			d.OnlyOld = append(d.OnlyOld, oe.Name)
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool {
		return d.Regressions[i].Ratio > d.Regressions[j].Ratio
	})
	sort.Slice(d.Improvements, func(i, j int) bool {
		return d.Improvements[i].Speedup > d.Improvements[j].Speedup
	})
	return d, nil
}
