// Package perf is the perf-regression harness: a pinned suite of small
// deterministic mrblast/mrsom/mrmpi jobs whose timings, registry metrics,
// and trace-analyzer summaries are folded into schema-versioned BENCH
// files, seeding the repo's perf trajectory. cmd/mrperf runs the suite and
// compares BENCH files, flagging statistically meaningful regressions.
package perf

import (
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/blastdb"
	"repro/internal/mpi"
	"repro/internal/mrblast"
	"repro/internal/mrmpi"
	"repro/internal/mrsom"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/som"
)

// SchemaVersion is bumped whenever the BENCH file shape changes
// incompatibly; Compare refuses to cross versions.
const SchemaVersion = 1

// File is one BENCH_<n>.json: the suite's results on one machine at one
// commit.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at"`
	GoVersion     string `json:"go_version,omitempty"`
	// CalibrationMS is the wall time of a fixed CPU-bound reference
	// workload on this machine. Compare scales timings by the calibration
	// ratio so baselines recorded on one machine remain usable on another.
	CalibrationMS float64 `json:"calibration_ms"`
	// Meta identifies the recording environment; Compare warns (but does not
	// fail) when it differs between baseline and new file, since calibration
	// scaling corrects speed but not scheduling or architecture effects.
	// Optional so pre-metadata BENCH files keep parsing under schema v1.
	Meta    *RunMeta `json:"meta,omitempty"`
	Entries []Entry  `json:"entries"`
}

// RunMeta is the environment fingerprint stamped into a BENCH file.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is the first "model name" from /proc/cpuinfo ("" when the
	// platform does not expose one).
	CPUModel string `json:"cpu_model,omitempty"`
}

// CaptureMeta fingerprints the current environment.
func CaptureMeta() *RunMeta {
	return &RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel reads the CPU model from /proc/cpuinfo; "" off Linux.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Entry is one suite workload's measurements.
type Entry struct {
	Name    string `json:"name"`
	Repeats int    `json:"repeats"`
	// TimesMS are per-repeat wall-clock times of the full job.
	TimesMS  []float64 `json:"times_ms"`
	MedianMS float64   `json:"median_ms"`
	MinMS    float64   `json:"min_ms"`
	MaxMS    float64   `json:"max_ms"`
	// Metrics are registry counters from the final timed repeat.
	Metrics map[string]int64 `json:"metrics,omitempty"`
	// The analyzer's view of one extra traced (untimed) run.
	MapImbalance   float64 `json:"map_imbalance,omitempty"`
	CriticalPathMS float64 `json:"critical_path_ms,omitempty"`
}

// workload is one suite job: run executes it once over the given mpi
// options (registry/tracer may be nil).
type workload struct {
	name string
	run  func(opts mpi.RunOptions) error
}

// suite builds the pinned workloads. Construction is deterministic (fixed
// seeds); it is separated from measurement so setup cost (synthesis, DB
// formatting) stays out of the timings. dir holds generated inputs.
func suite(dir string) ([]workload, error) {
	blastRun, err := blastWorkload(dir)
	if err != nil {
		return nil, err
	}
	scanRun, err := engineScanWorkload()
	if err != nil {
		return nil, err
	}
	return []workload{
		{name: "blast-master", run: blastRun(mrmpi.MapStyleMaster, false)},
		{name: "blast-locality", run: blastRun(mrmpi.MapStyleMaster, true)},
		{name: "som-batch", run: somWorkload(dir)},
		{name: "mrmpi-shuffle", run: shuffleWorkload()},
		{name: "engine-scan", run: scanRun},
	}, nil
}

// engineScanWorkload times the serial BLAST scan kernel directly — no MPI,
// no MapReduce: one query block searched repeatedly against a deterministic
// set of pre-encoded subjects. It isolates the per-residue cost (word
// lookup, two-hit bookkeeping, extensions) that dominates blast-master's
// engine.search spans, so kernel-level regressions show up undiluted by
// scheduling and shuffle time.
func engineScanWorkload() (func(mpi.RunOptions) error, error) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 7005})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 4, MinLen: 8000, MaxLen: 12000,
		StrainsPerGenome: 1, StrainIdentity: 0.95,
	})
	var strains []*bio.Sequence
	for _, ss := range set.Strains {
		strains = append(strains, ss...)
	}
	frags, err := bio.ShredAll(strains, bio.ShredParams{FragLen: 400, Overlap: 200, MinLen: 150})
	if err != nil {
		return nil, err
	}
	if len(frags) > 12 {
		frags = frags[:12]
	}
	params := blast.DefaultNucleotideParams()
	params.EValueCutoff = 1e-5
	eng, err := blast.NewEngine(frags, params)
	if err != nil {
		return nil, err
	}
	var subjects []blast.Subject
	var residues int64
	for _, s := range set.Genomes {
		subj := blast.EncodeSubject(s, bio.DNA)
		subjects = append(subjects, subj)
		residues += int64(len(subj.Codes))
	}
	eng.SetDatabaseDims(residues, int64(len(subjects)))
	const passes = 10
	return func(opts mpi.RunOptions) error {
		// The kernel runs outside mpi.Run, so wire the tracer/registry by
		// hand: one span per pass on rank 0 and the engine counters folded
		// into the registry, keeping the entry's analyzer/metrics columns
		// populated like the MPI-driven workloads.
		tr := opts.Trace.Rank(0)
		before := eng.Stats
		hits := 0
		for p := 0; p < passes; p++ {
			sp := tr.Begin("engine", "scan.pass")
			for _, subj := range subjects {
				hsps, err := eng.SearchSubject(subj)
				if err != nil {
					sp.End()
					return err
				}
				hits += len(hsps)
			}
			sp.End()
		}
		if reg := opts.Metrics; reg != nil {
			d := eng.Stats
			reg.Counter("engine_word_hits_total").Add(d.WordHits - before.WordHits)
			reg.Counter("engine_ungapped_exts_total").Add(d.UngappedExts - before.UngappedExts)
			reg.Counter("engine_gapped_exts_total").Add(d.GappedExts - before.GappedExts)
			reg.Counter("engine_residues_scanned_total").Add(d.ResiduesScanned - before.ResiduesScanned)
		}
		if hits == 0 {
			return fmt.Errorf("perf: engine-scan produced no hits")
		}
		return nil
	}, nil
}

// blastWorkload synthesizes the shared BLAST inputs once and returns a
// factory of run functions per scheduling mode.
func blastWorkload(dir string) (func(style mrmpi.MapStyle, locality bool) func(mpi.RunOptions) error, error) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 7001})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 4, MinLen: 2000, MaxLen: 3500,
		StrainsPerGenome: 1, StrainIdentity: 0.93,
	})
	var strains []*bio.Sequence
	for _, ss := range set.Strains {
		strains = append(strains, ss...)
	}
	frags, err := bio.ShredAll(strains, bio.ShredParams{FragLen: 400, Overlap: 200, MinLen: 150})
	if err != nil {
		return nil, err
	}
	if len(frags) > 24 {
		frags = frags[:24]
	}
	m, err := blastdb.Format(set.Genomes, bio.DNA, dir, "perfdb",
		blastdb.FormatOptions{TargetResidues: 3000})
	if err != nil {
		return nil, err
	}
	blocks := bio.SplitFasta(frags, 12)
	params := blast.DefaultNucleotideParams()
	params.EValueCutoff = 1e-5
	return func(style mrmpi.MapStyle, locality bool) func(mpi.RunOptions) error {
		return func(opts mpi.RunOptions) error {
			return mpi.RunWith(4, opts, func(c *mpi.Comm) error {
				_, err := mrblast.Run(c, mrblast.Config{
					Params:        params,
					QueryBlocks:   blocks,
					Manifest:      m,
					MapStyle:      style,
					LocalityAware: locality,
				})
				return err
			})
		}
	}, nil
}

// somWorkload trains a small batch SOM for a few epochs.
func somWorkload(dir string) func(mpi.RunOptions) error {
	const n, dim = 960, 8
	data, _ := bio.ClusteredVectors(7002, n, dim, 4, 0.05)
	path := dir + "/perf.vec"
	if err := som.WriteVectorFile(path, data, n, dim); err != nil {
		return func(mpi.RunOptions) error { return err }
	}
	return func(opts mpi.RunOptions) error {
		vf, err := som.OpenVectorFile(path)
		if err != nil {
			return err
		}
		defer vf.Close()
		grid, err := som.NewGrid(8, 8)
		if err != nil {
			return err
		}
		return mpi.RunWith(4, opts, func(c *mpi.Comm) error {
			_, err := mrsom.TrainFile(c, vf, mrsom.Config{
				Grid:      grid,
				Epochs:    8,
				BlockSize: 40,
				Seed:      7003,
			})
			return err
		})
	}
}

// shuffleWorkload stresses the MapReduce shuffle: map emits skewed keys,
// collate redistributes them, reduce counts.
func shuffleWorkload() func(mpi.RunOptions) error {
	return func(opts mpi.RunOptions) error {
		return mpi.RunWith(4, opts, func(c *mpi.Comm) error {
			mr := mrmpi.New(c)
			defer mr.Close()
			if _, err := mr.Map(96, func(itask int, kv *mrmpi.KeyValue) error {
				for i := 0; i < 400; i++ {
					kv.Add([]byte(fmt.Sprintf("key-%03d", (itask*31+i)%97)),
						[]byte(fmt.Sprintf("val-%d-%d", itask, i)))
				}
				return nil
			}); err != nil {
				return err
			}
			if _, err := mr.Collate(nil); err != nil {
				return err
			}
			_, err := mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
				out.Add(key, []byte(fmt.Sprintf("%d", len(values))))
				return nil
			})
			return err
		})
	}
}

// Run executes the suite: each workload is timed over `repeats` runs, the
// final timed run also collects registry metrics, and one extra untimed
// traced run feeds the analyzer. progress (may be nil) receives one line
// per entry.
func Run(dir string, repeats int, progress func(string)) (*File, error) {
	if repeats < 1 {
		repeats = 1
	}
	workloads, err := suite(dir)
	if err != nil {
		return nil, err
	}
	file := &File{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		CalibrationMS: Calibrate(),
		Meta:          CaptureMeta(),
	}
	for _, w := range workloads {
		e := Entry{Name: w.name, Repeats: repeats}
		// One untimed warmup run sheds first-touch costs (page-in, map
		// growth, file cache) that would otherwise skew the first repeat.
		if err := w.run(mpi.RunOptions{}); err != nil {
			return nil, fmt.Errorf("perf: %s (warmup): %w", w.name, err)
		}
		for i := 0; i < repeats; i++ {
			opts := mpi.RunOptions{}
			var reg *obs.Registry
			if i == repeats-1 {
				reg = obs.NewRegistry()
				opts.Metrics = reg
			}
			start := time.Now()
			if err := w.run(opts); err != nil {
				return nil, fmt.Errorf("perf: %s: %w", w.name, err)
			}
			e.TimesMS = append(e.TimesMS, float64(time.Since(start))/1e6)
			if reg != nil {
				e.Metrics = map[string]int64{}
				for _, c := range reg.Snapshot().Counters {
					e.Metrics[c.Name] = c.Value
				}
			}
		}
		sorted := append([]float64(nil), e.TimesMS...)
		sort.Float64s(sorted)
		e.MinMS = sorted[0]
		e.MaxMS = sorted[len(sorted)-1]
		e.MedianMS = obs.Quantile(sorted, 0.5)

		// One extra traced run (untimed — tracing has its own overhead)
		// for the analyzer's load-balance and critical-path view.
		tracer := obs.NewTracer()
		if err := w.run(mpi.RunOptions{Trace: tracer}); err != nil {
			return nil, fmt.Errorf("perf: %s (traced): %w", w.name, err)
		}
		rep := analyze.Analyze(tracer.Events())
		e.CriticalPathMS = float64(rep.CriticalPath.Total) / 1e6
		for _, ps := range rep.Phases {
			if ps.Name == "map" {
				e.MapImbalance = ps.Imbalance
			}
		}
		file.Entries = append(file.Entries, e)
		if progress != nil {
			progress(fmt.Sprintf("%s: median %.1fms (min %.1f, max %.1f, %d repeats), map imbalance %.2f",
				e.Name, e.MedianMS, e.MinMS, e.MaxMS, e.Repeats, e.MapImbalance))
		}
	}
	return file, nil
}

// Calibrate times a fixed CPU-bound reference workload (FNV-1a over a
// deterministic buffer), returning milliseconds. Compare divides timings by
// the calibration ratio between two BENCH files so a baseline recorded on a
// faster machine doesn't read as a regression on a slower one. Best of
// three to shed scheduler noise.
func Calibrate() float64 {
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i*31 + 7)
	}
	best := 0.0
	var sink uint32
	for try := 0; try < 3; try++ {
		start := time.Now()
		for i := 0; i < 150; i++ {
			h := fnv.New32a()
			h.Write(buf)
			sink ^= h.Sum32()
		}
		ms := float64(time.Since(start)) / 1e6
		if best == 0 || ms < best {
			best = ms
		}
	}
	if sink == 0xdeadbeef {
		// Keep the work observable so it cannot be elided.
		return best + 0
	}
	return best
}
