package perf

import (
	"os"
	"strings"
	"testing"
)

func baselineFile() *File {
	return &File{
		SchemaVersion: SchemaVersion,
		CalibrationMS: 10,
		Entries: []Entry{
			{Name: "blast-master", Repeats: 3, TimesMS: []float64{100, 110, 120}, MedianMS: 110, MinMS: 100, MaxMS: 120},
			{Name: "som-batch", Repeats: 3, TimesMS: []float64{50, 52, 54}, MedianMS: 52, MinMS: 50, MaxMS: 54},
			{Name: "mrmpi-shuffle", Repeats: 3, TimesMS: []float64{30, 31, 33}, MedianMS: 31, MinMS: 30, MaxMS: 33},
		},
	}
}

// TestCompareIdentical: a file compared against itself has no regressions.
func TestCompareIdentical(t *testing.T) {
	f := baselineFile()
	d, err := Compare(f, f, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("regressions on identical input: %+v", d.Regressions)
	}
	if len(d.OnlyOld) != 0 || len(d.OnlyNew) != 0 {
		t.Errorf("missing entries on identical input: old-only %v, new-only %v", d.OnlyOld, d.OnlyNew)
	}
	if d.Scale != 1 {
		t.Errorf("scale = %g, want 1", d.Scale)
	}
}

// TestCompareDetectsSlowdown is the golden acceptance case: one entry is 2×
// slower, the comparison must flag it by name and only it.
func TestCompareDetectsSlowdown(t *testing.T) {
	old := baselineFile()
	slow := baselineFile()
	for i := range slow.Entries {
		if slow.Entries[i].Name == "som-batch" {
			e := &slow.Entries[i]
			for j := range e.TimesMS {
				e.TimesMS[j] *= 2
			}
			e.MedianMS *= 2
			e.MinMS *= 2
			e.MaxMS *= 2
		}
	}
	d, err := Compare(old, slow, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want exactly the som-batch slowdown", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Name != "som-batch" {
		t.Errorf("regressed entry = %q, want som-batch", r.Name)
	}
	if r.Ratio < 1.9 || r.Ratio > 2.1 {
		t.Errorf("ratio = %g, want ~2", r.Ratio)
	}
}

// TestCompareNoisyRunNotFlagged: a slow median whose fastest repeat still
// overlaps the baseline range is noise, not a regression.
func TestCompareNoisyRunNotFlagged(t *testing.T) {
	old := baselineFile()
	noisy := baselineFile()
	for i := range noisy.Entries {
		if noisy.Entries[i].Name == "blast-master" {
			e := &noisy.Entries[i]
			e.TimesMS = []float64{115, 160, 170}
			e.MinMS, e.MedianMS, e.MaxMS = 115, 160, 170
		}
	}
	d, err := Compare(old, noisy, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("noisy run flagged as regression: %+v", d.Regressions)
	}
}

// TestCompareCalibrationNormalizes: same workload timings but the new
// machine is 2× slower (calibration 2×) — after normalization nothing
// regressed.
func TestCompareCalibrationNormalizes(t *testing.T) {
	old := baselineFile()
	slowMachine := baselineFile()
	slowMachine.CalibrationMS = 20
	for i := range slowMachine.Entries {
		e := &slowMachine.Entries[i]
		for j := range e.TimesMS {
			e.TimesMS[j] *= 2
		}
		e.MedianMS *= 2
		e.MinMS *= 2
		e.MaxMS *= 2
	}
	d, err := Compare(old, slowMachine, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d.Scale != 0.5 {
		t.Errorf("scale = %g, want 0.5", d.Scale)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("calibration-explained slowdown flagged: %+v", d.Regressions)
	}
}

// TestCompareReportsImprovement: a clean 2× speedup on one entry is
// reported as an improvement (and never as a regression), with the speedup
// calibration-normalized.
func TestCompareReportsImprovement(t *testing.T) {
	old := baselineFile()
	fast := baselineFile()
	for i := range fast.Entries {
		if fast.Entries[i].Name == "mrmpi-shuffle" {
			e := &fast.Entries[i]
			e.TimesMS = []float64{15, 15.5, 16.5}
			e.MinMS, e.MedianMS, e.MaxMS = 15, 15.5, 16.5
		}
	}
	d, err := Compare(old, fast, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("speedup flagged as regression: %+v", d.Regressions)
	}
	if len(d.Improvements) != 1 {
		t.Fatalf("improvements = %+v, want exactly mrmpi-shuffle", d.Improvements)
	}
	im := d.Improvements[0]
	if im.Name != "mrmpi-shuffle" {
		t.Errorf("improved entry = %q, want mrmpi-shuffle", im.Name)
	}
	if im.Speedup < 1.9 || im.Speedup > 2.1 {
		t.Errorf("speedup = %g, want ~2", im.Speedup)
	}
}

// TestCompareModestSpeedupNotReported: a median within the improvement
// threshold is a noisy repeat, not a win.
func TestCompareModestSpeedupNotReported(t *testing.T) {
	old := baselineFile()
	noisy := baselineFile()
	for i := range noisy.Entries {
		if noisy.Entries[i].Name == "som-batch" {
			e := &noisy.Entries[i]
			e.TimesMS = []float64{47, 48, 49}
			e.MinMS, e.MedianMS, e.MaxMS = 47, 48, 49
		}
	}
	d, err := Compare(old, noisy, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Improvements) != 0 {
		t.Errorf("modest speedup reported as improvement: %+v", d.Improvements)
	}
}

// TestCompareWideBaselineSpeedupNotReported: when the baseline's own spread
// already reaches below the new minimum, the "faster" run proves nothing.
func TestCompareWideBaselineSpeedupNotReported(t *testing.T) {
	old := baselineFile()
	for i := range old.Entries {
		if old.Entries[i].Name == "som-batch" {
			e := &old.Entries[i]
			e.TimesMS = []float64{30, 52, 54}
			e.MinMS, e.MedianMS, e.MaxMS = 30, 52, 54
		}
	}
	cur := baselineFile()
	for i := range cur.Entries {
		if cur.Entries[i].Name == "som-batch" {
			e := &cur.Entries[i]
			e.TimesMS = []float64{40, 44, 46}
			e.MinMS, e.MedianMS, e.MaxMS = 40, 44, 46
		}
	}
	d, err := Compare(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Improvements) != 0 {
		t.Errorf("speedup inside the baseline's spread reported: %+v", d.Improvements)
	}
}

// TestCompareSchemaMismatch refuses cross-version comparison.
func TestCompareSchemaMismatch(t *testing.T) {
	old := baselineFile()
	other := baselineFile()
	other.SchemaVersion = SchemaVersion + 1
	if _, err := Compare(old, other, 0.25); err == nil {
		t.Fatal("cross-schema compare succeeded, want error")
	}
}

// TestCompareMissingEntries reports entries present on only one side.
func TestCompareMissingEntries(t *testing.T) {
	old := baselineFile()
	cur := baselineFile()
	cur.Entries = cur.Entries[:2]
	cur.Entries = append(cur.Entries, Entry{Name: "new-workload", MedianMS: 1})
	d, err := Compare(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "mrmpi-shuffle" {
		t.Errorf("only-old = %v, want [mrmpi-shuffle]", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "new-workload" {
		t.Errorf("only-new = %v, want [new-workload]", d.OnlyNew)
	}
}

// TestFileRoundTrip writes and re-reads a BENCH file.
func TestFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/BENCH_test.json"
	f := baselineFile()
	f.CreatedAt = "2026-08-06T00:00:00Z"
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CreatedAt != f.CreatedAt || len(got.Entries) != len(f.Entries) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Entries[0].MedianMS != 110 {
		t.Errorf("entry median = %g, want 110", got.Entries[0].MedianMS)
	}
}

// TestReadFileRejectsWrongSchema: a future-schema file is refused at read
// time so stale tools fail loudly.
func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := t.TempDir() + "/BENCH_future.json"
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("err = %v, want schema version error", err)
	}
}

// TestSuiteRunsQuick executes the real suite once end to end: every pinned
// workload must run, produce timings, and fold in analyzer stats.
func TestSuiteRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run is slow")
	}
	f, err := Run(t.TempDir(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion {
		t.Errorf("schema = %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	if f.CalibrationMS <= 0 {
		t.Errorf("calibration = %g, want > 0", f.CalibrationMS)
	}
	names := map[string]bool{}
	for _, e := range f.Entries {
		names[e.Name] = true
		if len(e.TimesMS) != 1 || e.MedianMS <= 0 {
			t.Errorf("%s: times %v median %g", e.Name, e.TimesMS, e.MedianMS)
		}
		if e.CriticalPathMS <= 0 {
			t.Errorf("%s: no critical path measured", e.Name)
		}
		if len(e.Metrics) == 0 {
			t.Errorf("%s: no registry metrics captured", e.Name)
		}
	}
	for _, want := range []string{"blast-master", "blast-locality", "som-batch", "mrmpi-shuffle"} {
		if !names[want] {
			t.Errorf("workload %q missing from suite results", want)
		}
	}
}

// TestCompareMetaWarnings: environment differences between baseline and new
// file surface as warnings, never failures; matching metadata stays silent.
func TestCompareMetaWarnings(t *testing.T) {
	meta := func() *RunMeta {
		return &RunMeta{GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64",
			GOMAXPROCS: 8, NumCPU: 8, CPUModel: "TestCPU 3000"}
	}
	old, cur := baselineFile(), baselineFile()
	old.Meta, cur.Meta = meta(), meta()
	d, err := Compare(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MetaWarnings) != 0 {
		t.Errorf("warnings on matching metadata: %v", d.MetaWarnings)
	}

	cur.Meta.GoVersion = "go1.23"
	cur.Meta.GOMAXPROCS = 4
	cur.Meta.CPUModel = "OtherCPU 1000"
	d, err = Compare(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MetaWarnings) != 3 {
		t.Fatalf("warnings = %v, want go version + GOMAXPROCS + CPU model", d.MetaWarnings)
	}
	joined := strings.Join(d.MetaWarnings, "; ")
	for _, want := range []string{"go version", "GOMAXPROCS", "CPU model"} {
		if !strings.Contains(joined, want) {
			t.Errorf("warnings missing %q: %v", want, d.MetaWarnings)
		}
	}
	if len(d.Regressions) != 0 {
		t.Errorf("metadata mismatch must not create regressions: %+v", d.Regressions)
	}

	// One side without metadata (older mrperf): a single note.
	cur.Meta = nil
	d, err = Compare(old, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MetaWarnings) != 1 || !strings.Contains(d.MetaWarnings[0], "lacks environment metadata") {
		t.Errorf("warnings = %v, want a single missing-metadata note", d.MetaWarnings)
	}
}

// TestCaptureMeta sanity-checks the environment fingerprint on this host.
func TestCaptureMeta(t *testing.T) {
	m := CaptureMeta()
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" {
		t.Fatalf("incomplete meta: %+v", m)
	}
	if m.GOMAXPROCS < 1 || m.NumCPU < 1 {
		t.Fatalf("impossible CPU counts: %+v", m)
	}
}
