package mrmpi

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/mpi"
)

// TestConvertExternalMergeGroupsAndCleansUp forces the external sort-group
// convert path with a tiny MemSize and checks the two properties the
// in-memory comparison test cannot see: the k-way merge reassembles each
// key's values in insertion order even though consecutive values of one key
// land in different run files, and every mrmpi-run-*.kv file is removed by
// convertExternal itself (not left for Close).
func TestConvertExternalMergeGroupsAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	const (
		memSize = 256
		nkeys   = 5
		nvals   = 40
	)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{MemSize: memSize, PageSize: 128, SpillDir: dir})
		defer mr.Close()

		// Interleave keys so each key's consecutive values are nkeys
		// entries apart in sequence order: with ~45 bytes charged per
		// entry against a 256-byte budget, a sorted run holds ~6 entries,
		// so every key's value list spans nearly every run and the merge
		// must reorder across all of them.
		_, err := mr.Map(1, func(itask int, kv *KeyValue) error {
			for v := 0; v < nvals; v++ {
				for k := 0; k < nkeys; k++ {
					kv.AddString(fmt.Sprintf("key%d", k), []byte(fmt.Sprintf("val-%d-%02d", k, v)))
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		if mr.KV().Bytes() <= memSize {
			return fmt.Errorf("fixture holds only %d bytes; too small to trigger the external path", mr.KV().Bytes())
		}
		if err := mr.Convert(); err != nil {
			return err
		}

		// The deferred cleanup in convertExternal removes the run files as
		// soon as the merge finishes.
		runs, err := filepath.Glob(filepath.Join(dir, "mrmpi-run-*.kv"))
		if err != nil {
			return err
		}
		if len(runs) != 0 {
			return fmt.Errorf("run files left behind after Convert: %v", runs)
		}

		// External convert emits keys in lexicographic order with per-key
		// values in global insertion order.
		var gotKeys []string
		if err := mr.KMV().Each(func(key []byte, values [][]byte) error {
			k := string(key)
			gotKeys = append(gotKeys, k)
			if len(values) != nvals {
				return fmt.Errorf("key %s: %d values, want %d", k, len(values), nvals)
			}
			for i, v := range values {
				want := fmt.Sprintf("val-%c-%02d", k[len(k)-1], i)
				if string(v) != want {
					return fmt.Errorf("key %s value %d = %q, want %q", k, i, v, want)
				}
			}
			return nil
		}); err != nil {
			return err
		}
		if len(gotKeys) != nkeys {
			return fmt.Errorf("got %d keys: %v", len(gotKeys), gotKeys)
		}
		for i, k := range gotKeys {
			if want := fmt.Sprintf("key%d", i); k != want {
				return fmt.Errorf("key %d = %q, want %q (lexicographic merge order)", i, k, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Close ran via the defer above: the paged stores' spill files must be
	// gone too, leaving the spill directory completely empty.
	left, err := filepath.Glob(filepath.Join(dir, "mrmpi-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("spill files left after Close: %v", left)
	}
}
