// Package mrmpi is a Go port of Sandia's MapReduce-MPI library (Plimpton &
// Devine), the framework the paper uses to parallelize BLAST and SOM. It
// implements the same processing model on top of the in-process MPI runtime
// (internal/mpi):
//
//   - KeyValue / KeyMultiValue objects backed by fixed-size pages that spill
//     to disk when a memory budget is exceeded ("out-of-core processing"),
//   - Map over N abstract tasks with selectable task-distribution styles,
//     including the master–worker mode the paper uses for BLAST's highly
//     irregular work units,
//   - Aggregate (hash-of-key redistribution across ranks), Convert (local
//     grouping into key-multivalue pairs), Collate = Aggregate + Convert,
//   - Reduce, Gather, and key sorting.
//
// All MapReduce methods are collective: every rank of the communicator must
// call them in the same order.
package mrmpi

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// DefaultPageSize is the size of one in-memory page of key-value data.
// Sandia's default pagesize is 64 MB; ours is smaller because laptop-scale
// test workloads should still exercise multi-page code paths.
const DefaultPageSize = 1 << 20

// DefaultMemSize is the default in-memory budget per KV/KMV object before
// pages spill to disk.
const DefaultMemSize = 64 << 20

// page is one chunk of framed records, resident in memory or spilled to a
// file.
type page struct {
	buf  []byte // nil when spilled
	path string // spill file, "" when resident
	size int    // payload bytes
}

// pagedStore holds framed records in a sequence of pages with an in-memory
// budget. Records never span pages, so each page can be parsed standalone.
type pagedStore struct {
	pageSize int
	memLimit int64
	spillDir string
	label    string // for spill file names and errors

	pages      []page
	cur        []byte // page under construction
	memBytes   int64
	nspill     int
	spillBytes int64 // cumulative bytes written by page spills
	nrec       int
	spillErr   error // first spill failure, surfaced on the next operation

	// Optional metrics instruments (nil-safe no-ops when metrics are off).
	cSpills, cSpillBytes *obs.Counter
}

func newPagedStore(label, spillDir string, pageSize int, memLimit int64) *pagedStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if memLimit <= 0 {
		memLimit = DefaultMemSize
	}
	if spillDir == "" {
		spillDir = os.TempDir()
	}
	return &pagedStore{
		pageSize: pageSize,
		memLimit: memLimit,
		spillDir: spillDir,
		label:    label,
	}
}

// curPageSeed is the initial capacity of a page under construction. Pages
// start small and let append's geometric growth take them toward pageSize:
// a full make([]byte, 0, pageSize) up front forces the allocator to zero
// the whole page (mallocgc), while growslice skips zeroing for byte slices
// — with a 1 MB default page and mostly-small stores, the zeroing dominated
// the store's CPU cost.
const curPageSeed = 16 << 10

// maxUvarintLen over-approximates one length prefix when sizing a record:
// stores deal in slices whose lengths fit 32 bits, so 5 varint bytes cover
// any prefix this package writes.
const maxUvarintLen = 5

// beginRecord prepares the page under construction to receive one record of
// at most `need` bytes: it seals (and possibly spills) the current page if
// the record would overflow it, and allocates a fresh page buffer when none
// is open. The caller then appends the encoded record to s.cur directly and
// bumps s.nrec — encoding straight into the page is what keeps Add at one
// copy per byte.
func (s *pagedStore) beginRecord(need int) error {
	if len(s.cur)+need > s.pageSize && len(s.cur) > 0 {
		if err := s.sealCurrent(); err != nil {
			return err
		}
	}
	if s.cur == nil {
		s.cur = make([]byte, 0, max(min(s.pageSize, curPageSeed), need))
	}
	return nil
}

// sealCurrent closes the page under construction and enforces the memory
// budget by spilling the oldest resident pages.
func (s *pagedStore) sealCurrent() error {
	if len(s.cur) == 0 {
		return nil
	}
	s.pages = append(s.pages, page{buf: s.cur, size: len(s.cur)})
	s.memBytes += int64(len(s.cur))
	s.cur = nil
	for s.memBytes > s.memLimit {
		if !s.spillOldest() {
			break
		}
	}
	return s.spillErr
}

func (s *pagedStore) spillOldest() bool {
	for i := range s.pages {
		p := &s.pages[i]
		if p.buf == nil {
			continue
		}
		f, err := os.CreateTemp(s.spillDir, "mrmpi-"+s.label+"-*.page")
		if err != nil {
			s.spillErr = fmt.Errorf("mrmpi: spill %s: %w", s.label, err)
			return false
		}
		if _, err := f.Write(p.buf); err != nil {
			f.Close()
			os.Remove(f.Name())
			s.spillErr = fmt.Errorf("mrmpi: spill %s: %w", s.label, err)
			return false
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			s.spillErr = fmt.Errorf("mrmpi: spill %s: %w", s.label, err)
			return false
		}
		s.memBytes -= int64(len(p.buf))
		s.spillBytes += int64(len(p.buf))
		s.cSpills.Inc()
		s.cSpillBytes.Add(int64(len(p.buf)))
		p.path = f.Name()
		p.buf = nil
		s.nspill++
		return true
	}
	return false
}

// appendEncodedPage adopts a whole page of pre-framed records (KV wire
// format, as produced by putFrame) holding npairs records. The buffer is
// taken over, not copied — the zero-copy ingest path of the streaming
// Aggregate, where received page frames become store pages directly. The
// page under construction is sealed first so append order is preserved,
// and the memory budget is enforced as usual (adopted pages may spill).
func (s *pagedStore) appendEncodedPage(data []byte, npairs int) error {
	if len(data) == 0 {
		return s.spillErr
	}
	if err := s.sealCurrent(); err != nil {
		return err
	}
	s.pages = append(s.pages, page{buf: data, size: len(data)})
	s.memBytes += int64(len(data))
	s.nrec += npairs
	for s.memBytes > s.memLimit {
		if !s.spillOldest() {
			break
		}
	}
	return s.spillErr
}

// retainPages returns every page's payload in append order, loading spilled
// pages into memory. The returned slices alias resident page buffers; they
// stay valid as long as the caller holds them, even across a reset (the
// store drops its references but the caller's keep the buffers alive).
// Intended for the in-memory Convert path, which only runs when the whole
// store fits the memory budget.
func (s *pagedStore) retainPages() ([][]byte, error) {
	if err := s.spillErr; err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(s.pages)+1)
	for i := range s.pages {
		p := &s.pages[i]
		if p.buf != nil {
			out = append(out, p.buf)
			continue
		}
		loaded, err := os.ReadFile(p.path)
		if err != nil {
			return nil, fmt.Errorf("mrmpi: reload %s page: %w", s.label, err)
		}
		out = append(out, loaded)
	}
	if len(s.cur) > 0 {
		out = append(out, s.cur)
	}
	return out, nil
}

// eachPage streams every page's payload in append order, loading spilled
// pages from disk one at a time.
func (s *pagedStore) eachPage(fn func(data []byte) error) error {
	if err := s.spillErr; err != nil {
		return err
	}
	for i := range s.pages {
		p := &s.pages[i]
		data := p.buf
		if data == nil {
			loaded, err := os.ReadFile(p.path)
			if err != nil {
				return fmt.Errorf("mrmpi: reload %s page: %w", s.label, err)
			}
			data = loaded
		}
		if err := fn(data); err != nil {
			return err
		}
	}
	if len(s.cur) > 0 {
		return fn(s.cur)
	}
	return nil
}

// reset drops all data, removing spill files.
func (s *pagedStore) reset() {
	for i := range s.pages {
		if s.pages[i].path != "" {
			os.Remove(s.pages[i].path)
		}
	}
	s.pages = nil
	s.cur = nil
	s.memBytes = 0
	s.nrec = 0
	s.spillErr = nil
}

// bytesTotal reports the payload bytes across all pages.
func (s *pagedStore) bytesTotal() int64 {
	total := int64(0)
	for i := range s.pages {
		total += int64(s.pages[i].size)
	}
	return total + int64(len(s.cur))
}

// spillDirOK validates that the spill directory exists (creating it if
// necessary).
func spillDirOK(dir string) error {
	if dir == "" {
		return nil
	}
	return os.MkdirAll(filepath.Clean(dir), 0o755)
}

// frame encoding helpers

// putFrame appends one KV wire frame — uvarint(len(key)) key
// uvarint(len(value)) value — to dst. The single encoder behind
// KeyValue.Add, Gather's serializer, and the Aggregate page builder.
func putFrame(dst, key, value []byte) []byte {
	dst = putUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = putUvarint(dst, uint64(len(value)))
	dst = append(dst, value...)
	return dst
}

// frameReader iterates the KV wire frames of one encoded page: the shared
// decode loop behind KeyValue.Each, Gather's receive side, and the
// offset-based Convert (which additionally needs valOff to index values
// without copying them). key/val alias the underlying page; copy to
// retain beyond the iteration step.
type frameReader struct {
	data []byte
	off  int
	// Set by next:
	key, val []byte
	keyOff   int // byte offset of key within data
	valOff   int // byte offset of val within data
}

// next decodes the frame at the current offset; it returns false when the
// page is exhausted and panics on malformed frames (internal corruption).
func (fr *frameReader) next() bool {
	if fr.off >= len(fr.data) {
		return false
	}
	rest := fr.data[fr.off:]
	klen, n := getUvarint(rest)
	fr.keyOff = fr.off + n
	fr.key = rest[n : n+int(klen)]
	rest = rest[n+int(klen):]
	vlen, n := getUvarint(rest)
	fr.valOff = fr.keyOff + int(klen) + n
	fr.val = rest[n : n+int(vlen)]
	fr.off = fr.valOff + int(vlen)
	return true
}

// countFrames walks an encoded page and reports the number of frames,
// panicking on corruption — the validation pass the streaming Aggregate
// runs before adopting a received page wholesale.
func countFrames(data []byte) int {
	fr := frameReader{data: data}
	n := 0
	for fr.next() {
		n++
	}
	return n
}

// putUvarint appends a uvarint to dst.
func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// getUvarint reads a uvarint from data, returning the value and bytes
// consumed. It panics on malformed frames, which indicate internal
// corruption rather than user error.
func getUvarint(data []byte) (uint64, int) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		panic("mrmpi: corrupt record frame")
	}
	return v, n
}
