// Package mrmpi is a Go port of Sandia's MapReduce-MPI library (Plimpton &
// Devine), the framework the paper uses to parallelize BLAST and SOM. It
// implements the same processing model on top of the in-process MPI runtime
// (internal/mpi):
//
//   - KeyValue / KeyMultiValue objects backed by fixed-size pages that spill
//     to disk when a memory budget is exceeded ("out-of-core processing"),
//   - Map over N abstract tasks with selectable task-distribution styles,
//     including the master–worker mode the paper uses for BLAST's highly
//     irregular work units,
//   - Aggregate (hash-of-key redistribution across ranks), Convert (local
//     grouping into key-multivalue pairs), Collate = Aggregate + Convert,
//   - Reduce, Gather, and key sorting.
//
// All MapReduce methods are collective: every rank of the communicator must
// call them in the same order.
package mrmpi

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// DefaultPageSize is the size of one in-memory page of key-value data.
// Sandia's default pagesize is 64 MB; ours is smaller because laptop-scale
// test workloads should still exercise multi-page code paths.
const DefaultPageSize = 1 << 20

// DefaultMemSize is the default in-memory budget per KV/KMV object before
// pages spill to disk.
const DefaultMemSize = 64 << 20

// page is one chunk of framed records, resident in memory or spilled to a
// file.
type page struct {
	buf  []byte // nil when spilled
	path string // spill file, "" when resident
	size int    // payload bytes
}

// pagedStore holds framed records in a sequence of pages with an in-memory
// budget. Records never span pages, so each page can be parsed standalone.
type pagedStore struct {
	pageSize int
	memLimit int64
	spillDir string
	label    string // for spill file names and errors

	pages      []page
	cur        []byte // page under construction
	memBytes   int64
	nspill     int
	spillBytes int64 // cumulative bytes written by page spills
	nrec       int
	spillErr   error // first spill failure, surfaced on the next operation

	// Optional metrics instruments (nil-safe no-ops when metrics are off).
	cSpills, cSpillBytes *obs.Counter
}

func newPagedStore(label, spillDir string, pageSize int, memLimit int64) *pagedStore {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if memLimit <= 0 {
		memLimit = DefaultMemSize
	}
	if spillDir == "" {
		spillDir = os.TempDir()
	}
	return &pagedStore{
		pageSize: pageSize,
		memLimit: memLimit,
		spillDir: spillDir,
		label:    label,
	}
}

// appendRecord adds one framed record, sealing and possibly spilling pages
// as needed. rec is copied.
func (s *pagedStore) appendRecord(rec []byte) error {
	if len(s.cur)+len(rec) > s.pageSize && len(s.cur) > 0 {
		if err := s.sealCurrent(); err != nil {
			return err
		}
	}
	if s.cur == nil {
		s.cur = make([]byte, 0, max(s.pageSize, len(rec)))
	}
	s.cur = append(s.cur, rec...)
	s.nrec++
	return nil
}

// sealCurrent closes the page under construction and enforces the memory
// budget by spilling the oldest resident pages.
func (s *pagedStore) sealCurrent() error {
	if len(s.cur) == 0 {
		return nil
	}
	s.pages = append(s.pages, page{buf: s.cur, size: len(s.cur)})
	s.memBytes += int64(len(s.cur))
	s.cur = nil
	for s.memBytes > s.memLimit {
		if !s.spillOldest() {
			break
		}
	}
	return s.spillErr
}

func (s *pagedStore) spillOldest() bool {
	for i := range s.pages {
		p := &s.pages[i]
		if p.buf == nil {
			continue
		}
		f, err := os.CreateTemp(s.spillDir, "mrmpi-"+s.label+"-*.page")
		if err != nil {
			s.spillErr = fmt.Errorf("mrmpi: spill %s: %w", s.label, err)
			return false
		}
		if _, err := f.Write(p.buf); err != nil {
			f.Close()
			os.Remove(f.Name())
			s.spillErr = fmt.Errorf("mrmpi: spill %s: %w", s.label, err)
			return false
		}
		if err := f.Close(); err != nil {
			os.Remove(f.Name())
			s.spillErr = fmt.Errorf("mrmpi: spill %s: %w", s.label, err)
			return false
		}
		s.memBytes -= int64(len(p.buf))
		s.spillBytes += int64(len(p.buf))
		s.cSpills.Inc()
		s.cSpillBytes.Add(int64(len(p.buf)))
		p.path = f.Name()
		p.buf = nil
		s.nspill++
		return true
	}
	return false
}

// eachPage streams every page's payload in append order, loading spilled
// pages from disk one at a time.
func (s *pagedStore) eachPage(fn func(data []byte) error) error {
	if err := s.spillErr; err != nil {
		return err
	}
	for i := range s.pages {
		p := &s.pages[i]
		data := p.buf
		if data == nil {
			loaded, err := os.ReadFile(p.path)
			if err != nil {
				return fmt.Errorf("mrmpi: reload %s page: %w", s.label, err)
			}
			data = loaded
		}
		if err := fn(data); err != nil {
			return err
		}
	}
	if len(s.cur) > 0 {
		return fn(s.cur)
	}
	return nil
}

// reset drops all data, removing spill files.
func (s *pagedStore) reset() {
	for i := range s.pages {
		if s.pages[i].path != "" {
			os.Remove(s.pages[i].path)
		}
	}
	s.pages = nil
	s.cur = nil
	s.memBytes = 0
	s.nrec = 0
	s.spillErr = nil
}

// bytesTotal reports the payload bytes across all pages.
func (s *pagedStore) bytesTotal() int64 {
	total := int64(0)
	for i := range s.pages {
		total += int64(s.pages[i].size)
	}
	return total + int64(len(s.cur))
}

// spillDirOK validates that the spill directory exists (creating it if
// necessary).
func spillDirOK(dir string) error {
	if dir == "" {
		return nil
	}
	return os.MkdirAll(filepath.Clean(dir), 0o755)
}

// frame encoding helpers

// putUvarint appends a uvarint to dst.
func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

// getUvarint reads a uvarint from data, returning the value and bytes
// consumed. It panics on malformed frames, which indicate internal
// corruption rather than user error.
func getUvarint(data []byte) (uint64, int) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		panic("mrmpi: corrupt record frame")
	}
	return v, n
}
