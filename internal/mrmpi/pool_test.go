package mrmpi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// poolEmit is the shared map function of the pool tests: each task emits a
// deterministic run of pairs, several per task so merge order is visible.
func poolEmit(itask int, kv *KeyValue) error {
	for i := 0; i < 5; i++ {
		kv.AddString(fmt.Sprintf("t%03d-%d", itask, i), []byte{byte(itask), byte(i)})
	}
	return nil
}

// rankStreams runs a map under opt and returns each rank's ordered local
// pair sequence after Map (before any exchange).
func rankStreams(t *testing.T, nranks, nmap int, opt Options) [][]string {
	t.Helper()
	streams := make([][]string, nranks)
	var mu sync.Mutex
	runMR(t, nranks, opt, func(mr *MapReduce) error {
		if _, err := mr.Map(nmap, poolEmit); err != nil {
			return err
		}
		var pairs []string
		err := mr.KV().Each(func(k, v []byte) error {
			pairs = append(pairs, fmt.Sprintf("%s=%x", k, v))
			return nil
		})
		mu.Lock()
		streams[mr.Comm().Rank()] = pairs
		mu.Unlock()
		return err
	})
	return streams
}

// TestMapWorkersByteIdenticalStreams is the pool's central guarantee: with
// deterministic task assignment (chunk, stride), every rank's local KV pair
// sequence under a worker pool is identical to the serial run's — tasks
// merge in dispatch order, each task's pairs contiguous.
func TestMapWorkersByteIdenticalStreams(t *testing.T) {
	for _, style := range []MapStyle{MapStyleChunk, MapStyleStride} {
		for _, nranks := range []int{1, 3} {
			for _, workers := range []int{2, 4, 7} {
				name := fmt.Sprintf("%v-%dranks-%dworkers", style, nranks, workers)
				t.Run(name, func(t *testing.T) {
					const nmap = 23
					serial := rankStreams(t, nranks, nmap, Options{MapStyle: style})
					pooled := rankStreams(t, nranks, nmap, Options{MapStyle: style, MapWorkers: workers})
					for r := 0; r < nranks; r++ {
						if got, want := strings.Join(pooled[r], "\n"), strings.Join(serial[r], "\n"); got != want {
							t.Fatalf("rank %d stream differs under %d workers:\n got: %s\nwant: %s",
								r, workers, got, want)
						}
					}
				})
			}
		}
	}
}

// TestMapWorkersMasterGlobalEquivalence covers the master styles, whose
// task→rank assignment is scheduling-dependent even serially: the global
// sorted pair multiset must match the serial run, and no task may be lost
// or duplicated.
func TestMapWorkersMasterGlobalEquivalence(t *testing.T) {
	collect := func(opt Options) []string {
		var all []string
		var mu sync.Mutex
		runMR(t, 4, opt, func(mr *MapReduce) error {
			if _, err := mr.Map(31, poolEmit); err != nil {
				return err
			}
			return mr.KV().Each(func(k, v []byte) error {
				mu.Lock()
				all = append(all, fmt.Sprintf("%s=%x", k, v))
				mu.Unlock()
				return nil
			})
		})
		sort.Strings(all)
		return all
	}
	for _, style := range []MapStyle{MapStyleMaster, MapStyleMasterAffinity} {
		t.Run(style.String(), func(t *testing.T) {
			opt := Options{MapStyle: style}
			if style == MapStyleMasterAffinity {
				opt.Affinity = func(itask int) int { return itask % 3 }
			}
			serial := collect(opt)
			opt.MapWorkers = 3
			pooled := collect(opt)
			if strings.Join(serial, "\n") != strings.Join(pooled, "\n") {
				t.Fatalf("global pair multiset differs:\nserial %d pairs\npooled %d pairs",
					len(serial), len(pooled))
			}
		})
	}
}

// TestMapWorkersSpillingStagingKVs forces both the staging KVs and the rank
// KV out of core and checks the merged stream still matches serial.
func TestMapWorkersSpillingStagingKVs(t *testing.T) {
	base := Options{MapStyle: MapStyleChunk, PageSize: 64, MemSize: 128}
	serial := rankStreams(t, 2, 16, base)
	pooled := base
	pooled.MapWorkers = 3
	got := rankStreams(t, 2, 16, pooled)
	for r := range serial {
		if strings.Join(serial[r], "\n") != strings.Join(got[r], "\n") {
			t.Fatalf("rank %d spilled stream differs from serial", r)
		}
	}
}

// TestMapWorkersErrorPropagation: the pool must stop fetching after a
// failure, drain dispatched tasks, and report the lowest-dispatch-order
// error — which on a single chunk rank is the lowest failing task index.
func TestMapWorkersErrorPropagation(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{MapWorkers: 4, SpillDir: t.TempDir()})
		defer mr.Close()
		_, err := mr.Map(20, func(itask int, kv *KeyValue) error {
			if itask == 7 || itask == 13 {
				return fmt.Errorf("boom %d", itask)
			}
			return poolEmit(itask, kv)
		})
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "map task 7") || !strings.Contains(err.Error(), "boom 7") {
		t.Fatalf("error = %v, want lowest failing task 7", err)
	}
}

// TestMapWorkersWorkerIndex checks the worker index contract: −1 serially,
// 0..W−1 under a pool.
func TestMapWorkersWorkerIndex(t *testing.T) {
	seen := map[int]bool{}
	var mu sync.Mutex
	record := func(_, worker int, _ *KeyValue) error {
		mu.Lock()
		seen[worker] = true
		mu.Unlock()
		return nil
	}
	err := mpi.Run(1, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{SpillDir: t.TempDir()})
		defer mr.Close()
		_, err := mr.MapWorker(8, record)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !seen[-1] {
		t.Fatalf("serial worker indexes = %v, want only -1", seen)
	}
	seen = map[int]bool{}
	err = mpi.Run(1, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{MapWorkers: 3, SpillDir: t.TempDir()})
		defer mr.Close()
		_, err := mr.MapWorker(64, record)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := range seen {
		if w < 0 || w >= 3 {
			t.Fatalf("pooled worker index %d out of range [0,3)", w)
		}
	}
}

// TestMapWorkersStatsAndTrace runs a traced 4-rank master-style job with a
// pool on every rank and checks task accounting and that worker-track spans
// validate (the obs.Validate LIFO check, per track).
func TestMapWorkersStatsAndTrace(t *testing.T) {
	tracer := obs.NewTracer()
	taskTotal := 0
	var mu sync.Mutex
	err := mpi.RunWith(4, mpi.RunOptions{Trace: tracer}, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{MapStyle: MapStyleMaster, MapWorkers: 2, SpillDir: t.TempDir()})
		defer mr.Close()
		if _, err := mr.Map(19, poolEmit); err != nil {
			return err
		}
		mu.Lock()
		taskTotal += mr.Stats().MapTasks
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if taskTotal != 19 {
		t.Fatalf("MapTasks across ranks = %d, want 19", taskTotal)
	}
	events := tracer.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("pooled trace failed validation: %v", err)
	}
	workerSpans := 0
	for _, ev := range events {
		if ev.Type == obs.BeginEvent && ev.Name == "map.task" {
			if ev.Track == 0 {
				t.Fatalf("pooled map.task span on rank track: %+v", ev)
			}
			workerSpans++
		}
	}
	if workerSpans != 19 {
		t.Fatalf("worker map.task spans = %d, want 19", workerSpans)
	}
}
