package mrmpi

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// Streaming Aggregate: the collate exchange rebuilt as a pipelined,
// page-granular shuffle. The old implementation materialized the entire
// per-destination traffic in memory, ran one barrier-style Alltoall, then
// re-inserted every received pair one Add at a time — no overlap and a
// double-buffering of the whole KV. This version overlaps communication
// with the hash/encode scan and ingests received data without decoding it:
//
//   - The local KV is scanned once; each pair is framed (KV wire format)
//     into a per-destination bucket. When a bucket reaches the page size it
//     is sealed into a self-describing page message and shipped immediately
//     with Isend while the scan continues, under a bounded in-flight window.
//   - One Irecv per peer is posted up front and polled (Test) at every page
//     boundary, so incoming pages are absorbed while this rank is still
//     scanning — send, receive, and encode all overlap.
//   - Received pages are already in KV wire format, so they are adopted
//     wholesale into the new paged store (appendEncodedPage) instead of
//     being decoded and re-Added pair by pair — the zero-copy ingest path.
//
// Wire protocol (tag TagAggPage, payload []byte):
//
//	page:     uvarint(seq) uvarint(npairs>0) frames...
//	sentinel: uvarint(npages) uvarint(0)
//
// seq numbers pages per (sender, receiver) stream starting at 0; the
// sentinel's first field carries the total page count so the receiver can
// verify the stream. npairs is the frame count of the page, which lets the
// receiver adopt the page without scanning it.
//
// Determinism contract (unchanged from the Alltoall implementation): pairs
// land grouped by sending rank in rank order, preserving each sender's
// insertion order. Arrival order is nondeterministic, so received pages are
// staged per source — per-(source, tag) FIFO delivery keeps each stream's
// pages in seq order — and appended into the new store in rank order only
// after every stream has finished.

// aggInflightWindow bounds the number of outstanding page Isends per rank.
// On the eager in-process transport sends complete immediately, so the
// window never stalls; it exists to keep the structure (and the Request
// accounting) identical to a rendezvous transport where it would apply
// backpressure.
const aggInflightWindow = 8

// aggBucket accumulates the frames bound for one destination rank.
type aggBucket struct {
	frames []byte
	npairs int
	seq    int // next page sequence number for this destination
}

// aggSource tracks one peer's incoming page stream.
type aggSource struct {
	req      *mpi.Request
	pages    [][]byte // staged page frames (header stripped) in seq order
	npairs   []int    // frame count per staged page
	bytes    int64    // total message bytes received (sentinels excluded)
	finished bool
}

// sealAggPage builds one wire message from a bucket's frames. The frames
// are copied (the bucket buffer is reused for the next page); ownership of
// the message passes to the receiver at Isend.
func sealAggPage(seq, npairs int, frames []byte) []byte {
	msg := make([]byte, 0, len(frames)+16)
	msg = putUvarint(msg, uint64(seq))
	msg = putUvarint(msg, uint64(npairs))
	return append(msg, frames...)
}

// stashAggPage parses one received message into s, returning the message's
// contribution to the received-byte count (0 for sentinels).
func (mr *MapReduce) stashAggPage(s *aggSource, src int, msg []byte) error {
	seq, n := getUvarint(msg)
	npairs, n2 := getUvarint(msg[n:])
	if npairs == 0 {
		// Sentinel: seq carries the sender's total page count.
		if int(seq) != len(s.pages) {
			return fmt.Errorf("mrmpi: aggregate stream from rank %d lost pages: sentinel says %d, received %d",
				src, seq, len(s.pages))
		}
		s.finished = true
		return nil
	}
	if int(seq) != len(s.pages) {
		return fmt.Errorf("mrmpi: aggregate page from rank %d out of order: seq %d, want %d",
			src, seq, len(s.pages))
	}
	s.pages = append(s.pages, msg[n+n2:])
	s.npairs = append(s.npairs, int(npairs))
	s.bytes += int64(len(msg))
	if mr.tr != nil {
		mr.tr.Instant("mrmpi", "exchange.page.recv",
			obs.Arg{Key: "src", Val: src}, obs.Arg{Key: "bytes", Val: len(msg)},
			obs.Arg{Key: "seq", Val: int(seq)})
	}
	return nil
}

// pollAggArrivals absorbs every page already sitting in the mailbox without
// blocking, re-posting each completed Irecv until its stream finishes. This
// is the overlap hook, called at page boundaries during the send scan.
func (mr *MapReduce) pollAggArrivals(recvs []*aggSource) error {
	for src, s := range recvs {
		if s == nil || s.finished {
			continue
		}
		for {
			data, _, ok := s.req.Test()
			if !ok {
				break
			}
			if err := mr.stashAggPage(s, src, data.([]byte)); err != nil {
				return err
			}
			if s.finished {
				break
			}
			s.req = mr.comm.Irecv(src, TagAggPage)
		}
	}
	return nil
}

// Aggregate redistributes KV pairs so that all pairs with equal keys land on
// the same rank, chosen by hash. A nil hash uses DefaultHash. Pairs arrive
// grouped by sending rank in rank order, preserving per-rank insertion
// order, which makes the result deterministic.
func (mr *MapReduce) Aggregate(hash HashFunc) error {
	sp := mr.phase("aggregate")
	defer sp.End()
	if hash == nil {
		hash = DefaultHash
	}
	size, rank := mr.comm.Size(), mr.comm.Rank()
	if size == 1 {
		// Every key hashes home; the KV already satisfies the contract.
		if mr.tr != nil {
			mr.tr.Instant("mrmpi", "exchange",
				obs.Arg{Key: "sent", Val: int64(0)}, obs.Arg{Key: "recv", Val: int64(0)})
		}
		return nil
	}
	pageCap := mr.opt.PageSize
	if pageCap <= 0 {
		pageCap = DefaultPageSize
	}

	// Post one receive per peer before producing anything, so arrivals can
	// be absorbed from the first page boundary onward.
	recvs := make([]*aggSource, size)
	for src := 0; src < size; src++ {
		if src != rank {
			recvs[src] = &aggSource{req: mr.comm.Irecv(src, TagAggPage)}
		}
	}

	buckets := make([]aggBucket, size)
	var selfPages [][]byte
	var selfN []int
	var inflight []*mpi.Request
	var sentBytes int64

	ship := func(dst int) error {
		b := &buckets[dst]
		if b.npairs == 0 {
			return nil
		}
		if dst == rank {
			// Home traffic never crosses the wire: stage a copy (the bucket
			// buffer is reused) for the rank-ordered rebuild below.
			selfPages = append(selfPages, append([]byte(nil), b.frames...))
			selfN = append(selfN, b.npairs)
		} else {
			msg := sealAggPage(b.seq, b.npairs, b.frames)
			if len(inflight) >= aggInflightWindow {
				inflight[0].Wait()
				inflight = inflight[1:]
			}
			inflight = append(inflight, mr.comm.Isend(dst, TagAggPage, msg))
			sentBytes += int64(len(msg))
			if mr.tr != nil {
				mr.tr.Instant("mrmpi", "exchange.page.send",
					obs.Arg{Key: "dst", Val: dst}, obs.Arg{Key: "bytes", Val: len(msg)},
					obs.Arg{Key: "seq", Val: b.seq})
			}
		}
		b.seq++
		b.frames = b.frames[:0]
		b.npairs = 0
		// A page just moved: drain whatever our peers have shipped so far.
		return mr.pollAggArrivals(recvs)
	}

	// Scan the KV page by page. Each record is already one wire frame, so
	// bucketing is a single raw copy of the frame bytes — no re-encoding.
	err := mr.kv.store.eachPage(func(data []byte) error {
		fr := frameReader{data: data}
		for off := 0; fr.next(); off = fr.off {
			dst := hash(fr.key, size)
			if dst < 0 || dst >= size {
				return fmt.Errorf("mrmpi: hash returned invalid rank %d", dst)
			}
			b := &buckets[dst]
			b.frames = append(b.frames, data[off:fr.off]...)
			b.npairs++
			if len(b.frames) >= pageCap {
				if err := ship(dst); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// Flush partial pages, then tell every peer this stream is complete.
	for dst := 0; dst < size; dst++ {
		if err := ship(dst); err != nil {
			return err
		}
	}
	for dst := 0; dst < size; dst++ {
		if dst == rank {
			continue
		}
		if len(inflight) >= aggInflightWindow {
			inflight[0].Wait()
			inflight = inflight[1:]
		}
		inflight = append(inflight, mr.comm.Isend(dst, TagAggPage, sealAggPage(buckets[dst].seq, 0, nil)))
	}
	mpi.Waitall(inflight)

	// Drain the remaining streams. Per-source Waits are safe in any order:
	// pages from other sources queue in the mailbox until their stream's
	// turn.
	for src := 0; src < size; src++ {
		s := recvs[src]
		if s == nil {
			continue
		}
		for !s.finished {
			data, _ := s.req.Wait()
			if err := mr.stashAggPage(s, src, data.([]byte)); err != nil {
				return err
			}
			if !s.finished {
				s.req = mr.comm.Irecv(src, TagAggPage)
			}
		}
	}

	// Rebuild the KV rank-grouped in rank order, adopting page frames
	// wholesale — received buffers become store pages without a decode.
	out := mr.newLocalKV()
	var recvBytes int64
	for src := 0; src < size; src++ {
		if src == rank {
			for i, pg := range selfPages {
				if err := out.store.appendEncodedPage(pg, selfN[i]); err != nil {
					return err
				}
			}
			continue
		}
		s := recvs[src]
		for i, pg := range s.pages {
			if err := out.store.appendEncodedPage(pg, s.npairs[i]); err != nil {
				return err
			}
		}
		recvBytes += s.bytes
	}
	mr.kv.reset()
	mr.retireKV(mr.kv)
	mr.kv = out

	mr.stats.ExchangedBytes += sentBytes
	mr.mExchSent.Add(sentBytes)
	mr.stats.ExchangedBytesRecv += recvBytes
	mr.mExchRecv.Add(recvBytes)
	mr.board.AddExchange(sentBytes, recvBytes)
	if mr.tr != nil {
		mr.tr.Instant("mrmpi", "exchange",
			obs.Arg{Key: "sent", Val: sentBytes}, obs.Arg{Key: "recv", Val: recvBytes})
	}
	return nil
}
