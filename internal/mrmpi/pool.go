package mrmpi

import (
	"fmt"
	"sync"
)

// Intra-rank parallel map execution. Each MPI rank may run its map tasks on
// a bounded pool of Options.MapWorkers goroutines while the rank goroutine
// retains exclusive ownership of everything shared: the communicator (task
// sources fetch on the rank goroutine, so the master protocol's Send/Recv
// never runs concurrently), the rank KV, and the stats counters. Workers
// emit into per-task staging KVs that the rank goroutine merges in task
// DISPATCH order — so the rank KV's byte stream, and with it aggregation,
// spill layout, and final output, is identical to a serial run regardless
// of worker count or task completion order.

// runTasks drains a task source through run, serially or on a worker pool
// per Options.MapWorkers. next is always called on the caller's goroutine.
func (mr *MapReduce) runTasks(run MapWorkerFunc, next func() (int, bool)) error {
	if w := mr.opt.MapWorkers; w > 1 {
		return mr.runTasksPooled(run, next, w)
	}
	for {
		itask, ok := next()
		if !ok {
			return nil
		}
		mr.stats.MapTasks++
		if err := run(itask, -1, mr.kv); err != nil {
			return fmt.Errorf("mrmpi: map task %d: %w", itask, err)
		}
	}
}

// poolTask is one dispatched unit: seq is the dispatch ordinal that fixes
// the merge order.
type poolTask struct {
	seq, itask int
}

// poolResult is one completed unit, carrying the staging KV its pairs were
// emitted into.
type poolResult struct {
	seq, itask int
	kv         *KeyValue
	err        error
}

// runTasksPooled executes tasks on `workers` goroutines. The dispatch loop
// interleaves fetching (next), handing tasks to idle workers, and merging
// finished staging KVs; a select keeps the rank goroutine from blocking on
// a full task queue while results wait. On a task error no new tasks are
// fetched (matching the serial early stop), every already-dispatched task
// is still drained, and the lowest-dispatch-order error is returned.
func (mr *MapReduce) runTasksPooled(run MapWorkerFunc, next func() (int, bool), workers int) error {
	tasks := make(chan poolTask)
	results := make(chan poolResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := range tasks {
				kv := mr.newLocalKV()
				err := run(t.itask, w, kv)
				results <- poolResult{seq: t.seq, itask: t.itask, kv: kv, err: err}
			}
		}(w)
	}

	var (
		held        *poolTask              // fetched but not yet handed to a worker
		pending     = map[int]poolResult{} // finished, waiting for their merge turn
		seq         int                    // next dispatch ordinal
		nextSeq     int                    // next ordinal to merge
		outstanding int                    // dispatched, result not yet received
		fetchMore   = true
		firstErr    error
		mergeErr    error
	)
	// merge folds every result whose turn has come into the rank KV, in
	// dispatch order. Pages are adopted wholesale (already wire-encoded);
	// page boundaries may differ from a serial run but the frame sequence —
	// the bytes every consumer sees — does not.
	merge := func(r poolResult) {
		pending[r.seq] = r
		for {
			q, ok := pending[nextSeq]
			if !ok {
				return
			}
			delete(pending, nextSeq)
			nextSeq++
			if q.err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mrmpi: map task %d: %w", q.itask, q.err)
			}
			if q.err == nil && firstErr == nil && mergeErr == nil {
				pages, err := q.kv.store.retainPages()
				if err == nil {
					for _, p := range pages {
						if len(p) == 0 {
							continue
						}
						if err = mr.kv.store.appendEncodedPage(p, countFrames(p)); err != nil {
							break
						}
					}
				}
				if err != nil {
					mergeErr = fmt.Errorf("mrmpi: merging map task %d output: %w", q.itask, err)
				}
			}
			mr.retireKV(q.kv)
			q.kv.reset()
		}
	}

	for {
		if held == nil && fetchMore {
			if itask, ok := next(); ok {
				held = &poolTask{seq: seq, itask: itask}
				seq++
			} else {
				fetchMore = false
			}
		}
		if held == nil && outstanding == 0 {
			break
		}
		if held != nil {
			select {
			case tasks <- *held:
				held = nil
				outstanding++
				mr.stats.MapTasks++
			case r := <-results:
				outstanding--
				if r.err != nil {
					fetchMore = false
				}
				merge(r)
			}
		} else {
			r := <-results
			outstanding--
			if r.err != nil {
				fetchMore = false
			}
			merge(r)
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return mergeErr
}
