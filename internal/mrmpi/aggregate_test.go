package mrmpi

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpi"
)

// TestDefaultHashMatchesFNV pins the inlined DefaultHash to hash/fnv's
// FNV-1a output. Key placement decides which rank owns every key after
// Aggregate, so a drift here would silently reshuffle all workloads.
func TestDefaultHashMatchesFNV(t *testing.T) {
	keys := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("key7"),
		[]byte("the quick brown fox"),
		{0, 1, 2, 255, 254, 128},
		[]byte(strings.Repeat("x", 1000)),
	}
	for i := 0; i < 100; i++ {
		keys = append(keys, []byte(fmt.Sprintf("generated-key-%d", i*7919)))
	}
	for _, nprocs := range []int{1, 2, 3, 4, 5, 7, 16, 1000} {
		for _, key := range keys {
			h := fnv.New32a()
			h.Write(key)
			want := int(h.Sum32() % uint32(nprocs))
			if got := DefaultHash(key, nprocs); got != want {
				t.Fatalf("DefaultHash(%q, %d) = %d, want %d (hash/fnv)", key, nprocs, got, want)
			}
		}
	}
}

// emitDeterministic fills kv with rank-tagged pairs in a fixed order and
// returns the same pairs for reference-model use. Values are sized so that
// a small PageSize forces many pages per (source, destination) stream —
// deeper than the Isend in-flight window.
func emitDeterministic(rank, npairs int) [][2]string {
	pairs := make([][2]string, npairs)
	for i := range pairs {
		pairs[i] = [2]string{
			fmt.Sprintf("key-%03d", i%37),
			fmt.Sprintf("r%d-val-%04d-%s", rank, i, strings.Repeat("v", i%11)),
		}
	}
	return pairs
}

// expectedAfterAggregate applies the determinism contract to the per-rank
// emission lists: rank d receives, grouped by source rank in rank order,
// every pair that hashes to d in its source's insertion order.
func expectedAfterAggregate(emitted [][][2]string, hash HashFunc, size int) [][]string {
	out := make([][]string, size)
	for d := 0; d < size; d++ {
		for src := 0; src < size; src++ {
			for _, p := range emitted[src] {
				if hash([]byte(p[0]), size) == d {
					out[d] = append(out[d], p[0]+"\x00"+p[1])
				}
			}
		}
	}
	return out
}

func collectKV(kv *KeyValue) []string {
	var got []string
	kv.Each(func(k, v []byte) error {
		got = append(got, string(k)+"\x00"+string(v))
		return nil
	})
	return got
}

// TestAggregateDeterministicRankOrder checks the streaming shuffle's
// byte-identical determinism contract on a multi-page pipeline: with a tiny
// PageSize every (source, destination) stream spans many pages (more than
// the in-flight window), yet each rank's post-aggregate KV must equal the
// reference model exactly — grouped by source rank, per-source insertion
// order preserved.
func TestAggregateDeterministicRankOrder(t *testing.T) {
	const nranks = 4
	const npairs = 200
	emitted := make([][][2]string, nranks)
	for r := 0; r < nranks; r++ {
		emitted[r] = emitDeterministic(r, npairs)
	}
	want := expectedAfterAggregate(emitted, DefaultHash, nranks)

	var mu sync.Mutex
	got := make([][]string, nranks)
	runMR(t, nranks, Options{PageSize: 64}, func(mr *MapReduce) error {
		rank := mr.Comm().Rank()
		for _, p := range emitted[rank] {
			mr.KV().Add([]byte(p[0]), []byte(p[1]))
		}
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		g := collectKV(mr.KV())
		mu.Lock()
		got[rank] = g
		mu.Unlock()
		return nil
	})
	for d := 0; d < nranks; d++ {
		if len(got[d]) != len(want[d]) {
			t.Fatalf("rank %d: %d pairs, want %d", d, len(got[d]), len(want[d]))
		}
		for i := range want[d] {
			if got[d][i] != want[d][i] {
				t.Fatalf("rank %d pair %d: got %q, want %q (determinism contract broken)",
					d, i, got[d][i], want[d][i])
			}
		}
	}
}

// TestAggregateBackToBackRounds runs two aggregates in a row with different
// hash functions over the same communicator. The sentinel protocol must
// delimit the rounds (page streams from round two must not bleed into round
// one), and the second round's output must match the reference model applied
// to the first round's output.
func TestAggregateBackToBackRounds(t *testing.T) {
	const nranks = 3
	const npairs = 120
	altHash := func(key []byte, nprocs int) int {
		return (DefaultHash(key, nprocs) + 1) % nprocs
	}
	emitted := make([][][2]string, nranks)
	for r := 0; r < nranks; r++ {
		emitted[r] = emitDeterministic(r, npairs)
	}
	after1 := expectedAfterAggregate(emitted, DefaultHash, nranks)
	// Round two's inputs are round one's outputs, in their landed order.
	mid := make([][][2]string, nranks)
	for r := 0; r < nranks; r++ {
		for _, kv := range after1[r] {
			k, v, _ := strings.Cut(kv, "\x00")
			mid[r] = append(mid[r], [2]string{k, v})
		}
	}
	want := expectedAfterAggregate(mid, altHash, nranks)

	var mu sync.Mutex
	got := make([][]string, nranks)
	runMR(t, nranks, Options{PageSize: 64}, func(mr *MapReduce) error {
		rank := mr.Comm().Rank()
		for _, p := range emitted[rank] {
			mr.KV().Add([]byte(p[0]), []byte(p[1]))
		}
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		if err := mr.Aggregate(altHash); err != nil {
			return err
		}
		g := collectKV(mr.KV())
		mu.Lock()
		got[rank] = g
		mu.Unlock()
		return nil
	})
	for d := 0; d < nranks; d++ {
		if len(got[d]) != len(want[d]) {
			t.Fatalf("rank %d after round 2: %d pairs, want %d", d, len(got[d]), len(want[d]))
		}
		for i := range want[d] {
			if got[d][i] != want[d][i] {
				t.Fatalf("rank %d round-2 pair %d: got %q, want %q", d, i, got[d][i], want[d][i])
			}
		}
	}
}

// TestAggregateSingleRank: the one-rank short-circuit must leave the KV
// untouched (every key already lives on its home rank).
func TestAggregateSingleRank(t *testing.T) {
	runMR(t, 1, Options{}, func(mr *MapReduce) error {
		mr.KV().AddString("a", []byte("1"))
		mr.KV().AddString("b", []byte("2"))
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		got := collectKV(mr.KV())
		if len(got) != 2 || got[0] != "a\x001" || got[1] != "b\x002" {
			return fmt.Errorf("single-rank aggregate disturbed the KV: %q", got)
		}
		st := mr.Stats()
		if st.ExchangedBytes != 0 || st.ExchangedBytesRecv != 0 {
			return fmt.Errorf("single-rank aggregate counted exchange bytes: %+v", st)
		}
		return nil
	})
}

// TestAggregateInvalidHashRank: a hash that maps outside [0, nprocs) must
// surface as an error, not a panic or a hang.
func TestAggregateInvalidHashRank(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		mr := New(c)
		defer mr.Close()
		mr.KV().AddString("k", []byte("v"))
		return mr.Aggregate(func(key []byte, nprocs int) int { return nprocs + 3 })
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("err = %v, want invalid-rank error", err)
	}
}

// TestAggregateSpilledKV: the send scan must read pages back from disk, and
// the contract must hold when the sender's KV was out-of-core.
func TestAggregateSpilledKV(t *testing.T) {
	const nranks = 2
	const npairs = 300
	emitted := make([][][2]string, nranks)
	for r := 0; r < nranks; r++ {
		emitted[r] = emitDeterministic(r, npairs)
	}
	want := expectedAfterAggregate(emitted, DefaultHash, nranks)
	var mu sync.Mutex
	got := make([][]string, nranks)
	spilled := make([]bool, nranks)
	runMR(t, nranks, Options{PageSize: 128, MemSize: 256}, func(mr *MapReduce) error {
		rank := mr.Comm().Rank()
		for _, p := range emitted[rank] {
			mr.KV().Add([]byte(p[0]), []byte(p[1]))
		}
		sp := mr.KV().Spills() > 0
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		g := collectKV(mr.KV())
		mu.Lock()
		got[rank] = g
		spilled[rank] = sp
		mu.Unlock()
		return nil
	})
	for r, sp := range spilled {
		if !sp {
			t.Fatalf("rank %d never spilled; MemSize too large for this test", r)
		}
	}
	for d := 0; d < nranks; d++ {
		if len(got[d]) != len(want[d]) {
			t.Fatalf("rank %d: %d pairs, want %d", d, len(got[d]), len(want[d]))
		}
		for i := range want[d] {
			if got[d][i] != want[d][i] {
				t.Fatalf("rank %d pair %d: got %q, want %q", d, i, got[d][i], want[d][i])
			}
		}
	}
}
