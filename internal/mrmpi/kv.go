package mrmpi

// KeyValue stores key-value pairs in paged, spillable storage. Keys and
// values are arbitrary byte strings. Frames on a page are:
//
//	uvarint(len(key)) key uvarint(len(value)) value
type KeyValue struct {
	store *pagedStore
}

// newKeyValue creates an empty KV with the given paging configuration.
func newKeyValue(spillDir string, pageSize int, memLimit int64) *KeyValue {
	return &KeyValue{store: newPagedStore("kv", spillDir, pageSize, memLimit)}
}

// Add appends one pair; key and value are copied. The frame is encoded
// directly into the page under construction (one copy of each byte, no
// staging buffer), so steady-state Adds allocate nothing.
func (kv *KeyValue) Add(key, value []byte) {
	s := kv.store
	need := len(key) + len(value) + 2*maxUvarintLen
	if err := s.beginRecord(need); err != nil {
		panic(err) // spill failure: environment problem, not user error
	}
	s.cur = putFrame(s.cur, key, value)
	s.nrec++
}

// AddString appends one pair with a string key.
func (kv *KeyValue) AddString(key string, value []byte) {
	kv.Add([]byte(key), value)
}

// N reports the local number of pairs.
func (kv *KeyValue) N() int { return kv.store.nrec }

// Bytes reports the local payload size in bytes.
func (kv *KeyValue) Bytes() int64 { return kv.store.bytesTotal() }

// Spills reports how many pages have been written to disk (out-of-core
// activity).
func (kv *KeyValue) Spills() int { return kv.store.nspill }

// Each streams every pair in insertion order. The key and value slices are
// only valid during the callback; copy them to retain.
func (kv *KeyValue) Each(fn func(key, value []byte) error) error {
	return kv.store.eachPage(func(data []byte) error {
		fr := frameReader{data: data}
		for fr.next() {
			if err := fn(fr.key, fr.val); err != nil {
				return err
			}
		}
		return nil
	})
}

// reset drops all pairs and spill files.
func (kv *KeyValue) reset() { kv.store.reset() }

// KeyMultiValue stores grouped pairs: each unique key with all its values.
// Frames on a page are:
//
//	uvarint(len(key)) key uvarint(nvalues) { uvarint(len(v)) v }*
type KeyMultiValue struct {
	store *pagedStore
}

func newKeyMultiValue(spillDir string, pageSize int, memLimit int64) *KeyMultiValue {
	return &KeyMultiValue{store: newPagedStore("kmv", spillDir, pageSize, memLimit)}
}

// Add appends one grouped entry; all slices are copied. Like KeyValue.Add,
// the record is encoded straight into the page under construction, so
// grouped emits (the Convert arena copy) copy each byte exactly once.
func (kmv *KeyMultiValue) Add(key []byte, values [][]byte) {
	s := kmv.store
	need := len(key) + 2*maxUvarintLen
	for _, v := range values {
		need += len(v) + maxUvarintLen
	}
	if err := s.beginRecord(need); err != nil {
		panic(err)
	}
	rec := putUvarint(s.cur, uint64(len(key)))
	rec = append(rec, key...)
	rec = putUvarint(rec, uint64(len(values)))
	for _, v := range values {
		rec = putUvarint(rec, uint64(len(v)))
		rec = append(rec, v...)
	}
	s.cur = rec
	s.nrec++
}

// N reports the local number of unique keys.
func (kmv *KeyMultiValue) N() int { return kmv.store.nrec }

// Each streams every grouped entry. The slices are only valid during the
// callback.
func (kmv *KeyMultiValue) Each(fn func(key []byte, values [][]byte) error) error {
	var vals [][]byte
	return kmv.store.eachPage(func(data []byte) error {
		for len(data) > 0 {
			klen, n := getUvarint(data)
			data = data[n:]
			key := data[:klen]
			data = data[klen:]
			nvals, n := getUvarint(data)
			data = data[n:]
			vals = vals[:0]
			for i := uint64(0); i < nvals; i++ {
				vlen, n := getUvarint(data)
				data = data[n:]
				vals = append(vals, data[:vlen])
				data = data[vlen:]
			}
			if err := fn(key, vals); err != nil {
				return err
			}
		}
		return nil
	})
}

func (kmv *KeyMultiValue) reset() { kmv.store.reset() }
