package mrmpi_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mpi"
	"repro/internal/mrmpi"
)

// The canonical MapReduce word count on 3 ranks with the master-worker map
// style the paper uses.
func Example() {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"fox and dog",
	}
	var mu sync.Mutex
	counts := map[string]int{}
	err := mpi.Run(3, func(c *mpi.Comm) error {
		mr := mrmpi.NewWith(c, mrmpi.Options{MapStyle: mrmpi.MapStyleMaster})
		defer mr.Close()
		if _, err := mr.Map(len(docs), func(itask int, kv *mrmpi.KeyValue) error {
			for _, w := range strings.Fields(docs[itask]) {
				kv.AddString(w, []byte{1})
			}
			return nil
		}); err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		_, err := mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
			mu.Lock()
			counts[string(key)] += len(values)
			mu.Unlock()
			return nil
		})
		return err
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var words []string
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		fmt.Printf("%s=%d ", w, counts[w])
	}
	fmt.Println()
	// Output: and=1 brown=1 dog=2 fox=2 lazy=1 quick=1 the=2
}
