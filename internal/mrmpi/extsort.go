package mrmpi

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

// External (sort-based) convert: when the in-memory grouping index of
// Convert would blow the memory budget, the KV pairs are sorted into
// on-disk runs and merge-grouped instead — true out-of-core operation for
// the grouping step, complementing the paged KV/KMV stores. Keys emerge in
// lexicographic order (the in-memory path preserves first-appearance
// order); values within a key keep their insertion order.

// kvEntry is one pair staged for sorting, with its global sequence number
// to keep the per-key value order stable.
type kvEntry struct {
	key, value []byte
	seq        int64
}

// convertExternal implements MapReduce.Convert via external sort-group.
func (mr *MapReduce) convertExternal() error {
	memLimit := mr.opt.MemSize
	if memLimit <= 0 {
		memLimit = DefaultMemSize
	}

	var runs []string
	defer func() {
		for _, r := range runs {
			os.Remove(r)
		}
	}()

	var batch []kvEntry
	var batchBytes int64
	var seq int64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		var sp obs.Span
		if mr.tr != nil {
			sp = mr.tr.Begin("mrmpi", "convert.spill.run",
				obs.Arg{Key: "entries", Val: len(batch)})
		}
		sort.SliceStable(batch, func(i, j int) bool {
			c := bytes.Compare(batch[i].key, batch[j].key)
			if c != 0 {
				return c < 0
			}
			return batch[i].seq < batch[j].seq
		})
		path, nbytes, err := writeRun(mr.opt.SpillDir, batch)
		sp.End(obs.Arg{Key: "bytes", Val: nbytes})
		if err != nil {
			return err
		}
		mr.stats.SpillBytes += nbytes
		mr.mSpillBytes.Add(nbytes)
		runs = append(runs, path)
		batch = batch[:0]
		batchBytes = 0
		return nil
	}

	err := mr.kv.Each(func(key, value []byte) error {
		e := kvEntry{
			key:   append([]byte(nil), key...),
			value: append([]byte(nil), value...),
			seq:   seq,
		}
		seq++
		batch = append(batch, e)
		batchBytes += int64(len(key) + len(value) + 32)
		if batchBytes >= memLimit {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}

	mr.kv.reset()
	mr.kmv.reset()
	var sp obs.Span
	if mr.tr != nil {
		sp = mr.tr.Begin("mrmpi", "convert.merge",
			obs.Arg{Key: "runs", Val: len(runs)})
	}
	defer sp.End()
	return mergeRuns(runs, func(key []byte, values [][]byte) {
		mr.kmv.Add(key, values)
	})
}

// Run file framing: uvarint klen, key, uvarint seq, uvarint vlen, value.
// Returns the run path and the number of bytes written.
func writeRun(dir string, entries []kvEntry) (string, int64, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "mrmpi-run-*.kv")
	if err != nil {
		return "", 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var written int64
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(tmp[:], v)
		written += int64(n)
		_, err := bw.Write(tmp[:n])
		return err
	}
	for _, e := range entries {
		if err := put(uint64(len(e.key))); err != nil {
			return "", 0, fail(f, err)
		}
		if _, err := bw.Write(e.key); err != nil {
			return "", 0, fail(f, err)
		}
		if err := put(uint64(e.seq)); err != nil {
			return "", 0, fail(f, err)
		}
		if err := put(uint64(len(e.value))); err != nil {
			return "", 0, fail(f, err)
		}
		if _, err := bw.Write(e.value); err != nil {
			return "", 0, fail(f, err)
		}
		written += int64(len(e.key) + len(e.value))
	}
	if err := bw.Flush(); err != nil {
		return "", 0, fail(f, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", 0, err
	}
	return f.Name(), written, nil
}

func fail(f *os.File, err error) error {
	f.Close()
	os.Remove(f.Name())
	return err
}

// runReader streams one sorted run.
type runReader struct {
	br   *bufio.Reader
	f    *os.File
	cur  kvEntry
	done bool
}

func openRun(path string) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &runReader{br: bufio.NewReaderSize(f, 1<<16), f: f}
	if err := r.next(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *runReader) next() error {
	klen, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.done = true
		r.f.Close()
		return nil
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r.br, key); err != nil {
		return fmt.Errorf("mrmpi: corrupt run file: %w", err)
	}
	seqv, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("mrmpi: corrupt run file: %w", err)
	}
	vlen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("mrmpi: corrupt run file: %w", err)
	}
	value := make([]byte, vlen)
	if _, err := io.ReadFull(r.br, value); err != nil {
		return fmt.Errorf("mrmpi: corrupt run file: %w", err)
	}
	r.cur = kvEntry{key: key, value: value, seq: int64(seqv)}
	return nil
}

// runHeap merges runs by (key, seq).
type runHeap []*runReader

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].cur.key, h[j].cur.key)
	if c != 0 {
		return c < 0
	}
	return h[i].cur.seq < h[j].cur.seq
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(*runReader)) }
func (h *runHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// mergeRuns streams the sorted union of all runs, emitting one grouped
// call per unique key.
func mergeRuns(paths []string, emit func(key []byte, values [][]byte)) error {
	h := make(runHeap, 0, len(paths))
	for _, p := range paths {
		r, err := openRun(p)
		if err != nil {
			return err
		}
		if !r.done {
			h = append(h, r)
		}
	}
	heap.Init(&h)

	var curKey []byte
	var curVals [][]byte
	flush := func() {
		if curKey != nil {
			emit(curKey, curVals)
			curKey = nil
			curVals = nil
		}
	}
	for h.Len() > 0 {
		r := h[0]
		e := r.cur
		if curKey == nil || !bytes.Equal(curKey, e.key) {
			flush()
			curKey = e.key
		}
		curVals = append(curVals, e.value)
		if err := r.next(); err != nil {
			return err
		}
		if r.done {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	flush()
	return nil
}
