package mrmpi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// TestFourRankJobProducesValidChromeTrace runs a full map/collate/reduce/
// gather job on 4 ranks with tracing and metrics enabled and checks the
// exported Chrome trace end to end: the JSON parses, spans nest (every B has
// a matching E), per-rank clocks are monotonic, and every phase shows up on
// every rank.
func TestFourRankJobProducesValidChromeTrace(t *testing.T) {
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	opts := mpi.RunOptions{Trace: tracer, Metrics: reg}
	err := mpi.RunWith(4, opts, func(c *mpi.Comm) error {
		mr := New(c)
		defer mr.Close()
		if _, err := mr.Map(16, func(itask int, kv *KeyValue) error {
			for i := 0; i < 8; i++ {
				kv.AddString(fmt.Sprintf("key%d", (itask+i)%10), []byte{byte(itask)})
			}
			return nil
		}); err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		if err := mr.SortKeys(nil); err != nil {
			return err
		}
		if _, err := mr.Reduce(func(key []byte, values [][]byte, out *KeyValue) error {
			out.Add(key, []byte{byte(len(values))})
			return nil
		}); err != nil {
			return err
		}
		if _, err := mr.Gather(1); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Golden structural properties of the exported trace.
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	var anyJSON struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &anyJSON); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(anyJSON.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	events, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(events); err != nil {
		t.Fatalf("trace fails validation: %v", err)
	}

	// Every collective phase must appear on every rank.
	type rankPhase struct {
		rank  int
		phase string
	}
	seen := map[rankPhase]bool{}
	for _, ev := range events {
		if ev.Type == obs.BeginEvent && ev.Cat == "mrmpi" {
			seen[rankPhase{ev.Rank, ev.Name}] = true
		}
	}
	for rank := 0; rank < 4; rank++ {
		for _, phase := range []string{"map", "collate", "aggregate", "convert", "sort", "reduce", "gather"} {
			if !seen[rankPhase{rank, phase}] {
				t.Errorf("rank %d: no %q span in trace", rank, phase)
			}
		}
		if !seen[rankPhase{rank, "map.task"}] {
			t.Errorf("rank %d: no per-task map spans", rank)
		}
	}

	// Each map.task End must carry the task's own output volume (every task
	// in this job emits 8 pairs of 1 byte each plus keys).
	taskEnds := 0
	for _, ev := range events {
		if ev.Type != obs.EndEvent || ev.Cat != "mrmpi" || ev.Name != "map.task" {
			continue
		}
		taskEnds++
		args := map[string]any{}
		for _, a := range ev.Args {
			args[a.Key] = a.Val
		}
		if p, ok := args["pairs"].(float64); !ok || p != 8 {
			t.Errorf("map.task end args pairs = %v, want 8", args["pairs"])
		}
		if b, ok := args["bytes"].(float64); !ok || b <= 0 {
			t.Errorf("map.task end args bytes = %v, want > 0", args["bytes"])
		}
	}
	if taskEnds != 16 {
		t.Errorf("map.task end events = %d, want 16", taskEnds)
	}

	// Per-phase summary must produce stats for each rank.
	stats := obs.Summarize(events)
	if len(stats) == 0 {
		t.Fatal("no span stats from a traced run")
	}

	s := reg.Snapshot()
	vals := map[string]int64{}
	for _, c := range s.Counters {
		vals[c.Name] = c.Value
	}
	if vals["mrmpi.map.tasks"] != 16 {
		t.Errorf("mrmpi.map.tasks = %d, want 16", vals["mrmpi.map.tasks"])
	}
	if vals["mrmpi.kv.emitted"] == 0 {
		t.Error("mrmpi.kv.emitted not counted")
	}
	if vals["mrmpi.exchange.sent.bytes"] == 0 || vals["mrmpi.exchange.recv.bytes"] == 0 {
		t.Errorf("exchange bytes not counted: sent=%d recv=%d",
			vals["mrmpi.exchange.sent.bytes"], vals["mrmpi.exchange.recv.bytes"])
	}
	// Conservation: globally, bytes sent == bytes received.
	if vals["mrmpi.exchange.sent.bytes"] != vals["mrmpi.exchange.recv.bytes"] {
		t.Errorf("exchange bytes not conserved: sent=%d recv=%d",
			vals["mrmpi.exchange.sent.bytes"], vals["mrmpi.exchange.recv.bytes"])
	}
}

// TestExchangedBytesRecvAndConservation checks the Stats accounting fixed in
// this change: received bytes are counted, self-traffic is excluded from
// both directions, and send/recv totals balance across ranks.
func TestExchangedBytesRecvAndConservation(t *testing.T) {
	const ranks = 4
	var mu sync.Mutex
	perRank := make([]Stats, ranks)
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		mr := New(c)
		defer mr.Close()
		if _, err := mr.Map(ranks*4, func(itask int, kv *KeyValue) error {
			kv.AddString(fmt.Sprintf("key%d", itask), []byte("v"))
			return nil
		}); err != nil {
			return err
		}
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		st := mr.Stats()
		mu.Lock()
		perRank[c.Rank()] = st
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent, recvd int64
	for r, st := range perRank {
		sent += st.ExchangedBytes
		recvd += st.ExchangedBytesRecv
		t.Logf("rank %d: sent=%d recv=%d", r, st.ExchangedBytes, st.ExchangedBytesRecv)
	}
	if sent == 0 {
		t.Fatal("no exchange traffic in a 4-rank aggregate")
	}
	if sent != recvd {
		t.Fatalf("global sent (%d) != global received (%d)", sent, recvd)
	}
}

// TestSpillBytesCountsRunsAndPages forces both out-of-core paths — page
// spills in the KV store and external-sort runs in Convert — and checks
// SpillBytes sees them.
func TestSpillBytesCountsRunsAndPages(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{
			PageSize: 256,
			MemSize:  1024,
			SpillDir: t.TempDir(),
		})
		defer mr.Close()
		if _, err := mr.Map(1, func(itask int, kv *KeyValue) error {
			for i := 0; i < 200; i++ {
				kv.AddString(fmt.Sprintf("key%03d", i%17), bytes.Repeat([]byte{'x'}, 40))
			}
			return nil
		}); err != nil {
			return err
		}
		if err := mr.Convert(); err != nil {
			return err
		}
		st := mr.Stats()
		if st.Spills == 0 {
			return fmt.Errorf("expected page spills with a 1KB budget, got 0")
		}
		if st.SpillBytes == 0 {
			return fmt.Errorf("SpillBytes = 0 despite %d page spills", st.Spills)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMapTasksTraceSafely exercises tracing from a master-worker
// map where multiple worker goroutines write spans concurrently (each to its
// own rank buffer); run under -race this is the data-race gate for the
// tracing fast path.
func TestConcurrentMapTasksTraceSafely(t *testing.T) {
	tracer := obs.NewTracer()
	err := mpi.RunWith(4, mpi.RunOptions{Trace: tracer}, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{MapStyle: MapStyleMaster})
		defer mr.Close()
		_, err := mr.Map(64, func(itask int, kv *KeyValue) error {
			kv.AddString(fmt.Sprintf("k%d", itask), []byte("v"))
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(tracer.Events()); err != nil {
		t.Fatal(err)
	}
}
