package mrmpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/mpi"
)

func TestKeyValueBasics(t *testing.T) {
	kv := newKeyValue(t.TempDir(), 0, 0)
	kv.Add([]byte("a"), []byte("1"))
	kv.AddString("b", []byte("2"))
	kv.Add([]byte(""), nil) // empty key and value are legal
	if kv.N() != 3 {
		t.Fatalf("N = %d", kv.N())
	}
	var got []string
	err := kv.Each(func(k, v []byte) error {
		got = append(got, fmt.Sprintf("%s=%s", k, v))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a=1", "b=2", "="}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestKeyValueCopiesInputs(t *testing.T) {
	kv := newKeyValue(t.TempDir(), 0, 0)
	key := []byte("key")
	val := []byte("val")
	kv.Add(key, val)
	key[0] = 'X'
	val[0] = 'X'
	kv.Each(func(k, v []byte) error {
		if string(k) != "key" || string(v) != "val" {
			t.Errorf("KV aliased caller memory: %q %q", k, v)
		}
		return nil
	})
}

func TestKeyValueSpill(t *testing.T) {
	dir := t.TempDir()
	// Tiny pages and budget force out-of-core operation.
	kv := newKeyValue(dir, 64, 128)
	const n = 500
	for i := 0; i < n; i++ {
		kv.Add([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("value%04d", i)))
	}
	if kv.Spills() == 0 {
		t.Fatalf("expected spills with 128-byte budget")
	}
	i := 0
	err := kv.Each(func(k, v []byte) error {
		wantK := fmt.Sprintf("key%04d", i)
		wantV := fmt.Sprintf("value%04d", i)
		if string(k) != wantK || string(v) != wantV {
			return fmt.Errorf("pair %d: got %s=%s", i, k, v)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("iterated %d pairs, want %d", i, n)
	}
	kv.reset()
	if kv.N() != 0 {
		t.Errorf("reset did not clear")
	}
}

func TestKeyValueLargeRecord(t *testing.T) {
	kv := newKeyValue(t.TempDir(), 16, 1<<20)
	big := bytes.Repeat([]byte("x"), 1000) // bigger than a page
	kv.Add([]byte("k"), big)
	kv.Add([]byte("k2"), []byte("small"))
	count := 0
	kv.Each(func(k, v []byte) error {
		count++
		if string(k) == "k" && len(v) != 1000 {
			t.Errorf("large record truncated: %d", len(v))
		}
		return nil
	})
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestKeyMultiValueRoundTrip(t *testing.T) {
	kmv := newKeyMultiValue(t.TempDir(), 0, 0)
	kmv.Add([]byte("q1"), [][]byte{[]byte("a"), []byte("bb"), nil})
	kmv.Add([]byte("q2"), nil)
	if kmv.N() != 2 {
		t.Fatalf("N = %d", kmv.N())
	}
	var keys []string
	var counts []int
	kmv.Each(func(k []byte, vals [][]byte) error {
		keys = append(keys, string(k))
		counts = append(counts, len(vals))
		return nil
	})
	if keys[0] != "q1" || keys[1] != "q2" || counts[0] != 3 || counts[1] != 0 {
		t.Errorf("got %v %v", keys, counts)
	}
}

func runMR(t *testing.T, nranks int, opt Options, body func(mr *MapReduce) error) {
	t.Helper()
	if opt.SpillDir == "" {
		opt.SpillDir = t.TempDir()
	}
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		mr := NewWith(c, opt)
		defer mr.Close()
		return body(mr)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// wordCount runs the canonical MapReduce example and checks exact counts.
func TestWordCountEndToEnd(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog jumps",
		"fox and dog and fox",
	}
	want := map[string]int{
		"the": 3, "quick": 2, "brown": 1, "fox": 3, "lazy": 1,
		"dog": 3, "jumps": 1, "and": 2,
	}
	for _, style := range []MapStyle{MapStyleChunk, MapStyleStride, MapStyleMaster} {
		for _, nranks := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v-%d", style, nranks), func(t *testing.T) {
				var mu sync.Mutex
				got := map[string]int{}
				runMR(t, nranks, Options{MapStyle: style}, func(mr *MapReduce) error {
					_, err := mr.Map(len(docs), func(itask int, kv *KeyValue) error {
						for _, w := range strings.Fields(docs[itask]) {
							kv.AddString(w, []byte{1})
						}
						return nil
					})
					if err != nil {
						return err
					}
					nunique, err := mr.Collate(nil)
					if err != nil {
						return err
					}
					if nunique != int64(len(want)) {
						return fmt.Errorf("nunique = %d, want %d", nunique, len(want))
					}
					_, err = mr.Reduce(func(key []byte, values [][]byte, out *KeyValue) error {
						mu.Lock()
						got[string(key)] += len(values)
						mu.Unlock()
						return nil
					})
					return err
				})
				for w, n := range want {
					if got[w] != n {
						t.Errorf("count[%q] = %d, want %d", w, got[w], n)
					}
				}
				if len(got) != len(want) {
					t.Errorf("got %d words, want %d", len(got), len(want))
				}
			})
		}
	}
}

func TestMapChunkCoversAllTasks(t *testing.T) {
	const nmap = 17
	var mu sync.Mutex
	seen := map[int]int{}
	runMR(t, 4, Options{MapStyle: MapStyleChunk}, func(mr *MapReduce) error {
		_, err := mr.Map(nmap, func(itask int, kv *KeyValue) error {
			mu.Lock()
			seen[itask]++
			mu.Unlock()
			return nil
		})
		return err
	})
	for i := 0; i < nmap; i++ {
		if seen[i] != 1 {
			t.Errorf("task %d ran %d times", i, seen[i])
		}
	}
}

func TestMapMasterCoversAllTasksOnce(t *testing.T) {
	const nmap = 101
	var mu sync.Mutex
	seen := map[int]int{}
	byRank := map[int]int{}
	runMR(t, 5, Options{MapStyle: MapStyleMaster}, func(mr *MapReduce) error {
		rank := mr.Comm().Rank()
		_, err := mr.Map(nmap, func(itask int, kv *KeyValue) error {
			mu.Lock()
			seen[itask]++
			byRank[rank]++
			mu.Unlock()
			// Non-trivial task duration: with instant tasks a single fast
			// worker can legitimately drain the whole queue before its
			// peers even ask, making per-worker assertions meaningless.
			time.Sleep(time.Millisecond)
			return nil
		})
		return err
	})
	for i := 0; i < nmap; i++ {
		if seen[i] != 1 {
			t.Errorf("task %d ran %d times", i, seen[i])
		}
	}
	if byRank[0] != 0 {
		t.Errorf("master rank executed %d tasks; should do none", byRank[0])
	}
	for r := 1; r < 5; r++ {
		if byRank[r] == 0 {
			t.Errorf("worker rank %d got no tasks", r)
		}
	}
}

func TestMapMasterSingleRankFallsBack(t *testing.T) {
	runMR(t, 1, Options{MapStyle: MapStyleMaster}, func(mr *MapReduce) error {
		_, err := mr.Map(5, func(itask int, kv *KeyValue) error { return nil })
		if err != nil {
			return err
		}
		if got := mr.Stats().MapTasks; got != 5 {
			return fmt.Errorf("executed %d tasks, want 5", got)
		}
		return nil
	})
}

// TestUnsynchronizedCaptureSingleRank is the runtime twin of mpilint's
// `capture` check: it runs the exact pattern the analyzer flags — a map
// callback writing a captured variable with no synchronization — in the one
// configuration where it is benign (a single rank, so a single goroutine
// invokes the callbacks). CI runs this package under -race; if the map loop
// ever starts invoking callbacks concurrently (e.g. a threaded
// MapStyleMaster), the race detector turns this test into a failing
// reproduction of the bug class the static check exists to prevent, instead
// of letting it surface as a silent miscount in user code.
func TestUnsynchronizedCaptureSingleRank(t *testing.T) {
	sum := 0
	runMR(t, 1, Options{MapStyle: MapStyleMaster}, func(mr *MapReduce) error {
		_, err := mr.Map(50, func(itask int, kv *KeyValue) error {
			sum += itask // mpilint:ignore capture -- deliberately unsynchronized: the capture check's runtime twin
			return nil
		})
		return err
	})
	if want := 50 * 49 / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

// TestChannelSerializedGoroutineEmit is the runtime twin of mpilint's
// `goroutines` check: a spawned goroutine emits through the rank's KeyValue
// handle — the exact shape the analyzer flags — but fully serialized against
// the rank goroutine through a done channel, so only one goroutine ever
// touches the handle at a time. CI runs this package under -race; if the KV
// store ever grows state that channel-ordering cannot protect, this test
// becomes the failing reproduction of the bug class the static check
// guards against.
func TestChannelSerializedGoroutineEmit(t *testing.T) {
	runMR(t, 1, Options{}, func(mr *MapReduce) error {
		total, err := mr.Map(4, func(itask int, kv *KeyValue) error {
			done := make(chan struct{})
			go func() { // mpilint:ignore goroutines -- serialized through done: the goroutines check's runtime twin
				kv.AddString(fmt.Sprintf("k%d", itask), nil)
				close(done)
			}()
			<-done
			return nil
		})
		if err != nil {
			return err
		}
		if total != 4 {
			return fmt.Errorf("emitted %d keys, want 4", total)
		}
		return nil
	})
}

func TestMapReturnsGlobalCount(t *testing.T) {
	runMR(t, 3, Options{}, func(mr *MapReduce) error {
		total, err := mr.Map(6, func(itask int, kv *KeyValue) error {
			for j := 0; j <= itask; j++ {
				kv.AddString(fmt.Sprintf("%d-%d", itask, j), nil)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if total != 21 { // sum 1..7... no: tasks 0..5 emit 1..6 => 21
			return fmt.Errorf("total = %d, want 21", total)
		}
		return nil
	})
}

func TestMapErrorPropagates(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		mr := New(c)
		defer mr.Close()
		_, err := mr.Map(4, func(itask int, kv *KeyValue) error {
			if itask == 2 {
				return fmt.Errorf("task 2 failed")
			}
			return nil
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "task 2 failed") {
		t.Fatalf("error lost: %v", err)
	}
}

func TestAggregatePlacesEqualKeysTogether(t *testing.T) {
	const nranks = 4
	var mu sync.Mutex
	keyRank := map[string][]int{}
	runMR(t, nranks, Options{}, func(mr *MapReduce) error {
		// Every rank emits every key.
		_, err := mr.Map(nranks, func(itask int, kv *KeyValue) error {
			for k := 0; k < 20; k++ {
				kv.AddString(fmt.Sprintf("key%d", k), []byte{byte(itask)})
			}
			return nil
		})
		if err != nil {
			return err
		}
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		seen := map[string]bool{}
		mr.KV().Each(func(k, v []byte) error {
			seen[string(k)] = true
			return nil
		})
		mu.Lock()
		for k := range seen {
			keyRank[k] = append(keyRank[k], mr.Comm().Rank())
		}
		mu.Unlock()
		return nil
	})
	for k, ranks := range keyRank {
		if len(ranks) != 1 {
			t.Errorf("key %q present on ranks %v after aggregate", k, ranks)
		}
	}
	if len(keyRank) != 20 {
		t.Errorf("keys lost: %d", len(keyRank))
	}
}

func TestCollatePreservesEveryValue(t *testing.T) {
	// Property: collate must deliver exactly the multiset of emitted values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 1 + rng.Intn(5)
		nkeys := 1 + rng.Intn(10)
		nmap := 1 + rng.Intn(20)
		var mu sync.Mutex
		got := map[string]int{}
		emitted := 0
		err := mpi.Run(nranks, func(c *mpi.Comm) error {
			mr := New(c)
			defer mr.Close()
			_, err := mr.Map(nmap, func(itask int, kv *KeyValue) error {
				r := rand.New(rand.NewSource(seed + int64(itask)))
				n := r.Intn(10)
				if c.Rank() == 0 || true {
					// Count once globally: map tasks are disjoint.
					mu.Lock()
					emitted += n
					mu.Unlock()
				}
				for i := 0; i < n; i++ {
					val := make([]byte, 8)
					binary.LittleEndian.PutUint64(val, uint64(itask*100+i))
					kv.AddString(fmt.Sprintf("k%d", r.Intn(nkeys)), val)
				}
				return nil
			})
			if err != nil {
				return err
			}
			if _, err := mr.Collate(nil); err != nil {
				return err
			}
			return mr.KMV().Each(func(k []byte, vals [][]byte) error {
				mu.Lock()
				got[string(k)] += len(vals)
				mu.Unlock()
				return nil
			})
		})
		if err != nil {
			t.Logf("run error: %v", err)
			return false
		}
		total := 0
		for _, n := range got {
			total += n
		}
		return total == emitted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConvertGroupsAndOrders(t *testing.T) {
	runMR(t, 1, Options{}, func(mr *MapReduce) error {
		kv := mr.KV()
		kv.AddString("b", []byte("1"))
		kv.AddString("a", []byte("2"))
		kv.AddString("b", []byte("3"))
		if err := mr.Convert(); err != nil {
			return err
		}
		var keys []string
		var vals []string
		mr.KMV().Each(func(k []byte, vs [][]byte) error {
			keys = append(keys, string(k))
			for _, v := range vs {
				vals = append(vals, string(v))
			}
			return nil
		})
		// First-appearance order; values in insertion order.
		if fmt.Sprint(keys) != "[b a]" || fmt.Sprint(vals) != "[1 3 2]" {
			return fmt.Errorf("keys %v vals %v", keys, vals)
		}
		return nil
	})
}

func TestSortKeys(t *testing.T) {
	runMR(t, 1, Options{}, func(mr *MapReduce) error {
		kv := mr.KV()
		for _, k := range []string{"delta", "alpha", "charlie", "bravo"} {
			kv.AddString(k, []byte(k))
		}
		if err := mr.Convert(); err != nil {
			return err
		}
		if err := mr.SortKeys(nil); err != nil {
			return err
		}
		var keys []string
		mr.KMV().Each(func(k []byte, vs [][]byte) error {
			keys = append(keys, string(k))
			return nil
		})
		if fmt.Sprint(keys) != "[alpha bravo charlie delta]" {
			return fmt.Errorf("keys %v", keys)
		}
		return nil
	})
}

func TestGatherToOneRank(t *testing.T) {
	runMR(t, 4, Options{}, func(mr *MapReduce) error {
		mr.KV().AddString(fmt.Sprintf("from%d", mr.Comm().Rank()), nil)
		total, err := mr.Gather(1)
		if err != nil {
			return err
		}
		if total != 4 {
			return fmt.Errorf("total = %d", total)
		}
		if mr.Comm().Rank() == 0 && mr.KV().N() != 4 {
			return fmt.Errorf("rank 0 has %d pairs", mr.KV().N())
		}
		if mr.Comm().Rank() != 0 && mr.KV().N() != 0 {
			return fmt.Errorf("rank %d still has pairs", mr.Comm().Rank())
		}
		return nil
	})
}

func TestGatherToTwoRanks(t *testing.T) {
	runMR(t, 5, Options{}, func(mr *MapReduce) error {
		for i := 0; i < 3; i++ {
			mr.KV().AddString(fmt.Sprintf("r%d-%d", mr.Comm().Rank(), i), nil)
		}
		total, err := mr.Gather(2)
		if err != nil {
			return err
		}
		if total != 15 {
			return fmt.Errorf("total = %d", total)
		}
		if mr.Comm().Rank() >= 2 && mr.KV().N() != 0 {
			return fmt.Errorf("rank %d kept pairs", mr.Comm().Rank())
		}
		return nil
	})
}

func TestGatherValidatesNranks(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		mr := New(c)
		defer mr.Close()
		_, err := mr.Gather(3)
		return err
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestOutOfCoreCollate(t *testing.T) {
	// Force heavy spilling during a full map/collate/reduce cycle and check
	// nothing is lost.
	const nmap = 50
	const perTask = 40
	var mu sync.Mutex
	total := 0
	runMR(t, 3, Options{PageSize: 256, MemSize: 512}, func(mr *MapReduce) error {
		_, err := mr.Map(nmap, func(itask int, kv *KeyValue) error {
			for i := 0; i < perTask; i++ {
				kv.AddString(fmt.Sprintf("key%02d", i%17), bytes.Repeat([]byte{byte(itask)}, 20))
			}
			return nil
		})
		if err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		_, err = mr.Reduce(func(key []byte, values [][]byte, out *KeyValue) error {
			mu.Lock()
			total += len(values)
			mu.Unlock()
			return nil
		})
		return err
	})
	if total != nmap*perTask {
		t.Fatalf("values after collate = %d, want %d", total, nmap*perTask)
	}
}

func TestReduceEmitsNewKV(t *testing.T) {
	runMR(t, 2, Options{}, func(mr *MapReduce) error {
		_, err := mr.Map(10, func(itask int, kv *KeyValue) error {
			kv.AddString(fmt.Sprintf("g%d", itask%3), []byte{byte(itask)})
			return nil
		})
		if err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		total, err := mr.Reduce(func(key []byte, values [][]byte, out *KeyValue) error {
			out.Add(key, []byte{byte(len(values))})
			return nil
		})
		if err != nil {
			return err
		}
		if total != 3 {
			return fmt.Errorf("reduced total = %d, want 3", total)
		}
		return nil
	})
}

func TestStats(t *testing.T) {
	runMR(t, 2, Options{MapStyle: MapStyleChunk}, func(mr *MapReduce) error {
		_, err := mr.Map(4, func(itask int, kv *KeyValue) error {
			kv.AddString("k", []byte("v"))
			return nil
		})
		if err != nil {
			return err
		}
		s := mr.Stats()
		if s.MapTasks != 2 {
			return fmt.Errorf("MapTasks = %d, want 2", s.MapTasks)
		}
		if s.KVEmitted != 2 {
			return fmt.Errorf("KVEmitted = %d, want 2", s.KVEmitted)
		}
		return nil
	})
}

func TestDefaultHashInRange(t *testing.T) {
	f := func(key []byte, n uint8) bool {
		nprocs := int(n%16) + 1
		r := DefaultHash(key, nprocs)
		return r >= 0 && r < nprocs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapStyleString(t *testing.T) {
	if MapStyleChunk.String() != "chunk" || MapStyleMaster.String() != "master" ||
		MapStyleStride.String() != "stride" {
		t.Error("MapStyle.String wrong")
	}
}

func TestMapMasterAffinityCoversAllTasksOnce(t *testing.T) {
	const nmap = 120
	const nres = 10
	var mu sync.Mutex
	seen := map[int]int{}
	switches := map[int]int{}
	lastRes := map[int]int{}
	runMR(t, 5, Options{
		MapStyle: MapStyleMasterAffinity,
		Affinity: func(itask int) int { return itask % nres },
	}, func(mr *MapReduce) error {
		rank := mr.Comm().Rank()
		_, err := mr.Map(nmap, func(itask int, kv *KeyValue) error {
			mu.Lock()
			seen[itask]++
			res := itask % nres
			if prev, ok := lastRes[rank]; ok && prev != res {
				switches[rank]++
			}
			lastRes[rank] = res
			mu.Unlock()
			return nil
		})
		return err
	})
	for i := 0; i < nmap; i++ {
		if seen[i] != 1 {
			t.Errorf("task %d ran %d times", i, seen[i])
		}
	}
	// Locality: with 12 tasks per resource and 4 workers, each worker
	// should run long same-resource streaks; far fewer switches than tasks.
	totalSwitches := 0
	for _, s := range switches {
		totalSwitches += s
	}
	if totalSwitches > nmap/2 {
		t.Errorf("affinity master switched resources %d times over %d tasks", totalSwitches, nmap)
	}
}

func TestMapMasterAffinityRequiresAffinity(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{MapStyle: MapStyleMasterAffinity})
		defer mr.Close()
		_, err := mr.Map(4, func(itask int, kv *KeyValue) error { return nil })
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "Affinity") {
		t.Fatalf("missing affinity not rejected: %v", err)
	}
}

func TestMapMasterAffinitySingleRankFallsBack(t *testing.T) {
	runMR(t, 1, Options{
		MapStyle: MapStyleMasterAffinity,
		Affinity: func(itask int) int { return 0 },
	}, func(mr *MapReduce) error {
		_, err := mr.Map(5, func(itask int, kv *KeyValue) error { return nil })
		if err != nil {
			return err
		}
		if got := mr.Stats().MapTasks; got != 5 {
			return fmt.Errorf("executed %d tasks, want 5", got)
		}
		return nil
	})
}

func TestMapKV(t *testing.T) {
	runMR(t, 3, Options{}, func(mr *MapReduce) error {
		_, err := mr.Map(6, func(itask int, kv *KeyValue) error {
			kv.AddString(fmt.Sprintf("k%d", itask), []byte{byte(itask)})
			return nil
		})
		if err != nil {
			return err
		}
		// Double every value; drop odd tasks.
		total, err := mr.MapKV(func(key, value []byte, out *KeyValue) error {
			if value[0]%2 == 0 {
				out.Add(key, []byte{value[0] * 2})
			}
			return nil
		})
		if err != nil {
			return err
		}
		if total != 3 {
			return fmt.Errorf("total = %d, want 3", total)
		}
		return mr.KV().Each(func(k, v []byte) error {
			if v[0]%4 != 0 && v[0] != 0 {
				return fmt.Errorf("value %d not doubled-even", v[0])
			}
			return nil
		})
	})
}

func TestScrunchRoundTrip(t *testing.T) {
	runMR(t, 2, Options{}, func(mr *MapReduce) error {
		_, err := mr.Map(8, func(itask int, kv *KeyValue) error {
			kv.AddString(fmt.Sprintf("g%d", itask%3), []byte(fmt.Sprintf("v%d", itask)))
			return nil
		})
		if err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		total, err := mr.Scrunch()
		if err != nil {
			return err
		}
		if total != 3 {
			return fmt.Errorf("scrunched keys = %d, want 3", total)
		}
		count := 0
		err = mr.KV().Each(func(k, v []byte) error {
			vals := UnpackScrunched(v)
			if len(vals) == 0 {
				return fmt.Errorf("key %s scrunched to nothing", k)
			}
			count += len(vals)
			return nil
		})
		if err != nil {
			return err
		}
		// Global count of values is checked per-rank sum via allreduce.
		totalVals := mpi.AllreduceSumInt64(mr.Comm(), int64(count))
		if totalVals != 16 { // 8 tasks x 2 ranks? no: 8 tasks total, each emits 1 -> 8
			if totalVals != 8 {
				return fmt.Errorf("values after scrunch = %d, want 8", totalVals)
			}
		}
		return nil
	})
}

func TestSpillDirFailurePanics(t *testing.T) {
	// A file (not a directory) as SpillDir must be rejected loudly.
	dir := t.TempDir()
	filePath := dir + "/afile"
	if err := os.WriteFile(filePath, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := mpi.Run(1, func(c *mpi.Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unusable spill dir")
			}
		}()
		NewWith(c, Options{SpillDir: filePath + "/sub"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConvertExternalMatchesInMemory(t *testing.T) {
	// Force the external sort-group path with a tiny budget and check it
	// produces exactly the same groups (keys sorted, values in insertion
	// order) as the in-memory path.
	build := func(mr *MapReduce) {
		for i := 0; i < 300; i++ {
			mr.KV().AddString(fmt.Sprintf("key%02d", i%23), []byte(fmt.Sprintf("val%03d", i)))
		}
	}
	collect := func(opt Options) map[string][]string {
		groups := map[string][]string{}
		runMR(t, 1, opt, func(mr *MapReduce) error {
			build(mr)
			if err := mr.Convert(); err != nil {
				return err
			}
			return mr.KMV().Each(func(k []byte, vals [][]byte) error {
				for _, v := range vals {
					groups[string(k)] = append(groups[string(k)], string(v))
				}
				return nil
			})
		})
		return groups
	}
	inMem := collect(Options{})
	external := collect(Options{MemSize: 512, PageSize: 256})
	if len(inMem) != 23 || len(external) != 23 {
		t.Fatalf("group counts: %d vs %d", len(inMem), len(external))
	}
	for k, vals := range inMem {
		evals := external[k]
		if len(evals) != len(vals) {
			t.Fatalf("key %s: %d vs %d values", k, len(evals), len(vals))
		}
		for i := range vals {
			if vals[i] != evals[i] {
				t.Fatalf("key %s value %d: %q vs %q (order not preserved)", k, i, vals[i], evals[i])
			}
		}
	}
}

func TestConvertExternalSortedKeys(t *testing.T) {
	runMR(t, 1, Options{MemSize: 256, PageSize: 128}, func(mr *MapReduce) error {
		// Enough volume to exceed the 256-byte budget and force the
		// external path.
		for i := 0; i < 20; i++ {
			for _, k := range []string{"zulu", "alpha", "mike", "bravo"} {
				mr.KV().AddString(k, bytes.Repeat([]byte("x"), 10))
			}
		}
		if err := mr.Convert(); err != nil {
			return err
		}
		var keys []string
		mr.KMV().Each(func(k []byte, vals [][]byte) error {
			keys = append(keys, string(k))
			return nil
		})
		want := []string{"alpha", "bravo", "mike", "zulu"}
		if fmt.Sprint(keys) != fmt.Sprint(want) {
			return fmt.Errorf("external convert keys %v, want sorted %v", keys, want)
		}
		return nil
	})
}

func TestConvertExternalMultiRank(t *testing.T) {
	// Full collate with the external path across ranks: nothing lost.
	var mu sync.Mutex
	total := 0
	runMR(t, 4, Options{MemSize: 512, PageSize: 256}, func(mr *MapReduce) error {
		_, err := mr.Map(40, func(itask int, kv *KeyValue) error {
			for j := 0; j < 25; j++ {
				kv.AddString(fmt.Sprintf("k%d", j%11), bytes.Repeat([]byte{byte(itask)}, 30))
			}
			return nil
		})
		if err != nil {
			return err
		}
		nunique, err := mr.Collate(nil)
		if err != nil {
			return err
		}
		if nunique != 11 {
			return fmt.Errorf("unique keys = %d, want 11", nunique)
		}
		return mr.KMV().Each(func(k []byte, vals [][]byte) error {
			mu.Lock()
			total += len(vals)
			mu.Unlock()
			return nil
		})
	})
	if total != 40*25 {
		t.Fatalf("values = %d, want 1000", total)
	}
}

func TestMapFiles(t *testing.T) {
	paths := []string{"a.fa", "b.fa", "c.fa"}
	var mu sync.Mutex
	seen := map[string]int{}
	runMR(t, 2, Options{}, func(mr *MapReduce) error {
		_, err := mr.MapFiles(paths, func(path string, kv *KeyValue) error {
			mu.Lock()
			seen[path]++
			mu.Unlock()
			return nil
		})
		return err
	})
	for _, p := range paths {
		if seen[p] != 1 {
			t.Errorf("path %s mapped %d times", p, seen[p])
		}
	}
}

func TestKVRandomRoundTripProperty(t *testing.T) {
	// Arbitrary binary keys/values survive paging and spilling intact, in
	// order.
	f := func(pairs [][2][]byte, pageSize uint8) bool {
		kv := newKeyValue(t.TempDir(), int(pageSize)+16, 64)
		for _, p := range pairs {
			kv.Add(p[0], p[1])
		}
		i := 0
		err := kv.Each(func(k, v []byte) error {
			if !bytes.Equal(k, pairs[i][0]) || !bytes.Equal(v, pairs[i][1]) {
				return fmt.Errorf("pair %d mismatch", i)
			}
			i++
			return nil
		})
		defer kv.reset()
		return err == nil && i == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKMVRandomRoundTripProperty(t *testing.T) {
	f := func(key []byte, values [][]byte) bool {
		kmv := newKeyMultiValue(t.TempDir(), 64, 64)
		defer kmv.reset()
		kmv.Add(key, values)
		ok := true
		kmv.Each(func(k []byte, vals [][]byte) error {
			if !bytes.Equal(k, key) || len(vals) != len(values) {
				ok = false
				return nil
			}
			for i := range vals {
				if !bytes.Equal(vals[i], values[i]) {
					ok = false
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
