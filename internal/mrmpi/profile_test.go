package mrmpi

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
)

// TestPhaseProfilerRotatesAtPhases runs a small job with the per-phase
// profiler attached and checks that phase() announced every MapReduce phase
// to it: each phase name must appear in exactly one rotated CPU profile
// segment, and the heap snapshot must close the set.
func TestPhaseProfilerRotatesAtPhases(t *testing.T) {
	prof, err := obs.StartPhaseProfiler(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.RunWith(2, mpi.RunOptions{Profile: prof}, func(c *mpi.Comm) error {
		mr := New(c)
		defer mr.Close()
		if _, err := mr.Map(4, func(itask int, kv *KeyValue) error {
			kv.AddString(fmt.Sprintf("key%d", itask%2), []byte{1})
			return nil
		}); err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		_, err := mr.Reduce(func(key []byte, values [][]byte, out *KeyValue) error {
			out.Add(key, []byte{byte(len(values))})
			return nil
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	files, err := prof.Stop()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, f := range files {
		// cpu.<NN>.<phase>.rank<r>.pprof — middle piece is the phase label.
		parts := strings.Split(filepath.Base(f), ".")
		if parts[0] == "cpu" && len(parts) >= 4 {
			seen[parts[2]]++
		}
	}
	for _, phase := range []string{"map", "collate", "aggregate", "convert", "reduce"} {
		if seen[phase] != 1 {
			t.Errorf("phase %q captured in %d segments, want 1 (files: %v)", phase, seen[phase], files)
		}
	}
	if base := filepath.Base(files[len(files)-1]); base != "heap.pprof" {
		t.Errorf("last file = %s, want heap.pprof", base)
	}
}
