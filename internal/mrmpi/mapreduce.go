package mrmpi

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/comm"
)

// MapStyle selects how Map distributes tasks across ranks, mirroring
// MapReduce-MPI's mapstyle setting.
type MapStyle int

const (
	// MapStyleChunk assigns contiguous task ranges to ranks (mapstyle 0).
	MapStyleChunk MapStyle = iota
	// MapStyleStride assigns tasks round-robin (mapstyle 1).
	MapStyleStride
	// MapStyleMaster dedicates rank 0 as a master that hands tasks to
	// workers on demand (mapstyle 2, "master/slave" in Sandia's docs). This
	// is the mode the paper uses for BLAST, whose work units have highly
	// non-uniform and unpredictable execution times. With a single rank it
	// degrades to MapStyleChunk.
	MapStyleMaster
	// MapStyleMasterAffinity is the paper's proposed location-aware
	// scheduler (its "future work" §): a master–worker mode where the
	// master prefers to hand a worker a task whose resource (set by
	// Options.Affinity, e.g. the DB partition of a BLAST work unit) the
	// worker processed before, scanning at most AffinityLookahead pending
	// tasks. Improving partition locality lets smaller query blocks be
	// used without paying extra partition reloads.
	MapStyleMasterAffinity
)

// AffinityLookahead bounds how far into the pending queue the
// locality-aware master searches for a resource match, so head-of-queue
// tasks cannot starve.
const AffinityLookahead = 64

func (s MapStyle) String() string {
	switch s {
	case MapStyleChunk:
		return "chunk"
	case MapStyleStride:
		return "stride"
	case MapStyleMaster:
		return "master"
	case MapStyleMasterAffinity:
		return "master-affinity"
	default:
		return fmt.Sprintf("MapStyle(%d)", int(s))
	}
}

// Reserved point-to-point tags used by the master–worker protocol and
// Gather. User programs sharing the communicator must avoid this range.
// The tags are exported so the trace analyzer (internal/obs/analyze) can
// recognize master-protocol traffic when measuring dispatch latency.
const (
	// TagReservedBase is the first tag reserved by mrmpi.
	TagReservedBase = 1 << 20
	// TagWorkerReady is a worker's "give me a task" request to the master.
	TagWorkerReady = TagReservedBase + 1
	// TagTaskAssign is the master's task assignment (or -1 stop) reply.
	TagTaskAssign = TagReservedBase + 2
	// TagGatherData carries serialized KV pages during Gather.
	TagGatherData = TagReservedBase + 3
	// TagAggPage carries one encoded page (or the sentinel finish message)
	// of the streaming Aggregate exchange; see aggregate.go for the wire
	// protocol.
	TagAggPage = TagReservedBase + 4
)

// Options configures a MapReduce instance (Sandia's settable parameters).
type Options struct {
	// MapStyle is the task-distribution policy for Map.
	MapStyle MapStyle
	// PageSize is the size of one in-memory KV/KMV page.
	PageSize int
	// MemSize is the per-object in-memory budget before pages spill to disk
	// (out-of-core processing).
	MemSize int64
	// SpillDir is where out-of-core pages are written (default: os.TempDir).
	SpillDir string
	// Affinity maps a task index to a resource identifier (e.g. a DB
	// partition) for MapStyleMasterAffinity. Required for that style.
	Affinity func(itask int) int
	// MapWorkers is the number of map tasks one rank runs concurrently
	// (≤ 1: serial, the MR-MPI behavior). With W > 1 a bounded pool of W
	// goroutines executes tasks while the rank goroutine keeps doing all
	// communication (task fetching, e.g. the master protocol) and merges
	// each task's emitted pairs into the rank KV in task-dispatch order —
	// so the KV byte stream, and with it every downstream phase, is
	// identical to a serial run. The map function must be safe for
	// concurrent calls with distinct tasks (give each worker index its own
	// scratch; see MapWorker).
	MapWorkers int
}

// Stats counts activity on a MapReduce instance since creation. All fields
// are local to this rank; sum or reduce across ranks for global totals.
//
// When the instance was created over a communicator with metrics enabled
// (mpi.RunOptions.Metrics), the same quantities are also published to the
// run's obs.Registry under "mrmpi.*" counter names, which supersedes this
// struct for cross-layer reporting.
type Stats struct {
	// MapTasks is the number of map tasks executed locally.
	MapTasks int
	// KVEmitted is the number of pairs emitted locally by map and reduce.
	KVEmitted int
	// ExchangedBytes is the number of encoded KV bytes this rank SENT to
	// other ranks during Aggregate. Pairs that hash back to this rank are
	// excluded (they never cross the wire).
	ExchangedBytes int64
	// ExchangedBytesRecv is the number of encoded KV bytes this rank
	// RECEIVED from other ranks during Aggregate, self excluded. Across all
	// ranks, sum(ExchangedBytesRecv) == sum(ExchangedBytes).
	ExchangedBytesRecv int64
	// Spills is the number of pages spilled to disk across KV and KMV,
	// including stores retired by Reduce/MapKV/Scrunch replacing the KV.
	Spills int
	// SpillBytes is the total bytes written to disk by out-of-core activity:
	// page spills of the KV/KMV stores plus external-sort run files written
	// by Convert when the KV exceeds the memory budget.
	SpillBytes int64
}

// MapReduce orchestrates map/collate/reduce phases over an MPI communicator.
// All exported methods are collective unless documented otherwise: every
// rank must call them in the same order.
type MapReduce struct {
	comm  *mpi.Comm
	opt   Options
	kv    *KeyValue
	kmv   *KeyMultiValue
	stats Stats

	// tr is this rank's trace buffer (nil when the world runs untraced);
	// phase and per-task spans are emitted through it.
	tr *obs.RankTracer
	// board is this rank's live status slot (nil when the world runs
	// without a board); phase transitions, task progress, and byte totals
	// are published through it.
	board *obs.RankBoard
	// cr is this rank's comm-accounting handle (nil when the world runs
	// without RunOptions.Comm); phase() labels it so every message the MPI
	// layer moves is attributed to the MapReduce phase that sent it.
	cr *comm.Rank
	// fr is this rank's flight-recorder ring (nil when disabled); phase
	// transitions are noted so post-mortems show where each rank was.
	fr *obs.RankRecorder
	// prof is the run's per-phase CPU profiler (nil when disabled); phase()
	// announces every transition so the profile rotates at phase boundaries.
	prof *obs.PhaseProfiler
	// Pre-resolved metrics instruments, all nil (no-op) when the world runs
	// without a registry.
	mTasks, mEmitted         *obs.Counter
	mExchSent, mExchRecv     *obs.Counter
	mSpillPages, mSpillBytes *obs.Counter
}

// New creates a MapReduce instance over comm with default options.
func New(comm *mpi.Comm) *MapReduce {
	return NewWith(comm, Options{})
}

// NewWith creates a MapReduce instance with explicit options.
func NewWith(comm *mpi.Comm, opt Options) *MapReduce {
	if err := spillDirOK(opt.SpillDir); err != nil {
		panic(fmt.Sprintf("mrmpi: spill dir: %v", err))
	}
	mr := &MapReduce{comm: comm, opt: opt}
	mr.tr = comm.Tracer()
	mr.board = comm.Board()
	mr.cr = comm.CommRank()
	mr.fr = comm.FlightRank()
	mr.prof = comm.Profiler()
	reg := comm.Metrics()
	mr.mTasks = reg.Counter("mrmpi.map.tasks")
	mr.mEmitted = reg.Counter("mrmpi.kv.emitted")
	mr.mExchSent = reg.Counter("mrmpi.exchange.sent.bytes")
	mr.mExchRecv = reg.Counter("mrmpi.exchange.recv.bytes")
	mr.mSpillPages = reg.Counter("mrmpi.spill.pages")
	mr.mSpillBytes = reg.Counter("mrmpi.spill.bytes")
	mr.kv = mr.newLocalKV()
	mr.kmv = newKeyMultiValue(opt.SpillDir, opt.PageSize, opt.MemSize)
	mr.kmv.store.cSpills = mr.mSpillPages
	mr.kmv.store.cSpillBytes = mr.mSpillBytes
	return mr
}

// newLocalKV builds a KV wired to this instance's spill instruments; used
// for the primary KV and for the output KVs of Reduce/MapKV/Scrunch.
func (mr *MapReduce) newLocalKV() *KeyValue {
	kv := newKeyValue(mr.opt.SpillDir, mr.opt.PageSize, mr.opt.MemSize)
	kv.store.cSpills = mr.mSpillPages
	kv.store.cSpillBytes = mr.mSpillBytes
	return kv
}

// phase opens one trace span for a collective MapReduce phase on this rank
// and publishes the transition (plus current KV/spill byte totals) to the
// live status board. The zero Span returned when tracing is off is a no-op
// to End.
func (mr *MapReduce) phase(name string) obs.Span {
	if mr.board != nil {
		mr.board.SetPhase(name)
		mr.board.SetKVBytes(mr.kv.Bytes())
		mr.board.SetSpillBytes(mr.Stats().SpillBytes)
	}
	// Label comm accounting with the new phase: every message sent from
	// here until the next transition is attributed to this phase in the
	// comm matrix (receivers bucket under the sender's stamp).
	mr.cr.SetPhase(name)
	mr.fr.Note("phase", name)
	mr.prof.Transition(mr.comm.Rank(), name)
	if mr.tr != nil {
		return mr.tr.Begin("mrmpi", name)
	}
	return obs.Span{}
}

// retireKV folds a store's spill counters into the cumulative stats before
// the store is dropped, so Stats stays "since creation" across Reduce/MapKV/
// Scrunch replacing the KV object.
func (mr *MapReduce) retireKV(kv *KeyValue) {
	mr.stats.Spills += kv.store.nspill
	mr.stats.SpillBytes += kv.store.spillBytes
}

// Comm returns the underlying communicator (for direct MPI calls, which the
// paper mixes with MapReduce calls in the SOM implementation).
func (mr *MapReduce) Comm() *mpi.Comm { return mr.comm }

// KV gives access to the local key-value object (non-collective).
func (mr *MapReduce) KV() *KeyValue { return mr.kv }

// KMV gives access to the local key-multivalue object (non-collective).
func (mr *MapReduce) KMV() *KeyMultiValue { return mr.kmv }

// Stats returns a snapshot of local activity counters (non-collective).
func (mr *MapReduce) Stats() Stats {
	s := mr.stats
	s.Spills += mr.kv.Spills() + mr.kmv.store.nspill
	s.SpillBytes += mr.kv.store.spillBytes + mr.kmv.store.spillBytes
	return s
}

// Close releases spill files. Non-collective but should be called on every
// rank.
func (mr *MapReduce) Close() {
	mr.kv.reset()
	mr.kmv.reset()
}

// MapFunc processes one abstract task, emitting pairs into kv.
type MapFunc func(itask int, kv *KeyValue) error

// MapWorkerFunc processes one abstract task, emitting pairs into kv, and
// additionally receives the index of the intra-rank worker executing it:
// −1 when the rank runs its tasks serially, 0..MapWorkers−1 under a worker
// pool. Callers use the index to select per-worker scratch (engines,
// caches) that must not be shared across concurrent tasks.
type MapWorkerFunc func(itask, worker int, kv *KeyValue) error

// Map executes fn over nmap abstract tasks distributed per the configured
// MapStyle, appending emitted pairs to each rank's local KV. It returns the
// global number of KV pairs after the map.
func (mr *MapReduce) Map(nmap int, fn MapFunc) (int64, error) {
	return mr.MapWorker(nmap, func(itask, _ int, kv *KeyValue) error {
		return fn(itask, kv)
	})
}

// MapWorker is Map for map functions that need the intra-rank worker index
// (Options.MapWorkers > 1) to pick per-worker scratch. The KV handed to fn
// is the rank KV when serial and a per-task staging KV under a pool; either
// way fn only ever appends to it.
func (mr *MapReduce) MapWorker(nmap int, fn MapWorkerFunc) (int64, error) {
	if nmap < 0 {
		return 0, fmt.Errorf("mrmpi: Map nmap must be non-negative, got %d", nmap)
	}
	sp := mr.phase("map")
	defer sp.End()
	mr.board.BeginTasks(int64(nmap))
	if mr.tr != nil || mr.board != nil {
		// Wrap the user function once so every dispatch style gets a
		// per-work-unit span and a board progress tick without per-style
		// instrumentation. (Begin on a nil tracer is a no-op Span.) Pool
		// workers record onto their own trace track with a worker arg, so
		// concurrent spans on one rank stay LIFO per track.
		inner := fn
		fn = func(itask, worker int, kv *KeyValue) error {
			var tsp obs.Span
			if worker >= 0 {
				tsp = mr.tr.Worker(worker).Begin("mrmpi", "map.task",
					obs.Arg{Key: "task", Val: itask}, obs.Arg{Key: "worker", Val: worker})
			} else {
				tsp = mr.tr.Begin("mrmpi", "map.task", obs.Arg{Key: "task", Val: itask})
			}
			pairs0, bytes0 := kv.N(), kv.Bytes()
			// End args carry the task's own output so lineage and straggler
			// views can tell a task that was slow from one that was big.
			// Under a pool the deltas are against the task's staging KV,
			// which starts empty, so they stay per-task exact.
			defer func() {
				tsp.End(
					obs.Arg{Key: "pairs", Val: kv.N() - pairs0},
					obs.Arg{Key: "bytes", Val: kv.Bytes() - bytes0},
				)
			}()
			err := inner(itask, worker, kv)
			mr.board.TaskDone()
			if kv == mr.kv {
				mr.board.SetKVBytes(kv.Bytes())
			}
			return err
		}
	}
	before := mr.kv.N()
	tasksBefore := mr.stats.MapTasks
	var err error
	style := mr.opt.MapStyle
	if (style == MapStyleMaster || style == MapStyleMasterAffinity) && mr.comm.Size() == 1 {
		style = MapStyleChunk
	}
	switch style {
	case MapStyleChunk:
		err = mr.mapChunk(nmap, fn)
	case MapStyleStride:
		err = mr.mapStride(nmap, fn)
	case MapStyleMaster:
		err = mr.mapMaster(nmap, fn)
	case MapStyleMasterAffinity:
		if mr.opt.Affinity == nil {
			err = fmt.Errorf("mrmpi: MapStyleMasterAffinity requires Options.Affinity")
		} else {
			err = mr.mapMasterAffinity(nmap, fn)
		}
	default:
		err = fmt.Errorf("mrmpi: unknown map style %v", style)
	}
	mr.stats.KVEmitted += mr.kv.N() - before
	mr.mTasks.Add(int64(mr.stats.MapTasks - tasksBefore))
	mr.mEmitted.Add(int64(mr.kv.N() - before))
	if err != nil {
		return 0, err
	}
	// Collective completion: every rank reaches here before totals are
	// computed, like the collective map() of MR-MPI.
	total := mpi.AllreduceSumInt64(mr.comm, int64(mr.kv.N()))
	return total, nil
}

func (mr *MapReduce) mapChunk(nmap int, run MapWorkerFunc) error {
	size, rank := mr.comm.Size(), mr.comm.Rank()
	lo := rank * nmap / size
	hi := (rank + 1) * nmap / size
	itask := lo
	return mr.runTasks(run, func() (int, bool) {
		if itask >= hi {
			return 0, false
		}
		t := itask
		itask++
		return t, true
	})
}

func (mr *MapReduce) mapStride(nmap int, run MapWorkerFunc) error {
	size, rank := mr.comm.Size(), mr.comm.Rank()
	itask := rank
	return mr.runTasks(run, func() (int, bool) {
		if itask >= nmap {
			return 0, false
		}
		t := itask
		itask += size
		return t, true
	})
}

// masterNext is the worker-rank side of the master protocols as a task
// source: each fetch asks rank 0 for the next assignment. The fetch runs on
// the rank goroutine even under a worker pool, so all communication stays
// single-threaded per rank.
func (mr *MapReduce) masterNext() func() (int, bool) {
	done := false
	return func() (int, bool) {
		if done {
			return 0, false
		}
		mr.comm.Send(0, TagWorkerReady, nil)
		data, _ := mr.comm.Recv(0, TagTaskAssign)
		itask := data.(int)
		if itask < 0 {
			done = true
			return 0, false
		}
		return itask, true
	}
}

// mapMaster implements the load-balancing master–worker protocol: rank 0
// hands the next task to whichever worker asks first and performs no map
// work itself, keeping every worker busy while tasks remain.
func (mr *MapReduce) mapMaster(nmap int, run MapWorkerFunc) error {
	if mr.comm.Rank() == 0 {
		next := 0
		stopped := 0
		for stopped < mr.comm.Size()-1 {
			_, st := mr.comm.Recv(mpi.AnySource, TagWorkerReady)
			if next < nmap {
				mr.comm.Send(st.Source, TagTaskAssign, next)
				next++
			} else {
				mr.comm.Send(st.Source, TagTaskAssign, -1)
				stopped++
			}
		}
		return nil
	}
	return mr.runTasks(run, mr.masterNext())
}

// mapMasterAffinity is mapMaster with the paper's proposed location-aware
// dispatch: the master remembers each worker's last resource and scans up
// to AffinityLookahead pending tasks for a match before defaulting to the
// queue head.
func (mr *MapReduce) mapMasterAffinity(nmap int, run MapWorkerFunc) error {
	if mr.comm.Rank() == 0 {
		pending := make([]int, nmap)
		for i := range pending {
			pending[i] = i
		}
		lastResource := make(map[int]int) // worker rank -> resource
		stopped := 0
		for stopped < mr.comm.Size()-1 {
			_, st := mr.comm.Recv(mpi.AnySource, TagWorkerReady)
			if len(pending) == 0 {
				mr.comm.Send(st.Source, TagTaskAssign, -1)
				stopped++
				continue
			}
			pick := 0
			if res, ok := lastResource[st.Source]; ok {
				limit := min(AffinityLookahead, len(pending))
				for i := 0; i < limit; i++ {
					if mr.opt.Affinity(pending[i]) == res {
						pick = i
						break
					}
				}
			}
			itask := pending[pick]
			pending = append(pending[:pick], pending[pick+1:]...)
			lastResource[st.Source] = mr.opt.Affinity(itask)
			mr.comm.Send(st.Source, TagTaskAssign, itask)
		}
		return nil
	}
	return mr.runTasks(run, mr.masterNext())
}

// HashFunc maps a key to a destination rank in [0, nprocs).
type HashFunc func(key []byte, nprocs int) int

// FNV-1a constants (32-bit), matching hash/fnv.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// DefaultHash is FNV-1a modulo the rank count, MR-MPI's default key
// assignment. The hash is inlined rather than built on fnv.New32a, which
// allocates a hasher per call — this runs once per pair on the Aggregate
// hot path. TestDefaultHashMatchesFNV pins it to the hash/fnv output so
// key placement (and with it spill-file and aggregate layout) never
// drifts from the historical implementation.
func DefaultHash(key []byte, nprocs int) int {
	h := uint32(fnvOffset32)
	for _, b := range key {
		h ^= uint32(b)
		h *= fnvPrime32
	}
	return int(h % uint32(nprocs))
}

// Convert groups the local KV into the local KMV: one entry per unique key,
// holding all its values in insertion order. The KV is emptied.
//
// When the local KV fits the memory budget, grouping is done with an
// in-memory index and keys appear in first-appearance order; otherwise an
// external sort-group runs (sorted runs on disk, k-way merge) and keys
// emerge in lexicographic order. Value order within a key is preserved in
// both paths.
//
// The in-memory path is allocation-hardened: the KV's pages are retained
// and groups are built as byte-offset references into them (no per-value
// copy, no per-key duplicate copy); the only data copy is the one arena
// copy KeyMultiValue.Add makes when each grouped record is encoded.
func (mr *MapReduce) Convert() error {
	sp := mr.phase("convert")
	defer sp.End()
	memLimit := mr.opt.MemSize
	if memLimit <= 0 {
		memLimit = DefaultMemSize
	}
	if mr.kv.Bytes() > memLimit {
		return mr.convertExternal()
	}
	pages, err := mr.kv.store.retainPages()
	if err != nil {
		return err
	}
	// valRef locates one value inside the retained pages; 12 bytes per
	// value instead of a copied slice.
	type valRef struct {
		page, off, n int32
	}
	type group struct {
		key  []byte // aliases the retained page holding the first occurrence
		refs []valRef
	}
	index := make(map[string]int)
	var groups []group
	for pi, data := range pages {
		fr := frameReader{data: data}
		for fr.next() {
			// The map lookup with a string([]byte) key compiles without an
			// allocation; only inserting a new key materializes the string.
			i, ok := index[string(fr.key)]
			if !ok {
				i = len(groups)
				index[string(fr.key)] = i
				groups = append(groups, group{key: fr.key})
			}
			groups[i].refs = append(groups[i].refs, valRef{
				page: int32(pi), off: int32(fr.valOff), n: int32(len(fr.val)),
			})
		}
	}
	mr.kmv.reset()
	var vals [][]byte
	for _, g := range groups {
		if cap(vals) < len(g.refs) {
			vals = make([][]byte, 0, len(g.refs))
		}
		vals = vals[:0]
		for _, r := range g.refs {
			vals = append(vals, pages[r.page][r.off:r.off+r.n])
		}
		mr.kmv.Add(g.key, vals)
	}
	mr.kv.reset()
	return nil
}

// Collate is Aggregate followed by Convert — MR-MPI's collate(). It returns
// the global number of unique keys.
func (mr *MapReduce) Collate(hash HashFunc) (int64, error) {
	sp := mr.phase("collate")
	defer sp.End()
	if err := mr.Aggregate(hash); err != nil {
		return 0, err
	}
	if err := mr.Convert(); err != nil {
		return 0, err
	}
	return mpi.AllreduceSumInt64(mr.comm, int64(mr.kmv.N())), nil
}

// SortKeys reorders the local KMV by key using cmp (bytes.Compare when nil).
// Call it between Collate and Reduce when reduce-order matters, e.g. to keep
// query outputs in their original order as the paper's BLAST driver does.
// Non-collective in effect but conventionally called on all ranks.
func (mr *MapReduce) SortKeys(cmp func(a, b []byte) int) error {
	sp := mr.phase("sort")
	defer sp.End()
	if cmp == nil {
		cmp = bytes.Compare
	}
	type entry struct {
		key  []byte
		vals [][]byte
	}
	var entries []entry
	err := mr.kmv.Each(func(key []byte, values [][]byte) error {
		e := entry{key: append([]byte(nil), key...)}
		for _, v := range values {
			e.vals = append(e.vals, append([]byte(nil), v...))
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return err
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return cmp(entries[i].key, entries[j].key) < 0
	})
	mr.kmv.reset()
	for _, e := range entries {
		mr.kmv.Add(e.key, e.vals)
	}
	return nil
}

// ReduceFunc processes one key group, optionally emitting new pairs.
type ReduceFunc func(key []byte, values [][]byte, out *KeyValue) error

// Reduce applies fn to every local key group in KMV order. Emitted pairs
// become the new local KV; the KMV is emptied. It returns the global number
// of emitted pairs.
func (mr *MapReduce) Reduce(fn ReduceFunc) (int64, error) {
	sp := mr.phase("reduce")
	defer sp.End()
	out := mr.newLocalKV()
	err := mr.kmv.Each(func(key []byte, values [][]byte) error {
		return fn(key, values, out)
	})
	if err != nil {
		return 0, err
	}
	mr.kmv.reset()
	mr.kv.reset()
	mr.retireKV(mr.kv)
	mr.kv = out
	mr.stats.KVEmitted += out.N()
	mr.mEmitted.Add(int64(out.N()))
	return mpi.AllreduceSumInt64(mr.comm, int64(mr.kv.N())), nil
}

// Gather moves all KV pairs onto the lowest nranks ranks (rank r's pairs go
// to rank r mod nranks). It returns the global pair count.
func (mr *MapReduce) Gather(nranks int) (int64, error) {
	sp := mr.phase("gather")
	defer sp.End()
	size, rank := mr.comm.Size(), mr.comm.Rank()
	if nranks <= 0 || nranks > size {
		return 0, fmt.Errorf("mrmpi: Gather nranks must be in 1..%d, got %d", size, nranks)
	}
	if rank >= nranks {
		var buf []byte
		err := mr.kv.Each(func(key, value []byte) error {
			buf = putFrame(buf, key, value)
			return nil
		})
		if err != nil {
			return 0, err
		}
		mr.comm.Send(rank%nranks, TagGatherData, buf)
		mr.kv.reset()
	} else {
		for src := rank + nranks; src < size; src += nranks {
			data, _ := mr.comm.Recv(src, TagGatherData)
			buf := data.([]byte)
			// Received buffers are already in KV wire format: adopt each
			// wholesale instead of decoding and re-encoding pair by pair.
			if err := mr.kv.store.appendEncodedPage(buf, countFrames(buf)); err != nil {
				return 0, err
			}
		}
	}
	return mpi.AllreduceSumInt64(mr.comm, int64(mr.kv.N())), nil
}

// MapKV applies fn to every existing local KV pair, replacing the KV with
// the pairs fn emits — MR-MPI's map() variant over an existing KV object.
// Non-collective in effect, but conventionally called on all ranks; returns
// the global pair count afterward.
func (mr *MapReduce) MapKV(fn func(key, value []byte, out *KeyValue) error) (int64, error) {
	sp := mr.phase("map.kv")
	defer sp.End()
	out := mr.newLocalKV()
	err := mr.kv.Each(func(key, value []byte) error {
		return fn(key, value, out)
	})
	if err != nil {
		return 0, err
	}
	mr.kv.reset()
	mr.retireKV(mr.kv)
	mr.kv = out
	mr.stats.KVEmitted += out.N()
	mr.mEmitted.Add(int64(out.N()))
	return mpi.AllreduceSumInt64(mr.comm, int64(mr.kv.N())), nil
}

// Scrunch converts the local KMV back into a KV with one pair per unique
// key, concatenating the grouped values in order with uvarint length
// prefixes — MR-MPI's scrunch-style collapse, useful for chaining
// MapReduce cycles. Returns the global pair count.
func (mr *MapReduce) Scrunch() (int64, error) {
	sp := mr.phase("scrunch")
	defer sp.End()
	out := mr.newLocalKV()
	err := mr.kmv.Each(func(key []byte, values [][]byte) error {
		var buf []byte
		for _, v := range values {
			buf = putUvarint(buf, uint64(len(v)))
			buf = append(buf, v...)
		}
		out.Add(key, buf)
		return nil
	})
	if err != nil {
		return 0, err
	}
	mr.kmv.reset()
	mr.kv.reset()
	mr.retireKV(mr.kv)
	mr.kv = out
	return mpi.AllreduceSumInt64(mr.comm, int64(mr.kv.N())), nil
}

// UnpackScrunched splits a value produced by Scrunch back into the
// original value list.
func UnpackScrunched(buf []byte) [][]byte {
	var out [][]byte
	for len(buf) > 0 {
		n, w := getUvarint(buf)
		buf = buf[w:]
		out = append(out, buf[:n])
		buf = buf[n:]
	}
	return out
}

// MapFiles is Map with one task per file path — the common MR-MPI pattern
// of mapping over a file list (e.g. FASTA query blocks on a shared file
// system).
func (mr *MapReduce) MapFiles(paths []string, fn func(path string, kv *KeyValue) error) (int64, error) {
	return mr.Map(len(paths), func(itask int, kv *KeyValue) error {
		return fn(paths[itask], kv)
	})
}
