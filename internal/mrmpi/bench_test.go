package mrmpi

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
)

// Microbenchmarks for the shuffle hot paths. Run with
//
//	go test ./internal/mrmpi -bench . -benchmem -run '^$'
//
// -benchmem (or the ReportAllocs calls below) is the point: KeyValue.Add and
// DefaultHash must stay at zero allocations per operation, and Aggregate /
// Convert should only allocate page-granular, not per-pair. An allocs/op
// regression here lands on every pair of every shuffle.

// benchPairs builds a deterministic workload: nkeys distinct keys cycled
// over npairs values of varying width.
func benchPairs(npairs, nkeys int) [][2][]byte {
	out := make([][2][]byte, npairs)
	for i := range out {
		out[i] = [2][]byte{
			[]byte(fmt.Sprintf("bench-key-%04d", i%nkeys)),
			[]byte(fmt.Sprintf("value-%06d-%0*d", i, i%23, 0)),
		}
	}
	return out
}

func BenchmarkKeyValueAdd(b *testing.B) {
	pairs := benchPairs(1024, 64)
	kv := newKeyValue(b.TempDir(), 1<<20, 1<<40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		kv.Add(p[0], p[1])
	}
}

func BenchmarkDefaultHash(b *testing.B) {
	pairs := benchPairs(1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += DefaultHash(pairs[i%len(pairs)][0], 16)
	}
	_ = sink
}

// BenchmarkConvert measures the in-memory grouping path: one iteration
// fills a KV with 4096 pairs over 256 keys and converts it to a KMV.
func BenchmarkConvert(b *testing.B) {
	pairs := benchPairs(4096, 256)
	dir := b.TempDir()
	err := mpi.Run(1, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{SpillDir: dir})
		defer mr.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				mr.KV().Add(p[0], p[1])
			}
			if err := mr.Convert(); err != nil {
				return err
			}
			mr.kmv.reset()
		}
		b.StopTimer()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAggregate measures one streaming shuffle round across 4 in-process
// ranks: each rank contributes 2048 pairs per iteration. The per-iteration
// KV refill is included (it is part of any real shuffle's producer side).
func BenchmarkAggregate(b *testing.B) {
	const nranks = 4
	perRank := make([][][2][]byte, nranks)
	for r := 0; r < nranks; r++ {
		perRank[r] = benchPairs(2048, 512)
	}
	dir := b.TempDir()
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		mr := NewWith(c, Options{SpillDir: dir})
		defer mr.Close()
		pairs := perRank[c.Rank()]
		if c.Rank() == 0 {
			b.ReportAllocs()
			b.ResetTimer()
		}
		c.Barrier()
		for i := 0; i < b.N; i++ {
			for _, p := range pairs {
				mr.KV().Add(p[0], p[1])
			}
			if err := mr.Aggregate(nil); err != nil {
				return err
			}
			mr.kv.reset()
		}
		c.Barrier()
		if c.Rank() == 0 {
			b.StopTimer()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
