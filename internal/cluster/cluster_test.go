package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func uniformTasks(n int, service float64, partitions int, partBytes int64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		p := -1
		if partitions > 0 {
			p = i % partitions
		}
		tasks[i] = Task{Partition: p, PartitionBytes: partBytes, Service: service}
	}
	return tasks
}

func TestRangerConfig(t *testing.T) {
	cfg, err := RangerConfig(128)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 8 || cfg.CoresPerNode != 16 || cfg.Cores() != 128 {
		t.Errorf("config = %+v", cfg)
	}
	if _, err := RangerConfig(100); err == nil {
		t.Error("non-multiple of 16 accepted")
	}
	if _, err := RangerConfig(0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestPerfectScalingWithoutData(t *testing.T) {
	// No partitions, uniform tasks: makespan = ceil(n/workers)×service.
	tasks := uniformTasks(512, 10, 0, 0)
	cfg, _ := RangerConfig(32) // 31 workers
	res, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	// 512 tasks over 31 workers: 16 full waves + remainder wave = 17.
	want := math.Ceil(512.0/31.0) * 10
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %f, want %f", res.Makespan, want)
	}
	if res.ServiceTotal != 5120 {
		t.Errorf("service total = %f", res.ServiceTotal)
	}
	if res.PartitionLoads != 0 || res.LoadTotal != 0 {
		t.Errorf("unexpected load activity: %+v", res)
	}
}

func TestWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tasks := make([]Task, 300)
	totalService := 0.0
	for i := range tasks {
		s := rng.Float64()*20 + 1
		tasks[i] = Task{Partition: i % 7, PartitionBytes: 1 << 30, Service: s}
		totalService += s
	}
	cfg, _ := RangerConfig(64)
	for _, sched := range []Schedule{ScheduleMasterWorker, ScheduleStatic, ScheduleLocalityAware} {
		res, err := Run(cfg, tasks, sched)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.ServiceTotal-totalService) > 1e-6 {
			t.Errorf("%v: service not conserved: %f vs %f", sched, res.ServiceTotal, totalService)
		}
		if res.CacheHits+res.PartitionLoads != len(tasks) {
			t.Errorf("%v: hits+loads = %d, want %d", sched, res.CacheHits+res.PartitionLoads, len(tasks))
		}
		// Makespan can't beat the critical path lower bound.
		lb := totalService / float64(res.WorkerCores)
		if res.Makespan < lb-1e-9 {
			t.Errorf("%v: makespan %f below lower bound %f", sched, res.Makespan, lb)
		}
	}
}

func TestMasterWorkerBeatsStaticOnSkewedWork(t *testing.T) {
	// Highly skewed service times: dynamic load balancing must win — the
	// reason the paper uses master–worker mode for BLAST.
	rng := rand.New(rand.NewSource(2))
	tasks := make([]Task, 400)
	for i := range tasks {
		s := math.Exp(rng.NormFloat64() * 1.2) // lognormal, heavy tail
		tasks[i] = Task{Partition: -1, Service: s}
	}
	cfg, _ := RangerConfig(64)
	dyn, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(cfg, tasks, ScheduleStatic)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Makespan >= static.Makespan {
		t.Errorf("master-worker (%f) should beat static (%f) on skewed work",
			dyn.Makespan, static.Makespan)
	}
}

func TestCacheEffectOnRepeatedPartitions(t *testing.T) {
	// Few partitions that fit in node RAM: after the first touch per node,
	// loads stop.
	const nparts = 4
	tasks := uniformTasks(200, 5, nparts, 1<<30) // 4 partitions of 1 GB
	cfg, _ := RangerConfig(32)                   // 2 nodes, 32 GB each
	res, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	maxLoads := nparts * cfg.Nodes
	if res.PartitionLoads > maxLoads {
		t.Errorf("loads = %d, want <= %d (partitions fit in RAM)", res.PartitionLoads, maxLoads)
	}
	if res.CacheHits == 0 {
		t.Error("no cache hits")
	}
}

func TestCacheThrashingWhenRAMTooSmall(t *testing.T) {
	// Many partitions cycling through a small cache: LRU thrashes, loads
	// scale with task count — the small-core-count regime of Fig. 4.
	const nparts = 50
	tasks := uniformTasks(500, 5, nparts, 1<<30)
	cfg, _ := RangerConfig(16)
	cfg.NodeRAMBytes = 8 << 30 // holds 8 of 50 partitions
	res, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.PartitionLoads) < 0.9*float64(len(tasks)) {
		t.Errorf("loads = %d of %d tasks; expected cyclic LRU thrashing", res.PartitionLoads, len(tasks))
	}
}

func TestLocalityAwareReducesLoads(t *testing.T) {
	const nparts = 40
	tasks := uniformTasks(800, 5, nparts, 1<<30)
	cfg, _ := RangerConfig(64)
	cfg.NodeRAMBytes = 12 << 30
	mw, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	la, err := Run(cfg, tasks, ScheduleLocalityAware)
	if err != nil {
		t.Fatal(err)
	}
	if la.PartitionLoads >= mw.PartitionLoads {
		t.Errorf("locality-aware loads %d >= master-worker %d", la.PartitionLoads, mw.PartitionLoads)
	}
}

func TestDedicatedMasterReservesCore(t *testing.T) {
	cfg, _ := RangerConfig(32)
	res, _ := Run(cfg, uniformTasks(31, 10, 0, 0), ScheduleMasterWorker)
	if res.WorkerCores != 31 {
		t.Errorf("workers = %d, want 31", res.WorkerCores)
	}
	cfg.MasterIsDedicated = false
	res, _ = Run(cfg, uniformTasks(32, 10, 0, 0), ScheduleMasterWorker)
	if res.WorkerCores != 32 {
		t.Errorf("workers = %d, want 32", res.WorkerCores)
	}
}

func TestTailIdlingLowersUtilization(t *testing.T) {
	// Fewer tasks than 2 waves: utilization near the end must drop — the
	// paper's Fig. 5 tapering.
	tasks := uniformTasks(40, 100, 0, 0)
	cfg, _ := RangerConfig(32) // 31 workers, 40 tasks -> 9-worker second wave
	res, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	trace := res.UtilizationTrace(20, cfg.Cores())
	early := trace[2].Utilization
	late := trace[len(trace)-2].Utilization
	if early <= late {
		t.Errorf("utilization did not taper: early %f late %f", early, late)
	}
	for _, p := range trace {
		if p.Utilization < 0 || p.Utilization > 1.0001 {
			t.Errorf("utilization out of range: %+v", p)
		}
	}
}

func TestUtilizationIntegralMatchesService(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tasks := make([]Task, 200)
	for i := range tasks {
		tasks[i] = Task{Partition: i % 5, PartitionBytes: 1 << 28, Service: rng.Float64()*10 + 1}
	}
	cfg, _ := RangerConfig(48)
	res, err := Run(cfg, tasks, ScheduleMasterWorker)
	if err != nil {
		t.Fatal(err)
	}
	const nsamples = 2000
	trace := res.UtilizationTrace(nsamples, cfg.Cores())
	integral := 0.0
	for _, p := range trace {
		integral += p.Utilization * (res.Makespan / nsamples) * float64(cfg.Cores())
	}
	if math.Abs(integral-res.ServiceTotal)/res.ServiceTotal > 0.02 {
		t.Errorf("trace integral %f != service total %f", integral, res.ServiceTotal)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, nil, ScheduleMasterWorker); err == nil {
		t.Error("empty config accepted")
	}
	cfg, _ := RangerConfig(16)
	cfg.LoadBandwidth = 0
	if _, err := Run(cfg, nil, ScheduleMasterWorker); err == nil {
		t.Error("zero bandwidth accepted")
	}
	cfg, _ = RangerConfig(16)
	if _, err := Run(cfg, uniformTasks(1, 1, 0, 0), Schedule(99)); err == nil {
		t.Error("unknown schedule accepted")
	}
	res, err := Run(cfg, nil, ScheduleMasterWorker)
	if err != nil || res.Makespan != 0 {
		t.Errorf("empty task list: %v %+v", err, res)
	}
}

func TestNetworkCosts(t *testing.T) {
	n := RangerNetwork()
	if n.BcastCost(1<<20, 1) != 0 {
		t.Error("single-rank bcast should be free")
	}
	c2 := n.BcastCost(1<<20, 2)
	c1024 := n.BcastCost(1<<20, 1024)
	if c1024 <= c2 {
		t.Error("bcast cost should grow with ranks")
	}
	if c1024 > 20*c2 {
		t.Error("bcast cost should grow logarithmically, not linearly")
	}
	r := n.ReduceCost(8<<20, 64, 1e-10)
	if r <= 0 {
		t.Error("reduce cost should be positive")
	}
	if n.AlltoallCost(1<<10, 1) != 0 {
		t.Error("single-rank alltoall should be free")
	}
	if n.CollatePhaseCost(1<<30, 64, 1e-9) <= 0 {
		t.Error("collate phase should cost something")
	}
}

func TestDeterminism(t *testing.T) {
	tasks := uniformTasks(100, 3, 10, 1<<28)
	cfg, _ := RangerConfig(32)
	a, _ := Run(cfg, tasks, ScheduleMasterWorker)
	b, _ := Run(cfg, tasks, ScheduleMasterWorker)
	if a.Makespan != b.Makespan || a.PartitionLoads != b.PartitionLoads {
		t.Error("simulation not deterministic")
	}
}

func TestLocalityAwareBoundedStarvation(t *testing.T) {
	// The head-of-queue task may be bypassed at most while matching tasks
	// exist within the lookahead window; with tasks all on one partition
	// except the head, the head must still run early.
	tasks := make([]Task, 200)
	tasks[0] = Task{Partition: 0, PartitionBytes: 1 << 30, Service: 1}
	for i := 1; i < len(tasks); i++ {
		tasks[i] = Task{Partition: 1, PartitionBytes: 1 << 30, Service: 1}
	}
	cfg, _ := RangerConfig(16)
	res, err := Run(cfg, tasks, ScheduleLocalityAware)
	if err != nil {
		t.Fatal(err)
	}
	// All work completes.
	if res.ServiceTotal != 200 {
		t.Errorf("service total = %f", res.ServiceTotal)
	}
}

func TestStaticScheduleDeterministicChunks(t *testing.T) {
	tasks := uniformTasks(100, 2, 0, 0)
	cfg, _ := RangerConfig(16) // 15 workers
	res, err := Run(cfg, tasks, ScheduleStatic)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks of ceil/floor(100/15): makespan = largest chunk × 2s = 7×2.
	if res.Makespan != 14 {
		t.Errorf("makespan = %f, want 14", res.Makespan)
	}
}

func TestScheduleString(t *testing.T) {
	if ScheduleMasterWorker.String() != "master-worker" ||
		ScheduleStatic.String() != "static" ||
		ScheduleLocalityAware.String() != "locality-aware" {
		t.Error("schedule names wrong")
	}
}
