// Package cluster is a discrete-event simulator of the HPC environment the
// paper benchmarks on (TACC Ranger: 16-core / 32 GB nodes, Lustre shared
// file system, 32–1024 core MPI jobs). It substitutes for hardware we do
// not have: the paper's scaling figures are governed by master–worker load
// balancing, per-node page-cache locality of memory-mapped DB partitions,
// and end-of-run idling — all of which the simulation reproduces from first
// principles over a calibrated per-work-unit cost model.
//
// The simulator is a list scheduler over virtual time: cores become free,
// pull the next work unit per the scheduling policy, pay a partition load
// cost when the unit's DB partition is not resident in their node's page
// cache (LRU by bytes), then run the unit's service time. Nothing about the
// resulting curves is hard-coded: the superlinear region of the paper's
// Fig. 4 and the tail-idle utilization decay of Fig. 5 emerge from the
// cache and queue dynamics.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"
)

// Config describes the simulated machine.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// CoresPerNode is the core count per node (Ranger: 16).
	CoresPerNode int
	// NodeRAMBytes is the page-cache capacity per node (Ranger: 32 GB;
	// we budget the full node RAM for the cache, as the paper's
	// memory-mapped partitions do).
	NodeRAMBytes int64
	// LoadBandwidth is the per-reader shared-FS bandwidth in bytes/second
	// used to charge partition load time.
	LoadBandwidth float64
	// MasterIsDedicated reserves core 0 for the master (the paper's MR-MPI
	// master–worker mode: rank 0 distributes work and does none itself).
	MasterIsDedicated bool
}

// RangerConfig returns the paper's machine for a given total core count
// (must be a multiple of 16, as Ranger allocates whole nodes).
func RangerConfig(totalCores int) (Config, error) {
	if totalCores <= 0 || totalCores%16 != 0 {
		return Config{}, fmt.Errorf("cluster: Ranger core counts are multiples of 16, got %d", totalCores)
	}
	return Config{
		Nodes:        totalCores / 16,
		CoresPerNode: 16,
		NodeRAMBytes: 32 << 30,
		// Effective per-reader throughput of demand-faulting a memory-
		// mapped 1 GB partition from shared, contended Lustre — well below
		// streaming bandwidth.
		LoadBandwidth:     60e6,
		MasterIsDedicated: true,
	}, nil
}

// Cores reports the total core count.
func (c Config) Cores() int { return c.Nodes * c.CoresPerNode }

// Task is one work unit: a (query block, DB partition) pair in the BLAST
// experiments, a vector block in the SOM experiments.
type Task struct {
	// Partition identifies the data this task reads; -1 means no data
	// dependency (no load cost ever).
	Partition int
	// PartitionBytes is the on-disk size of the partition.
	PartitionBytes int64
	// Service is the task's pure compute time in seconds.
	Service float64
}

// Schedule selects the work distribution policy.
type Schedule int

const (
	// ScheduleMasterWorker hands the next task in order to whichever core
	// frees first — MR-MPI's master–worker mode, the paper's choice for
	// BLAST.
	ScheduleMasterWorker Schedule = iota
	// ScheduleStatic pre-assigns contiguous task chunks to cores
	// (MR-MPI's default mapstyle), the no-load-balancing baseline.
	ScheduleStatic
	// ScheduleLocalityAware is the paper's proposed future-work scheduler:
	// the master prefers, within a bounded lookahead of the queue head, a
	// task whose partition is already cached on the requesting node.
	ScheduleLocalityAware
)

func (s Schedule) String() string {
	switch s {
	case ScheduleMasterWorker:
		return "master-worker"
	case ScheduleStatic:
		return "static"
	case ScheduleLocalityAware:
		return "locality-aware"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// LocalityLookahead is how many queued tasks the locality-aware scheduler
// inspects for a cache-resident partition.
const LocalityLookahead = 64

// Result summarizes a simulated run.
type Result struct {
	// Makespan is the wall-clock time of the map phase in seconds.
	Makespan float64
	// ServiceTotal is the sum of task service times (useful CPU seconds).
	ServiceTotal float64
	// LoadTotal is the total partition-load time paid.
	LoadTotal float64
	// PartitionLoads counts partition loads from the shared FS.
	PartitionLoads int
	// CacheHits counts tasks that found their partition resident.
	CacheHits int
	// WorkerCores is the number of cores that executed tasks.
	WorkerCores int
	// busy holds per-task (start, end, serviceStart) intervals for the
	// utilization trace.
	busy []interval
}

type interval struct {
	start, serviceStart, end float64
}

// Efficiency is useful CPU over total core time:
// ServiceTotal / (WorkerCores × Makespan).
func (r *Result) Efficiency() float64 {
	if r.Makespan == 0 || r.WorkerCores == 0 {
		return 0
	}
	return r.ServiceTotal / (float64(r.WorkerCores) * r.Makespan)
}

// coreHeap orders cores by the time they become free.
type coreHeap []coreState

type coreState struct {
	freeAt float64
	node   int
	id     int
}

func (h coreHeap) Len() int      { return len(h) }
func (h coreHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h coreHeap) Less(i, j int) bool {
	if h[i].freeAt != h[j].freeAt {
		return h[i].freeAt < h[j].freeAt
	}
	return h[i].id < h[j].id // deterministic tie-break
}
func (h *coreHeap) Push(x any) { *h = append(*h, x.(coreState)) }
func (h *coreHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// nodeCache is the per-node page cache: LRU over partitions by bytes.
type nodeCache struct {
	capacity int64
	used     int64
	order    []int // LRU order, most recent last
	resident map[int]int64
}

func newNodeCache(capacity int64) *nodeCache {
	return &nodeCache{capacity: capacity, resident: make(map[int]int64)}
}

// touch returns true when the partition was already resident; otherwise it
// loads it, evicting LRU entries as needed.
func (nc *nodeCache) touch(partition int, bytes int64) bool {
	if _, ok := nc.resident[partition]; ok {
		nc.moveToBack(partition)
		return true
	}
	for nc.used+bytes > nc.capacity && len(nc.order) > 0 {
		oldest := nc.order[0]
		nc.order = nc.order[1:]
		nc.used -= nc.resident[oldest]
		delete(nc.resident, oldest)
	}
	if bytes <= nc.capacity {
		nc.resident[partition] = bytes
		nc.used += bytes
		nc.order = append(nc.order, partition)
	}
	return false
}

func (nc *nodeCache) moveToBack(partition int) {
	for i, p := range nc.order {
		if p == partition {
			nc.order = append(nc.order[:i], nc.order[i+1:]...)
			nc.order = append(nc.order, partition)
			return
		}
	}
}

func (nc *nodeCache) has(partition int) bool {
	_, ok := nc.resident[partition]
	return ok
}

// Run simulates executing tasks (in queue order) on the configured machine
// under the given schedule and returns the phase result.
func Run(cfg Config, tasks []Task, sched Schedule) (*Result, error) {
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		return nil, fmt.Errorf("cluster: invalid machine %+v", cfg)
	}
	if cfg.LoadBandwidth <= 0 {
		return nil, fmt.Errorf("cluster: LoadBandwidth must be positive")
	}
	nworkers := cfg.Cores()
	if cfg.MasterIsDedicated {
		nworkers--
	}
	if nworkers <= 0 {
		return nil, fmt.Errorf("cluster: no worker cores")
	}
	res := &Result{WorkerCores: nworkers}
	if len(tasks) == 0 {
		return res, nil
	}

	caches := make([]*nodeCache, cfg.Nodes)
	for i := range caches {
		caches[i] = newNodeCache(cfg.NodeRAMBytes)
	}

	switch sched {
	case ScheduleStatic:
		runStatic(cfg, tasks, caches, nworkers, res)
	case ScheduleMasterWorker, ScheduleLocalityAware:
		runDynamic(cfg, tasks, caches, nworkers, sched, res)
	default:
		return nil, fmt.Errorf("cluster: unknown schedule %v", sched)
	}

	sort.Slice(res.busy, func(i, j int) bool { return res.busy[i].start < res.busy[j].start })
	return res, nil
}

// runDynamic is the master–worker list scheduler: the earliest-free core
// takes the next task (or, locality-aware, a nearby cached one).
func runDynamic(cfg Config, tasks []Task, caches []*nodeCache, nworkers int, sched Schedule, res *Result) {
	h := make(coreHeap, 0, nworkers)
	skip := 0
	if cfg.MasterIsDedicated {
		skip = 1
	}
	for c := 0; c < nworkers; c++ {
		global := c + skip
		h = append(h, coreState{freeAt: 0, node: global / cfg.CoresPerNode, id: global})
	}
	heap.Init(&h)

	pending := make([]Task, len(tasks))
	copy(pending, tasks)
	for len(pending) > 0 {
		core := heap.Pop(&h).(coreState)
		// Pick a task.
		pick := 0
		if sched == ScheduleLocalityAware {
			limit := min(LocalityLookahead, len(pending))
			for i := 0; i < limit; i++ {
				p := pending[i].Partition
				if p < 0 || caches[core.node].has(p) {
					pick = i
					break
				}
			}
		}
		task := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)
		execute(cfg, caches, core, task, res)
		heap.Push(&h, coreState{freeAt: res.busy[len(res.busy)-1].end, node: core.node, id: core.id})
	}
	for _, iv := range res.busy {
		if iv.end > res.Makespan {
			res.Makespan = iv.end
		}
	}
}

// runStatic pre-assigns contiguous chunks, simulating each core's chunk
// sequentially.
func runStatic(cfg Config, tasks []Task, caches []*nodeCache, nworkers int, res *Result) {
	skip := 0
	if cfg.MasterIsDedicated {
		skip = 1
	}
	for c := 0; c < nworkers; c++ {
		lo := c * len(tasks) / nworkers
		hi := (c + 1) * len(tasks) / nworkers
		global := c + skip
		core := coreState{freeAt: 0, node: global / cfg.CoresPerNode, id: global}
		t := 0.0
		for _, task := range tasks[lo:hi] {
			core.freeAt = t
			execute(cfg, caches, core, task, res)
			t = res.busy[len(res.busy)-1].end
		}
		if t > res.Makespan {
			res.Makespan = t
		}
	}
}

// execute charges one task to a core: load cost on a cache miss, then
// service.
func execute(cfg Config, caches []*nodeCache, core coreState, task Task, res *Result) {
	start := core.freeAt
	serviceStart := start
	if task.Partition >= 0 {
		if caches[core.node].touch(task.Partition, task.PartitionBytes) {
			res.CacheHits++
		} else {
			loadTime := float64(task.PartitionBytes) / cfg.LoadBandwidth
			serviceStart += loadTime
			res.LoadTotal += loadTime
			res.PartitionLoads++
		}
	}
	end := serviceStart + task.Service
	res.ServiceTotal += task.Service
	res.busy = append(res.busy, interval{start: start, serviceStart: serviceStart, end: end})
}

// TracePoint is one sample of the utilization time series.
type TracePoint struct {
	// Time is the sample time in seconds.
	Time float64
	// Utilization is useful CPU (inside service, excluding partition
	// loads) divided by total allocated cores — the paper's Fig. 5 metric.
	Utilization float64
}

// UtilizationTrace samples the run's "useful CPU utilization per core" at
// n evenly spaced points, over totalCores allocated cores (workers plus the
// dedicated master, like the paper's definition which divides by all cores
// of the MPI job).
func (r *Result) UtilizationTrace(n int, totalCores int) []TracePoint {
	if n <= 0 || r.Makespan == 0 {
		return nil
	}
	// Sweep: accumulate busy service time per bucket.
	bucket := r.Makespan / float64(n)
	busy := make([]float64, n)
	for _, iv := range r.busy {
		// Clip the service portion [serviceStart, end) onto buckets.
		lo, hi := iv.serviceStart, iv.end
		b0 := int(lo / bucket)
		b1 := int(hi / bucket)
		if b1 >= n {
			b1 = n - 1
		}
		for b := b0; b <= b1; b++ {
			blo := float64(b) * bucket
			bhi := blo + bucket
			overlap := minF(hi, bhi) - maxF(lo, blo)
			if overlap > 0 {
				busy[b] += overlap
			}
		}
	}
	out := make([]TracePoint, n)
	for b := range out {
		out[b] = TracePoint{
			Time:        (float64(b) + 0.5) * bucket,
			Utilization: busy[b] / (bucket * float64(totalCores)),
		}
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
