package cluster

import "math"

// Network models the cluster interconnect for collective-phase costs with
// the standard latency/bandwidth (alpha-beta) model.
type Network struct {
	// LatencySec is the per-message latency alpha.
	LatencySec float64
	// BandwidthBytesPerSec is the per-link bandwidth 1/beta.
	BandwidthBytesPerSec float64
}

// RangerNetwork approximates Ranger's Infiniband fabric.
func RangerNetwork() Network {
	return Network{LatencySec: 3e-6, BandwidthBytesPerSec: 1e9}
}

// BcastCost is the time for a broadcast of bytes to ranks, using the
// pipelined (scatter-allgather) model production MPIs apply to large
// messages: latency grows with tree depth, bandwidth is paid ~twice
// regardless of rank count.
func (n Network) BcastCost(bytes int64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(ranks)))
	return depth*n.LatencySec + 2*float64(bytes)/n.BandwidthBytesPerSec
}

// ReduceCost is the time for a reduction of bytes per rank, pipelined like
// BcastCost, plus the combine arithmetic.
func (n Network) ReduceCost(bytes int64, ranks int, combinePerByte float64) float64 {
	if ranks <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(ranks)))
	// In a pipelined reduction each rank combines its incoming stream once;
	// the combine work does not multiply with tree depth.
	return depth*n.LatencySec + 2*float64(bytes)/n.BandwidthBytesPerSec +
		2*float64(bytes)*combinePerByte
}

// AlltoallCost is the time for each of ranks ranks to exchange
// bytesPerRankPair with every other rank — the MR-MPI collate() exchange.
// The dominant term is each rank sending/receiving (ranks−1)×bytes.
func (n Network) AlltoallCost(bytesPerRankPair int64, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	volume := float64(bytesPerRankPair) * float64(ranks-1)
	return float64(ranks-1)*n.LatencySec + volume/n.BandwidthBytesPerSec
}

// CollatePhaseCost models the paper's collate()+reduce() tail for a BLAST
// iteration: the hits (totalKVBytes across all ranks) are exchanged
// all-to-all and then sorted/written locally at sortPerByte cost. The
// exchange volume per rank is totalKVBytes/ranks.
func (n Network) CollatePhaseCost(totalKVBytes int64, ranks int, sortPerByte float64) float64 {
	if ranks <= 0 {
		return 0
	}
	perRank := totalKVBytes / int64(ranks)
	exchange := n.AlltoallCost(perRank/int64(maxI(ranks-1, 1)), ranks)
	local := float64(perRank) * sortPerByte
	return exchange + local
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
