package mrblast

import (
	"os"
	"testing"

	"repro/internal/mrmpi"
)

// TestMapWorkersOutputByteIdentical is the end-to-end determinism gate for
// the intra-rank pool: with a deterministic task→rank assignment (chunk
// style) at 4 ranks, every rank's hits file from a MapWorkers run must be
// byte-for-byte the file a serial run writes. The pool merges staging KVs
// in dispatch order, so the shuffle input — and everything downstream — is
// unchanged.
func TestMapWorkersOutputByteIdentical(t *testing.T) {
	w := makeWorkload(t, 6, 4)
	chunk := func(c *Config) { c.MapStyle = mrmpi.MapStyleChunk }
	_, serial := runParallel(t, w, 4, chunk)
	_, pooled := runParallel(t, w, 4, func(c *Config) {
		chunk(c)
		c.MapWorkers = 3
	})
	for r := 0; r < 4; r++ {
		want, err := os.ReadFile(serial[r].OutFile)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(pooled[r].OutFile)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("rank %d output differs under MapWorkers=3 (%d vs %d bytes)",
				r, len(got), len(want))
		}
	}
}

// TestMapWorkersMasterMatchesSerial covers the master style, whose task
// assignment is scheduling-dependent: the global hit set must equal the
// serial baseline exactly.
func TestMapWorkersMasterMatchesSerial(t *testing.T) {
	w := makeWorkload(t, 6, 4)
	serial, err := SerialSearch(w.queries, w.manifest, w.params, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("serial baseline found no hits; workload broken")
	}
	want := fingerprintsFromFiles(serial)
	hits, _ := runParallel(t, w, 4, func(c *Config) { c.MapWorkers = 3 })
	got := fingerprintsFromFiles(hits)
	if len(got) != len(want) {
		t.Fatalf("hit count %d != serial %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d differs:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}
