// Package mrblast is the paper's first contribution: matrix-split parallel
// BLAST over MapReduce-MPI (the paper's Fig. 1).
//
// The work unit is a (query block, database partition) pair. MapReduce runs
// in master–worker mode so the highly non-uniform per-unit BLAST cost is
// load-balanced: rank 0 hands the next unit to whichever worker asks first.
// Each map() call builds (or reuses) the search engine for its query block,
// loads (or reuses from the per-rank cache) its DB partition, overrides the
// database length with the whole-database totals so E-values match a
// monolithic search, and emits one (query key, serialized HSP) pair per
// hit. collate() groups hits per query across partitions; reduce() sorts
// each query's hits by E-value, applies the top-K cutoff, and appends them
// to one output file per rank. Queries can be streamed through multiple
// MapReduce iterations to bound the in-memory key-value working set.
package mrblast

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/blastdb"
	"repro/internal/mpi"
	"repro/internal/mrmpi"
	"repro/internal/obs"
)

// Config controls a parallel BLAST run.
type Config struct {
	// Params configure the underlying search engine. DBLength/DBNumSeqs
	// are filled from the manifest automatically (the whole-DB override);
	// explicit values win.
	Params blast.Params
	// QueryBlocks are the pre-split query blocks (the paper pre-splits the
	// query set into FASTA files of a target size; bio.SplitFasta and
	// bio.SplitFastaBySize produce these).
	QueryBlocks [][]*bio.Sequence
	// Manifest describes the partitioned database.
	Manifest *blastdb.Manifest
	// TopK caps reported hits per query after collation (0 = all hits
	// passing the E-value cutoff).
	TopK int
	// MapStyle is the work distribution policy (default master–worker).
	MapStyle mrmpi.MapStyle
	// LocalityAware switches the master to the paper's proposed
	// location-aware scheduler: workers preferentially receive work units
	// whose DB partition they processed before, reducing partition
	// reloads. Overrides MapStyle.
	LocalityAware bool
	// CacheCapacity is the number of DB volumes each rank keeps resident
	// (default 1, the paper's configuration: the DB object is cached
	// between map() invocations and re-initialized only when a different
	// partition is required).
	CacheCapacity int
	// OutDir receives one output file per rank (hits.rankNNNN.tsv). Empty
	// disables file output; hits are still counted.
	OutDir string
	// ExcludeSelfHits drops hits whose query fragment derives from the
	// subject sequence (bio.FragmentParent(queryID) == subjectID) — the
	// paper's modification that excludes RefSeq fragments hitting
	// themselves.
	ExcludeSelfHits bool
	// BlocksPerIteration bounds how many query blocks enter one MapReduce
	// cycle, implementing the paper's multi-iteration protocol that
	// controls the intermediate key-value working set (0 = all blocks in
	// one iteration).
	BlocksPerIteration int
	// MapWorkers is the number of map tasks each rank runs concurrently
	// (≤ 1: serial). Each worker owns a private engine, DB-volume cache,
	// and subject scratch; emitted pairs are merged in task order by the
	// MapReduce layer, so output is identical to a serial run. Memory cost
	// scales with workers (one cached engine + CacheCapacity volumes each).
	MapWorkers int
	// MRMemSize is the MapReduce out-of-core memory budget per object.
	MRMemSize int64
	// OutFormat selects the output encoding: "tsv" (default, outfmt-6-like
	// with a strand column) or "jsonl" (one JSON object per hit).
	OutFormat string
	// Cancel, when non-nil and closed, aborts the run at the next work-item
	// boundary with ErrCanceled. All ranks must receive the same channel.
	Cancel <-chan struct{}
}

// ErrCanceled reports that a run was aborted through Config.Cancel.
var ErrCanceled = errors.New("mrblast: run canceled")

func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Result summarizes a run (per-rank fields are local to the calling rank).
type Result struct {
	// TotalHits is the global number of reported hits.
	TotalHits int64
	// OutFile is this rank's output file ("" when OutDir is unset).
	OutFile string
	// WorkItems is the number of (block, partition) units this rank
	// processed.
	WorkItems int
	// CacheStats reports this rank's DB volume cache activity.
	CacheStats blastdb.CacheStats
	// EngineStats aggregates the scan-stage counters across this rank's
	// map calls.
	EngineStats blast.EngineStats
	// Iterations is the number of MapReduce cycles executed.
	Iterations int
	// EngineTime is this rank's time spent inside BLAST engine calls — the
	// "user CPU time within the BLAST call" of the paper's Fig. 5
	// utilization metric.
	EngineTime time.Duration
	// WallTime is this rank's total time inside Run.
	WallTime time.Duration
}

// Utilization is the paper's "useful CPU utilization" for a completed run:
// the engine time summed over ranks divided by ranks × wall clock.
func Utilization(results []*Result) float64 {
	var busy time.Duration
	var wall time.Duration
	for _, r := range results {
		busy += r.EngineTime
		if r.WallTime > wall {
			wall = r.WallTime
		}
	}
	if wall == 0 || len(results) == 0 {
		return 0
	}
	return float64(busy) / (float64(wall) * float64(len(results)))
}

// queryKey builds the collation key for global query index qi: a big-endian
// 8-byte integer, so lexicographic key order equals the original query
// order and the per-rank output preserves it (as the paper's does).
func queryKey(qi uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], qi)
	return k[:]
}

// Run executes the parallel search collectively: every rank of comm must
// call it with identical configuration. It returns this rank's view of the
// result.
func Run(comm *mpi.Comm, cfg Config) (*Result, error) {
	if len(cfg.QueryBlocks) == 0 {
		return nil, fmt.Errorf("mrblast: no query blocks")
	}
	if cfg.Manifest == nil || cfg.Manifest.NumPartitions() == 0 {
		return nil, fmt.Errorf("mrblast: no database partitions")
	}
	alpha, err := cfg.Manifest.Alpha()
	if err != nil {
		return nil, err
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if alpha != cfg.Params.Alpha {
		return nil, fmt.Errorf("mrblast: database alphabet %v != params alphabet %v",
			alpha, cfg.Params.Alpha)
	}
	// Whole-database statistics override.
	if cfg.Params.DBLength == 0 {
		cfg.Params.DBLength = cfg.Manifest.TotalResidues
		cfg.Params.DBNumSeqs = cfg.Manifest.NumSeqs
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 1
	}
	switch cfg.OutFormat {
	case "", "tsv", "jsonl":
	default:
		return nil, fmt.Errorf("mrblast: unknown output format %q", cfg.OutFormat)
	}

	// Global query index base per block, so keys order by original query
	// position.
	blockBase := make([]uint64, len(cfg.QueryBlocks)+1)
	for i, blk := range cfg.QueryBlocks {
		blockBase[i+1] = blockBase[i] + uint64(len(blk))
	}

	res := &Result{}
	runStart := time.Now()
	defer func() { res.WallTime = time.Since(runStart) }()
	var out *bufio.Writer
	var outFile *os.File
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return nil, err
		}
		res.OutFile = filepath.Join(cfg.OutDir, fmt.Sprintf("hits.rank%04d.tsv", comm.Rank()))
		outFile, err = os.Create(res.OutFile)
		if err != nil {
			return nil, err
		}
		out = bufio.NewWriterSize(outFile, 1<<16)
		defer outFile.Close()
	}

	tr := comm.Tracer()
	board := comm.Board()
	// Engine reuse: rebuilding the lookup table is wasted work when the
	// master hands consecutive units of the same query block to a rank.
	// Each worker index gets a private slot — engine, DB-volume cache, and
	// subject decode scratch — so concurrent map tasks (Config.MapWorkers
	// > 1) never share mutable search state; worker −1 (serial execution)
	// uses slot 0. A worker runs at most one task at a time, so slot
	// access needs no lock; only the shared result counters are
	// mutex-guarded.
	type workerSlot struct {
		cache       *blastdb.Cache
		engine      *blast.Engine
		cachedBlock int
		subjBuf     []byte
	}
	nslots := max(1, cfg.MapWorkers)
	slots := make([]*workerSlot, nslots)
	for i := range slots {
		slots[i] = &workerSlot{cache: blastdb.NewCache(cfg.CacheCapacity), cachedBlock: -1}
	}
	var mu sync.Mutex

	nparts := cfg.Manifest.NumPartitions()
	step := cfg.BlocksPerIteration
	if step <= 0 {
		step = len(cfg.QueryBlocks)
	}

	var localHits int64
	for iterStart := 0; iterStart < len(cfg.QueryBlocks); iterStart += step {
		iterEnd := min(iterStart+step, len(cfg.QueryBlocks))
		iterBlocks := cfg.QueryBlocks[iterStart:iterEnd]
		nmap := len(iterBlocks) * nparts

		opts := mrmpi.Options{
			MapStyle:   cfg.MapStyle,
			MemSize:    cfg.MRMemSize,
			MapWorkers: cfg.MapWorkers,
		}
		if cfg.LocalityAware {
			opts.MapStyle = mrmpi.MapStyleMasterAffinity
			opts.Affinity = func(itask int) int { return itask % nparts }
		}
		mr := mrmpi.NewWith(comm, opts)

		_, err := mr.MapWorker(nmap, func(itask, worker int, kv *mrmpi.KeyValue) error {
			if canceled(cfg.Cancel) {
				return ErrCanceled
			}
			bi := iterStart + itask/nparts
			pi := itask % nparts
			// Pool workers trace onto their own track and search with their
			// own slot; serial execution (worker −1) uses the rank track and
			// slot 0.
			wtr, slot := tr, slots[0]
			if worker >= 0 {
				wtr, slot = tr.Worker(worker), slots[worker]
			}
			var usp obs.Span
			if wtr != nil {
				usp = wtr.Begin("mrblast", "unit",
					obs.Arg{Key: "block", Val: bi}, obs.Arg{Key: "partition", Val: pi})
			}
			defer usp.End()

			mu.Lock()
			res.WorkItems++
			mu.Unlock()
			if slot.cachedBlock != bi {
				var bsp obs.Span
				if wtr != nil {
					bsp = wtr.Begin("mrblast", "engine.build", obs.Arg{Key: "block", Val: bi})
				}
				eng, err := blast.NewEngine(cfg.QueryBlocks[bi], cfg.Params)
				bsp.End()
				if err != nil {
					return fmt.Errorf("block %d: %w", bi, err)
				}
				if slot.engine != nil {
					mu.Lock()
					res.EngineStats = addStats(res.EngineStats, slot.engine.Stats)
					mu.Unlock()
				}
				slot.engine, slot.cachedBlock = eng, bi
			}
			eng := slot.engine
			eng.SetDatabaseDims(cfg.Manifest.TotalResidues, cfg.Manifest.NumSeqs)

			vol, err := slot.cache.Get(cfg.Manifest.VolumePath(pi))
			if err != nil {
				return fmt.Errorf("partition %d: %w", pi, err)
			}
			var ssp obs.Span
			if wtr != nil {
				ssp = wtr.Begin("mrblast", "engine.search",
					obs.Arg{Key: "partition", Val: pi}, obs.Arg{Key: "subjects", Val: vol.NumSeqs()})
			}
			defer ssp.End()
			searchStart := time.Now()
			for si := 0; si < vol.NumSeqs(); si++ {
				var subj blast.Subject
				subj, slot.subjBuf = vol.SubjectAppend(si, slot.subjBuf)
				hsps, err := eng.SearchSubject(subj)
				if err != nil {
					return err
				}
				for _, h := range hsps {
					if cfg.ExcludeSelfHits && bio.FragmentParent(h.QueryID) == h.SubjectID {
						continue
					}
					qi := blockBase[bi] + uint64(queryIndexInBlock(cfg.QueryBlocks[bi], h.QueryID))
					kv.Add(queryKey(qi), h.Marshal())
				}
			}
			mu.Lock()
			res.EngineTime += time.Since(searchStart)
			mu.Unlock()
			return nil
		})
		if err != nil {
			mr.Close()
			return nil, err
		}

		if _, err := mr.Collate(nil); err != nil {
			mr.Close()
			return nil, err
		}
		// Keep queries in original order within each rank's output.
		if err := mr.SortKeys(bytes.Compare); err != nil {
			mr.Close()
			return nil, err
		}

		_, err = mr.Reduce(func(key []byte, values [][]byte, _ *mrmpi.KeyValue) error {
			hsps := make([]*blast.HSP, 0, len(values))
			for _, v := range values {
				h, err := blast.UnmarshalHSP(v)
				if err != nil {
					return err
				}
				hsps = append(hsps, h)
			}
			blast.SortHSPs(hsps)
			if cfg.TopK > 0 && len(hsps) > cfg.TopK {
				hsps = hsps[:cfg.TopK]
			}
			mu.Lock()
			localHits += int64(len(hsps))
			mu.Unlock()
			if out != nil {
				for _, h := range hsps {
					if cfg.OutFormat == "jsonl" {
						data, err := json.Marshal(h)
						if err != nil {
							return err
						}
						if _, err := out.Write(append(data, '\n')); err != nil {
							return err
						}
					} else if _, err := fmt.Fprintln(out, h.String()); err != nil {
						return err
					}
				}
			}
			return nil
		})
		mr.Close()
		if err != nil {
			return nil, err
		}
		res.Iterations++
		board.SetEpoch(int64(res.Iterations))
	}

	for _, slot := range slots {
		if slot.engine != nil {
			res.EngineStats = addStats(res.EngineStats, slot.engine.Stats)
		}
		res.CacheStats = addCacheStats(res.CacheStats, slot.cache.Stats())
	}
	// Publish this rank's engine and cache counters into the run's registry
	// (additive across ranks; no-op when metrics are disabled).
	if reg := comm.Metrics(); reg != nil {
		res.EngineStats.Publish(reg)
		res.CacheStats.Publish(reg)
		reg.Counter("mrblast.work.items").Add(int64(res.WorkItems))
		reg.Counter("mrblast.hits").Add(localHits)
		reg.Counter("mrblast.engine.time.ns").Add(int64(res.EngineTime))
	}
	if out != nil {
		if err := out.Flush(); err != nil {
			return nil, err
		}
		if err := outFile.Sync(); err != nil {
			return nil, err
		}
	}
	res.TotalHits = mpi.AllreduceSumInt64(comm, localHits)
	return res, nil
}

func addCacheStats(a, b blastdb.CacheStats) blastdb.CacheStats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.BytesLoaded += b.BytesLoaded
	return a
}

func addStats(a, b blast.EngineStats) blast.EngineStats {
	a.Subjects += b.Subjects
	a.WordHits += b.WordHits
	a.UngappedExts += b.UngappedExts
	a.GappedExts += b.GappedExts
	a.HSPsReported += b.HSPsReported
	a.ResiduesScanned += b.ResiduesScanned
	return a
}

// queryIndexInBlock locates a query ID inside its block. Blocks are small
// (hundreds to thousands of sequences), and hits cluster by query, so a
// linear scan with a memo would be overkill; IDs within a block are unique
// by construction.
func queryIndexInBlock(block []*bio.Sequence, id string) int {
	for i, s := range block {
		if s.ID == id {
			return i
		}
	}
	panic(fmt.Sprintf("mrblast: query %q not in its block", id))
}

// SerialSearch runs the same search on one core without MapReduce: the
// baseline the parallel result is validated against and the reference for
// speedup measurements. It returns all hits in global report order.
func SerialSearch(queries []*bio.Sequence, manifest *blastdb.Manifest, params blast.Params, topK int, excludeSelf bool) ([]*blast.HSP, error) {
	if params.DBLength == 0 {
		params.DBLength = manifest.TotalResidues
		params.DBNumSeqs = manifest.NumSeqs
	}
	eng, err := blast.NewEngine(queries, params)
	if err != nil {
		return nil, err
	}
	eng.SetDatabaseDims(manifest.TotalResidues, manifest.NumSeqs)
	var all []*blast.HSP
	for pi := 0; pi < manifest.NumPartitions(); pi++ {
		vol, err := blastdb.LoadVolume(manifest.VolumePath(pi))
		if err != nil {
			return nil, err
		}
		for si := 0; si < vol.NumSeqs(); si++ {
			hsps, err := eng.SearchSubject(vol.Subject(si))
			if err != nil {
				return nil, err
			}
			for _, h := range hsps {
				if excludeSelf && bio.FragmentParent(h.QueryID) == h.SubjectID {
					continue
				}
				all = append(all, h)
			}
		}
	}
	all = blast.TopK(all, topK)
	blast.SortHSPs(all)
	return all, nil
}

// ReadHitsFile parses one rank output file back into HSP-like records for
// verification and downstream analysis. Only the fields present in the TSV
// are recovered.
func ReadHitsFile(path string) ([]*blast.HSP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []*blast.HSP
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		h := &blast.HSP{}
		var pid, bits float64
		var strand string
		_, err := fmt.Sscanf(sc.Text(), "%s\t%s\t%f\t%d\t%d\t%d\t%d\t%d\t%d\t%g\t%f\t%s",
			&h.QueryID, &h.SubjectID, &pid, &h.AlignLen, &h.Gaps,
			&h.QStart, &h.QEnd, &h.SStart, &h.SEnd, &h.EValue, &bits, &strand)
		if err != nil {
			return nil, fmt.Errorf("mrblast: parsing %s: %w", path, err)
		}
		h.BitScore = bits
		h.Identities = int(pid*float64(h.AlignLen)/100 + 0.5)
		h.Strand = 1
		if strand == "-" {
			h.Strand = -1
		}
		out = append(out, h)
	}
	return out, sc.Err()
}
