package mrblast

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/blastdb"
	"repro/internal/mpi"
	"repro/internal/mrmpi"
)

// workload bundles a small synthetic metagenomic search: queries are
// shredded fragments of mutated strains, the database is the genome set.
type workload struct {
	blocks   [][]*bio.Sequence
	queries  []*bio.Sequence
	manifest *blastdb.Manifest
	params   blast.Params
}

func makeWorkload(t *testing.T, blockSize int, nparts int64) *workload {
	t.Helper()
	g := bio.NewGenerator(bio.SynthParams{Seed: 100})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 4, MinLen: 2000, MaxLen: 4000,
		StrainsPerGenome: 1, StrainIdentity: 0.92,
	})
	// Queries: shredded strains (diverged copies of DB genomes).
	var strains []*bio.Sequence
	for _, ss := range set.Strains {
		strains = append(strains, ss...)
	}
	frags, err := bio.ShredAll(strains, bio.ShredParams{FragLen: 400, Overlap: 200, MinLen: 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 10 {
		t.Fatalf("too few fragments: %d", len(frags))
	}
	frags = frags[:min(len(frags), 36)]

	var total int64
	for _, s := range set.Genomes {
		total += int64(s.Len())
	}
	m, err := blastdb.Format(set.Genomes, bio.DNA, t.TempDir(), "db",
		blastdb.FormatOptions{TargetResidues: total/nparts + 1})
	if err != nil {
		t.Fatal(err)
	}
	params := blast.DefaultNucleotideParams()
	params.EValueCutoff = 1e-5
	return &workload{
		blocks:   bio.SplitFasta(frags, blockSize),
		queries:  frags,
		manifest: m,
		params:   params,
	}
}

func runParallel(t *testing.T, w *workload, nranks int, mod func(*Config)) (allHits []*blast.HSP, results map[int]*Result) {
	t.Helper()
	outDir := t.TempDir()
	results = map[int]*Result{}
	var mu sync.Mutex
	err := mpi.Run(nranks, func(c *mpi.Comm) error {
		cfg := Config{
			Params:      w.params,
			QueryBlocks: w.blocks,
			Manifest:    w.manifest,
			MapStyle:    mrmpi.MapStyleMaster,
			OutDir:      outDir,
		}
		if mod != nil {
			mod(&cfg)
		}
		res, err := Run(c, cfg)
		if err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		hits, err := ReadHitsFile(res.OutFile)
		if err != nil {
			t.Fatal(err)
		}
		allHits = append(allHits, hits...)
	}
	return allHits, results
}

func TestParallelMatchesSerial(t *testing.T) {
	w := makeWorkload(t, 9, 4)
	serial, err := SerialSearch(w.queries, w.manifest, w.params, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("serial baseline found no hits; workload broken")
	}
	want := fingerprintsFromFiles(serial)

	for _, tc := range []struct {
		name   string
		nranks int
		mod    func(*Config)
	}{
		{"master-3ranks", 3, nil},
		{"master-5ranks", 5, nil},
		{"chunk-2ranks", 2, func(c *Config) { c.MapStyle = mrmpi.MapStyleChunk }},
		{"stride-4ranks", 4, func(c *Config) { c.MapStyle = mrmpi.MapStyleStride }},
		{"single-rank", 1, nil},
		{"big-cache", 4, func(c *Config) { c.CacheCapacity = 8 }},
		{"multi-iteration", 4, func(c *Config) { c.BlocksPerIteration = 1 }},
		{"tiny-mr-memory", 3, func(c *Config) { c.MRMemSize = 1024 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hits, results := runParallel(t, w, tc.nranks, tc.mod)
			got := fingerprintsFromFiles(hits)
			if len(got) != len(want) {
				t.Fatalf("hit count %d != serial %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("hit %d differs:\n got %s\nwant %s", i, got[i], want[i])
				}
			}
			var total int64
			for _, r := range results {
				total = r.TotalHits // same on every rank
			}
			if total != int64(len(serial)) {
				t.Errorf("TotalHits = %d, want %d", total, len(serial))
			}
		})
	}
}

// fingerprintsFromFiles canonicalizes hits parsed back from TSV (which
// lack Strand/Score); use coordinate fields only.
func fingerprintsFromFiles(hsps []*blast.HSP) []string {
	out := make([]string, len(hsps))
	for i, h := range hsps {
		out[i] = fmt.Sprintf("%s|%s|%d|%d|%d|%d", h.QueryID, h.SubjectID,
			h.QStart, h.QEnd, h.SStart, h.SEnd)
	}
	sort.Strings(out)
	return out
}

func TestParallelTopKMatchesSerialTopK(t *testing.T) {
	w := makeWorkload(t, 9, 3)
	const k = 2
	serial, err := SerialSearch(w.queries, w.manifest, w.params, k, false)
	if err != nil {
		t.Fatal(err)
	}
	hits, _ := runParallel(t, w, 4, func(c *Config) { c.TopK = k })
	if len(hits) != len(serial) {
		t.Fatalf("topK hit count %d != serial %d", len(hits), len(serial))
	}
	// Per-query count must respect k.
	perQuery := map[string]int{}
	for _, h := range hits {
		perQuery[h.QueryID]++
	}
	for q, n := range perQuery {
		if n > k {
			t.Errorf("query %s has %d hits, cap %d", q, n, k)
		}
	}
}

func TestSelfHitExclusion(t *testing.T) {
	// Queries shredded directly from the DB genomes: without exclusion each
	// fragment trivially hits its parent; with exclusion those vanish.
	g := bio.NewGenerator(bio.SynthParams{Seed: 200})
	set := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 3, MinLen: 1500, MaxLen: 2500, StrainsPerGenome: 0, StrainIdentity: 1,
	})
	frags, err := bio.ShredAll(set.Genomes, bio.ShredParams{FragLen: 400, Overlap: 200, MinLen: 150})
	if err != nil {
		t.Fatal(err)
	}
	m, err := blastdb.Format(set.Genomes, bio.DNA, t.TempDir(), "db",
		blastdb.FormatOptions{TargetResidues: 2500})
	if err != nil {
		t.Fatal(err)
	}
	params := blast.DefaultNucleotideParams()
	params.EValueCutoff = 1e-5
	w := &workload{blocks: bio.SplitFasta(frags, 8), queries: frags, manifest: m, params: params}

	withSelf, _ := runParallel(t, w, 3, nil)
	without, _ := runParallel(t, w, 3, func(c *Config) { c.ExcludeSelfHits = true })
	if len(withSelf) <= len(without) {
		t.Fatalf("exclusion removed nothing: %d vs %d", len(withSelf), len(without))
	}
	for _, h := range without {
		if bio.FragmentParent(h.QueryID) == h.SubjectID {
			t.Fatalf("self hit survived: %s vs %s", h.QueryID, h.SubjectID)
		}
	}
}

func TestOutputPartitionedByQuery(t *testing.T) {
	// The paper: hits for each query are located in only one file,
	// maintaining the original order of the queries within each file.
	w := makeWorkload(t, 7, 4)
	_, results := runParallel(t, w, 4, nil)

	queryOrder := map[string]int{}
	for i, q := range w.queries {
		queryOrder[q.ID] = i
	}
	fileOfQuery := map[string]int{}
	for rank, res := range results {
		hits, err := ReadHitsFile(res.OutFile)
		if err != nil {
			t.Fatal(err)
		}
		lastIdx := -1
		seenHere := map[string]bool{}
		for _, h := range hits {
			if prev, ok := fileOfQuery[h.QueryID]; ok && prev != rank {
				t.Fatalf("query %s appears in files of ranks %d and %d", h.QueryID, prev, rank)
			}
			fileOfQuery[h.QueryID] = rank
			idx := queryOrder[h.QueryID]
			if !seenHere[h.QueryID] {
				if idx < lastIdx {
					t.Fatalf("rank %d file breaks original query order at %s", rank, h.QueryID)
				}
				lastIdx = idx
				seenHere[h.QueryID] = true
			}
		}
	}
	if len(fileOfQuery) == 0 {
		t.Fatal("no hits written")
	}
}

func TestHitsSortedByEvalueWithinQuery(t *testing.T) {
	w := makeWorkload(t, 9, 3)
	_, results := runParallel(t, w, 3, nil)
	for _, res := range results {
		hits, err := ReadHitsFile(res.OutFile)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(hits); i++ {
			if hits[i].QueryID == hits[i-1].QueryID && hits[i].EValue < hits[i-1].EValue {
				t.Fatalf("hits of %s not sorted by E-value", hits[i].QueryID)
			}
		}
	}
}

func TestCacheBehavior(t *testing.T) {
	w := makeWorkload(t, 6, 4)
	nparts := w.manifest.NumPartitions()

	// Capacity 1 (paper's config): misses whenever the partition changes.
	_, res1 := runParallel(t, w, 3, nil)
	var missesCap1 int64
	for _, r := range res1 {
		missesCap1 += r.CacheStats.Misses
	}
	// Capacity >= nparts: each rank loads each partition at most once.
	_, resN := runParallel(t, w, 3, func(c *Config) { c.CacheCapacity = nparts })
	var missesCapN int64
	for rank, r := range resN {
		missesCapN += r.CacheStats.Misses
		if rank != 0 && r.CacheStats.Misses > int64(nparts) {
			t.Errorf("rank %d missed %d times with full cache", rank, r.CacheStats.Misses)
		}
	}
	if missesCapN > missesCap1 {
		t.Errorf("bigger cache missed more: %d vs %d", missesCapN, missesCap1)
	}
}

func TestMasterDoesNoWork(t *testing.T) {
	w := makeWorkload(t, 6, 3)
	_, results := runParallel(t, w, 4, nil)
	if results[0].WorkItems != 0 {
		t.Errorf("master executed %d work items", results[0].WorkItems)
	}
	total := 0
	for _, r := range results {
		total += r.WorkItems
	}
	want := len(w.blocks) * w.manifest.NumPartitions()
	if total != want {
		t.Errorf("work items = %d, want %d", total, want)
	}
}

func TestMultiIterationCounts(t *testing.T) {
	w := makeWorkload(t, 5, 3)
	_, results := runParallel(t, w, 3, func(c *Config) { c.BlocksPerIteration = 2 })
	wantIters := (len(w.blocks) + 1) / 2
	for rank, r := range results {
		if r.Iterations != wantIters {
			t.Errorf("rank %d iterations = %d, want %d", rank, r.Iterations, wantIters)
		}
	}
}

func TestRunValidation(t *testing.T) {
	w := makeWorkload(t, 8, 2)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		if _, err := Run(c, Config{Params: w.params, Manifest: w.manifest}); err == nil {
			t.Error("empty query blocks accepted")
		}
		if _, err := Run(c, Config{Params: w.params, QueryBlocks: w.blocks}); err == nil {
			t.Error("nil manifest accepted")
		}
		badParams := blast.DefaultProteinParams()
		if _, err := Run(c, Config{Params: badParams, QueryBlocks: w.blocks, Manifest: w.manifest}); err == nil {
			t.Error("alphabet mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProteinParallelMatchesSerial(t *testing.T) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 300})
	// Database: 12 random proteins; queries: mutated copies of some.
	var db []*bio.Sequence
	for i := 0; i < 12; i++ {
		db = append(db, g.RandomProtein(fmt.Sprintf("prot%02d", i), 150+i*20))
	}
	var queries []*bio.Sequence
	for i := 0; i < 6; i++ {
		q := g.Mutate(db[i*2], fmt.Sprintf("query%02d", i), 0.25, 0, bio.Protein)
		queries = append(queries, q)
	}
	m, err := blastdb.Format(db, bio.Protein, t.TempDir(), "protdb",
		blastdb.FormatOptions{TargetResidues: 600})
	if err != nil {
		t.Fatal(err)
	}
	params := blast.DefaultProteinParams()
	params.EValueCutoff = 1e-4

	serial, err := SerialSearch(queries, m, params, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 {
		t.Fatal("no protein hits in baseline")
	}
	w := &workload{blocks: bio.SplitFasta(queries, 2), queries: queries, manifest: m, params: params}
	hits, _ := runParallel(t, w, 3, nil)
	if len(hits) != len(serial) {
		t.Fatalf("protein parallel %d hits != serial %d", len(hits), len(serial))
	}
}

func TestReadHitsFileRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/bad.tsv"
	if err := os.WriteFile(path, []byte("not\ta\tvalid\tline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHitsFile(path); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadHitsFile(t.TempDir() + "/missing.tsv"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLocalityAwareMatchesSerialAndReducesMisses(t *testing.T) {
	w := makeWorkload(t, 4, 4) // small blocks -> many units per partition
	serial, err := SerialSearch(w.queries, w.manifest, w.params, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintsFromFiles(serial)

	hitsMW, resMW := runParallel(t, w, 4, nil)
	hitsLA, resLA := runParallel(t, w, 4, func(c *Config) { c.LocalityAware = true })

	for _, got := range [][]string{fingerprintsFromFiles(hitsMW), fingerprintsFromFiles(hitsLA)} {
		if len(got) != len(want) {
			t.Fatalf("hit count %d != serial %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("hit %d differs", i)
			}
		}
	}
	var missMW, missLA int64
	for _, r := range resMW {
		missMW += r.CacheStats.Misses
	}
	for _, r := range resLA {
		missLA += r.CacheStats.Misses
	}
	if missLA > missMW {
		t.Errorf("locality-aware misses %d > master-worker %d", missLA, missMW)
	}
}

func TestJSONLOutput(t *testing.T) {
	w := makeWorkload(t, 9, 3)
	outDir := t.TempDir()
	var results []*Result
	var mu sync.Mutex
	err := mpi.Run(3, func(c *mpi.Comm) error {
		res, err := Run(c, Config{
			Params:      w.params,
			QueryBlocks: w.blocks,
			Manifest:    w.manifest,
			MapStyle:    mrmpi.MapStyleMaster,
			OutDir:      outDir,
			OutFormat:   "jsonl",
		})
		if err != nil {
			return err
		}
		mu.Lock()
		results = append(results, res)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	parsed := 0
	for _, res := range results {
		data, err := os.ReadFile(res.OutFile)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			var h blast.HSP
			if err := json.Unmarshal([]byte(line), &h); err != nil {
				t.Fatalf("bad JSON line: %v\n%s", err, line)
			}
			if h.QueryID == "" || h.SubjectID == "" || h.EValue < 0 {
				t.Fatalf("JSON hit malformed: %+v", h)
			}
			parsed++
		}
	}
	if int64(parsed) != results[0].TotalHits {
		t.Errorf("parsed %d JSON hits, TotalHits %d", parsed, results[0].TotalHits)
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	w := makeWorkload(t, 9, 2)
	err := mpi.Run(1, func(c *mpi.Comm) error {
		_, err := Run(c, Config{
			Params: w.params, QueryBlocks: w.blocks, Manifest: w.manifest,
			OutFormat: "xml",
		})
		return err
	})
	if err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestCorruptVolumeFailsCleanly(t *testing.T) {
	// A corrupted partition must abort the whole job with a clear error —
	// the MPI failure semantics the paper describes — not hang or emit
	// partial garbage.
	w := makeWorkload(t, 8, 3)
	volPath := w.manifest.VolumePath(1)
	data, err := os.ReadFile(volPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-8] ^= 0xFF
	if err := os.WriteFile(volPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(3, func(c *mpi.Comm) error {
		_, err := Run(c, Config{
			Params:      w.params,
			QueryBlocks: w.blocks,
			Manifest:    w.manifest,
			MapStyle:    mrmpi.MapStyleMaster,
		})
		return err
	})
	if err == nil {
		t.Fatal("corrupt partition not detected")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("error lacks checksum diagnosis: %v", err)
	}
}

func TestCancellation(t *testing.T) {
	w := makeWorkload(t, 4, 4)
	cancel := make(chan struct{})
	close(cancel) // cancel before the first work item
	err := mpi.Run(3, func(c *mpi.Comm) error {
		_, err := Run(c, Config{
			Params:      w.params,
			QueryBlocks: w.blocks,
			Manifest:    w.manifest,
			MapStyle:    mrmpi.MapStyleMaster,
			Cancel:      cancel,
		})
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("cancellation not reported: %v", err)
	}
}

func TestUtilizationMetric(t *testing.T) {
	w := makeWorkload(t, 9, 3)
	_, results := runParallel(t, w, 3, nil)
	var rs []*Result
	for _, r := range results {
		rs = append(rs, r)
		if r.WallTime <= 0 {
			t.Errorf("rank wall time %v", r.WallTime)
		}
	}
	u := Utilization(rs)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %f, want (0,1]", u)
	}
	if Utilization(nil) != 0 {
		t.Error("empty results should give 0")
	}
}
