//go:build !race

package mpi

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
