package mpi

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Status describes a received message.
type Status struct {
	// Source is the sending rank.
	Source int
	// Tag is the message tag.
	Tag int
}

// Send delivers data to rank dst with the given tag. It is buffered (never
// blocks), matching MPI_Send on an eager-protocol transport. Tags must be
// non-negative; negative tags are reserved for collectives.
func (c *Comm) Send(dst, tag int, data any) {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: user tags must be non-negative, got %d", tag))
	}
	c.send(dst, tag, data)
}

func (c *Comm) send(dst, tag int, data any) {
	c.sendOp("Send", dst, tag, data)
}

// sendOp is the buffered delivery core shared by Send, the collectives, and
// Isend; op labels the trace instant.
func (c *Comm) sendOp(op string, dst, tag int, data any) {
	w := c.world
	if dst < 0 || dst >= w.size {
		panic(fmt.Sprintf("mpi: %s to invalid rank %d (size %d)", op, dst, w.size))
	}
	// Payload size feeds four optional subsystems; size it once when any is
	// on, never when all are off.
	var nb int64
	if w.tracers != nil || w.mSends != nil || w.commRanks != nil || w.flightRanks != nil {
		nb = payloadBytes(data)
	}
	m := message{src: c.rank, tag: tag, data: data}
	c.stampProvenance(&m, dst)
	if tr := c.Tracer(); tr != nil {
		tr.Instant("mpi", op,
			obs.Arg{Key: "dst", Val: dst}, obs.Arg{Key: "tag", Val: tag},
			obs.Arg{Key: "bytes", Val: nb},
			obs.Arg{Key: "seq", Val: int64(m.seq)}, obs.Arg{Key: "span", Val: int64(m.span)})
	}
	if w.mSends != nil {
		w.mSends.Inc()
		w.mSendBytes.Add(nb)
	}
	if cr := c.CommRank(); cr != nil {
		// Stamp the sender's clock and phase so the receiver can compute
		// queue time and attribute the traffic to the phase that sent it.
		m.phase = cr.Phase()
		m.sentAt = w.comm.Now()
		cr.RecordSend(dst, tag, nb, m.seq)
	}
	if fr := c.FlightRank(); fr != nil {
		fr.Notef("send", "%s dst=%d tag=%d bytes=%d", op, dst, tag, nb)
	}
	b := w.boxes[dst]
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(ErrAborted)
	}
	b.queue = append(b.queue, m)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// stampProvenance fills m's causal header — the message's ordinal on its
// (src, dst) link and the sender's innermost open span id. The receive side
// echoes both into its trace events, giving the causal stitcher an exact
// cross-rank edge instead of a FIFO guess. The disabled path (no tracing,
// no comm accounting) is two nil checks; the CI overhead gate pins it at
// <=5ns per send.
func (c *Comm) stampProvenance(m *message, dst int) {
	w := c.world
	if w.seqs != nil {
		m.seq = w.seqs[c.rank*w.size+dst].Add(1)
	}
	if tr := c.Tracer(); tr != nil {
		m.span = tr.CurrentSpanID()
	}
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// payload. src may be AnySource and tag may be AnyTag. Matching follows MPI
// semantics: among pending messages, the earliest-enqueued match is
// delivered, and messages between a fixed (source, tag) pair never overtake
// one another.
func (c *Comm) Recv(src, tag int) (any, Status) {
	return c.recvMatch("Recv", src, tag, userMatch(src, tag))
}

// userMatch builds the public-API matcher for (src, tag), honoring the
// AnySource/AnyTag wildcards and keeping AnyTag away from internal
// (negative-tag) collective traffic. Shared by Recv and Irecv.
func userMatch(src, tag int) func(*message) bool {
	if tag == AnyTag {
		return func(m *message) bool {
			return (src == AnySource || m.src == src) && m.tag >= 0
		}
	}
	return func(m *message) bool {
		return (src == AnySource || m.src == src) && m.tag == tag
	}
}

// recv matches an exact (src, tag) pair, including internal negative tags.
func (c *Comm) recv(src, tag int) (any, Status) {
	return c.recvMatch("Recv", src, tag, func(m *message) bool {
		return m.src == src && m.tag == tag
	})
}

// recvMatch is the blocking receive core. op labels the trace span (Recv or
// a Request's Wait); src and tag are diagnostic only — match decides
// delivery.
func (c *Comm) recvMatch(op string, src, tag int, match func(*message) bool) (any, Status) {
	var sp obs.Span
	if tr := c.Tracer(); tr != nil {
		sp = tr.Begin("mpi", op,
			obs.Arg{Key: "src", Val: src}, obs.Arg{Key: "tag", Val: tag})
	}
	defer sp.End()
	c.world.mRecvs.Inc()
	// Comm accounting: note when matching started, so delivery minus start
	// is the time this rank actually waited for the message (its transfer
	// time on the eager transport).
	cr := c.CommRank()
	var matchStart int64
	if cr != nil {
		matchStart = c.world.comm.Now()
	}
	b := c.world.boxes[c.rank]
	timeout := c.world.timeout
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var watchdog *time.Timer
	defer func() {
		if watchdog != nil {
			watchdog.Stop()
		}
	}()
	for {
		if b.aborted {
			panic(ErrAborted)
		}
		for i := range b.queue {
			if match(&b.queue[i]) {
				m := b.queue[i]
				b.queue = append(b.queue[:i], b.queue[i+1:]...)
				var mb int64
				if sp.Active() || cr != nil || c.world.flightRanks != nil {
					mb = payloadBytes(m.data)
				}
				if sp.Active() {
					// The End args carry the matched source plus the
					// sender's piggybacked provenance (link seq + sender
					// span id), which the causal stitcher pairs with the
					// matching Send instant to build an exact cross-rank
					// edge; the deferred End below becomes a no-op.
					sp.End(obs.Arg{Key: "from", Val: m.src},
						obs.Arg{Key: "tag", Val: m.tag},
						obs.Arg{Key: "bytes", Val: mb},
						obs.Arg{Key: "seq", Val: int64(m.seq)},
						obs.Arg{Key: "sspan", Val: int64(m.span)})
				}
				if cr != nil {
					now := c.world.comm.Now()
					cr.RecordRecv(m.src, m.tag, mb, now-m.sentAt, now-matchStart, m.seq, m.phase)
				}
				if fr := c.FlightRank(); fr != nil {
					fr.Notef("recv", "%s src=%d tag=%d bytes=%d", op, m.src, m.tag, mb)
				}
				return m.data, Status{Source: m.src, Tag: m.tag}
			}
		}
		if timeout > 0 && time.Now().After(deadline) {
			// debugStatus names each rank's collective fingerprint under
			// mpidebug builds; traceStatus names each rank's in-flight span
			// when tracing is enabled; boardStatus shows each rank's live
			// progress; flightDump leaves the full post-mortem file. Any of
			// them points at the laggard rank.
			panic(fmt.Errorf("mpi: rank %d Recv timed out after %v (likely deadlock)%s%s%s%s: %w",
				c.rank, timeout, c.debugStatus(), c.world.traceStatus(), c.world.boardStatus(),
				c.world.flightDump(fmt.Sprintf("rank %d Recv timed out after %v (likely deadlock)", c.rank, timeout)),
				ErrAborted))
		}
		if timeout > 0 && watchdog == nil {
			// Wake the cond at the deadline so the timeout check above
			// runs; stopped on return so successful receives leave no
			// lingering timers.
			watchdog = time.AfterFunc(time.Until(deadline), func() {
				b.mu.Lock()
				b.cond.Broadcast()
				b.mu.Unlock()
			})
		}
		b.cond.Wait()
	}
}

// Probe reports whether a message matching (src, tag) is pending, without
// receiving it.
func (c *Comm) Probe(src, tag int) (bool, Status) {
	b := c.world.boxes[c.rank]
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.queue {
		m := &b.queue[i]
		if (src == AnySource || m.src == src) && (tag == AnyTag && m.tag >= 0 || m.tag == tag) {
			return true, Status{Source: m.src, Tag: m.tag}
		}
	}
	return false, Status{}
}

// Sendrecv performs a combined send and receive, safe against the pairwise
// exchange deadlock of two blocking calls: the send is buffered, then the
// receive blocks.
func (c *Comm) Sendrecv(dst, sendTag int, data any, src, recvTag int) (any, Status) {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}

// payloadBytes estimates the wire size of a message payload for trace args
// and byte counters. It covers the types the runtime actually moves in
// bulk; exotic payloads report 0 rather than paying for reflection.
func payloadBytes(data any) int64 {
	switch v := data.(type) {
	case nil:
		return 0
	case []byte:
		return int64(len(v))
	case string:
		return int64(len(v))
	case []float64:
		return int64(8 * len(v))
	case []int64:
		return int64(8 * len(v))
	case []int:
		return int64(8 * len(v))
	case [][]byte:
		var n int64
		for _, b := range v {
			n += int64(len(b))
		}
		return n
	case int, int64, uint64, float64, bool:
		return 8
	default:
		return 0
	}
}
