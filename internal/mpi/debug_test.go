//go:build mpidebug

package mpi

import (
	"strings"
	"testing"
	"time"
)

// TestDebugCollectiveMismatch provokes a deliberately rank-divergent
// collective sequence — rank 0 broadcasts while rank 1 enters a barrier —
// and asserts the runtime checker converts what would otherwise be a silent
// deadlock into an immediate diagnostic naming both ranks, both ops, and
// the call sites. (Without mpidebug this program would hang until the
// 2-second watchdog timeout fired, with no indication of which rank
// diverged.)
func TestDebugCollectiveMismatch(t *testing.T) {
	err := RunWith(2, RunOptions{Timeout: 2 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 { // mpilint:ignore divergence -- deliberate divergence to exercise the checker
			Bcast(c, 0, 42) // mpilint:ignore divergence,mismatch,globaldeadlock -- deliberate divergence to exercise the checker
		} else {
			c.Barrier() // mpilint:ignore divergence -- deliberate divergence to exercise the checker
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected a collective mismatch diagnostic, got nil")
	}
	msg := err.Error()
	// Whichever rank arrives second reports the mismatch, so the diagnostic
	// always names both ops and both ranks.
	for _, want := range []string{
		"collective mismatch at step 0",
		"Bcast", "Barrier",
		"rank 0", "rank 1",
		"debug_test.go",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "timed out") {
		t.Errorf("mismatch should be immediate, not a timeout:\n%s", msg)
	}
}

// TestDebugMatchingCollectivesPass checks the ledger accepts a uniform
// collective sequence, including composites that expand to several
// primitive fingerprints.
func TestDebugMatchingCollectivesPass(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		c.Barrier()
		v := Bcast(c, 0, 7)
		if v != 7 {
			t.Errorf("Bcast = %d", v)
		}
		sum := AllreduceSumInt64(c, 1)
		if sum != 4 {
			t.Errorf("AllreduceSumInt64 = %d", sum)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatalf("uniform sequence should pass the checker: %v", err)
	}
}

// TestDebugUnreceivedMessage: a world that finishes while a message still
// sits in a mailbox has a matching bug; mpidebug builds report it with
// source, destination, and tag.
func TestDebugUnreceivedMessage(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, "orphan") // mpilint:ignore tags,unmatched -- never received: a deliberate orphan send
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an unreceived-message diagnostic, got nil")
	}
	msg := err.Error()
	for _, want := range []string{"never received", "from rank 0 to rank 1", "tag 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// TestDebugTimeoutNamesLaggard: when a Recv deadlocks, the timeout
// diagnostic includes per-rank collective fingerprints so the laggard is
// identifiable.
func TestDebugTimeoutNamesLaggard(t *testing.T) {
	err := RunWith(2, RunOptions{Timeout: 100 * time.Millisecond}, func(c *Comm) error {
		c.Barrier()
		if c.Rank() == 0 {
			c.Recv(1, 5) // mpilint:ignore unmatched,globaldeadlock -- rank 1 never sends: provokes the timeout diagnostic
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected a timeout diagnostic, got nil")
	}
	msg := err.Error()
	for _, want := range []string{"timed out", "collective fingerprints", "rank 0: 1 collectives entered", "last Barrier"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// TestDebugUnwaitedRequest: a world that exits while a nonblocking Request
// was never completed with Wait or Test has leaked the request; mpidebug
// builds report it with the opening op and call site.
func TestDebugUnwaitedRequest(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Isend(1, 9, "page").Wait()
			c.Irecv(1, AnyTag) // mpilint:ignore requests -- deliberately leaked request
		} else {
			c.Recv(0, 9)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an unwaited-request diagnostic, got nil")
	}
	msg := err.Error()
	for _, want := range []string{"never completed with Wait or Test", "rank 0 Irecv", "debug_test.go"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// TestDebugTestRetiresRequest: a successful Test is as good as Wait for the
// leak check.
func TestDebugTestRetiresRequest(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		c.Isend(peer, 4, peer).Wait()
		req := c.Irecv(peer, 4)
		for {
			if _, _, ok := req.Test(); ok {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	})
	if err != nil {
		t.Fatalf("Test-completed requests should not be reported as leaked: %v", err)
	}
}
