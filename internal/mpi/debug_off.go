//go:build !mpidebug

package mpi

// This file is the zero-cost half of the runtime invariant checker: without
// the mpidebug build tag every hook compiles to an inlinable no-op, so the
// instrumented call sites in collective.go, p2p.go, and mpi.go cost nothing
// in normal builds. Build with `-tags mpidebug` (see `make debug` and the
// "Correctness tooling" section of README.md) to enable the checks.

// debugState carries no state in normal builds.
type debugState struct{}

// newDebugState returns nil: no ledger is kept.
func newDebugState(n int) *debugState { return nil }

// debugCollective is a no-op without mpidebug.
func (c *Comm) debugCollective(op string) {}

// debugRequestOpen is a no-op without mpidebug.
func (c *Comm) debugRequestOpen(r *Request, op string) {}

// debugRequestDone is a no-op without mpidebug.
func (c *Comm) debugRequestDone(r *Request) {}

// debugStatus contributes nothing to timeout diagnostics without mpidebug.
func (c *Comm) debugStatus() string { return "" }

// debugCheckDrained accepts any end-of-run mailbox state without mpidebug.
func debugCheckDrained(w *World) error { return nil }
