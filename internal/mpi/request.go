package mpi

import (
	"fmt"

	"repro/internal/obs"
)

// Nonblocking point-to-point: Isend and Irecv return a Request handle that
// is completed later with Wait or Test (or in bulk with Waitall). The
// transport is eager and buffered, so Isend hands its payload off
// immediately and its Request is born complete; Irecv defers matching until
// Wait or Test runs, which lets a rank post receives for many peers and
// poll them while it keeps computing — the overlap primitive under the
// streaming Aggregate exchange in internal/mrmpi.
//
// Matching semantics: a pending Irecv does not reserve a message at post
// time. Each Wait/Test matches against the mailbox exactly like Recv
// (earliest-enqueued match wins, per-(source, tag) FIFO preserved), so two
// outstanding Requests with the same (source, tag) deliver messages in the
// order their Wait/Test calls run, not the order the Requests were posted.
//
// Every Request must eventually be completed with Wait or a successful
// Test: mpidebug builds track outstanding Requests and report leaks at
// world exit, and the mpilint "requests" analyzer flags the static pattern.

// Request is a handle on a nonblocking operation started with Isend or
// Irecv. It is owned by the rank that created it and is not safe for
// concurrent use.
type Request struct {
	c      *Comm
	isRecv bool
	src    int // recv matching source (may be AnySource)
	tag    int // recv matching tag (may be AnyTag)
	done   bool
	data   any
	st     Status
	ledger uint64 // pending-request ledger id; 0 when untracked
}

// Isend starts a nonblocking send of data to rank dst with the given tag.
// On this eager buffered transport the payload is delivered to dst's
// mailbox immediately, so the returned Request is already complete; Wait
// exists to mirror MPI structure (and so the runtime and lint checkers can
// verify every Request is retired). Ownership of data passes to the
// receiver at the Isend call, not at Wait.
func (c *Comm) Isend(dst, tag int, data any) *Request {
	if tag < 0 {
		panic(fmt.Sprintf("mpi: user tags must be non-negative, got %d", tag))
	}
	c.sendOp("Isend", dst, tag, data)
	r := &Request{c: c, done: true}
	c.debugRequestOpen(r, "Isend")
	c.ledgerOpen(r, fmt.Sprintf("Isend dst=%d tag=%d", dst, tag))
	return r
}

// Irecv posts a nonblocking receive for a message matching (src, tag); src
// may be AnySource and tag may be AnyTag, with the same wildcard semantics
// as Recv. The returned Request completes on Wait (blocking) or a
// successful Test (polling).
func (c *Comm) Irecv(src, tag int) *Request {
	if tag < AnyTag {
		panic(fmt.Sprintf("mpi: Irecv tag %d is reserved for internal collective traffic", tag))
	}
	if tr := c.Tracer(); tr != nil {
		tr.Instant("mpi", "Irecv",
			obs.Arg{Key: "src", Val: src}, obs.Arg{Key: "tag", Val: tag})
	}
	r := &Request{c: c, isRecv: true, src: src, tag: tag}
	c.debugRequestOpen(r, "Irecv")
	c.ledgerOpen(r, fmt.Sprintf("Irecv src=%d tag=%d", src, tag))
	return r
}

// Wait blocks until the operation completes and returns the received
// payload and status (nil payload and a zero Status for send Requests).
// Calling Wait on an already-complete Request returns the cached result.
func (r *Request) Wait() (any, Status) {
	if r.done {
		r.c.debugRequestDone(r)
		r.c.ledgerClose(r)
		return r.data, r.st
	}
	data, st := r.c.recvMatch("Wait", r.src, r.tag, userMatch(r.src, r.tag))
	r.data, r.st, r.done = data, st, true
	r.c.debugRequestDone(r)
	r.c.ledgerClose(r)
	return data, st
}

// Test polls for completion without blocking. It returns (payload, status,
// true) when the operation has completed — consuming the matched message
// for receive Requests — and (nil, zero, false) when it has not.
func (r *Request) Test() (any, Status, bool) {
	if r.done {
		r.c.debugRequestDone(r)
		r.c.ledgerClose(r)
		return r.data, r.st, true
	}
	match := userMatch(r.src, r.tag)
	b := r.c.world.boxes[r.c.rank]
	b.mu.Lock()
	if b.aborted {
		b.mu.Unlock()
		panic(ErrAborted)
	}
	for i := range b.queue {
		if !match(&b.queue[i]) {
			continue
		}
		m := b.queue[i]
		b.queue = append(b.queue[:i], b.queue[i+1:]...)
		b.mu.Unlock()
		r.c.world.mRecvs.Inc()
		if tr := r.c.Tracer(); tr != nil {
			tr.Instant("mpi", "Test",
				obs.Arg{Key: "from", Val: m.src}, obs.Arg{Key: "tag", Val: m.tag},
				obs.Arg{Key: "bytes", Val: payloadBytes(m.data)},
				obs.Arg{Key: "seq", Val: int64(m.seq)},
				obs.Arg{Key: "sspan", Val: int64(m.span)})
		}
		if cr := r.c.CommRank(); cr != nil {
			// A successful Test found the message already queued: transfer
			// time (receiver wait) is zero; queue time still runs from the
			// sender's stamp.
			cr.RecordRecv(m.src, m.tag, payloadBytes(m.data), r.c.world.comm.Now()-m.sentAt, 0, m.seq, m.phase)
		}
		if fr := r.c.FlightRank(); fr != nil {
			fr.Notef("recv", "Test src=%d tag=%d bytes=%d", m.src, m.tag, payloadBytes(m.data))
		}
		r.data, r.st, r.done = m.data, Status{Source: m.src, Tag: m.tag}, true
		r.c.debugRequestDone(r)
		r.c.ledgerClose(r)
		return r.data, r.st, true
	}
	b.mu.Unlock()
	return nil, Status{}, false
}

// Waitall completes every non-nil Request in order, equivalent to calling
// Wait on each; retrieve per-Request payloads with the (cached, idempotent)
// Wait afterwards.
func Waitall(reqs []*Request) {
	var sp obs.Span
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if !sp.Active() {
			if tr := r.c.Tracer(); tr != nil {
				sp = tr.Begin("mpi", "Waitall", obs.Arg{Key: "n", Val: len(reqs)})
			}
		}
		r.Wait()
	}
	sp.End()
}
