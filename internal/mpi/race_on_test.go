//go:build race

package mpi

// raceEnabled reports whether the race detector is compiled in, so timing
// gates can skip themselves under its instrumentation.
const raceEnabled = true
