package mpi

import (
	"testing"
	"time"

	obscomm "repro/internal/obs/comm"
)

// TestCommAccountingEndToEnd drives p2p (blocking and nonblocking, Wait and
// Test completion) plus collectives with comm accounting on, and checks the
// merged matrix balances: every sent message is delivered, phases are
// attributed from the sender, and latency fields are sane.
func TestCommAccountingEndToEnd(t *testing.T) {
	tracker := obscomm.NewTracker()
	err := RunWith(4, RunOptions{Comm: tracker}, func(c *Comm) error {
		c.CommRank().SetPhase("p2p")
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() + c.Size() - 1) % c.Size()
		// Blocking ring exchange.
		c.Send(next, 1, make([]byte, 100*(c.Rank()+1)))
		c.Recv(prev, 1)
		// Nonblocking: Isend + Irecv completed by Wait.
		r := c.Irecv(prev, 2)
		c.Isend(next, 2, make([]byte, 64)).Wait()
		r.Wait()
		// Nonblocking: Irecv completed by Test polling.
		r = c.Irecv(prev, 3)
		c.Isend(next, 3, make([]byte, 32)).Wait()
		for {
			if _, _, ok := r.Test(); ok {
				break
			}
			time.Sleep(time.Millisecond)
		}
		c.CommRank().SetPhase("collectives")
		Bcast(c, 0, make([]byte, 256))
		AllreduceSumInt64(c, int64(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := tracker.Finalize()
	if m.NumRanks != 4 {
		t.Fatalf("NumRanks = %d, want 4", m.NumRanks)
	}
	// Conservation: a clean run delivers everything it sends.
	if lost := m.Unaccounted(); len(lost) != 0 {
		t.Fatalf("clean run has unaccounted traffic: %+v", lost)
	}
	var p2pLinks, collLinks int
	for i := range m.Links {
		l := &m.Links[i]
		switch l.Phase {
		case "p2p":
			p2pLinks++
		case "collectives":
			collLinks++
		default:
			t.Fatalf("link with unattributed phase: %+v", l)
		}
		if l.Msgs == 0 || l.Bytes == 0 {
			t.Fatalf("empty link: %+v", l)
		}
		if l.QueueNS < 0 || l.TransferNS < 0 || l.MaxQueueNS < l.QueueNS/l.Msgs {
			t.Fatalf("latency fields inconsistent: %+v", l)
		}
	}
	// Ring p2p: each rank sends 3 messages to its successor → 4 links.
	if p2pLinks != 4 {
		t.Fatalf("p2p links = %d, want 4 (ring)", p2pLinks)
	}
	// Collective legs route through p2p under the hood: Bcast from 0 plus
	// the Reduce-to-0/Bcast-from-0 of Allreduce must put 0→r and r→0 links
	// in the matrix.
	if collLinks == 0 {
		t.Fatal("collective legs missing from the matrix")
	}
	var zeroOut int
	for i := range m.Links {
		l := &m.Links[i]
		if l.Phase == "collectives" && l.Src == 0 {
			zeroOut++
		}
	}
	if zeroOut != 3 {
		t.Fatalf("root fan-out links = %d, want 3", zeroOut)
	}
	// Samples exist for the fitter.
	if len(m.AllSamples()) == 0 {
		t.Fatal("no regression samples recorded")
	}
}

// TestCommAccountingDisabledIsInvisible runs the same traffic without a
// tracker: nothing panics, and messages carry no stamps (the zero matrix).
func TestCommAccountingDisabledIsInvisible(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.CommRank() != nil {
			t.Error("CommRank must be nil when comm accounting is off")
		}
		if c.FlightRank() != nil {
			t.Error("FlightRank must be nil when the flight recorder is off")
		}
		peer := 1 - c.Rank()
		c.Send(peer, 1, []byte("x"))
		c.Recv(peer, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
