//go:build unix

package mpi

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// installQuitHandler arms a SIGQUIT listener for the duration of a run with
// the flight recorder on: `kill -QUIT <pid>` writes the post-mortem report
// (per-rank flight rings, board snapshot, metrics, pending nonblocking
// requests, full goroutine dump) without killing the job — an on-demand
// snapshot of a live run. It goes through the same once-guarded flightDump
// path as the deadlock watchdog and rank panics, so whichever trigger fires
// first owns the report.
//
// The returned func disarms the listener and restores SIGQUIT's default
// behavior (goroutine dump + exit).
func (w *World) installQuitHandler() func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				fmt.Fprintf(os.Stderr, "mpi: SIGQUIT%s\n", w.flightDump("SIGQUIT"))
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
