package mpi

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracedRunValidates drives every collective with tracing and metrics
// enabled and checks the merged event stream passes structural validation.
func TestTracedRunValidates(t *testing.T) {
	tracer := obs.NewTracer()
	reg := obs.NewRegistry()
	err := RunWith(4, RunOptions{Trace: tracer, Metrics: reg}, func(c *Comm) error {
		c.Barrier()
		v := Bcast(c, 0, c.Rank()*10)
		if v != 0 {
			t.Errorf("rank %d: Bcast = %d, want 0", c.Rank(), v)
		}
		send := make([][]byte, c.Size())
		for r := range send {
			send[r] = []byte{byte(c.Rank()), byte(r)}
		}
		Alltoall(c, send)
		if c.Rank() == 1 {
			c.Send(2, 7, []byte("hello"))
		}
		if c.Rank() == 2 {
			c.Recv(1, 7)
		}
		AllreduceSumInt64(c, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tracer.Events()
	if err := obs.Validate(events); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	// Every rank must have produced events, and the Chrome export must
	// survive a round trip.
	ranks := map[int]bool{}
	for _, ev := range events {
		ranks[ev.Rank] = true
	}
	if len(ranks) != 4 {
		t.Fatalf("events from %d ranks, want 4", len(ranks))
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Validate(back); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}

	s := reg.Snapshot()
	byName := map[string]int64{}
	for _, c := range s.Counters {
		byName[c.Name] = c.Value
	}
	if byName["mpi.sends"] == 0 || byName["mpi.recvs"] == 0 || byName["mpi.collectives"] == 0 {
		t.Fatalf("metrics not populated: %+v", byName)
	}
	if byName["mpi.send.bytes"] == 0 {
		t.Fatalf("send bytes not counted: %+v", byName)
	}
}

// TestTimeoutNamesInFlightSpans provokes the deadlock watchdog with tracing
// enabled: the timeout error must carry each rank's in-flight span, naming
// what every rank was blocked inside.
func TestTimeoutNamesInFlightSpans(t *testing.T) {
	tracer := obs.NewTracer()
	err := RunWith(2, RunOptions{Timeout: 50 * time.Millisecond, Trace: tracer}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 99) // mpilint:ignore unmatched,globaldeadlock -- never sent: the watchdog must fire
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "in-flight spans:") {
		t.Fatalf("timeout error lacks in-flight span report:\n%s", msg)
	}
	if !strings.Contains(msg, "mpi:Recv") {
		t.Fatalf("timeout error does not name the blocked Recv:\n%s", msg)
	}
	if !strings.Contains(msg, "rank 1: idle") {
		t.Fatalf("timeout error does not show the idle peer:\n%s", msg)
	}
}

// TestDeadlockBothRanksNamed deadlocks both ranks of a traced 2-rank run
// (each waits for a tag the other never sends) with the status board and the
// flight recorder on: the watchdog diagnostic must name each rank's
// in-flight span, carry the board's per-rank status lines (with heartbeat
// ages), name the flight-recorder dump file, and the dump itself must be
// byte-parseable and carry the deadlock's evidence.
func TestDeadlockBothRanksNamed(t *testing.T) {
	tracer := obs.NewTracer()
	board := obs.NewBoard()
	flight := obs.NewFlightRecorder(64)
	dumpPath := filepath.Join(t.TempDir(), "flight-dump.json")
	err := RunWith(2, RunOptions{
		Timeout: 50 * time.Millisecond, Trace: tracer, Board: board,
		Flight: flight, FlightPath: dumpPath,
	}, func(c *Comm) error {
		c.Board().SetPhase("map")
		// Mismatched tags: rank 0 waits for tag 1, rank 1 for tag 2, and
		// each sends the tag the other is not waiting on — a classic
		// crossed-wires deadlock.
		peer := 1 - c.Rank()
		c.Send(peer, 10+c.Rank(), []byte("x"))
		c.Recv(peer, 99+c.Rank()) // mpilint:ignore globaldeadlock -- the crossed-wires deadlock is the point of the test
		return nil
	})
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "in-flight spans:") {
		t.Fatalf("timeout error lacks in-flight span report:\n%s", msg)
	}
	for _, want := range []string{"rank 0: in mpi:Recv", "rank 1: in mpi:Recv"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("timeout error missing %q:\n%s", want, msg)
		}
	}
	if !strings.Contains(msg, "status board:") {
		t.Fatalf("timeout error lacks the status board snapshot:\n%s", msg)
	}
	if !strings.Contains(msg, "phase=map") {
		t.Fatalf("status board snapshot missing the phase:\n%s", msg)
	}
	if !strings.Contains(msg, "beat=") {
		t.Fatalf("status board snapshot missing the heartbeat age:\n%s", msg)
	}
	if !strings.Contains(msg, "flight recorder dump: "+dumpPath) {
		t.Fatalf("timeout error does not name the flight dump:\n%s", msg)
	}

	// The dump file is the post-mortem contract: parse it back and check it
	// holds the recent events, the board, and the dead Recvs' evidence.
	f, ferr := os.Open(dumpPath)
	if ferr != nil {
		t.Fatalf("flight dump not written: %v", ferr)
	}
	defer f.Close()
	dump, derr := obs.ReadFlightDump(f)
	if derr != nil {
		t.Fatalf("flight dump not parseable: %v", derr)
	}
	if !strings.Contains(dump.Reason, "timed out") {
		t.Fatalf("dump reason = %q", dump.Reason)
	}
	if len(dump.Ranks) != 2 {
		t.Fatalf("dump has %d ranks, want 2", len(dump.Ranks))
	}
	if !strings.Contains(dump.Goroutines, "goroutine") {
		t.Fatal("dump lacks the goroutine stack dump")
	}
	for _, r := range dump.Ranks {
		var sawSend bool
		for _, ev := range r.Recent {
			if ev.Kind == "send" {
				sawSend = true
			}
		}
		if !sawSend {
			t.Fatalf("rank %d ring lacks its crossed send: %+v", r.Rank, r.Recent)
		}
	}
	if len(dump.Board) != 2 || dump.Board[0].Phase != "map" {
		t.Fatalf("dump board: %+v", dump.Board)
	}
}

// TestFlightDumpOnPanic checks the other dump trigger: a rank panicking in
// user code must leave the same post-mortem file, with the panic as reason.
func TestFlightDumpOnPanic(t *testing.T) {
	flight := obs.NewFlightRecorder(16)
	dumpPath := filepath.Join(t.TempDir(), "panic-dump.json")
	err := RunWith(2, RunOptions{Flight: flight, FlightPath: dumpPath}, func(c *Comm) error {
		if c.Rank() == 1 {
			c.Send(0, 3, []byte("last words"))
			panic("engine exploded")
		}
		c.Recv(1, 3)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "engine exploded") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "flight recorder dump: "+dumpPath) {
		t.Fatalf("panic error does not name the dump:\n%v", err)
	}
	f, ferr := os.Open(dumpPath)
	if ferr != nil {
		t.Fatalf("flight dump not written: %v", ferr)
	}
	defer f.Close()
	dump, derr := obs.ReadFlightDump(f)
	if derr != nil {
		t.Fatalf("flight dump not parseable: %v", derr)
	}
	if !strings.Contains(dump.Reason, "engine exploded") {
		t.Fatalf("dump reason = %q", dump.Reason)
	}
}

// TestFlightDumpListsPendingRequests wedges a rank with an outstanding
// Irecv that never matches: the dump's pending-request ledger must name it.
func TestFlightDumpListsPendingRequests(t *testing.T) {
	flight := obs.NewFlightRecorder(16)
	dumpPath := filepath.Join(t.TempDir(), "pending-dump.json")
	err := RunWith(2, RunOptions{Timeout: 50 * time.Millisecond, Flight: flight, FlightPath: dumpPath}, func(c *Comm) error {
		if c.Rank() == 0 {
			r := c.Irecv(1, 42)
			r.Wait() // mpilint:ignore unmatched,globaldeadlock -- never sent: the dump must list the pending Irecv
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	f, ferr := os.Open(dumpPath)
	if ferr != nil {
		t.Fatalf("flight dump not written: %v", ferr)
	}
	defer f.Close()
	dump, derr := obs.ReadFlightDump(f)
	if derr != nil {
		t.Fatalf("flight dump not parseable: %v", derr)
	}
	found := false
	for _, p := range dump.PendingRequests {
		if strings.Contains(p, "rank 0") && strings.Contains(p, "Irecv src=1 tag=42") {
			found = true
		}
	}
	if !found {
		t.Fatalf("pending ledger missing the wedged Irecv: %+v", dump.PendingRequests)
	}
}
