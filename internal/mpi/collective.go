package mpi

import (
	"fmt"

	"repro/internal/obs"
)

// Internal tags for collective traffic. User tags are non-negative, so these
// can never collide with point-to-point messages. Successive collectives of
// the same kind are kept straight by MPI's non-overtaking guarantee on each
// (source, tag) pair.
const (
	tagBcast = -2 - iota
	tagReduce
	tagGather
	tagScatter
	tagAlltoall
	tagAllgather
)

// traceCollective counts one collective entry and opens its trace span on
// this rank. The zero Span returned when tracing is off is a no-op to End.
// The flight recorder notes the entry so a post-mortem shows which
// collective each rank last reached.
func (c *Comm) traceCollective(op string) obs.Span {
	c.world.mCollectives.Inc()
	if fr := c.FlightRank(); fr != nil {
		fr.Note("collective", op)
	}
	if tr := c.Tracer(); tr != nil {
		return tr.Begin("mpi", op)
	}
	return obs.Span{}
}

// Barrier blocks until every rank in the world has entered it. Barrier is
// the one collective with no p2p legs (it synchronizes on a shared
// generation counter), so it contributes no comm-matrix traffic.
func (c *Comm) Barrier() {
	c.debugCollective("Barrier")
	sp := c.traceCollective("Barrier")
	defer sp.End()
	c.world.barrier.wait(c.world.timeout, func() string {
		return c.debugStatus() + c.world.traceStatus() + c.world.boardStatus() +
			c.world.flightDump(fmt.Sprintf("rank %d barrier timed out (likely deadlock)", c.rank))
	})
}

// Bcast broadcasts v from root to all ranks: every rank returns root's
// value. Reference values (slices, maps, pointers) are shared between ranks
// after Bcast; receivers must treat them as read-only or copy. Use
// BcastFloat64s for a copying broadcast of numeric buffers.
func Bcast[T any](c *Comm, root int, v T) T {
	c.debugCollective("Bcast")
	sp := c.traceCollective("Bcast")
	defer sp.End()
	c.checkRoot(root)
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.send(r, tagBcast, v)
			}
		}
		return v
	}
	data, _ := c.recv(root, tagBcast)
	return data.(T)
}

// BcastFloat64s broadcasts a float64 buffer from root, giving each non-root
// rank its own copy. Root's own slice is returned unchanged at root.
func BcastFloat64s(c *Comm, root int, v []float64) []float64 {
	c.debugCollective("BcastFloat64s")
	sp := c.traceCollective("BcastFloat64s")
	defer sp.End()
	c.checkRoot(root)
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				cp := make([]float64, len(v))
				copy(cp, v)
				c.send(r, tagBcast, cp)
			}
		}
		return v
	}
	data, _ := c.recv(root, tagBcast)
	return data.([]float64)
}

// Reduce combines one value from every rank at root using combine, folding
// in rank order (combine(combine(v0, v1), v2)...), which makes the result
// deterministic. Root receives (result, true); other ranks get (zero,
// false).
func Reduce[T any](c *Comm, root int, v T, combine func(a, b T) T) (T, bool) {
	c.debugCollective("Reduce")
	sp := c.traceCollective("Reduce")
	defer sp.End()
	c.checkRoot(root)
	if c.rank != root {
		c.send(root, tagReduce, v)
		var zero T
		return zero, false
	}
	// Gather values in rank order, then fold.
	vals := make([]T, c.Size())
	vals[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		data, _ := c.recv(r, tagReduce)
		vals[r] = data.(T)
	}
	acc := vals[0]
	for r := 1; r < c.Size(); r++ {
		acc = combine(acc, vals[r])
	}
	return acc, true
}

// Allreduce is Reduce followed by a broadcast of the result; every rank
// returns the combined value.
func Allreduce[T any](c *Comm, v T, combine func(a, b T) T) T {
	res, _ := Reduce(c, 0, v, combine)
	return Bcast(c, 0, res)
}

// ReduceSumFloat64s element-wise sums one float64 buffer per rank at root.
// All buffers must have equal length. Root receives the sum in a newly
// allocated slice; other ranks receive nil. This is the MPI_Reduce(…,
// MPI_SUM) call the paper's batch SOM uses to combine codebook updates.
func ReduceSumFloat64s(c *Comm, root int, v []float64) []float64 {
	c.debugCollective("ReduceSumFloat64s")
	sp := c.traceCollective("ReduceSumFloat64s")
	defer sp.End()
	c.checkRoot(root)
	if c.rank != root {
		c.send(root, tagReduce, v)
		return nil
	}
	sum := make([]float64, len(v))
	copy(sum, v)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		data, _ := c.recv(r, tagReduce)
		other := data.([]float64)
		if len(other) != len(sum) {
			panic(fmt.Sprintf("mpi: ReduceSumFloat64s length mismatch: rank %d sent %d, want %d",
				r, len(other), len(sum)))
		}
		for i, x := range other {
			sum[i] += x
		}
	}
	return sum
}

// AllreduceSumFloat64s element-wise sums buffers across ranks; every rank
// returns its own copy of the sum.
func AllreduceSumFloat64s(c *Comm, v []float64) []float64 {
	sum := ReduceSumFloat64s(c, 0, v)
	return BcastFloat64s(c, 0, sum)
}

// ReduceSumInt64 sums an int64 across ranks at root; other ranks get 0.
func ReduceSumInt64(c *Comm, root int, v int64) int64 {
	c.checkRoot(root)
	res, ok := Reduce(c, root, v, func(a, b int64) int64 { return a + b })
	if !ok {
		return 0
	}
	return res
}

// AllreduceSumInt64 sums an int64 across ranks; every rank gets the sum.
func AllreduceSumInt64(c *Comm, v int64) int64 {
	return Allreduce(c, v, func(a, b int64) int64 { return a + b })
}

// AllreduceMaxFloat64 takes the max of one float64 per rank.
func AllreduceMaxFloat64(c *Comm, v float64) float64 {
	return Allreduce(c, v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// Gather collects one value from every rank at root, indexed by rank. Root
// receives the full slice; other ranks receive nil.
func Gather[T any](c *Comm, root int, v T) []T {
	c.debugCollective("Gather")
	sp := c.traceCollective("Gather")
	defer sp.End()
	c.checkRoot(root)
	if c.rank != root {
		c.send(root, tagGather, v)
		return nil
	}
	out := make([]T, c.Size())
	out[root] = v
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		data, _ := c.recv(r, tagGather)
		out[r] = data.(T)
	}
	return out
}

// Allgather collects one value from every rank at every rank.
func Allgather[T any](c *Comm, v T) []T {
	out := Gather(c, 0, v)
	return Bcast(c, 0, out)
}

// Scatter distributes vals[r] from root to rank r; every rank returns its
// element. Only root's vals is consulted; it must have length Size.
func Scatter[T any](c *Comm, root int, vals []T) T {
	c.debugCollective("Scatter")
	sp := c.traceCollective("Scatter")
	defer sp.End()
	c.checkRoot(root)
	if c.rank == root {
		if len(vals) != c.Size() {
			panic(fmt.Sprintf("mpi: Scatter needs %d values, got %d", c.Size(), len(vals)))
		}
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.send(r, tagScatter, vals[r])
			}
		}
		return vals[root]
	}
	data, _ := c.recv(root, tagScatter)
	return data.(T)
}

// Alltoall sends send[r] to rank r from every rank and returns recv where
// recv[r] is the value this rank received from rank r. send must have length
// Size. This is the exchange primitive under MapReduce-MPI's aggregate step.
func Alltoall[T any](c *Comm, send []T) []T {
	c.debugCollective("Alltoall")
	sp := c.traceCollective("Alltoall")
	defer sp.End()
	if len(send) != c.Size() {
		panic(fmt.Sprintf("mpi: Alltoall needs %d values, got %d", c.Size(), len(send)))
	}
	recv := make([]T, c.Size())
	recv[c.rank] = send[c.rank]
	for r := 0; r < c.Size(); r++ {
		if r != c.rank {
			c.send(r, tagAlltoall, send[r])
		}
	}
	// Receive exactly one message from each peer. Matching per-source keeps
	// consecutive Alltoall rounds separated via the FIFO non-overtaking
	// guarantee on each (source, tag) pair.
	for r := 0; r < c.Size(); r++ {
		if r != c.rank {
			data, _ := c.recv(r, tagAlltoall)
			recv[r] = data.(T)
		}
	}
	return recv
}

func (c *Comm) checkRoot(root int) {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: invalid root %d (size %d)", root, c.Size()))
	}
}
