//go:build unix

package mpi

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSIGQUITDumpsFlightWithoutKillingRun sends the process SIGQUIT in the
// middle of a flight-armed run: the handler must write the post-mortem
// (reason, board, goroutine dump) while the run continues to a normal,
// error-free finish.
func TestSIGQUITDumpsFlightWithoutKillingRun(t *testing.T) {
	flight := obs.NewFlightRecorder(64)
	board := obs.NewBoard()
	dumpPath := filepath.Join(t.TempDir(), "quit-dump.json")
	release := make(chan struct{})
	var dump *obs.FlightDump
	err := RunWith(2, RunOptions{
		Board: board, Flight: flight, FlightPath: dumpPath,
	}, func(c *Comm) error {
		c.Board().SetPhase("work")
		if c.Rank() == 0 {
			if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
				return err
			}
			// Wait until the handler's dump is complete on disk (parseable,
			// not merely created) before letting the world finish.
			deadline := time.Now().Add(10 * time.Second)
			for dump == nil {
				if f, ferr := os.Open(dumpPath); ferr == nil {
					d, derr := obs.ReadFlightDump(f)
					f.Close()
					if derr == nil {
						dump = d
					}
				}
				if dump == nil {
					if time.Now().After(deadline) {
						return fmt.Errorf("SIGQUIT dump never appeared at %s", dumpPath)
					}
					time.Sleep(5 * time.Millisecond)
				}
			}
			close(release)
		} else {
			<-release
		}
		c.Barrier() // mpilint:ignore mismatch -- rank 0's early error returns fire only when SIGQUIT delivery fails; on the tested path both ranks reach the barrier
		return nil
	})
	if err != nil {
		t.Fatalf("run died after SIGQUIT: %v", err)
	}
	if dump.Reason != "SIGQUIT" {
		t.Errorf("dump reason = %q, want SIGQUIT", dump.Reason)
	}
	if len(dump.Board) != 2 {
		t.Errorf("dump board has %d ranks, want 2", len(dump.Board))
	}
	if !strings.Contains(dump.Goroutines, "goroutine") {
		t.Errorf("dump lacks a goroutine stack dump: %q", truncate(dump.Goroutines, 80))
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
