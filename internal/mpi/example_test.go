package mpi_test

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mpi"
)

// Run an SPMD program on 4 in-process ranks: each rank contributes its rank
// number, and an Allreduce gives every rank the sum.
func ExampleRun() {
	var mu sync.Mutex
	var sums []int64
	err := mpi.Run(4, func(c *mpi.Comm) error {
		sum := mpi.AllreduceSumInt64(c, int64(c.Rank()))
		mu.Lock()
		sums = append(sums, sum)
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i] < sums[j] })
	fmt.Println(sums)
	// Output: [6 6 6 6]
}

// Point-to-point messaging with tags, as the master-worker protocols use.
func ExampleComm_Send() {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 42, "work unit 7")
			return nil
		}
		data, st := c.Recv(0, 42)
		fmt.Printf("rank 1 got %q from rank %d\n", data, st.Source)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 1 got "work unit 7" from rank 0
}
