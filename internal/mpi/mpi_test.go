package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSingleRank(t *testing.T) {
	ran := false
	err := Run(1, func(c *Comm) error {
		if c.Rank() != 0 || c.Size() != 1 {
			t.Errorf("rank/size wrong: %d/%d", c.Rank(), c.Size())
		}
		ran = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestRunRejectsZeroRanks(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("expected error")
	}
}

func TestRanksDistinct(t *testing.T) {
	var seen [8]int32
	err := Run(8, func(c *Comm) error {
		atomic.AddInt32(&seen[c.Rank()], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Errorf("rank %d ran %d times", r, n)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, "hello")
			return nil
		}
		data, st := c.Recv(0, 7)
		if data.(string) != "hello" || st.Source != 0 || st.Tag != 7 {
			return fmt.Errorf("got %v %+v", data, st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, c.Rank(), c.Rank()*10)
			return nil
		}
		got := map[int]int{}
		for i := 0; i < 2; i++ {
			data, st := c.Recv(AnySource, AnyTag)
			got[st.Source] = data.(int)
		}
		if got[1] != 10 || got[2] != 20 {
			return fmt.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagSelectivity(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first-tag1")
			c.Send(1, 2, "first-tag2")
			c.Send(1, 1, "second-tag1")
			return nil
		}
		// Receive tag 2 first even though tag-1 messages arrived earlier.
		data, _ := c.Recv(0, 2)
		if data.(string) != "first-tag2" {
			return fmt.Errorf("tag 2: got %v", data)
		}
		// Non-overtaking within (src, tag).
		a, _ := c.Recv(0, 1)
		b, _ := c.Recv(0, 1)
		if a.(string) != "first-tag1" || b.(string) != "second-tag1" {
			return fmt.Errorf("fifo violated: %v, %v", a, b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendNegativeTagPanics(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on negative tag")
				}
			}()
			c.Send(1, -1, "x") // mpilint:ignore tags,unmatched -- provokes the negative-tag panic on purpose
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, 99)
			return nil
		}
		// Poll until the message lands.
		for {
			if ok, st := c.Probe(0, 5); ok {
				if st.Source != 0 || st.Tag != 5 {
					return fmt.Errorf("probe status %+v", st)
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
		data, _ := c.Recv(0, 5)
		if data.(int) != 99 {
			return fmt.Errorf("got %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	var phase atomic.Int32
	err := Run(n, func(c *Comm) error {
		// Everyone increments, barrier, then all must observe the full count.
		phase.Add(1)
		c.Barrier()
		if got := phase.Load(); got != n {
			return fmt.Errorf("rank %d saw phase %d before barrier release", c.Rank(), got)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	var counter atomic.Int32
	err := Run(4, func(c *Comm) error {
		for i := 0; i < 50; i++ {
			c.Barrier()
			v := counter.Add(1)
			c.Barrier()
			want := int32((i + 1) * 4)
			if i == 49 && c.Rank() == 0 && v > want {
				return fmt.Errorf("barrier generation leak: %d > %d", v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		v := ""
		if c.Rank() == 2 {
			v = "payload"
		}
		got := Bcast(c, 2, v)
		if got != "payload" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFloat64sCopies(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		var v []float64
		if c.Rank() == 0 {
			v = []float64{1, 2, 3}
		}
		got := BcastFloat64s(c, 0, v)
		if len(got) != 3 || got[1] != 2 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		// Mutate the local copy; other ranks must not observe it.
		got[0] = float64(100 + c.Rank())
		c.Barrier()
		if c.Rank() == 0 && got[0] != 100 {
			return fmt.Errorf("root copy clobbered: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceDeterministicOrder(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		// String concatenation is order-sensitive, so this checks rank order.
		v := fmt.Sprintf("%d", c.Rank())
		got, ok := Reduce(c, 0, v, func(a, b string) string { return a + b })
		if c.Rank() == 0 {
			if !ok || got != "012345" {
				return fmt.Errorf("got %q ok=%v", got, ok)
			}
		} else if ok {
			return fmt.Errorf("non-root got ok=true")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumFloat64s(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		v := []float64{float64(c.Rank()), 1}
		sum := ReduceSumFloat64s(c, 0, v)
		if c.Rank() == 0 {
			if sum[0] != 0+1+2+3 || sum[1] != n {
				return fmt.Errorf("sum = %v", sum)
			}
		} else if sum != nil {
			return fmt.Errorf("non-root sum = %v", sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSumFloat64sLengthMismatch(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		v := make([]float64, 2+c.Rank())
		ReduceSumFloat64s(c, 0, v)
		return nil
	})
	if err == nil {
		t.Fatal("expected length-mismatch failure")
	}
}

func TestAllreduce(t *testing.T) {
	err := Run(7, func(c *Comm) error {
		sum := AllreduceSumInt64(c, int64(c.Rank()))
		if sum != 21 {
			return fmt.Errorf("rank %d sum %d", c.Rank(), sum)
		}
		mx := AllreduceMaxFloat64(c, float64(c.Rank()))
		if mx != 6 {
			return fmt.Errorf("rank %d max %f", c.Rank(), mx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumFloat64s(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		v := []float64{1, float64(c.Rank())}
		sum := AllreduceSumFloat64s(c, v)
		if sum[0] != 3 || sum[1] != 3 {
			return fmt.Errorf("rank %d got %v", c.Rank(), sum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		all := Gather(c, 1, c.Rank()*2)
		if c.Rank() == 1 {
			for r, v := range all {
				if v != r*2 {
					return fmt.Errorf("gather[%d] = %d", r, v)
				}
			}
		} else if all != nil {
			return fmt.Errorf("non-root gather = %v", all)
		}
		var vals []string
		if c.Rank() == 0 {
			vals = []string{"a", "b", "c", "d"}
		}
		got := Scatter(c, 0, vals)
		want := string(rune('a' + c.Rank()))
		if got != want {
			return fmt.Errorf("scatter: rank %d got %q want %q", c.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		all := Allgather(c, c.Rank()+100)
		for r, v := range all {
			if v != r+100 {
				return fmt.Errorf("rank %d: allgather[%d] = %d", c.Rank(), r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	const n = 6
	err := Run(n, func(c *Comm) error {
		send := make([]int, n)
		for r := range send {
			send[r] = c.Rank()*100 + r
		}
		recv := Alltoall(c, send)
		for r, v := range recv {
			if want := r*100 + c.Rank(); v != want {
				return fmt.Errorf("rank %d recv[%d] = %d want %d", c.Rank(), r, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallBackToBack(t *testing.T) {
	// Consecutive rounds must not bleed into each other even when ranks race
	// ahead: round markers verify per-round isolation.
	const n = 4
	err := Run(n, func(c *Comm) error {
		for round := 0; round < 20; round++ {
			send := make([][2]int, n)
			for r := range send {
				send[r] = [2]int{round, c.Rank()}
			}
			recv := Alltoall(c, send)
			for r, v := range recv {
				if v[0] != round || v[1] != r {
					return fmt.Errorf("rank %d round %d: recv[%d] = %v", c.Rank(), round, r, v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesInterleaved(t *testing.T) {
	// Stress mixed collectives with per-rank jitter to shake out tag
	// cross-matching between collective kinds.
	err := Run(5, func(c *Comm) error {
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		for i := 0; i < 30; i++ {
			time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
			b := Bcast(c, i%5, i*7) // mpilint:ignore root -- root i%5 is in range: the world has exactly 5 ranks
			if b != i*7 {
				return fmt.Errorf("bcast round %d: got %d", i, b)
			}
			s := AllreduceSumInt64(c, int64(i))
			if s != int64(i*5) {
				return fmt.Errorf("allreduce round %d: got %d", i, s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorPropagation(t *testing.T) {
	sentinel := errors.New("rank 2 exploded")
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		// Other ranks block; the abort must wake them.
		c.Recv(2, 0) // mpilint:ignore unmatched,globaldeadlock -- rank 2 errors out instead of sending: exercises abort wake-up
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("root cause lost: %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		c.Barrier() // mpilint:ignore mismatch,globaldeadlock -- rank 1 panics on purpose; the runtime must convert it
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted: %v", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	start := time.Now()
	err := RunWith(1, RunOptions{Timeout: 50 * time.Millisecond}, func(c *Comm) error {
		c.Recv(0, 1) // never sent
		return nil
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("unexpected error: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("timeout took too long")
	}
}

func TestBarrierTimeout(t *testing.T) {
	err := RunWith(2, RunOptions{Timeout: 50 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Barrier() // mpilint:ignore divergence,mismatch,globaldeadlock -- rank 1 never joins: deliberate divergence to exercise the timeout
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("expected barrier timeout, got %v", err)
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		c.Send(5, 0, "x")
		return nil
	})
	if err == nil {
		t.Fatal("expected error from invalid destination")
	}
}

func TestManyRanksRing(t *testing.T) {
	// Token passed around a ring accumulates every rank exactly once.
	const n = 16
	err := Run(n, func(c *Comm) error {
		next := (c.Rank() + 1) % n
		if c.Rank() == 0 {
			c.Send(next, 0, int64(0))
			data, _ := c.Recv(n-1, 0)
			if got := data.(int64); got != n*(n-1)/2 {
				return fmt.Errorf("ring sum = %d", got)
			}
			return nil
		}
		data, _ := c.Recv(c.Rank()-1, 0)
		c.Send(next, 0, data.(int64)+int64(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	// Pairwise exchange that would deadlock with blocking sends in a
	// rendezvous MPI; our Sendrecv must complete.
	err := Run(2, func(c *Comm) error {
		other := 1 - c.Rank()
		data, st := c.Sendrecv(other, 3, c.Rank()*10, other, 3)
		if data.(int) != other*10 || st.Source != other {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), data, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRanksCollectives(t *testing.T) {
	// Stress a larger world than any driver test uses.
	const n = 64
	err := Run(n, func(c *Comm) error {
		sum := AllreduceSumInt64(c, int64(c.Rank()))
		if sum != n*(n-1)/2 {
			return fmt.Errorf("rank %d: sum = %d", c.Rank(), sum)
		}
		all := Allgather(c, c.Rank())
		for r, v := range all {
			if v != r {
				return fmt.Errorf("allgather[%d] = %d", r, v)
			}
		}
		c.Barrier()
		vals := make([][]byte, n)
		for r := range vals {
			vals[r] = []byte{byte(c.Rank()), byte(r)}
		}
		recv := Alltoall(c, vals)
		for r, v := range recv {
			if v[0] != byte(r) || v[1] != byte(c.Rank()) {
				return fmt.Errorf("alltoall from %d wrong: %v", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
