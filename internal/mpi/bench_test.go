package mpi

import (
	"testing"

	"repro/internal/obs"
)

// The provenance piggyback rides inside sendOp on every p2p message and
// collective leg; when tracing and comm accounting are both off it must
// collapse to a pair of nil checks so the uninstrumented Send path pays
// nothing measurable. The CI gate (TestDisabledPathOverhead) holds it under
// 5ns per send, same budget as the obs and comm disabled paths.

var sinkMessage message

func BenchmarkDisabledPiggyback(b *testing.B) {
	w := newWorld(2, 0, RunOptions{})
	c := &Comm{rank: 0, world: w}
	m := message{src: 0, tag: 1}
	for i := 0; i < b.N; i++ {
		c.stampProvenance(&m, 1)
	}
	sinkMessage = m
}

func BenchmarkEnabledPiggyback(b *testing.B) {
	w := newWorld(2, 0, RunOptions{Trace: obs.NewTracer()})
	c := &Comm{rank: 0, world: w}
	m := message{src: 0, tag: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.stampProvenance(&m, 1)
	}
	sinkMessage = m
}

// TestDisabledPathOverhead pins the piggyback's disabled path at <=5ns per
// send. Skipped under the race detector, whose instrumentation skews
// absolute nanosecond numbers.
func TestDisabledPathOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews ns/op; the gate runs in the non-race CI step")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkDisabledPiggyback)
	if ns := res.NsPerOp(); ns > 5 {
		t.Errorf("disabled provenance stamp costs %dns/op, want <= 5ns/op", ns)
	}
}
