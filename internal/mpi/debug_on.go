//go:build mpidebug

package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file is the live half of the runtime invariant checker, enabled with
// `-tags mpidebug`. It enforces the SPMD discipline that internal/lint
// checks statically, but at runtime and therefore exactly:
//
//   - Collective fingerprints. Every collective entry records an
//     (op, sequence-number, call-site) fingerprint per rank into a shared
//     ledger. The first rank to reach sequence number s defines the
//     expected op; any rank arriving at s with a different op panics
//     immediately with a diagnostic naming both ranks, both ops, and both
//     call sites — converting a silent deadlock (or a worse silent
//     cross-match) into an actionable error the moment the divergence
//     happens.
//   - Timeout context. When a Recv times out, debugStatus appends each
//     rank's fingerprint (how many collectives it completed and which one
//     it entered last), naming the laggard rank in a deadlock.
//   - Drained mailboxes. A world that finishes cleanly must not leave
//     unreceived messages behind; leftovers are reported with source,
//     destination, and tag.
//   - Retired requests. Every nonblocking Request (Isend/Irecv) must be
//     completed with Wait or a successful Test before the world exits;
//     leaked requests are reported with their opening op and call site.
type debugState struct {
	mu    sync.Mutex
	seq   []int       // per-rank count of collectives entered
	last  []debugStep // per-rank most recent collective
	steps []debugStep // ledger: steps[s] is the expected op at sequence s
	reqs  map[*Request]string // outstanding nonblocking requests -> "op at site"
}

// debugStep is one collective fingerprint.
type debugStep struct {
	op   string
	site string
	rank int
}

func newDebugState(n int) *debugState {
	return &debugState{
		seq:  make([]int, n),
		last: make([]debugStep, n),
		reqs: map[*Request]string{},
	}
}

// debugRequestOpen fingerprints a freshly posted nonblocking request: op
// ("Isend" or "Irecv") plus the user-level call site, held in the ledger
// until the request is retired by Wait or a successful Test.
func (c *Comm) debugRequestOpen(r *Request, op string) {
	d := c.world.debug
	if d == nil {
		return
	}
	desc := fmt.Sprintf("rank %d %s at %s", c.rank, op, debugCallsite())
	d.mu.Lock()
	d.reqs[r] = desc
	d.mu.Unlock()
}

// debugRequestDone retires a request's fingerprint; idempotent, so cached
// re-Waits are free to call it again.
func (c *Comm) debugRequestDone(r *Request) {
	d := c.world.debug
	if d == nil {
		return
	}
	d.mu.Lock()
	delete(d.reqs, r)
	d.mu.Unlock()
}

// debugCollective checks this rank's next collective against the ledger.
// Invariant: a rank that has entered s collectives can never be ahead of the
// ledger by more than one step, because its previous call either appended
// step s-1 or matched an existing entry — so s <= len(steps) always holds
// and the append below keeps the ledger dense.
func (c *Comm) debugCollective(op string) {
	d := c.world.debug
	if d == nil {
		return
	}
	site := debugCallsite()
	step := debugStep{op: op, site: site, rank: c.rank}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.seq[c.rank]
	d.seq[c.rank]++
	d.last[c.rank] = step
	if s < len(d.steps) {
		ref := d.steps[s]
		if ref.op != op {
			panic(fmt.Errorf("mpi(debug): collective mismatch at step %d: rank %d calls %s at %s, but rank %d called %s at %s: %w",
				s, c.rank, op, site, ref.rank, ref.op, ref.site, ErrAborted))
		}
		return
	}
	d.steps = append(d.steps, step)
}

// debugStatus renders the per-rank collective fingerprints for timeout
// diagnostics.
func (c *Comm) debugStatus() string {
	d := c.world.debug
	if d == nil {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	b.WriteString("\ncollective fingerprints:")
	for rank, n := range d.seq {
		fmt.Fprintf(&b, "\n  rank %d: %d collectives entered", rank, n)
		if n > 0 {
			fmt.Fprintf(&b, ", last %s at %s", d.last[rank].op, d.last[rank].site)
		}
	}
	return b.String()
}

// debugCheckDrained reports messages still queued in any mailbox after a
// clean world shutdown — each one is a Send whose matching Recv never ran —
// and nonblocking Requests that were posted but never completed with Wait
// or Test.
func debugCheckDrained(w *World) error {
	var errs []error
	for rank, b := range w.boxes {
		b.mu.Lock()
		for _, m := range b.queue {
			errs = append(errs, fmt.Errorf(
				"mpi(debug): message from rank %d to rank %d with tag %d was never received",
				m.src, rank, m.tag))
		}
		b.mu.Unlock()
	}
	if d := w.debug; d != nil {
		d.mu.Lock()
		var leaked []string
		for _, desc := range d.reqs {
			leaked = append(leaked, desc)
		}
		d.mu.Unlock()
		sort.Strings(leaked)
		for _, desc := range leaked {
			errs = append(errs, fmt.Errorf(
				"mpi(debug): request opened by %s was never completed with Wait or Test", desc))
		}
	}
	return errors.Join(errs...)
}

// debugCallsite walks up the stack to the first frame outside the mpi
// package (test files of the package itself count as callers), giving the
// user-level call site of the collective being fingerprinted.
func debugCallsite() string {
	pcs := make([]uintptr, 16)
	n := runtime.Callers(3, pcs)
	frames := runtime.CallersFrames(pcs[:n])
	for {
		fr, more := frames.Next()
		if fr.File != "" &&
			(!strings.Contains(fr.File, "internal/mpi") || strings.HasSuffix(fr.File, "_test.go")) {
			return fmt.Sprintf("%s:%d", fr.File, fr.Line)
		}
		if !more {
			return "(unknown)"
		}
	}
}
