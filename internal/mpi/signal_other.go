//go:build !unix

package mpi

// installQuitHandler is a no-op on platforms without SIGQUIT; the flight
// recorder still dumps on deadlock and panic.
func (w *World) installQuitHandler() func() { return func() {} }
