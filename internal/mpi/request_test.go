package mpi

import (
	"fmt"
	"testing"
	"time"
)

func TestIsendIrecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 7, "hello")
			req.Wait()
			return nil
		}
		req := c.Irecv(0, 7)
		data, st := req.Wait()
		if data.(string) != "hello" {
			return fmt.Errorf("payload = %v", data)
		}
		if st.Source != 0 || st.Tag != 7 {
			return fmt.Errorf("status = %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIrecvOutOfOrderCompletion posts two receives for distinct tags and
// completes them in the opposite order from both the posting order and the
// send order: each Wait must deliver the message its own (src, tag) spec
// matches, not whichever arrived first.
func TestIrecvOutOfOrderCompletion(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			a := c.Isend(1, 1, "first")
			b := c.Isend(1, 2, "second")
			Waitall([]*Request{a, b})
			return nil
		}
		r1 := c.Irecv(0, 1)
		r2 := c.Irecv(0, 2)
		// Complete the later-posted request first.
		if data, _ := r2.Wait(); data.(string) != "second" {
			return fmt.Errorf("tag 2 payload = %v", data)
		}
		if data, _ := r1.Wait(); data.(string) != "first" {
			return fmt.Errorf("tag 1 payload = %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Same-(src, tag) requests complete in Wait order, draining the per-pair
// FIFO: the request waited first gets the earliest message regardless of
// posting order.
func TestIrecvSameTagFIFO(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				c.Isend(1, 5, i).Wait()
			}
			return nil
		}
		ra := c.Irecv(0, 5)
		rb := c.Irecv(0, 5)
		rc := c.Irecv(0, 5)
		// Wait in reverse posting order: messages still come out 0, 1, 2.
		for want, r := range []*Request{rc, rb, ra} {
			data, _ := r.Wait()
			if data.(int) != want {
				return fmt.Errorf("wait %d delivered %v", want, data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestTestPolls(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Give rank 1 a window to observe the not-yet-arrived state.
			time.Sleep(10 * time.Millisecond)
			c.Isend(1, 3, []byte("payload")).Wait()
			return nil
		}
		req := c.Irecv(0, 3)
		sawPending := false
		for {
			data, st, ok := req.Test()
			if !ok {
				sawPending = true
				time.Sleep(time.Millisecond)
				continue
			}
			if string(data.([]byte)) != "payload" || st.Source != 0 {
				return fmt.Errorf("Test delivered %v from %d", data, st.Source)
			}
			break
		}
		if !sawPending {
			t.Log("message arrived before the first Test; polling path not observed")
		}
		// Completed requests keep returning the cached result.
		if data, _, ok := req.Test(); !ok || string(data.([]byte)) != "payload" {
			return fmt.Errorf("re-Test lost the cached result: %v %v", data, ok)
		}
		if data, _ := req.Wait(); string(data.([]byte)) != "payload" {
			return fmt.Errorf("re-Wait lost the cached result: %v", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIrecvAnySourceAnyTag(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() != 0 {
			c.Isend(0, 10+c.Rank(), c.Rank()).Wait()
			return nil
		}
		got := map[int]bool{}
		for i := 0; i < 2; i++ {
			data, st := c.Irecv(AnySource, AnyTag).Wait()
			if data.(int) != st.Source || st.Tag != 10+st.Source {
				return fmt.Errorf("mismatched wildcard receive: %v %+v", data, st)
			}
			got[st.Source] = true
		}
		if !got[1] || !got[2] {
			return fmt.Errorf("missing sources: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallMixedRequests(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		peer := 1 - c.Rank()
		reqs := []*Request{
			c.Isend(peer, 20, c.Rank()*100),
			c.Irecv(peer, 20),
			nil, // Waitall must skip nil slots
		}
		Waitall(reqs)
		data, _ := reqs[1].Wait()
		if data.(int) != peer*100 {
			return fmt.Errorf("got %v, want %d", data, peer*100)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendNegativeTagPanics(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		defer func() {
			if recover() == nil {
				t.Error("Isend with negative tag did not panic")
			}
		}()
		c.Isend(0, -1, "x") // mpilint:ignore tags,requests -- deliberate misuse to exercise the runtime check
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
