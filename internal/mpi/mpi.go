// Package mpi is an in-process MPI runtime: ranks are goroutines, messages
// are Go values, and the standard collectives (Barrier, Bcast, Reduce,
// Allreduce, Gather, Scatter, Allgather, Alltoall) are implemented over
// tagged point-to-point channels with MPI's non-overtaking delivery
// semantics.
//
// It substitutes for the OpenMPI/Infiniband environment of the paper: the
// ported algorithms (MapReduce-MPI, MR-BLAST, MR-SOM) only require MPI
// semantics — SPMD ranks, collectives, and p2p matching — which this package
// provides faithfully. Performance at scale is studied separately with the
// discrete-event cluster simulator (internal/cluster).
//
// Ownership convention: a sent value is handed off to the receiver. Senders
// must not mutate a value (or anything it references) after sending it;
// receivers own what they receive. Collectives that logically give every
// rank its own copy (e.g. Bcast of a slice) document whether they copy.
package mpi

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	obscomm "repro/internal/obs/comm"
)

// AnySource matches messages from any sending rank in Recv.
const AnySource = -1

// AnyTag matches messages with any user tag in Recv.
const AnyTag = -1

// ErrAborted is returned or carried in panics when the world has been
// aborted because some rank failed.
var ErrAborted = errors.New("mpi: world aborted")

// DefaultRecvTimeout bounds how long a Recv or collective may block before
// the runtime declares a deadlock. Zero disables the watchdog.
var DefaultRecvTimeout = 60 * time.Second

// message is one in-flight point-to-point message. sentAt and phase are
// stamped by the sender only when comm accounting is on: sentAt (the comm
// tracker's clock) lets the receiver compute queue time, and phase carries
// the sender's current phase so both sides of a link bucket traffic under
// the phase that *produced* it. seq and span are the causal provenance
// header, stamped only when tracing or comm accounting is on: seq is the
// message's ordinal on its (src, dst) link (1-based, monotonically
// increasing), and span is the sender's innermost open trace span id at
// send time. The receive side echoes both into its trace events, which is
// what lets internal/obs/causal stitch per-rank streams into an exact
// happens-before DAG instead of guessing at FIFO pairings.
type message struct {
	src    int
	tag    int
	data   any
	sentAt int64
	phase  string
	seq    uint64
	span   uint64
}

// mailbox holds pending messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	aborted bool
}

// World is a set of communicating ranks launched together.
type World struct {
	size      int
	boxes     []*mailbox
	barrier   *reusableBarrier
	abortOnce sync.Once
	timeout   time.Duration
	// debug is the runtime invariant checker; nil unless built with the
	// mpidebug tag (see debug_on.go / debug_off.go).
	debug *debugState
	// tracers holds one obs rank handle per rank; nil when the world was
	// launched without RunOptions.Trace. Every rank writes only its own
	// handle, so tracing adds no cross-rank contention.
	tracers []*obs.RankTracer
	// metrics is the run's registry; nil when disabled.
	metrics *obs.Registry
	// board is the live status board; nil when disabled. boards holds the
	// per-rank slots (like tracers, resolved once so hot paths skip the
	// board's lock).
	board  *obs.Board
	boards []*obs.RankBoard
	// tracer is the whole-run tracer behind tracers, kept for snapshots
	// (flight dumps thread it into the board snapshot for in-flight spans).
	tracer *obs.Tracer
	// comm is the communication-accounting tracker; nil when disabled.
	// commRanks holds the pre-resolved per-rank accumulators.
	comm      *obscomm.Tracker
	commRanks []*obscomm.Rank
	// flight is the post-mortem flight recorder; nil when disabled.
	// flightRanks are the per-rank rings, flightPath the dump destination,
	// and flightOnce guards against every wedged rank dumping over the
	// previous rank's report.
	flight      *obs.FlightRecorder
	flightRanks []*obs.RankRecorder
	flightPath  string
	flightOnce  sync.Once
	// ledgers tracks open Isend/Irecv requests per rank, allocated only
	// when the flight recorder is on — its dump includes the pending set so
	// a post-mortem shows which nonblocking traffic never completed.
	ledgers []*reqLedger
	// profiler rotates per-phase CPU profiles; nil when disabled. The
	// profiler itself is process-wide (Go's CPU profiler is global), the
	// world just carries the handle so layers reach it via Comm.Profiler.
	profiler *obs.PhaseProfiler
	// seqs holds one monotonically increasing message counter per directed
	// (src, dst) link, flattened src*size+dst. Allocated only when tracing
	// or comm accounting is on; nil otherwise, so the disabled send path
	// pays a single nil check. The counter value is the provenance seq
	// piggybacked on every p2p message and collective leg.
	seqs []atomic.Uint64
	// Pre-resolved instruments so hot paths skip the registry lookup; all
	// nil when metrics is nil (obs instruments no-op on nil).
	mSends, mSendBytes, mRecvs, mCollectives *obs.Counter
}

// Comm is one rank's handle on the world; it is the receiver for all
// point-to-point operations and the first argument of all collectives.
type Comm struct {
	rank  int
	world *World
}

// Rank reports this process's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size reports the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Tracer returns this rank's trace buffer handle, or nil when the world
// was launched without tracing. The nil result is safe to call methods on;
// layers built over mpi (mrmpi, mrblast, mrsom) use this to emit their own
// spans into the same per-rank buffers.
func (c *Comm) Tracer() *obs.RankTracer {
	if c.world.tracers == nil {
		return nil
	}
	return c.world.tracers[c.rank]
}

// Metrics returns the run's metrics registry, or nil when disabled. The
// nil result hands out no-op instruments.
func (c *Comm) Metrics() *obs.Registry { return c.world.metrics }

// Board returns this rank's live status slot, or nil when the world was
// launched without RunOptions.Board. The nil result is a valid no-op, so
// layers update it unconditionally.
func (c *Comm) Board() *obs.RankBoard {
	if c.world.boards == nil {
		return nil
	}
	return c.world.boards[c.rank]
}

// CommRank returns this rank's communication-accounting handle, or nil when
// the world was launched without RunOptions.Comm. The nil result is a valid
// no-op; mrmpi uses it to label traffic with the current MapReduce phase.
func (c *Comm) CommRank() *obscomm.Rank {
	if c.world.commRanks == nil {
		return nil
	}
	return c.world.commRanks[c.rank]
}

// FlightRank returns this rank's flight-recorder ring, or nil when the world
// was launched without RunOptions.Flight. The nil result is a valid no-op;
// layers may Note their own milestones into the post-mortem ring.
func (c *Comm) FlightRank() *obs.RankRecorder {
	if c.world.flightRanks == nil {
		return nil
	}
	return c.world.flightRanks[c.rank]
}

// Profiler returns the run's per-phase CPU profiler, or nil when the world
// was launched without RunOptions.Profile. The nil result is a valid no-op;
// layers announce phase boundaries unconditionally.
func (c *Comm) Profiler() *obs.PhaseProfiler { return c.world.profiler }

// newWorld creates a world of n ranks.
func newWorld(n int, timeout time.Duration, opts RunOptions) *World {
	w := &World{
		size:    n,
		boxes:   make([]*mailbox, n),
		barrier: newReusableBarrier(n),
		timeout: timeout,
		debug:   newDebugState(n),
		metrics: opts.Metrics,
		board:   opts.Board,
	}
	w.profiler = opts.Profile
	for i := range w.boxes {
		b := &mailbox{}
		b.cond = sync.NewCond(&b.mu)
		w.boxes[i] = b
	}
	if opts.Trace != nil {
		w.tracer = opts.Trace
		w.tracers = make([]*obs.RankTracer, n)
		for i := range w.tracers {
			w.tracers[i] = opts.Trace.Rank(i)
		}
	}
	if w.board != nil {
		w.boards = make([]*obs.RankBoard, n)
		for i := range w.boards {
			w.boards[i] = w.board.Rank(i)
		}
	}
	if opts.Comm != nil {
		w.comm = opts.Comm
		w.commRanks = make([]*obscomm.Rank, n)
		for i := range w.commRanks {
			w.commRanks[i] = opts.Comm.Rank(i)
		}
	}
	if opts.Flight != nil {
		w.flight = opts.Flight
		w.flightRanks = make([]*obs.RankRecorder, n)
		for i := range w.flightRanks {
			w.flightRanks[i] = opts.Flight.Rank(i)
		}
		w.flightPath = opts.FlightPath
		if w.flightPath == "" {
			w.flightPath = "flight-dump.json"
		}
		w.ledgers = make([]*reqLedger, n)
		for i := range w.ledgers {
			w.ledgers[i] = &reqLedger{open: map[uint64]string{}}
		}
	}
	if opts.Trace != nil || opts.Comm != nil {
		w.seqs = make([]atomic.Uint64, n*n)
	}
	if w.metrics != nil {
		w.mSends = w.metrics.Counter("mpi.sends")
		w.mSendBytes = w.metrics.Counter("mpi.send.bytes")
		w.mRecvs = w.metrics.Counter("mpi.recvs")
		w.mCollectives = w.metrics.Counter("mpi.collectives")
	}
	return w
}

// traceStatus renders each rank's in-flight span for timeout diagnostics,
// naming what every rank was blocked inside when a deadlock watchdog fires.
// Empty when tracing is disabled.
func (w *World) traceStatus() string {
	if w.tracers == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nin-flight spans:")
	for rank, rt := range w.tracers {
		fmt.Fprintf(&b, "\n  rank %d: %s", rank, rt.InFlight())
	}
	return b.String()
}

// boardStatus renders each rank's live status-board line for timeout
// diagnostics — the same snapshot the live status server publishes. Empty
// when the board is disabled.
func (w *World) boardStatus() string {
	if w.board == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nstatus board:")
	for rank, st := range w.board.Snapshot(nil) {
		fmt.Fprintf(&b, "\n  rank %d: %s", rank, st)
	}
	return b.String()
}

// flightDump writes the post-mortem report once per world and returns a
// diagnostic suffix naming the file, for inclusion in the watchdog's panic
// message. Empty when the flight recorder is off. Every failure path calls
// it (recv timeout, barrier timeout, rank panic); only the first does the
// writing, so the report describes the moment the run first went wrong.
func (w *World) flightDump(reason string) string {
	if w.flight == nil {
		return ""
	}
	w.flightOnce.Do(func() {
		var metrics *obs.RegistrySnapshot
		if w.metrics != nil {
			s := w.metrics.Snapshot()
			metrics = &s
		}
		d := w.flight.Dump(reason, w.board.Snapshot(w.tracer), metrics, w.pendingRequests())
		d.Goroutines = allGoroutines()
		f, err := obs.CreateOutput(w.flightPath)
		if err != nil {
			return
		}
		defer f.Close()
		_ = d.WriteJSON(f)
	})
	return "\nflight recorder dump: " + w.flightPath
}

// allGoroutines captures every goroutine's stack, growing the buffer until
// the dump fits (bounded — a truncated tail beats an unbounded allocation
// inside a failure path).
func allGoroutines() string {
	for size := 1 << 20; ; size *= 2 {
		buf := make([]byte, size)
		n := runtime.Stack(buf, true)
		if n < size || size >= 16<<20 {
			return string(buf[:n])
		}
	}
}

// reqLedger tracks one rank's open nonblocking requests (Isend/Irecv posted
// but not yet Waited/Tested to completion). Allocated only when the flight
// recorder is on; the post-mortem dump lists the pending set.
type reqLedger struct {
	mu   sync.Mutex
	next uint64
	open map[uint64]string
}

// ledgerOpen registers a freshly posted Request.
func (c *Comm) ledgerOpen(r *Request, desc string) {
	if c.world.ledgers == nil {
		return
	}
	l := c.world.ledgers[c.rank]
	l.mu.Lock()
	l.next++
	r.ledger = l.next
	l.open[r.ledger] = desc
	l.mu.Unlock()
}

// ledgerClose retires a completed Request; idempotent.
func (c *Comm) ledgerClose(r *Request) {
	if c.world.ledgers == nil || r.ledger == 0 {
		return
	}
	l := c.world.ledgers[c.rank]
	l.mu.Lock()
	delete(l.open, r.ledger)
	l.mu.Unlock()
	r.ledger = 0
}

// pendingRequests snapshots every rank's open requests as "rank N: ..."
// lines, sorted within each rank for stable output.
func (w *World) pendingRequests() []string {
	if w.ledgers == nil {
		return nil
	}
	var out []string
	for rank, l := range w.ledgers {
		l.mu.Lock()
		descs := make([]string, 0, len(l.open))
		for _, d := range l.open {
			descs = append(descs, d)
		}
		l.mu.Unlock()
		sort.Strings(descs)
		for _, d := range descs {
			out = append(out, fmt.Sprintf("rank %d: %s", rank, d))
		}
	}
	return out
}

// abort wakes every blocked rank; they will panic with ErrAborted, which Run
// converts into an error return.
func (w *World) abort() {
	w.abortOnce.Do(func() {
		for _, b := range w.boxes {
			b.mu.Lock()
			b.aborted = true
			b.cond.Broadcast()
			b.mu.Unlock()
		}
		w.barrier.abort()
	})
}

// RunOptions configures a Run invocation.
type RunOptions struct {
	// Timeout overrides DefaultRecvTimeout for blocking operations.
	Timeout time.Duration
	// Trace, when non-nil, records per-rank span events for every MPI
	// operation (and everything the layers above emit through Comm.Tracer)
	// into the tracer's per-rank buffers. Nil disables tracing at no cost
	// to the hot paths.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives run-wide counters (sends, receive
	// counts, bytes, collectives) and is reachable from every layer via
	// Comm.Metrics. Nil disables metrics.
	Metrics *obs.Registry
	// Board, when non-nil, is the live per-rank status board that layers
	// update via Comm.Board and that the status server and the deadlock
	// watchdog snapshot. Nil disables it.
	Board *obs.Board
	// Comm, when non-nil, records every p2p message and collective leg —
	// (src, dst, tag, phase, bytes, queue time, transfer time) — into
	// per-rank accumulators; merge with Comm.Matrix() after the run. Nil
	// disables accounting at nil-check cost on the hot paths.
	Comm *obscomm.Tracker
	// Flight, when non-nil, keeps a bounded per-rank ring of recent events
	// (sends, receives, collective entries, layer notes). When the deadlock
	// watchdog fires or a rank panics, the runtime dumps the rings together
	// with the board snapshot, the metrics table, and the pending
	// nonblocking-request ledger to FlightPath as a post-mortem report.
	Flight *obs.FlightRecorder
	// FlightPath is where the post-mortem dump is written; defaults to
	// "flight-dump.json" when Flight is set.
	FlightPath string
	// Profile, when non-nil, is the per-phase CPU profiler: layers announce
	// phase boundaries through Comm.Profiler and the profiler rotates its
	// CPU capture at each one, plus a heap snapshot at Stop. Start it with
	// obs.StartPhaseProfiler before the run; Stop it after. Nil disables
	// profiling.
	Profile *obs.PhaseProfiler
}

// Run executes f as an SPMD program on n ranks (goroutines) and blocks until
// all ranks finish. If any rank returns an error or panics, the world is
// aborted: blocked ranks are woken and fail with ErrAborted, and Run returns
// the join of all per-rank errors, wrapped with their ranks.
func Run(n int, f func(c *Comm) error) error {
	return RunWith(n, RunOptions{}, f)
}

// RunWith is Run with explicit options.
func RunWith(n int, opts RunOptions, f func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: Run needs at least 1 rank, got %d", n)
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultRecvTimeout
	}
	w := newWorld(n, timeout, opts)
	if w.flight != nil {
		defer w.installQuitHandler()()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for rank := 0; rank < n; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && err == ErrAborted {
						// Pure collateral damage from another rank's failure.
						errs[rank] = ErrAborted
					} else if err, ok := r.(error); ok && errors.Is(err, ErrAborted) {
						// A local diagnosis (timeout, deadlock) wrapping the
						// abort sentinel: keep the message as a root cause.
						errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
					} else {
						buf := make([]byte, 8<<10)
						buf = buf[:runtime.Stack(buf, false)]
						dump := w.flightDump(fmt.Sprintf("rank %d panicked: %v", rank, r))
						errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v%s\n%s", rank, r, dump, buf)
					}
					w.abort()
				}
			}()
			c := &Comm{rank: rank, world: w}
			if err := f(c); err != nil {
				errs[rank] = fmt.Errorf("rank %d: %w", rank, err)
				w.abort()
			}
		}(rank)
	}
	wg.Wait()
	// Report real failures first; suppress pure ErrAborted collateral if a
	// root cause exists.
	var rootCauses, collateral []error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrAborted) && err == ErrAborted:
			collateral = append(collateral, err)
		default:
			rootCauses = append(rootCauses, err)
		}
	}
	if len(rootCauses) > 0 {
		return errors.Join(rootCauses...)
	}
	if err := errors.Join(collateral...); err != nil {
		return err
	}
	// mpidebug builds: a clean shutdown must leave no unreceived messages.
	return debugCheckDrained(w)
}

// reusableBarrier is a generation-counted barrier usable any number of times.
type reusableBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	aborted bool
}

func newReusableBarrier(n int) *reusableBarrier {
	b := &reusableBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n ranks arrive. diag, when non-nil, contributes
// per-rank context (collective fingerprints, in-flight spans) to the
// timeout panic message.
func (b *reusableBarrier) wait(timeout time.Duration, diag func() string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(ErrAborted)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	deadline := time.Now().Add(timeout)
	var watchdog *time.Timer
	defer func() {
		if watchdog != nil {
			watchdog.Stop()
		}
	}()
	for b.gen == gen && !b.aborted {
		if timeout > 0 && watchdog == nil {
			watchdog = time.AfterFunc(time.Until(deadline), func() {
				b.mu.Lock()
				b.cond.Broadcast()
				b.mu.Unlock()
			})
		}
		b.cond.Wait()
		if timeout > 0 && b.gen == gen && !b.aborted && time.Now().After(deadline) {
			extra := ""
			if diag != nil {
				extra = diag()
			}
			panic(fmt.Errorf("mpi: barrier timed out after %v (likely deadlock)%s: %w", timeout, extra, ErrAborted))
		}
	}
	if b.aborted {
		panic(ErrAborted)
	}
}

func (b *reusableBarrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
