package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
)

// Registry is the unified metrics store for a run: named counters, gauges,
// and histograms that all layers (mpi, mrmpi, mrblast, mrsom, blast,
// blastdb) publish into, superseding the per-layer ad-hoc stats structs.
// One registry serves every rank of a run — instruments are atomic or
// mutex-guarded, so concurrent ranks need no coordination.
//
// A nil *Registry is the disabled state: it hands out nil instruments whose
// methods no-op in a few nanoseconds. Hot paths should resolve instruments
// once (e.g. in a constructor) rather than per operation, since resolution
// takes a lock and a map lookup.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil registry
// → nil counter (a valid no-op instrument).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{min: math.Inf(1), max: math.Inf(-1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing sum. Methods are atomic and no-ops
// on a nil receiver.
type Counter struct{ v atomic.Int64 }

// Add adds d (callers pass non-negative deltas).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current sum (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histogramSampleCap bounds the per-histogram sample buffer used for
// quantile estimates. When the buffer fills, every other retained sample is
// dropped and the keep stride doubles — a deterministic decimation that
// keeps an evenly spaced subsample of the whole stream in bounded memory.
const histogramSampleCap = 2048

// Histogram summarizes a stream of observations with count/sum/min/max plus
// p50/p95/p99 quantile estimates from an evenly decimated sample buffer.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	samples  []float64
	stride   int64 // keep every stride-th observation in samples
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.stride == 0 {
		h.stride = 1
	}
	if h.count%h.stride == 0 {
		h.samples = append(h.samples, v)
		if len(h.samples) >= histogramSampleCap {
			kept := h.samples[:0]
			for i := 0; i < len(h.samples); i += 2 {
				kept = append(kept, h.samples[i])
			}
			h.samples = kept
			h.stride *= 2
		}
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Quantile returns the q-th quantile (q in [0,1]) of a sorted sample slice
// using linear interpolation between order statistics; 0 when empty. Shared
// by histogram snapshots and the trace analyzer's latency distributions.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Value int64
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string
	Value int64
}

// HistogramValue is one histogram in a snapshot. P50/P95/P99 are quantile
// estimates from the histogram's decimated sample buffer (exact while the
// stream fits histogramSampleCap observations).
type HistogramValue struct {
	Name          string
	Count         int64
	Sum, Min, Max float64
	P50, P95, P99 float64
}

// Mean is Sum/Count (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// RegistrySnapshot is a point-in-time copy of every instrument, each
// section sorted by name.
type RegistrySnapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Snapshot copies the registry's current state (empty on nil).
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		hv := HistogramValue{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		samples := append([]float64(nil), h.samples...)
		h.mu.Unlock()
		if hv.Count == 0 {
			hv.Min, hv.Max = 0, 0
		}
		sort.Float64s(samples)
		hv.P50 = Quantile(samples, 0.50)
		hv.P95 = Quantile(samples, 0.95)
		hv.P99 = Quantile(samples, 0.99)
		s.Histograms = append(s.Histograms, hv)
	}
	r.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteTable renders the snapshot as a plain-text metrics report.
func (s RegistrySnapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	for _, c := range s.Counters {
		fmt.Fprintf(tw, "counter\t%s\t%d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(tw, "gauge\t%s\t%d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(tw, "histogram\t%s\tcount=%d sum=%g min=%g max=%g mean=%g p50=%g p95=%g p99=%g\n",
			h.Name, h.Count, h.Sum, h.Min, h.Max, h.Mean(), h.P50, h.P95, h.P99)
	}
	return tw.Flush()
}
