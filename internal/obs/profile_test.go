package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CPU profiler is process-global, so these tests run the whole
// lifecycle in one sequence rather than in parallel subtests.
func TestPhaseProfiler(t *testing.T) {
	dir := t.TempDir()
	p, err := StartPhaseProfiler(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Transition(0, "map")
	p.Transition(1, "map")          // same phase from another rank: no rotation
	p.Transition(2, "reduce/final") // rank 2 never crossed into map: ignored
	p.Transition(0, "reduce/final") // rank 0 advances the frontier: rotates
	p.Transition(1, "reduce/final") // straggler: no rotation
	p.Transition(2, "map")          // behind the frontier: ignored
	files, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"cpu.00.init.pprof",
		"cpu.01.map.rank0.pprof",
		"cpu.02.reduce_final.rank0.pprof",
		"heap.pprof",
	}
	if len(files) != len(want) {
		t.Fatalf("files = %v, want %d entries", files, len(want))
	}
	for i, w := range want {
		if filepath.Base(files[i]) != w {
			t.Errorf("files[%d] = %s, want %s", i, filepath.Base(files[i]), w)
		}
		fi, err := os.Stat(files[i])
		if err != nil {
			t.Errorf("missing %s: %v", w, err)
		} else if strings.HasPrefix(w, "heap") && fi.Size() == 0 {
			t.Errorf("%s is empty", w)
		}
	}

	// Stop is idempotent and transitions after Stop are no-ops.
	again, err := p.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(files) {
		t.Errorf("second Stop returned %d files, want %d", len(again), len(files))
	}
	p.Transition(0, "late")
}

func TestPhaseProfilerNil(t *testing.T) {
	var p *PhaseProfiler
	p.Transition(0, "map")
	files, err := p.Stop()
	if files != nil || err != nil {
		t.Errorf("nil profiler Stop = %v, %v", files, err)
	}
}
