package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event JSON: the interchange format of Perfetto and
// chrome://tracing. Each (rank, track) pair is one "thread" (tid) of a
// single process — tid = track·1000 + rank, so plain rank tracks keep their
// historical tid and intra-rank worker tracks sort after all ranks. The UI
// shows one lane per track with nested spans. Only the subset this package
// emits — B/E/I duration events plus M metadata naming the tracks — is read
// back by ReadTrace.

// chromeTrackStride is the tid stride between tracks: tid = track·stride +
// rank. Bounds the supported world size, far above any run here.
const chromeTrackStride = 1000

// chromeEvent is the wire form of one trace_event record. TS is in
// microseconds per the format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the outer JSON object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the merged event stream as Chrome trace JSON.
// Open the file in https://ui.perfetto.dev or chrome://tracing, or feed it
// to cmd/traceview.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	file := chromeFile{TraceEvents: make([]chromeEvent, 0, len(events)+1+t.NumRanks())}
	file.TraceEvents = append(file.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Args: map[string]any{"name": "mrbio"},
	})
	for r := 0; r < t.NumRanks(); r++ {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", TID: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	// Worker tracks exist only where the stream used them; name each one.
	workerTIDs := map[int]bool{}
	for _, ev := range events {
		if ev.Track > 0 {
			workerTIDs[ev.Track*chromeTrackStride+ev.Rank] = true
		}
	}
	for _, tid := range sortedKeys(workerTIDs) {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("rank %d worker %d", tid%chromeTrackStride, tid/chromeTrackStride-1)},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(ev.Type),
			TS:   float64(ev.TS) / 1e3,
			TID:  ev.Track*chromeTrackStride + ev.Rank,
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		file.TraceEvents = append(file.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// TraceMeta is what the metadata ("M") records of a trace file declare:
// currently just how many rank tracks were named. Zero when the file has no
// thread_name records (e.g. a hand-built stream).
type TraceMeta struct {
	NumRanks int
}

// ReadTrace parses Chrome trace JSON back into the typed event stream,
// dropping metadata records. Event order follows the file; args become
// key-sorted Arg lists.
func ReadTrace(r io.Reader) ([]Event, error) {
	events, _, err := ReadTraceMeta(r)
	return events, err
}

// ReadTraceMeta is ReadTrace plus the metadata records: it also reports how
// many rank tracks the file's thread_name records declare, which
// ValidateInstants uses to range-check instant ranks.
// Gzip-compressed traces are decompressed transparently.
func ReadTraceMeta(r io.Reader) ([]Event, TraceMeta, error) {
	var meta TraceMeta
	r, err := MaybeGzip(r)
	if err != nil {
		return nil, meta, fmt.Errorf("obs: trace: %w", err)
	}
	var file chromeFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, meta, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	var events []Event
	for i, ce := range file.TraceEvents {
		switch ce.Ph {
		case "M":
			// Only plain rank tracks (track 0) count toward the world size;
			// worker-track names live at tid ≥ stride.
			if ce.Name == "thread_name" && ce.TID < chromeTrackStride && ce.TID+1 > meta.NumRanks {
				meta.NumRanks = ce.TID + 1
			}
			continue
		case "B", "E", "I":
		default:
			return nil, meta, fmt.Errorf("obs: event %d has unsupported phase %q", i, ce.Ph)
		}
		ev := Event{
			Type:  EventType(ce.Ph[0]),
			Rank:  ce.TID % chromeTrackStride,
			Track: ce.TID / chromeTrackStride,
			Cat:   ce.Cat,
			Name:  ce.Name,
			TS:    int64(ce.TS * 1e3),
		}
		if len(ce.Args) > 0 {
			keys := make([]string, 0, len(ce.Args))
			for k := range ce.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ev.Args = append(ev.Args, Arg{Key: k, Val: ce.Args[k]})
			}
		}
		events = append(events, ev)
	}
	return events, meta, nil
}

// ValidateInstants checks instant ("I") events, which Validate's span
// pairing skips: each instant's rank must be non-negative (and below
// numRanks when numRanks > 0, e.g. from ReadTraceMeta), and its timestamp
// must fall within the clock span of the trace's B/E events, when any
// exist — an instant outside that window means merged streams disagree on
// the clock origin.
func ValidateInstants(events []Event, numRanks int) error {
	var minTS, maxTS int64
	haveSpan := false
	for _, ev := range events {
		if ev.Type != BeginEvent && ev.Type != EndEvent {
			continue
		}
		if !haveSpan || ev.TS < minTS {
			minTS = ev.TS
		}
		if !haveSpan || ev.TS > maxTS {
			maxTS = ev.TS
		}
		haveSpan = true
	}
	for i, ev := range events {
		if ev.Type != InstantEvent {
			continue
		}
		if ev.Rank < 0 {
			return fmt.Errorf("obs: instant %d (%s:%s) has negative rank %d", i, ev.Cat, ev.Name, ev.Rank)
		}
		if numRanks > 0 && ev.Rank >= numRanks {
			return fmt.Errorf("obs: instant %d (%s:%s) names rank %d but the trace declares %d rank(s)",
				i, ev.Cat, ev.Name, ev.Rank, numRanks)
		}
		if haveSpan && (ev.TS < minTS || ev.TS > maxTS) {
			return fmt.Errorf("obs: instant %d (%s:%s) at %dns is outside the trace clock span [%dns, %dns]",
				i, ev.Cat, ev.Name, ev.TS, minTS, maxTS)
		}
	}
	return nil
}

// trackLabel names a (rank, track) pair for diagnostics.
func trackLabel(rank, track int) string {
	if track == 0 {
		return fmt.Sprintf("rank %d", rank)
	}
	return fmt.Sprintf("rank %d worker %d", rank, track-1)
}

// sortedKeys returns a map's integer keys in ascending order.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Validate checks the structural invariants of a trace event stream:
// every End matches the innermost open Begin of its (rank, track) pair
// (same category and name), no End arrives with no span open, every Begin
// is eventually Ended, and each rank's timestamps are monotonically
// non-decreasing (all tracks of a rank share one clock and one buffer).
// cmd/traceview -check runs this against a trace file; the golden-file test
// runs it against a live 4-rank job. Spans nest per track, which is how
// concurrent intra-rank map-task workers stay LIFO-checkable.
func Validate(events []Event) error {
	type key struct{ rank, track int }
	stacks := map[key][]Event{}
	lastTS := map[int]int64{}
	seen := map[int]bool{}
	for i, ev := range events {
		if seen[ev.Rank] && ev.TS < lastTS[ev.Rank] {
			return fmt.Errorf("obs: event %d (%s:%s): rank %d clock went backwards (%dns after %dns)",
				i, ev.Cat, ev.Name, ev.Rank, ev.TS, lastTS[ev.Rank])
		}
		seen[ev.Rank] = true
		lastTS[ev.Rank] = ev.TS
		k := key{ev.Rank, ev.Track}
		switch ev.Type {
		case BeginEvent:
			stacks[k] = append(stacks[k], ev)
		case EndEvent:
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("obs: event %d: %s ends %s:%s with no span open",
					i, trackLabel(ev.Rank, ev.Track), ev.Cat, ev.Name)
			}
			top := st[len(st)-1]
			if top.Cat != ev.Cat || top.Name != ev.Name {
				return fmt.Errorf("obs: event %d: %s ends %s:%s but innermost open span is %s:%s",
					i, trackLabel(ev.Rank, ev.Track), ev.Cat, ev.Name, top.Cat, top.Name)
			}
			stacks[k] = st[:len(st)-1]
		case InstantEvent:
		default:
			return fmt.Errorf("obs: event %d: unknown event type %q", i, ev.Type)
		}
	}
	keys := make([]key, 0, len(stacks))
	for k := range stacks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rank != keys[j].rank {
			return keys[i].rank < keys[j].rank
		}
		return keys[i].track < keys[j].track
	})
	for _, k := range keys {
		if st := stacks[k]; len(st) > 0 {
			top := st[len(st)-1]
			return fmt.Errorf("obs: %s has %d span(s) begun but never ended (innermost %s:%s)",
				trackLabel(k.rank, k.track), len(st), top.Cat, top.Name)
		}
	}
	return nil
}
