package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCreateOpenRoundTrip: CreateOutput compresses iff the name ends in
// .gz, OpenInput reads both back by content, including a .gz name holding
// plain bytes (renames must not confuse the sniffer).
func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := strings.Repeat("the payload survives the trip. ", 100)
	cases := []struct {
		name       string
		compressed bool
	}{
		{"plain.json", false},
		{"packed.json.gz", true},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.name)
		w, err := CreateOutput(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(w, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		isGz := len(raw) > 2 && raw[0] == 0x1f && raw[1] == 0x8b
		if isGz != tc.compressed {
			t.Errorf("%s: compressed = %v, want %v", tc.name, isGz, tc.compressed)
		}

		r, err := OpenInput(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if cerr := r.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Errorf("%s: round trip corrupted the payload (%d bytes back, want %d)", tc.name, len(got), len(payload))
		}
	}

	// A plain file that merely *looks* compressed by name still reads.
	liar := filepath.Join(dir, "liar.gz")
	if err := os.WriteFile(liar, []byte(payload), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenInput(liar)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != payload {
		t.Error("plain bytes under a .gz name did not read back verbatim")
	}
}

// TestReadFlightDumpGzip: a dump compressed on the way out parses
// transparently on the way back in, and a truncated compressed stream (the
// crash-mid-write case a post-mortem format must expect) fails with an
// error instead of panicking or silently succeeding.
func TestReadFlightDumpGzip(t *testing.T) {
	d := FlightDump{
		Reason:     "test",
		TakenAt:    time.Now(),
		Goroutines: "goroutine 1 [running]:\nmain.main()",
		Ranks: []FlightRankDump{
			{Rank: 0, Recent: []FlightEvent{{Kind: "send", Detail: "dst=1 tag=3"}}},
			{Rank: 1},
		},
	}
	var plain bytes.Buffer
	if err := d.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	var packed bytes.Buffer
	gz := gzip.NewWriter(&packed)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadFlightDump(bytes.NewReader(packed.Bytes()))
	if err != nil {
		t.Fatalf("compressed dump did not parse: %v", err)
	}
	if back.Reason != "test" || len(back.Ranks) != 2 || back.Goroutines == "" {
		t.Errorf("compressed round trip lost fields: %+v", back)
	}

	// Truncate the compressed stream at several depths: every cut must
	// surface an error (bad magic, unexpected EOF, or JSON cut short).
	for _, frac := range []int{4, 2} {
		cut := packed.Len() / frac
		if _, err := ReadFlightDump(bytes.NewReader(packed.Bytes()[:cut])); err == nil {
			t.Errorf("truncated compressed dump (%d of %d bytes) parsed without error", cut, packed.Len())
		}
	}
	if _, err := ReadFlightDump(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream parsed without error")
	}
}
