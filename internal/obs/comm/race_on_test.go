//go:build race

package comm

// raceEnabled reports whether the race detector is compiled in, so timing
// gates can skip themselves under its instrumentation overhead.
const raceEnabled = true
