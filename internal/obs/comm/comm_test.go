package comm

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilTrackerNoOps(t *testing.T) {
	var tr *Tracker
	if tr.Now() != 0 {
		t.Fatal("nil Tracker.Now should be 0")
	}
	r := tr.Rank(3)
	if r != nil {
		t.Fatal("nil Tracker.Rank should hand out a nil handle")
	}
	// All methods on the nil handle must be safe no-ops.
	r.SetPhase("map")
	if r.Phase() != "" {
		t.Fatal("nil Rank.Phase should be empty")
	}
	r.RecordSend(1, 0, 100, 1)
	r.RecordRecv(1, 0, 100, 10, 5, 1, "map")
	if tr.Matrix() != nil {
		t.Fatal("nil Tracker.Matrix should be nil")
	}
}

func TestMatrixMergeAndPhases(t *testing.T) {
	tr := NewTracker()
	r0, r1 := tr.Rank(0), tr.Rank(1)

	r0.SetPhase("map")
	if got := r0.Phase(); got != "map" {
		t.Fatalf("Phase = %q, want map", got)
	}
	r0.RecordSend(1, 5, 100, 1)
	r0.RecordSend(1, 5, 200, 2)
	r1.RecordRecv(0, 5, 100, 1000, 400, 1, "map")
	r1.RecordRecv(0, 5, 200, 3000, 600, 2, "map")

	r0.SetPhase("aggregate")
	r0.RecordSend(1, 6, 50, 3)
	r1.RecordRecv(0, 6, 50, 500, 100, 3, "aggregate")

	// Reverse-direction traffic with no SetPhase → empty phase label.
	r1.RecordSend(0, 7, 10, 1)
	r0.RecordRecv(1, 7, 10, 100, 50, 1, "")

	m := tr.Finalize()
	if m.NumRanks != 2 {
		t.Fatalf("NumRanks = %d, want 2", m.NumRanks)
	}
	if len(m.Links) != 3 {
		t.Fatalf("links = %d, want 3: %+v", len(m.Links), m.Links)
	}

	find := func(src, dst int, phase string) *Link {
		for i := range m.Links {
			l := &m.Links[i]
			if l.Src == src && l.Dst == dst && l.Phase == phase {
				return l
			}
		}
		t.Fatalf("link %d->%d phase=%q not found in %+v", src, dst, phase, m.Links)
		return nil
	}
	l := find(0, 1, "map")
	if l.Msgs != 2 || l.Bytes != 300 || l.SentMsgs != 2 || l.SentBytes != 300 {
		t.Fatalf("map link: %+v", l)
	}
	if l.QueueNS != 4000 || l.MaxQueueNS != 3000 || l.TransferNS != 1000 {
		t.Fatalf("map link latency sums: %+v", l)
	}
	if l.AvgQueue() != 2000 {
		t.Fatalf("AvgQueue = %v, want 2µs", l.AvgQueue())
	}
	if len(l.Samples) != 2 {
		t.Fatalf("samples = %+v, want 2", l.Samples)
	}
	find(0, 1, "aggregate")
	find(1, 0, "")

	msgs, total := m.Totals()
	if msgs != 4 || total != 360 {
		t.Fatalf("Totals = (%d, %d), want (4, 360)", msgs, total)
	}
	phases := m.PhaseTotals()
	if len(phases) != 3 || phases[0].Phase != "map" || phases[0].Bytes != 300 {
		t.Fatalf("PhaseTotals = %+v", phases)
	}
	top := m.TopLinks(1)
	if len(top) != 1 || top[0].Bytes != 300 {
		t.Fatalf("TopLinks(1) = %+v", top)
	}
	grid := m.PairBytes()
	if grid[0][1] != 350 || grid[1][0] != 10 {
		t.Fatalf("PairBytes = %+v", grid)
	}
	if lost := m.Unaccounted(); len(lost) != 0 {
		t.Fatalf("balanced matrix reports unaccounted links: %+v", lost)
	}
}

func TestUnaccountedTracksInFlight(t *testing.T) {
	tr := NewTracker()
	tr.Rank(0).SetPhase("map")
	tr.Rank(0).RecordSend(1, 5, 100, 1)
	// Never delivered: the matrix must show the shortfall.
	m := tr.Matrix()
	lost := m.Unaccounted()
	if len(lost) != 1 || lost[0].SentBytes != 100 || lost[0].Bytes != 0 {
		t.Fatalf("Unaccounted = %+v", lost)
	}
}

func TestMatrixJSONRoundTrip(t *testing.T) {
	tr := NewTracker()
	tr.Rank(0).SetPhase("map")
	tr.Rank(0).RecordSend(1, 5, 100, 1)
	tr.Rank(1).RecordRecv(0, 5, 100, 1000, 400, 1, "map")
	m := tr.Matrix()

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRanks != m.NumRanks || len(back.Links) != len(m.Links) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, m)
	}
	if back.Links[0].Bytes != 100 || back.Links[0].Phase != "map" {
		t.Fatalf("round-tripped link: %+v", back.Links[0])
	}
}

func TestSampleDecimation(t *testing.T) {
	a := &recvAcc{}
	for i := 0; i < 10*sampleCap; i++ {
		a.addSample(Sample{Bytes: int64(i), LatencyNS: int64(i)})
	}
	if len(a.samples) > sampleCap {
		t.Fatalf("samples grew past cap: %d > %d", len(a.samples), sampleCap)
	}
	if len(a.samples) < sampleCap/4 {
		t.Fatalf("decimation kept too few samples: %d", len(a.samples))
	}
	// The kept set must span the run, not just its start.
	last := a.samples[len(a.samples)-1].Bytes
	if last < int64(5*sampleCap) {
		t.Fatalf("kept samples end at %d; decimation is not spreading", last)
	}
}

func TestFitAlphaBetaRecoversModel(t *testing.T) {
	// Exact synthetic α–β data: latency = 2000ns + bytes * 0.5ns/B.
	var samples []Sample
	for _, b := range []int64{64, 256, 1024, 4096, 65536, 1 << 20} {
		samples = append(samples, Sample{Bytes: b, LatencyNS: 2000 + b/2})
	}
	fit, ok := FitAlphaBeta(samples)
	if !ok {
		t.Fatal("fit failed on clean data")
	}
	if math.Abs(fit.AlphaNS-2000) > 1 {
		t.Fatalf("α = %v, want ≈2000ns", fit.AlphaNS)
	}
	if math.Abs(fit.BetaNSPerByte-0.5) > 1e-6 {
		t.Fatalf("β = %v, want 0.5 ns/B", fit.BetaNSPerByte)
	}
	if math.Abs(fit.BandwidthMBps-2000) > 1 {
		t.Fatalf("bandwidth = %v MB/s, want 2000", fit.BandwidthMBps)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R² = %v on exact data", fit.R2)
	}
	if s := fit.String(); !strings.Contains(s, "MB/s") {
		t.Fatalf("Fit.String = %q", s)
	}
}

func TestFitAlphaBetaDegenerate(t *testing.T) {
	if _, ok := FitAlphaBeta(nil); ok {
		t.Fatal("fit on no samples should fail")
	}
	if _, ok := FitAlphaBeta([]Sample{{Bytes: 10, LatencyNS: 5}}); ok {
		t.Fatal("fit on one sample should fail")
	}
	// All samples the same size: slope unidentifiable.
	same := []Sample{{Bytes: 64, LatencyNS: 100}, {Bytes: 64, LatencyNS: 200}}
	if _, ok := FitAlphaBeta(same); ok {
		t.Fatal("fit with zero size variance should fail")
	}
	// Latency shrinking with size: clamped to a flat model, never negative
	// bandwidth.
	shrink := []Sample{{Bytes: 10, LatencyNS: 1000}, {Bytes: 1000, LatencyNS: 10}}
	fit, ok := FitAlphaBeta(shrink)
	if !ok {
		t.Fatal("noisy fit should still report")
	}
	if fit.BetaNSPerByte != 0 || fit.BandwidthMBps != 0 {
		t.Fatalf("noise clamp: %+v", fit)
	}
	if !strings.Contains(fit.String(), "∞") {
		t.Fatalf("flat model should render ∞ bandwidth: %q", fit.String())
	}
}

func TestWriteReport(t *testing.T) {
	tr := NewTracker()
	r0, r1 := tr.Rank(0), tr.Rank(1)
	r0.SetPhase("map")
	for i := 0; i < 16; i++ {
		b := int64(64 << uint(i%6))
		r0.RecordSend(1, 5, b, uint64(i+1))
		r1.RecordRecv(0, 5, b, 2000+b/2, 100, uint64(i+1), "map")
	}
	var buf bytes.Buffer
	if err := tr.Matrix().WriteReport(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"comm matrix: 2 ranks",
		"per-phase totals:",
		"map",
		"bytes by rank pair",
		"top 1 links by bytes:",
		"0->1",
		"α–β model fit",
		"bandwidth=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	tr := NewTracker()
	tr.Rank(0).SetPhase("map")
	tr.Rank(0).RecordSend(1, 5, 100, 1)
	tr.Rank(1).RecordRecv(0, 5, 100, 1000, 400, 1, "map")
	var buf bytes.Buffer
	if err := tr.Matrix().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mpi_comm_bytes_total counter",
		`mpi_comm_bytes_total{src="0",dst="1",phase="map"} 100`,
		`mpi_comm_msgs_total{src="0",dst="1",phase="map"} 1`,
		// Receiver-side blocked time per link — the blame gauges (400ns).
		"# TYPE mpi_recv_wait_seconds_total counter",
		`mpi_recv_wait_seconds_total{src="0",dst="1",phase="map"} 4e-07`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestSeqAlignment: the per-link provenance seqs cross-check the message
// counters. Aligned links report nothing; a link whose recorded sends lag
// the seq stream is flagged.
func TestSeqAlignment(t *testing.T) {
	tr := NewTracker()
	tr.Rank(0).SetPhase("map")
	tr.Rank(0).RecordSend(1, 5, 100, 1)
	tr.Rank(0).SetPhase("reduce")
	tr.Rank(0).RecordSend(1, 5, 100, 2) // phases pool per (src, dst) pair
	tr.Rank(1).RecordRecv(0, 5, 100, 10, 5, 1, "map")
	tr.Rank(1).RecordRecv(0, 5, 100, 10, 5, 2, "reduce")
	if skews := tr.Matrix().SeqAlignment(); len(skews) != 0 {
		t.Fatalf("aligned matrix reports skew: %+v", skews)
	}

	// A delivery stamped seq 4 arrives but only 2 sends were recorded: the
	// accounting missed sends (e.g. a tracker attached mid-run).
	tr.Rank(1).RecordRecv(0, 5, 100, 10, 5, 4, "reduce")
	skews := tr.Matrix().SeqAlignment()
	if len(skews) != 1 {
		t.Fatalf("skews = %+v, want the 0->1 pair flagged", skews)
	}
	s := skews[0]
	if s.Src != 0 || s.Dst != 1 || s.MaxSeq != 4 || s.SentMsgs != 2 || s.Msgs != 3 {
		t.Fatalf("skew = %+v, want {0 1 4 2 3}", s)
	}

	// The text report renders the misalignment section.
	var buf bytes.Buffer
	if err := tr.Matrix().WriteReport(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "seq misalignment") {
		t.Fatalf("report missing seq misalignment section:\n%s", buf.String())
	}

	// Links recorded without seqs (pre-provenance) are skipped entirely.
	old := NewTracker()
	old.Rank(0).RecordSend(1, 5, 100, 0)
	if skews := old.Matrix().SeqAlignment(); len(skews) != 0 {
		t.Fatalf("seq-less matrix reports skew: %+v", skews)
	}
}

// TestConcurrentRecording hammers one tracker from many goroutines (each
// playing a rank) while Matrix snapshots race along; run under -race in CI.
func TestConcurrentRecording(t *testing.T) {
	tr := NewTracker()
	const ranks = 4
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := tr.Rank(r)
			for i := 0; i < 500; i++ {
				if i%100 == 0 {
					h.SetPhase([]string{"map", "aggregate", "reduce"}[i/100%3])
				}
				peer := (r + 1) % ranks
				h.RecordSend(peer, 5, int64(i), uint64(i+1))
				h.RecordRecv((r+ranks-1)%ranks, 5, int64(i), int64(i)*10, int64(i), uint64(i+1), h.Phase())
			}
		}(r)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			tr.Matrix()
		}
	}()
	wg.Wait()
	<-done
	m := tr.Matrix()
	msgs, _ := m.Totals()
	if msgs != ranks*500 {
		t.Fatalf("delivered msgs = %d, want %d", msgs, ranks*500)
	}
}
