//go:build !race

package comm

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
