// Package comm is the communication-accounting subsystem: per-rank,
// lock-cheap accumulators that record every point-to-point message and
// collective leg the mpi runtime moves — (src, dst, tag, phase, bytes,
// queue-time, transfer-time) — and merge at Finalize into a world-level
// comm matrix keyed by (src, dst, phase).
//
// The matrix is the observed baseline the ROADMAP's pluggable transport is
// judged against: FitAlphaBeta regresses the recorded (bytes → latency)
// samples into the α–β (startup, bandwidth) cost model of Sanders'
// "Connecting MapReduce Computations to Realistic Machine Models", per link
// and globally, with residuals so a poor fit is visible as such.
//
// Design mirrors the rest of internal/obs: a nil *Tracker hands out nil
// *Rank handles whose methods no-op in a few nanoseconds (CI gates the
// disabled path at ≤5ns alongside the tracer's), and an enabled rank only
// ever touches its own accumulator, so accounting adds no cross-rank
// contention on the hot paths.
package comm

import (
	"sync"
	"sync/atomic"
	"time"
)

// sampleCap bounds the (bytes, latency) regression samples kept per link.
// Past the cap the stride doubles and older samples are decimated, exactly
// like the obs histogram reservoir, keeping a spread across the whole run
// in bounded memory.
const sampleCap = 256

// Tracker accumulates communication records for one world. Create with
// NewTracker, pass to mpi.RunOptions.Comm, and read the merged Matrix after
// the run (or concurrently: Matrix snapshots under the per-rank locks).
type Tracker struct {
	start time.Time
	mu    sync.Mutex
	ranks []*Rank
}

// NewTracker creates an empty tracker. Rank handles are created on demand,
// so the world size need not be known up front.
func NewTracker() *Tracker {
	return &Tracker{start: time.Now()}
}

// Now is the tracker's clock: nanoseconds since the tracker was created.
// Message timestamps (sentAt, receive start) all come from this clock so
// queue and transfer times subtract cleanly.
func (t *Tracker) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.start))
}

// Rank returns the accumulator handle for rank r, creating it if needed.
// A nil tracker returns a nil handle, which is a valid no-op receiver.
func (t *Tracker) Rank(r int) *Rank {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.ranks) <= r {
		t.ranks = append(t.ranks, &Rank{
			rank: len(t.ranks),
			sent: map[linkKey]*sentAcc{},
			rcvd: map[linkKey]*recvAcc{},
		})
	}
	return t.ranks[r]
}

// linkKey identifies one peer/phase bucket inside a rank's accumulator. On
// the send side peer is the destination; on the receive side it is the
// source.
type linkKey struct {
	peer  int
	phase string
}

// sentAcc counts send-side traffic for one (dst, phase). maxSeq is the
// highest provenance seq stamped on a message in this bucket — seqs are
// per-(src,dst)-link ordinals assigned by the mpi runtime, so across a
// pair's phase buckets the max equals the total messages the link ever
// carried, which Matrix uses to cross-check the two sides' counters.
type sentAcc struct {
	msgs, bytes int64
	maxSeq      uint64
}

// recvAcc accumulates delivered traffic for one (src, phase): counts, the
// latency sums the matrix reports, and the decimated regression samples.
type recvAcc struct {
	msgs, bytes            int64
	queueNS, transferNS    int64
	maxQueueNS             int64
	maxSeq                 uint64
	samples                []Sample
	sampleStride, sampleAt int64
}

func (a *recvAcc) addSample(s Sample) {
	if a.sampleStride == 0 {
		a.sampleStride = 1
	}
	if a.sampleAt%a.sampleStride == 0 {
		if len(a.samples) == sampleCap {
			// Full: drop every other sample and double the stride, so the
			// kept set stays spread over the whole run.
			for i := 0; i < sampleCap/2; i++ {
				a.samples[i] = a.samples[2*i]
			}
			a.samples = a.samples[:sampleCap/2]
			a.sampleStride *= 2
		}
		if a.sampleAt%a.sampleStride == 0 {
			a.samples = append(a.samples, s)
		}
	}
	a.sampleAt++
}

// Rank is one rank's accumulator. The owning rank calls SetPhase,
// RecordSend and RecordRecv; Matrix merges under mu. All methods are
// nil-safe no-ops so disabled worlds pay only a nil check.
type Rank struct {
	rank  int
	phase atomic.Pointer[string]
	mu    sync.Mutex
	sent  map[linkKey]*sentAcc
	rcvd  map[linkKey]*recvAcc
}

// SetPhase labels subsequent sends from this rank with the given phase
// (mrmpi calls it at every phase transition). Receives are labeled with the
// *sender's* phase, stamped on the message, so both sides of a link bucket
// consistently.
func (r *Rank) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.phase.Store(&phase)
}

// Phase returns the rank's current phase label ("" before the first
// SetPhase).
func (r *Rank) Phase() string {
	if r == nil {
		return ""
	}
	if p := r.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// RecordSend accounts one message handed to dst's mailbox under this rank's
// current phase. tag is accepted for symmetry with the recorded tuple but
// only negative/non-negative (collective vs p2p) would distinguish buckets;
// traffic is keyed by (peer, phase), which subsumes the distinction in
// practice because collectives run in their own phases. seq is the
// message's provenance ordinal on its (src, dst) link (0 when the runtime
// has no seq counters, i.e. both tracing and comm accounting are off —
// never the case on this path in practice).
func (r *Rank) RecordSend(dst, tag int, bytes int64, seq uint64) {
	if r == nil {
		return
	}
	k := linkKey{peer: dst, phase: r.Phase()}
	r.mu.Lock()
	a := r.sent[k]
	if a == nil {
		a = &sentAcc{}
		r.sent[k] = a
	}
	a.msgs++
	a.bytes += bytes
	if seq > a.maxSeq {
		a.maxSeq = seq
	}
	r.mu.Unlock()
}

// RecordRecv accounts one delivered message from src. phase is the sender's
// phase as stamped on the message; queueNS is delivery time minus send time
// (time spent buffered in the mailbox plus the receiver's lag), transferNS
// is delivery time minus the receiver's matching start (time the receiver
// actually waited inside Recv/Wait for this message; 0 for a Test poll that
// found it already queued). seq is the sender-stamped provenance ordinal
// (see RecordSend).
func (r *Rank) RecordRecv(src, tag int, bytes int64, queueNS, transferNS int64, seq uint64, phase string) {
	if r == nil {
		return
	}
	k := linkKey{peer: src, phase: phase}
	r.mu.Lock()
	a := r.rcvd[k]
	if a == nil {
		a = &recvAcc{}
		r.rcvd[k] = a
	}
	a.msgs++
	a.bytes += bytes
	a.queueNS += queueNS
	a.transferNS += transferNS
	if queueNS > a.maxQueueNS {
		a.maxQueueNS = queueNS
	}
	if seq > a.maxSeq {
		a.maxSeq = seq
	}
	a.addSample(Sample{Bytes: bytes, LatencyNS: queueNS})
	r.mu.Unlock()
}

// Finalize merges the per-rank accumulators into the world-level matrix.
// It is a snapshot, not a reset: calling it mid-run is safe and reflects
// traffic recorded so far. Matrix is an alias kept for call sites that read
// better one way or the other.
func (t *Tracker) Finalize() *Matrix { return t.Matrix() }

// Matrix merges and returns the world-level comm matrix. Nil tracker
// returns nil.
func (t *Tracker) Matrix() *Matrix {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ranks := make([]*Rank, len(t.ranks))
	copy(ranks, t.ranks)
	t.mu.Unlock()

	type pairKey struct {
		src, dst int
		phase    string
	}
	links := map[pairKey]*Link{}
	get := func(k pairKey) *Link {
		l := links[k]
		if l == nil {
			l = &Link{Src: k.src, Dst: k.dst, Phase: k.phase}
			links[k] = l
		}
		return l
	}
	numRanks := len(ranks)
	for _, r := range ranks {
		r.mu.Lock()
		for k, a := range r.sent {
			l := get(pairKey{src: r.rank, dst: k.peer, phase: k.phase})
			l.SentMsgs += a.msgs
			l.SentBytes += a.bytes
			if a.maxSeq > l.MaxSeqSent {
				l.MaxSeqSent = a.maxSeq
			}
			if k.peer+1 > numRanks {
				numRanks = k.peer + 1
			}
		}
		for k, a := range r.rcvd {
			l := get(pairKey{src: k.peer, dst: r.rank, phase: k.phase})
			l.Msgs += a.msgs
			l.Bytes += a.bytes
			l.QueueNS += a.queueNS
			l.TransferNS += a.transferNS
			if a.maxQueueNS > l.MaxQueueNS {
				l.MaxQueueNS = a.maxQueueNS
			}
			if a.maxSeq > l.MaxSeqRcvd {
				l.MaxSeqRcvd = a.maxSeq
			}
			l.Samples = append(l.Samples, a.samples...)
			if k.peer+1 > numRanks {
				numRanks = k.peer + 1
			}
		}
		r.mu.Unlock()
	}
	m := &Matrix{NumRanks: numRanks}
	for _, l := range links {
		m.Links = append(m.Links, *l)
	}
	m.sort()
	return m
}
