package comm

import "testing"

// Comm accounting sits inline in mpi's sendOp and recvMatch, the hottest
// paths in the runtime; when no tracker is installed the cost must be the
// same nil-check-and-return the tracer pays. The CI overhead gate runs this
// test next to the obs one.

var sinkPhase string

func BenchmarkDisabledRecordSend(b *testing.B) {
	var r *Rank
	for i := 0; i < b.N; i++ {
		r.RecordSend(1, 5, 128, uint64(i))
	}
}

func BenchmarkDisabledRecordRecv(b *testing.B) {
	var r *Rank
	for i := 0; i < b.N; i++ {
		r.RecordRecv(1, 5, 128, 100, 10, uint64(i), "map")
	}
}

func BenchmarkDisabledPhase(b *testing.B) {
	var r *Rank
	for i := 0; i < b.N; i++ {
		sinkPhase = r.Phase()
	}
}

func BenchmarkEnabledRecordSend(b *testing.B) {
	r := NewTracker().Rank(0)
	r.SetPhase("map")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordSend(1, 5, 128, uint64(i+1))
	}
}

func BenchmarkEnabledRecordRecv(b *testing.B) {
	r := NewTracker().Rank(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordRecv(1, 5, 128, 100, 10, uint64(i+1), "map")
	}
}

// TestDisabledPathOverhead gates the disabled comm-accounting path at the
// same ≤5ns bar as the tracer's (see internal/obs/bench_test.go). Skipped
// under the race detector, whose instrumentation skews absolute numbers.
func TestDisabledPathOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews ns/op; the gate runs in the non-race CI step")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkDisabledRecordSend)
	if ns := res.NsPerOp(); ns > 5 {
		t.Errorf("disabled RecordSend costs %dns/op, want <= 5ns/op", ns)
	}
	res = testing.Benchmark(BenchmarkDisabledRecordRecv)
	if ns := res.NsPerOp(); ns > 5 {
		t.Errorf("disabled RecordRecv costs %dns/op, want <= 5ns/op", ns)
	}
	res = testing.Benchmark(BenchmarkDisabledPhase)
	if ns := res.NsPerOp(); ns > 5 {
		t.Errorf("disabled Phase costs %dns/op, want <= 5ns/op", ns)
	}
}
