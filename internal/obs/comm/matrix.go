package comm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Sample is one (message size, queue latency) observation used by the α–β
// regression. Latency is queue time — send to delivery — because on this
// eager transport that is the end-to-end figure a real wire would charge.
type Sample struct {
	Bytes     int64 `json:"b"`
	LatencyNS int64 `json:"l"`
}

// Link is the merged traffic record for one (src, dst, phase) triple.
// Msgs/Bytes and the latency sums are receive-side (only delivered messages
// have latencies); SentMsgs/SentBytes are send-side. On a clean run the two
// sides agree per link; a shortfall (SentBytes > Bytes) means traffic was
// still in flight when the matrix was taken — on a post-mortem, the wedged
// messages themselves.
type Link struct {
	Src        int    `json:"src"`
	Dst        int    `json:"dst"`
	Phase      string `json:"phase"`
	Msgs       int64  `json:"msgs"`
	Bytes      int64  `json:"bytes"`
	SentMsgs   int64  `json:"sent_msgs"`
	SentBytes  int64  `json:"sent_bytes"`
	QueueNS    int64  `json:"queue_ns"`
	TransferNS int64  `json:"transfer_ns"`
	MaxQueueNS int64  `json:"max_queue_ns"`
	// MaxSeqSent/MaxSeqRcvd are the highest provenance seq observed on each
	// side of the link in this phase bucket. Seqs number the (src, dst)
	// link's messages across all phases, so per pair the max over phase
	// buckets equals the link's lifetime message count — SeqAlignment
	// cross-checks that against the msgs counters to catch double- or
	// under-counting in the accounting itself.
	MaxSeqSent uint64   `json:"max_seq_sent,omitempty"`
	MaxSeqRcvd uint64   `json:"max_seq_rcvd,omitempty"`
	Samples    []Sample `json:"samples,omitempty"`
}

// AvgQueue is the mean mailbox-queue latency of delivered messages.
func (l *Link) AvgQueue() time.Duration {
	if l.Msgs == 0 {
		return 0
	}
	return time.Duration(l.QueueNS / l.Msgs)
}

// Matrix is the world-level communication matrix: every (src, dst, phase)
// link with traffic, sorted by (src, dst, phase). It is self-contained and
// JSON-serializable; mrblast/mrsom write it with -comm and traceview -comm
// renders it.
type Matrix struct {
	NumRanks int    `json:"num_ranks"`
	Links    []Link `json:"links"`
}

func (m *Matrix) sort() {
	sort.Slice(m.Links, func(i, j int) bool {
		a, b := &m.Links[i], &m.Links[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Phase < b.Phase
	})
}

// Totals sums messages and bytes delivered across all links.
func (m *Matrix) Totals() (msgs, bytes int64) {
	for i := range m.Links {
		msgs += m.Links[i].Msgs
		bytes += m.Links[i].Bytes
	}
	return msgs, bytes
}

// PhaseTotal aggregates one phase's traffic across all links.
type PhaseTotal struct {
	Phase      string `json:"phase"`
	Msgs       int64  `json:"msgs"`
	Bytes      int64  `json:"bytes"`
	QueueNS    int64  `json:"queue_ns"`
	MaxQueueNS int64  `json:"max_queue_ns"`
}

// AvgQueue is the phase's mean delivered-message queue latency.
func (p *PhaseTotal) AvgQueue() time.Duration {
	if p.Msgs == 0 {
		return 0
	}
	return time.Duration(p.QueueNS / p.Msgs)
}

// PhaseTotals aggregates the matrix by phase, ordered by descending bytes.
func (m *Matrix) PhaseTotals() []PhaseTotal {
	byPhase := map[string]*PhaseTotal{}
	for i := range m.Links {
		l := &m.Links[i]
		p := byPhase[l.Phase]
		if p == nil {
			p = &PhaseTotal{Phase: l.Phase}
			byPhase[l.Phase] = p
		}
		p.Msgs += l.Msgs
		p.Bytes += l.Bytes
		p.QueueNS += l.QueueNS
		if l.MaxQueueNS > p.MaxQueueNS {
			p.MaxQueueNS = l.MaxQueueNS
		}
	}
	out := make([]PhaseTotal, 0, len(byPhase))
	for _, p := range byPhase {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// TopLinks returns the k heaviest links by delivered bytes (all of them if
// k <= 0 or exceeds the link count), heaviest first.
func (m *Matrix) TopLinks(k int) []Link {
	out := make([]Link, len(m.Links))
	copy(out, m.Links)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// PairBytes folds the matrix over phases into an NumRanks×NumRanks grid of
// delivered bytes, indexed [src][dst].
func (m *Matrix) PairBytes() [][]int64 {
	grid := make([][]int64, m.NumRanks)
	for i := range grid {
		grid[i] = make([]int64, m.NumRanks)
	}
	for i := range m.Links {
		l := &m.Links[i]
		if l.Src < m.NumRanks && l.Dst < m.NumRanks {
			grid[l.Src][l.Dst] += l.Bytes
		}
	}
	return grid
}

// Unaccounted lists links whose send-side counts exceed deliveries —
// traffic in flight (or wedged) when the matrix was taken.
func (m *Matrix) Unaccounted() []Link {
	var out []Link
	for i := range m.Links {
		l := m.Links[i]
		if l.SentMsgs > l.Msgs || l.SentBytes > l.Bytes {
			out = append(out, l)
		}
	}
	return out
}

// SeqSkew describes one (src, dst) pair whose message counters disagree
// with the provenance seq stream: the runtime stamped MaxSeq messages onto
// the link, but the accounting recorded a different number of sends or
// deliveries. SentMsgs < MaxSeq means sends went unrecorded; Msgs < MaxSeq
// with SentMsgs == MaxSeq is the ordinary in-flight shortfall Unaccounted
// already reports; Msgs > MaxSeq or SentMsgs > MaxSeq means double
// counting.
type SeqSkew struct {
	Src, Dst int
	MaxSeq   uint64
	SentMsgs int64
	Msgs     int64
}

// SeqAlignment cross-checks the per-link provenance seqs against the
// msgs counters, pair by pair (phases pooled — seqs number the whole
// link). Pairs without seqs (pre-provenance traces, or matrices recorded
// with accounting but not numbering) are skipped. An empty result means
// every counted pair aligns.
func (m *Matrix) SeqAlignment() []SeqSkew {
	type pair struct{ src, dst int }
	type agg struct {
		maxSeq     uint64
		sent, rcvd int64
	}
	pairs := map[pair]*agg{}
	for i := range m.Links {
		l := &m.Links[i]
		k := pair{l.Src, l.Dst}
		a := pairs[k]
		if a == nil {
			a = &agg{}
			pairs[k] = a
		}
		if l.MaxSeqSent > a.maxSeq {
			a.maxSeq = l.MaxSeqSent
		}
		if l.MaxSeqRcvd > a.maxSeq {
			a.maxSeq = l.MaxSeqRcvd
		}
		a.sent += l.SentMsgs
		a.rcvd += l.Msgs
	}
	var out []SeqSkew
	for k, a := range pairs {
		if a.maxSeq == 0 {
			continue
		}
		if a.sent != int64(a.maxSeq) || a.rcvd > int64(a.maxSeq) {
			out = append(out, SeqSkew{Src: k.src, Dst: k.dst, MaxSeq: a.maxSeq, SentMsgs: a.sent, Msgs: a.rcvd})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// AllSamples concatenates every link's regression samples.
func (m *Matrix) AllSamples() []Sample {
	var out []Sample
	for i := range m.Links {
		out = append(out, m.Links[i].Samples...)
	}
	return out
}

// WriteJSON serializes the matrix.
func (m *Matrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// ReadMatrix parses a matrix written by WriteJSON.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	var m Matrix
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("comm: parsing matrix: %w", err)
	}
	return &m, nil
}

// fmtBytes renders a byte count with a binary-ish human unit, stable enough
// for golden output.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// WriteReport renders the human-readable comm report: totals, per-phase
// aggregates, the src×dst byte grid, the top-k heaviest links, and the α–β
// model fit (global plus per-link when enough samples exist). This is the
// body of `traceview -comm`.
func (m *Matrix) WriteReport(w io.Writer, topK int) error {
	msgs, bytes := m.Totals()
	fmt.Fprintf(w, "comm matrix: %d ranks, %d links, %d msgs, %s delivered\n",
		m.NumRanks, len(m.Links), msgs, fmtBytes(bytes))

	if phases := m.PhaseTotals(); len(phases) > 0 {
		fmt.Fprintf(w, "\nper-phase totals:\n")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  phase\tmsgs\tbytes\tavg queue\tmax queue\n")
		for _, p := range phases {
			name := p.Phase
			if name == "" {
				name = "(none)"
			}
			fmt.Fprintf(tw, "  %s\t%d\t%s\t%v\t%v\n",
				name, p.Msgs, fmtBytes(p.Bytes), p.AvgQueue().Round(time.Microsecond),
				time.Duration(p.MaxQueueNS).Round(time.Microsecond))
		}
		tw.Flush()
	}

	if m.NumRanks > 0 {
		fmt.Fprintf(w, "\nbytes by rank pair (rows send, columns receive):\n")
		grid := m.PairBytes()
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintf(tw, "  \t")
		for d := 0; d < m.NumRanks; d++ {
			fmt.Fprintf(tw, "->%d\t", d)
		}
		fmt.Fprintln(tw)
		for s := 0; s < m.NumRanks; s++ {
			fmt.Fprintf(tw, "  %d\t", s)
			for d := 0; d < m.NumRanks; d++ {
				if grid[s][d] == 0 {
					fmt.Fprintf(tw, ".\t")
				} else {
					fmt.Fprintf(tw, "%s\t", fmtBytes(grid[s][d]))
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}

	if top := m.TopLinks(topK); len(top) > 0 {
		fmt.Fprintf(w, "\ntop %d links by bytes:\n", len(top))
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  link\tphase\tmsgs\tbytes\tavg queue\tmax queue\n")
		for i := range top {
			l := &top[i]
			phase := l.Phase
			if phase == "" {
				phase = "(none)"
			}
			fmt.Fprintf(tw, "  %d->%d\t%s\t%d\t%s\t%v\t%v\n",
				l.Src, l.Dst, phase, l.Msgs, fmtBytes(l.Bytes),
				l.AvgQueue().Round(time.Microsecond),
				time.Duration(l.MaxQueueNS).Round(time.Microsecond))
		}
		tw.Flush()
	}

	if skews := m.SeqAlignment(); len(skews) > 0 {
		fmt.Fprintf(w, "\nseq misalignment (provenance stream disagrees with counters):\n")
		for _, s := range skews {
			fmt.Fprintf(w, "  %d->%d: link carried %d msgs by seq, accounting saw %d sent / %d delivered\n",
				s.Src, s.Dst, s.MaxSeq, s.SentMsgs, s.Msgs)
		}
	}

	if lost := m.Unaccounted(); len(lost) > 0 {
		fmt.Fprintf(w, "\nin-flight (sent but not delivered when snapshotted):\n")
		for i := range lost {
			l := &lost[i]
			fmt.Fprintf(w, "  %d->%d phase=%s: %d msgs / %s sent, %d msgs / %s delivered\n",
				l.Src, l.Dst, l.Phase, l.SentMsgs, fmtBytes(l.SentBytes), l.Msgs, fmtBytes(l.Bytes))
		}
	}

	fmt.Fprintf(w, "\nα–β model fit (latency = α + bytes/bandwidth):\n")
	if fit, ok := FitAlphaBeta(m.AllSamples()); ok {
		fmt.Fprintf(w, "  global: %s\n", fit)
	} else {
		fmt.Fprintf(w, "  global: not enough samples\n")
	}
	if fits := m.FitPerLink(8); len(fits) > 0 {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, lf := range fits {
			fmt.Fprintf(tw, "  %d->%d\t%s\n", lf.Src, lf.Dst, lf.Fit.String())
		}
		tw.Flush()
	}
	return nil
}

// LinkFit pairs a rank pair with its fitted model.
type LinkFit struct {
	Src, Dst int
	Fit      Fit
}

// FitPerLink fits the α–β model separately for each (src, dst) pair with at
// least minSamples samples (phases pooled — the wire does not change between
// phases), ordered by (src, dst).
func (m *Matrix) FitPerLink(minSamples int) []LinkFit {
	type pair struct{ src, dst int }
	bySrcDst := map[pair][]Sample{}
	for i := range m.Links {
		l := &m.Links[i]
		k := pair{l.Src, l.Dst}
		bySrcDst[k] = append(bySrcDst[k], l.Samples...)
	}
	var out []LinkFit
	for k, samples := range bySrcDst {
		if len(samples) < minSamples {
			continue
		}
		if fit, ok := FitAlphaBeta(samples); ok {
			out = append(out, LinkFit{Src: k.src, Dst: k.dst, Fit: fit})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// WritePrometheus appends the matrix totals to a Prometheus text exposition:
// one bytes and one msgs counter per (src, dst, phase) link. The live
// server concatenates this after the registry's families.
func (m *Matrix) WritePrometheus(w io.Writer) error {
	if len(m.Links) == 0 {
		return nil
	}
	esc := func(s string) string {
		s = strings.ReplaceAll(s, `\`, `\\`)
		return strings.ReplaceAll(s, `"`, `\"`)
	}
	fmt.Fprintf(w, "# HELP mpi_comm_bytes_total bytes delivered per (src,dst,phase) link\n")
	fmt.Fprintf(w, "# TYPE mpi_comm_bytes_total counter\n")
	for i := range m.Links {
		l := &m.Links[i]
		fmt.Fprintf(w, "mpi_comm_bytes_total{src=\"%d\",dst=\"%d\",phase=\"%s\"} %d\n",
			l.Src, l.Dst, esc(l.Phase), l.Bytes)
	}
	fmt.Fprintf(w, "# HELP mpi_comm_msgs_total messages delivered per (src,dst,phase) link\n")
	fmt.Fprintf(w, "# TYPE mpi_comm_msgs_total counter\n")
	for i := range m.Links {
		l := &m.Links[i]
		fmt.Fprintf(w, "mpi_comm_msgs_total{src=\"%d\",dst=\"%d\",phase=\"%s\"} %d\n",
			l.Src, l.Dst, esc(l.Phase), l.Msgs)
	}
	// Receiver blocked-on time per link: the Prometheus face of the causal
	// blame table. TransferNS sums the time receivers actually waited inside
	// Recv/Wait for this link's messages, keyed by the phase that *sent*
	// them — scrape two links' series and you see which peer and phase a
	// rank's stalls charge to.
	fmt.Fprintf(w, "# HELP mpi_recv_wait_seconds_total seconds receivers spent blocked waiting on each (src,dst,phase) link\n")
	fmt.Fprintf(w, "# TYPE mpi_recv_wait_seconds_total counter\n")
	for i := range m.Links {
		l := &m.Links[i]
		fmt.Fprintf(w, "mpi_recv_wait_seconds_total{src=\"%d\",dst=\"%d\",phase=\"%s\"} %g\n",
			l.Src, l.Dst, esc(l.Phase), float64(l.TransferNS)/1e9)
	}
	return nil
}
