package comm

import (
	"fmt"
	"math"
	"time"
)

// Fit is a fitted α–β (Hockney) cost model: latency = α + β·bytes, where α
// is the per-message startup cost and 1/β the bandwidth. RMSResidualNS and
// R2 qualify the fit — on an in-process transport with scheduler noise a
// low R² is information, not an error.
type Fit struct {
	N             int     `json:"n"`
	AlphaNS       float64 `json:"alpha_ns"`
	BetaNSPerByte float64 `json:"beta_ns_per_byte"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	RMSResidualNS float64 `json:"rms_residual_ns"`
	R2            float64 `json:"r2"`
}

// String renders the fit in the units people quote: α in time units,
// bandwidth in MB/s.
func (f Fit) String() string {
	bw := "∞"
	if f.BandwidthMBps > 0 {
		bw = fmt.Sprintf("%.0f MB/s", f.BandwidthMBps)
	}
	return fmt.Sprintf("α=%v bandwidth=%s (n=%d, rms residual %v, R²=%.3f)",
		time.Duration(f.AlphaNS).Round(10*time.Nanosecond), bw, f.N,
		time.Duration(f.RMSResidualNS).Round(10*time.Nanosecond), f.R2)
}

// FitAlphaBeta least-squares-fits latency = α + β·bytes over the samples.
// It needs at least two samples spanning at least two distinct message
// sizes; otherwise (and when the fit degenerates) ok is false. A negative
// fitted α (possible when large messages happened to be measured on a warm
// path) is clamped to 0, with residuals computed against the clamped model.
func FitAlphaBeta(samples []Sample) (fit Fit, ok bool) {
	n := len(samples)
	if n < 2 {
		return Fit{}, false
	}
	var sumX, sumY float64
	for _, s := range samples {
		sumX += float64(s.Bytes)
		sumY += float64(s.LatencyNS)
	}
	meanX := sumX / float64(n)
	meanY := sumY / float64(n)
	var sxx, sxy, syy float64
	for _, s := range samples {
		dx := float64(s.Bytes) - meanX
		dy := float64(s.LatencyNS) - meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		// Every sample the same size: slope is unidentifiable.
		return Fit{}, false
	}
	beta := sxy / sxx
	alpha := meanY - beta*meanX
	if alpha < 0 {
		alpha = 0
	}
	if beta < 0 {
		// Latency decreasing with size is pure noise; report a flat model so
		// the bandwidth column reads "∞" rather than a negative number.
		beta = 0
		alpha = meanY
	}
	var ssRes float64
	for _, s := range samples {
		r := float64(s.LatencyNS) - (alpha + beta*float64(s.Bytes))
		ssRes += r * r
	}
	r2 := 1.0
	if syy > 0 {
		r2 = 1 - ssRes/syy
	}
	fit = Fit{
		N:             n,
		AlphaNS:       alpha,
		BetaNSPerByte: beta,
		RMSResidualNS: math.Sqrt(ssRes / float64(n)),
		R2:            r2,
	}
	if beta > 0 {
		// β is ns/byte; 1/β is bytes/ns = GB/s·1e0 → MB/s = 1000/β.
		fit.BandwidthMBps = 1000 / beta
	}
	return fit, true
}
