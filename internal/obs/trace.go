// Package obs is the observability spine of the reproduction: per-rank
// structured tracing plus a unified metrics registry, built from the
// standard library only.
//
// Tracing. A Tracer owns one event buffer per MPI rank. Ranks record typed
// span events — Begin/End pairs and Instants, each with a category, a name,
// and optional key-value args — into their own buffer only, so tracing a
// multi-rank run needs no cross-rank synchronization beyond the final merge.
// Buffers are mutex-guarded because a single rank may run map tasks
// concurrently. The merged stream exports to Chrome trace_event JSON
// (loadable in Perfetto or chrome://tracing, one track per rank) and to a
// plain-text per-phase summary table.
//
// Metrics. A Registry holds named counters, gauges, and histograms that
// supersede the ad-hoc per-layer stats structs (mrmpi.Stats,
// blast.EngineStats, blastdb.CacheStats): each layer publishes into the one
// registry and a single Snapshot shows the whole stack.
//
// Everything is nil-safe: a nil *Tracer yields nil *RankTracer handles, a
// nil *Registry yields nil instruments, and every method on those nils is a
// no-op costing a few nanoseconds (benchmarked in bench_test.go and gated
// in CI), so instrumented hot paths pay nothing when observability is off.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EventType distinguishes the three trace record kinds.
type EventType byte

const (
	// BeginEvent opens a span.
	BeginEvent EventType = 'B'
	// EndEvent closes the innermost matching span.
	EndEvent EventType = 'E'
	// InstantEvent marks a point in time with no duration.
	InstantEvent EventType = 'I'
)

// Arg is one key-value annotation on an event (e.g. {"tag", 5}).
type Arg struct {
	Key string
	Val any
}

// Event is one trace record. TS is nanoseconds since the tracer's start on
// the tracer's single monotonic clock, so events from different ranks are
// directly comparable.
type Event struct {
	Type EventType
	Rank int
	Cat  string
	Name string
	TS   int64
	Args []Arg
}

// Tracer collects span events from all ranks of one run. Create one per
// run, hand each rank its Rank(r) handle, and export after the run with
// WriteChromeTrace or Summarize(Events()).
type Tracer struct {
	start time.Time
	mu    sync.Mutex
	ranks []*RankTracer
}

// NewTracer creates an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Rank returns the buffer handle for rank r, creating it on first use. A
// nil Tracer returns a nil handle, whose methods are all no-ops — the
// disabled fast path.
func (t *Tracer) Rank(r int) *RankTracer {
	if t == nil || r < 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.ranks) <= r {
		t.ranks = append(t.ranks, &RankTracer{t: t, rank: len(t.ranks)})
	}
	return t.ranks[r]
}

// Events merges every rank's buffer into one stream ordered by timestamp,
// preserving each rank's internal order (the merge is stable). Safe to call
// while ranks are still tracing; it snapshots.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ranks := append([]*RankTracer(nil), t.ranks...)
	t.mu.Unlock()
	var all []Event
	for _, rt := range ranks {
		rt.mu.Lock()
		all = append(all, rt.events...)
		rt.mu.Unlock()
	}
	// Within a rank timestamps are non-decreasing, so a stable sort by TS
	// keeps every rank's own order intact.
	stableSortByTS(all)
	return all
}

// NumRanks reports how many rank buffers exist.
func (t *Tracer) NumRanks() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ranks)
}

// RankTracer is one rank's event buffer. All methods are safe for
// concurrent use (map tasks on a rank may run concurrently) and safe on a
// nil receiver.
type RankTracer struct {
	t      *Tracer
	rank   int
	mu     sync.Mutex
	events []Event
	open   []openSpan // in-flight spans, innermost last
	nextID uint64
}

// openSpan tracks one in-flight Begin for End matching and for the MPI
// deadlock watchdog's in-flight report.
type openSpan struct {
	id        uint64
	cat, name string
	since     int64
}

// Span is the token returned by Begin; call End exactly once. The zero Span
// (and any Span from a nil RankTracer) is a valid no-op.
type Span struct {
	rt *RankTracer
	id uint64
}

func (rt *RankTracer) now() int64 { return int64(time.Since(rt.t.start)) }

// Begin opens a span. Callers on hot paths should guard with a nil check
// before building args, so the disabled path allocates nothing.
func (rt *RankTracer) Begin(cat, name string, args ...Arg) Span {
	if rt == nil {
		return Span{}
	}
	rt.mu.Lock()
	ts := rt.now()
	rt.nextID++
	id := rt.nextID
	rt.events = append(rt.events, Event{Type: BeginEvent, Rank: rt.rank, Cat: cat, Name: name, TS: ts, Args: args})
	rt.open = append(rt.open, openSpan{id: id, cat: cat, name: name, since: ts})
	rt.mu.Unlock()
	return Span{rt: rt, id: id}
}

// Active reports whether the span records anywhere — false for the zero
// Span and spans from a nil RankTracer. Hot paths check it before building
// End args so the disabled path allocates nothing.
func (s Span) Active() bool { return s.rt != nil }

// End closes the span, emitting the matching EndEvent. Ending a span twice
// (e.g. an explicit End shadowed by a deferred one) is a no-op the second
// time.
func (s Span) End(args ...Arg) {
	rt := s.rt
	if rt == nil {
		return
	}
	rt.mu.Lock()
	for i := len(rt.open) - 1; i >= 0; i-- {
		if rt.open[i].id != s.id {
			continue
		}
		ev := Event{Type: EndEvent, Rank: rt.rank, Cat: rt.open[i].cat, Name: rt.open[i].name, TS: rt.now(), Args: args}
		rt.open = append(rt.open[:i], rt.open[i+1:]...)
		rt.events = append(rt.events, ev)
		break
	}
	rt.mu.Unlock()
}

// CurrentSpanID returns the id of this rank's innermost open span, or 0
// when no span is open (or on a nil receiver — the disabled fast path).
// Span ids are per-rank ordinals: the k-th Begin on a rank gets id k, so a
// consumer replaying a rank's Begin events in order recovers the id→span
// mapping with no schema change. The MPI runtime piggybacks this id on
// outgoing messages so the causal stitcher (internal/obs/causal) can name
// the exact sender span that released a blocked receiver.
func (rt *RankTracer) CurrentSpanID() uint64 {
	if rt == nil {
		return 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.open) == 0 {
		return 0
	}
	return rt.open[len(rt.open)-1].id
}

// Instant records a point event.
func (rt *RankTracer) Instant(cat, name string, args ...Arg) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.events = append(rt.events, Event{Type: InstantEvent, Rank: rt.rank, Cat: cat, Name: name, TS: rt.now(), Args: args})
	rt.mu.Unlock()
}

// InFlight describes this rank's innermost open span ("mpi:Recv, open
// 1.2s") or "idle". The MPI deadlock watchdog includes it per rank in
// timeout diagnostics, naming what each rank was blocked inside.
func (rt *RankTracer) InFlight() string {
	if rt == nil {
		return ""
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.open) == 0 {
		return "idle"
	}
	sp := rt.open[len(rt.open)-1]
	age := time.Duration(rt.now() - sp.since).Round(time.Millisecond)
	return fmt.Sprintf("in %s:%s, open %v", sp.cat, sp.name, age)
}

// stableSortByTS orders a concatenation of already-sorted per-rank runs by
// timestamp; stability keeps each rank's own event order intact.
func stableSortByTS(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
}
