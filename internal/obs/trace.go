// Package obs is the observability spine of the reproduction: per-rank
// structured tracing plus a unified metrics registry, built from the
// standard library only.
//
// Tracing. A Tracer owns one event buffer per MPI rank. Ranks record typed
// span events — Begin/End pairs and Instants, each with a category, a name,
// and optional key-value args — into their own buffer only, so tracing a
// multi-rank run needs no cross-rank synchronization beyond the final merge.
// Buffers are mutex-guarded because a single rank may run map tasks
// concurrently. The merged stream exports to Chrome trace_event JSON
// (loadable in Perfetto or chrome://tracing, one track per rank) and to a
// plain-text per-phase summary table.
//
// Metrics. A Registry holds named counters, gauges, and histograms that
// supersede the ad-hoc per-layer stats structs (mrmpi.Stats,
// blast.EngineStats, blastdb.CacheStats): each layer publishes into the one
// registry and a single Snapshot shows the whole stack.
//
// Everything is nil-safe: a nil *Tracer yields nil *RankTracer handles, a
// nil *Registry yields nil instruments, and every method on those nils is a
// no-op costing a few nanoseconds (benchmarked in bench_test.go and gated
// in CI), so instrumented hot paths pay nothing when observability is off.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EventType distinguishes the three trace record kinds.
type EventType byte

const (
	// BeginEvent opens a span.
	BeginEvent EventType = 'B'
	// EndEvent closes the innermost matching span.
	EndEvent EventType = 'E'
	// InstantEvent marks a point in time with no duration.
	InstantEvent EventType = 'I'
)

// Arg is one key-value annotation on an event (e.g. {"tag", 5}).
type Arg struct {
	Key string
	Val any
}

// Event is one trace record. TS is nanoseconds since the tracer's start on
// the tracer's single monotonic clock, so events from different ranks are
// directly comparable. Track distinguishes concurrent span stacks within a
// rank: 0 is the rank's own goroutine, track w+1 is intra-rank map-task
// worker w (see RankTracer.Worker).
type Event struct {
	Type  EventType
	Rank  int
	Track int
	Cat   string
	Name  string
	TS    int64
	Args  []Arg
}

// Tracer collects span events from all ranks of one run. Create one per
// run, hand each rank its Rank(r) handle, and export after the run with
// WriteChromeTrace or Summarize(Events()).
type Tracer struct {
	start time.Time
	mu    sync.Mutex
	ranks []*RankTracer
}

// NewTracer creates an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Rank returns the buffer handle for rank r, creating it on first use. A
// nil Tracer returns a nil handle, whose methods are all no-ops — the
// disabled fast path.
func (t *Tracer) Rank(r int) *RankTracer {
	if t == nil || r < 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.ranks) <= r {
		t.ranks = append(t.ranks, &RankTracer{st: &rankState{t: t, rank: len(t.ranks)}})
	}
	return t.ranks[r]
}

// Events merges every rank's buffer into one stream ordered by timestamp,
// preserving each rank's internal order (the merge is stable). Safe to call
// while ranks are still tracing; it snapshots.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ranks := append([]*RankTracer(nil), t.ranks...)
	t.mu.Unlock()
	var all []Event
	for _, rt := range ranks {
		rt.st.mu.Lock()
		all = append(all, rt.st.events...)
		rt.st.mu.Unlock()
	}
	// Within a rank timestamps are non-decreasing, so a stable sort by TS
	// keeps every rank's own order intact.
	stableSortByTS(all)
	return all
}

// NumRanks reports how many rank buffers exist.
func (t *Tracer) NumRanks() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ranks)
}

// RankTracer is a handle onto one track of one rank's event buffer. All
// methods are safe for concurrent use (map tasks on a rank may run
// concurrently) and safe on a nil receiver. The handle Tracer.Rank returns
// records on track 0 (the rank's own goroutine); Worker derives handles for
// intra-rank worker tracks that share the same buffer, id space, and clock.
type RankTracer struct {
	st    *rankState
	track int
}

// rankState is the buffer shared by every track handle of one rank.
type rankState struct {
	t      *Tracer
	rank   int
	mu     sync.Mutex
	events []Event
	open   []openSpan // in-flight spans, per track innermost last
	nextID uint64
}

// Worker returns a derived handle that records onto this rank's worker
// track w (w ≥ 0): events share the rank's buffer, span-id space, and clock
// but carry Track w+1, so the spans of concurrent intra-rank map-task
// workers nest within their own track instead of interleaving — and
// breaking LIFO validation — on the rank track. Calling Worker on a nil
// handle (tracing disabled) or with negative w returns the receiver.
func (rt *RankTracer) Worker(w int) *RankTracer {
	if rt == nil || w < 0 {
		return rt
	}
	return &RankTracer{st: rt.st, track: w + 1}
}

// openSpan tracks one in-flight Begin for End matching and for the MPI
// deadlock watchdog's in-flight report.
type openSpan struct {
	id        uint64
	track     int
	cat, name string
	since     int64
}

// Span is the token returned by Begin; call End exactly once. The zero Span
// (and any Span from a nil RankTracer) is a valid no-op.
type Span struct {
	rt *RankTracer
	id uint64
}

func (st *rankState) now() int64 { return int64(time.Since(st.t.start)) }

// Begin opens a span. Callers on hot paths should guard with a nil check
// before building args, so the disabled path allocates nothing.
func (rt *RankTracer) Begin(cat, name string, args ...Arg) Span {
	if rt == nil {
		return Span{}
	}
	st := rt.st
	st.mu.Lock()
	ts := st.now()
	st.nextID++
	id := st.nextID
	st.events = append(st.events, Event{Type: BeginEvent, Rank: st.rank, Track: rt.track, Cat: cat, Name: name, TS: ts, Args: args})
	st.open = append(st.open, openSpan{id: id, track: rt.track, cat: cat, name: name, since: ts})
	st.mu.Unlock()
	return Span{rt: rt, id: id}
}

// Active reports whether the span records anywhere — false for the zero
// Span and spans from a nil RankTracer. Hot paths check it before building
// End args so the disabled path allocates nothing.
func (s Span) Active() bool { return s.rt != nil }

// End closes the span, emitting the matching EndEvent. Ending a span twice
// (e.g. an explicit End shadowed by a deferred one) is a no-op the second
// time.
func (s Span) End(args ...Arg) {
	rt := s.rt
	if rt == nil {
		return
	}
	st := rt.st
	st.mu.Lock()
	for i := len(st.open) - 1; i >= 0; i-- {
		if st.open[i].id != s.id {
			continue
		}
		ev := Event{Type: EndEvent, Rank: st.rank, Track: st.open[i].track, Cat: st.open[i].cat, Name: st.open[i].name, TS: st.now(), Args: args}
		st.open = append(st.open[:i], st.open[i+1:]...)
		st.events = append(st.events, ev)
		break
	}
	st.mu.Unlock()
}

// CurrentSpanID returns the id of this track's innermost open span, or 0
// when no span is open (or on a nil receiver — the disabled fast path).
// Span ids are per-rank ordinals shared by all tracks: the k-th Begin on a
// rank gets id k, so a consumer replaying a rank's Begin events in order
// recovers the id→span mapping with no schema change. The MPI runtime
// piggybacks this id on outgoing messages so the causal stitcher
// (internal/obs/causal) can name the exact sender span that released a
// blocked receiver; comm happens only on the rank goroutine (track 0), so
// worker spans never leak into piggybacked ids.
func (rt *RankTracer) CurrentSpanID() uint64 {
	if rt == nil {
		return 0
	}
	st := rt.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.open) - 1; i >= 0; i-- {
		if st.open[i].track == rt.track {
			return st.open[i].id
		}
	}
	return 0
}

// Instant records a point event.
func (rt *RankTracer) Instant(cat, name string, args ...Arg) {
	if rt == nil {
		return
	}
	st := rt.st
	st.mu.Lock()
	st.events = append(st.events, Event{Type: InstantEvent, Rank: st.rank, Track: rt.track, Cat: cat, Name: name, TS: st.now(), Args: args})
	st.mu.Unlock()
}

// InFlight describes this track's innermost open span ("mpi:Recv, open
// 1.2s") or "idle". The MPI deadlock watchdog includes it per rank in
// timeout diagnostics, naming what each rank was blocked inside.
func (rt *RankTracer) InFlight() string {
	if rt == nil {
		return ""
	}
	st := rt.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.open) - 1; i >= 0; i-- {
		if st.open[i].track != rt.track {
			continue
		}
		sp := st.open[i]
		age := time.Duration(st.now() - sp.since).Round(time.Millisecond)
		return fmt.Sprintf("in %s:%s, open %v", sp.cat, sp.name, age)
	}
	return "idle"
}

// stableSortByTS orders a concatenation of already-sorted per-rank runs by
// timestamp; stability keeps each rank's own event order intact.
func stableSortByTS(events []Event) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
}
