package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycleAndMerge(t *testing.T) {
	tr := NewTracer()
	r0 := tr.Rank(0)
	r1 := tr.Rank(1)

	sp := r0.Begin("mrmpi", "map", Arg{Key: "tasks", Val: 4})
	inner := r0.Begin("mrmpi", "map.task")
	inner.End()
	sp.End()
	r1.Instant("mpi", "Send", Arg{Key: "dst", Val: 0})

	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	if err := Validate(events); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	// Per-rank timestamps must be non-decreasing after the merge.
	last := map[int]int64{}
	for _, ev := range events {
		if ev.TS < last[ev.Rank] {
			t.Fatalf("rank %d timestamps went backwards", ev.Rank)
		}
		last[ev.Rank] = ev.TS
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(0)
	sp := rt.Begin("c", "n")
	sp.End()
	sp.End() // deferred End after explicit End must not emit a second E
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (double End must be a no-op)", len(events))
	}
	if err := Validate(events); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	rt := tr.Rank(3)
	if rt != nil {
		t.Fatal("nil tracer must hand out nil rank handles")
	}
	sp := rt.Begin("c", "n")
	sp.End()
	rt.Instant("c", "n")
	if rt.InFlight() != "" {
		t.Fatal("nil rank tracer must report empty in-flight")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer produced events: %v", got)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(2)
	sp := rt.Begin("mrmpi", "aggregate", Arg{Key: "sent", Val: 123})
	time.Sleep(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The file must be plain JSON with a traceEvents array.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if _, ok := raw["traceEvents"].([]any); !ok {
		t.Fatal("missing traceEvents array")
	}

	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("round trip kept %d events, want 2", len(events))
	}
	b := events[0]
	if b.Type != BeginEvent || b.Rank != 2 || b.Cat != "mrmpi" || b.Name != "aggregate" {
		t.Fatalf("bad begin event after round trip: %+v", b)
	}
	if len(b.Args) != 1 || b.Args[0].Key != "sent" {
		t.Fatalf("args lost in round trip: %+v", b.Args)
	}
}

func TestValidateCatchesMisuse(t *testing.T) {
	base := func() (*Tracer, *RankTracer) {
		tr := NewTracer()
		return tr, tr.Rank(0)
	}

	tr, rt := base()
	// mpilint:ignore — deliberately unclosed span to provoke Validate.
	rt.Begin("c", "unclosed")
	if err := Validate(tr.Events()); err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("unclosed span not caught: %v", err)
	}

	// An E with no open span.
	bad := []Event{{Type: EndEvent, Rank: 0, Cat: "c", Name: "n", TS: 1}}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "no span open") {
		t.Fatalf("stray end not caught: %v", err)
	}

	// Mismatched nesting.
	bad = []Event{
		{Type: BeginEvent, Rank: 0, Cat: "c", Name: "outer", TS: 1},
		{Type: BeginEvent, Rank: 0, Cat: "c", Name: "inner", TS: 2},
		{Type: EndEvent, Rank: 0, Cat: "c", Name: "outer", TS: 3},
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "innermost") {
		t.Fatalf("misnesting not caught: %v", err)
	}

	// A clock running backwards.
	bad = []Event{
		{Type: InstantEvent, Rank: 0, Cat: "c", Name: "a", TS: 5},
		{Type: InstantEvent, Rank: 0, Cat: "c", Name: "b", TS: 4},
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("clock regression not caught: %v", err)
	}
}

func TestSummarizeAndTopSlowest(t *testing.T) {
	events := []Event{
		{Type: BeginEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 0},
		{Type: EndEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 100},
		{Type: BeginEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 200},
		{Type: EndEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 500},
		{Type: BeginEvent, Rank: 1, Cat: "mrmpi", Name: "reduce", TS: 0},
		{Type: EndEvent, Rank: 1, Cat: "mrmpi", Name: "reduce", TS: 50},
	}
	stats := Summarize(events)
	if len(stats) != 2 {
		t.Fatalf("got %d stat rows, want 2", len(stats))
	}
	m := stats[0]
	if m.Rank != 0 || m.Name != "map" || m.Count != 2 || m.Total != 400 || m.Max != 300 || m.Mean() != 200 {
		t.Fatalf("bad map stats: %+v", m)
	}
	top := TopSlowest(events, 2)
	if len(top) != 2 || top[0].Dur != 300 || top[0].Name != "map" {
		t.Fatalf("bad top spans: %+v", top)
	}

	var buf bytes.Buffer
	if err := WriteSummaryTable(&buf, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mrmpi:map") || !strings.Contains(buf.String(), "mrmpi:reduce") {
		t.Fatalf("summary table missing rows:\n%s", buf.String())
	}
}

// TestConcurrentSameRankBuffer drives one rank buffer from many goroutines
// at once — the shape of concurrent map tasks tracing on a shared rank —
// and is run under -race by `make test` and CI.
func TestConcurrentSameRankBuffer(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(0)
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := rt.Begin("test", "task")
				rt.Instant("test", "tick")
				sp.End()
				_ = rt.InFlight()
			}
		}()
	}
	wg.Wait()
	if got, want := len(tr.Events()), workers*iters*3; got != want {
		t.Fatalf("got %d events, want %d", got, want)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Inc()
	r.Gauge("b.level").Set(7)
	r.Histogram("c.dur").Observe(2)
	r.Histogram("c.dur").Observe(4)

	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 4 {
		t.Fatalf("bad counters: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 7 {
		t.Fatalf("bad gauges: %+v", s.Gauges)
	}
	h := s.Histograms[0]
	if h.Count != 2 || h.Sum != 6 || h.Min != 2 || h.Max != 4 || h.Mean() != 3 {
		t.Fatalf("bad histogram: %+v", h)
	}

	var buf bytes.Buffer
	if err := s.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a.count") {
		t.Fatalf("metrics table missing counter:\n%s", buf.String())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}
