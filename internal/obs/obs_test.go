package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycleAndMerge(t *testing.T) {
	tr := NewTracer()
	r0 := tr.Rank(0)
	r1 := tr.Rank(1)

	sp := r0.Begin("mrmpi", "map", Arg{Key: "tasks", Val: 4})
	inner := r0.Begin("mrmpi", "map.task")
	inner.End()
	sp.End()
	r1.Instant("mpi", "Send", Arg{Key: "dst", Val: 0})

	events := tr.Events()
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	if err := Validate(events); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	// Per-rank timestamps must be non-decreasing after the merge.
	last := map[int]int64{}
	for _, ev := range events {
		if ev.TS < last[ev.Rank] {
			t.Fatalf("rank %d timestamps went backwards", ev.Rank)
		}
		last[ev.Rank] = ev.TS
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(0)
	sp := rt.Begin("c", "n")
	sp.End()
	sp.End() // deferred End after explicit End must not emit a second E
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (double End must be a no-op)", len(events))
	}
	if err := Validate(events); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	rt := tr.Rank(3)
	if rt != nil {
		t.Fatal("nil tracer must hand out nil rank handles")
	}
	sp := rt.Begin("c", "n")
	sp.End()
	rt.Instant("c", "n")
	if rt.InFlight() != "" {
		t.Fatal("nil rank tracer must report empty in-flight")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer produced events: %v", got)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(2)
	sp := rt.Begin("mrmpi", "aggregate", Arg{Key: "sent", Val: 123})
	time.Sleep(time.Millisecond)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The file must be plain JSON with a traceEvents array.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if _, ok := raw["traceEvents"].([]any); !ok {
		t.Fatal("missing traceEvents array")
	}

	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("round trip kept %d events, want 2", len(events))
	}
	b := events[0]
	if b.Type != BeginEvent || b.Rank != 2 || b.Cat != "mrmpi" || b.Name != "aggregate" {
		t.Fatalf("bad begin event after round trip: %+v", b)
	}
	if len(b.Args) != 1 || b.Args[0].Key != "sent" {
		t.Fatalf("args lost in round trip: %+v", b.Args)
	}
}

func TestValidateCatchesMisuse(t *testing.T) {
	base := func() (*Tracer, *RankTracer) {
		tr := NewTracer()
		return tr, tr.Rank(0)
	}

	tr, rt := base()
	// mpilint:ignore obslint -- deliberately unclosed span to provoke Validate.
	rt.Begin("c", "unclosed")
	if err := Validate(tr.Events()); err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("unclosed span not caught: %v", err)
	}

	// An E with no open span.
	bad := []Event{{Type: EndEvent, Rank: 0, Cat: "c", Name: "n", TS: 1}}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "no span open") {
		t.Fatalf("stray end not caught: %v", err)
	}

	// Mismatched nesting.
	bad = []Event{
		{Type: BeginEvent, Rank: 0, Cat: "c", Name: "outer", TS: 1},
		{Type: BeginEvent, Rank: 0, Cat: "c", Name: "inner", TS: 2},
		{Type: EndEvent, Rank: 0, Cat: "c", Name: "outer", TS: 3},
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "innermost") {
		t.Fatalf("misnesting not caught: %v", err)
	}

	// A clock running backwards.
	bad = []Event{
		{Type: InstantEvent, Rank: 0, Cat: "c", Name: "a", TS: 5},
		{Type: InstantEvent, Rank: 0, Cat: "c", Name: "b", TS: 4},
	}
	if err := Validate(bad); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("clock regression not caught: %v", err)
	}
}

func TestSummarizeAndTopSlowest(t *testing.T) {
	events := []Event{
		{Type: BeginEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 0},
		{Type: EndEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 100},
		{Type: BeginEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 200},
		{Type: EndEvent, Rank: 0, Cat: "mrmpi", Name: "map", TS: 500},
		{Type: BeginEvent, Rank: 1, Cat: "mrmpi", Name: "reduce", TS: 0},
		{Type: EndEvent, Rank: 1, Cat: "mrmpi", Name: "reduce", TS: 50},
	}
	stats := Summarize(events)
	if len(stats) != 2 {
		t.Fatalf("got %d stat rows, want 2", len(stats))
	}
	m := stats[0]
	if m.Rank != 0 || m.Name != "map" || m.Count != 2 || m.Total != 400 || m.Max != 300 || m.Mean() != 200 {
		t.Fatalf("bad map stats: %+v", m)
	}
	top := TopSlowest(events, 2)
	if len(top) != 2 || top[0].Dur != 300 || top[0].Name != "map" {
		t.Fatalf("bad top spans: %+v", top)
	}

	var buf bytes.Buffer
	if err := WriteSummaryTable(&buf, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mrmpi:map") || !strings.Contains(buf.String(), "mrmpi:reduce") {
		t.Fatalf("summary table missing rows:\n%s", buf.String())
	}
}

// TestConcurrentSameRankBuffer drives one rank buffer from many goroutines
// at once — the shape of concurrent map tasks tracing on a shared rank —
// and is run under -race by `make test` and CI.
func TestConcurrentSameRankBuffer(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(0)
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := rt.Begin("test", "task")
				rt.Instant("test", "tick")
				sp.End()
				_ = rt.InFlight()
			}
		}()
	}
	wg.Wait()
	if got, want := len(tr.Events()), workers*iters*3; got != want {
		t.Fatalf("got %d events, want %d", got, want)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Counter("a.count").Inc()
	r.Gauge("b.level").Set(7)
	r.Histogram("c.dur").Observe(2)
	r.Histogram("c.dur").Observe(4)

	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 4 {
		t.Fatalf("bad counters: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 7 {
		t.Fatalf("bad gauges: %+v", s.Gauges)
	}
	h := s.Histograms[0]
	if h.Count != 2 || h.Sum != 6 || h.Min != 2 || h.Max != 4 || h.Mean() != 3 {
		t.Fatalf("bad histogram: %+v", h)
	}

	var buf bytes.Buffer
	if err := s.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a.count") {
		t.Fatalf("metrics table missing counter:\n%s", buf.String())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}

// TestHistogramQuantiles: with fewer observations than the sample cap the
// buffer holds the full stream, so quantiles are exact order statistics.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 1..100 in a scrambled but deterministic order.
	for i := 0; i < 100; i++ {
		h.Observe(float64((i*37)%100 + 1))
	}
	hv := r.Snapshot().Histograms[0]
	if hv.Count != 100 {
		t.Fatalf("count = %d, want 100", hv.Count)
	}
	if hv.P50 != 50.5 {
		t.Errorf("p50 = %g, want 50.5", hv.P50)
	}
	if hv.P95 < 95 || hv.P95 > 96 {
		t.Errorf("p95 = %g, want in [95,96]", hv.P95)
	}
	if hv.P99 < 99 || hv.P99 > 100 {
		t.Errorf("p99 = %g, want in [99,100]", hv.P99)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics table missing %q:\n%s", want, buf.String())
		}
	}
}

// TestHistogramDecimation pushes far past the sample cap: count/sum stay
// exact and quantile estimates stay close on a uniform stream.
func TestHistogramDecimation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("big")
	const n = 40_000
	for i := 0; i < n; i++ {
		h.Observe(float64(i % 1000))
	}
	hv := r.Snapshot().Histograms[0]
	if hv.Count != n {
		t.Fatalf("count = %d, want %d", hv.Count, n)
	}
	if hv.Min != 0 || hv.Max != 999 {
		t.Errorf("min/max = %g/%g, want 0/999", hv.Min, hv.Max)
	}
	if hv.P50 < 400 || hv.P50 > 600 {
		t.Errorf("decimated p50 = %g, want ~500", hv.P50)
	}
	if hv.P99 < 950 {
		t.Errorf("decimated p99 = %g, want >= 950", hv.P99)
	}
}

// TestQuantileEdges covers the shared quantile helper directly.
func TestQuantileEdges(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	s := []float64{10}
	if Quantile(s, 0) != 10 || Quantile(s, 0.5) != 10 || Quantile(s, 1) != 10 {
		t.Error("single-sample quantiles must all be the sample")
	}
	s = []float64{0, 10}
	if got := Quantile(s, 0.25); got != 2.5 {
		t.Errorf("interpolated quantile = %g, want 2.5", got)
	}
}

// TestBoardPublishes exercises the live status board: per-rank slots update
// independently and render into both RankState and its text form.
func TestBoardPublishes(t *testing.T) {
	b := NewBoard()
	r0 := b.Rank(0)
	r1 := b.Rank(1)
	r0.SetPhase("map")
	r0.BeginTasks(8)
	r0.TaskDone()
	r0.TaskDone()
	r0.SetKVBytes(512)
	r1.SetPhase("aggregate")
	r1.AddExchange(100, 200)
	r1.SetEpoch(3)

	states := b.Snapshot(nil)
	if len(states) != 2 {
		t.Fatalf("snapshot has %d ranks, want 2", len(states))
	}
	if states[0].Phase != "map" || states[0].TasksDone != 2 || states[0].TasksTotal != 8 {
		t.Errorf("rank 0 state = %+v", states[0])
	}
	if states[0].KVBytes != 512 {
		t.Errorf("rank 0 kv bytes = %d, want 512", states[0].KVBytes)
	}
	if states[1].Phase != "aggregate" || states[1].ExchangeSentBytes != 100 || states[1].ExchangeRecvBytes != 200 || states[1].Epoch != 3 {
		t.Errorf("rank 1 state = %+v", states[1])
	}
	if s := states[0].String(); !strings.Contains(s, "phase=map") || !strings.Contains(s, "tasks=2/8") {
		t.Errorf("rank 0 text = %q", s)
	}
}

// TestBoardNilSafe: a nil board and nil rank-board are valid disabled
// instruments.
func TestBoardNilSafe(t *testing.T) {
	var b *Board
	if rb := b.Rank(0); rb != nil {
		t.Fatal("nil board must hand out nil rank boards")
	}
	var rb *RankBoard
	rb.SetPhase("x")
	rb.BeginTasks(1)
	rb.TaskDone()
	rb.SetKVBytes(1)
	rb.SetSpillBytes(1)
	rb.AddExchange(1, 1)
	rb.SetEpoch(1)
	if got := b.Snapshot(nil); len(got) != 0 {
		t.Fatalf("nil board snapshot = %+v, want empty", got)
	}
}

// TestBoardInFlightFromTracer: Snapshot folds each rank's open span from the
// tracer into the state, which is what the watchdog prints.
func TestBoardInFlightFromTracer(t *testing.T) {
	b := NewBoard()
	b.Rank(0).SetPhase("map")
	tr := NewTracer()
	sp := tr.Rank(0).Begin("mpi", "Recv")
	states := b.Snapshot(tr)
	if len(states) != 1 || !strings.Contains(states[0].InFlight, "mpi:Recv") {
		t.Fatalf("in-flight = %+v, want mpi:Recv", states)
	}
	sp.End()
	states = b.Snapshot(tr)
	if states[0].InFlight != "idle" {
		t.Fatalf("in-flight after End = %q, want idle", states[0].InFlight)
	}
}

// TestValidateInstants covers the -check validation of instant events.
func TestValidateInstants(t *testing.T) {
	span := []Event{
		{Type: BeginEvent, Rank: 0, Cat: "app", Name: "w", TS: 100},
		{Type: EndEvent, Rank: 0, Cat: "app", Name: "w", TS: 200},
	}
	ok := append(span, Event{Type: InstantEvent, Rank: 1, Cat: "mpi", Name: "Send", TS: 150})
	if err := ValidateInstants(ok, 2); err != nil {
		t.Errorf("valid instants rejected: %v", err)
	}
	neg := append(span, Event{Type: InstantEvent, Rank: -1, Cat: "mpi", Name: "Send", TS: 150})
	if err := ValidateInstants(neg, 2); err == nil {
		t.Error("negative rank accepted")
	}
	high := append(span, Event{Type: InstantEvent, Rank: 5, Cat: "mpi", Name: "Send", TS: 150})
	if err := ValidateInstants(high, 2); err == nil {
		t.Error("out-of-range rank accepted")
	}
	early := append(span, Event{Type: InstantEvent, Rank: 0, Cat: "mpi", Name: "Send", TS: 5})
	if err := ValidateInstants(early, 2); err == nil {
		t.Error("instant before the trace clock span accepted")
	}
	late := append(span, Event{Type: InstantEvent, Rank: 0, Cat: "mpi", Name: "Send", TS: 500})
	if err := ValidateInstants(late, 2); err == nil {
		t.Error("instant after the trace clock span accepted")
	}
}

// TestReadTraceMeta: the Chrome export carries per-rank thread metadata that
// ReadTraceMeta turns back into a rank count.
func TestReadTraceMeta(t *testing.T) {
	tr := NewTracer()
	for r := 0; r < 3; r++ {
		sp := tr.Rank(r).Begin("app", "w")
		sp.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, meta, err := ReadTraceMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRanks != 3 {
		t.Errorf("meta ranks = %d, want 3", meta.NumRanks)
	}
	if len(events) != 6 {
		t.Errorf("events = %d, want 6", len(events))
	}
}
