package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
)

// PhaseProfiler captures one CPU profile per run phase plus a heap snapshot
// at run end, so a slow phase can be drilled into with `go tool pprof`
// without profiling the whole run into one undifferentiated file.
//
// Go's CPU profiler is process-global and the MPI runtime's ranks are
// goroutines of one process, so the profiler is process-wide: the first
// rank to advance past the current phase rotates the profile (the file is
// named after that rank and the phase, e.g. cpu.03.map.rank1.pprof). Ranks
// announcing the phase already in progress, or catching up through phases
// the frontier has left behind, are no-ops — in an SPMD program every rank
// walks the same phase sequence, so the segment boundary is the first
// arrival and stragglers don't ping-pong the capture. All methods are safe
// on a nil receiver — the disabled path.
type PhaseProfiler struct {
	dir string

	mu    sync.Mutex
	phase string
	// last remembers each rank's most recent announcement; a rank rotates
	// only when it steps from the current phase to a new one (see
	// Transition).
	last    map[int]string
	seq     int
	f       *os.File
	files   []string
	err     error // first capture error; surfaced at Stop
	stopped bool
}

// StartPhaseProfiler creates dir if needed and starts CPU profiling into
// its first segment, labeled "init" (setup work before any phase
// transition). Rotate with Transition; finish with Stop.
func StartPhaseProfiler(dir string) (*PhaseProfiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	p := &PhaseProfiler{dir: dir, last: map[int]string{}}
	if err := p.startSegment("init"); err != nil {
		return nil, err
	}
	return p, nil
}

// Transition rotates the CPU profile at a phase boundary: the running
// segment is finished and a new one named for (rank, phase) begins. Every
// rank reports every boundary it crosses; only the rank advancing the
// frontier — stepping from the phase currently being profiled into a new
// one — rotates. A straggler still crossing earlier boundaries is a no-op,
// so unsynchronized ranks don't flip the capture back and forth, while a
// phase sequence that legitimately repeats (iterated jobs, training epochs)
// rotates on every pass.
func (p *PhaseProfiler) Transition(rank int, phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	prev := p.last[rank]
	if phase == p.phase || prev != p.phase {
		// Either already profiling this phase, or the rank is a straggler
		// still crossing boundaries the frontier has left behind. Record the
		// announcement only when it lands on the current phase — a straggler
		// that merely passes through an old phase must catch up to the
		// frontier before its next step can rotate.
		if phase == p.phase {
			p.last[rank] = phase
		}
		return
	}
	p.last[rank] = phase
	p.finishSegment()
	if err := p.startSegment(fmt.Sprintf("%s.rank%d", sanitize(phase), rank)); err != nil && p.err == nil {
		p.err = err
	}
	p.phase = phase
}

// Stop finishes the last CPU segment, writes the end-of-run heap snapshot
// (heap.pprof), and returns every file written. It returns the first error
// any capture hit; the files written before it are still listed.
func (p *PhaseProfiler) Stop() ([]string, error) {
	if p == nil {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return p.files, p.err
	}
	p.stopped = true
	p.finishSegment()
	heap := filepath.Join(p.dir, "heap.pprof")
	if err := writeHeapProfile(heap); err != nil {
		if p.err == nil {
			p.err = err
		}
	} else {
		p.files = append(p.files, heap)
	}
	return p.files, p.err
}

// startSegment opens the next CPU profile file and begins profiling into
// it. Callers hold p.mu (or have exclusive access at construction).
func (p *PhaseProfiler) startSegment(label string) error {
	path := filepath.Join(p.dir, fmt.Sprintf("cpu.%02d.%s.pprof", p.seq, label))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: profile segment: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		// Another profiler is already running (only one CPU profile can be
		// active per process) — report once, keep phase tracking alive.
		return fmt.Errorf("obs: start cpu profile: %w", err)
	}
	p.f = f
	p.seq++
	p.files = append(p.files, path)
	return nil
}

// finishSegment stops the running CPU profile, if any.
func (p *PhaseProfiler) finishSegment() {
	if p.f == nil {
		return
	}
	pprof.StopCPUProfile()
	if err := p.f.Close(); err != nil && p.err == nil {
		p.err = err
	}
	p.f = nil
}

// writeHeapProfile snapshots the heap after a GC (so the profile reflects
// live objects, not garbage awaiting collection).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sanitize keeps phase names filesystem-safe.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
