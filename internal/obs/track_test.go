package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestWorkerTracksNestIndependently is the invariant the Track field
// exists for: concurrent map-task workers on one rank open and close
// differently-named inner spans in interleaved order, which would break
// LIFO validation on a single per-rank stack, but validates cleanly when
// spans nest per track.
func TestWorkerTracksNestIndependently(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(0)

	// Deterministic interleave: worker 0 opens, worker 1 opens, worker 0
	// closes its inner span, worker 1 closes its (differently named) one.
	w0 := rt.Worker(0)
	w1 := rt.Worker(1)
	t0 := w0.Begin("map", "map.task")
	i0 := w0.Begin("blast", "engine.search")
	t1 := w1.Begin("map", "map.task")
	i1 := w1.Begin("som", "som.kernel")
	i0.End()
	i1.End()
	t0.End()
	t1.End()

	if err := Validate(tr.Events()); err != nil {
		t.Fatalf("interleaved worker spans failed validation: %v", err)
	}
}

func TestWorkerTrackSpanIDsAndInFlight(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(2)
	w := rt.Worker(3)

	sp := rt.Begin("mpi", "Recv")
	wsp := w.Begin("map", "map.task")
	// Each handle sees only its own track's innermost span.
	if rt.InFlight() != w.InFlight() && rt.CurrentSpanID() == w.CurrentSpanID() {
		t.Fatal("rank and worker tracks share span ids but report different spans")
	}
	if got := rt.InFlight(); !strings.Contains(got, "mpi:Recv") {
		t.Fatalf("rank track InFlight = %q, want mpi:Recv", got)
	}
	if got := w.InFlight(); !strings.Contains(got, "map:map.task") {
		t.Fatalf("worker track InFlight = %q, want map:map.task", got)
	}
	if rt.CurrentSpanID() == 0 || w.CurrentSpanID() == 0 || rt.CurrentSpanID() == w.CurrentSpanID() {
		t.Fatalf("span ids: rank %d worker %d", rt.CurrentSpanID(), w.CurrentSpanID())
	}
	wsp.End()
	if got := w.InFlight(); got != "idle" {
		t.Fatalf("worker track after End = %q, want idle", got)
	}
	if rt.CurrentSpanID() == 0 {
		t.Fatal("rank track span closed by worker End")
	}
	sp.End()

	// Nil-safety of the derived handle.
	var nilRT *RankTracer
	if h := nilRT.Worker(1); h != nil {
		t.Fatal("Worker on nil handle must stay nil")
	}
	if h := rt.Worker(-1); h != rt {
		t.Fatal("negative worker index must return the receiver")
	}
}

// TestWorkerTrackChromeRoundTrip checks the tid encoding: worker events get
// tid = track·1000 + rank with their own thread_name records, rank-track
// events keep tid = rank, and ReadTraceMeta recovers rank, track, and the
// world size (counting only rank tracks).
func TestWorkerTrackChromeRoundTrip(t *testing.T) {
	tr := NewTracer()
	for r := 0; r < 2; r++ {
		rt := tr.Rank(r)
		sp := rt.Begin("mpi", "run")
		w := rt.Worker(1)
		ws := w.Begin("map", "map.task", Arg{Key: "worker", Val: 1})
		ws.End()
		sp.End()
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"rank 1 worker 1"`) {
		t.Fatalf("trace lacks worker thread_name: %s", out)
	}
	events, meta, err := ReadTraceMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRanks != 2 {
		t.Fatalf("NumRanks = %d, want 2 (worker tracks must not count)", meta.NumRanks)
	}
	var workerEvents int
	for _, ev := range events {
		if ev.Track == 2 && ev.Name == "map.task" {
			workerEvents++
			if ev.Rank != 0 && ev.Rank != 1 {
				t.Fatalf("worker event decoded rank %d", ev.Rank)
			}
		}
	}
	if workerEvents != 4 {
		t.Fatalf("decoded %d worker-track map.task events, want 4", workerEvents)
	}
	if err := Validate(events); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerTracksConcurrent exercises the shared rank buffer from many
// goroutines; run under -race this is the data-race gate for the Worker
// path.
func TestWorkerTracksConcurrent(t *testing.T) {
	tr := NewTracer()
	rt := tr.Rank(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := rt.Worker(w)
			for i := 0; i < 50; i++ {
				sp := h.Begin("map", "map.task", Arg{Key: "worker", Val: w})
				inner := h.Begin("blast", "engine.search")
				inner.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if err := Validate(tr.Events()); err != nil {
		t.Fatal(err)
	}
}
