// Package live is the opt-in live status server: an HTTP endpoint that
// publishes point-in-time snapshots of a running job's per-rank state —
// current phase, in-flight span, task progress, KV/spill/exchange bytes,
// epoch number — sampled lock-cheaply from the same obs.Board the layers
// update and the MPI deadlock watchdog prints, so a hung run is diagnosable
// from the outside before the timeout fires.
//
// Routes:
//
//	/status      JSON snapshot ({"uptime_ms":..., "ranks":[...]})
//	/status.txt  the same snapshot as one line per rank (watch -n1 friendly)
//	/metrics     Prometheus text exposition: the registry's counters,
//	             gauges and histograms plus comm-matrix link totals
//	             (404 when neither source is on) — the control-plane
//	             groundwork for mrblastd
//	/metrics.txt the registry as the legacy plain-text table (404 when off)
//
// cmd/mrblast and cmd/mrsom expose it behind their -status :PORT flag.
package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/comm"
)

// Snapshot is the JSON body served at /status.
type Snapshot struct {
	// UptimeMS is milliseconds since the server started.
	UptimeMS int64 `json:"uptime_ms"`
	// Ranks is each rank's current state, indexed by rank.
	Ranks []obs.RankState `json:"ranks"`
}

// Server samples a Board (and optionally a Tracer for in-flight spans and a
// Registry for /metrics) on demand; it holds no state of its own beyond the
// start time, so it can be created before the job starts and keeps serving
// after it finishes.
type Server struct {
	board   *obs.Board
	tracer  *obs.Tracer
	metrics *obs.Registry
	comm    *comm.Tracker
	start   time.Time

	ln   net.Listener
	http *http.Server
}

// New creates a server over the given sources. tracer, metrics and commT
// may each be nil: snapshots then omit in-flight spans, and the metrics
// routes 404 when every source they draw from is off.
func New(board *obs.Board, tracer *obs.Tracer, metrics *obs.Registry, commT *comm.Tracker) *Server {
	return &Server{board: board, tracer: tracer, metrics: metrics, comm: commT, start: time.Now()}
}

// Snapshot samples the board (and tracer) right now.
func (s *Server) Snapshot() Snapshot {
	ranks := s.board.Snapshot(s.tracer)
	if ranks == nil {
		ranks = []obs.RankState{}
	}
	return Snapshot{
		UptimeMS: time.Since(s.start).Milliseconds(),
		Ranks:    ranks,
	}
}

// Handler returns the route mux, usable directly in tests without a socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Snapshot())
	})
	text := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap := s.Snapshot()
		fmt.Fprintf(w, "uptime %v\n", time.Duration(snap.UptimeMS)*time.Millisecond)
		for _, st := range snap.Ranks {
			fmt.Fprintf(w, "rank %d: %s\n", st.Rank, st)
		}
	}
	mux.HandleFunc("/status.txt", text)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		text(w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.metrics == nil && s.comm == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if s.metrics != nil {
			s.metrics.Snapshot().WritePrometheus(w)
		}
		if s.comm != nil {
			// Mid-run the matrix is a live partial view; Prometheus counters
			// are cumulative anyway, so serving the merged snapshot is exact.
			s.comm.Matrix().WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, r *http.Request) {
		if s.metrics == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.metrics.Snapshot().WriteTable(w)
	})
	return mux
}

// Start binds addr (e.g. ":8080", or ":0" for an ephemeral port) and serves
// in the background until Close. The bound address is available from Addr.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go s.http.Serve(ln)
	return nil
}

// Addr reports the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener; in-flight requests are abandoned.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}
