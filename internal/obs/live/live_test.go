package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/mrmpi"
	"repro/internal/obs"
	"repro/internal/obs/comm"
)

// getSnapshot polls the /status endpoint once and decodes it.
func getSnapshot(t *testing.T, addr string) Snapshot {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatalf("GET /status: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status: status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("GET /status: invalid JSON: %v", err)
	}
	return snap
}

// TestStatusEndpointDuringLiveRun is the live-telemetry acceptance test:
// during a 4-rank MapReduce run, polling the status endpoint returns valid
// JSON whose per-rank phases advance map → aggregate → convert → reduce and
// whose task counters reach done == total.
func TestStatusEndpointDuringLiveRun(t *testing.T) {
	const nranks, nmap = 4, 8
	board := obs.NewBoard()
	tracer := obs.NewTracer()
	srv := New(board, tracer, nil, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Each phase method is followed by a Barrier, then rank 0 polls the
	// endpoint while every other rank holds at a second Barrier — so the
	// snapshot is taken at a quiescent point where all ranks must show the
	// phase just finished. The phases asserted live are recorded here and
	// checked after the run (rank 0 writes, later reads happen after
	// mpi.RunWith returns — no race).
	type observed struct {
		phase string
		snap  Snapshot
	}
	var seen []observed

	err := mpi.RunWith(nranks, mpi.RunOptions{Trace: tracer, Board: board}, func(c *mpi.Comm) error {
		mr := mrmpi.New(c)
		defer mr.Close()

		observe := func(phase string) error {
			c.Barrier() // everyone finished the phase method
			var err error
			if c.Rank() == 0 {
				snap := getSnapshot(t, srv.Addr())
				seen = append(seen, observed{phase: phase, snap: snap})
				if len(snap.Ranks) != nranks {
					err = fmt.Errorf("phase %s: snapshot has %d ranks, want %d", phase, len(snap.Ranks), nranks)
				}
			}
			c.Barrier() // nobody advances into the next phase until the poll is done
			return err
		}

		if _, err := mr.Map(nmap, func(itask int, kv *mrmpi.KeyValue) error {
			kv.Add([]byte(fmt.Sprintf("k%d", itask%4)), []byte("v"))
			return nil
		}); err != nil {
			return err
		}
		if err := observe("map"); err != nil {
			return err
		}
		if err := mr.Aggregate(nil); err != nil {
			return err
		}
		if err := observe("aggregate"); err != nil {
			return err
		}
		if err := mr.Convert(); err != nil {
			return err
		}
		if err := observe("convert"); err != nil {
			return err
		}
		if _, err := mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
			out.Add(key, []byte(fmt.Sprintf("%d", len(values))))
			return nil
		}); err != nil {
			return err
		}
		return observe("reduce")
	})
	if err != nil {
		t.Fatal(err)
	}

	wantOrder := []string{"map", "aggregate", "convert", "reduce"}
	if len(seen) != len(wantOrder) {
		t.Fatalf("observed %d snapshots, want %d", len(seen), len(wantOrder))
	}
	for i, obsd := range seen {
		if obsd.phase != wantOrder[i] {
			t.Fatalf("snapshot %d taken after phase %q, want %q", i, obsd.phase, wantOrder[i])
		}
		for _, rs := range obsd.snap.Ranks {
			if rs.Phase != obsd.phase {
				t.Errorf("after %s: rank %d reports phase %q", obsd.phase, rs.Rank, rs.Phase)
			}
		}
	}
	// Task counters: every rank advertised the global total, and the
	// per-rank done counts sum to it.
	mapSnap := seen[0].snap
	var done int64
	for _, rs := range mapSnap.Ranks {
		if rs.TasksTotal != nmap {
			t.Errorf("rank %d tasks_total = %d, want %d", rs.Rank, rs.TasksTotal, nmap)
		}
		done += rs.TasksDone
	}
	if done != nmap {
		t.Errorf("sum of tasks_done = %d, want %d (done == total)", done, nmap)
	}
	// Aggregate moved bytes between ranks; the snapshot taken after it must
	// show exchange progress somewhere.
	var exch int64
	for _, rs := range seen[1].snap.Ranks {
		exch += rs.ExchangeSentBytes
	}
	if exch == 0 {
		t.Error("no exchange bytes visible after aggregate")
	}
}

// TestTextView checks the watch-able plain-text rendering.
func TestTextView(t *testing.T) {
	board := obs.NewBoard()
	rb := board.Rank(0)
	rb.SetPhase("map")
	rb.BeginTasks(5)
	rb.TaskDone()
	srv := New(board, nil, nil, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/", "/status.txt"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(body)
		if !strings.Contains(text, "rank 0: phase=map tasks=1/5") {
			t.Errorf("GET %s = %q, want it to contain rank 0's status line", path, text)
		}
	}
}

// TestMetricsRoute checks /metrics serves a conformant Prometheus exposition
// of the registry plus comm-matrix totals, /metrics.txt keeps the legacy
// table, and both 404 when every source is absent.
func TestMetricsRoute(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x.count").Add(3)
	tracker := comm.NewTracker()
	tracker.Rank(0).SetPhase("map")
	tracker.Rank(0).RecordSend(1, 7, 128, 1)
	tracker.Rank(1).RecordRecv(0, 7, 128, 1000, 500, 1, "map")
	srv := New(obs.NewBoard(), nil, reg, tracker)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "x_count_total 3") {
		t.Errorf("/metrics = %q, want Prometheus counter x_count_total 3", text)
	}
	if !strings.Contains(text, `mpi_comm_bytes_total{src="0",dst="1",phase="map"} 128`) {
		t.Errorf("/metrics = %q, want the comm-matrix link total", text)
	}
	if err := obs.ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Errorf("/metrics exposition not conformant: %v\n%s", err, text)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/metrics.txt")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "x.count") {
		t.Errorf("/metrics.txt = %q, want the legacy counter table", body)
	}

	off := New(obs.NewBoard(), nil, nil, nil)
	if err := off.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for _, path := range []string{"/metrics", "/metrics.txt"} {
		resp, err = http.Get("http://" + off.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without sources: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestSnapshotBeforeRun: an idle server serves an empty-but-valid snapshot.
func TestSnapshotBeforeRun(t *testing.T) {
	srv := New(obs.NewBoard(), nil, nil, nil)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	snap := getSnapshot(t, srv.Addr())
	if snap.Ranks == nil || len(snap.Ranks) != 0 {
		t.Errorf("idle snapshot ranks = %v, want empty non-nil", snap.Ranks)
	}
	if snap.UptimeMS < 0 {
		t.Errorf("uptime_ms = %d, want >= 0", snap.UptimeMS)
	}
}
