package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"mpi.send.bytes": "mpi_send_bytes",
		"already_fine":   "already_fine",
		"dash-ed":        "dash_ed",
		"9lead":          "_9lead",
		"":               "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusAndValidate(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mpi.sends").Add(42)
	reg.Counter("mpi.send.bytes").Add(1 << 20)
	reg.Gauge("mrmpi.kv.bytes").Set(77)
	h := reg.Histogram("mrmpi.task.ms")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mpi_sends_total counter",
		"mpi_sends_total 42",
		"# TYPE mrmpi_kv_bytes gauge",
		"mrmpi_kv_bytes 77",
		"# TYPE mrmpi_task_ms summary",
		`mrmpi_task_ms{quantile="0.5"}`,
		"mrmpi_task_ms_sum 5050",
		"mrmpi_task_ms_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("our own exposition fails conformance: %v\n%s", err, out)
	}
}

func TestValidatePrometheusEmptyHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty.hist")
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty histogram exposition invalid: %v\n%s", err, buf.String())
	}
}

func TestValidatePrometheusRejectsMalformed(t *testing.T) {
	bad := map[string]string{
		"bad metric name":   "1up 3\n",
		"no value":          "lonely\n",
		"bad value":         "x yes\n",
		"bad label name":    `x{1bad="v"} 3` + "\n",
		"unquoted label":    `x{l=v} 3` + "\n",
		"unbalanced braces": "x}y{ 3\n",
		"duplicate sample":  "x 1\nx 2\n",
		"duplicate TYPE":    "# TYPE x counter\n# TYPE x gauge\nx 1\n",
		"TYPE after sample": "x 1\n# TYPE x counter\n",
		"bad TYPE kind":     "# TYPE x sideways\nx 1\n",
		"bad timestamp":     "x 1 soon\n",
		"empty exposition":  "# just a comment\n",
	}
	for name, body := range bad {
		if err := ValidatePrometheus(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %q", name, body)
		}
	}
	good := map[string]string{
		"labels":        `x{a="1",b="two words"} 3` + "\n",
		"escaped label": `x{a="say \"hi\" \\ bye"} 3` + "\n",
		"timestamp":     "x 3.14 1700000000000\n",
		"inf and nan":   "x NaN\ny +Inf\nz -Inf\n",
		"summary order": "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 3\n",
		"free comment":  "# scraped by test\nx 1\n",
	}
	for name, body := range good {
		if err := ValidatePrometheus(strings.NewReader(body)); err != nil {
			t.Errorf("%s: rejected %q: %v", name, body, err)
		}
	}
}

// TestBoardSnapshotConcurrent snapshots the board while every rank mutates
// every slot — the -race coverage the live server and watchdog rely on,
// including the snapshot-before-any-run edge case.
func TestBoardSnapshotConcurrent(t *testing.T) {
	b := NewBoard()
	if got := b.Snapshot(nil); len(got) != 0 {
		t.Fatalf("snapshot before any rank exists = %+v, want empty", got)
	}
	var mutators sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		mutators.Add(1)
		go func(rank int) {
			defer mutators.Done()
			rb := b.Rank(rank)
			for i := 0; i < 2000; i++ {
				rb.SetPhase("map")
				rb.BeginTasks(16)
				rb.TaskDone()
				rb.SetEpoch(int64(i))
				rb.SetKVBytes(int64(i))
				rb.SetSpillBytes(int64(i))
				rb.AddExchange(1, 1)
			}
		}(rank)
	}
	stop := make(chan struct{})
	snapshotterDone := make(chan struct{})
	go func() {
		defer close(snapshotterDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, st := range b.Snapshot(nil) {
				_ = st.String()
			}
		}
	}()
	mutators.Wait()
	close(stop)
	<-snapshotterDone
	states := b.Snapshot(nil)
	if len(states) != 4 {
		t.Fatalf("ranks = %d, want 4", len(states))
	}
	for _, st := range states {
		if st.Epoch != 1999 || st.BeatAgeNS < 0 {
			t.Fatalf("final state: %+v", st)
		}
	}
}

// TestRegistrySnapshotConcurrent races Snapshot and WriteTable against
// instrument mutation from several goroutines, plus the snapshot-before-run
// (empty registry) edge case.
func TestRegistrySnapshotConcurrent(t *testing.T) {
	reg := NewRegistry()
	// Snapshot-before-run: empty registry snapshots and renders cleanly.
	var empty bytes.Buffer
	if err := reg.Snapshot().WriteTable(&empty); err != nil {
		t.Fatalf("empty WriteTable: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := reg.Counter("c")
			ga := reg.Gauge("g")
			h := reg.Histogram("h")
			for i := 0; i < 5000; i++ {
				c.Inc()
				ga.Set(int64(i))
				h.Observe(float64(i))
			}
		}(g)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 100; i++ {
			s := reg.Snapshot()
			var buf bytes.Buffer
			if err := s.WriteTable(&buf); err != nil {
				t.Errorf("WriteTable: %v", err)
				return
			}
			if err := s.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone
	s := reg.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Value != 4*5000 {
		t.Fatalf("final counters: %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 4*5000 {
		t.Fatalf("final histograms: %+v", s.Histograms)
	}
}
