package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(4)
	r := f.Rank(0)
	for i := 0; i < 10; i++ {
		r.Notef("send", "msg %d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	// Oldest-first and only the most recent survive.
	for i, ev := range evs {
		want := fmt.Sprintf("msg %d", 6+i)
		if ev.Detail != want {
			t.Fatalf("event %d = %q, want %q", i, ev.Detail, want)
		}
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	// Timestamps monotone.
	for i := 1; i < len(evs); i++ {
		if evs[i].TSNS < evs[i-1].TSNS {
			t.Fatalf("timestamps not monotone: %v", evs)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	r := f.Rank(2)
	if r != nil {
		t.Fatal("nil recorder must hand out nil ranks")
	}
	r.Note("send", "x")
	r.Notef("recv", "y %d", 1)
	if r.Events() != nil || r.Dropped() != 0 {
		t.Fatal("nil rank must be empty")
	}
	d := f.Dump("because", nil, nil, nil)
	if d.Reason != "because" || len(d.Ranks) != 0 {
		t.Fatalf("nil recorder dump: %+v", d)
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Rank(0).Note("send", "dst=1 tag=5 bytes=100")
	f.Rank(1).Note("recv", "src=0 tag=5 bytes=100")

	board := NewBoard()
	board.Rank(0).SetPhase("map")
	board.Rank(1).SetPhase("map")
	reg := NewRegistry()
	reg.Counter("mpi.sends").Add(7)
	snap := reg.Snapshot()

	d := f.Dump("watchdog: rank 0 Recv timed out", board.Snapshot(nil), &snap,
		[]string{"rank 1: Irecv src=0 tag=9"})
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Reason != d.Reason {
		t.Fatalf("reason = %q", back.Reason)
	}
	if len(back.Ranks) != 2 || back.Ranks[0].Recent[0].Kind != "send" {
		t.Fatalf("ranks: %+v", back.Ranks)
	}
	if len(back.Board) != 2 || back.Board[0].Phase != "map" {
		t.Fatalf("board: %+v", back.Board)
	}
	if back.Metrics == nil || len(back.Metrics.Counters) != 1 || back.Metrics.Counters[0].Value != 7 {
		t.Fatalf("metrics: %+v", back.Metrics)
	}
	if len(back.PendingRequests) != 1 || !strings.Contains(back.PendingRequests[0], "Irecv") {
		t.Fatalf("pending: %+v", back.PendingRequests)
	}
}

// TestFlightRecorderConcurrent races Note against Dump/Events; meaningful
// under -race (internal/obs is in the race CI step).
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for rank := 0; rank < 4; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			r := f.Rank(rank)
			for i := 0; i < 1000; i++ {
				r.Notef("send", "msg %d", i)
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			f.Dump("probe", nil, nil, nil)
		}
	}()
	wg.Wait()
	<-done
	d := f.Dump("final", nil, nil, nil)
	if len(d.Ranks) != 4 {
		t.Fatalf("ranks = %d, want 4", len(d.Ranks))
	}
	for _, r := range d.Ranks {
		if len(r.Recent) != 32 || r.Dropped != 1000-32 {
			t.Fatalf("rank %d: %d recent, %d dropped", r.Rank, len(r.Recent), r.Dropped)
		}
	}
}

func TestBoardHeartbeatAge(t *testing.T) {
	b := NewBoard()
	r0 := b.Rank(0)
	b.Rank(1) // never updated
	r0.SetPhase("map")
	states := b.Snapshot(nil)
	if states[0].BeatAgeNS < 0 {
		t.Fatalf("rank 0 updated but BeatAgeNS = %d", states[0].BeatAgeNS)
	}
	if states[1].BeatAgeNS != -1 {
		t.Fatalf("rank 1 never updated but BeatAgeNS = %d", states[1].BeatAgeNS)
	}
	if s := states[0].String(); !strings.Contains(s, "beat=") || strings.Contains(s, "beat=never") {
		t.Fatalf("rank 0 line: %q", s)
	}
	if s := states[1].String(); !strings.Contains(s, "beat=never") {
		t.Fatalf("rank 1 line: %q", s)
	}
	// Every mutator must refresh the heartbeat.
	for name, touch := range map[string]func(){
		"BeginTasks":    func() { r0.BeginTasks(4) },
		"TaskDone":      func() { r0.TaskDone() },
		"SetEpoch":      func() { r0.SetEpoch(2) },
		"SetKVBytes":    func() { r0.SetKVBytes(10) },
		"SetSpillBytes": func() { r0.SetSpillBytes(10) },
		"AddExchange":   func() { r0.AddExchange(1, 2) },
	} {
		before := r0.beat.Load()
		for r0.beat.Load() == before {
			touch()
		}
		_ = name
	}
}
