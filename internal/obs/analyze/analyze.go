// Package analyze computes performance analytics from an exported trace:
// per-rank busy/comm/idle time, per-phase load-imbalance factors (the
// paper's Fig. 3–6 efficiency driver), the master dispatch latency
// distribution, a ranked straggler report, and the critical path through
// p2p/collective edges. cmd/traceview -analyze renders the result; the perf
// harness (cmd/mrperf) folds it into BENCH_*.json baselines.
package analyze

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/causal"
)

// Default master-protocol tags, mirroring mrmpi's reserved range (kept as
// literals here so the analyzer stays a pure consumer of traces; they are
// asserted equal to mrmpi's exported constants in the tests).
const (
	// WorkerReadyTag marks a worker's task request to the master.
	WorkerReadyTag = 1<<20 + 1
	// TaskAssignTag marks the master's task assignment reply.
	TaskAssignTag = 1<<20 + 2
)

// Report is the full analysis of one trace.
type Report struct {
	// WallClock is the span of the trace clock (first to last event).
	WallClock time.Duration `json:"wall_clock_ns"`
	// NumRanks is the number of ranks that emitted events.
	NumRanks int `json:"num_ranks"`
	// Ranks is the per-rank busy/comm/idle decomposition, indexed by rank.
	Ranks []RankTime `json:"ranks"`
	// Phases summarizes each mrmpi phase's load balance across ranks.
	Phases []PhaseStat `json:"phases"`
	// Dispatch is the master dispatch latency distribution; nil when the
	// trace has no master-protocol traffic.
	Dispatch *DispatchStats `json:"dispatch,omitempty"`
	// Stragglers ranks every rank by busy time, slowest first, each with
	// the spans that made it slow.
	Stragglers []Straggler `json:"stragglers"`
	// CriticalPath is the chain of rank segments connected by p2p/collective
	// edges that determined the wall clock.
	CriticalPath CriticalPath `json:"critical_path"`
	// Blame is the per-rank blocked-on table: each rank's blocking-MPI wait
	// time attributed to the (peer, phase, span) whose send released it.
	Blame []RankBlame `json:"blame,omitempty"`
	// BlameCoverage is the fraction of measured wait time the blame tables
	// attribute (1.0 on a complete provenance-carrying trace).
	BlameCoverage float64 `json:"blame_coverage"`
	// Comm is the communication-matrix section; nil unless the caller
	// attaches one built by AnalyzeComm from a recorded comm.Matrix (the
	// matrix is a separate artifact from the trace, so Analyze alone cannot
	// produce it).
	Comm *CommReport `json:"comm,omitempty"`
}

// RankTime decomposes one rank's wall-clock share: Busy is time inside
// spans excluding MPI communication, Comm is time inside mpi spans
// (blocking receives, collectives), Idle is the remainder of the trace
// window the rank spent outside any span.
type RankTime struct {
	Rank int           `json:"rank"`
	Busy time.Duration `json:"busy_ns"`
	Comm time.Duration `json:"comm_ns"`
	Idle time.Duration `json:"idle_ns"`
}

// PhaseStat is the load-balance summary of one mrmpi phase. Busy time is
// the phase span minus the mpi time nested inside it — raw phase durations
// are equalized by the trailing collective, so they cannot expose
// imbalance; busy time can.
type PhaseStat struct {
	Name string `json:"name"`
	// BusyByRank is each rank's busy time within the phase (summed across
	// iterations), indexed by rank.
	BusyByRank []time.Duration `json:"busy_by_rank_ns"`
	Max        time.Duration   `json:"max_ns"`
	Mean       time.Duration   `json:"mean_ns"`
	// Imbalance is Max/Mean (1.0 = perfectly balanced; 0 when no rank did
	// any work). The paper's efficiency loss grows with this factor.
	Imbalance float64 `json:"imbalance"`
	// MaxRank is the rank holding Max.
	MaxRank int `json:"max_rank"`
}

// DispatchStats is the distribution of master dispatch latency: the time
// from a worker's ready request (Send tag WorkerReadyTag) to its receipt of
// the assignment (Recv end tag TaskAssignTag).
type DispatchStats struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// SpanContribution is one aggregated span kind on a straggler's profile.
type SpanContribution struct {
	Cat   string `json:"cat"`
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Self is total self time: span durations minus their nested spans, so
	// container spans don't double-count their children.
	Self time.Duration `json:"self_ns"`
}

// Straggler is one rank in the ranked straggler report.
type Straggler struct {
	Rank int           `json:"rank"`
	Busy time.Duration `json:"busy_ns"`
	// TopSpans are the non-mpi span kinds with the most self time on this
	// rank, largest first.
	TopSpans []SpanContribution `json:"top_spans"`
}

// interval is a half-open [start, end) time range on the trace clock.
type interval struct{ start, end int64 }

// mergeIntervals sorts and coalesces overlapping intervals, returning the
// merged set and its total length.
func mergeIntervals(ivs []interval) ([]interval, int64) {
	if len(ivs) == 0 {
		return nil, 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	var total int64
	for _, iv := range out {
		total += iv.end - iv.start
	}
	return out, total
}

// overlap is the length of iv ∩ [start, end).
func overlap(ivs []interval, start, end int64) int64 {
	var total int64
	for _, iv := range ivs {
		lo, hi := max64(iv.start, start), min64(iv.end, end)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// argInt extracts an integer arg value. Traces read back from JSON carry
// numbers as float64, live traces as int — both are handled.
func argInt(args []obs.Arg, key string) (int64, bool) {
	for _, a := range args {
		if a.Key != key {
			continue
		}
		switch v := a.Val.(type) {
		case int:
			return int64(v), true
		case int64:
			return v, true
		case float64:
			return int64(v), true
		}
	}
	return 0, false
}

// Analyze computes the full report from a merged event stream (from
// Tracer.Events or obs.ReadTrace).
func Analyze(events []obs.Event) Report {
	var rep Report
	if len(events) == 0 {
		return rep
	}

	minTS, maxTS := events[0].TS, events[0].TS
	numRanks := 0
	for _, ev := range events {
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		if ev.Rank+1 > numRanks {
			numRanks = ev.Rank + 1
		}
	}
	rep.WallClock = time.Duration(maxTS - minTS)
	rep.NumRanks = numRanks

	// Collect spans once; bucket the interval sets per rank.
	var spans []obs.SpanInstance
	obs.PairSpans(events, func(sp obs.SpanInstance) { spans = append(spans, sp) })
	commIvs := make([][]interval, numRanks) // mpi spans
	allIvs := make([][]interval, numRanks)  // every span
	for _, sp := range spans {
		iv := interval{sp.Start, sp.End()}
		allIvs[sp.Rank] = append(allIvs[sp.Rank], iv)
		if sp.Cat == "mpi" {
			commIvs[sp.Rank] = append(commIvs[sp.Rank], iv)
		}
	}
	mergedComm := make([][]interval, numRanks)
	rep.Ranks = make([]RankTime, numRanks)
	for r := 0; r < numRanks; r++ {
		var commLen, coveredLen int64
		mergedComm[r], commLen = mergeIntervals(commIvs[r])
		_, coveredLen = mergeIntervals(allIvs[r])
		rep.Ranks[r] = RankTime{
			Rank: r,
			Busy: time.Duration(coveredLen - commLen),
			Comm: time.Duration(commLen),
			Idle: time.Duration((maxTS - minTS) - coveredLen),
		}
	}

	rep.Phases = phaseStats(spans, mergedComm, numRanks)
	rep.Dispatch = dispatchStats(events, spans)
	rep.Stragglers = stragglers(events, rep.Ranks)

	// Cross-rank causality: stitch the happens-before DAG once, then read
	// the exact critical path and the wait-blame tables off it.
	g := causal.Build(events)
	rep.CriticalPath = g.CriticalPath()
	rep.Blame = g.Blame()
	rep.BlameCoverage = causal.Coverage(rep.Blame)
	return rep
}

// phaseStats computes busy-time load balance for each mrmpi phase.
// Per-rank phase-span durations are equalized by the trailing collective
// inside each phase, so imbalance must be measured on busy time: the phase
// interval minus the mpi communication nested in it.
func phaseStats(spans []obs.SpanInstance, mergedComm [][]interval, numRanks int) []PhaseStat {
	busy := map[string][]time.Duration{}
	var order []string
	for _, sp := range spans {
		if sp.Cat != "mrmpi" || sp.Name == "map.task" {
			continue
		}
		b := busy[sp.Name]
		if b == nil {
			b = make([]time.Duration, numRanks)
			busy[sp.Name] = b
			order = append(order, sp.Name)
		}
		comm := overlap(mergedComm[sp.Rank], sp.Start, sp.End())
		b[sp.Rank] += sp.Dur - time.Duration(comm)
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		ps := PhaseStat{Name: name, BusyByRank: busy[name]}
		var sum time.Duration
		for r, d := range ps.BusyByRank {
			sum += d
			if d > ps.Max {
				ps.Max, ps.MaxRank = d, r
			}
		}
		ps.Mean = sum / time.Duration(numRanks)
		if ps.Mean > 0 {
			ps.Imbalance = float64(ps.Max) / float64(ps.Mean)
		}
		out = append(out, ps)
	}
	return out
}

// dispatchStats pairs each worker's ready request (Send instant to the
// master, tag WorkerReadyTag) with its next assignment receipt (Recv span
// ending with tag TaskAssignTag) on the same rank, in order — the latency a
// worker sits idle waiting for the master per task.
func dispatchStats(events []obs.Event, spans []obs.SpanInstance) *DispatchStats {
	readySends := map[int][]int64{} // rank -> ready-request times, in order
	for _, ev := range events {
		if ev.Type != obs.InstantEvent || ev.Cat != "mpi" || ev.Name != "Send" {
			continue
		}
		if tag, ok := argInt(ev.Args, "tag"); !ok || tag != WorkerReadyTag {
			continue
		}
		readySends[ev.Rank] = append(readySends[ev.Rank], ev.TS)
	}
	if len(readySends) == 0 {
		return nil
	}
	assigns := map[int][]int64{} // rank -> assignment receipt times, in order
	for _, sp := range spans {
		if sp.Cat != "mpi" || sp.Name != "Recv" {
			continue
		}
		if tag, ok := argInt(sp.EndArgs, "tag"); !ok || tag != TaskAssignTag {
			continue
		}
		assigns[sp.Rank] = append(assigns[sp.Rank], sp.End())
	}
	var lats []float64
	var maxLat time.Duration
	var sum time.Duration
	for rank, sends := range readySends {
		recvs := assigns[rank]
		sort.Slice(recvs, func(i, j int) bool { return recvs[i] < recvs[j] })
		n := len(sends)
		if len(recvs) < n {
			n = len(recvs)
		}
		for i := 0; i < n; i++ {
			lat := time.Duration(recvs[i] - sends[i])
			if lat < 0 {
				continue
			}
			lats = append(lats, float64(lat))
			sum += lat
			if lat > maxLat {
				maxLat = lat
			}
		}
	}
	if len(lats) == 0 {
		return nil
	}
	sort.Float64s(lats)
	return &DispatchStats{
		Count: len(lats),
		Mean:  sum / time.Duration(len(lats)),
		P50:   time.Duration(obs.Quantile(lats, 0.50)),
		P95:   time.Duration(obs.Quantile(lats, 0.95)),
		P99:   time.Duration(obs.Quantile(lats, 0.99)),
		Max:   maxLat,
	}
}

// selfTimes replays each rank's event stream with a span stack and
// aggregates self time (duration minus nested spans) by (rank, cat, name).
func selfTimes(events []obs.Event) map[int]map[[2]string]*SpanContribution {
	type frame struct {
		cat, name string
		start     int64
		child     int64
	}
	stacks := map[int][]frame{}
	out := map[int]map[[2]string]*SpanContribution{}
	for _, ev := range events {
		switch ev.Type {
		case obs.BeginEvent:
			stacks[ev.Rank] = append(stacks[ev.Rank], frame{cat: ev.Cat, name: ev.Name, start: ev.TS})
		case obs.EndEvent:
			st := stacks[ev.Rank]
			for i := len(st) - 1; i >= 0; i-- {
				if st[i].cat != ev.Cat || st[i].name != ev.Name {
					continue
				}
				f := st[i]
				stacks[ev.Rank] = append(st[:i], st[i+1:]...)
				dur := ev.TS - f.start
				if i > 0 {
					stacks[ev.Rank][i-1].child += dur
				}
				byKind := out[ev.Rank]
				if byKind == nil {
					byKind = map[[2]string]*SpanContribution{}
					out[ev.Rank] = byKind
				}
				key := [2]string{f.cat, f.name}
				c := byKind[key]
				if c == nil {
					c = &SpanContribution{Cat: f.cat, Name: f.name}
					byKind[key] = c
				}
				c.Count++
				c.Self += time.Duration(dur - f.child)
				break
			}
		}
	}
	return out
}

// stragglerTopSpans bounds how many span kinds each straggler entry lists.
const stragglerTopSpans = 3

// stragglers ranks every rank by busy time, slowest first, attaching the
// non-mpi span kinds with the most self time as the explanation.
func stragglers(events []obs.Event, ranks []RankTime) []Straggler {
	selves := selfTimes(events)
	out := make([]Straggler, 0, len(ranks))
	for _, rt := range ranks {
		s := Straggler{Rank: rt.Rank, Busy: rt.Busy}
		var contribs []SpanContribution
		for _, c := range selves[rt.Rank] {
			if c.Cat == "mpi" {
				continue
			}
			contribs = append(contribs, *c)
		}
		sort.Slice(contribs, func(i, j int) bool {
			if contribs[i].Self != contribs[j].Self {
				return contribs[i].Self > contribs[j].Self
			}
			return contribs[i].Name < contribs[j].Name
		})
		if len(contribs) > stragglerTopSpans {
			contribs = contribs[:stragglerTopSpans]
		}
		s.TopSpans = contribs
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Busy > out[j].Busy })
	return out
}
