package analyze

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/mrmpi"
	"repro/internal/obs"
)

// The analyzer recognizes master-protocol traffic by tag value without
// importing mrmpi; pin the literals to the real constants.
func TestMasterTagsMatchMrmpi(t *testing.T) {
	if WorkerReadyTag != mrmpi.TagWorkerReady {
		t.Errorf("WorkerReadyTag = %d, mrmpi.TagWorkerReady = %d", WorkerReadyTag, mrmpi.TagWorkerReady)
	}
	if TaskAssignTag != mrmpi.TagTaskAssign {
		t.Errorf("TaskAssignTag = %d, mrmpi.TagTaskAssign = %d", TaskAssignTag, mrmpi.TagTaskAssign)
	}
}

// ev builders for synthetic traces.
func begin(rank int, cat, name string, ts int64, args ...obs.Arg) obs.Event {
	return obs.Event{Type: obs.BeginEvent, Rank: rank, Cat: cat, Name: name, TS: ts, Args: args}
}
func end(rank int, cat, name string, ts int64, args ...obs.Arg) obs.Event {
	return obs.Event{Type: obs.EndEvent, Rank: rank, Cat: cat, Name: name, TS: ts, Args: args}
}
func instant(rank int, cat, name string, ts int64, args ...obs.Arg) obs.Event {
	return obs.Event{Type: obs.InstantEvent, Rank: rank, Cat: cat, Name: name, TS: ts, Args: args}
}

// TestCriticalPathHandoff: rank 0 works 0→100, sends; rank 1 waits from 10,
// receives at 105, works to 200. The path must hop from rank 1 back to rank
// 0 at the send time and total exactly the wall clock.
func TestCriticalPathHandoff(t *testing.T) {
	events := []obs.Event{
		begin(0, "app", "work", 0),
		begin(1, "mpi", "Recv", 10, obs.Arg{Key: "src", Val: 0}, obs.Arg{Key: "tag", Val: 5}),
		instant(0, "mpi", "Send", 100, obs.Arg{Key: "dst", Val: 1}, obs.Arg{Key: "tag", Val: 5}, obs.Arg{Key: "bytes", Val: 8}),
		end(0, "app", "work", 100),
		end(1, "mpi", "Recv", 105, obs.Arg{Key: "from", Val: 0}, obs.Arg{Key: "tag", Val: 5}, obs.Arg{Key: "bytes", Val: 8}),
		begin(1, "app", "work", 105),
		end(1, "app", "work", 200),
	}
	rep := Analyze(events)
	cp := rep.CriticalPath
	if cp.Total != rep.WallClock {
		t.Fatalf("critical path total %v != wall clock %v", cp.Total, rep.WallClock)
	}
	if len(cp.Segments) != 2 {
		t.Fatalf("segments = %+v, want 2", cp.Segments)
	}
	if cp.Segments[0].Rank != 0 || cp.Segments[0].Start != 0 || cp.Segments[0].End != 100 {
		t.Errorf("segment 0 = %+v, want rank 0 [0,100]", cp.Segments[0])
	}
	if cp.Segments[1].Rank != 1 || cp.Segments[1].Start != 100 || cp.Segments[1].End != 200 {
		t.Errorf("segment 1 = %+v, want rank 1 [100,200]", cp.Segments[1])
	}
}

// TestCriticalPathSkipsNonBlockingRecv: when the message was already
// waiting (send before the recv began), the receiving rank never stalled,
// so the path must stay on it.
func TestCriticalPathSkipsNonBlockingRecv(t *testing.T) {
	events := []obs.Event{
		instant(0, "mpi", "Send", 5, obs.Arg{Key: "dst", Val: 1}, obs.Arg{Key: "tag", Val: 7}),
		begin(1, "app", "work", 0),
		end(1, "app", "work", 40),
		begin(1, "mpi", "Recv", 40, obs.Arg{Key: "src", Val: 0}, obs.Arg{Key: "tag", Val: 7}),
		end(1, "mpi", "Recv", 45, obs.Arg{Key: "from", Val: 0}, obs.Arg{Key: "tag", Val: 7}),
		begin(1, "app", "work2", 45),
		end(1, "app", "work2", 150),
	}
	rep := Analyze(events)
	cp := rep.CriticalPath
	if cp.Total != rep.WallClock {
		t.Fatalf("critical path total %v != wall clock %v", cp.Total, rep.WallClock)
	}
	for _, seg := range cp.Segments {
		if seg.Rank != 1 {
			t.Errorf("segment %+v jumped off rank 1 for a non-blocking recv", seg)
		}
	}
}

// TestDispatchStats pairs ready requests with assignment receipts in order.
func TestDispatchStats(t *testing.T) {
	var events []obs.Event
	// Worker rank 1 asks 3 times; latencies 10, 20, 30.
	base := int64(0)
	for i, lat := range []int64{10, 20, 30} {
		s := base + int64(i)*100
		events = append(events,
			instant(1, "mpi", "Send", s, obs.Arg{Key: "dst", Val: 0}, obs.Arg{Key: "tag", Val: WorkerReadyTag}),
			begin(1, "mpi", "Recv", s+1, obs.Arg{Key: "src", Val: 0}, obs.Arg{Key: "tag", Val: TaskAssignTag}),
			end(1, "mpi", "Recv", s+lat, obs.Arg{Key: "from", Val: 0}, obs.Arg{Key: "tag", Val: TaskAssignTag}),
		)
	}
	rep := Analyze(events)
	d := rep.Dispatch
	if d == nil {
		t.Fatal("no dispatch stats")
	}
	if d.Count != 3 {
		t.Errorf("count = %d, want 3", d.Count)
	}
	if d.Mean != 20 {
		t.Errorf("mean = %d, want 20", d.Mean)
	}
	if d.Max != 30 {
		t.Errorf("max = %d, want 30", d.Max)
	}
	if d.P50 != 20 {
		t.Errorf("p50 = %d, want 20", d.P50)
	}
}

// TestPhaseImbalanceUsesBusyTime: two ranks in a "map" phase of equal span
// length (the trailing collective equalizes spans), but rank 1's phase is
// mostly an mpi wait. Raw durations would report imbalance 1.0; busy time
// must expose the 2× skew.
func TestPhaseImbalanceUsesBusyTime(t *testing.T) {
	events := []obs.Event{
		begin(0, "mrmpi", "map", 0),
		begin(1, "mrmpi", "map", 0),
		// rank 0: all 100 busy. rank 1: 50 busy, 50 blocked in Recv.
		begin(1, "mpi", "Recv", 50, obs.Arg{Key: "src", Val: 0}, obs.Arg{Key: "tag", Val: 3}),
		end(1, "mpi", "Recv", 100, obs.Arg{Key: "from", Val: 0}, obs.Arg{Key: "tag", Val: 3}),
		end(0, "mrmpi", "map", 100),
		end(1, "mrmpi", "map", 100),
	}
	rep := Analyze(events)
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "map" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	ps := rep.Phases[0]
	if ps.BusyByRank[0] != 100 || ps.BusyByRank[1] != 50 {
		t.Errorf("busy by rank = %v, want [100 50]", ps.BusyByRank)
	}
	if ps.MaxRank != 0 {
		t.Errorf("max rank = %d, want 0", ps.MaxRank)
	}
	want := float64(100) / float64(75)
	if ps.Imbalance < want-1e-9 || ps.Imbalance > want+1e-9 {
		t.Errorf("imbalance = %g, want %g", ps.Imbalance, want)
	}
}

// TestAnalyzeLiveTrace runs a real traced 4-rank MapReduce job through the
// analyzer: the critical path must total the wall clock exactly, every rank
// must appear, and the mrmpi phases must be reported.
func TestAnalyzeLiveTrace(t *testing.T) {
	tracer := obs.NewTracer()
	err := mpi.RunWith(4, mpi.RunOptions{Trace: tracer}, func(c *mpi.Comm) error {
		mr := mrmpi.New(c)
		defer mr.Close()
		if _, err := mr.Map(12, func(itask int, kv *mrmpi.KeyValue) error {
			kv.Add([]byte(fmt.Sprintf("key%d", itask%5)), []byte("v"))
			return nil
		}); err != nil {
			return err
		}
		if _, err := mr.Collate(nil); err != nil {
			return err
		}
		_, err := mr.Reduce(func(key []byte, values [][]byte, out *mrmpi.KeyValue) error {
			out.Add(key, []byte(fmt.Sprintf("%d", len(values))))
			return nil
		})
		c.Barrier()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tracer.Events()
	rep := Analyze(events)
	if rep.NumRanks != 4 {
		t.Fatalf("num ranks = %d, want 4", rep.NumRanks)
	}
	if rep.CriticalPath.Total != rep.WallClock {
		t.Errorf("critical path total %v != wall clock %v", rep.CriticalPath.Total, rep.WallClock)
	}
	names := map[string]bool{}
	for _, ps := range rep.Phases {
		names[ps.Name] = true
	}
	for _, want := range []string{"map", "collate", "aggregate", "convert", "reduce"} {
		if !names[want] {
			t.Errorf("phase %q missing from report (have %v)", want, names)
		}
	}
	if len(rep.Stragglers) != 4 {
		t.Errorf("stragglers = %d entries, want 4", len(rep.Stragglers))
	}
	// Wait-blame: the provenance-carrying live trace must attribute at least
	// 95% of measured blocking time to a named (peer, phase, span).
	if rep.BlameCoverage < 0.95 {
		t.Errorf("blame coverage = %v, want >= 0.95", rep.BlameCoverage)
	}
	if len(rep.Blame) != 4 {
		t.Errorf("blame tables = %d, want 4 ranks", len(rep.Blame))
	}

	// The same trace must survive a Chrome JSON round trip (args become
	// float64) and still analyze cleanly.
	var buf bytes.Buffer
	if err := tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, meta, err := obs.ReadTraceMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRanks != 4 {
		t.Errorf("meta ranks = %d, want 4", meta.NumRanks)
	}
	rep2 := Analyze(parsed)
	if rep2.CriticalPath.Total != rep2.WallClock {
		t.Errorf("round-tripped critical path total %v != wall clock %v", rep2.CriticalPath.Total, rep2.WallClock)
	}

	// And the text rendering includes every section.
	var out strings.Builder
	if err := WriteReport(&out, rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"per-rank time", "phase load balance", "critical path", "blocked-on"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestAnalyzeEmpty: no events, no panic.
func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.WallClock != 0 || rep.NumRanks != 0 || len(rep.Stragglers) != 0 {
		t.Errorf("empty analysis = %+v", rep)
	}
	var out strings.Builder
	if err := WriteReport(&out, rep); err != nil {
		t.Fatal(err)
	}
}

// TestMergeIntervals covers the coalescing helper.
func TestMergeIntervals(t *testing.T) {
	merged, total := mergeIntervals([]interval{{5, 10}, {0, 6}, {20, 30}})
	if total != 20 {
		t.Errorf("total = %d, want 20", total)
	}
	if len(merged) != 2 {
		t.Errorf("merged = %+v, want 2 intervals", merged)
	}
	if got := overlap(merged, 8, 25); got != 7 {
		t.Errorf("overlap = %d, want 7 (2 from [8,10) + 5 from [20,25))", got)
	}
	if d := time.Duration(total); d != 20 {
		t.Errorf("duration conversion = %v", d)
	}
}
