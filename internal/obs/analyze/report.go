package analyze

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// WriteReport renders the analysis as plain text (cmd/traceview -analyze).
func WriteReport(w io.Writer, rep Report) error {
	fmt.Fprintf(w, "wall clock %v across %d rank(s)\n", rep.WallClock.Round(time.Microsecond), rep.NumRanks)

	fmt.Fprintln(w, "\nper-rank time:")
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tbusy\tcomm\tidle")
	for _, rt := range rep.Ranks {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", rt.Rank,
			rt.Busy.Round(time.Microsecond), rt.Comm.Round(time.Microsecond), rt.Idle.Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(rep.Phases) > 0 {
		fmt.Fprintln(w, "\nphase load balance (busy time, max/mean):")
		tw = tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\tmax\tmean\timbalance\tslowest rank")
		for _, ps := range rep.Phases {
			fmt.Fprintf(tw, "%s\t%v\t%v\t%.2f\t%d\n", ps.Name,
				ps.Max.Round(time.Microsecond), ps.Mean.Round(time.Microsecond), ps.Imbalance, ps.MaxRank)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if rep.Dispatch != nil {
		d := rep.Dispatch
		fmt.Fprintf(w, "\nmaster dispatch latency: n=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
			d.Count, d.Mean.Round(time.Microsecond), d.P50.Round(time.Microsecond),
			d.P95.Round(time.Microsecond), d.P99.Round(time.Microsecond), d.Max.Round(time.Microsecond))
	}

	if len(rep.Stragglers) > 0 {
		fmt.Fprintln(w, "\nstragglers (by busy time):")
		tw = tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "rank\tbusy\ttop spans (self time)")
		for _, s := range rep.Stragglers {
			tops := ""
			for i, c := range s.TopSpans {
				if i > 0 {
					tops += ", "
				}
				tops += fmt.Sprintf("%s:%s ×%d %v", c.Cat, c.Name, c.Count, c.Self.Round(time.Microsecond))
			}
			fmt.Fprintf(tw, "%d\t%v\t%s\n", s.Rank, s.Busy.Round(time.Microsecond), tops)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "\ncritical path: %v over %d segment(s)\n",
		rep.CriticalPath.Total.Round(time.Microsecond), len(rep.CriticalPath.Segments))
	tw = tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tfrom\tto\tdur")
	for _, s := range rep.CriticalPath.Segments {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", s.Rank,
			time.Duration(s.Start).Round(time.Microsecond),
			time.Duration(s.End).Round(time.Microsecond),
			s.Dur().Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if hasBlame(rep.Blame) {
		if err := WriteBlame(w, rep.Blame, rep.BlameCoverage); err != nil {
			return err
		}
	}

	if rep.Comm != nil {
		return writeCommSection(w, rep.Comm)
	}
	return nil
}

// WriteBlame renders the per-rank blocked-on tables: for each rank, the
// contexts (sender span, peer rank, phase) its measured wait time resolves
// to, largest first. Standalone entry point for traceview -blame; WriteReport
// embeds the same section.
func WriteBlame(w io.Writer, blame []RankBlame, coverage float64) error {
	fmt.Fprintf(w, "\nblocked-on (wait-blame, %.0f%% of wait time attributed):\n", coverage*100)
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\twait\tblocked on")
	for _, rb := range blame {
		if rb.TotalWait == 0 {
			continue
		}
		tops := ""
		for i, e := range rb.Entries {
			if i >= blameTopEntries {
				break
			}
			if i > 0 {
				tops += ", "
			}
			span, phase := e.Span, e.Phase
			if span == "" {
				span = "(untracked)"
			}
			if phase == "" {
				phase = "-"
			}
			tops += fmt.Sprintf("%s on rank %d (%s) %v",
				span, e.Peer, phase, e.Wait.Round(time.Microsecond))
		}
		fmt.Fprintf(tw, "%d\t%v\t%s\n", rb.Rank, rb.TotalWait.Round(time.Microsecond), tops)
	}
	return tw.Flush()
}

// blameTopEntries bounds how many blamed contexts each rank's report line
// lists (the JSON report keeps the full tables).
const blameTopEntries = 3

// hasBlame reports whether any rank measured blocked time worth printing.
func hasBlame(blame []RankBlame) bool {
	for _, rb := range blame {
		if rb.TotalWait > 0 {
			return true
		}
	}
	return false
}
