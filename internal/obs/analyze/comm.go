package analyze

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/obs/comm"
)

// commTopLinks bounds how many heavy links the comm section lists.
const commTopLinks = 5

// commFitMinSamples is the per-link sample floor for the α–β fit table.
const commFitMinSamples = 8

// CommReport is the communication-matrix section of a Report: volume totals,
// per-phase aggregates, send-side load balance across ranks, the heaviest
// links, and the fitted α–β cost model. It is built from a comm.Matrix
// recorded alongside the trace (mrblast/mrsom -comm), so traces analyzed
// without comm accounting simply omit it.
type CommReport struct {
	// TotalMsgs and TotalBytes count delivered traffic across all links.
	TotalMsgs  int64 `json:"total_msgs"`
	TotalBytes int64 `json:"total_bytes"`
	// Phases aggregates traffic per mrmpi phase, heaviest first.
	Phases []comm.PhaseTotal `json:"phases"`
	// SentByRank is bytes sent per source rank, indexed by rank.
	SentByRank []int64 `json:"sent_by_rank"`
	// SendImbalance is max/mean of SentByRank (1.0 = every rank sends the
	// same volume; 0 when nothing was sent). A master–worker run is expected
	// to be lopsided; a data-parallel phase is not.
	SendImbalance float64 `json:"send_imbalance"`
	// TopLinks are the heaviest (src, dst, phase) links by delivered bytes.
	TopLinks []comm.Link `json:"top_links"`
	// Fit is the global α–β model over every regression sample; nil when the
	// matrix carries too few samples to regress.
	Fit *comm.Fit `json:"fit,omitempty"`
	// LinkFits are per-rank-pair fits where enough samples exist.
	LinkFits []comm.LinkFit `json:"link_fits,omitempty"`
}

// AnalyzeComm summarizes a communication matrix into the Report's comm
// section. Attach the result to Report.Comm to have WriteReport render it.
func AnalyzeComm(m *comm.Matrix) *CommReport {
	if m == nil || len(m.Links) == 0 {
		return nil
	}
	cr := &CommReport{
		Phases:     m.PhaseTotals(),
		SentByRank: make([]int64, m.NumRanks),
		TopLinks:   m.TopLinks(commTopLinks),
	}
	cr.TotalMsgs, cr.TotalBytes = m.Totals()
	for i := range m.Links {
		l := &m.Links[i]
		if l.Src < len(cr.SentByRank) {
			cr.SentByRank[l.Src] += l.SentBytes
		}
	}
	var max, sum int64
	for _, b := range cr.SentByRank {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum > 0 && len(cr.SentByRank) > 0 {
		mean := float64(sum) / float64(len(cr.SentByRank))
		cr.SendImbalance = float64(max) / mean
	}
	if fit, ok := comm.FitAlphaBeta(m.AllSamples()); ok {
		cr.Fit = &fit
	}
	cr.LinkFits = m.FitPerLink(commFitMinSamples)
	return cr
}

// writeCommSection renders the comm section of WriteReport.
func writeCommSection(w io.Writer, cr *CommReport) error {
	fmt.Fprintf(w, "\ncommunication: %d msgs, %d bytes delivered\n", cr.TotalMsgs, cr.TotalBytes)
	if len(cr.Phases) > 0 {
		tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
		fmt.Fprintln(tw, "phase\tmsgs\tbytes\tavg queue\tmax queue")
		for _, p := range cr.Phases {
			name := p.Phase
			if name == "" {
				name = "(none)"
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\n", name, p.Msgs, p.Bytes,
				p.AvgQueue().Round(time.Microsecond),
				time.Duration(p.MaxQueueNS).Round(time.Microsecond))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "send volume by rank (imbalance %.2f):", cr.SendImbalance)
	for r, b := range cr.SentByRank {
		fmt.Fprintf(w, " %d:%d", r, b)
	}
	fmt.Fprintln(w)
	if len(cr.TopLinks) > 0 {
		fmt.Fprintln(w, "heaviest links:")
		for i := range cr.TopLinks {
			l := &cr.TopLinks[i]
			fmt.Fprintf(w, "  %d->%d phase=%s: %d msgs, %d bytes\n", l.Src, l.Dst, l.Phase, l.Msgs, l.Bytes)
		}
	}
	if cr.Fit != nil {
		fmt.Fprintf(w, "α–β model: %s\n", cr.Fit)
	}
	for _, lf := range cr.LinkFits {
		fmt.Fprintf(w, "  %d->%d: %s\n", lf.Src, lf.Dst, lf.Fit.String())
	}
	return nil
}
