package analyze

import (
	"strings"
	"testing"

	"repro/internal/obs/comm"
)

// commFixture records a small two-phase exchange through a real tracker so
// the test exercises the same merge path as a live run.
func commFixture() *comm.Matrix {
	tracker := comm.NewTracker()
	tracker.Rank(0).SetPhase("map")
	tracker.Rank(1).SetPhase("map")
	// Rank 0 is the heavy sender: 10 messages with a perfect α–β latency
	// (α = 1000ns, β = 2ns/B) so the fit recovers it.
	for i := 1; i <= 10; i++ {
		size := int64(i * 100)
		tracker.Rank(0).RecordSend(1, 1, size, uint64(i))
		tracker.Rank(1).RecordRecv(0, 1, size, 1000+2*size, 100, uint64(i), "map")
	}
	tracker.Rank(1).SetPhase("reduce")
	tracker.Rank(1).RecordSend(0, 2, 50, 1)
	tracker.Rank(0).RecordRecv(1, 2, 50, 500, 50, 1, "reduce")
	return tracker.Finalize()
}

func TestAnalyzeComm(t *testing.T) {
	cr := AnalyzeComm(commFixture())
	if cr == nil {
		t.Fatal("AnalyzeComm returned nil for a populated matrix")
	}
	if cr.TotalMsgs != 11 {
		t.Fatalf("TotalMsgs = %d, want 11", cr.TotalMsgs)
	}
	wantBytes := int64(100+200+300+400+500+600+700+800+900+1000) + 50
	if cr.TotalBytes != wantBytes {
		t.Fatalf("TotalBytes = %d, want %d", cr.TotalBytes, wantBytes)
	}
	if len(cr.Phases) != 2 || cr.Phases[0].Phase != "map" {
		t.Fatalf("Phases = %+v, want map first (heaviest)", cr.Phases)
	}
	if len(cr.SentByRank) != 2 || cr.SentByRank[0] != wantBytes-50 || cr.SentByRank[1] != 50 {
		t.Fatalf("SentByRank = %v", cr.SentByRank)
	}
	// max/mean: rank 0 sent 5500 of 5550 total → 5500/(5550/2).
	wantImb := float64(wantBytes-50) / (float64(wantBytes) / 2)
	if diff := cr.SendImbalance - wantImb; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("SendImbalance = %v, want %v", cr.SendImbalance, wantImb)
	}
	if len(cr.TopLinks) == 0 || cr.TopLinks[0].Src != 0 || cr.TopLinks[0].Dst != 1 {
		t.Fatalf("TopLinks = %+v, want 0->1 heaviest", cr.TopLinks)
	}
	if cr.Fit == nil {
		t.Fatal("global fit missing despite 11 samples")
	}
	// The 0->1 link's 10 exact samples dominate: α ≈ 1000ns, β ≈ 2ns/B.
	if len(cr.LinkFits) != 1 || cr.LinkFits[0].Src != 0 || cr.LinkFits[0].Dst != 1 {
		t.Fatalf("LinkFits = %+v, want exactly the 0->1 fit", cr.LinkFits)
	}
	fit := cr.LinkFits[0].Fit
	if fit.AlphaNS < 999 || fit.AlphaNS > 1001 || fit.BetaNSPerByte < 1.99 || fit.BetaNSPerByte > 2.01 {
		t.Fatalf("0->1 fit = %+v, want α≈1000 β≈2", fit)
	}
}

func TestAnalyzeCommEmpty(t *testing.T) {
	if cr := AnalyzeComm(nil); cr != nil {
		t.Fatalf("AnalyzeComm(nil) = %+v, want nil", cr)
	}
	if cr := AnalyzeComm(&comm.Matrix{}); cr != nil {
		t.Fatalf("AnalyzeComm(empty) = %+v, want nil", cr)
	}
}

// TestWriteReportWithComm checks the comm section renders when attached and
// is absent otherwise.
func TestWriteReportWithComm(t *testing.T) {
	rep := Report{Comm: AnalyzeComm(commFixture())}
	var sb strings.Builder
	if err := WriteReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"communication: 11 msgs", "send volume by rank", "α–β model:", "0->1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := WriteReport(&sb, Report{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "communication:") {
		t.Fatalf("comm section rendered without a matrix:\n%s", sb.String())
	}
}
