package analyze

import (
	"fmt"
	"testing"

	"repro/internal/bio"
	"repro/internal/blast"
	"repro/internal/blastdb"
	"repro/internal/mpi"
	"repro/internal/mrblast"
	"repro/internal/mrmpi"
	"repro/internal/obs"
)

// TestStragglerDetectionMrblast is the analyzer acceptance test: a traced
// master-mapstyle mrblast run where one DB partition is artificially slow
// (a single sequence an order of magnitude larger than the rest, so the
// formatter cannot split it). The analyzer must report the rank that drew
// that partition as the top straggler, a map-phase load-imbalance factor
// above 1, and a critical-path total equal to the trace wall clock.
func TestStragglerDetectionMrblast(t *testing.T) {
	g := bio.NewGenerator(bio.SynthParams{Seed: 4242})
	small := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 3, MinLen: 1500, MaxLen: 2500,
		StrainsPerGenome: 1, StrainIdentity: 0.93,
	})
	// One giant genome dwarfing the others: it lands alone in one
	// partition whose search time dominates the run.
	huge := g.GenerateGenomeSet(bio.GenomeSetParams{
		NTaxa: 1, MinLen: 40000, MaxLen: 45000,
		StrainsPerGenome: 1, StrainIdentity: 0.93,
	})
	for i, s := range huge.Genomes {
		s.ID = fmt.Sprintf("huge%04d", i)
	}
	genomes := append(append([]*bio.Sequence{}, small.Genomes...), huge.Genomes...)

	var strains []*bio.Sequence
	for _, ss := range small.Strains {
		strains = append(strains, ss...)
	}
	frags, err := bio.ShredAll(strains, bio.ShredParams{FragLen: 400, Overlap: 200, MinLen: 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) > 16 {
		frags = frags[:16]
	}

	m, err := blastdb.Format(genomes, bio.DNA, t.TempDir(), "db",
		blastdb.FormatOptions{TargetResidues: 3000})
	if err != nil {
		t.Fatal(err)
	}
	nparts := m.NumPartitions()
	if nparts < 3 {
		t.Fatalf("need >= 3 partitions for a meaningful straggler run, got %d", nparts)
	}

	params := blast.DefaultNucleotideParams()
	params.EValueCutoff = 1e-5
	tracer := obs.NewTracer()
	err = mpi.RunWith(4, mpi.RunOptions{Trace: tracer}, func(c *mpi.Comm) error {
		_, err := mrblast.Run(c, mrblast.Config{
			Params:      params,
			QueryBlocks: [][]*bio.Sequence{frags},
			Manifest:    m,
			MapStyle:    mrmpi.MapStyleMaster,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	events := tracer.Events()
	// The trace tells us which rank drew the huge partition: the one with
	// the most mrblast:engine.search self time.
	var searchTime [4]int64
	obs.PairSpans(events, func(sp obs.SpanInstance) {
		if sp.Cat == "mrblast" && sp.Name == "engine.search" {
			searchTime[sp.Rank] += int64(sp.Dur)
		}
	})
	slowRank, best := -1, int64(0)
	for r, d := range searchTime {
		if d > best {
			slowRank, best = r, d
		}
	}
	if slowRank <= 0 {
		t.Fatalf("no worker did search work (search times %v)", searchTime)
	}

	rep := Analyze(events)
	if len(rep.Stragglers) == 0 {
		t.Fatal("no stragglers reported")
	}
	if got := rep.Stragglers[0].Rank; got != slowRank {
		t.Errorf("top straggler = rank %d, want rank %d (search times %v)", got, slowRank, searchTime)
	}
	if len(rep.Stragglers[0].TopSpans) == 0 {
		t.Error("top straggler has no contributing spans")
	}

	var mapPhase *PhaseStat
	for i := range rep.Phases {
		if rep.Phases[i].Name == "map" {
			mapPhase = &rep.Phases[i]
		}
	}
	if mapPhase == nil {
		t.Fatal("no map phase in report")
	}
	if mapPhase.Imbalance <= 1 {
		t.Errorf("map imbalance = %g, want > 1 (busy by rank %v)", mapPhase.Imbalance, mapPhase.BusyByRank)
	}
	if mapPhase.MaxRank != slowRank {
		t.Errorf("map phase slowest rank = %d, want %d", mapPhase.MaxRank, slowRank)
	}

	if rep.CriticalPath.Total != rep.WallClock {
		t.Errorf("critical path total %v != wall clock %v", rep.CriticalPath.Total, rep.WallClock)
	}

	// Master-style run: dispatch latency must be measured.
	if rep.Dispatch == nil || rep.Dispatch.Count == 0 {
		t.Error("no dispatch latency measured on a master-style run")
	}
}
