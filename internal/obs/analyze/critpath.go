package analyze

import "repro/internal/obs/causal"

// Critical-path extraction and wait-blame live in internal/obs/causal: the
// runtime piggybacks a per-link sequence number and the sender's span id on
// every message, and the causal stitcher turns the trace into an exact
// cross-rank happens-before DAG. The analyzer delegates to it — the segment
// and path types are aliased so the report's JSON shape (and every existing
// consumer) is unchanged from the old FIFO-heuristic implementation this
// file used to hold. Traces recorded without provenance still analyze via
// causal's FIFO fallback, which reproduces the old pairing.

// Segment is one rank's stretch of the critical path.
type Segment = causal.Segment

// CriticalPath is the chain of segments, earliest first.
type CriticalPath = causal.CriticalPath

// RankBlame is one rank's blocked-on table.
type RankBlame = causal.RankBlame
