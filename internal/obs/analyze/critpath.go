package analyze

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// Critical-path extraction. The runtime builds every collective except
// Barrier out of traced point-to-point traffic (Send instants and Recv
// spans on negative internal tags), so one generic matching covers p2p and
// collective edges: the k-th Send instant for a (src, dst, tag) triple pairs
// with the k-th completed Recv on dst from (src, tag) — MPI non-overtaking
// makes that FIFO pairing exact. Barrier is message-less (a shared
// generation counter), so its edges are matched by occurrence index: the
// k-th Barrier span on every rank is the same barrier, and its resolver is
// the last rank to arrive.
//
// The path is then a backward replay from the last event in the trace: walk
// back along the current rank until a span where the rank was genuinely
// blocked (its resolver arrived after the wait began), jump to the resolving
// rank at the resolution time, repeat. Segments are contiguous by
// construction, so their total equals the trace wall clock exactly.

// Segment is one rank's stretch of the critical path.
type Segment struct {
	Rank  int   `json:"rank"`
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
}

// Dur is the segment length.
func (s Segment) Dur() time.Duration { return time.Duration(s.End - s.Start) }

// CriticalPath is the chain of segments, earliest first.
type CriticalPath struct {
	Segments []Segment `json:"segments"`
	// Total is the summed segment time; equal to the trace wall clock by
	// construction (the acceptance check of the extraction).
	Total time.Duration `json:"total_ns"`
}

// blocker is one wait on a rank that some other rank resolved.
type blocker struct {
	start, end int64
	resolve    int64 // when the resolver made progress possible
	from       int   // the resolving rank
}

// buildBlockers derives every rank's blocker list (sorted by end time) from
// Send↔Recv matching and Barrier occurrence matching.
func buildBlockers(events []obs.Event, spans []obs.SpanInstance, numRanks int) [][]blocker {
	out := make([][]blocker, numRanks)

	// Send instants per (src, dst, tag), in send order (events are
	// TS-ordered, per-rank order preserved).
	type edge struct {
		src, dst int
		tag      int64
	}
	sends := map[edge][]int64{}
	for _, ev := range events {
		if ev.Type != obs.InstantEvent || ev.Cat != "mpi" || ev.Name != "Send" {
			continue
		}
		dst, ok1 := argInt(ev.Args, "dst")
		tag, ok2 := argInt(ev.Args, "tag")
		if !ok1 || !ok2 {
			continue
		}
		e := edge{src: ev.Rank, dst: int(dst), tag: tag}
		sends[e] = append(sends[e], ev.TS)
	}

	// Completed Recvs per (src, dst, tag) in completion order; PairSpans
	// yields in End order already.
	matched := map[edge]int{}
	for _, sp := range spans {
		switch {
		case sp.Cat == "mpi" && sp.Name == "Recv":
			from, ok1 := argInt(sp.EndArgs, "from")
			tag, ok2 := argInt(sp.EndArgs, "tag")
			if !ok1 || !ok2 {
				continue
			}
			e := edge{src: int(from), dst: sp.Rank, tag: tag}
			k := matched[e]
			matched[e] = k + 1
			if k >= len(sends[e]) {
				continue // truncated trace: recv without its send
			}
			out[sp.Rank] = append(out[sp.Rank], blocker{
				start:   sp.Start,
				end:     sp.End(),
				resolve: sends[e][k],
				from:    int(from),
			})
		}
	}

	// Barriers: k-th span on each rank is occurrence k; the resolver is the
	// last arrival.
	barriers := make([][]obs.SpanInstance, numRanks)
	maxOcc := 0
	for _, sp := range spans {
		if sp.Cat != "mpi" || sp.Name != "Barrier" {
			continue
		}
		barriers[sp.Rank] = append(barriers[sp.Rank], sp)
		if len(barriers[sp.Rank]) > maxOcc {
			maxOcc = len(barriers[sp.Rank])
		}
	}
	for r := range barriers {
		sort.Slice(barriers[r], func(i, j int) bool { return barriers[r][i].Start < barriers[r][j].Start })
	}
	for k := 0; k < maxOcc; k++ {
		lastRank, lastTS := -1, int64(-1)
		for r := 0; r < numRanks; r++ {
			if k >= len(barriers[r]) {
				continue
			}
			if barriers[r][k].Start > lastTS {
				lastRank, lastTS = r, barriers[r][k].Start
			}
		}
		if lastRank < 0 {
			continue
		}
		for r := 0; r < numRanks; r++ {
			if k >= len(barriers[r]) || r == lastRank {
				continue
			}
			sp := barriers[r][k]
			out[r] = append(out[r], blocker{
				start:   sp.Start,
				end:     sp.End(),
				resolve: lastTS,
				from:    lastRank,
			})
		}
	}

	for r := range out {
		sort.Slice(out[r], func(i, j int) bool { return out[r][i].end < out[r][j].end })
	}
	return out
}

// criticalPath runs the backward replay over the blocker lists.
func criticalPath(events []obs.Event, spans []obs.SpanInstance, minTS, maxTS int64) CriticalPath {
	numRanks := 0
	endRank := 0
	for _, ev := range events {
		if ev.Rank+1 > numRanks {
			numRanks = ev.Rank + 1
		}
		if ev.TS == maxTS {
			endRank = ev.Rank
		}
	}
	if numRanks == 0 {
		return CriticalPath{}
	}
	blockers := buildBlockers(events, spans, numRanks)

	var segments []Segment
	r, t := endRank, maxTS
	cursor := t
	for t > minTS {
		bl := blockers[r]
		// Latest blocker ending at or before the scan cursor.
		i := sort.Search(len(bl), func(i int) bool { return bl[i].end > cursor }) - 1
		var hop *blocker
		for ; i >= 0; i-- {
			b := bl[i]
			// A wait only matters if the resolver arrived after the wait
			// began (and strictly before the segment end, for progress).
			if b.resolve > b.start && b.resolve < t {
				hop = &b
				break
			}
			// Otherwise the message was already waiting — the rank never
			// actually stalled there; keep scanning earlier waits.
		}
		if hop == nil {
			segments = append(segments, Segment{Rank: r, Start: minTS, End: t})
			break
		}
		segments = append(segments, Segment{Rank: r, Start: hop.resolve, End: t})
		t = hop.resolve
		cursor = t
		r = hop.from
	}
	// Reverse into chronological order.
	for i, j := 0, len(segments)-1; i < j; i, j = i+1, j-1 {
		segments[i], segments[j] = segments[j], segments[i]
	}
	cp := CriticalPath{Segments: segments}
	for _, s := range segments {
		cp.Total += s.Dur()
	}
	return cp
}
