package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the registry, plus a
// dependency-free conformance checker. The live server's /metrics endpoint
// serves WritePrometheus output so any Prometheus-compatible scraper can
// collect a run; CI's metrics-smoke job scrapes it and runs
// ValidatePrometheus over the body.

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promName sanitizes a registry instrument name ("mpi.send.bytes") into a
// legal Prometheus metric name ("mpi_send_bytes").
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float sample value the way Prometheus expects.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format: counters with the _total suffix, gauges as-is, and histograms as
// summaries (quantile series plus _sum and _count), each family preceded by
// HELP and TYPE lines. The original dotted registry name is kept in HELP so
// the mapping stays greppable.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		name := promName(c.Name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		fmt.Fprintf(w, "# HELP %s counter %s\n", name, c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(w, "# HELP %s gauge %s\n", name, g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %d\n", name, g.Value)
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(w, "# HELP %s summary %s\n", name, h.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %s\n", name, promFloat(h.P50))
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %s\n", name, promFloat(h.P95))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %s\n", name, promFloat(h.P99))
		fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	}
	return nil
}

var (
	promHelpRe  = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	promTypeRe  = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promValueRe = regexp.MustCompile(`^(NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// splitPromSample splits `name{labels} value [ts]` into its parts. It
// returns an error describing the first malformed piece.
func splitPromSample(line string) (name, labels, rest string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces")
		}
		return line[:i], line[i+1 : j], strings.TrimSpace(line[j+1:]), nil
	}
	fields := strings.SplitN(line, " ", 2)
	if len(fields) != 2 {
		return "", "", "", fmt.Errorf("no value")
	}
	return fields[0], "", strings.TrimSpace(fields[1]), nil
}

// validatePromLabels checks `k="v",k2="v2"` label syntax.
func validatePromLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		if !promLabelRe.MatchString(key) {
			return fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %q value not quoted", key)
		}
		// Scan the quoted value honoring \\ and \" escapes.
		i := 1
		for {
			if i >= len(s) {
				return fmt.Errorf("label %q value not terminated", key)
			}
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}

// ValidatePrometheus is a parser-based conformance check of a text
// exposition body: every line must be a well-formed comment, HELP, TYPE, or
// sample; TYPE must precede its family's samples and appear at most once
// per family; sample values must parse; and identical (name, labels) pairs
// must not repeat. It is deliberately dependency-free — the point is that
// CI can verify scrape output without a Prometheus client library.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := map[string]string{}   // family → declared type
	seen := map[string]bool{}      // name{labels} → dup check
	sampled := map[string]bool{}   // family → has samples (TYPE must come first)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := promTypeRe.FindStringSubmatch(line); m != nil {
				if _, dup := typed[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, m[1])
				}
				if sampled[m[1]] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, m[1])
				}
				typed[m[1]] = m[2]
				continue
			}
			if promHelpRe.MatchString(line) {
				continue
			}
			if strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
				return fmt.Errorf("line %d: malformed %s line: %q", lineNo, strings.Fields(line)[1], line)
			}
			continue // free-form comment
		}
		name, labels, rest, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v: %q", lineNo, err, line)
		}
		if !promNameRe.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		if labels != "" {
			if err := validatePromLabels(labels); err != nil {
				return fmt.Errorf("line %d: %v: %q", lineNo, err, line)
			}
		}
		parts := strings.Fields(rest)
		if len(parts) == 0 || len(parts) > 2 {
			return fmt.Errorf("line %d: expected value [timestamp], got %q", lineNo, rest)
		}
		if !promValueRe.MatchString(parts[0]) {
			return fmt.Errorf("line %d: bad sample value %q", lineNo, parts[0])
		}
		if len(parts) == 2 {
			if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", lineNo, parts[1])
			}
		}
		// The family of name{...} is name minus a summary/histogram suffix.
		family := name
		for _, suf := range []string{"_sum", "_count", "_bucket"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if ty := typed[base]; ty == "summary" || ty == "histogram" {
					family = base
				}
				break
			}
		}
		sampled[family] = true
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(seen) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}
