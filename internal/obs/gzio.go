package obs

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"
	"strings"
)

// OpenInput opens path for reading, transparently decompressing gzip: the
// decision is made by content (the 0x1f 0x8b magic), not by file name, so a
// renamed .gz still reads and a plain file named *.gz still reads.
func OpenInput(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := MaybeGzip(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &inputReader{r: r, close: f.Close}, nil
}

// MaybeGzip sniffs r and, when it starts with the gzip magic, returns a
// decompressing reader; otherwise it returns an equivalent reader that
// replays the sniffed bytes. Use for io.Reader plumbing where there is no
// path to open (ReadFlightDump, ReadTraceMeta).
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil || magic[0] != 0x1f || magic[1] != 0x8b {
		// Too short to be gzip or plainly not gzip: hand back the buffered
		// stream (Peek errors surface on the first Read).
		return br, nil
	}
	return gzip.NewReader(br)
}

// inputReader pairs a (possibly gzip) reader with the file close.
type inputReader struct {
	r     io.Reader
	close func() error
}

func (ir *inputReader) Read(p []byte) (int, error) { return ir.r.Read(p) }

func (ir *inputReader) Close() error {
	var gzErr error
	if gz, ok := ir.r.(*gzip.Reader); ok {
		gzErr = gz.Close()
	}
	if err := ir.close(); err != nil {
		return err
	}
	return gzErr
}

// CreateOutput creates path for writing, gzip-compressing when the name
// ends in ".gz" — the writer-side convention every artifact flag shares
// (-trace x.json.gz, -comm y.json.gz, -o report.gz). Close flushes the
// compressor before the file.
func CreateOutput(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	return &outputWriter{gz: gzip.NewWriter(f), f: f}, nil
}

// outputWriter chains gzip.Close (which writes the trailer) before the
// file's own close.
type outputWriter struct {
	gz *gzip.Writer
	f  *os.File
}

func (ow *outputWriter) Write(p []byte) (int, error) { return ow.gz.Write(p) }

func (ow *outputWriter) Close() error {
	gzErr := ow.gz.Close()
	if err := ow.f.Close(); err != nil {
		return err
	}
	return gzErr
}
