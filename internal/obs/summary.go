package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// SpanStat aggregates every completed span of one (rank, category, name):
// the count/total/mean/max rows of the per-phase summary table.
type SpanStat struct {
	Rank  int
	Cat   string
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean is Total/Count (0 when empty).
func (s SpanStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// SpanInstance is one completed span, used for slowest-span reports and by
// the trace analyzer. Args carries the Begin event's annotations; EndArgs
// the End event's (e.g. the matched source of a Recv).
type SpanInstance struct {
	Rank    int
	Cat     string
	Name    string
	Start   int64 // ns since trace start
	Dur     time.Duration
	Args    []Arg
	EndArgs []Arg
}

// End is the span's completion timestamp in ns since trace start.
func (s SpanInstance) End() int64 { return s.Start + int64(s.Dur) }

// PairSpans walks the stream pairing Begin/End per rank (innermost-first,
// the same discipline Validate enforces) and yields each completed span in
// End order. Unbalanced events are skipped rather than rejected, so
// summaries still work on truncated traces.
func PairSpans(events []Event, yield func(SpanInstance)) {
	stacks := map[int][]Event{}
	for _, ev := range events {
		switch ev.Type {
		case BeginEvent:
			stacks[ev.Rank] = append(stacks[ev.Rank], ev)
		case EndEvent:
			st := stacks[ev.Rank]
			for i := len(st) - 1; i >= 0; i-- {
				if st[i].Cat == ev.Cat && st[i].Name == ev.Name {
					b := st[i]
					stacks[ev.Rank] = append(st[:i], st[i+1:]...)
					yield(SpanInstance{
						Rank:    ev.Rank,
						Cat:     b.Cat,
						Name:    b.Name,
						Start:   b.TS,
						Dur:     time.Duration(ev.TS - b.TS),
						Args:    b.Args,
						EndArgs: ev.Args,
					})
					break
				}
			}
		}
	}
}

// Summarize aggregates completed spans by (rank, category, name), sorted by
// rank then category then name.
func Summarize(events []Event) []SpanStat {
	type key struct {
		rank      int
		cat, name string
	}
	agg := map[key]*SpanStat{}
	PairSpans(events, func(sp SpanInstance) {
		k := key{sp.Rank, sp.Cat, sp.Name}
		st := agg[k]
		if st == nil {
			st = &SpanStat{Rank: sp.Rank, Cat: sp.Cat, Name: sp.Name}
			agg[k] = st
		}
		st.Count++
		st.Total += sp.Dur
		if sp.Dur > st.Max {
			st.Max = sp.Dur
		}
	})
	out := make([]SpanStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopSlowest returns the n longest completed spans, longest first.
func TopSlowest(events []Event, n int) []SpanInstance {
	var all []SpanInstance
	PairSpans(events, func(sp SpanInstance) { all = append(all, sp) })
	sort.Slice(all, func(i, j int) bool { return all[i].Dur > all[j].Dur })
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// WriteSummaryTable renders the per-phase summary: one row per (rank,
// category:name) with count, total, mean, and max durations.
func WriteSummaryTable(w io.Writer, stats []SpanStat) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tphase\tcount\ttotal\tmean\tmax")
	for _, st := range stats {
		fmt.Fprintf(tw, "%d\t%s:%s\t%d\t%v\t%v\t%v\n",
			st.Rank, st.Cat, st.Name, st.Count,
			st.Total.Round(time.Microsecond),
			st.Mean().Round(time.Microsecond),
			st.Max.Round(time.Microsecond))
	}
	return tw.Flush()
}

// WriteTopSpans renders the slowest-span report.
func WriteTopSpans(w io.Writer, spans []SpanInstance) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tspan\tdur\tstart\targs")
	for _, sp := range spans {
		args := ""
		for i, a := range sp.Args {
			if i > 0 {
				args += " "
			}
			args += fmt.Sprintf("%s=%v", a.Key, a.Val)
		}
		fmt.Fprintf(tw, "%d\t%s:%s\t%v\t%v\t%s\n",
			sp.Rank, sp.Cat, sp.Name,
			sp.Dur.Round(time.Microsecond),
			time.Duration(sp.Start).Round(time.Microsecond), args)
	}
	return tw.Flush()
}
