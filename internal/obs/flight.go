package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightRecorder keeps a bounded per-rank ring buffer of recent events —
// p2p sends and receives, collective entries, span-level notes — so that
// when a run wedges or a rank panics, the last moments of every rank are
// still in memory to dump. It is the post-mortem complement to the tracer:
// the tracer records everything for a healthy run's analysis, the flight
// recorder records a little, always, for the runs that never reach the
// analysis step.
//
// The mpi watchdog and panic paths call Dump to assemble a self-contained
// post-mortem (recent events per rank, the status-board snapshot, the
// metrics table, and the pending nonblocking-request ledger) written as one
// JSON file next to the run.
//
// Like every obs type, a nil *FlightRecorder hands out nil *RankRecorder
// handles whose Note is a nil-check no-op.
type FlightRecorder struct {
	capPer int
	start  time.Time
	mu     sync.Mutex
	ranks  []*RankRecorder
}

// DefaultFlightEvents is the per-rank ring capacity used when NewFlightRecorder
// is given a non-positive size.
const DefaultFlightEvents = 256

// NewFlightRecorder creates a recorder keeping the last eventsPerRank
// events per rank.
func NewFlightRecorder(eventsPerRank int) *FlightRecorder {
	if eventsPerRank <= 0 {
		eventsPerRank = DefaultFlightEvents
	}
	return &FlightRecorder{capPer: eventsPerRank, start: time.Now()}
}

// Rank returns rank r's ring, creating it on first use. Nil recorder → nil
// ring (a valid no-op receiver).
func (f *FlightRecorder) Rank(r int) *RankRecorder {
	if f == nil || r < 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.ranks) <= r {
		f.ranks = append(f.ranks, &RankRecorder{f: f, rank: len(f.ranks)})
	}
	return f.ranks[r]
}

// FlightEvent is one recorded moment: a timestamp (ns since the recorder
// was created), a kind ("send", "recv", "collective", "note", ...), and a
// free-form detail line.
type FlightEvent struct {
	TSNS   int64  `json:"ts_ns"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// RankRecorder is one rank's ring. Note is called from that rank's
// goroutine only, but Dump may race with it, so the ring is mutex-guarded
// (uncontended in the common case — each rank owns its ring).
type RankRecorder struct {
	f     *FlightRecorder
	rank  int
	mu    sync.Mutex
	buf   []FlightEvent
	next  int
	total int64
}

// Note records one event, overwriting the oldest when the ring is full.
// No-op on a nil receiver.
func (r *RankRecorder) Note(kind, detail string) {
	if r == nil {
		return
	}
	ev := FlightEvent{TSNS: int64(time.Since(r.f.start)), Kind: kind, Detail: detail}
	r.mu.Lock()
	if len(r.buf) < r.f.capPer {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Notef is Note with printf formatting, for call sites that would otherwise
// Sprintf themselves.
func (r *RankRecorder) Notef(kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Note(kind, fmt.Sprintf(format, args...))
}

// Events copies the ring's contents oldest-first.
func (r *RankRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events have been overwritten.
func (r *RankRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - int64(len(r.buf))
}

// FlightRankDump is one rank's section of a post-mortem dump.
type FlightRankDump struct {
	Rank    int           `json:"rank"`
	Dropped int64         `json:"dropped"`
	Recent  []FlightEvent `json:"recent"`
}

// FlightDump is the self-contained post-mortem report: why it was taken,
// each rank's recent events, and whatever run state was available — the
// board snapshot, the metrics snapshot, and the pending nonblocking-request
// ledger.
type FlightDump struct {
	Reason          string            `json:"reason"`
	TakenAt         time.Time         `json:"taken_at"`
	Ranks           []FlightRankDump  `json:"ranks"`
	Board           []RankState       `json:"board,omitempty"`
	Metrics         *RegistrySnapshot `json:"metrics,omitempty"`
	PendingRequests []string          `json:"pending_requests,omitempty"`
	// Goroutines is a full goroutine stack dump taken with the snapshot
	// (runtime.Stack with all=true); the mpi runtime fills it so a
	// post-mortem shows exactly where every rank was parked.
	Goroutines string `json:"goroutines,omitempty"`
}

// Dump assembles the post-mortem. board, metrics and pending may each be
// empty/nil when the corresponding subsystem was not enabled.
func (f *FlightRecorder) Dump(reason string, board []RankState, metrics *RegistrySnapshot, pending []string) FlightDump {
	d := FlightDump{
		Reason:          reason,
		TakenAt:         time.Now(),
		Board:           board,
		Metrics:         metrics,
		PendingRequests: pending,
	}
	if f == nil {
		return d
	}
	f.mu.Lock()
	ranks := append([]*RankRecorder(nil), f.ranks...)
	f.mu.Unlock()
	for _, r := range ranks {
		d.Ranks = append(d.Ranks, FlightRankDump{
			Rank:    r.rank,
			Dropped: r.Dropped(),
			Recent:  r.Events(),
		})
	}
	return d
}

// WriteJSON serializes the dump as indented JSON.
func (d FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadFlightDump parses a dump written by WriteJSON — the byte-parseability
// contract the deadlock test pins. Gzip-compressed dumps (a FlightPath
// ending in .gz) are decompressed transparently.
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	r, err := MaybeGzip(r)
	if err != nil {
		return nil, fmt.Errorf("obs: parsing flight dump: %w", err)
	}
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: parsing flight dump: %w", err)
	}
	return &d, nil
}
