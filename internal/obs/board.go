package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Board is the live per-rank status board of one run: a handful of atomic
// slots per rank — current phase, task progress, epoch/iteration number,
// KV bytes buffered, spill and exchange bytes — that the layers update as
// they work and that can be sampled at any moment without stopping the run.
// The live status server (internal/obs/live) serves Snapshot over HTTP, and
// the MPI deadlock watchdog appends the same snapshot to timeout
// diagnostics, so a hung run is diagnosable before and after the timeout
// fires.
//
// Like the tracer and the registry, a nil *Board (and the nil *RankBoard it
// hands out) is the disabled state: every method is a no-op costing a few
// nanoseconds, so instrumented paths pay nothing when the board is off.
type Board struct {
	mu    sync.Mutex
	ranks []*RankBoard
}

// NewBoard creates an empty status board.
func NewBoard() *Board {
	return &Board{}
}

// Rank returns the status slot for rank r, creating it on first use. A nil
// Board returns a nil slot whose methods are all no-ops.
func (b *Board) Rank(r int) *RankBoard {
	if b == nil || r < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.ranks) <= r {
		b.ranks = append(b.ranks, &RankBoard{rank: len(b.ranks)})
	}
	return b.ranks[r]
}

// NumRanks reports how many rank slots exist.
func (b *Board) NumRanks() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ranks)
}

// Snapshot copies every rank's current state. When t is non-nil each rank's
// in-flight span (innermost open trace span) is included, tying the board's
// coarse phase view to the tracer's fine-grained one. Safe to call at any
// time from any goroutine; reads are individually atomic (the snapshot is
// not a consistent cut across ranks, which live sampling does not need).
func (b *Board) Snapshot(t *Tracer) []RankState {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	ranks := append([]*RankBoard(nil), b.ranks...)
	b.mu.Unlock()
	out := make([]RankState, len(ranks))
	for i, rb := range ranks {
		out[i] = rb.state()
		if t != nil {
			out[i].InFlight = t.Rank(i).InFlight()
		}
	}
	return out
}

// RankBoard is one rank's set of status slots. All methods are atomic and
// no-ops on a nil receiver, so layers update it unconditionally.
type RankBoard struct {
	rank       int
	phase      atomic.Pointer[string]
	epoch      atomic.Int64
	tasksDone  atomic.Int64
	tasksTotal atomic.Int64
	kvBytes    atomic.Int64
	spillBytes atomic.Int64
	exchSent   atomic.Int64
	exchRecv   atomic.Int64
	// beat is the UnixNano of the last update through any mutator — the
	// rank's heartbeat. Snapshot turns it into an age so the deadlock
	// watchdog can distinguish a stalled rank (old beat) from one making
	// slow progress (fresh beat). Zero until the first update.
	beat atomic.Int64
}

// touch refreshes the heartbeat; called by every mutator.
func (rb *RankBoard) touch() {
	rb.beat.Store(time.Now().UnixNano())
}

// SetPhase records the phase this rank is currently in (e.g. "map").
func (rb *RankBoard) SetPhase(phase string) {
	if rb == nil {
		return
	}
	rb.phase.Store(&phase)
	rb.touch()
}

// Phase reads the current phase ("" before the first SetPhase).
func (rb *RankBoard) Phase() string {
	if rb == nil {
		return ""
	}
	if p := rb.phase.Load(); p != nil {
		return *p
	}
	return ""
}

// BeginTasks resets task progress for a new work distribution: zero done
// out of total (the global task count, so summing done across ranks against
// total tracks whole-run progress).
func (rb *RankBoard) BeginTasks(total int64) {
	if rb == nil {
		return
	}
	rb.tasksDone.Store(0)
	rb.tasksTotal.Store(total)
	rb.touch()
}

// TaskDone counts one completed task on this rank.
func (rb *RankBoard) TaskDone() {
	if rb == nil {
		return
	}
	rb.tasksDone.Add(1)
	rb.touch()
}

// SetEpoch records the current epoch (SOM) or MapReduce iteration (BLAST).
func (rb *RankBoard) SetEpoch(epoch int64) {
	if rb == nil {
		return
	}
	rb.epoch.Store(epoch)
	rb.touch()
}

// SetKVBytes records the bytes currently buffered in this rank's key-value
// store.
func (rb *RankBoard) SetKVBytes(n int64) {
	if rb == nil {
		return
	}
	rb.kvBytes.Store(n)
	rb.touch()
}

// SetSpillBytes records the cumulative bytes this rank has spilled to disk.
func (rb *RankBoard) SetSpillBytes(n int64) {
	if rb == nil {
		return
	}
	rb.spillBytes.Store(n)
	rb.touch()
}

// AddExchange accumulates bytes sent to and received from other ranks
// during an Aggregate exchange.
func (rb *RankBoard) AddExchange(sent, recv int64) {
	if rb == nil {
		return
	}
	rb.exchSent.Add(sent)
	rb.exchRecv.Add(recv)
	rb.touch()
}

// state reads every slot. BeatAgeNS is computed against the snapshot
// moment; -1 marks a rank that never updated its board.
func (rb *RankBoard) state() RankState {
	age := int64(-1)
	if beat := rb.beat.Load(); beat != 0 {
		age = time.Now().UnixNano() - beat
		if age < 0 {
			age = 0
		}
	}
	return RankState{
		Rank:              rb.rank,
		Phase:             rb.Phase(),
		Epoch:             rb.epoch.Load(),
		TasksDone:         rb.tasksDone.Load(),
		TasksTotal:        rb.tasksTotal.Load(),
		KVBytes:           rb.kvBytes.Load(),
		SpillBytes:        rb.spillBytes.Load(),
		ExchangeSentBytes: rb.exchSent.Load(),
		ExchangeRecvBytes: rb.exchRecv.Load(),
		BeatAgeNS:         age,
	}
}

// RankState is one rank's point-in-time status, JSON-shaped for the live
// status endpoint.
type RankState struct {
	Rank              int    `json:"rank"`
	Phase             string `json:"phase"`
	Epoch             int64  `json:"epoch"`
	TasksDone         int64  `json:"tasks_done"`
	TasksTotal        int64  `json:"tasks_total"`
	KVBytes           int64  `json:"kv_bytes"`
	SpillBytes        int64  `json:"spill_bytes"`
	ExchangeSentBytes int64  `json:"exchange_sent_bytes"`
	ExchangeRecvBytes int64  `json:"exchange_recv_bytes"`
	// BeatAgeNS is how long ago (at snapshot time) this rank last updated
	// any board slot; -1 when it never has. A large age against peers with
	// fresh beats is the signature of a stalled rank.
	BeatAgeNS int64  `json:"beat_age_ns"`
	InFlight  string `json:"in_flight,omitempty"`
}

// String renders the state as one compact line, shared by the live text
// view and the watchdog's timeout diagnostics.
func (s RankState) String() string {
	phase := s.Phase
	if phase == "" {
		phase = "-"
	}
	line := fmt.Sprintf("phase=%s tasks=%d/%d epoch=%d kv=%dB spilled=%dB exch=%dB/%dB",
		phase, s.TasksDone, s.TasksTotal, s.Epoch, s.KVBytes, s.SpillBytes,
		s.ExchangeSentBytes, s.ExchangeRecvBytes)
	switch {
	case s.BeatAgeNS >= 0:
		line += fmt.Sprintf(" beat=%v ago", time.Duration(s.BeatAgeNS).Round(time.Millisecond))
	default:
		line += " beat=never"
	}
	if s.InFlight != "" {
		line += " " + s.InFlight
	}
	return line
}
