package obs

import "testing"

// The disabled path is the price every instrumented hot path pays when
// observability is off: a nil check and an immediate return. The CI gate
// (TestDisabledPathOverhead) holds it under 5ns per Begin+End pair so
// instrumentation can stay inline in Send/Recv/map-task code without a
// build tag.

var sinkSpan Span

func BenchmarkDisabledSpan(b *testing.B) {
	var rt *RankTracer
	for i := 0; i < b.N; i++ {
		sp := rt.Begin("cat", "name")
		sp.End()
		sinkSpan = sp
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	rt := tr.Rank(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := rt.Begin("cat", "name")
		sp.End()
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("x")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// TestDisabledPathOverhead is the no-op-cheap acceptance gate: a disabled
// Begin+End pair must cost at most 5ns. Skipped under the race detector,
// whose instrumentation skews absolute nanosecond numbers.
func TestDisabledPathOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews ns/op; the gate runs in the non-race CI step")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	res := testing.Benchmark(BenchmarkDisabledSpan)
	if ns := res.NsPerOp(); ns > 5 {
		t.Errorf("disabled Begin+End costs %dns/op, want <= 5ns/op", ns)
	}
	res = testing.Benchmark(BenchmarkDisabledCounter)
	if ns := res.NsPerOp(); ns > 5 {
		t.Errorf("disabled Counter.Add costs %dns/op, want <= 5ns/op", ns)
	}
}
