package causal

import (
	"sort"
	"time"
)

// Exact critical path over the happens-before DAG: a backward replay from
// the trace's last event. Walk back along the current rank until a
// completion where the rank was genuinely blocked — its message was sent
// (or its barrier resolved) only after the wait began — then hop to the
// sending rank at the send time and repeat. Segments are contiguous by
// construction, so their total equals the trace wall clock exactly; that
// identity is the acceptance check of the extraction.
//
// This replaces the per-rank heuristic the analyzer used before provenance
// existed: with seq-matched edges, every hop follows the actual message
// that released the stall (including out-of-order Irecv completions via
// Wait spans, which the tag-FIFO heuristic could not see).

// Segment is one rank's stretch of the critical path.
type Segment struct {
	Rank  int   `json:"rank"`
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
}

// Dur is the segment length.
func (s Segment) Dur() time.Duration { return time.Duration(s.End - s.Start) }

// CriticalPath is the chain of segments, earliest first.
type CriticalPath struct {
	Segments []Segment `json:"segments"`
	// Total is the summed segment time; equal to the trace wall clock by
	// construction.
	Total time.Duration `json:"total_ns"`
}

// blocker is one wait on a rank that some other rank resolved.
type blocker struct {
	start, end int64
	resolve    int64 // when the resolver made progress possible
	from       int   // the resolving rank
}

// blockers collects each rank's resolvable waits, sorted by end time:
// blocking message completions (Recv and Wait spans) and barrier legs.
func (g *Graph) blockers() [][]blocker {
	out := make([][]blocker, g.NumRanks)
	for i := range g.Edges {
		e := &g.Edges[i]
		if !e.Blocking {
			continue
		}
		out[e.Dst] = append(out[e.Dst], blocker{
			start: e.RecvStart, end: e.RecvEnd, resolve: e.SendTS, from: e.Src,
		})
	}
	for _, occ := range g.Barriers {
		for _, leg := range occ.Legs {
			if leg.Rank == occ.LastRank {
				continue
			}
			out[leg.Rank] = append(out[leg.Rank], blocker{
				start: leg.Start, end: leg.End, resolve: occ.LastTS, from: occ.LastRank,
			})
		}
	}
	for r := range out {
		sort.Slice(out[r], func(i, j int) bool { return out[r][i].end < out[r][j].end })
	}
	return out
}

// CriticalPath runs the backward replay over the DAG.
func (g *Graph) CriticalPath() CriticalPath {
	if g.NumRanks == 0 {
		return CriticalPath{}
	}
	blockers := g.blockers()

	var segments []Segment
	r, t := g.EndRank, g.MaxTS
	cursor := t
	for t > g.MinTS {
		bl := blockers[r]
		// Latest blocker ending at or before the scan cursor.
		i := sort.Search(len(bl), func(i int) bool { return bl[i].end > cursor }) - 1
		var hop *blocker
		for ; i >= 0; i-- {
			b := bl[i]
			// A wait only matters if the resolver arrived after the wait
			// began (and strictly before the segment end, for progress).
			if b.resolve > b.start && b.resolve < t {
				hop = &b
				break
			}
			// Otherwise the message was already waiting — the rank never
			// actually stalled there; keep scanning earlier waits.
		}
		if hop == nil {
			segments = append(segments, Segment{Rank: r, Start: g.MinTS, End: t})
			break
		}
		segments = append(segments, Segment{Rank: r, Start: hop.resolve, End: t})
		t = hop.resolve
		cursor = t
		r = hop.from
	}
	// Reverse into chronological order.
	for i, j := 0, len(segments)-1; i < j; i, j = i+1, j-1 {
		segments[i], segments[j] = segments[j], segments[i]
	}
	cp := CriticalPath{Segments: segments}
	for _, s := range segments {
		cp.Total += s.Dur()
	}
	return cp
}
