package causal

import (
	"fmt"
	"sort"
	"time"
)

// Wait-blame attribution: for every stall a rank spent inside a blocking
// MPI operation — Recv, an Irecv's Wait, a Barrier leg — name the peer,
// phase, and sender span that released it. A blocked rank is a symptom; the
// blame table points at the cause ("rank 0 spent 1.2s blocked on map.task
// 17 on rank 1"), which is what the paper's skew and shuffle-stall analysis
// actually needs.
//
// The span label comes from the piggybacked sender span id. When the
// sender's innermost span is an mpi op or a phase container (a send between
// map tasks reports the enclosing "map" phase), the label is refined to the
// latest application span that finished on the sender before the send —
// the work whose completion freed the message.

// BlameKey names the sender-side context a stall is charged to.
type BlameKey struct {
	// Peer is the rank whose action released the stall.
	Peer int `json:"peer"`
	// Phase is the sender's mrmpi phase at release time ("" when the send
	// happened outside any phase).
	Phase string `json:"phase"`
	// Span labels the sender's span at release time, e.g. "map.task 17".
	Span string `json:"span"`
}

// BlameEntry aggregates one (peer, phase, span) triple's share of a rank's
// blocked time.
type BlameEntry struct {
	BlameKey
	Wait  time.Duration `json:"wait_ns"`
	Count int64         `json:"count"`
}

// RankBlame is one rank's blocked-on table.
type RankBlame struct {
	Rank int `json:"rank"`
	// TotalWait is all time the rank spent inside completed blocking MPI
	// operations (Recv/Wait spans and Barrier legs).
	TotalWait time.Duration `json:"total_wait_ns"`
	// Attributed is the share of TotalWait matched to a named releasing
	// context; the remainder is stalls whose releasing message fell outside
	// the trace (truncation, drops).
	Attributed time.Duration `json:"attributed_ns"`
	// Entries is the table, largest wait first.
	Entries []BlameEntry `json:"entries"`
}

// Blame computes every rank's blocked-on table.
func (g *Graph) Blame() []RankBlame {
	totals := make([]time.Duration, g.NumRanks)
	attributed := make([]time.Duration, g.NumRanks)
	tables := make([]map[BlameKey]*BlameEntry, g.NumRanks)
	for r := range tables {
		tables[r] = map[BlameKey]*BlameEntry{}
	}
	charge := func(rank int, key BlameKey, wait time.Duration) {
		attributed[rank] += wait
		e := tables[rank][key]
		if e == nil {
			e = &BlameEntry{BlameKey: key}
			tables[rank][key] = e
		}
		e.Wait += wait
		e.Count++
	}

	// Total blocked time: every completed blocking span, whether or not an
	// edge matched it — unmatched stalls must count against coverage, not
	// vanish.
	for r := range g.Spans {
		for _, sp := range g.Spans[r] {
			if sp.Cat == "mpi" && sp.Complete && (sp.Name == "Recv" || sp.Name == "Wait" || sp.Name == "Barrier") {
				totals[r] += time.Duration(sp.End - sp.Start)
			}
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if !e.Blocking {
			continue
		}
		phase, label := g.senderContext(e.Src, e.SendTS, e.SrcSpan)
		charge(e.Dst, BlameKey{Peer: e.Src, Phase: phase, Span: label}, time.Duration(e.Wait()))
	}
	for _, occ := range g.Barriers {
		phase, label := g.senderContext(occ.LastRank, occ.LastTS, 0)
		for _, leg := range occ.Legs {
			charge(leg.Rank, BlameKey{Peer: occ.LastRank, Phase: phase, Span: label},
				time.Duration(leg.End-leg.Start))
		}
	}

	out := make([]RankBlame, g.NumRanks)
	for r := 0; r < g.NumRanks; r++ {
		rb := RankBlame{Rank: r, TotalWait: totals[r], Attributed: attributed[r]}
		for _, e := range tables[r] {
			rb.Entries = append(rb.Entries, *e)
		}
		sort.Slice(rb.Entries, func(i, j int) bool {
			if rb.Entries[i].Wait != rb.Entries[j].Wait {
				return rb.Entries[i].Wait > rb.Entries[j].Wait
			}
			if rb.Entries[i].Peer != rb.Entries[j].Peer {
				return rb.Entries[i].Peer < rb.Entries[j].Peer
			}
			return rb.Entries[i].Span < rb.Entries[j].Span
		})
		out[r] = rb
	}
	return out
}

// Coverage is the fraction of total blocked time the blame table attributes
// to a named (peer, phase, span) triple; 1.0 for an idle (stall-free)
// trace. The acceptance bar for provenance-carrying traces is ≥0.95.
func Coverage(blame []RankBlame) float64 {
	var total, attr time.Duration
	for _, rb := range blame {
		total += rb.TotalWait
		attr += rb.Attributed
	}
	if total == 0 {
		return 1.0
	}
	return float64(attr) / float64(total)
}

// senderContext resolves the (phase, span label) a message send is blamed
// on from the sender's span chain at send time.
func (g *Graph) senderContext(rank int, ts int64, spanID uint64) (phase, label string) {
	chain := g.chainAt(rank, ts, spanID)

	// Phase: the innermost mrmpi phase container; failing that, the
	// outermost application span (an mrsom epoch's collectives run outside
	// any mrmpi phase).
	for _, sp := range chain {
		if sp.Cat == "mrmpi" && sp.Name != "map.task" {
			phase = sp.Name
			break
		}
	}
	if phase == "" {
		for i := len(chain) - 1; i >= 0; i-- {
			if chain[i].Cat != "mpi" {
				phase = chain[i].Name
				break
			}
		}
	}

	// Label: the innermost application (non-mpi) span...
	var app *Span
	for _, sp := range chain {
		if sp.Cat != "mpi" {
			app = sp
			break
		}
	}
	if app == nil {
		return phase, ""
	}
	// ...refined: when that span is a phase container, the informative
	// context is the latest child that completed before the send — e.g. a
	// worker's ready request between tasks blames "map.task 17", the task
	// whose completion freed the worker.
	if app.Cat == "mrmpi" && app.Name != "map.task" {
		var latest *Span
		for _, sp := range g.Spans[rank] {
			if sp.Start > ts {
				break
			}
			if sp.Parent == app && sp.Complete && sp.End <= ts && sp.Cat != "mpi" {
				if latest == nil || sp.End >= latest.End {
					latest = sp
				}
			}
		}
		if latest != nil {
			app = latest
		}
	}
	return phase, spanLabel(app)
}

// spanLabel renders a span for the blame table: its name plus the
// identifying integer arg the layers attach (a map task's "task", an
// epoch's "epoch", an engine block's "block").
func spanLabel(sp *Span) string {
	for _, key := range [...]string{"task", "epoch", "block", "unit"} {
		if v, ok := argInt(sp.Args, key); ok {
			return fmt.Sprintf("%s %d", sp.Name, v)
		}
	}
	return sp.Name
}
