package causal

import "sort"

// Per-unit end-to-end provenance: for every BLAST map task (a query subset)
// and every SOM epoch, the timestamped chain of stages the unit flowed
// through — dispatch→map→shuffle→reduce for tasks, bcast→map→reduce→apply
// for epochs.
//
// Granularity is what the runtime actually has, stated honestly: the
// dispatch edge and the map span are exact per task (seq-matched message,
// task-id span). The shuffle legs are page-granular — Aggregate batches
// many tasks' pairs into each wire page, so a task's shuffle window is the
// span of its *rank's* page flows, and the reduce window is phase-level on
// the receiving side. Epochs merge cleanly across ranks because every rank
// runs the same epoch spans.

// Stage is one hop of a unit's lineage.
type Stage struct {
	Name string `json:"name"`
	// Rank is the stage's rank, or -1 when the stage spans ranks (a
	// shuffle fan-out, a merged cross-rank phase window).
	Rank  int   `json:"rank"`
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
}

// Lineage is the provenance record of one work unit.
type Lineage struct {
	// Unit is "map.task" (a BLAST query subset / generic mrmpi task) or
	// "epoch" (a SOM training epoch).
	Unit string `json:"unit"`
	// ID is the task index or epoch number.
	ID int64 `json:"id"`
	// Rank is the rank that computed the unit; -1 for cross-rank units
	// (epochs run on every rank).
	Rank   int     `json:"rank"`
	Start  int64   `json:"start_ns"`
	End    int64   `json:"end_ns"`
	Stages []Stage `json:"stages"`
}

// Lineages extracts every unit's lineage: one record per completed map.task
// span (ordered by rank, then task id) followed by one per epoch (ordered
// by epoch number).
func (g *Graph) Lineages() []Lineage {
	out := g.taskLineages()
	out = append(out, g.epochLineages()...)
	return out
}

func (g *Graph) taskLineages() []Lineage {
	// Blocking edges into each rank, ordered by RecvEnd (Edges already are):
	// used to find the dispatch message that preceded each task.
	edgesInto := make([][]*Edge, g.NumRanks)
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Dst < g.NumRanks {
			edgesInto[e.Dst] = append(edgesInto[e.Dst], e)
		}
	}

	var out []Lineage
	for r := range g.Spans {
		for _, sp := range g.Spans[r] {
			if sp.Cat != "mrmpi" || sp.Name != "map.task" || !sp.Complete {
				continue
			}
			task, ok := argInt(sp.Args, "task")
			if !ok {
				continue
			}
			lin := Lineage{Unit: "map.task", ID: task, Rank: r, Start: sp.Start, End: sp.End}

			// Dispatch: the last message this rank received before the task
			// began, inside the enclosing phase — under the master protocol
			// that is the assignment carrying this task.
			phaseStart := g.MinTS
			if sp.Parent != nil {
				phaseStart = sp.Parent.Start
			}
			var disp *Edge
			for _, e := range edgesInto[r] {
				if e.RecvEnd > sp.Start {
					break
				}
				if e.RecvEnd >= phaseStart {
					disp = e
				}
			}
			if disp != nil {
				lin.Stages = append(lin.Stages, Stage{Name: "dispatch", Rank: disp.Src, Start: disp.SendTS, End: disp.RecvEnd})
			}
			lin.Stages = append(lin.Stages, Stage{Name: "map", Rank: r, Start: sp.Start, End: sp.End})

			// Shuffle: this rank's page flows in the first aggregate phase
			// after the task. Pages mix tasks, so the window is rank-level.
			if agg := g.nextPhase(r, "aggregate", sp.End); agg != nil {
				shuffle := Stage{Name: "shuffle", Rank: -1, Start: -1}
				for _, p := range g.Pages {
					if p.Src != r || p.SendTS < agg.Start || p.SendTS > agg.End {
						continue
					}
					if shuffle.Start < 0 || p.SendTS < shuffle.Start {
						shuffle.Start = p.SendTS
					}
					last := p.RecvTS
					if last == 0 {
						last = p.SendTS
					}
					if last > shuffle.End {
						shuffle.End = last
					}
				}
				if shuffle.Start >= 0 {
					lin.Stages = append(lin.Stages, shuffle)
				}
				// Reduce: the cross-rank window of reduce phases after the
				// exchange the pairs landed in.
				if red := g.phaseWindow("reduce", agg.Start); red != nil {
					lin.Stages = append(lin.Stages, *red)
				}
			}
			lin.End = lin.Stages[len(lin.Stages)-1].End
			out = append(out, lin)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// nextPhase finds rank's first completed mrmpi phase span with the given
// name starting at or after ts.
func (g *Graph) nextPhase(rank int, name string, ts int64) *Span {
	for _, sp := range g.Spans[rank] {
		if sp.Cat == "mrmpi" && sp.Name == name && sp.Complete && sp.Start >= ts {
			return sp
		}
	}
	return nil
}

// phaseWindow merges, across all ranks, the first completed mrmpi phase
// span named name starting at or after ts into one cross-rank stage.
func (g *Graph) phaseWindow(name string, ts int64) *Stage {
	st := Stage{Name: name, Rank: -1, Start: -1}
	for r := range g.Spans {
		sp := g.nextPhase(r, name, ts)
		if sp == nil {
			continue
		}
		if st.Start < 0 || sp.Start < st.Start {
			st.Start = sp.Start
		}
		if sp.End > st.End {
			st.End = sp.End
		}
	}
	if st.Start < 0 {
		return nil
	}
	return &st
}

func (g *Graph) epochLineages() []Lineage {
	// Epoch spans exist on every rank; merge by epoch number, and merge
	// each epoch's direct children by name into cross-rank stage windows.
	type window struct {
		start, end int64
		first      int64 // earliest start, for ordering
	}
	epochs := map[int64]*Lineage{}
	stages := map[int64]map[string]*window{}
	for r := range g.Spans {
		for _, sp := range g.Spans[r] {
			if sp.Cat != "mrsom" || sp.Name != "epoch" || !sp.Complete {
				continue
			}
			id, ok := argInt(sp.Args, "epoch")
			if !ok {
				continue
			}
			lin := epochs[id]
			if lin == nil {
				lin = &Lineage{Unit: "epoch", ID: id, Rank: -1, Start: sp.Start, End: sp.End}
				epochs[id] = lin
				stages[id] = map[string]*window{}
			}
			if sp.Start < lin.Start {
				lin.Start = sp.Start
			}
			if sp.End > lin.End {
				lin.End = sp.End
			}
			for _, child := range g.Spans[r] {
				if child.Parent != sp || child.Cat == "mpi" || !child.Complete {
					continue
				}
				w := stages[id][child.Name]
				if w == nil {
					w = &window{start: child.Start, end: child.End, first: child.Start}
					stages[id][child.Name] = w
					continue
				}
				if child.Start < w.start {
					w.start = child.Start
				}
				if child.End > w.end {
					w.end = child.End
				}
				if child.Start < w.first {
					w.first = child.Start
				}
			}
		}
	}
	var out []Lineage
	for id, lin := range epochs {
		for name, w := range stages[id] {
			lin.Stages = append(lin.Stages, Stage{Name: name, Rank: -1, Start: w.start, End: w.end})
		}
		sort.Slice(lin.Stages, func(i, j int) bool {
			if lin.Stages[i].Start != lin.Stages[j].Start {
				return lin.Stages[i].Start < lin.Stages[j].Start
			}
			return lin.Stages[i].Name < lin.Stages[j].Name
		})
		out = append(out, *lin)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
