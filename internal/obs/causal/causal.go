// Package causal stitches the per-rank event streams of one trace into a
// cross-rank happens-before DAG. The mpi runtime piggybacks a provenance
// header on every p2p message and collective leg — the message's ordinal on
// its (src, dst) link ("seq") and the sender's innermost open span id
// ("span") — and the receive side echoes both into its trace events, so
// every delivered message yields one exact Edge here: no FIFO guessing, no
// tag heuristics. Traces recorded before the header existed still stitch
// via the FIFO fallback (k-th send on a (src, dst, tag) triple pairs with
// the k-th completion), the same pairing the old per-rank analyzer used.
//
// On the DAG the package computes the three things a per-rank view cannot:
// the exact cross-rank critical path (critpath.go), wait-blame attribution
// — which peer, phase, and span released each recv/collective stall
// (blame.go) — and per-unit end-to-end lineage for BLAST map tasks and SOM
// epochs (lineage.go).
package causal

import (
	"sort"

	"repro/internal/obs"
)

// Span is one span reconstructed from a rank's stream. ID is the per-rank
// Begin ordinal (1-based) — obs.RankTracer assigns ids the same way, by
// incrementing a counter once per Begin, so replaying Begins in stream
// order recovers exactly the ids the runtime piggybacked on messages.
type Span struct {
	Rank       int
	ID         uint64
	Cat, Name  string
	Start, End int64
	// Parent is the enclosing span at Begin time (nil at top level).
	Parent *Span
	// Depth is the nesting depth at Begin time (0 = top level).
	Depth int
	// Complete reports whether the End event was observed; incomplete spans
	// (open at trace end, or lost to truncation) have End = the trace's max
	// timestamp.
	Complete bool
	Args     []obs.Arg
	EndArgs  []obs.Arg
}

// Edge is one delivered message: a happens-before edge from the send
// instant on Src to the completion on Dst.
type Edge struct {
	Src, Dst int
	// Tag is the message tag (negative for collective legs).
	Tag int64
	// Seq is the message's provenance ordinal on the (Src, Dst) link; 0
	// when the edge was FIFO-matched from a pre-provenance trace.
	Seq   int64
	Bytes int64
	// SendTS is when the sender handed the message off.
	SendTS int64
	// SrcSpan is the id of the sender's innermost open span at send time (0
	// when none was open or the trace predates the header).
	SrcSpan uint64
	// RecvStart/RecvEnd bound the completion: the Recv/Wait span, or the
	// zero-length Test instant that polled the message out.
	RecvStart, RecvEnd int64
	// Blocking reports whether the completion was a blocking Recv/Wait span
	// (a Test poll never stalls the receiver).
	Blocking bool
}

// Wait is the time the receiver spent blocked in the completing operation.
func (e *Edge) Wait() int64 { return e.RecvEnd - e.RecvStart }

// BarrierLeg is one rank's participation in a barrier occurrence.
type BarrierLeg struct {
	Rank       int
	Start, End int64
}

// BarrierOcc is one barrier: every rank's k-th Barrier span is the same
// occurrence (the runtime's barrier is a shared generation counter, so no
// messages mark it). The resolver is the last rank to arrive.
type BarrierOcc struct {
	Legs     []BarrierLeg
	LastRank int
	LastTS   int64
}

// Graph is the stitched happens-before DAG of one trace.
type Graph struct {
	NumRanks     int
	MinTS, MaxTS int64
	// EndRank is the rank that produced the trace's last event — where the
	// critical path's backward replay starts.
	EndRank int
	Edges   []Edge
	// Barriers holds barrier occurrences in occurrence order.
	Barriers []BarrierOcc
	// Pages holds the shuffle's page-granular flows: mrmpi's streaming
	// Aggregate emits one instant per exchanged page on each side, matched
	// here by (src, dst, page seq). They carry the emit→shuffle leg of task
	// lineage at the granularity the exchange actually has (pages batch
	// many tasks' pairs; per-pair tracking would break the zero-copy wire
	// format).
	Pages []PageFlow
	// Spans holds each rank's reconstructed spans in Begin (= ID) order.
	Spans [][]*Span
	// SeqMatched / FIFOMatched count edges by match kind; a healthy
	// provenance-carrying trace has FIFOMatched == 0.
	SeqMatched, FIFOMatched int
	// UnmatchedRecvs counts completions whose send was not in the trace
	// (truncated stream); UnmatchedSends counts sends never observed
	// delivered (in flight at trace end, or a wedged receiver).
	UnmatchedRecvs, UnmatchedSends int

	byID []map[uint64]*Span // per-rank id → span
}

// argInt extracts an integer arg. Live traces carry int/int64; traces read
// back from Chrome JSON carry float64.
func argInt(args []obs.Arg, key string) (int64, bool) {
	for _, a := range args {
		if a.Key != key {
			continue
		}
		switch v := a.Val.(type) {
		case int:
			return int64(v), true
		case int64:
			return v, true
		case uint64:
			return int64(v), true
		case float64:
			return int64(v), true
		}
	}
	return 0, false
}

// sendRec is one Send/Isend instant awaiting its completion.
type sendRec struct {
	ts    int64
	span  uint64
	bytes int64
	tag   int64
	used  bool
}

// completion is one message delivery observed on the receive side.
type completion struct {
	rank       int
	src        int64 // from arg
	tag        int64
	seq        int64 // 0 on pre-provenance traces
	bytes      int64
	start, end int64
	blocking   bool
}

// Build stitches a merged event stream (obs.Tracer.Events or a parsed
// Chrome trace) into a Graph. It never fails: malformed or truncated
// streams yield a partial graph with the damage counted in
// UnmatchedRecvs/UnmatchedSends.
func Build(events []obs.Event) *Graph {
	g := &Graph{}
	if len(events) == 0 {
		return g
	}
	g.MinTS, g.MaxTS = events[0].TS, events[0].TS
	for _, ev := range events {
		if ev.TS < g.MinTS {
			g.MinTS = ev.TS
		}
		if ev.TS > g.MaxTS {
			g.MaxTS = ev.TS
		}
		if ev.Rank+1 > g.NumRanks {
			g.NumRanks = ev.Rank + 1
		}
		if ev.TS == g.MaxTS {
			g.EndRank = ev.Rank
		}
	}

	g.buildSpans(events)
	g.buildEdges(events)
	g.buildBarriers()
	g.buildPages(events)
	return g
}

// PageFlow is one matched shuffle page: sent from Src's Aggregate scan,
// ingested on Dst. RecvTS is 0 when the receipt fell outside the trace.
type PageFlow struct {
	Src, Dst int
	Seq      int64
	Bytes    int64
	SendTS   int64
	RecvTS   int64
}

// buildPages matches mrmpi's exchange.page.send/recv instants by
// (src, dst, page seq).
func (g *Graph) buildPages(events []obs.Event) {
	type pageKey struct {
		src, dst int
		seq      int64
	}
	idx := map[pageKey]int{}
	for _, ev := range events {
		if ev.Type != obs.InstantEvent || ev.Cat != "mrmpi" {
			continue
		}
		switch ev.Name {
		case "exchange.page.send":
			dst, ok1 := argInt(ev.Args, "dst")
			seq, ok2 := argInt(ev.Args, "seq")
			if !ok1 || !ok2 {
				continue
			}
			bytes, _ := argInt(ev.Args, "bytes")
			k := pageKey{src: ev.Rank, dst: int(dst), seq: seq}
			idx[k] = len(g.Pages)
			g.Pages = append(g.Pages, PageFlow{Src: ev.Rank, Dst: int(dst), Seq: seq, Bytes: bytes, SendTS: ev.TS})
		case "exchange.page.recv":
			src, ok1 := argInt(ev.Args, "src")
			seq, ok2 := argInt(ev.Args, "seq")
			if !ok1 || !ok2 {
				continue
			}
			if i, ok := idx[pageKey{src: int(src), dst: ev.Rank, seq: seq}]; ok {
				g.Pages[i].RecvTS = ev.TS
			}
		}
	}
}

// buildSpans replays each rank's Begin/End events with the same
// innermost-(cat,name) matching the tracer and obs.PairSpans use,
// recovering per-rank span ids, parents, and depths.
func (g *Graph) buildSpans(events []obs.Event) {
	g.Spans = make([][]*Span, g.NumRanks)
	g.byID = make([]map[uint64]*Span, g.NumRanks)
	for r := range g.byID {
		g.byID[r] = map[uint64]*Span{}
	}
	stacks := make([][]*Span, g.NumRanks)
	nextID := make([]uint64, g.NumRanks)
	for _, ev := range events {
		r := ev.Rank
		switch ev.Type {
		case obs.BeginEvent:
			nextID[r]++
			sp := &Span{
				Rank: r, ID: nextID[r], Cat: ev.Cat, Name: ev.Name,
				Start: ev.TS, End: g.MaxTS, Depth: len(stacks[r]), Args: ev.Args,
			}
			if len(stacks[r]) > 0 {
				sp.Parent = stacks[r][len(stacks[r])-1]
			}
			stacks[r] = append(stacks[r], sp)
			g.Spans[r] = append(g.Spans[r], sp)
			g.byID[r][sp.ID] = sp
		case obs.EndEvent:
			st := stacks[r]
			for i := len(st) - 1; i >= 0; i-- {
				if st[i].Cat != ev.Cat || st[i].Name != ev.Name {
					continue
				}
				st[i].End = ev.TS
				st[i].Complete = true
				st[i].EndArgs = ev.Args
				stacks[r] = append(st[:i], st[i+1:]...)
				break
			}
		}
	}
}

// SpanByID returns rank's span with the given per-rank id, or nil.
func (g *Graph) SpanByID(rank int, id uint64) *Span {
	if rank < 0 || rank >= len(g.byID) || id == 0 {
		return nil
	}
	return g.byID[rank][id]
}

// CoveringSpan returns the innermost span on rank covering ts, or nil.
func (g *Graph) CoveringSpan(rank int, ts int64) *Span {
	if rank < 0 || rank >= len(g.Spans) {
		return nil
	}
	var best *Span
	for _, sp := range g.Spans[rank] {
		if sp.Start > ts {
			break // spans are in Begin order
		}
		if ts < sp.End || (!sp.Complete && ts <= sp.End) {
			if best == nil || sp.Depth >= best.Depth {
				best = sp
			}
		}
	}
	return best
}

// buildEdges matches every completion (Recv/Wait span end, Test instant) to
// its Send/Isend instant: exactly by the piggybacked (src, dst, seq) when
// present, by FIFO order per (src, dst, tag) otherwise.
func (g *Graph) buildEdges(events []obs.Event) {
	type linkKey struct{ src, dst int }
	type fifoKey struct {
		src, dst int
		tag      int64
	}
	seqSends := map[linkKey]map[int64]*sendRec{}
	fifoSends := map[fifoKey][]*sendRec{}

	for _, ev := range events {
		if ev.Type != obs.InstantEvent || ev.Cat != "mpi" || (ev.Name != "Send" && ev.Name != "Isend") {
			continue
		}
		dst, ok1 := argInt(ev.Args, "dst")
		tag, ok2 := argInt(ev.Args, "tag")
		if !ok1 || !ok2 {
			continue
		}
		rec := &sendRec{ts: ev.TS, tag: tag}
		rec.bytes, _ = argInt(ev.Args, "bytes")
		if sp, ok := argInt(ev.Args, "span"); ok {
			rec.span = uint64(sp)
		}
		seq, _ := argInt(ev.Args, "seq")
		if seq > 0 {
			lk := linkKey{src: ev.Rank, dst: int(dst)}
			m := seqSends[lk]
			if m == nil {
				m = map[int64]*sendRec{}
				seqSends[lk] = m
			}
			m[seq] = rec
		}
		// Keep the FIFO list too: a completion without a seq (mixed-version
		// or hand-built trace) still matches positionally.
		fk := fifoKey{src: ev.Rank, dst: int(dst), tag: tag}
		fifoSends[fk] = append(fifoSends[fk], rec)
	}

	// Completions in delivery order: completed Recv/Wait spans in End order
	// (PairSpans yields that) interleaved with Test instants by timestamp.
	var comps []completion
	obs.PairSpans(events, func(sp obs.SpanInstance) {
		if sp.Cat != "mpi" || (sp.Name != "Recv" && sp.Name != "Wait") {
			return
		}
		from, ok1 := argInt(sp.EndArgs, "from")
		tag, ok2 := argInt(sp.EndArgs, "tag")
		if !ok1 || !ok2 {
			return
		}
		c := completion{rank: sp.Rank, src: from, tag: tag, start: sp.Start, end: sp.End(), blocking: true}
		c.seq, _ = argInt(sp.EndArgs, "seq")
		c.bytes, _ = argInt(sp.EndArgs, "bytes")
		comps = append(comps, c)
	})
	for _, ev := range events {
		if ev.Type != obs.InstantEvent || ev.Cat != "mpi" || ev.Name != "Test" {
			continue
		}
		from, ok1 := argInt(ev.Args, "from")
		tag, ok2 := argInt(ev.Args, "tag")
		if !ok1 || !ok2 {
			continue
		}
		c := completion{rank: ev.Rank, src: from, tag: tag, start: ev.TS, end: ev.TS}
		c.seq, _ = argInt(ev.Args, "seq")
		c.bytes, _ = argInt(ev.Args, "bytes")
		comps = append(comps, c)
	}
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].end < comps[j].end })

	fifoNext := map[fifoKey]int{}
	for _, c := range comps {
		var rec *sendRec
		if c.seq > 0 {
			rec = seqSends[linkKey{src: int(c.src), dst: c.rank}][c.seq]
			if rec != nil && !rec.used {
				g.SeqMatched++
			} else {
				rec = nil
			}
		}
		if rec == nil && c.seq == 0 {
			fk := fifoKey{src: int(c.src), dst: c.rank, tag: c.tag}
			k := fifoNext[fk]
			fifoNext[fk] = k + 1
			if sends := fifoSends[fk]; k < len(sends) && !sends[k].used {
				rec = sends[k]
				g.FIFOMatched++
			}
		}
		if rec == nil {
			g.UnmatchedRecvs++
			continue
		}
		rec.used = true
		bytes := c.bytes
		if bytes == 0 {
			bytes = rec.bytes
		}
		g.Edges = append(g.Edges, Edge{
			Src: int(c.src), Dst: c.rank, Tag: c.tag, Seq: c.seq, Bytes: bytes,
			SendTS: rec.ts, SrcSpan: rec.span,
			RecvStart: c.start, RecvEnd: c.end, Blocking: c.blocking,
		})
	}
	for _, sends := range fifoSends {
		for _, rec := range sends {
			if !rec.used {
				g.UnmatchedSends++
			}
		}
	}
	sort.SliceStable(g.Edges, func(i, j int) bool { return g.Edges[i].RecvEnd < g.Edges[j].RecvEnd })
}

// buildBarriers groups Barrier spans by occurrence index: the runtime's
// barrier is message-less, so the k-th Barrier span on every rank is the
// same occurrence, resolved by the last arrival.
func (g *Graph) buildBarriers() {
	perRank := make([][]*Span, g.NumRanks)
	maxOcc := 0
	for r := range g.Spans {
		for _, sp := range g.Spans[r] {
			if sp.Cat == "mpi" && sp.Name == "Barrier" && sp.Complete {
				perRank[r] = append(perRank[r], sp)
			}
		}
		sort.Slice(perRank[r], func(i, j int) bool { return perRank[r][i].Start < perRank[r][j].Start })
		if len(perRank[r]) > maxOcc {
			maxOcc = len(perRank[r])
		}
	}
	for k := 0; k < maxOcc; k++ {
		occ := BarrierOcc{LastRank: -1, LastTS: -1}
		for r := 0; r < g.NumRanks; r++ {
			if k >= len(perRank[r]) {
				continue
			}
			sp := perRank[r][k]
			occ.Legs = append(occ.Legs, BarrierLeg{Rank: r, Start: sp.Start, End: sp.End})
			if sp.Start > occ.LastTS {
				occ.LastRank, occ.LastTS = r, sp.Start
			}
		}
		if occ.LastRank >= 0 {
			g.Barriers = append(g.Barriers, occ)
		}
	}
}

// chainAt resolves the sender-side span chain for a message: from the
// piggybacked span id when valid (exact even under concurrent same-rank
// spans), by covering-span search at ts otherwise. The chain runs innermost
// first.
func (g *Graph) chainAt(rank int, ts int64, spanID uint64) []*Span {
	sp := g.SpanByID(rank, spanID)
	if sp == nil {
		sp = g.CoveringSpan(rank, ts)
	}
	var chain []*Span
	for ; sp != nil; sp = sp.Parent {
		chain = append(chain, sp)
	}
	return chain
}
